package repro

import (
	"fmt"
	"strings"

	"loas/internal/core"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Table1Case is one column of the paper's Table 1.
type Table1Case struct {
	Case        int
	Result      *core.Result
	Description string
}

var table1Descriptions = [...]string{
	1: "no layout capacitances (neither diffusion nor routing)",
	2: "diffusion capacitance at one fold per transistor, no routing",
	3: "exact diffusion capacitance from layout, no routing",
	4: "all layout parasitics (diffusion, routing, coupling, well)",
}

// Table1 synthesizes the folded-cascode OTA under all four parasitic
// awareness levels and verifies each against its extracted netlist. The
// four cases run concurrently (core.SynthesizeAll); the rows they return
// are identical to four serial Synthesize calls.
func Table1(tech *techno.Tech, spec sizing.OTASpec) ([]Table1Case, error) {
	return Table1Opts(tech, spec, core.Options{})
}

// Table1Opts is Table1 under caller-chosen options — the daemon uses it
// to hang one "case" span per concurrent synthesis under the request's
// span tree (opts.Span). opts.Case is overridden per slot.
func Table1Opts(tech *techno.Tech, spec sizing.OTASpec, opts core.Options) ([]Table1Case, error) {
	results, err := core.SynthesizeAll(tech, spec, opts)
	if err != nil {
		return nil, fmt.Errorf("table 1: %w", err)
	}
	out := make([]Table1Case, 0, core.NumTable1Cases)
	for i, res := range results {
		out = append(out, Table1Case{Case: i + 1, Result: res, Description: table1Descriptions[i+1]})
	}
	return out, nil
}

// Table1Row is one serializable column of Table 1 (JSON wire format
// shared by `loas table1 -json` and the loasd daemon).
type Table1Row struct {
	Case        int          `json:"case"`
	Description string       `json:"description"`
	Result      core.Summary `json:"result"`
}

// Table1Report is the machine-readable form of the whole experiment.
type Table1Report struct {
	Spec            sizing.OTASpec `json:"spec"`
	Rows            []Table1Row    `json:"rows"`
	ShapeViolations []string       `json:"shape_violations,omitempty"`
}

// BuildTable1Report projects finished cases onto the wire format; the
// shape checks run only when all four cases are present (a single-case
// run has nothing to compare against).
func BuildTable1Report(cases []Table1Case, spec sizing.OTASpec) Table1Report {
	rep := Table1Report{Spec: spec}
	for _, c := range cases {
		s := c.Result.Summary()
		s.Case = c.Case
		desc := c.Description
		if desc == "" && c.Case >= 1 && c.Case < len(table1Descriptions) {
			desc = table1Descriptions[c.Case]
		}
		rep.Rows = append(rep.Rows, Table1Row{Case: c.Case, Description: desc, Result: s})
	}
	if len(cases) == core.NumTable1Cases {
		rep.ShapeViolations = Table1ShapeChecks(cases, spec)
	}
	return rep
}

// Table1Text renders the four columns the way the paper prints them:
// synthesized value with the extracted-netlist simulation in brackets.
func Table1Text(cases []Table1Case, spec sizing.OTASpec) string {
	var b strings.Builder
	b.WriteString("Table 1 — sizing, layout and simulation results\n")
	b.WriteString("Input spec: " + Table1Header(spec) + "\n")
	b.WriteString("Values: synthesized(extracted-netlist simulation)\n\n")
	for _, c := range cases {
		fmt.Fprintf(&b, "Case %d: %s\n", c.Case, c.Description)
		s, x := c.Result.Synthesized, c.Result.Extracted
		for _, row := range sizing.RowNames() {
			b.WriteString("  " + s.Row(row, x) + "\n")
		}
		fmt.Fprintf(&b, "  layout calls: %d, sizing passes: %d, elapsed: %s\n\n",
			c.Result.LayoutCalls, c.Result.SizingPasses, c.Result.Elapsed.Round(1e6))
	}
	return b.String()
}

// Table1ShapeChecks verifies the qualitative claims of the paper's §5 on
// a completed run; it returns a list of violated expectations (empty =
// all hold). These are the assertions the test suite and EXPERIMENTS.md
// rely on.
func Table1ShapeChecks(cases []Table1Case, spec sizing.OTASpec) []string {
	var bad []string
	chk := func(ok bool, format string, args ...interface{}) {
		if !ok {
			bad = append(bad, fmt.Sprintf(format, args...))
		}
	}
	byCase := map[int]*core.Result{}
	for _, c := range cases {
		byCase[c.Case] = c.Result
	}
	c1, c2, c3, c4 := byCase[1], byCase[2], byCase[3], byCase[4]
	if c1 == nil || c2 == nil || c3 == nil || c4 == nil {
		return []string{"missing cases"}
	}

	// Case 1: DC characteristics match, extracted GBW and PM fall short.
	chk(relClose(c1.Synthesized.DCGainDB, c1.Extracted.DCGainDB, 0.02),
		"case 1: DC gain should match (%.1f vs %.1f dB)",
		c1.Synthesized.DCGainDB, c1.Extracted.DCGainDB)
	chk(c1.Extracted.GBW < 0.99*spec.GBW,
		"case 1: extracted GBW should miss spec (%.1f MHz)", c1.Extracted.GBW/1e6)
	chk(c1.Extracted.PhaseDeg < spec.PM-1,
		"case 1: extracted PM should miss spec (%.1f°)", c1.Extracted.PhaseDeg)

	// Case 2: over-estimated diffusion → extracted GBW and PM exceed the
	// requirement; gain and output resistance degrade; power rises.
	chk(c2.Extracted.GBW > spec.GBW,
		"case 2: extracted GBW should exceed spec (%.1f MHz)", c2.Extracted.GBW/1e6)
	chk(c2.Extracted.PhaseDeg > spec.PM,
		"case 2: extracted PM should exceed spec (%.1f°)", c2.Extracted.PhaseDeg)
	chk(c2.Extracted.DCGainDB < c1.Extracted.DCGainDB,
		"case 2: gain should degrade vs case 1 (%.1f vs %.1f dB)",
		c2.Extracted.DCGainDB, c1.Extracted.DCGainDB)
	chk(c2.Extracted.Rout < c1.Extracted.Rout,
		"case 2: Rout should degrade vs case 1")
	chk(c2.Extracted.Power > c1.Extracted.Power,
		"case 2: power should rise vs case 1")

	// Case 3: only a slight GBW/PM mismatch remains (routing neglected).
	chk(relClose(c3.Synthesized.GBW, c3.Extracted.GBW, 0.05),
		"case 3: GBW mismatch should be slight (%.1f vs %.1f MHz)",
		c3.Synthesized.GBW/1e6, c3.Extracted.GBW/1e6)
	chk(c3.Extracted.GBW < spec.GBW || c3.Extracted.PhaseDeg < spec.PM,
		"case 3: spec should still be (slightly) missed")

	// Case 4: synthesized matches extracted; spec met; few layout calls.
	chk(relClose(c4.Synthesized.GBW, c4.Extracted.GBW, 0.02),
		"case 4: GBW should match (%.2f vs %.2f MHz)",
		c4.Synthesized.GBW/1e6, c4.Extracted.GBW/1e6)
	chk(absClose(c4.Synthesized.PhaseDeg, c4.Extracted.PhaseDeg, 1.5),
		"case 4: PM should match (%.1f vs %.1f°)",
		c4.Synthesized.PhaseDeg, c4.Extracted.PhaseDeg)
	chk(c4.Extracted.GBW > 0.99*spec.GBW,
		"case 4: extracted GBW should meet spec (%.2f MHz)", c4.Extracted.GBW/1e6)
	chk(c4.Extracted.PhaseDeg > spec.PM-1.0,
		"case 4: extracted PM should meet spec (%.1f°)", c4.Extracted.PhaseDeg)
	chk(c4.LayoutCalls >= 2 && c4.LayoutCalls <= 6,
		"case 4: expected a handful of layout calls, got %d", c4.LayoutCalls)
	return bad
}

func relClose(a, b, tol float64) bool {
	if b == 0 {
		return a == 0
	}
	d := (a - b) / b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func absClose(a, b, tol float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= tol
}

// FlowComparison runs the proposed loop (case 4) and the traditional
// Fig. 1(a) baseline side by side (core.CompareFlows) and reports
// iteration counts and wall-clock — the design-time argument of the
// paper's introduction.
func FlowComparison(tech *techno.Tech, spec sizing.OTASpec) (string, error) {
	fc, err := core.CompareFlows(tech, spec, 10, core.Options{}.Shape)
	if err != nil {
		return "", fmt.Errorf("flow comparison: %w", err)
	}
	prop, trad := fc.Proposed, fc.Traditional
	var b strings.Builder
	b.WriteString("Fig. 1 — flow comparison (proposed vs traditional)\n")
	fmt.Fprintf(&b, "  proposed:    %d parasitic-mode layout calls, %d sizing passes, "+
		"1 extraction+verification, %s; spec met: GBW %.1f MHz, PM %.1f°\n",
		prop.LayoutCalls, prop.SizingPasses, prop.Elapsed.Round(1e6),
		prop.Extracted.GBW/1e6, prop.Extracted.PhaseDeg)
	fmt.Fprintf(&b, "  traditional: %d full size→layout→extract→simulate iterations, %s; "+
		"final GBW %.1f MHz, PM %.1f° (GBW over-design factor %.2f)\n",
		trad.Iterations, trad.Elapsed.Round(1e6),
		trad.Extracted.GBW/1e6, trad.Extracted.PhaseDeg, trad.GBWOverdrive)
	fmt.Fprintf(&b, "  both flows in flight concurrently: %s wall-clock total\n",
		fc.Elapsed.Round(1e6))
	if fc.TraditionalErr != nil {
		fmt.Fprintf(&b, "  traditional flow note: %v\n", fc.TraditionalErr)
	}
	return b.String(), nil
}
