package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"

	"loas/internal/obs"
)

// marshalCompact renders v as single-line JSON (HTML escaping off, like
// marshalJSON) — SSE carries one payload per "data:" line.
func marshalCompact(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return bytes.TrimSpace(buf.Bytes()), nil
}

// GET /v1/events streams the run lifecycle live as Server-Sent Events —
// the feed behind `loas tail` and operator dashboards. Three event
// types, each with a JSON data payload:
//
//	event: run-start   {id, kind, topology, case, cache_key, parent}
//	event: iteration   {run_id, ...obs.Iteration}
//	event: run-end     {id, outcome, duration_ns, converged, layout_calls, error}
//
// Batch and exploration requests add three more, so a client can follow
// a fan-out without polling /v1/runs:
//
//	event: batch-start {id, kind, items|probes, unique}
//	event: batch-item  {parent, index, outcome, cache, topology, case, error}
//	event: batch-end   {id, outcome, items, errors, duration_ns}
//
// Delivery is best-effort with hard memory bounds: every subscriber
// owns a fixed buffer, and a subscriber that cannot drain it (a slow or
// stalled client) is dropped — its stream ends — rather than buffered
// without bound or allowed to stall the publisher.

// runStartEvent is the data payload of event: run-start.
type runStartEvent struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Topology string `json:"topology,omitempty"`
	Case     int    `json:"case,omitempty"`
	CacheKey string `json:"cache_key,omitempty"`
	Parent   string `json:"parent,omitempty"`
}

// batchStartEvent is the data payload of event: batch-start — the
// fan-out announcement for a batch or exploration run.
type batchStartEvent struct {
	ID     string `json:"id"`
	Kind   string `json:"kind"`            // batch | explore
	Items  int    `json:"items,omitempty"` // submitted batch items
	Unique int    `json:"unique,omitempty"`
}

// batchItemEvent is the data payload of event: batch-item — one batch
// item (or exploration probe) finishing, in completion order.
type batchItemEvent struct {
	Parent   string `json:"parent"`
	Index    int    `json:"index"`
	Outcome  string `json:"outcome"`
	Cache    string `json:"cache,omitempty"` // hit | miss | dedup
	Topology string `json:"topology,omitempty"`
	Case     int    `json:"case,omitempty"`
	Error    string `json:"error,omitempty"`
}

// batchEndEvent is the data payload of event: batch-end.
type batchEndEvent struct {
	ID         string `json:"id"`
	Outcome    string `json:"outcome"`
	Items      int    `json:"items"`
	Errors     int    `json:"errors,omitempty"`
	DurationNS int64  `json:"duration_ns"`
}

// iterationEvent is the data payload of event: iteration — one live
// sizing↔layout convergence step of a run in flight.
type iterationEvent struct {
	RunID string `json:"run_id"`
	obs.Iteration
}

// runEndEvent is the data payload of event: run-end.
type runEndEvent struct {
	ID          string `json:"id"`
	Outcome     string `json:"outcome"`
	DurationNS  int64  `json:"duration_ns"`
	Converged   bool   `json:"converged,omitempty"`
	LayoutCalls int    `json:"layout_calls,omitempty"`
	Error       string `json:"error,omitempty"`
}

// subBuffer is each subscriber's frame buffer: deep enough to absorb a
// burst of iteration events, small enough that a stalled client costs
// bounded memory before it is dropped.
const subBuffer = 256

type eventSub struct {
	ch chan []byte
}

// eventBus fans pre-rendered SSE frames out to subscribers. publish
// never blocks: a subscriber whose buffer is full is dropped (its
// channel closed) under the bus lock, which is the slow-client
// semantics the /v1/events tests pin down.
type eventBus struct {
	mu        sync.Mutex
	subs      map[*eventSub]struct{}
	published atomic.Int64
	dropped   atomic.Int64
}

func newEventBus() *eventBus {
	return &eventBus{subs: map[*eventSub]struct{}{}}
}

func (b *eventBus) subscribe() *eventSub {
	s := &eventSub{ch: make(chan []byte, subBuffer)}
	b.mu.Lock()
	b.subs[s] = struct{}{}
	b.mu.Unlock()
	return s
}

// unsubscribe detaches s (client went away). The channel is not closed
// here — only publish closes channels, so a concurrent drop cannot
// double-close.
func (b *eventBus) unsubscribe(s *eventSub) {
	b.mu.Lock()
	delete(b.subs, s)
	b.mu.Unlock()
}

// publish renders one SSE frame and offers it to every subscriber.
func (b *eventBus) publish(event string, v any) {
	body, err := marshalCompact(v)
	if err != nil {
		return
	}
	frame := []byte(fmt.Sprintf("event: %s\ndata: %s\n\n", event, body))
	b.published.Add(1)
	b.mu.Lock()
	for s := range b.subs {
		select {
		case s.ch <- frame:
		default:
			// Slow client: drop it rather than buffer without bound.
			delete(b.subs, s)
			close(s.ch)
			b.dropped.Add(1)
		}
	}
	b.mu.Unlock()
}

func (b *eventBus) subscribers() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.subs)
}

// handleEvents serves the live stream. The connection stays open until
// the client disconnects or the subscriber is dropped for falling
// behind.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	evRequests.Add(1)
	fl, ok := w.(http.Flusher)
	if !ok {
		s.errorBody(w, http.StatusInternalServerError,
			fmt.Errorf("response writer does not support streaming"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	io.WriteString(w, ": loasd run events\n\n")
	fl.Flush()

	sub := s.events.subscribe()
	defer s.events.unsubscribe(sub)
	for {
		select {
		case <-r.Context().Done():
			return
		case frame, ok := <-sub.ch:
			if !ok {
				return // dropped as a slow client
			}
			if _, err := w.Write(frame); err != nil {
				return
			}
			fl.Flush()
		}
	}
}
