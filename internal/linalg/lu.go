// Package linalg provides the dense LU factorizations (real and complex)
// that back the circuit simulator's modified-nodal-analysis solves. Only
// what the simulator needs is implemented: factor once, solve many
// right-hand sides, with partial pivoting for numerical robustness on the
// poorly scaled matrices MOS stamps produce (conductances spanning 1e-12
// to 1e-1 S).
package linalg

import (
	"errors"
	"math"
	"math/cmplx"
)

// ErrSingular reports a numerically singular matrix (a pivot below the
// absolute threshold after partial pivoting).
var ErrSingular = errors.New("linalg: matrix is singular to working precision")

const pivotTiny = 1e-30

// Real is a dense real matrix stored row-major.
type Real struct {
	N int
	A []float64
}

// NewReal allocates an n×n zero matrix.
func NewReal(n int) *Real { return &Real{N: n, A: make([]float64, n*n)} }

// At returns element (i,j).
func (m *Real) At(i, j int) float64 { return m.A[i*m.N+j] }

// Set assigns element (i,j).
func (m *Real) Set(i, j int, v float64) { m.A[i*m.N+j] = v }

// Add accumulates into element (i,j) — the natural MNA stamping primitive.
func (m *Real) Add(i, j int, v float64) { m.A[i*m.N+j] += v }

// Zero clears the matrix for restamping.
func (m *Real) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// Clone returns a deep copy.
func (m *Real) Clone() *Real {
	c := NewReal(m.N)
	copy(c.A, m.A)
	return c
}

// LUReal is an in-place LU factorization with partial pivoting.
type LUReal struct {
	n    int
	lu   []float64
	piv  []int
	sign int
}

// FactorReal computes the LU factorization of m (m is not modified).
func FactorReal(m *Real) (*LUReal, error) {
	n := m.N
	f := &LUReal{n: n, lu: make([]float64, n*n), piv: make([]int, n), sign: 1}
	copy(f.lu, m.A)
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		// Partial pivot: largest |a[i][k]| for i ≥ k.
		p, maxAbs := k, math.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs < pivotTiny {
			return nil, ErrSingular
		}
		if p != k {
			rowK := lu[k*n : k*n+n]
			rowP := lu[p*n : p*n+n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
			f.sign = -f.sign
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : i*n+n]
			rowK := lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b, returning x as a new slice.
func (f *LUReal) Solve(b []float64) []float64 {
	n := f.n
	x := make([]float64, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	// Forward substitution (unit lower triangular).
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+n]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	// Back substitution.
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// Complex is a dense complex matrix stored row-major.
type Complex struct {
	N int
	A []complex128
}

// NewComplex allocates an n×n zero matrix.
func NewComplex(n int) *Complex { return &Complex{N: n, A: make([]complex128, n*n)} }

// At returns element (i,j).
func (m *Complex) At(i, j int) complex128 { return m.A[i*m.N+j] }

// Set assigns element (i,j).
func (m *Complex) Set(i, j int, v complex128) { m.A[i*m.N+j] = v }

// Add accumulates into element (i,j).
func (m *Complex) Add(i, j int, v complex128) { m.A[i*m.N+j] += v }

// Zero clears the matrix for restamping.
func (m *Complex) Zero() {
	for i := range m.A {
		m.A[i] = 0
	}
}

// LUComplex is the complex analogue of LUReal.
type LUComplex struct {
	n   int
	lu  []complex128
	piv []int
}

// FactorComplex computes the LU factorization of m (m is not modified).
func FactorComplex(m *Complex) (*LUComplex, error) {
	n := m.N
	f := &LUComplex{n: n, lu: make([]complex128, n*n), piv: make([]int, n)}
	copy(f.lu, m.A)
	lu := f.lu
	for i := range f.piv {
		f.piv[i] = i
	}
	for k := 0; k < n; k++ {
		p, maxAbs := k, cmplx.Abs(lu[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := cmplx.Abs(lu[i*n+k]); a > maxAbs {
				p, maxAbs = i, a
			}
		}
		if maxAbs < pivotTiny {
			return nil, ErrSingular
		}
		if p != k {
			rowK := lu[k*n : k*n+n]
			rowP := lu[p*n : p*n+n]
			for j := range rowK {
				rowK[j], rowP[j] = rowP[j], rowK[j]
			}
			f.piv[k], f.piv[p] = f.piv[p], f.piv[k]
		}
		pivot := lu[k*n+k]
		for i := k + 1; i < n; i++ {
			l := lu[i*n+k] / pivot
			lu[i*n+k] = l
			if l == 0 {
				continue
			}
			rowI := lu[i*n : i*n+n]
			rowK := lu[k*n : k*n+n]
			for j := k + 1; j < n; j++ {
				rowI[j] -= l * rowK[j]
			}
		}
	}
	return f, nil
}

// Solve solves A·x = b, returning x as a new slice.
func (f *LUComplex) Solve(b []complex128) []complex128 {
	n := f.n
	x := make([]complex128, n)
	for i := 0; i < n; i++ {
		x[i] = b[f.piv[i]]
	}
	for i := 1; i < n; i++ {
		s := x[i]
		row := f.lu[i*n : i*n+n]
		for j := 0; j < i; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s
	}
	for i := n - 1; i >= 0; i-- {
		s := x[i]
		row := f.lu[i*n : i*n+n]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		x[i] = s / row[i]
	}
	return x
}

// MulVecReal computes y = A·x for a real matrix (used by residual checks
// in tests and the Newton convergence monitor).
func MulVecReal(m *Real, x []float64) []float64 {
	y := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		row := m.A[i*m.N : i*m.N+m.N]
		var s float64
		for j, a := range row {
			s += a * x[j]
		}
		y[i] = s
	}
	return y
}
