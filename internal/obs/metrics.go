package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; obtain shared instances through a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative over the upper bounds, plus an
// implicit +Inf bucket). All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1; last = +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (sorted ascending; an implicit +Inf bucket is always appended).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// metric is one registered name: exactly one of the fields is set.
type metric struct {
	help  string
	c     *Counter
	h     *Histogram
	gauge func() float64
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Get-or-create accessors make registration
// idempotent: the first call for a name wins, later calls return the
// same instance.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Default is the process-wide registry for domain-level counters (layout
// plans, sizing passes, MC samples). Servers expose it alongside their
// own per-instance registry.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it with
// the given help text on first use. Panics if name is already registered
// as a different metric kind.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.c == nil {
			panic("obs: " + name + " already registered as a non-counter")
		}
		return m.c
	}
	c := &Counter{}
	r.metrics[name] = &metric{help: help, c: c}
	return c
}

// Histogram returns the histogram registered under name, creating it
// over the given bucket bounds on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.h == nil {
			panic("obs: " + name + " already registered as a non-histogram")
		}
		return m.h
	}
	h := NewHistogram(bounds)
	r.metrics[name] = &metric{help: help, h: h}
	return h
}

// GaugeFunc registers fn as a gauge sampled at exposition time (queue
// depth, cache bytes — values that go up and down and already live in
// someone else's counter). Re-registering a name keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		return
	}
	r.metrics[name] = &metric{help: help, gauge: fn}
}

// WritePrometheus renders every metric in the text exposition format,
// sorted by name so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	for i, name := range names {
		m := ms[i]
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.help); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.c.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.gauge()))
		case m.h != nil:
			err = writeHistogram(w, name, m.h)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

func writeHistogram(w io.Writer, name string, h *Histogram) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %s\n%s_count %d\n",
		name, cum, name, formatFloat(h.Sum()), name, h.Count())
	return err
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
