// Package core implements the paper's contribution: the layout-oriented
// synthesis loop of Fig. 1(b). The sizing tool and the layout generator
// call each other until the layout parasitics stop changing; only then is
// the layout generated and the extracted netlist verified by simulation.
//
// A traditional-flow baseline (Fig. 1(a)) is provided for the comparison
// experiment: size without layout knowledge, generate, extract, simulate,
// and re-size against the measured shortfall until specs are met — the
// "laborious sizing-layout iterations" the methodology avoids.
package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout"
	"loas/internal/layout/cairo"
	"loas/internal/layout/extract"
	_ "loas/internal/layout/rows" // register the row-based backend
	"loas/internal/meas"
	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Options configures a synthesis run.
type Options struct {
	// Topology names the registered design plan to run ("" means the
	// default folded-cascode, keeping existing callers bit-identical).
	Topology string
	// Case selects the parasitic awareness level (the paper's Table-1
	// cases 1–4). Case 4 is the full methodology.
	Case int
	// MaxLayoutCalls bounds the parasitic-convergence loop (default 8).
	MaxLayoutCalls int
	// ConvergeTolF is the parasitic fixpoint tolerance in farads
	// (default 1 fF — 0.03% of the 3 pF load, far below any
	// performance-relevant delta).
	ConvergeTolF float64
	// Shape is the global layout shape constraint handed to the layout
	// backend.
	Shape cairo.Constraint
	// Layout names the registered layout backend that serves the
	// placement/routing stage ("" means the default slicing-tree
	// generator, keeping existing callers bit-identical).
	Layout string
	// SkipVerify skips the extracted-netlist measurement (used by
	// benchmarks that only exercise the loop).
	SkipVerify bool
	// Trace, when non-nil, receives each sizing↔layout iteration as it
	// happens (live telemetry). The finished Result always carries the
	// same events in Result.Trace regardless.
	Trace *obs.Trace
	// Span, when non-nil, is the parent under which the run records its
	// request-lifecycle spans: one "iteration" span per layout call
	// (with "sizing" and "layout-extract" children) plus the two
	// verification phases. A nil Span records nothing.
	Span *obs.Span
	// Ctx, when non-nil, carries the caller's pprof labels (the daemon
	// sets phase/topology/layout/run_id) under which the engine layers
	// its per-phase labels, so CPU/heap profiles slice by pipeline
	// stage. Observation only — results are identical with or without.
	Ctx context.Context
	// Refine configures the closed-loop post-layout refinement: when
	// enabled, extracted corner performance drives re-sizing rounds
	// until the original spec is met at every corner (see refine.go).
	// The zero value keeps the one-shot flow bit-identical.
	Refine RefineOptions
	// Caches disables individual cold-path cache layers. The zero value
	// (everything enabled) is the fast path; every layer is bit-invisible,
	// so flipping a flag changes run time, never results — the invariant
	// the differential harness in differential_test.go pins.
	Caches CacheOptions

	// memo and session carry the per-run caches; Synthesize creates them
	// according to Caches, and refinement rounds share them through the
	// options copy. backend is the resolved layout backend.
	memo    *device.Memo
	session *cairo.Session
	backend layout.Backend
}

// CacheOptions turns cold-path cache layers off, one by one. All layers
// key on exact bit patterns of their inputs, so results are identical
// either way; the flags exist for the differential harness, for
// benchmarking each layer's contribution, and as an escape hatch.
type CacheOptions struct {
	// DisableEvalMemo turns off memoized device-model evaluation
	// (width/bias bisections and design-point operating points) across
	// sizing passes.
	DisableEvalMemo bool
	// DisableIncrementalExtract turns off incremental layout extraction:
	// module realizations and routing outcomes are rebuilt from scratch
	// on every layout call instead of reusing unchanged geometry.
	DisableIncrementalExtract bool
	// DisableShapeCache turns off slicing-tree shape-function reuse
	// across layout calls.
	DisableShapeCache bool
	// DisableMCBatch selects the legacy Monte-Carlo evaluation that
	// rebuilds the netlist and engine per bisection probe. Synthesize
	// itself runs no Monte-Carlo; callers of the MC verification
	// interface forward this flag to mc.OffsetConfig.PerSolveRebuild.
	DisableMCBatch bool
}

func (o *Options) defaults() {
	if o.Case == 0 {
		o.Case = 4
	}
	if o.MaxLayoutCalls <= 0 {
		o.MaxLayoutCalls = 8
	}
	if o.ConvergeTolF <= 0 {
		o.ConvergeTolF = 1e-15
	}
}

// Result is a finished synthesis.
type Result struct {
	// Topology is the canonical name of the plan that ran.
	Topology string
	// LayoutBackend is the canonical name of the layout backend that
	// served the placement/routing stage.
	LayoutBackend string
	// Spec is the specification the plan was sized against.
	Spec       sizing.OTASpec
	Design     sizing.Design
	Layout     *cairo.Plan
	Parasitics *extract.Parasitics

	// Synthesized is the sizing tool's predicted performance (Table 1,
	// unbracketed); Extracted the simulated performance of the extracted
	// netlist (bracketed).
	Synthesized sizing.Performance
	Extracted   sizing.Performance

	LayoutCalls  int
	SizingPasses int
	Elapsed      time.Duration
	ExtractedCkt *circuit.Circuit

	// Trace holds one event per sizing↔layout iteration: parasitic
	// delta, hot-net and total capacitances, fold count, design point
	// and per-phase wall time — the observable form of the paper's
	// convergence story. A refined result carries the iterations of
	// every outer round in round order, each tagged with its Round.
	Trace []obs.Iteration

	// Refine is the structured report of the closed-loop refinement
	// (nil for one-shot runs). The Result fields above describe the
	// accepted round's design.
	Refine *RefineReport
}

// metricName makes a topology name safe for a Prometheus metric name.
func metricName(topology string) string {
	return strings.NewReplacer("-", "_", ".", "_").Replace(topology)
}

// Synthesize runs the layout-oriented flow for the topology named in
// opts (default: the paper's folded-cascode OTA).
//
// Cases 1 and 2 use no layout feedback, so a single sizing pass is
// followed by one generation call. Cases 3 and 4 iterate sizing ↔ layout
// plan until the parasitic report reaches a fixpoint (the paper's example
// needed three calls).
//
// With opts.Refine.Enabled the whole loop becomes the inner stage of an
// outer corner-driven refinement (SynthesizeRefined); otherwise this is
// the one-shot flow, bit-identical to the pre-refinement engine.
func Synthesize(tech *techno.Tech, spec sizing.OTASpec, opts Options) (*Result, error) {
	opts.defaults()
	if !opts.Caches.DisableEvalMemo {
		opts.memo = device.NewMemo(0)
	}
	opts.session = cairo.NewSession(
		!opts.Caches.DisableIncrementalExtract,
		!opts.Caches.DisableShapeCache)
	var err error
	opts.backend, err = layout.Lookup(opts.Layout)
	if err != nil {
		return nil, err
	}
	if opts.Refine.Enabled {
		return synthesizeRefined(tech, spec, opts)
	}
	return synthesizeOnce(tech, spec, opts, 0)
}

// synthesizeOnce is one pass of the sizing↔layout loop plus
// verification. round tags the recorded iterations with the outer
// refinement round (0 = one-shot, omitted on the wire).
func synthesizeOnce(tech *techno.Tech, spec sizing.OTASpec, opts Options, round int) (*Result, error) {
	start := time.Now()
	plan, err := sizing.Lookup(opts.Topology)
	if err != nil {
		return nil, err
	}
	ps, err := sizing.Case(opts.Case)
	if err != nil {
		return nil, err
	}
	ps.Memo = opts.memo
	if opts.backend == nil {
		if opts.backend, err = layout.Lookup(opts.Layout); err != nil {
			return nil, err
		}
	}
	obs.Default.Counter("loas_synth_runs_"+metricName(plan.Name)+"_total",
		"Synthesis runs for topology "+plan.Name+".").Inc()

	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	res := &Result{Topology: plan.Name, LayoutBackend: opts.backend.Info().Name, Spec: spec}
	var par *extract.Parasitics
	var design sizing.Design
	usesLayoutInfo := ps.Junction == extract.JunctionExact || ps.Routing

	for call := 1; call <= opts.MaxLayoutCalls; call++ {
		itSpan := opts.Span.Child("iteration")
		itSpan.SetAttr("call", strconv.Itoa(call))
		ps.Report = par
		sizeSpan := itSpan.Child("sizing")
		sizeSpan.BeginResources()
		sizeStart := time.Now()
		obs.Phase(ctx, "sizing", func() {
			design, err = plan.Size(tech, spec, ps)
		})
		if err != nil {
			return nil, fmt.Errorf("core: sizing pass %d: %w", call, err)
		}
		sizingNS := time.Since(sizeStart).Nanoseconds()
		sizeSpan.End()
		res.SizingPasses++

		laySpan := itSpan.Child("layout-extract")
		laySpan.BeginResources()
		layoutStart := time.Now()
		var lay *cairo.Plan
		obs.Phase(ctx, "layout-extract", func() {
			lay, err = opts.backend.Plan(tech, design.Layout(), opts.Shape, opts.session)
		})
		if err != nil {
			return nil, fmt.Errorf("core: layout call %d: %w", call, err)
		}
		layoutNS := time.Since(layoutStart).Nanoseconds()
		laySpan.End()
		res.LayoutCalls++
		newPar := lay.Parasitics
		newPar.LayoutCalls = res.LayoutCalls
		res.Layout = lay

		// Record the iteration before the convergence decision so the
		// trace always covers every layout call, including the last.
		delta := -1.0
		if par != nil {
			delta = extract.MaxDelta(par, newPar)
		}
		op := design.OperatingPoint()
		it := obs.Iteration{
			Topology:  plan.Name,
			Round:     round,
			Call:      call,
			DeltaF:    delta,
			OutCapF:   newPar.TotalNetCap(sizing.NetOut),
			FN1CapF:   newPar.TotalNetCap(design.HotNet()),
			TotalCapF: newPar.TotalCap(),
			Folds:     newPar.TotalFolds(),
			W1:        op.W1,
			Lc:        op.Lc,
			Itail:     op.Itail,
			SizingNS:  sizingNS,
			LayoutNS:  layoutNS,
		}
		res.Trace = append(res.Trace, it)
		opts.Trace.Record(it)
		itSpan.End()

		if !usesLayoutInfo {
			par = newPar
			break
		}
		if par != nil && delta < opts.ConvergeTolF {
			par = newPar
			break
		}
		par = newPar
		if call == opts.MaxLayoutCalls {
			return nil, fmt.Errorf("core: parasitics did not converge in %d layout calls (Δ = %.3g F)",
				opts.MaxLayoutCalls, delta)
		}
	}

	res.Design = design
	res.Parasitics = par
	res.Synthesized = design.PredictedPerf()

	if !opts.SkipVerify {
		// Synthesized column: the sizing tool's own verification — the
		// assumed netlist (its parasitic view of the world) measured with
		// the same suite, so any Table-1 mismatch is purely the
		// parasitics each case ignores.
		vsSpan := opts.Span.Child("verify-synthesized")
		vsSpan.BeginResources()
		var synth *meas.Report
		obs.Phase(ctx, "verify-synthesized", func() {
			synth, err = meas.Measure(OTABench(tech, spec, design, func() *circuit.Circuit {
				return design.AssumedNetlist("assumed")
			}))
		})
		if err != nil {
			return nil, fmt.Errorf("core: synthesized verification: %w", err)
		}
		vsSpan.End()
		res.Synthesized = synth.Perf
		res.Synthesized.Offset = 0 // by construction of a symmetric schematic

		veSpan := opts.Span.Child("verify-extracted")
		veSpan.BeginResources()
		var perf *sizing.Performance
		var ckt *circuit.Circuit
		obs.Phase(ctx, "verify-extracted", func() {
			perf, ckt, err = VerifyExtracted(tech, spec, design, par)
		})
		if err != nil {
			return nil, fmt.Errorf("core: extracted verification: %w", err)
		}
		veSpan.End()
		res.Extracted = *perf
		res.ExtractedCkt = ckt
	}
	res.Elapsed = time.Since(start)
	return res, nil
}

// ExtractedNetlist builds the amplifier netlist with the full layout
// parasitics applied: exact junction geometry, realized (grid-snapped)
// widths, wiring, coupling and well capacitance.
func ExtractedNetlist(tech *techno.Tech, d sizing.Design, par *extract.Parasitics) *circuit.Circuit {
	ckt := d.Netlist("extracted")
	par.Apply(ckt, extract.ApplyOptions{
		Junction: extract.JunctionExact,
		Routing:  true,
	}, func(_ string, w float64) device.DiffGeom {
		return device.OneFoldGeom(tech, w)
	}, d.ACGroundNets()...)
	return ckt
}

// OTABench builds the measurement bench for any sized OTA design over an
// arbitrary netlist builder. The specification supplies the bench
// operating points (common mode, output mid-swing, load).
func OTABench(tech *techno.Tech, spec sizing.OTASpec, d sizing.Design, build func() *circuit.Circuit) meas.Bench {
	vicm := 0.5 * (spec.ICMLow + spec.ICMHigh)
	if vicm < 0.3 {
		vicm = 0.3
	}
	return meas.Bench{
		Build:      build,
		InP:        sizing.NetInP,
		InN:        sizing.NetInN,
		Out:        sizing.NetOut,
		SupplyName: "dd",
		CL:         spec.CL,
		VicmDC:     vicm,
		VoutMid:    0.5 * (spec.OutLow + spec.OutHigh),
		Temp:       tech.Temp,
		NodeSet:    d.NodeSet(),
	}
}

// VerifyExtracted measures the extracted netlist — the bracketed column
// of Table 1.
func VerifyExtracted(tech *techno.Tech, spec sizing.OTASpec, d sizing.Design, par *extract.Parasitics) (*sizing.Performance, *circuit.Circuit, error) {
	bench := OTABench(tech, spec, d, func() *circuit.Circuit {
		return ExtractedNetlist(tech, d, par)
	})
	rep, err := meas.Measure(bench)
	if err != nil {
		return nil, nil, err
	}
	return &rep.Perf, ExtractedNetlist(tech, d, par), nil
}

// TraditionalResult reports the Fig. 1(a) baseline run.
type TraditionalResult struct {
	Design       sizing.Design
	Parasitics   *extract.Parasitics
	Extracted    sizing.Performance
	Iterations   int // full size→layout→extract→simulate loops
	Elapsed      time.Duration
	GBWOverdrive float64 // final over-design factor applied to the GBW target
}

// TraditionalFlow runs the classical loop the methodology replaces:
// size with no layout knowledge, generate the layout, extract, simulate,
// and if the extracted GBW or phase margin misses the specification,
// re-size against an inflated target — repeating until specs are met.
// Each iteration pays for a full extraction + multi-analysis simulation,
// which is exactly the cost the paper's flow avoids.
func TraditionalFlow(tech *techno.Tech, spec sizing.OTASpec, maxIter int, shape cairo.Constraint) (*TraditionalResult, error) {
	if maxIter <= 0 {
		maxIter = 10
	}
	start := time.Now()
	ps := sizing.ParasiticState{Junction: extract.JunctionNone}
	res := &TraditionalResult{GBWOverdrive: 1.0}
	target := spec

	for iter := 1; iter <= maxIter; iter++ {
		res.Iterations = iter
		d, err := sizing.SizeFoldedCascode(tech, target, ps)
		if err != nil {
			return nil, fmt.Errorf("core: traditional sizing %d: %w", iter, err)
		}
		plan, err := d.Layout().Generate(tech, shape)
		if err != nil {
			return nil, fmt.Errorf("core: traditional layout %d: %w", iter, err)
		}
		perf, _, err := VerifyExtracted(tech, target, d, plan.Parasitics)
		if err != nil {
			return nil, fmt.Errorf("core: traditional verify %d: %w", iter, err)
		}
		res.Design = d
		res.Parasitics = plan.Parasitics
		res.Extracted = *perf

		gbwOK := perf.GBW >= 0.98*spec.GBW
		pmOK := perf.PhaseDeg >= spec.PM-1.0
		if gbwOK && pmOK {
			break
		}
		// Re-size against the measured shortfall.
		if !gbwOK {
			res.GBWOverdrive *= spec.GBW / perf.GBW
		}
		if !pmOK {
			// Demand more margin from the sizer to compensate for the
			// unmodelled parasitic poles.
			target.PM += 0.6 * (spec.PM - perf.PhaseDeg)
		}
		target.GBW = spec.GBW * res.GBWOverdrive
		if iter == maxIter {
			return res, fmt.Errorf("core: traditional flow did not meet spec in %d iterations "+
				"(GBW %.1f MHz, PM %.1f°)", maxIter, perf.GBW/1e6, perf.PhaseDeg)
		}
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
