package parallel

import (
	"bytes"
	"context"
	"runtime/pprof"
	"strings"
	"testing"
)

// TestPoolWorkerAdoptsSubmitterLabels: a worker executing a job carries
// the submitter's pprof labels for the job's duration and sheds them
// afterwards, so profile samples attribute to the request, not to an
// anonymous pool goroutine. One worker makes the hand-off deterministic.
func TestPoolWorkerAdoptsSubmitterLabels(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()

	ctx := pprof.WithLabels(context.Background(),
		pprof.Labels("phase", "pool-label-test", "run_id", "run-424242"))

	// The labeled job inspects the goroutine profile from inside the
	// worker: its own goroutine must be listed with the labels.
	var inJob bytes.Buffer
	if err := p.Submit(ctx, func(context.Context) error {
		return pprof.Lookup("goroutine").WriteTo(&inJob, 1)
	}); err != nil {
		t.Fatal(err)
	}
	prof := inJob.String()
	for _, want := range []string{`"phase":"pool-label-test"`, `"run_id":"run-424242"`} {
		if !strings.Contains(prof, want) {
			t.Errorf("worker goroutine missing label %s during job:\n%s", want, prof)
		}
	}

	// An unlabeled job on the same (sole) worker must not inherit the
	// previous job's labels.
	var after bytes.Buffer
	if err := p.Submit(context.Background(), func(context.Context) error {
		return pprof.Lookup("goroutine").WriteTo(&after, 1)
	}); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(after.String(), "pool-label-test") {
		t.Errorf("stale labels leaked into the next job:\n%s", after.String())
	}
}
