// Command loasd serves the layout-oriented synthesis engine over HTTP:
// a content-addressed result cache, in-flight deduplication of
// identical requests, and a bounded synthesis job queue in front of the
// core loop. Observability rides along: Prometheus-format metrics at
// /metrics, per-request convergence traces at /v1/trace/{key} (the key
// is echoed in the X-Loas-Key response header), and pprof under
// /debug/pprof when started with -pprof. See internal/serve for the
// endpoint list and `loasd -h` for the flags.
//
// Quickstart:
//
//	loasd -addr 127.0.0.1:8086 &
//	curl -s -X POST http://127.0.0.1:8086/v1/table1 | head
//	curl -s http://127.0.0.1:8086/v1/topologies
//	curl -s http://127.0.0.1:8086/v1/layouts
//	curl -s http://127.0.0.1:8086/v1/synthesize -d '{"topology":"two-stage"}'
//	curl -s http://127.0.0.1:8086/v1/synthesize -d '{"topology":"two-stage","layout":"rows"}'
//	curl -s http://127.0.0.1:8086/v1/batch -d '{"items":[{"case":1},{"case":2},{"case":1}]}'
//	curl -s http://127.0.0.1:8086/v1/explore -d '{"axes":{"gbw":[4e7,6.5e7]},"case":1}'
//	curl -s 'http://127.0.0.1:8086/v1/runs?kind=batch'
//	curl -s http://127.0.0.1:8086/stats
//	curl -s http://127.0.0.1:8086/metrics | grep loas_
package main

import (
	"fmt"
	"net/http"
	"os"

	"loas/internal/serve"
)

func main() {
	if err := serve.CLI(os.Args[1:], os.Stdout); err != nil && err != http.ErrServerClosed {
		fmt.Fprintln(os.Stderr, "loasd:", err)
		os.Exit(1)
	}
}
