package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync/atomic"
	"time"

	"loas/internal/core"
	"loas/internal/explore"
	"loas/internal/layout"
	"loas/internal/parallel"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// POST /v1/explore walks a deterministic spec grid — or runs the
// bounded front-guided search — over one or more topologies and returns
// a Pareto front over extracted gain / GBW / power / area per topology.
//
// Unlike a batch report, an exploration report is a pure function of
// its normalized request: probes run in canonical order, fronts use a
// total tie-breaking order, and nothing timing-dependent enters the
// body. The report is therefore cached and deduplicated exactly like a
// synthesis result — reruns replay byte-identically, and concurrent
// identical explorations collapse into one.
//
// The orchestration runs on the request goroutine; only the individual
// probes go through the bounded queue (as child synthesize runs with
// Parent set), so an exploration can never deadlock behind itself.

// exploreGridMax bounds the grid a request may induce per topology.
const exploreGridMax = 512

// ExploreRequest is the body of POST /v1/explore.
type ExploreRequest struct {
	// Topologies to explore; default just the server default topology.
	Topologies []string `json:"topologies,omitempty"`
	// Spec is the base specification; axes override its GBW/PM/CL. When
	// absent each topology uses its own default spec.
	Spec *sizing.OTASpec `json:"spec,omitempty"`
	Axes explore.Axes    `json:"axes,omitempty"`
	// Mode selects the planner: "grid" (default) probes exactly the
	// axes product; "guided" seeds with the grid and expands the front.
	Mode string `json:"mode,omitempty"`
	// Budget and Step drive guided mode only (defaults 64 and 0.15).
	Budget int     `json:"budget,omitempty"`
	Step   float64 `json:"step,omitempty"`
	// Case is each probe's parasitic-awareness level (default 4).
	Case           int `json:"case,omitempty"`
	MaxLayoutCalls int `json:"max_layout_calls,omitempty"`
	// Layout names the layout backend every probe runs under (default
	// slicing) — exploring the same grid under "rows" vs "slicing" is
	// the per-backend parasitic A/B this field exists for.
	Layout string `json:"layout,omitempty"`
}

func (r *ExploreRequest) normalize() error {
	switch r.Mode {
	case "":
		r.Mode = "grid"
	case "grid", "guided":
	default:
		return fmt.Errorf("mode must be \"grid\" or \"guided\", got %q", r.Mode)
	}
	if len(r.Topologies) == 0 {
		r.Topologies = []string{sizing.DefaultTopology}
	}
	// Canonicalize the topology list: resolved names, sorted, deduped —
	// any spelling of the same exploration keys identically.
	names := make([]string, 0, len(r.Topologies))
	for _, t := range r.Topologies {
		plan, err := sizing.Lookup(t)
		if err != nil {
			return err
		}
		names = append(names, plan.Name)
	}
	sort.Strings(names)
	r.Topologies = names[:1]
	for _, n := range names[1:] {
		if n != r.Topologies[len(r.Topologies)-1] {
			r.Topologies = append(r.Topologies, n)
		}
	}
	r.Axes.Canonicalize()
	if err := r.Axes.Validate(); err != nil {
		return err
	}
	if n := r.Axes.Points(); n > exploreGridMax {
		return fmt.Errorf("grid of %d points exceeds the %d-point bound", n, exploreGridMax)
	}
	if r.Case == 0 {
		r.Case = 4
	}
	if r.Case < 1 || r.Case > core.NumTable1Cases {
		return fmt.Errorf("case must be 1..%d, got %d", core.NumTable1Cases, r.Case)
	}
	if r.MaxLayoutCalls < 0 {
		return fmt.Errorf("max_layout_calls must be >= 0, got %d", r.MaxLayoutCalls)
	}
	// Same canonicalization as SynthesizeRequest: resolved name, default
	// elided, so the pre-registry wire format is unchanged.
	lay, err := layout.CanonicalName(r.Layout)
	if err != nil {
		return err
	}
	if lay == layout.DefaultBackend {
		lay = ""
	}
	r.Layout = lay
	if r.Mode == "grid" {
		// Budget and step are inert outside guided mode; zero them so
		// both spellings share one cache entry (same canonicalization
		// discipline as the refine sub-parameters).
		r.Budget = 0
		r.Step = 0
		return nil
	}
	if r.Budget == 0 {
		r.Budget = 64
	}
	if r.Budget < 1 || r.Budget > 1024 {
		return fmt.Errorf("budget must be 1..1024, got %d", r.Budget)
	}
	if r.Step == 0 {
		r.Step = 0.15
	}
	if !(r.Step > 0 && r.Step < 1) {
		return fmt.Errorf("step must be in (0, 1), got %g", r.Step)
	}
	return nil
}

// cacheKey hashes the normalized request plus each topology's resolved
// base spec (bases parallel to r.Topologies), so a request relying on
// per-topology default specs and one spelling them out hash identically.
func (r *ExploreRequest) cacheKey(tech *techno.Tech, bases []sizing.OTASpec) string {
	k := newKey("explore", tech)
	k.str("mode", r.Mode)
	k.str("layout", r.Layout)
	k.int("budget", int64(r.Budget))
	k.num("step", r.Step)
	k.int("case", int64(r.Case))
	k.int("maxcalls", int64(r.MaxLayoutCalls))
	axis := func(name string, vs []float64) {
		k.int(name+"#", int64(len(vs)))
		for _, v := range vs {
			k.num(name, v)
		}
	}
	axis("gbw", r.Axes.GBW)
	axis("pm", r.Axes.PM)
	axis("cl", r.Axes.CL)
	for i, t := range r.Topologies {
		k.str("topology", t)
		k.spec(bases[i])
	}
	return k.sum()
}

// TopologyFront is one topology's exploration outcome in the report.
type TopologyFront struct {
	Topology   string          `json:"topology"`
	Probes     int             `json:"probes"`
	Infeasible int             `json:"infeasible,omitempty"`
	Rounds     int             `json:"rounds"`
	Front      []explore.Point `json:"front"`
}

// ExploreReport is the POST /v1/explore payload.
type ExploreReport struct {
	Mode   string       `json:"mode"`
	Axes   explore.Axes `json:"axes"`
	Budget int          `json:"budget,omitempty"`
	Step   float64      `json:"step,omitempty"`
	Case   int          `json:"case"`
	// Layout names the probes' layout backend; absent for the default.
	Layout  string          `json:"layout,omitempty"`
	Results []TopologyFront `json:"results"` // topology name order
}

func (s *Server) handleExplore(w http.ResponseWriter, r *http.Request) {
	var req ExploreRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := req.normalize(); err != nil {
		s.badRequest(w, err)
		return
	}
	bases := make([]sizing.OTASpec, len(req.Topologies))
	for i, t := range req.Topologies {
		spec, err := s.specFor(req.Spec, t)
		if err != nil {
			s.badRequest(w, err)
			return
		}
		bases[i] = spec
	}

	start := time.Now()
	s.requests.Add(1)
	evRequests.Add(1)
	s.exploreRequests.Inc()
	info := runInfo{kind: "explore", layout: req.Layout, key: req.cacheKey(s.tech, bases),
		request: recordRequest(&req)}
	if len(req.Topologies) == 1 {
		info.topology = req.Topologies[0]
	}
	ar := s.beginRun(info, start)

	lookup := ar.root.Child("cache-lookup")
	v, ok := s.cache.Get(info.key)
	lookup.End()
	if ok {
		evCacheHits.Add(1)
		s.finishRun(ar, outcomeCacheHit, nil, v.Body)
		s.write(w, v, info.key, "hit", start)
		return
	}
	evCacheMisses.Add(1)

	// The leader closure runs on THIS goroutine (Flight.Do calls it
	// inline) — never inside the pool, which only sees the individual
	// probes. Joined identical explorations wait here for its bytes.
	v, err, shared := s.flight.Do(info.key, func() (Value, error) {
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
		defer cancel()
		body, rerr := s.runExplore(ctx, ar, &req, bases)
		if rerr != nil {
			return Value{}, rerr
		}
		out := Value{Body: body, ContentType: "application/json"}
		s.cache.Put(info.key, out)
		return out, nil
	})
	if shared {
		evDedupJoined.Add(1)
	}
	if err != nil {
		s.finishRun(ar, outcomeError, err, nil)
		s.fail(w, err)
		return
	}
	outcome := outcomeOK
	if shared {
		outcome = outcomeDedup
	}
	s.finishRun(ar, outcome, nil, v.Body)
	s.write(w, v, info.key, cacheSource(outcome), start)
}

// runExplore executes the exploration (leader only): one explore.Run
// per topology, probes fanning through the shared pool as child runs.
func (s *Server) runExplore(ctx context.Context, ar *activeRun, req *ExploreRequest, bases []sizing.OTASpec) ([]byte, error) {
	s.events.publish("batch-start", batchStartEvent{ID: ar.id, Kind: "explore"})
	p := &poolProber{s: s, parent: ar, caseN: req.Case, maxCalls: req.MaxLayoutCalls, layout: req.Layout}
	rep := ExploreReport{
		Mode: req.Mode, Axes: req.Axes,
		Budget: req.Budget, Step: req.Step, Case: req.Case, Layout: req.Layout,
	}
	workers := s.pool.Stats().Workers
	for i, topo := range req.Topologies {
		span := ar.root.Child("explore-" + topo)
		res, err := explore.Run(ctx, p, explore.Config{
			Topology: topo,
			Base:     bases[i],
			Axes:     req.Axes,
			Guided:   req.Mode == "guided",
			Budget:   req.Budget,
			Step:     req.Step,
			Workers:  workers,
			Span:     span,
		})
		span.End()
		if err != nil {
			s.events.publish("batch-end", batchEndEvent{
				ID: ar.id, Outcome: outcomeError,
				Items: int(p.done.Load()), DurationNS: ar.root.Duration().Nanoseconds(),
			})
			return nil, err
		}
		tf := TopologyFront{Topology: topo, Probes: len(res.Probes), Rounds: res.Rounds, Front: res.Front}
		for _, pt := range res.Probes {
			if !pt.Feasible {
				tf.Infeasible++
			}
		}
		s.exploreFront.Observe(float64(len(res.Front)))
		rep.Results = append(rep.Results, tf)
	}
	body, err := marshalJSON(rep)
	if err != nil {
		return nil, err
	}
	s.events.publish("batch-end", batchEndEvent{
		ID: ar.id, Outcome: outcomeOK, Items: int(p.done.Load()),
		DurationNS: time.Since(time.Unix(0, ar.startUnix)).Nanoseconds(),
	})
	return body, nil
}

// poolProber is the serving layer's explore.Prober: each probe is one
// child synthesize run through the cache → singleflight → queue path.
// Sizing infeasibility is deterministic data (feasible=false); queue
// shed, shutdown and timeouts are infrastructure errors and abort the
// exploration — a partial front must never be cached.
type poolProber struct {
	s        *Server
	parent   *activeRun
	caseN    int
	maxCalls int
	layout   string
	done     atomic.Int64 // completed probes, for /v1/events frames
}

func (p *poolProber) Probe(_ context.Context, topology string, spec sizing.OTASpec) (explore.Metrics, bool, string, error) {
	s := p.s
	req := SynthesizeRequest{Topology: topology, Case: p.caseN, MaxLayoutCalls: p.maxCalls, Layout: p.layout}
	if err := req.normalize(); err != nil {
		return explore.Metrics{}, false, "", err
	}
	key := req.cacheKey(s.tech, spec)
	recReq := req
	recReq.Spec = &spec
	info := runInfo{
		kind: "synthesize", topology: topology, caseN: req.Case, layout: req.Layout,
		key: key, specDigest: specDigest(s.tech, spec), parent: p.parent.id,
		request: recordRequest(recReq),
	}
	child := s.beginRun(info, time.Now())
	v, outcome, err := s.executeKeyed(child, "application/json",
		func(ctx context.Context) ([]byte, error) {
			body, iters, err := s.backend.Synthesize(ctx, spec, &req)
			if err == nil {
				s.traces.put(key, iters)
			}
			return body, err
		})
	idx := int(p.done.Add(1)) - 1
	ev := batchItemEvent{Parent: p.parent.id, Index: idx, Topology: topology, Case: req.Case}
	if err != nil {
		s.finishRun(child, outcomeError, err, nil)
		ev.Outcome = outcomeError
		ev.Error = err.Error()
		s.events.publish("batch-item", ev)
		if errors.Is(err, parallel.ErrQueueFull) || errors.Is(err, parallel.ErrPoolClosed) ||
			errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
			return explore.Metrics{}, false, "", err
		}
		// Anything else is the engine saying the spec is out of reach —
		// deterministic for a given spec, so it may shape the front.
		return explore.Metrics{}, false, err.Error(), nil
	}
	s.finishRun(child, outcome, nil, v.Body)
	s.exploreProbes.Inc()
	ev.Outcome = outcome
	ev.Cache = cacheSource(outcome)
	s.events.publish("batch-item", ev)
	var sum core.Summary
	if uerr := json.Unmarshal(v.Body, &sum); uerr != nil {
		return explore.Metrics{}, false, "", fmt.Errorf("probe summary: %w", uerr)
	}
	return explore.Metrics{
		GainDB:  sum.Extracted.DCGainDB,
		GBWHz:   sum.Extracted.GBW,
		PowerW:  sum.Extracted.Power,
		AreaUM2: sum.AreaUM2,
	}, true, "", nil
}
