package stack

import (
	"strings"
	"testing"

	"loas/internal/techno"
)

const um = techno.Micron

// fig3Spec is the paper's Fig. 3 current mirror: M1:M2:M3 = 1:3:6 sharing
// a common source, with end dummies.
func fig3Spec() PatternSpec {
	return PatternSpec{
		Devices: []Device{
			{Name: "M1", Units: 1, DrainNet: "d1", GateNet: "g"},
			{Name: "M2", Units: 3, DrainNet: "d2", GateNet: "g"},
			{Name: "M3", Units: 6, DrainNet: "d3", GateNet: "g"},
		},
		SourceNet:  "gnd",
		EndDummies: true,
	}
}

func TestGenerateFig3Counts(t *testing.T) {
	p, err := Generate(fig3Spec())
	if err != nil {
		t.Fatal(err)
	}
	if p.UnitCount(0) != 1 || p.UnitCount(1) != 3 || p.UnitCount(2) != 6 {
		t.Fatalf("unit counts wrong: %d %d %d", p.UnitCount(0), p.UnitCount(1), p.UnitCount(2))
	}
	// End dummies present.
	if !p.Units[0].IsDummy() || !p.Units[len(p.Units)-1].IsDummy() {
		t.Fatalf("end dummies missing: %s", p)
	}
	if len(p.Strips) != len(p.Units)+1 {
		t.Fatal("strips/units mismatch")
	}
}

func TestGenerateCentroid(t *testing.T) {
	p, err := Generate(fig3Spec())
	if err != nil {
		t.Fatal(err)
	}
	errs := p.CentroidError()
	// Isolation dummies make exact zero unreachable for every device at
	// once; the optimizer should stay within half a pitch for the big
	// device and 2.5 pitches for the odd-count ones.
	if errs["M3"] > 0.5 {
		t.Fatalf("M3 centroid error %g (pattern %s)", errs["M3"], p)
	}
	for _, d := range []string{"M1", "M2"} {
		if errs[d] > 2.5 {
			t.Fatalf("%s centroid error %g too large (pattern %s)", d, errs[d], p)
		}
	}
	if p.InsertedDummies > 2 {
		t.Fatalf("optimizer left %d inserted dummies (pattern %s)", p.InsertedDummies, p)
	}
}

func TestGenerateStripsConsistent(t *testing.T) {
	p, err := Generate(fig3Spec())
	if err != nil {
		t.Fatal(err)
	}
	// Every non-dummy unit's two adjacent strips must be exactly its
	// source and drain nets.
	for i, u := range p.Units {
		if u.IsDummy() {
			continue
		}
		d := p.Spec.Devices[u.Dev]
		l, r := p.Strips[i], p.Strips[i+1]
		want := [2]string{"gnd", d.DrainNet}
		if u.Flip {
			want = [2]string{d.DrainNet, "gnd"}
		}
		if l != want[0] || r != want[1] {
			t.Fatalf("unit %d (%s flip=%v): strips %s|%s, want %s|%s",
				i, d.Name, u.Flip, l, r, want[0], want[1])
		}
	}
}

func TestGeneratePairABBA(t *testing.T) {
	// Two equal devices, 2 units each → perfect common centroid, no
	// inserted dummies, balanced orientation.
	p, err := Generate(PatternSpec{
		Devices: []Device{
			{Name: "A", Units: 2, DrainNet: "da", GateNet: "ga"},
			{Name: "B", Units: 2, DrainNet: "db", GateNet: "gb"},
		},
		SourceNet:  "tail",
		EndDummies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	errs := p.CentroidError()
	if errs["A"] > 0.5 || errs["B"] > 0.5 {
		t.Fatalf("pair centroid errors %v (pattern %s)", errs, p)
	}
	imb := p.OrientationImbalance()
	if imb["A"] > 2 || imb["B"] > 2 {
		t.Fatalf("orientation imbalance %v (pattern %s)", imb, p)
	}
	if p.InsertedDummies > 1 {
		t.Fatalf("pair needs at most one isolation dummy (pattern %s)", p)
	}
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(PatternSpec{}); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := Generate(PatternSpec{
		Devices:   []Device{{Name: "A", Units: 0, DrainNet: "d"}},
		SourceNet: "s",
	}); err == nil {
		t.Fatal("zero units accepted")
	}
	if _, err := Generate(PatternSpec{
		Devices:   []Device{{Name: "A", Units: 1, DrainNet: "s"}},
		SourceNet: "s",
	}); err == nil {
		t.Fatal("drain == source accepted")
	}
	if _, err := Generate(PatternSpec{
		Devices: []Device{
			{Name: "A", Units: 1, DrainNet: "d"},
			{Name: "A", Units: 1, DrainNet: "e"},
		},
		SourceNet: "s",
	}); err == nil {
		t.Fatal("duplicate device accepted")
	}
}

func TestPatternString(t *testing.T) {
	p, _ := Generate(fig3Spec())
	s := p.String()
	if !strings.Contains(s, "[dum]") || !strings.Contains(s, "M3") {
		t.Fatalf("render missing elements: %s", s)
	}
}

func TestBuildFig3Geometry(t *testing.T) {
	tech := techno.Default060()
	p, _ := Generate(fig3Spec())
	st, err := Build(tech, p, BuildSpec{
		Name: "mirror", Type: techno.NMOS,
		UnitW: 8 * um, L: 2 * um, BulkNet: "gnd",
		Currents: map[string]float64{"d1": 20e-6, "d2": 60e-6, "d3": 120e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Cell.CheckGrid(tech.Rules.Grid); err != nil {
		t.Fatal(err)
	}
	if st.Width <= 0 || st.Height <= 0 {
		t.Fatal("degenerate stack")
	}
	// Junction geometry: every device must have positive areas; M3's
	// drain area should be about 6× M1's (six strips… minus sharing).
	g1, g3 := st.Geoms["M1"], st.Geoms["M3"]
	if g1.AD <= 0 || g3.AD <= 0 {
		t.Fatal("missing junction geometry")
	}
	ratio := g3.AD / g1.AD
	if ratio < 2.5 || ratio > 6.5 {
		t.Fatalf("AD ratio M3/M1 = %g, want a few × (sharing shrinks it below 6)", ratio)
	}
	// Source allocation proportional to unit count.
	if st.Geoms["M3"].AS <= st.Geoms["M1"].AS {
		t.Fatal("source area allocation not proportional")
	}
}

func TestBuildSeparateGateNets(t *testing.T) {
	tech := techno.Default060()
	p, _ := Generate(PatternSpec{
		Devices: []Device{
			{Name: "A", Units: 2, DrainNet: "da", GateNet: "ga"},
			{Name: "B", Units: 2, DrainNet: "db", GateNet: "gb"},
		},
		SourceNet:  "tail",
		EndDummies: true,
	})
	st, err := Build(tech, p, BuildSpec{
		Name: "pair", Type: techno.PMOS,
		UnitW: 20 * um, L: 1 * um, BulkNet: "vdd",
		Currents: map[string]float64{"da": 100e-6, "db": 100e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Both gate ports exist on distinct nets.
	var g0, g1 bool
	for _, port := range st.Cell.Ports {
		if port.Net == "ga" {
			g0 = true
		}
		if port.Net == "gb" {
			g1 = true
		}
	}
	if !g0 || !g1 {
		t.Fatal("separate gate nets need separate ports")
	}
	// PMOS stack gets a well.
	if a, _ := st.WellAreaM2(); a <= 0 {
		t.Fatal("PMOS stack missing well")
	}
}

func TestBuildRejectsThreeGateNets(t *testing.T) {
	tech := techno.Default060()
	p, _ := Generate(PatternSpec{
		Devices: []Device{
			{Name: "A", Units: 2, DrainNet: "da", GateNet: "ga"},
			{Name: "B", Units: 2, DrainNet: "db", GateNet: "gb"},
			{Name: "C", Units: 2, DrainNet: "dc", GateNet: "gc"},
		},
		SourceNet: "s",
	})
	if _, err := Build(tech, p, BuildSpec{
		Name: "bad", Type: techno.NMOS, UnitW: 5 * um, L: 1 * um, BulkNet: "gnd",
	}); err == nil {
		t.Fatal("three gate nets accepted")
	}
}

func TestBuildRejectsSharedDrainNet(t *testing.T) {
	tech := techno.Default060()
	p, _ := Generate(PatternSpec{
		Devices: []Device{
			{Name: "A", Units: 2, DrainNet: "d", GateNet: "g"},
			{Name: "B", Units: 2, DrainNet: "d", GateNet: "g"},
		},
		SourceNet: "s",
	})
	if _, err := Build(tech, p, BuildSpec{
		Name: "bad", Type: techno.NMOS, UnitW: 5 * um, L: 1 * um, BulkNet: "gnd",
	}); err == nil {
		t.Fatal("shared drain net accepted")
	}
}

func TestOrientationAlternatesWithinRuns(t *testing.T) {
	// Within a run of one device, orientations must alternate so shared
	// strips work — giving balanced current directions for even runs.
	p, _ := Generate(fig3Spec())
	imb := p.OrientationImbalance()
	if imb["M3"] > 2 {
		t.Fatalf("M3 orientation imbalance %d (pattern %s)", imb["M3"], p)
	}
}

func TestInsertedDummiesIsolate(t *testing.T) {
	p, _ := Generate(fig3Spec())
	// Wherever a dummy sits mid-stack, its neighbours' exposed nets differ.
	for i, u := range p.Units {
		if !u.IsDummy() || i == 0 || i == len(p.Units)-1 {
			continue
		}
		if p.Strips[i] == p.Strips[i+1] {
			t.Fatalf("dummy at %d separates identical nets %q (pattern %s)",
				i, p.Strips[i], p)
		}
	}
}
