// Command loas reproduces the experiments of "Layout-Oriented Synthesis
// of High Performance Analog Circuits" (DATE 2000) from the command line.
//
// Usage:
//
//	loas fig2                  capacitance reduction factor table
//	loas fig3 [-svg file]      current-mirror stack generation
//	loas table1 [-case N]      the four-case sizing/extraction table
//	loas fig5 [-svg file]      generate the case-4 OTA layout
//	loas flow                  proposed vs traditional flow comparison
//	loas netlist [-case N]     print the extracted SPICE-like netlist
//	loas mc [-n N]             Monte-Carlo mismatch offset analysis
//	loas techeval              technology characterization report
//	loas twostage              size the two-stage Miller OTA
//	loas converge              per-call parasitic convergence trace
package main

import (
	"flag"
	"fmt"
	"os"

	"loas/internal/circuit"
	"loas/internal/core"
	"loas/internal/layout/cairo"
	"loas/internal/mc"
	"loas/internal/repro"
	"loas/internal/sizing"
	"loas/internal/techeval"
	"loas/internal/techno"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	tech := techno.Default060()
	spec := sizing.Default65MHz()

	var err error
	switch cmd {
	case "fig2":
		fmt.Print(repro.Fig2Text(20))
	case "fig3":
		err = runFig3(tech, args)
	case "table1":
		err = runTable1(tech, spec, args)
	case "fig5":
		err = runFig5(tech, spec, args)
	case "flow":
		var s string
		s, err = repro.FlowComparison(tech, spec)
		fmt.Print(s)
	case "netlist":
		err = runNetlist(tech, spec, args)
	case "mc":
		err = runMC(tech, spec, args)
	case "techeval":
		fmt.Print(techeval.Characterize(tech, techno.NMOS).Summary() + "\n")
		fmt.Print(techeval.Characterize(tech, techno.PMOS).Summary() + "\n")
	case "twostage":
		err = runTwoStage(tech, args)
	case "converge":
		var pts []repro.ConvergencePoint
		pts, err = repro.ConvergenceTrace(tech, spec, 8)
		if err == nil {
			fmt.Print(repro.ConvergenceText(pts))
		}
	case "corners":
		err = runCorners(tech, spec)
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "loas:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		`usage: loas <fig2|fig3|table1|fig5|flow|netlist|mc|techeval|twostage|converge|corners> [flags]`)
}

func runMC(tech *techno.Tech, spec sizing.OTASpec, args []string) error {
	fs := flag.NewFlagSet("mc", flag.ExitOnError)
	n := fs.Int("n", 25, "number of Monte-Carlo samples")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial; same statistics either way)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeFoldedCascode(tech, spec, ps)
	if err != nil {
		return err
	}
	cfg := mc.OffsetConfig{
		Build:   func() *circuit.Circuit { return d.Netlist("mc") },
		InP:     sizing.NetInP,
		InN:     sizing.NetInN,
		Out:     sizing.NetOut,
		VicmDC:  0.5 * (spec.ICMLow + spec.ICMHigh),
		VoutMid: 0.5 * (spec.OutLow + spec.OutHigh),
		Temp:    tech.Temp,
		NodeSet: d.NodeSet(),
		Workers: *workers,
	}
	stats, err := mc.RunOffset(cfg, *n, *seed)
	if err != nil {
		return err
	}
	fmt.Printf("Monte-Carlo offset (%d samples, %d failed):\n", stats.N, stats.Failures)
	fmt.Printf("  mean  %8.3f mV\n  sigma %8.3f mV\n  worst %8.3f mV\n",
		stats.MeanV*1e3, stats.SigmaV*1e3, stats.WorstAbsV*1e3)
	est := mc.EstimateOffsetSigma(&tech.P,
		d.Devices[sizing.MP1].W, d.Devices[sizing.MP1].L,
		&tech.N, d.Devices[sizing.MN5].W, d.Devices[sizing.MN5].L, 0.7)
	fmt.Printf("  analytic estimate: %8.3f mV\n", est*1e3)
	return nil
}

func runTwoStage(tech *techno.Tech, args []string) error {
	fs := flag.NewFlagSet("twostage", flag.ExitOnError)
	gbw := fs.Float64("gbw", 20e6, "gain-bandwidth target (Hz)")
	cl := fs.Float64("cl", 5e-12, "load capacitance (F)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := sizing.OTASpec{VDD: 3.3, GBW: *gbw, PM: 65, CL: *cl,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.4, OutHigh: 2.9}
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeTwoStage(tech, spec, ps)
	if err != nil {
		return err
	}
	fmt.Printf("two-stage Miller OTA: Itail %.1f uA, I6 %.1f uA, CC %.2f pF, RZ %.0f ohm\n",
		d.Itail*1e6, d.I6*1e6, d.CC*1e12, d.RZ)
	fmt.Printf("  gain %.1f dB, GBW %.2f MHz, PM %.1f deg, SR %.1f V/us, power %.2f mW\n",
		d.Predicted.DCGainDB, d.Predicted.GBW/1e6, d.Predicted.PhaseDeg,
		d.Predicted.SlewRate/1e6, d.Predicted.Power*1e3)
	plan, err := d.Layout().Plan(tech, cairo.Constraint{})
	if err != nil {
		return err
	}
	fmt.Printf("  layout: %.1f x %.1f um (%.0f um2)\n",
		plan.Parasitics.WidthUM, plan.Parasitics.HeightUM, plan.Parasitics.AreaUM2)
	return nil
}

func runCorners(tech *techno.Tech, spec sizing.OTASpec) error {
	res, err := core.Synthesize(tech, spec, core.Options{Case: 4})
	if err != nil {
		return err
	}
	corners, err := core.CornerSweep(tech, res)
	if err != nil {
		return err
	}
	fmt.Println("process-corner verification of the case-4 design (tracking bias):")
	for _, c := range []techno.Corner{techno.CornerSS, techno.CornerSF,
		techno.CornerTT, techno.CornerFS, techno.CornerFF} {
		p := corners[c]
		fmt.Printf("  %s: gain %.1f dB, GBW %.1f MHz, PM %.1f deg, power %.2f mW\n",
			c, p.DCGainDB, p.GBW/1e6, p.PhaseDeg, p.Power*1e3)
	}
	return nil
}

func runFig3(tech *techno.Tech, args []string) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	svg := fs.String("svg", "", "write the mirror layout as SVG to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := repro.Fig3Text(tech)
	if err != nil {
		return err
	}
	fmt.Print(text)
	if *svg != "" {
		r, err := repro.Fig3(tech)
		if err != nil {
			return err
		}
		f, err := os.Create(*svg)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cairo.WriteSVG(f, r.Stack.Cell); err != nil {
			return err
		}
		fmt.Println("wrote", *svg)
	}
	return nil
}

func runTable1(tech *techno.Tech, spec sizing.OTASpec, args []string) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	onlyCase := fs.Int("case", 0, "run a single case (1-4); 0 = all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *onlyCase != 0 {
		res, err := core.Synthesize(tech, spec, core.Options{Case: *onlyCase})
		if err != nil {
			return err
		}
		cases := []repro.Table1Case{{Case: *onlyCase, Result: res}}
		fmt.Print(repro.Table1Text(cases, spec))
		return nil
	}
	cases, err := repro.Table1(tech, spec)
	if err != nil {
		return err
	}
	fmt.Print(repro.Table1Text(cases, spec))
	if bad := repro.Table1ShapeChecks(cases, spec); len(bad) > 0 {
		fmt.Println("shape-check violations:")
		for _, s := range bad {
			fmt.Println("  -", s)
		}
	} else {
		fmt.Println("all Table-1 qualitative shape checks hold.")
	}
	return nil
}

func runFig5(tech *techno.Tech, spec sizing.OTASpec, args []string) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	svg := fs.String("svg", "ota-layout.svg", "output SVG file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := repro.Fig5(tech, spec)
	if err != nil {
		return err
	}
	fmt.Print(repro.Fig5Text(r))
	f, err := os.Create(*svg)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteSVG(f); err != nil {
		return err
	}
	fmt.Println("wrote", *svg)
	return nil
}

func runNetlist(tech *techno.Tech, spec sizing.OTASpec, args []string) error {
	fs := flag.NewFlagSet("netlist", flag.ExitOnError)
	c := fs.Int("case", 4, "Table-1 case (1-4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.Synthesize(tech, spec, core.Options{Case: *c})
	if err != nil {
		return err
	}
	fmt.Print(res.ExtractedCkt.Export())
	return nil
}
