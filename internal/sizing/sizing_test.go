package sizing

import (
	"math"
	"strings"
	"testing"

	"loas/internal/circuit"
	"loas/internal/layout/cairo"
	"loas/internal/layout/extract"
	"loas/internal/sim"
	"loas/internal/techno"
)

func TestCaseMapping(t *testing.T) {
	cases := []struct {
		n        int
		junction extract.JunctionModel
		routing  bool
	}{
		{1, extract.JunctionNone, false},
		{2, extract.JunctionOneFold, false},
		{3, extract.JunctionExact, false},
		{4, extract.JunctionExact, true},
	}
	for _, c := range cases {
		ps, err := Case(c.n)
		if err != nil {
			t.Fatal(err)
		}
		if ps.Junction != c.junction || ps.Routing != c.routing {
			t.Fatalf("case %d = %+v", c.n, ps)
		}
	}
	if _, err := Case(5); err == nil {
		t.Fatal("case 5 accepted")
	}
	if _, err := Case(0); err == nil {
		t.Fatal("case 0 accepted")
	}
}

func TestSpecValidation(t *testing.T) {
	tech := techno.Default060()
	ps, _ := Case(1)
	if _, err := SizeFoldedCascode(tech, OTASpec{}, ps); err == nil {
		t.Fatal("empty spec accepted")
	}
}

func TestRowFormatting(t *testing.T) {
	p := Performance{DCGainDB: 70.1, GBW: 64.9e6, Power: 2e-3}
	q := Performance{DCGainDB: 70.1, GBW: 58.1e6, Power: 2e-3}
	row := p.Row("gbw", q)
	if !strings.Contains(row, "64.9(58.1)") {
		t.Fatalf("row = %q", row)
	}
	if len(RowNames()) != 11 {
		t.Fatalf("Table 1 has 11 rows, got %d", len(RowNames()))
	}
	for _, name := range RowNames() {
		if p.Row(name, q) == "" {
			t.Fatalf("row %q renders empty", name)
		}
	}
	if p.Row("nonsense", q) != "" {
		t.Fatal("unknown row should render empty")
	}
}

// sizeCase1 sizes once and caches for the property tests below.
var case1Design *FoldedCascode

func sizedCase1(t *testing.T) *FoldedCascode {
	t.Helper()
	if case1Design == nil {
		tech := techno.Default060()
		ps, _ := Case(1)
		d, err := SizeFoldedCascode(tech, Default65MHz(), ps)
		if err != nil {
			t.Fatal(err)
		}
		case1Design = d
	}
	return case1Design
}

func TestSizingMeetsTargets(t *testing.T) {
	d := sizedCase1(t)
	spec := d.Spec
	if rel := math.Abs(d.Predicted.GBW-spec.GBW) / spec.GBW; rel > 0.03 {
		t.Fatalf("designed GBW %g off target by %.1f%%", d.Predicted.GBW, rel*100)
	}
	if d.Predicted.PhaseDeg < spec.PM-1.5 {
		t.Fatalf("designed PM %.1f below target %.1f", d.Predicted.PhaseDeg, spec.PM)
	}
}

func TestSizingSymmetry(t *testing.T) {
	d := sizedCase1(t)
	pairs := [][2]string{{MP1, MP2}, {MP3, MP4}, {MP3C, MP4C}, {MN1C, MN2C}, {MN5, MN6}}
	for _, p := range pairs {
		a, b := d.Devices[p[0]], d.Devices[p[1]]
		if a.W != b.W || a.L != b.L {
			t.Fatalf("%s/%s not matched: %+v vs %+v", p[0], p[1], a, b)
		}
	}
}

func TestSizingCurrentBudget(t *testing.T) {
	d := sizedCase1(t)
	// KCL of the plan: sink current = pair half + cascode branch.
	in5 := d.Devices[MN5].ID
	want := d.Itail/2 + d.Icasc
	if math.Abs(in5-want)/want > 1e-9 {
		t.Fatalf("MN5 current %g, want %g", in5, want)
	}
	if d.Predicted.Power <= 0 || d.Predicted.Power > 10e-3 {
		t.Fatalf("power %g W implausible", d.Predicted.Power)
	}
}

func TestSizingBiasVoltagesInsideSupply(t *testing.T) {
	d := sizedCase1(t)
	for name, v := range d.Bias {
		if v <= 0 || v >= d.Spec.VDD {
			t.Fatalf("bias %s = %g outside the rails", name, v)
		}
	}
	// Cascode bias ordering: vbn < vc1 (NMOS cascode gate above sink
	// gate), vc3 < vbp.
	if d.Bias[NetVBN] >= d.Bias[NetVC1] {
		t.Fatalf("vbn %.3f should sit below vc1 %.3f", d.Bias[NetVBN], d.Bias[NetVC1])
	}
}

func TestSizingNetlistSimulates(t *testing.T) {
	d := sizedCase1(t)
	ckt := d.Netlist("check")
	ckt.Add(
		&circuit.VSource{Name: "ip", Pos: NetInP, Neg: "0", DC: 1.2},
		&circuit.VSource{Name: "in", Pos: NetInN, Neg: "0", DC: 1.2},
		&circuit.Capacitor{Name: "load", A: NetOut, B: "0", C: d.Spec.CL},
	)
	eng := sim.NewEngine(ckt, d.Tech.Temp)
	r, err := eng.OP(sim.OPOptions{NodeSet: d.NodeSet()})
	if err != nil {
		t.Fatal(err)
	}
	// Every transistor saturated at the design bias.
	for name := range d.Devices {
		op := r.MOSOPs[name]
		if op.Region.String() != "saturation" {
			t.Fatalf("%s region %v (VDS=%.3f, Veff=%.3f)", name, op.Region, op.VDS, op.Veff)
		}
	}
	// Fold-node voltages near the plan estimates.
	for _, n := range []string{NetFN1, NetFN2, NetN3, NetN4} {
		if diff := math.Abs(r.Volt(ckt, n) - d.NodeEst[n]); diff > 0.15 {
			t.Fatalf("node %s: simulated %.3f vs estimate %.3f", n,
				r.Volt(ckt, n), d.NodeEst[n])
		}
	}
}

func TestSizingMoreLoadMoreCurrent(t *testing.T) {
	tech := techno.Default060()
	ps, _ := Case(1)
	small := Default65MHz()
	big := small
	big.CL = 2 * small.CL
	dSmall, err := SizeFoldedCascode(tech, small, ps)
	if err != nil {
		t.Fatal(err)
	}
	dBig, err := SizeFoldedCascode(tech, big, ps)
	if err != nil {
		t.Fatal(err)
	}
	if dBig.Itail <= dSmall.Itail {
		t.Fatalf("doubling CL should raise tail current: %g vs %g",
			dBig.Itail, dSmall.Itail)
	}
}

func TestCase2BiggerAssumedCapsShorterChannels(t *testing.T) {
	// The paper's case-2 mechanism: over-estimated diffusion caps push
	// the PM iteration to shorter channels (and more current).
	tech := techno.Default060()
	ps1, _ := Case(1)
	ps2, _ := Case(2)
	d1, err := SizeFoldedCascode(tech, Default65MHz(), ps1)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := SizeFoldedCascode(tech, Default65MHz(), ps2)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Lc >= d1.Lc {
		t.Fatalf("case 2 should shorten non-input channels: %.2f vs %.2f µm",
			d2.Lc*1e6, d1.Lc*1e6)
	}
	if d2.Itail <= d1.Itail {
		t.Fatalf("case 2 should burn more current: %.0f vs %.0f µA",
			d2.Itail*1e6, d1.Itail*1e6)
	}
	if d2.Predicted.DCGainDB >= d1.Predicted.DCGainDB {
		t.Fatal("case 2 gain should be lower")
	}
}

func TestLayoutDesignComplete(t *testing.T) {
	d := sizedCase1(t)
	des := d.Layout()
	// All eleven devices must appear in the realized layout.
	seen := map[string]int{}
	plan, err := des.Plan(d.Tech, cairo.Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	for name := range d.Devices {
		if _, ok := plan.Parasitics.DeviceGeom[name]; !ok {
			t.Fatalf("device %s missing from the layout", name)
		}
		seen[name]++
	}
	if len(seen) != 11 {
		t.Fatalf("expected 11 devices, saw %d", len(seen))
	}
	// Critical nets routed.
	for _, n := range []string{NetOut, NetFN1, NetFN2, NetMO1} {
		if plan.Parasitics.NetCap[n] <= 0 {
			t.Fatalf("critical net %s unrouted", n)
		}
	}
	// The source-tied input-pair well reports capacitance on tail.
	if plan.Parasitics.WellCap[NetTail] <= 0 {
		t.Fatal("input pair well cap missing on tail")
	}
}

func TestAssumedNetlistAddsWiringOnlyWithRouting(t *testing.T) {
	d := sizedCase1(t) // case 1: no routing
	plain := d.Netlist("a")
	assumed := d.AssumedNetlist("b")
	if len(assumed.Elements) != len(plain.Elements) {
		t.Fatal("case 1 assumed netlist should not carry wiring caps")
	}
}

func TestDeviceGeomFallbackBeforeFirstLayout(t *testing.T) {
	// Exact mode without a report must fall back to the one-fold
	// worst case (the paper's first sizing pass).
	tech := techno.Default060()
	ps, _ := Case(3)
	d, err := SizeFoldedCascode(tech, Default65MHz(), ps)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Devices[MP1].Geom
	want := tech.DiffExtContacted * d.Devices[MP1].W
	if math.Abs(g.AD-want)/want > 1e-9 {
		t.Fatalf("fallback geom AD = %g, want one-fold %g", g.AD, want)
	}
}

func TestDBHelper(t *testing.T) {
	if math.Abs(DB(10)-20) > 1e-12 {
		t.Fatalf("DB(10) = %g", DB(10))
	}
	if math.Abs(DB(-10)-20) > 1e-12 {
		t.Fatal("DB should use magnitude")
	}
}
