package serve

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"testing"
)

// TestEndToEndLayoutBackends is the layout-registry acceptance path on
// the real engine: GET /v1/layouts lists both backends, the same spec
// under the absent / explicit-"slicing" / "rows" spellings keys the
// cache correctly (absent ≡ slicing share one entry, rows gets its
// own), the rows summary carries the non-default backend tag, and
// /v1/runs can filter on it.
func TestEndToEndLayoutBackends(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end layout test runs real synthesis")
	}
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	var lrep LayoutsReport
	getJSON(t, ts.URL+"/v1/layouts", &lrep)
	if lrep.Default != "slicing" {
		t.Fatalf("default layout = %q, want slicing", lrep.Default)
	}
	names := map[string]bool{}
	for _, info := range lrep.Layouts {
		names[info.Name] = true
		if info.Description == "" || len(info.Constraints) == 0 {
			t.Fatalf("backend %q undescribed: %+v", info.Name, info)
		}
	}
	if !names["slicing"] || !names["rows"] {
		t.Fatalf("layout listing = %+v, want slicing and rows", lrep.Layouts)
	}

	// Absent layout: the default backend, cold.
	r1, b1 := post(t, ts.URL+"/v1/synthesize", `{"topology":"five-t","case":4,"skip_verify":true}`)
	if r1.StatusCode != 200 || r1.Header.Get("X-Loas-Cache") != "miss" {
		t.Fatalf("cold default run: status %d, cache %q: %s",
			r1.StatusCode, r1.Header.Get("X-Loas-Cache"), b1)
	}
	defKey := r1.Header.Get("X-Loas-Key")

	// Explicit "slicing" normalizes to the same request: same key, byte
	// replay from the entry the absent spelling populated.
	r2, b2 := post(t, ts.URL+"/v1/synthesize", `{"topology":"five-t","case":4,"skip_verify":true,"layout":"slicing"}`)
	if h := r2.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("explicit slicing X-Loas-Cache = %q, want hit", h)
	}
	if r2.Header.Get("X-Loas-Key") != defKey || !bytes.Equal(b1, b2) {
		t.Fatal("explicit slicing is not a byte replay of the absent spelling")
	}
	if bytes.Contains(b1, []byte(`"layout"`)) {
		t.Fatalf("default-backend summary leaks a layout tag: %s", b1)
	}

	// "rows" is a distinct workload: its own key, its own cold run, and a
	// summary tagged with the non-default backend.
	r3, b3 := post(t, ts.URL+"/v1/synthesize", `{"topology":"five-t","case":4,"skip_verify":true,"layout":"rows"}`)
	if r3.StatusCode != 200 || r3.Header.Get("X-Loas-Cache") != "miss" {
		t.Fatalf("cold rows run: status %d, cache %q: %s",
			r3.StatusCode, r3.Header.Get("X-Loas-Cache"), b3)
	}
	rowsKey := r3.Header.Get("X-Loas-Key")
	if rowsKey == defKey {
		t.Fatal("rows request produced the slicing cache key")
	}
	var rowsSum struct {
		Layout      string `json:"layout"`
		LayoutCalls int    `json:"layout_calls"`
	}
	if err := json.Unmarshal(b3, &rowsSum); err != nil {
		t.Fatal(err)
	}
	if rowsSum.Layout != "rows" || rowsSum.LayoutCalls < 1 {
		t.Fatalf("rows summary = %+v", rowsSum)
	}

	// Replay of the rows spelling hits its own entry.
	r4, b4 := post(t, ts.URL+"/v1/synthesize", `{"topology":"five-t","case":4,"skip_verify":true,"layout":"rows"}`)
	if r4.Header.Get("X-Loas-Cache") != "hit" || r4.Header.Get("X-Loas-Key") != rowsKey || !bytes.Equal(b3, b4) {
		t.Fatal("rows cache hit is not a byte replay under the rows key")
	}

	// An unknown backend is rejected up front.
	rBad, bBad := post(t, ts.URL+"/v1/synthesize", `{"layout":"herringbone"}`)
	if rBad.StatusCode != 400 {
		t.Fatalf("unknown layout: status %d (%s), want 400", rBad.StatusCode, bBad)
	}

	// The run listing filters on the backend: exactly one rows run (the
	// cold one; the replay is a cache-hit run tagged the same way).
	var rruns RunsReport
	getJSON(t, ts.URL+"/v1/runs?layout=rows", &rruns)
	if len(rruns.Runs) != 2 {
		t.Fatalf("layout=rows runs = %+v, want the cold run and its replay", rruns.Runs)
	}
	for _, rs := range rruns.Runs {
		if rs.Layout != "rows" {
			t.Fatalf("filtered run not tagged rows: %+v", rs)
		}
	}
}

// TestEndToEndBatchPagination: limit/offset window the batch report's
// results without changing the workload — every item executes, the
// totals describe the full batch, and walking pages covers each result
// exactly once in submission order.
func TestEndToEndBatchPagination(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end batch pagination test runs real synthesis")
	}
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	const body = `[{"case":1,"skip_verify":true},{"case":2,"skip_verify":true},{"case":1,"skip_verify":true},{"case":3,"skip_verify":true},{"case":2,"skip_verify":true}]`

	page := func(limit, offset int) BatchReport {
		t.Helper()
		req := struct {
			Items  json.RawMessage `json:"items"`
			Limit  int             `json:"limit,omitempty"`
			Offset int             `json:"offset,omitempty"`
		}{Items: json.RawMessage(body), Limit: limit, Offset: offset}
		data, _ := json.Marshal(req)
		resp, raw := post(t, ts.URL+"/v1/batch", string(data))
		if resp.StatusCode != 200 {
			t.Fatalf("batch limit=%d offset=%d: status %d: %s", limit, offset, resp.StatusCode, raw)
		}
		var rep BatchReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			t.Fatal(err)
		}
		return rep
	}

	full := page(0, 0)
	if full.Items != 5 || full.Unique != 3 || len(full.Results) != 5 {
		t.Fatalf("unpaginated report = %d items / %d unique / %d results", full.Items, full.Unique, len(full.Results))
	}

	// Walk the same batch in pages of 2: totals still describe all 5
	// items, and the concatenated windows are the full result sequence.
	var indices []int
	for off := 0; off < full.Items; off += 2 {
		rep := page(2, off)
		if rep.Items != 5 || rep.Unique != 3 {
			t.Fatalf("page at offset %d reports %d items / %d unique, want full-batch totals", off, rep.Items, rep.Unique)
		}
		if rep.Key != full.Key {
			t.Fatalf("page at offset %d has key %s, want the batch key %s", off, rep.Key, full.Key)
		}
		for _, r := range rep.Results {
			indices = append(indices, r.Index)
		}
	}
	if len(indices) != 5 {
		t.Fatalf("pages covered %d results, want 5: %v", len(indices), indices)
	}
	for i, idx := range indices {
		if idx != i {
			t.Fatalf("paged walk out of order: %v", indices)
		}
	}

	// Offset past the end: empty window, full-batch totals.
	past := page(0, 100)
	if len(past.Results) != 0 || past.Items != 5 {
		t.Fatalf("past-the-end page = %d results / %d items", len(past.Results), past.Items)
	}

	// Negative pagination is rejected.
	resp, raw := post(t, ts.URL+"/v1/batch", `{"items":[{"case":1}],"limit":-1}`)
	if resp.StatusCode != 400 {
		t.Fatalf("negative limit: status %d (%s), want 400", resp.StatusCode, raw)
	}
}
