package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrometheusHistogramConformance pins the text-exposition contract
// for a plain histogram: cumulative buckets, the mandatory +Inf bucket,
// and the _sum/_count pair.
func TestPrometheusHistogramConformance(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_hist_seconds", "help text", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# HELP t_hist_seconds help text\n",
		"# TYPE t_hist_seconds histogram\n",
		`t_hist_seconds_bucket{le="0.1"} 1` + "\n",
		`t_hist_seconds_bucket{le="1"} 2` + "\n",
		`t_hist_seconds_bucket{le="+Inf"} 3` + "\n",
		"t_hist_seconds_sum 2.55\n",
		"t_hist_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}

// TestPrometheusHistogramVecConformance pins the labeled-family form:
// one TYPE header for the family, per-series buckets with the label
// before le, labeled _sum/_count, label values in sorted order.
func TestPrometheusHistogramVecConformance(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("t_phase_seconds", "per-phase time", "phase", []float64{0.5})
	v.With("sizing").Observe(0.1)
	v.With("sizing").Observe(0.9)
	v.With("layout").Observe(0.2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if n := strings.Count(out, "# TYPE t_phase_seconds histogram"); n != 1 {
		t.Fatalf("want exactly one TYPE header for the family, got %d:\n%s", n, out)
	}
	for _, want := range []string{
		`t_phase_seconds_bucket{phase="layout",le="0.5"} 1`,
		`t_phase_seconds_bucket{phase="layout",le="+Inf"} 1`,
		`t_phase_seconds_sum{phase="layout"} 0.2`,
		`t_phase_seconds_count{phase="layout"} 1`,
		`t_phase_seconds_bucket{phase="sizing",le="0.5"} 1`,
		`t_phase_seconds_bucket{phase="sizing",le="+Inf"} 2`,
		`t_phase_seconds_count{phase="sizing"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// "layout" must render before "sizing": sorted label values.
	if strings.Index(out, `phase="layout"`) > strings.Index(out, `phase="sizing"`) {
		t.Errorf("label values not sorted:\n%s", out)
	}
}

// TestPrometheusLabelEscaping pins the three label-value escapes of the
// text format: backslash, double quote, newline.
func TestPrometheusLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("t_esc", "", "tag", []float64{1})
	v.With("a\\b\"c\nd").Observe(0.5)
	r.InfoGauge("t_esc_info", "", map[string]string{"path": `C:\x`, "q": "say \"hi\"\n"})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`t_esc_bucket{tag="a\\b\"c\nd",le="1"} 1`,
		`t_esc_info{path="C:\\x",q="say \"hi\"\n"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\nd\"") {
		t.Errorf("raw newline leaked into a label value:\n%s", out)
	}
}

// TestPrometheusStableOrdering: two renders of the same registry are
// byte-identical, and metric families appear in sorted name order.
func TestPrometheusStableOrdering(t *testing.T) {
	r := NewRegistry()
	r.Counter("t_zz_total", "z").Inc()
	r.Counter("t_aa_total", "a").Inc()
	v := r.HistogramVec("t_mm_seconds", "m", "phase", []float64{1})
	v.With("b").Observe(0.1)
	v.With("a").Observe(0.2)
	r.InfoGauge("t_ii_info", "i", map[string]string{"b": "2", "a": "1"})

	var b1, b2 bytes.Buffer
	if err := r.WritePrometheus(&b1); err != nil {
		t.Fatal(err)
	}
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Fatalf("exposition not stable across renders:\n--- first\n%s\n--- second\n%s", b1.String(), b2.String())
	}
	out := b1.String()
	ia, im, iz := strings.Index(out, "t_aa_total"), strings.Index(out, "t_mm_seconds"), strings.Index(out, "t_zz_total")
	if !(ia < im && im < iz) {
		t.Fatalf("families not name-sorted (aa@%d mm@%d zz@%d):\n%s", ia, im, iz, out)
	}
	if !strings.Contains(out, `t_ii_info{a="1",b="2"} 1`) {
		t.Fatalf("info labels not key-sorted:\n%s", out)
	}
}

// TestInfoGaugeFirstRegistrationWins: re-registering an info gauge keeps
// the original labels, and the registered map is a copy.
func TestInfoGaugeFirstRegistrationWins(t *testing.T) {
	r := NewRegistry()
	labels := map[string]string{"version": "v1"}
	r.InfoGauge("t_build_info", "", labels)
	labels["version"] = "mutated"
	r.InfoGauge("t_build_info", "", map[string]string{"version": "v2"})

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if want := `t_build_info{version="v1"} 1`; !strings.Contains(buf.String(), want) {
		t.Fatalf("want %q, got:\n%s", want, buf.String())
	}
}
