package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"loas/internal/obs"
)

// The run layer makes history a first-class endpoint family: every
// request to a result endpoint — cold, cache-hit, dedup-joined or
// failed — becomes one obs.RunRecord held in a bounded in-memory store
// (GET /v1/runs, GET /v1/runs/{id}), appended to the on-disk ledger
// when one is configured, and narrated live over GET /v1/events.

// Run outcome labels.
const (
	outcomeOK       = "ok"        // cold execution reached the backend
	outcomeCacheHit = "cache-hit" // byte replay from the result cache
	outcomeDedup    = "dedup"     // joined an identical in-flight run
	outcomeError    = "error"
)

// runInfo is what a handler knows about a request before it runs.
type runInfo struct {
	kind       string // synthesize | table1 | mc | layout.svg | batch | explore
	topology   string
	layout     string // non-default layout backend, "" for slicing
	caseN      int
	key        string // content-addressed cache key
	specDigest string
	parent     string // batch/explore run ID this run is a child of
	// request is the canonicalized request body (compact JSON with the
	// resolved spec embedded) recorded into the ledger for `loas replay`.
	// nil for GET-style runs; bodies over maxRecordedRequest are dropped
	// at finish so one giant batch cannot blow the ledger's rotation.
	request []byte
}

// maxRecordedRequest bounds the request body copied into a RunRecord.
const maxRecordedRequest = 256 << 10

// recordRequest renders v as the runInfo.request canonical compact
// form, dropping it (nil, no error surfaced — recording is advisory)
// if encoding fails.
func recordRequest(v any) []byte {
	b, err := marshalCompact(v)
	if err != nil {
		return nil
	}
	return b
}

// activeRun is a run in flight: its recorder, root span and live trace.
type activeRun struct {
	info      runInfo
	id        string
	seq       int64
	startUnix int64
	rec       *obs.Recorder
	root      *obs.Span
	trace     *obs.Trace
}

// beginRun opens the run: allocates the ID (sequence numbers continue
// across restarts via the ledger), starts the span tree and announces
// run-start on the event stream.
func (s *Server) beginRun(info runInfo, start time.Time) *activeRun {
	seq := s.runSeq.Add(1)
	ar := &activeRun{
		info:      info,
		id:        fmt.Sprintf("run-%06d", seq),
		seq:       seq,
		startUnix: start.UnixNano(),
		rec:       obs.NewRecorder(),
	}
	ar.root = ar.rec.Root("request")
	ar.root.SetAttr("kind", info.kind)
	if info.topology != "" {
		ar.root.SetAttr("topology", info.topology)
	}
	if info.layout != "" {
		ar.root.SetAttr("layout", info.layout)
	}
	if info.caseN != 0 {
		ar.root.SetAttr("case", strconv.Itoa(info.caseN))
	}
	ar.trace = obs.NewTraceFunc(func(it obs.Iteration) {
		s.events.publish("iteration", iterationEvent{RunID: ar.id, Iteration: it})
	})
	s.events.publish("run-start", runStartEvent{
		ID: ar.id, Kind: info.kind, Topology: info.topology,
		Case: info.caseN, CacheKey: info.key, Parent: info.parent,
	})
	return ar
}

// finishRun closes the run: ends the root span, freezes the record
// (body is the response; its size and SHA-256 make the record a replay
// target), stores it, appends it to the ledger and announces run-end.
func (s *Server) finishRun(ar *activeRun, outcome string, err error, body []byte) {
	ar.root.End()
	iters := ar.trace.Iterations()
	rec := obs.RunRecord{
		ID:          ar.id,
		Seq:         ar.seq,
		StartUnixNS: ar.startUnix,
		Source:      "daemon",
		Kind:        ar.info.kind,
		Topology:    ar.info.topology,
		Layout:      ar.info.layout,
		Case:        ar.info.caseN,
		Parent:      ar.info.parent,
		CacheKey:    ar.info.key,
		SpecDigest:  ar.info.specDigest,
		Outcome:     outcome,
		DurationNS:  ar.root.Duration().Nanoseconds(),
		Converged:   obs.Converged(iters, 1e-15),
		LayoutCalls: len(iters),
		Bytes:       len(body),
		Spans:       ar.rec.Snapshot(),
		Iterations:  iters,
	}
	if len(body) > 0 {
		sum := sha256.Sum256(body)
		rec.BodySHA256 = hex.EncodeToString(sum[:])
	}
	if len(ar.info.request) > 0 && len(ar.info.request) <= maxRecordedRequest {
		rec.Request = json.RawMessage(ar.info.request)
	}
	if err != nil {
		rec.Error = err.Error()
	}
	s.runs.add(&rec)
	if lerr := s.ledger.Append(rec); lerr != nil {
		s.ledgerErrs.Add(1)
	}
	s.events.publish("run-end", runEndEvent{
		ID: ar.id, Outcome: outcome, DurationNS: rec.DurationNS,
		Converged: rec.Converged, LayoutCalls: rec.LayoutCalls, Error: rec.Error,
	})
}

// runStore retains recent run records in memory, bounded FIFO like the
// trace store. Records are immutable once added.
type runStore struct {
	mu    sync.Mutex
	max   int
	order []string
	m     map[string]*obs.RunRecord
}

func newRunStore(max int) *runStore {
	if max <= 0 {
		max = 1024
	}
	return &runStore{max: max, m: map[string]*obs.RunRecord{}}
}

func (rs *runStore) add(rec *obs.RunRecord) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	if _, ok := rs.m[rec.ID]; !ok {
		rs.order = append(rs.order, rec.ID)
		for len(rs.order) > rs.max {
			delete(rs.m, rs.order[0])
			rs.order = rs.order[1:]
		}
	}
	rs.m[rec.ID] = rec
}

func (rs *runStore) get(id string) (*obs.RunRecord, bool) {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	rec, ok := rs.m[id]
	return rec, ok
}

func (rs *runStore) len() int {
	rs.mu.Lock()
	defer rs.mu.Unlock()
	return len(rs.m)
}

// runFilter is the /v1/runs query surface.
type runFilter struct {
	topology  string
	layout    string
	kind      string
	outcome   string
	parent    string
	converged *bool
	minDur    time.Duration
	limit     int
}

// list returns matching records, newest (highest seq) first, up to
// limit.
func (rs *runStore) list(f runFilter) []*obs.RunRecord {
	rs.mu.Lock()
	recs := make([]*obs.RunRecord, 0, len(rs.order))
	for _, id := range rs.order {
		recs = append(recs, rs.m[id])
	}
	rs.mu.Unlock()
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq > recs[j].Seq })
	out := make([]*obs.RunRecord, 0, len(recs))
	for _, r := range recs {
		if f.topology != "" && r.Topology != f.topology {
			continue
		}
		if f.layout != "" && r.Layout != f.layout {
			continue
		}
		if f.kind != "" && r.Kind != f.kind {
			continue
		}
		if f.outcome != "" && r.Outcome != f.outcome {
			continue
		}
		if f.parent != "" && r.Parent != f.parent {
			continue
		}
		if f.converged != nil && r.Converged != *f.converged {
			continue
		}
		if f.minDur > 0 && time.Duration(r.DurationNS) < f.minDur {
			continue
		}
		out = append(out, r)
		if f.limit > 0 && len(out) >= f.limit {
			break
		}
	}
	return out
}

// RunSummary is one row of GET /v1/runs — the record without its span
// tree and iterations (fetch /v1/runs/{id} for those).
type RunSummary struct {
	ID          string `json:"id"`
	Seq         int64  `json:"seq"`
	StartUnixNS int64  `json:"start_unix_ns"`
	Source      string `json:"source"`
	Kind        string `json:"kind"`
	Topology    string `json:"topology,omitempty"`
	Layout      string `json:"layout,omitempty"`
	Case        int    `json:"case,omitempty"`
	Parent      string `json:"parent,omitempty"`
	Outcome     string `json:"outcome"`
	Error       string `json:"error,omitempty"`
	DurationNS  int64  `json:"duration_ns"`
	Converged   bool   `json:"converged"`
	LayoutCalls int    `json:"layout_calls"`
	Spans       int    `json:"spans"`
	Iterations  int    `json:"iterations"`
}

func summarize(r *obs.RunRecord) RunSummary {
	return RunSummary{
		ID: r.ID, Seq: r.Seq, StartUnixNS: r.StartUnixNS, Source: r.Source,
		Kind: r.Kind, Topology: r.Topology, Layout: r.Layout, Case: r.Case, Parent: r.Parent, Outcome: r.Outcome,
		Error: r.Error, DurationNS: r.DurationNS, Converged: r.Converged,
		LayoutCalls: r.LayoutCalls, Spans: len(r.Spans), Iterations: len(r.Iterations),
	}
}

// RunsReport is the GET /v1/runs payload.
type RunsReport struct {
	Total int          `json:"total"` // runs retained in the store
	Runs  []RunSummary `json:"runs"`  // newest first, after filters
}

// handleRuns lists recent runs. Query parameters: topology, layout
// (non-default layout backend name), kind
// (synthesize|table1|mc|layout.svg|batch|explore), outcome, parent
// (batch/explore run ID whose children to list), converged
// (true|false), min_duration (Go duration, e.g. 150ms), limit
// (default 50).
func (s *Server) handleRuns(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	evRequests.Add(1)
	q := r.URL.Query()
	f := runFilter{
		topology: q.Get("topology"),
		layout:   q.Get("layout"),
		kind:     q.Get("kind"),
		outcome:  q.Get("outcome"),
		parent:   q.Get("parent"),
		limit:    50,
	}
	if v := q.Get("converged"); v != "" {
		b, err := strconv.ParseBool(v)
		if err != nil {
			s.errorBody(w, http.StatusBadRequest, fmt.Errorf("converged: %w", err))
			return
		}
		f.converged = &b
	}
	if v := q.Get("min_duration"); v != "" {
		d, err := time.ParseDuration(v)
		if err != nil {
			s.errorBody(w, http.StatusBadRequest, fmt.Errorf("min_duration: %w", err))
			return
		}
		f.minDur = d
	}
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			s.errorBody(w, http.StatusBadRequest, fmt.Errorf("limit must be a positive integer, got %q", v))
			return
		}
		f.limit = n
	}
	recs := s.runs.list(f)
	rep := RunsReport{Total: s.runs.len(), Runs: make([]RunSummary, 0, len(recs))}
	for _, rec := range recs {
		rep.Runs = append(rep.Runs, summarize(rec))
	}
	body, err := marshalJSON(rep)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.served.Add(1)
}

// handleRunByID serves one full run record: span tree + iterations.
func (s *Server) handleRunByID(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	evRequests.Add(1)
	id := r.PathValue("id")
	rec, ok := s.runs.get(id)
	if !ok {
		s.errorBody(w, http.StatusNotFound, fmt.Errorf("no run %q (the store keeps the most recent runs; see /v1/runs)", id))
		return
	}
	body, err := marshalJSON(rec)
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.served.Add(1)
}
