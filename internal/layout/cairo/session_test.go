package cairo

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"testing"

	"loas/internal/device"
	"loas/internal/layout/route"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

// perturbedDesign builds the test design with scaled device geometry and
// passive values — one point of the perturbation space the property test
// walks. Scales of exactly 1 reproduce the base design bit-for-bit.
func perturbedDesign(wScale, stackScale, capScale float64) *Design {
	return &Design{
		Name: "prop",
		Modules: []Module{
			&Transistor{
				Inst: "MP1", Type: techno.PMOS,
				W: 60 * um * wScale, L: 1 * um,
				Style:    device.DrainInternal,
				DrainNet: "out", GateNet: "bias", SourceNet: "vdd", BulkNet: "vdd",
				IDrain: 150e-6, EvenOnly: true,
			},
			&MatchedStack{
				Label: "mirror", Type: techno.NMOS,
				Devices: []stack.Device{
					{Name: "MN1", Units: 2, DrainNet: "bias", GateNet: "bias"},
					{Name: "MN2", Units: 2, DrainNet: "out", GateNet: "bias"},
				},
				SourceNet: "gnd", BulkNet: "gnd",
				WidthPerBaseUnit: 15 * um * stackScale, L: 1 * um,
				Currents:   map[string]float64{"bias": 150e-6, "out": 150e-6},
				EndDummies: true,
			},
			&CapModule{
				Inst: "CC", C: 1e-12 * capScale,
				TopNet: "out", BottomNet: "gnd",
			},
			&ResistorModule{
				Inst: "RZ", R: 2000,
				ANet: "out", BNet: "bias",
			},
		},
		Tree: &Tree{Vertical: false, GapNM: 8000,
			Leaves: []string{"MP1", "mirror"},
			Children: []*Tree{
				{Vertical: true, GapNM: 8000, Leaves: []string{"CC", "RZ"}},
			}},
		Nets: []route.Net{{Name: "out", Current: 150e-6}, {Name: "bias", Current: 150e-6}},
	}
}

// planFingerprint renders a plan's full observable output — parasitics
// and geometry — with exact hex floats.
func planFingerprint(p *Plan) string {
	var b strings.Builder
	hx := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	par := p.Parasitics
	var keys []string
	for k := range par.NetCap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "net %s=%s\n", k, hx(par.NetCap[k]))
	}
	pairs := make([]route.NetPair, 0, len(par.Coupling))
	for pr := range par.Coupling {
		pairs = append(pairs, pr)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, pr := range pairs {
		fmt.Fprintf(&b, "coup %s~%s=%s\n", pr.A, pr.B, hx(par.Coupling[pr]))
	}
	keys = keys[:0]
	for k := range par.WellCap {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "well %s=%s\n", k, hx(par.WellCap[k]))
	}
	keys = keys[:0]
	for k := range par.DeviceGeom {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		g := par.DeviceGeom[k]
		f := par.Folds[k]
		fmt.Fprintf(&b, "dev %s %s %s %s %s f%d %s\n", k,
			hx(g.AD), hx(g.PD), hx(g.AS), hx(g.PS), f.Folds, hx(f.FingerW))
	}
	fmt.Fprintf(&b, "fp %s %s %s\n", hx(par.WidthUM), hx(par.HeightUM), hx(par.AreaUM2))
	for _, sh := range p.Cell.Shapes {
		fmt.Fprintf(&b, "s %d %d,%d,%d,%d %s\n", sh.Layer, sh.R.L, sh.R.B, sh.R.R, sh.R.T, sh.Net)
	}
	for _, pt := range p.Cell.Ports {
		fmt.Fprintf(&b, "p %s %s %d %d,%d,%d,%d\n", pt.Name, pt.Net, pt.Layer, pt.R.L, pt.R.B, pt.R.R, pt.R.T)
	}
	names := make([]string, 0, len(p.ChoiceOf))
	for n := range p.ChoiceOf {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "c %s=%d\n", n, p.ChoiceOf[n])
	}
	return b.String()
}

// TestSessionIncrementalEqualsFull is the property test for incremental
// extraction: over randomized module-geometry perturbation sequences, a
// persistent Session (reusing module builds, shape functions and routing
// across steps) must produce bit-identical plans to a cold Plan call at
// every step. Cases cover the nothing-changed and all-changed extremes
// plus seeded random walks that perturb random module subsets.
func TestSessionIncrementalEqualsFull(t *testing.T) {
	tech := techno.Default060()

	// scales maps a step index to the design perturbation of that step.
	cases := []struct {
		name   string
		seed   int64
		steps  int
		scales func(rng *rand.Rand, step int) (w, stack, cap float64)
	}{
		{
			// Every step re-plans the identical design: the session must
			// replay everything and change nothing.
			name: "nothing-changed", steps: 4,
			scales: func(*rand.Rand, int) (float64, float64, float64) { return 1, 1, 1 },
		},
		{
			// Every module changes every step: the session caches are
			// pure overhead and must stay invisible.
			name: "all-changed", seed: 11, steps: 4,
			scales: func(rng *rand.Rand, _ int) (float64, float64, float64) {
				return 0.8 + 0.4*rng.Float64(), 0.8 + 0.4*rng.Float64(), 0.8 + 0.4*rng.Float64()
			},
		},
		{
			// A random subset of modules changes each step (including
			// possibly none), revisiting earlier geometry so stale-entry
			// reuse would be caught.
			name: "random-subset", seed: 23, steps: 8,
			scales: func(rng *rand.Rand, _ int) (float64, float64, float64) {
				pick := func() float64 {
					if rng.Intn(2) == 0 {
						return 1
					}
					// A coarse grid revisits values across steps.
					return 0.8 + 0.1*float64(rng.Intn(5))
				}
				return pick(), pick(), pick()
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(tc.seed))
			s := NewSession(true, true)
			for step := 0; step < tc.steps; step++ {
				w, st, cp := tc.scales(rng, step)
				cold, err := perturbedDesign(w, st, cp).Plan(tech, Constraint{})
				if err != nil {
					t.Fatalf("step %d cold plan: %v", step, err)
				}
				warm, err := perturbedDesign(w, st, cp).PlanSession(tech, Constraint{}, s)
				if err != nil {
					t.Fatalf("step %d session plan: %v", step, err)
				}
				if cf, wf := planFingerprint(cold), planFingerprint(warm); cf != wf {
					cl, wl := strings.Split(cf, "\n"), strings.Split(wf, "\n")
					for i := 0; i < len(cl) && i < len(wl); i++ {
						if cl[i] != wl[i] {
							t.Fatalf("step %d: session diverged at line %d:\n  cold: %s\n  warm: %s",
								step, i+1, cl[i], wl[i])
						}
					}
					t.Fatalf("step %d: session diverged in length: %d vs %d", step, len(cl), len(wl))
				}
			}
			st := s.Stats()
			if st.BuildHits == 0 || st.ShapeHits == 0 {
				t.Fatalf("session never hit its caches: %+v", st)
			}
			if tc.name == "nothing-changed" && st.RouteHits == 0 {
				t.Fatalf("identical re-plans never replayed routing: %+v", st)
			}
		})
	}
}

// TestSessionTechMismatchBypasses pins the safety valve: a session serves
// exactly one technology, and a Plan under a different one must compute
// cold rather than replay geometry from the wrong process.
func TestSessionTechMismatchBypasses(t *testing.T) {
	techA := techno.Default060()
	techB := techno.Default060()
	s := NewSession(true, true)
	if _, err := perturbedDesign(1, 1, 1).PlanSession(techA, Constraint{}, s); err != nil {
		t.Fatal(err)
	}
	got, err := perturbedDesign(1, 1, 1).PlanSession(techB, Constraint{}, s)
	if err != nil {
		t.Fatal(err)
	}
	want, err := perturbedDesign(1, 1, 1).Plan(techB, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if planFingerprint(got) != planFingerprint(want) {
		t.Fatal("tech-mismatched session altered the plan")
	}
	st := s.Stats()
	if st.BuildHits != 0 && st.RouteHits != 0 {
		// Both techs produced identical keys only if the cache was
		// consulted across technologies — which bindTech must prevent.
		t.Fatalf("session served entries across technologies: %+v", st)
	}
}
