module loas

go 1.22
