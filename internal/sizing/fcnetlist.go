package sizing

import (
	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/cairo"
	"loas/internal/layout/route"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

// Netlist builds the sized OTA as a circuit: the eleven transistors of
// Fig. 4, the supply and the four computed bias voltages. Input nets
// (inp, inn) and the output are left for the testbench to drive/load.
// Device junction geometries carry the sizing-time assumption; the
// extractor overwrites them for the extracted netlist.
func (d *FoldedCascode) Netlist(name string) *circuit.Circuit {
	c := circuit.New(name)
	tech := d.Tech
	mos := func(inst, dn, g, s, b string) *circuit.MOSFET {
		ds := d.Devices[inst]
		card := &tech.N
		if ds.Type == techno.PMOS {
			card = &tech.P
		}
		return &circuit.MOSFET{
			Name: inst, D: dn, G: g, S: s, B: b,
			Dev: device.MOS{Card: card, W: ds.W, L: ds.L, Geom: ds.Geom},
		}
	}
	c.Add(
		&circuit.VSource{Name: "dd", Pos: NetVDD, Neg: NetGND, DC: d.Spec.VDD},
		&circuit.VSource{Name: "bp", Pos: NetVBP, Neg: NetGND, DC: d.Bias[NetVBP]},
		&circuit.VSource{Name: "bn", Pos: NetVBN, Neg: NetGND, DC: d.Bias[NetVBN]},
		&circuit.VSource{Name: "c1", Pos: NetVC1, Neg: NetGND, DC: d.Bias[NetVC1]},
		&circuit.VSource{Name: "c3", Pos: NetVC3, Neg: NetGND, DC: d.Bias[NetVC3]},

		// Input pair in a source-tied well (bulk = tail).
		mos(MP1, NetFN1, NetInP, NetTail, NetTail),
		mos(MP2, NetFN2, NetInN, NetTail, NetTail),
		mos(MP5, NetTail, NetVBP, NetVDD, NetVDD),

		// Top PMOS cascode current mirror.
		mos(MP3, NetN3, NetMO1, NetVDD, NetVDD),
		mos(MP4, NetN4, NetMO1, NetVDD, NetVDD),
		mos(MP3C, NetMO1, NetVC3, NetN3, NetVDD),
		mos(MP4C, NetOut, NetVC3, NetN4, NetVDD),

		// NMOS cascodes and bottom sinks.
		mos(MN1C, NetMO1, NetVC1, NetFN1, NetGND),
		mos(MN2C, NetOut, NetVC1, NetFN2, NetGND),
		mos(MN5, NetFN1, NetVBN, NetGND, NetGND),
		mos(MN6, NetFN2, NetVBN, NetGND, NetGND),
	)
	return c
}

// NodeSet returns DC seeds for the simulator from the design-time
// estimates.
func (d *FoldedCascode) NodeSet() map[string]float64 {
	ns := map[string]float64{}
	for k, v := range d.NodeEst {
		ns[k] = v
	}
	ns[NetVBP] = d.Bias[NetVBP]
	ns[NetVBN] = d.Bias[NetVBN]
	ns[NetVC1] = d.Bias[NetVC1]
	ns[NetVC3] = d.Bias[NetVC3]
	return ns
}

// Layout builds the CAIRO design for the sized OTA: matched stacks for
// the input pair, the top sources and the bottom sinks; single folded
// transistors for the cascodes and the tail; slicing rows bottom-up
// (sinks, N cascodes, P cascodes, sources, pair+tail); and the signal and
// bias nets with their DC currents for reliability-driven routing.
//
// Frequency-critical drains (out, fold and mirror nodes) use the
// drain-internal even-fold style of Fig. 2 case (a).
func (d *FoldedCascode) Layout() *cairo.Design {
	chan6 := int64(6 * 1000) // 6 µm routing channel, in nm

	tr := func(inst, dn, g, s, b string, even bool) *cairo.Transistor {
		ds := d.Devices[inst]
		return &cairo.Transistor{
			Inst: inst, Type: ds.Type, W: ds.W, L: ds.L,
			Style:    device.DrainInternal,
			DrainNet: dn, GateNet: g, SourceNet: s, BulkNet: b,
			IDrain:   ds.ID,
			MaxFolds: 10, EvenOnly: even,
		}
	}

	pairUnits := 2
	pair := &cairo.MatchedStack{
		Label: "pair", Type: techno.PMOS,
		Devices: []stack.Device{
			{Name: MP1, Units: pairUnits, DrainNet: NetFN1, GateNet: NetInP},
			{Name: MP2, Units: pairUnits, DrainNet: NetFN2, GateNet: NetInN},
		},
		SourceNet: NetTail, BulkNet: NetTail, WellNet: NetTail,
		WidthPerBaseUnit: d.Devices[MP1].W / float64(pairUnits),
		L:                d.Devices[MP1].L,
		Currents: map[string]float64{
			NetFN1: d.Devices[MP1].ID, NetFN2: d.Devices[MP2].ID,
		},
		EndDummies: true,
		Splits:     []int{1, 2, 3},
	}
	pmir := &cairo.MatchedStack{
		Label: "pmir", Type: techno.PMOS,
		Devices: []stack.Device{
			{Name: MP3, Units: 2, DrainNet: NetN3, GateNet: NetMO1},
			{Name: MP4, Units: 2, DrainNet: NetN4, GateNet: NetMO1},
		},
		SourceNet: NetVDD, BulkNet: NetVDD,
		WidthPerBaseUnit: d.Devices[MP3].W / 2,
		L:                d.Devices[MP3].L,
		Currents: map[string]float64{
			NetN3: d.Devices[MP3].ID, NetN4: d.Devices[MP4].ID,
		},
		EndDummies: true,
		Splits:     []int{1, 2, 3},
	}
	nsink := &cairo.MatchedStack{
		Label: "nsink", Type: techno.NMOS,
		Devices: []stack.Device{
			{Name: MN5, Units: 2, DrainNet: NetFN1, GateNet: NetVBN},
			{Name: MN6, Units: 2, DrainNet: NetFN2, GateNet: NetVBN},
		},
		SourceNet: "gnd", BulkNet: "gnd",
		WidthPerBaseUnit: d.Devices[MN5].W / 2,
		L:                d.Devices[MN5].L,
		Currents: map[string]float64{
			NetFN1: d.Devices[MN5].ID, NetFN2: d.Devices[MN6].ID,
		},
		EndDummies: true,
		Splits:     []int{1, 2, 3},
	}

	des := &cairo.Design{
		Name: "folded-cascode-ota",
		Modules: []cairo.Module{
			pair, pmir, nsink,
			tr(MP5, NetTail, NetVBP, NetVDD, NetVDD, true),
			tr(MP3C, NetMO1, NetVC3, NetN3, NetVDD, true),
			tr(MP4C, NetOut, NetVC3, NetN4, NetVDD, true),
			tr(MN1C, NetMO1, NetVC1, NetFN1, "gnd", true),
			tr(MN2C, NetOut, NetVC1, NetFN2, "gnd", true),
		},
		Tree: &cairo.Tree{ // rows bottom-up, separated by routing channels
			Vertical: false,
			GapNM:    chan6,
			Children: []*cairo.Tree{
				{Vertical: true, GapNM: chan6, Leaves: []string{"nsink"}},
				{Vertical: true, GapNM: chan6, Leaves: []string{MN1C, MN2C}},
				{Vertical: true, GapNM: chan6, Leaves: []string{MP3C, MP4C}},
				{Vertical: true, GapNM: chan6, Leaves: []string{"pmir"}},
				{Vertical: true, GapNM: chan6, Leaves: []string{"pair", MP5}},
			},
		},
		Nets: []route.Net{
			{Name: NetFN1, Current: d.Devices[MN5].ID},
			{Name: NetFN2, Current: d.Devices[MN6].ID},
			{Name: NetMO1, Current: d.Icasc},
			{Name: NetN3, Current: d.Icasc},
			{Name: NetN4, Current: d.Icasc},
			{Name: NetOut, Current: d.Icasc},
			{Name: NetTail, Current: d.Itail},
			{Name: NetInP}, {Name: NetInN},
			{Name: NetVBP}, {Name: NetVBN}, {Name: NetVC1}, {Name: NetVC3},
			{Name: NetVDD, Current: d.Itail + 2*d.Icasc},
			{Name: "gnd", Current: d.Itail + 2*d.Icasc},
		},
	}
	return des
}

// ACGroundNets lists the nets whose wiring capacitance lands on AC ground
// (skipped when lumping parasitics onto the netlist).
func ACGroundNets() []string {
	return []string{NetVDD, "gnd", circuit.Ground, NetVBP, NetVBN, NetVC1, NetVC3}
}
