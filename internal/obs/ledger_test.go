package obs

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func testRecord(seq int64) RunRecord {
	return RunRecord{
		ID:          "run-" + string(rune('0'+seq%10)),
		Seq:         seq,
		StartUnixNS: 1000 * seq,
		Source:      "daemon",
		Kind:        "synthesize",
		Topology:    "folded-cascode",
		Outcome:     "ok",
		DurationNS:  42,
		Converged:   true,
		LayoutCalls: 3,
		Spans: []SpanRecord{
			{ID: 1, Name: "request", DurationNS: 42, Attrs: map[string]string{"kind": "synthesize"}},
			{ID: 2, Parent: 1, Name: "synthesize", DurationNS: 40},
		},
		Iterations: []Iteration{{Call: 1, DeltaF: -1, OutCapF: 101.5e-15}},
	}
}

func TestLedgerAppendReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 5; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLedger(path, LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	hist := l2.History()
	if len(hist) != 5 {
		t.Fatalf("replayed %d records, want 5", len(hist))
	}
	if hist[0].Seq != 1 || hist[4].Seq != 5 {
		t.Fatalf("replay order: first seq %d, last seq %d", hist[0].Seq, hist[4].Seq)
	}
	if l2.LastSeq() != 5 {
		t.Fatalf("LastSeq = %d, want 5", l2.LastSeq())
	}
	got := hist[2]
	want := testRecord(3)
	if got.Topology != want.Topology || len(got.Spans) != 2 || len(got.Iterations) != 1 ||
		got.Spans[0].Attrs["kind"] != "synthesize" || got.Iterations[0].OutCapF != want.Iterations[0].OutCapF {
		t.Fatalf("replayed record differs: %+v", got)
	}
}

// TestLedgerRotation: crossing MaxBytes swaps the active file to
// <path>.1 and replay still sees both generations, newest last.
func TestLedgerRotation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	line, err := EncodeRunRecord(testRecord(1))
	if err != nil {
		t.Fatal(err)
	}
	// Room for about three records per generation.
	l, err := OpenLedger(path, LedgerOptions{MaxBytes: int64(3*len(line)) + 10})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 10; i++ {
		if err := l.Append(testRecord(i)); err != nil {
			t.Fatal(err)
		}
	}
	l.Close()
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("rotated generation missing: %v", err)
	}

	l2, err := OpenLedger(path, LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	hist := l2.History()
	if len(hist) < 4 {
		t.Fatalf("replay after rotation = %d records, want the last two generations", len(hist))
	}
	if last := hist[len(hist)-1].Seq; last != 10 {
		t.Fatalf("newest replayed seq = %d, want 10", last)
	}
	for i := 1; i < len(hist); i++ {
		if hist[i].Seq != hist[i-1].Seq+1 {
			t.Fatalf("replay not contiguous at %d: %d then %d", i, hist[i-1].Seq, hist[i].Seq)
		}
	}
}

// TestLedgerCorruptTail: a truncated final line (torn write at crash)
// is skipped on replay, not fatal, and appending continues.
func TestLedgerCorruptTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 3; i++ {
		l.Append(testRecord(i))
	}
	l.Close()

	// Tear the last record mid-line.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)-25], 0o644); err != nil {
		t.Fatal(err)
	}

	l2, err := OpenLedger(path, LedgerOptions{})
	if err != nil {
		t.Fatalf("open over corrupt tail: %v", err)
	}
	defer l2.Close()
	hist := l2.History()
	if len(hist) != 2 {
		t.Fatalf("replayed %d records over a torn tail, want 2", len(hist))
	}
	if err := l2.Append(testRecord(4)); err != nil {
		t.Fatalf("append after torn tail: %v", err)
	}
}

// TestLedgerBoundedReplay: MaxReplay keeps only the newest records.
func TestLedgerBoundedReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	l, err := OpenLedger(path, LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(1); i <= 20; i++ {
		l.Append(testRecord(i))
	}
	l.Close()
	l2, err := OpenLedger(path, LedgerOptions{MaxReplay: 5})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	hist := l2.History()
	if len(hist) != 5 || hist[0].Seq != 16 || hist[4].Seq != 20 {
		t.Fatalf("bounded replay = %d records (first %d), want the newest 5",
			len(hist), hist[0].Seq)
	}
}

func TestLedgerNilSafety(t *testing.T) {
	var l *Ledger
	if err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if h := l.History(); h != nil {
		t.Fatalf("nil ledger history = %v", h)
	}
	if s := l.LastSeq(); s != 0 {
		t.Fatalf("nil ledger LastSeq = %d", s)
	}
}

// TestDecodeRunRecordsSkipsJunk: undecodable lines are dropped, valid
// ones around them survive.
func TestDecodeRunRecordsSkipsJunk(t *testing.T) {
	a, _ := EncodeRunRecord(testRecord(1))
	b, _ := EncodeRunRecord(testRecord(2))
	var buf bytes.Buffer
	buf.Write(a)
	buf.WriteString("{\"id\": \"torn\n")
	buf.WriteString("not json at all\n")
	buf.WriteString("[1,2,3]\n")
	buf.WriteString("{}\n")
	buf.Write(b)
	got := DecodeRunRecords(buf.Bytes(), 0)
	if len(got) != 2 || got[0].Seq != 1 || got[1].Seq != 2 {
		t.Fatalf("decoded %d records: %+v", len(got), got)
	}
}
