package slicing

import (
	"testing"
)

// fakeNode is a Node implementation the cache has no signature for; it
// delegates to a wrapped node so its options stay realizable.
type fakeNode struct{ inner Node }

func (f fakeNode) Shapes() ShapeFn { return f.inner.Shapes() }

func cacheTestTree() Node {
	a := leaf("a", [2]int64{10, 30}, [2]int64{30, 10})
	b := leaf("b", [2]int64{20, 20})
	c := leaf("c", [2]int64{40, 5}, [2]int64{5, 40})
	return NewCut(false, 2, NewCut(true, 3, a, b), c)
}

func fpEqual(a, b *Floorplan) bool {
	if a.W != b.W || a.H != b.H || len(a.Placed) != len(b.Placed) {
		return false
	}
	for n, pa := range a.Placed {
		if b.Placed[n] != pa {
			return false
		}
	}
	return true
}

func TestOptimizeCachedMatchesOptimize(t *testing.T) {
	root := cacheTestTree()
	want, err := Optimize(root, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	sc := NewShapeCache()
	for i := 0; i < 3; i++ {
		got, err := OptimizeCached(root, Constraint{}, sc)
		if err != nil {
			t.Fatal(err)
		}
		if !fpEqual(got, want) {
			t.Fatalf("cached pass %d diverged: %+v vs %+v", i, got, want)
		}
	}
	hits, misses, size := sc.Stats()
	// Pass 1 misses every subtree (3 leaves + 2 cuts); passes 2-3 hit
	// only the root.
	if misses != 5 || hits != 2 || size != 5 {
		t.Fatalf("stats = %d hits / %d misses / %d entries", hits, misses, size)
	}
	if got, err := OptimizeCached(root, Constraint{}, nil); err != nil || !fpEqual(got, want) {
		t.Fatalf("nil cache diverged: %+v err=%v", got, err)
	}
}

// TestShapeCachePartialInvalidation: changing one leaf recomputes only
// that leaf's root path; untouched subtrees hit.
func TestShapeCachePartialInvalidation(t *testing.T) {
	sc := NewShapeCache()
	build := func(aw int64) Node {
		a := leaf("a", [2]int64{aw, 30})
		b := leaf("b", [2]int64{20, 20})
		c := leaf("c", [2]int64{40, 5})
		return NewCut(false, 2, NewCut(true, 3, a, b), c)
	}
	if _, err := OptimizeCached(build(10), Constraint{}, sc); err != nil {
		t.Fatal(err)
	}
	h0, m0, _ := sc.Stats()
	if _, err := OptimizeCached(build(12), Constraint{}, sc); err != nil {
		t.Fatal(err)
	}
	h1, m1, _ := sc.Stats()
	// Unchanged: leaves b and c. Changed: leaf a, inner cut, root cut.
	if h1-h0 != 2 {
		t.Fatalf("expected 2 hits on the unchanged leaves, got %d", h1-h0)
	}
	if m1-m0 != 3 {
		t.Fatalf("expected 3 misses on a's root path, got %d", m1-m0)
	}
}

func TestSignatureDistinguishes(t *testing.T) {
	base, ok := Signature(cacheTestTree())
	if !ok || base == "" {
		t.Fatal("no signature for canonical tree")
	}
	variants := []Node{
		// Different leaf geometry.
		NewCut(false, 2, NewCut(true, 3, leaf("a", [2]int64{11, 30}, [2]int64{30, 10}),
			leaf("b", [2]int64{20, 20})), leaf("c", [2]int64{40, 5}, [2]int64{5, 40})),
		// Different gap.
		NewCut(false, 3, NewCut(true, 3, leaf("a", [2]int64{10, 30}, [2]int64{30, 10}),
			leaf("b", [2]int64{20, 20})), leaf("c", [2]int64{40, 5}, [2]int64{5, 40})),
		// Different cut direction.
		NewCut(true, 2, NewCut(true, 3, leaf("a", [2]int64{10, 30}, [2]int64{30, 10}),
			leaf("b", [2]int64{20, 20})), leaf("c", [2]int64{40, 5}, [2]int64{5, 40})),
		// Different leaf name.
		NewCut(false, 2, NewCut(true, 3, leaf("a", [2]int64{10, 30}, [2]int64{30, 10}),
			leaf("b", [2]int64{20, 20})), leaf("d", [2]int64{40, 5}, [2]int64{5, 40})),
	}
	for i, v := range variants {
		sig, ok := Signature(v)
		if !ok {
			t.Fatalf("variant %d: no signature", i)
		}
		if sig == base {
			t.Fatalf("variant %d collides with base", i)
		}
	}
}

// TestShapeCacheUnknownNodeBypasses: a custom Node implementation has no
// canonical signature; it and every ancestor compute uncached, but the
// result is still correct.
func TestShapeCacheUnknownNodeBypasses(t *testing.T) {
	custom := fakeNode{inner: leaf("x", [2]int64{20, 20})}
	if _, ok := Signature(custom); ok {
		t.Fatal("custom node got a signature")
	}
	root := NewCut(true, 0, leaf("a", [2]int64{10, 10}), custom)
	if _, ok := Signature(root); ok {
		t.Fatal("ancestor of custom node got a signature")
	}
	sc := NewShapeCache()
	fp, err := OptimizeCached(root, Constraint{}, sc)
	if err != nil {
		t.Fatal(err)
	}
	if fp.W != 30 || fp.H != 20 {
		t.Fatalf("floorplan = %dx%d, want 30x20", fp.W, fp.H)
	}
	if _, _, size := sc.Stats(); size != 0 {
		t.Fatalf("uncanonicalizable tree populated the cache: %d entries", size)
	}
	if h, m, s := (*ShapeCache)(nil).Stats(); h != 0 || m != 0 || s != 0 {
		t.Fatal("nil cache reported stats")
	}
}

func TestFloorplanArea(t *testing.T) {
	fp, err := Optimize(leaf("m", [2]int64{2000, 3000}), Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.Area(); got != 6 {
		t.Fatalf("area = %v um2, want 6", got)
	}
}
