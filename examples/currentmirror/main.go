// Currentmirror reproduces the paper's Fig. 3: a 1:3:6 matched current
// mirror generated as a common-centroid interdigitated stack with dummy
// devices, current-direction-aware orientation and reliability-driven
// wire widths, written out as SVG.
package main

import (
	"fmt"
	"log"
	"os"

	"loas/internal/layout/cairo"
	"loas/internal/repro"
	"loas/internal/techno"
)

func main() {
	tech := techno.Default060()
	text, err := repro.Fig3Text(tech)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(text)

	r, err := repro.Fig3(tech)
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create("current-mirror.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := cairo.WriteSVG(f, r.Stack.Cell); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote current-mirror.svg")
}
