package main

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loas/internal/obs"
	"loas/internal/serve"
	"loas/internal/sizing"
)

// cannedBackend satisfies serve.Backend with fixed bodies, recording a
// short convergence trace into the live run like the real engine does —
// enough to exercise `loas runs/show/tail` against a daemon without
// paying for synthesis.
type cannedBackend struct {
	calls atomic.Int64
}

func (b *cannedBackend) Synthesize(ctx context.Context, _ sizing.OTASpec, req *serve.SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	iters := []obs.Iteration{
		{Topology: req.Topology, Call: 1, DeltaF: -1, Folds: 8},
		{Topology: req.Topology, Call: 2, DeltaF: 0.2e-15, Folds: 8},
	}
	tr := obs.TraceFromContext(ctx)
	for _, it := range iters {
		tr.Record(it)
	}
	n := b.calls.Add(1)
	return []byte(fmt.Sprintf("{\"call\":%d}\n", n)), iters, nil
}
func (b *cannedBackend) Table1(context.Context, sizing.OTASpec) ([]byte, error) {
	return []byte("{}\n"), nil
}
func (b *cannedBackend) MC(context.Context, sizing.OTASpec, *serve.MCRequest) ([]byte, error) {
	return []byte("{}\n"), nil
}
func (b *cannedBackend) LayoutSVG(context.Context, sizing.OTASpec) ([]byte, error) {
	return []byte("<svg/>"), nil
}

func startDaemon(t *testing.T) string {
	t.Helper()
	s := serve.New(serve.Config{Backend: &cannedBackend{}})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close() })
	return ts.URL
}

func TestSmokeRunsAndShow(t *testing.T) {
	url := startDaemon(t)
	// Two runs: one cold, one cache hit.
	runOut(t, "runs", "-addr", url) // header-only listing works on an idle daemon
	for i := 0; i < 2; i++ {
		resp, data := postJSON(t, url+"/v1/synthesize", `{"case":2}`)
		if resp != 200 {
			t.Fatalf("synthesize status %d: %s", resp, data)
		}
	}

	out := runOut(t, "runs", "-addr", url)
	for _, want := range []string{"run-000001", "run-000002", "ok", "cache-hit", "synthesize"} {
		if !strings.Contains(out, want) {
			t.Fatalf("runs output missing %q:\n%s", want, out)
		}
	}
	if out := runOut(t, "runs", "-addr", url, "-outcome", "cache-hit"); strings.Contains(out, "run-000001") {
		t.Fatalf("outcome filter leaked the cold run:\n%s", out)
	}

	show := runOut(t, "show", "-addr", url, "run-000001")
	for _, want := range []string{"run-000001", "span tree:", "request", "queue-wait",
		"cache-lookup", "synthesize", "convergence trace:", "cache key:"} {
		if !strings.Contains(show, want) {
			t.Fatalf("show output missing %q:\n%s", want, show)
		}
	}
	// The replay run carries no iterations, so no convergence table.
	show2 := runOut(t, "show", "-addr", url, "run-000002")
	if strings.Contains(show2, "convergence trace:") {
		t.Fatalf("cache-hit run should have no trace:\n%s", show2)
	}
	if err := run("show", []string{"-addr", url, "run-999999"}, &bytes.Buffer{}); err == nil {
		t.Fatal("show of an unknown run should fail")
	}
	if err := run("show", []string{"-addr", url}, &bytes.Buffer{}); err == nil {
		t.Fatal("show without a run id should fail")
	}
}

func TestSmokeTail(t *testing.T) {
	url := startDaemon(t)
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() { done <- run("tail", []string{"-addr", url, "-n", "4"}, &buf) }()

	// Generate lifecycle events until tail has seen its four; distinct
	// cases keep the backend cold so every run emits iterations too.
	stop := make(chan struct{})
	go func() {
		for i := 1; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			postJSON(t, url+"/v1/synthesize", fmt.Sprintf(`{"case":%d}`, i%4+1))
			time.Sleep(10 * time.Millisecond)
		}
	}()
	select {
	case err := <-done:
		close(stop)
		if err != nil {
			t.Fatalf("tail: %v", err)
		}
	case <-time.After(15 * time.Second):
		close(stop)
		t.Fatal("tail did not finish")
	}
	out := buf.String()
	if !strings.Contains(out, "tailing") || !strings.Contains(out, "start") {
		t.Fatalf("tail output unexpected:\n%s", out)
	}
}

// TestSmokeSynthLedger: `loas synth -ledger` appends one CLI-sourced
// run record — span tree and iterations included — in the exact format
// the daemon writes.
func TestSmokeSynthLedger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	runOut(t, "synth", "-topology", "five-t", "-skipverify", "-ledger", path)

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := obs.DecodeRunRecords(data, 0)
	if len(recs) != 1 {
		t.Fatalf("ledger has %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Source != "cli" || rec.Kind != "synthesize" || rec.Outcome != "ok" {
		t.Fatalf("record = %+v", rec)
	}
	if rec.Topology != "five-t" || !rec.Converged || rec.LayoutCalls < 2 {
		t.Fatalf("record summary implausible: %+v", rec)
	}
	if len(rec.Iterations) != rec.LayoutCalls {
		t.Fatalf("iterations = %d, layout calls = %d", len(rec.Iterations), rec.LayoutCalls)
	}
	names := map[string]bool{}
	for _, s := range rec.Spans {
		names[s.Name] = true
	}
	for _, want := range []string{"request", "iteration", "sizing", "layout-extract"} {
		if !names[want] {
			t.Fatalf("ledger spans missing %q: %v", want, rec.Spans)
		}
	}

	// A second run continues the sequence in the same file.
	runOut(t, "synth", "-topology", "five-t", "-skipverify", "-ledger", path)
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	recs = obs.DecodeRunRecords(data, 0)
	if len(recs) != 2 || recs[1].Seq != 2 || recs[1].ID != "run-000002" {
		t.Fatalf("second append: %+v", recs)
	}
}

// postJSON is a tiny helper mirroring the serve package's test helper.
func postJSON(t *testing.T, url, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(data)
}
