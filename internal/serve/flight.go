package serve

import "sync"

// Flight deduplicates concurrent work on the same cache key
// (singleflight): the first caller for a key becomes the leader and
// computes; every caller that arrives while the leader is in flight
// waits and shares the leader's result. N concurrent identical
// synthesis requests therefore cost exactly one synthesis.
type Flight struct {
	mu     sync.Mutex
	calls  map[string]*flightCall
	joined int64 // callers that shared a leader's result
}

type flightCall struct {
	wg  sync.WaitGroup
	val Value
	err error
}

// NewFlight builds an empty flight group.
func NewFlight() *Flight {
	return &Flight{calls: make(map[string]*flightCall)}
}

// Do runs fn for key, collapsing concurrent duplicates. The returned
// bool reports whether this caller shared another caller's in-flight
// result rather than computing its own.
func (f *Flight) Do(key string, fn func() (Value, error)) (Value, error, bool) {
	f.mu.Lock()
	if c, ok := f.calls[key]; ok {
		f.joined++
		f.mu.Unlock()
		c.wg.Wait()
		return c.val, c.err, true
	}
	c := &flightCall{}
	c.wg.Add(1)
	f.calls[key] = c
	f.mu.Unlock()

	c.val, c.err = fn()
	c.wg.Done()

	f.mu.Lock()
	delete(f.calls, key)
	f.mu.Unlock()
	return c.val, c.err, false
}

// Joined reports how many callers shared an in-flight result so far.
func (f *Flight) Joined() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.joined
}
