package cairo

import (
	"fmt"
	"math"

	"loas/internal/layout/geom"
	"loas/internal/techno"
)

// CapModule generates a poly–poly2 plate capacitor. The bottom plate
// carries a substantial parasitic to substrate (reported on BottomNet),
// which is why SC circuits orient the bottom plate towards the driven
// side — the kind of layout knowledge the paper's language encodes.
type CapModule struct {
	Inst string
	// C is the target capacitance (F).
	C                 float64
	TopNet, BottomNet string
	// Aspects lists width/height ratios offered as shape alternatives
	// (default 1, 2, 4 — wider than tall).
	Aspects []float64
}

// Name implements Module.
func (c *CapModule) Name() string { return c.Inst }

// Choices implements Module.
func (c *CapModule) Choices() []int {
	n := len(c.Aspects)
	if n == 0 {
		n = 3
	}
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func (c *CapModule) aspect(choice int) float64 {
	aspects := c.Aspects
	if len(aspects) == 0 {
		aspects = []float64{1, 2, 4}
	}
	if choice < 0 || choice >= len(aspects) {
		return 1
	}
	return aspects[choice]
}

// Build implements Module.
func (c *CapModule) Build(tech *techno.Tech, choice int) (*Built, error) {
	if c.C <= 0 {
		return nil, fmt.Errorf("cairo: cap %s: non-positive value %g", c.Inst, c.C)
	}
	if tech.Wire.CPolyPoly <= 0 {
		return nil, fmt.Errorf("cairo: technology %s has no poly2 capacitor", tech.Name)
	}
	r := &tech.Rules
	area := c.C / tech.Wire.CPolyPoly // m²
	asp := c.aspect(choice)
	wNM := r.SnapNM(techno.MetersToNM(math.Sqrt(area * asp)))
	hNM := r.SnapNM(techno.MetersToNM(area / techno.NMToMeters(wNM)))
	if wNM < 4*r.ContactSize {
		wNM = r.SnapNM(4 * r.ContactSize)
	}
	if hNM < 4*r.ContactSize {
		hNM = r.SnapNM(4 * r.ContactSize)
	}

	cell := geom.NewCell(c.Inst)
	enc := r.ContactPolyEnc + r.ContactSize // bottom plate margin around poly2
	top := geom.XYWH(0, 0, wNM, hNM)
	bottom := top.Expand(enc)
	cell.Add(techno.LayerPoly, bottom, c.BottomNet)
	cell.Add(techno.LayerPoly2, top, c.TopNet)

	// Terminal pads: top plate contact column on the left inside poly2,
	// bottom plate contacts on the right margin.
	pad := func(x, y int64, net string) geom.Rect {
		x, y = r.SnapDownNM(x), r.SnapDownNM(y)
		p := geom.XYWH(x, y, r.ContactSize+2*r.ContactMetalEnc, r.ContactSize+2*r.ContactMetalEnc)
		cell.Add(techno.LayerContact,
			geom.XYWH(x+r.ContactMetalEnc, y+r.ContactMetalEnc, r.ContactSize, r.ContactSize), net)
		cell.Add(techno.LayerMetal1, p, net)
		return p
	}
	topPad := pad(r.ContactPolyEnc, hNM/2-r.ContactSize, c.TopNet)
	botPad := pad(bottom.R-enc, hNM/2-r.ContactSize, c.BottomNet)
	cell.AddPort("T", c.TopNet, techno.LayerMetal1, topPad)
	cell.AddPort("B", c.BottomNet, techno.LayerMetal1, botPad)

	b := &Built{
		Cell:    cell,
		Geoms:   nil,
		Folds:   nil,
		RailCap: map[string]float64{},
	}
	// Bottom-plate parasitic to substrate: poly over field.
	b.RailCap[c.BottomNet] = geom.WireCapM(bottom, tech.Wire.CPolyArea, tech.Wire.CPolyFringe)
	return b, nil
}

// RealizedCap returns the capacitance the snapped geometry actually
// implements for a given choice — the analogue of the fold-snap feedback
// for passives.
func (c *CapModule) RealizedCap(tech *techno.Tech, choice int) (float64, error) {
	b, err := c.Build(tech, choice)
	if err != nil {
		return 0, err
	}
	for _, s := range b.Cell.Shapes {
		if s.Layer == techno.LayerPoly2 {
			return s.R.AreaM2() * tech.Wire.CPolyPoly, nil
		}
	}
	return 0, fmt.Errorf("cairo: cap %s built no plate", c.Inst)
}

// ResistorModule generates a straight poly resistor bar.
type ResistorModule struct {
	Inst string
	// R is the target resistance (Ω).
	R          float64
	ANet, BNet string
	// WidthNM is the bar width (defaults to 2× min poly width for
	// matching robustness).
	WidthNM int64
}

// Name implements Module.
func (m *ResistorModule) Name() string { return m.Inst }

// Choices implements Module.
func (m *ResistorModule) Choices() []int { return []int{0} }

// Build implements Module.
func (m *ResistorModule) Build(tech *techno.Tech, choice int) (*Built, error) {
	if m.R <= 0 {
		return nil, fmt.Errorf("cairo: resistor %s: non-positive value %g", m.Inst, m.R)
	}
	r := &tech.Rules
	w := m.WidthNM
	if w <= 0 {
		w = 2 * r.PolyWidth
	}
	w = r.SnapNM(w)
	squares := m.R / tech.Wire.RSheetPoly
	length := r.SnapNM(int64(squares * float64(w)))
	minL := 2 * (r.ContactSize + 2*r.ContactPolyEnc)
	if length < minL {
		length = minL
	}

	cell := geom.NewCell(m.Inst)
	bar := geom.XYWH(0, 0, length, w)
	cell.Add(techno.LayerPoly, bar, m.ANet)

	pad := func(x int64, net string) geom.Rect {
		x = r.SnapDownNM(x)
		p := geom.XYWH(x, 0, r.ContactSize+2*r.ContactPolyEnc, w)
		cell.Add(techno.LayerContact,
			geom.XYWH(x+r.ContactPolyEnc, r.SnapDownNM((w-r.ContactSize)/2), r.ContactSize, r.ContactSize), net)
		cell.Add(techno.LayerMetal1, p, net)
		return p
	}
	pa := pad(0, m.ANet)
	pb := pad(length-r.ContactSize-2*r.ContactPolyEnc, m.BNet)
	cell.AddPort("A", m.ANet, techno.LayerMetal1, pa)
	cell.AddPort("B", m.BNet, techno.LayerMetal1, pb)

	b := &Built{Cell: cell, RailCap: map[string]float64{}}
	half := geom.WireCapM(bar, tech.Wire.CPolyArea, tech.Wire.CPolyFringe) / 2
	b.RailCap[m.ANet] += half
	b.RailCap[m.BNet] += half
	return b, nil
}

// RealizedRes returns the resistance the snapped bar implements.
func (m *ResistorModule) RealizedRes(tech *techno.Tech) (float64, error) {
	b, err := m.Build(tech, 0)
	if err != nil {
		return 0, err
	}
	for _, s := range b.Cell.Shapes {
		if s.Layer == techno.LayerPoly {
			return tech.Wire.RSheetPoly * float64(s.R.W()) / float64(s.R.H()), nil
		}
	}
	return 0, fmt.Errorf("cairo: resistor %s built no bar", m.Inst)
}
