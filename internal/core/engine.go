package core

// Parallel drivers over the synthesis loop. The sharing contract that
// makes these safe (and that the package tests enforce under -race):
//
//   - *techno.Tech and its MOSCards are immutable after construction.
//     Corner analysis copies the tech (AtCorner), mismatch analysis
//     clones cards before shifting them (mc.Sample.Apply).
//   - *circuit.Circuit and sim.Engine are single-goroutine objects; every
//     simulation builds its own netlist, which is why the measurement
//     benches take netlist builders instead of netlists.
//   - extract.Parasitics is read-only once published by a layout call;
//     Apply mutates only the target circuit.

import (
	"context"
	"fmt"
	"strconv"
	"time"

	"loas/internal/layout/cairo"
	"loas/internal/parallel"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// NumTable1Cases is the number of parasitic-awareness levels of Table 1.
const NumTable1Cases = 4

// SynthesizeAll runs the four Table-1 parasitic-awareness cases
// concurrently and returns the results indexed by case-1 (res[0] is
// case 1 … res[3] is case 4). The cases are fully independent synthesis
// runs that share only the immutable technology, so each result is
// identical to a serial Synthesize call with the same options; opts.Case
// is overridden per slot. When opts.Span is set, each case records its
// lifecycle under its own "case" child span — one span per worker item,
// which is how the trees show where parallel time goes.
func SynthesizeAll(tech *techno.Tech, spec sizing.OTASpec, opts Options) ([]*Result, error) {
	return parallel.MapN(context.Background(), 0, NumTable1Cases,
		func(_ context.Context, i int) (*Result, error) {
			o := opts
			o.Case = i + 1
			if opts.Span != nil {
				cs := opts.Span.Child("case")
				cs.SetAttr("case", strconv.Itoa(o.Case))
				defer cs.End()
				o.Span = cs
			}
			res, err := Synthesize(tech, spec, o)
			if err != nil {
				return nil, fmt.Errorf("core: case %d: %w", i+1, err)
			}
			return res, nil
		})
}

// FlowComparison pairs the proposed layout-oriented run with the
// traditional Fig. 1(a) baseline on the same spec.
type FlowComparison struct {
	Proposed    *Result
	Traditional *TraditionalResult
	// TraditionalErr records a baseline that finished without meeting the
	// spec (Traditional then still carries its last iteration), kept
	// separate so the comparison can report partial baseline results.
	TraditionalErr error
	// Elapsed is the wall-clock of the whole comparison — with both flows
	// in flight at once it is the max, not the sum, of the two runtimes.
	Elapsed time.Duration
}

// CompareFlows runs the proposed case-4 loop and the traditional
// size→layout→extract→simulate baseline side by side and returns both
// results. The two flows are independent end-to-end synthesis runs; only
// the immutable technology and the spec (passed by value) are shared.
func CompareFlows(tech *techno.Tech, spec sizing.OTASpec, maxIter int, shape cairo.Constraint) (*FlowComparison, error) {
	start := time.Now()
	fc := &FlowComparison{}
	// The two closures write to disjoint fields of fc and Do establishes
	// the happens-before edge back to this goroutine.
	err := parallel.Do(context.Background(), 2, 2, func(_ context.Context, i int) error {
		if i == 0 {
			res, err := Synthesize(tech, spec, Options{Case: 4, Shape: shape})
			if err != nil {
				return fmt.Errorf("core: proposed flow: %w", err)
			}
			fc.Proposed = res
			return nil
		}
		res, err := TraditionalFlow(tech, spec, maxIter, shape)
		if res == nil {
			return fmt.Errorf("core: traditional flow: %w", err)
		}
		fc.Traditional, fc.TraditionalErr = res, err
		return nil
	})
	if err != nil {
		return nil, err
	}
	fc.Elapsed = time.Since(start)
	return fc, nil
}
