// Package serve exposes the synthesis engine as a long-running HTTP
// daemon (the loasd binary). The paper's pitch is wall-clock — its loop
// beats the traditional extract-and-simulate flow — and a service
// amortizes that cost further: every result is stored in a
// content-addressed LRU cache, concurrent identical requests collapse
// into one synthesis (singleflight), and the work itself runs on a
// bounded job queue so the daemon sheds load instead of melting.
//
// Endpoints:
//
//	POST /v1/synthesize   one Table-1 case            → core.Summary JSON
//	POST /v1/table1       all four cases              → repro.Table1Report JSON
//	POST /v1/mc           mismatch Monte-Carlo        → MCReport JSON
//	POST /v1/batch        many specs, one request     → BatchReport JSON
//	POST /v1/explore      spec-grid / guided search   → ExploreReport JSON
//	GET  /v1/topologies   registered design plans     → TopologiesReport JSON
//	GET  /v1/layouts      registered layout backends  → LayoutsReport JSON
//	GET  /v1/layout.svg   case-4 generate-mode layout → SVG
//	GET  /v1/trace/{key}  convergence trace of a synthesis → TraceReport JSON
//	GET  /v1/runs         recent run history (filterable)  → RunsReport JSON
//	GET  /v1/runs/{id}    one run: span tree + iterations  → obs.RunRecord JSON
//	GET  /v1/events       live run lifecycle stream        → Server-Sent Events
//	GET  /healthz         liveness
//	GET  /stats           cache + queue + latency counters (also expvar)
//	GET  /metrics         Prometheus text exposition (latency histogram,
//	                      cache/queue gauges, domain counters)
//	GET  /debug/pprof/*   net/http/pprof, only with Config.EnablePprof
//
// Cached responses are replayed verbatim, so a hit is byte-identical to
// the response that populated it; the X-Loas-Cache header reports
// hit | miss | dedup.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync/atomic"
	"time"

	"loas/internal/layout"
	"loas/internal/obs"
	"loas/internal/parallel"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// expvar mirrors of the per-server counters, aggregated across every
// Server in the process (expvar registration is global and permanent,
// so these live at package level).
var (
	evRequests    = expvar.NewInt("loasd.requests")
	evErrors      = expvar.NewInt("loasd.errors")
	evCacheHits   = expvar.NewInt("loasd.cache_hits")
	evCacheMisses = expvar.NewInt("loasd.cache_misses")
	evDedupJoined = expvar.NewInt("loasd.dedup_joined")
	evBackendRuns = expvar.NewInt("loasd.backend_runs")
)

// Config sizes the server. Zero values mean defaults; CacheBytes < 0
// disables the cache, TTL <= 0 disables expiry.
type Config struct {
	Tech       *techno.Tech    // default techno.Default060()
	Spec       *sizing.OTASpec // default spec for requests that omit one (paper's 65 MHz)
	CacheBytes int64           // default 64 MiB
	TTL        time.Duration   // default: entries never expire
	Workers    int             // synthesis workers, default GOMAXPROCS
	QueueDepth int             // queued jobs beyond the workers; default 64, < 0 = none
	Timeout    time.Duration   // per-job wall-clock bound, default 5 min
	Backend    Backend         // default StdBackend over Tech
	// MaxTraces bounds the convergence-trace store (default 256).
	MaxTraces int
	// BatchMaxItems bounds one POST /v1/batch request (default 4096).
	BatchMaxItems int
	// MaxRuns bounds the in-memory run store behind /v1/runs (default 1024).
	MaxRuns int
	// Ledger, when non-nil, receives one obs.RunRecord per completed run
	// and seeds the run store + sequence numbering from its replayed
	// history, so /v1/runs survives daemon restarts (loasd -ledger). A
	// nil ledger keeps history in memory only.
	Ledger *obs.Ledger
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool
}

// Server is the HTTP synthesis service. Create with New, expose
// Handler() behind an http.Server, and Close() to drain.
type Server struct {
	tech     *techno.Tech
	spec     sizing.OTASpec
	specSet  bool // Config.Spec was explicit — wins over topology defaults
	timeout  time.Duration
	backend  Backend
	batchMax int

	cache  *Cache
	flight *Flight
	pool   *parallel.Pool
	mux    *http.ServeMux
	traces *traceStore
	runs   *runStore
	events *eventBus
	ledger *obs.Ledger

	reg       *obs.Registry
	latency   *obs.Histogram
	queueWait *obs.Histogram

	batchRequests   *obs.Counter
	batchItems      *obs.Counter
	batchItemErrors *obs.Counter
	batchSize       *obs.Histogram
	exploreRequests *obs.Counter
	exploreProbes   *obs.Counter
	exploreFront    *obs.Histogram

	requests    atomic.Int64
	errs        atomic.Int64
	backendRuns atomic.Int64
	latencyNS   atomic.Int64
	served      atomic.Int64
	runSeq      atomic.Int64
	ledgerErrs  atomic.Int64
}

// New builds a server from the config and starts its worker pool.
func New(cfg Config) *Server {
	if cfg.Tech == nil {
		cfg.Tech = techno.Default060()
	}
	spec := sizing.Default65MHz()
	if cfg.Spec != nil {
		spec = *cfg.Spec
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.QueueDepth == 0 {
		cfg.QueueDepth = 64
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 5 * time.Minute
	}
	if cfg.Backend == nil {
		cfg.Backend = &StdBackend{Tech: cfg.Tech}
	}
	if cfg.BatchMaxItems <= 0 {
		cfg.BatchMaxItems = 4096
	}
	s := &Server{
		tech:     cfg.Tech,
		spec:     spec,
		specSet:  cfg.Spec != nil,
		timeout:  cfg.Timeout,
		backend:  cfg.Backend,
		batchMax: cfg.BatchMaxItems,
		cache:    NewCache(cfg.CacheBytes, cfg.TTL),
		flight:   NewFlight(),
		pool:     parallel.NewPool(cfg.Workers, cfg.QueueDepth),
		mux:      http.NewServeMux(),
		traces:   newTraceStore(cfg.MaxTraces),
		runs:     newRunStore(cfg.MaxRuns),
		events:   newEventBus(),
		ledger:   cfg.Ledger,
	}
	// A restarted daemon resumes where the ledger left off: the replayed
	// tail seeds /v1/runs and run numbering continues past LastSeq.
	for _, rec := range cfg.Ledger.History() {
		rec := rec
		s.runs.add(&rec)
	}
	s.runSeq.Store(cfg.Ledger.LastSeq())
	s.initMetrics()
	s.mux.HandleFunc("POST /v1/synthesize", s.handleSynthesize)
	s.mux.HandleFunc("POST /v1/table1", s.handleTable1)
	s.mux.HandleFunc("POST /v1/mc", s.handleMC)
	s.mux.HandleFunc("POST /v1/batch", s.handleBatch)
	s.mux.HandleFunc("POST /v1/explore", s.handleExplore)
	s.mux.HandleFunc("GET /v1/topologies", s.handleTopologies)
	s.mux.HandleFunc("GET /v1/layouts", s.handleLayouts)
	s.mux.HandleFunc("GET /v1/layout.svg", s.handleLayoutSVG)
	s.mux.HandleFunc("GET /v1/trace/{key}", s.handleTraceKey)
	s.mux.HandleFunc("GET /v1/runs", s.handleRuns)
	s.mux.HandleFunc("GET /v1/runs/{id}", s.handleRunByID)
	s.mux.HandleFunc("GET /v1/events", s.handleEvents)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /stats", s.handleStats)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	if cfg.EnablePprof {
		mountPprof(s.mux)
	}
	return s
}

// Handler returns the routed HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Close drains the job queue: queued and in-flight synthesis runs
// complete, new work is rejected. Call after http.Server.Shutdown so
// in-flight HTTP requests get their results first.
func (s *Server) Close() { s.pool.Close() }

// Stats is the /stats payload.
type Stats struct {
	Requests     int64              `json:"requests"`
	Served       int64              `json:"served"`
	Errors       int64              `json:"errors"`
	AvgLatencyMS float64            `json:"avg_latency_ms"`
	BackendRuns  int64              `json:"backend_runs"`
	DedupJoined  int64              `json:"dedup_joined"`
	Cache        CacheStats         `json:"cache"`
	Queue        parallel.PoolStats `json:"queue"`
}

// Stats snapshots the server counters.
func (s *Server) Stats() Stats {
	st := Stats{
		Requests:    s.requests.Load(),
		Served:      s.served.Load(),
		Errors:      s.errs.Load(),
		BackendRuns: s.backendRuns.Load(),
		DedupJoined: s.flight.Joined(),
		Cache:       s.cache.Stats(),
		Queue:       s.pool.Stats(),
	}
	if st.Served > 0 {
		st.AvgLatencyMS = float64(s.latencyNS.Load()) / float64(st.Served) / 1e6
	}
	return st
}

// HealthReport is the GET /healthz payload: liveness plus the build
// stamp, so one probe identifies what is running where.
type HealthReport struct {
	Status     string `json:"status"`
	Version    string `json:"version"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	body, err := marshalJSON(HealthReport{
		Status:     "ok",
		Version:    BuildVersion(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	body, err := marshalJSON(s.Stats())
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	var req SynthesizeRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := req.normalize(); err != nil {
		s.badRequest(w, err)
		return
	}
	spec, err := s.specFor(req.Spec, req.Topology)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	key := req.cacheKey(s.tech, spec)
	// The recorded request embeds the resolved spec so replaying it
	// against a daemon with different defaults still re-issues the same
	// workload (the cache key hashes the resolved spec either way).
	recReq := req
	recReq.Spec = &spec
	info := runInfo{kind: "synthesize", topology: req.Topology, caseN: req.Case,
		layout: req.Layout, key: key, specDigest: specDigest(s.tech, spec),
		request: recordRequest(recReq)}
	s.respond(w, info, "application/json",
		func(ctx context.Context) ([]byte, error) {
			body, iters, err := s.backend.Synthesize(ctx, spec, &req)
			if err == nil {
				s.traces.put(key, iters)
			}
			return body, err
		})
}

// handleTraceKey serves the convergence trace recorded when the
// synthesis under {key} ran. 404 until that synthesis has executed (a
// cache hit replays bytes without re-recording, so the trace persists
// beside the cached result until evicted).
func (s *Server) handleTraceKey(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	evRequests.Add(1)
	key := r.PathValue("key")
	iters, ok := s.traces.get(key)
	if !ok {
		s.errorBody(w, http.StatusNotFound, fmt.Errorf("no trace recorded for key %q", key))
		return
	}
	body, err := marshalJSON(TraceReport{
		Key:        key,
		Converged:  obs.Converged(iters, 1e-15),
		Iterations: iters,
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.served.Add(1)
}

func (s *Server) handleTable1(w http.ResponseWriter, r *http.Request) {
	var req Table1Request
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	spec, err := s.specFor(req.Spec, "")
	if err != nil {
		s.badRequest(w, err)
		return
	}
	info := runInfo{kind: "table1", key: req.cacheKey(s.tech, spec),
		specDigest: specDigest(s.tech, spec),
		request:    recordRequest(Table1Request{Spec: &spec})}
	s.respond(w, info, "application/json",
		func(ctx context.Context) ([]byte, error) {
			return s.backend.Table1(ctx, spec)
		})
}

func (s *Server) handleMC(w http.ResponseWriter, r *http.Request) {
	var req MCRequest
	if err := decodeJSON(r, &req); err != nil {
		s.badRequest(w, err)
		return
	}
	if err := req.normalize(); err != nil {
		s.badRequest(w, err)
		return
	}
	spec, err := s.specFor(req.Spec, req.Topology)
	if err != nil {
		s.badRequest(w, err)
		return
	}
	recReq := req
	recReq.Spec = &spec
	info := runInfo{kind: "mc", topology: req.Topology, caseN: req.Case,
		key: req.cacheKey(s.tech, spec), specDigest: specDigest(s.tech, spec),
		request: recordRequest(recReq)}
	s.respond(w, info, "application/json",
		func(ctx context.Context) ([]byte, error) {
			return s.backend.MC(ctx, spec, &req)
		})
}

// TopologiesReport is the GET /v1/topologies payload.
type TopologiesReport struct {
	Default    string   `json:"default"`
	Topologies []string `json:"topologies"`
}

func (s *Server) handleTopologies(w http.ResponseWriter, _ *http.Request) {
	s.requests.Add(1)
	evRequests.Add(1)
	body, err := marshalJSON(TopologiesReport{
		Default:    sizing.DefaultTopology,
		Topologies: sizing.Topologies(),
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.served.Add(1)
}

// LayoutsReport is the GET /v1/layouts payload: every registered layout
// backend's capability descriptor.
type LayoutsReport struct {
	Default string        `json:"default"`
	Layouts []layout.Info `json:"layouts"`
}

func (s *Server) handleLayouts(w http.ResponseWriter, _ *http.Request) {
	s.requests.Add(1)
	evRequests.Add(1)
	body, err := marshalJSON(LayoutsReport{
		Default: layout.DefaultBackend,
		Layouts: layout.Backends(),
	})
	if err != nil {
		s.fail(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
	s.served.Add(1)
}

func (s *Server) handleLayoutSVG(w http.ResponseWriter, _ *http.Request) {
	spec := s.spec
	info := runInfo{kind: "layout.svg", key: layoutCacheKey(s.tech, spec),
		specDigest: specDigest(s.tech, spec)}
	s.respond(w, info, "image/svg+xml",
		func(ctx context.Context) ([]byte, error) {
			return s.backend.LayoutSVG(ctx, spec)
		})
}

// respond is the one path every result endpoint takes:
// cache → singleflight → bounded queue → backend → cache.
//
// Every pass through here is also one run: a span tree is recorded
// (request → cache-lookup → queue-wait → <kind> → backend phases), the
// finished obs.RunRecord lands in the run store and the ledger, and the
// lifecycle is narrated on /v1/events. The outcome labels the path
// taken: "cache-hit" (byte replay), "ok" (this request's leader closure
// executed the backend), "dedup" (joined another request's in-flight
// execution) or "error".
func (s *Server) respond(w http.ResponseWriter, info runInfo, contentType string,
	compute func(context.Context) ([]byte, error)) {
	start := time.Now()
	s.requests.Add(1)
	evRequests.Add(1)
	ar := s.beginRun(info, start)

	v, outcome, err := s.executeKeyed(ar, contentType, compute)
	if err != nil {
		s.finishRun(ar, outcomeError, err, nil)
		s.fail(w, err)
		return
	}
	s.finishRun(ar, outcome, nil, v.Body)
	s.write(w, v, info.key, cacheSource(outcome), start)
}

// cacheSource maps a run outcome to its X-Loas-Cache header value.
func cacheSource(outcome string) string {
	switch outcome {
	case outcomeCacheHit:
		return "hit"
	case outcomeDedup:
		return "dedup"
	}
	return "miss"
}

// executeKeyed runs one content-addressed unit of work through the
// cache → singleflight → bounded queue → backend → cache path and
// reports how it was satisfied (outcomeCacheHit / outcomeOK /
// outcomeDedup). It is the shared engine behind every result endpoint
// and every batch item / exploration probe; ar carries the unit's own
// run (span tree, live trace, content key).
func (s *Server) executeKeyed(ar *activeRun, contentType string,
	compute func(context.Context) ([]byte, error)) (Value, string, error) {
	info := ar.info
	lookup := ar.root.Child("cache-lookup")
	v, ok := s.cache.Get(info.key)
	lookup.End()
	if ok {
		evCacheHits.Add(1)
		return v, outcomeCacheHit, nil
	}
	evCacheMisses.Add(1)

	// Opened before Submit, ended at job start: the span (and the
	// loas_queue_wait_seconds histogram) measure the real time this
	// request's work sat behind the bounded queue.
	queueWait := ar.root.Child("queue-wait")
	v, err, shared := s.flight.Do(info.key, func() (Value, error) {
		// Leader: run under the daemon's own lifetime, not the first
		// client's — if that client disconnects, joiners and the cache
		// still get the result.
		ctx, cancel := context.WithTimeout(context.Background(), s.timeout)
		defer cancel()
		// Label the execution context so CPU/heap profile samples taken
		// anywhere under this run — pool worker, corner sweep, MC fan-out
		// — attribute to the request that caused them. The engine layers
		// finer phase labels (sizing, layout-extract, ...) on top.
		lay := info.layout
		if lay == "" {
			lay = layout.DefaultBackend
		}
		ctx = obs.LabelCtx(ctx,
			"phase", info.kind,
			"topology", info.topology,
			"layout", lay,
			"run_id", ar.id)
		var out Value
		err := s.pool.Submit(ctx, func(ctx context.Context) error {
			queueWait.End()
			s.queueWait.Observe(queueWait.Duration().Seconds())
			s.backendRuns.Add(1)
			evBackendRuns.Add(1)
			work := ar.root.Child(info.kind)
			defer work.End()
			ctx = obs.ContextWithSpan(ctx, work)
			ctx = obs.ContextWithTrace(ctx, ar.trace)
			body, cErr := compute(ctx)
			if cErr != nil {
				return cErr
			}
			out = Value{Body: body, ContentType: contentType}
			s.cache.Put(info.key, out)
			return nil
		})
		if err != nil {
			return Value{}, err
		}
		return out, nil
	})
	// Idempotent close for the paths where the job never started
	// (joiner, queue full, pool closed). Those spans measured waiting on
	// someone else's execution, not this request's queue admission, so
	// only the in-job End above feeds the histogram.
	queueWait.End()
	if shared {
		evDedupJoined.Add(1)
	}
	if err != nil {
		return Value{}, outcomeError, err
	}
	outcome := outcomeOK
	if shared {
		outcome = outcomeDedup
	}
	return v, outcome, nil
}

func (s *Server) write(w http.ResponseWriter, v Value, key, src string, start time.Time) {
	w.Header().Set("Content-Type", v.ContentType)
	w.Header().Set("X-Loas-Cache", src)
	// The content-addressed key lets the client fetch the convergence
	// trace of the synthesis that produced this body (GET /v1/trace/{key}).
	w.Header().Set("X-Loas-Key", key)
	w.Write(v.Body)
	elapsed := time.Since(start)
	s.latencyNS.Add(elapsed.Nanoseconds())
	s.latency.Observe(elapsed.Seconds())
	s.served.Add(1)
}

func (s *Server) badRequest(w http.ResponseWriter, err error) {
	s.requests.Add(1)
	evRequests.Add(1)
	s.errorBody(w, http.StatusBadRequest, err)
}

func (s *Server) fail(w http.ResponseWriter, err error) {
	switch {
	case errors.Is(err, parallel.ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		s.errorBody(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, parallel.ErrPoolClosed):
		s.errorBody(w, http.StatusServiceUnavailable, err)
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		s.errorBody(w, http.StatusGatewayTimeout, err)
	default:
		s.errorBody(w, http.StatusInternalServerError, err)
	}
}

func (s *Server) errorBody(w http.ResponseWriter, code int, err error) {
	s.errs.Add(1)
	evErrors.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": err.Error()})
}

// specFor resolves a request's optional spec override against the
// server default and validates it. A request naming a non-default
// topology without a spec gets that topology's own default spec (the
// paper's 65 MHz target is out of reach for the smaller OTAs) — unless
// the operator pinned an explicit server-wide spec, which wins.
func (s *Server) specFor(o *sizing.OTASpec, topology string) (sizing.OTASpec, error) {
	spec := s.spec
	if o == nil && !s.specSet && topology != "" && topology != sizing.DefaultTopology {
		if plan, err := sizing.Lookup(topology); err == nil {
			spec = plan.DefaultSpec()
		}
	}
	if o != nil {
		spec = *o
	}
	if spec.VDD <= 0 || spec.GBW <= 0 || spec.CL <= 0 || spec.PM <= 0 {
		return spec, fmt.Errorf("spec requires positive vdd, gbw, pm, cl (got vdd=%g gbw=%g pm=%g cl=%g)",
			spec.VDD, spec.GBW, spec.PM, spec.CL)
	}
	return spec, nil
}

// decodeJSON reads a request body strictly (unknown fields are errors —
// a typo must not silently become a different cache key); an empty body
// selects the defaults.
func decodeJSON(r *http.Request, dst any) error {
	return decodeJSONLimit(r, dst, 1<<20)
}

// decodeJSONLimit is decodeJSON with an explicit body bound — the batch
// endpoint accepts thousands of specs and needs more than the single-
// request megabyte.
func decodeJSONLimit(r *http.Request, dst any, limit int64) error {
	dec := json.NewDecoder(io.LimitReader(r.Body, limit))
	dec.DisallowUnknownFields()
	err := dec.Decode(dst)
	if err == nil || errors.Is(err, io.EOF) {
		return nil
	}
	return fmt.Errorf("bad request body: %w", err)
}
