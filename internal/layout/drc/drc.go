// Package drc checks generated layouts against the design rules the
// procedural generators are supposed to respect: minimum widths, minimum
// same-layer spacings between different nets, contact/via enclosures,
// grid alignment, and the electromigration current-density rule on
// routed nets. It is a safety net over the generators (the paper's
// "reliability design rules"), not a sign-off DRC.
package drc

import (
	"fmt"

	"loas/internal/layout/geom"
	"loas/internal/techno"
)

// Violation is one broken rule.
type Violation struct {
	Rule  string
	Layer techno.Layer
	Where geom.Rect
	Note  string
}

// String implements fmt.Stringer.
func (v Violation) String() string {
	return fmt.Sprintf("%s on %s at %v: %s", v.Rule, v.Layer, v.Where, v.Note)
}

// Check runs all geometry rules on a cell and returns every violation.
func Check(tech *techno.Tech, cell *geom.Cell) []Violation {
	var out []Violation
	out = append(out, checkGrid(tech, cell)...)
	out = append(out, checkWidths(tech, cell)...)
	out = append(out, checkSpacings(tech, cell)...)
	out = append(out, checkContactEnclosure(tech, cell)...)
	return out
}

func checkGrid(tech *techno.Tech, cell *geom.Cell) []Violation {
	g := tech.Rules.Grid
	if g <= 1 {
		return nil
	}
	var out []Violation
	for _, s := range cell.Shapes {
		for _, v := range [4]int64{s.R.L, s.R.B, s.R.R, s.R.T} {
			if v%g != 0 {
				out = append(out, Violation{
					Rule: "grid", Layer: s.Layer, Where: s.R,
					Note: fmt.Sprintf("coordinate %d off the %d nm grid", v, g),
				})
				break
			}
		}
	}
	return out
}

// minWidth returns the minimum drawn width for a layer (0 = unchecked).
func minWidth(r *techno.Rules, l techno.Layer) int64 {
	switch l {
	case techno.LayerPoly, techno.LayerPoly2:
		return r.PolyWidth
	case techno.LayerActive:
		return r.ActiveWidth
	case techno.LayerMetal1:
		return r.Metal1Width
	case techno.LayerMetal2:
		return r.Metal2Width
	case techno.LayerContact:
		return r.ContactSize
	case techno.LayerVia1:
		return r.Via1Size
	}
	return 0
}

// minSpace returns the minimum same-layer spacing (0 = unchecked).
func minSpace(r *techno.Rules, l techno.Layer) int64 {
	switch l {
	case techno.LayerPoly, techno.LayerPoly2:
		return r.PolySpace
	case techno.LayerActive:
		return r.ActiveSpace
	case techno.LayerMetal1:
		return r.Metal1Space
	case techno.LayerMetal2:
		return r.Metal2Space
	case techno.LayerContact:
		return r.ContactSpace
	case techno.LayerVia1:
		return r.Via1Space
	case techno.LayerNWell:
		return r.NWellSpace
	}
	return 0
}

func checkWidths(tech *techno.Tech, cell *geom.Cell) []Violation {
	var out []Violation
	for _, s := range cell.Shapes {
		w := minWidth(&tech.Rules, s.Layer)
		if w == 0 {
			continue
		}
		short := s.R.W()
		if s.R.H() < short {
			short = s.R.H()
		}
		if short < w {
			out = append(out, Violation{
				Rule: "min-width", Layer: s.Layer, Where: s.R,
				Note: fmt.Sprintf("%d nm < %d nm", short, w),
			})
		}
	}
	return out
}

func checkSpacings(tech *techno.Tech, cell *geom.Cell) []Violation {
	var out []Violation
	byLayer := map[techno.Layer][]geom.Shape{}
	for _, s := range cell.Shapes {
		byLayer[s.Layer] = append(byLayer[s.Layer], s)
	}
	for layer, shapes := range byLayer {
		space := minSpace(&tech.Rules, layer)
		if space == 0 {
			continue
		}
		for i := 0; i < len(shapes); i++ {
			for j := i + 1; j < len(shapes); j++ {
				a, b := shapes[i], shapes[j]
				if a.Net == b.Net && a.Net != "" {
					continue
				}
				if a.R.Intersects(b.R) {
					continue // same-layer overlap on different nets is a
					// connectivity error caught elsewhere; spacing
					// rules target disjoint shapes
				}
				if a.R.Expand(space).Intersects(b.R) {
					out = append(out, Violation{
						Rule: "min-space", Layer: layer, Where: a.R,
						Note: fmt.Sprintf("%v (%s) to %v (%s) below %d nm",
							a.R, a.Net, b.R, b.Net, space),
					})
				}
			}
		}
	}
	return out
}

// checkContactEnclosure verifies every contact is covered by conducting
// layers on both ends: (active or poly or poly2) below, metal1 above.
func checkContactEnclosure(tech *techno.Tech, cell *geom.Cell) []Violation {
	var out []Violation
	var lower, upper []geom.Rect
	for _, s := range cell.Shapes {
		switch s.Layer {
		case techno.LayerActive, techno.LayerPoly, techno.LayerPoly2:
			lower = append(lower, s.R)
		case techno.LayerMetal1:
			upper = append(upper, s.R)
		}
	}
	covered := func(c geom.Rect, rects []geom.Rect) bool {
		for _, r := range rects {
			if c.Intersect(r) == c {
				return true
			}
		}
		return false
	}
	for _, s := range cell.Shapes {
		if s.Layer != techno.LayerContact {
			continue
		}
		if !covered(s.R, lower) {
			out = append(out, Violation{
				Rule: "contact-bottom", Layer: s.Layer, Where: s.R,
				Note: "no active/poly underneath",
			})
		}
		if !covered(s.R, upper) {
			out = append(out, Violation{
				Rule: "contact-top", Layer: s.Layer, Where: s.R,
				Note: "no metal1 above",
			})
		}
	}
	return out
}

// CheckCurrentDensity verifies the electromigration rule on routed nets:
// every wire shape on a net must be at least as wide as the net's current
// demands, divided by how many parallel strips the net uses at that
// coordinate. This conservative single-shape check flags any wire
// narrower than required for the *per-shape share* given by the caller.
func CheckCurrentDensity(tech *techno.Tech, cell *geom.Cell, net string, shapeCurrent float64) []Violation {
	if shapeCurrent <= 0 {
		return nil
	}
	need := int64(shapeCurrent / tech.Wire.JMax * 1e9)
	var out []Violation
	for _, s := range cell.Shapes {
		if s.Net != net {
			continue
		}
		if s.Layer != techno.LayerMetal1 && s.Layer != techno.LayerMetal2 {
			continue
		}
		w := s.R.W()
		if s.R.H() < w {
			w = s.R.H()
		}
		if w < need {
			out = append(out, Violation{
				Rule: "current-density", Layer: s.Layer, Where: s.R,
				Note: fmt.Sprintf("%d nm wide, %g A needs %d nm", w, shapeCurrent, need),
			})
		}
	}
	return out
}
