package sizing

import (
	"fmt"
	"math"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/cairo"
	"loas/internal/layout/route"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

// Two-stage Miller OTA device and net names. The second topology of the
// tool demonstrates the paper's claim that "the use of hierarchy
// simplifies the addition of new topologies": the same building blocks
// (pair, mirror, single transistors) and the same simulated evaluation
// carry over; only the plan differs.
const (
	MT1 = "MT1" // input pair +
	MT2 = "MT2" // input pair −
	MT3 = "MT3" // mirror load, diode side
	MT4 = "MT4" // mirror load, output side
	MT5 = "MT5" // tail
	MT6 = "MT6" // second-stage common source
	MT7 = "MT7" // second-stage current source

	NetX1 = "x1" // first-stage diode node
	NetX2 = "x2" // first-stage output / second-stage gate
	NetCZ = "cz" // between the Miller cap and the nulling resistor
)

func init() {
	Register(Plan{
		Name:        "two-stage",
		Description: "two-stage Miller-compensated OTA: mirror-loaded pair, common-source second stage, nulling resistor",
		Size: func(tech *techno.Tech, spec OTASpec, ps ParasiticState) (Design, error) {
			return SizeTwoStage(tech, spec, ps)
		},
		DefaultSpec: DefaultTwoStageSpec,
	})
}

// DefaultTwoStageSpec is the reference specification the two-stage plan
// is tuned for (the paper's 65 MHz folded-cascode target is out of its
// reach at 3 pF).
func DefaultTwoStageSpec() OTASpec {
	return OTASpec{
		VDD: 3.3, GBW: 20e6, PM: 65, CL: 5e-12,
		ICMLow: 0.4, ICMHigh: 1.8,
		OutLow: 0.4, OutHigh: 2.9,
	}
}

// TwoStage is a sized two-stage Miller-compensated OTA.
type TwoStage struct {
	Tech *techno.Tech
	Spec OTASpec
	Par  ParasiticState

	Devices map[string]DeviceSize
	Bias    map[string]float64
	NodeEst map[string]float64

	Itail, I6 float64
	CC, RZ    float64
	Predicted Performance
}

// SizeTwoStage runs the two-stage design plan: the Miller capacitor sets
// gm1 from the GBW target, the second-stage transconductance is iterated
// until the simulated phase margin meets the specification (the output
// pole gm6/CL is the PM knob), and a nulling resistor 1/gm6 cancels the
// right-half-plane zero.
func SizeTwoStage(tech *techno.Tech, spec OTASpec, ps ParasiticState) (*TwoStage, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if spec.GBW <= 0 || spec.CL <= 0 || spec.VDD <= 0 {
		return nil, fmt.Errorf("sizing: incomplete spec %+v", spec)
	}

	l := 1.0 * techno.Micron
	veff1 := clamp(spec.VDD-spec.ICMHigh-0.2-tech.P.VT0-0.05, 0.12, 0.25)
	veff3 := 0.22
	veff6 := clamp(0.9*spec.OutLow, 0.15, 0.4)
	veff7 := clamp(0.9*(spec.VDD-spec.OutHigh), 0.15, 0.6)
	vtl := 0.20

	cc := spec.CL / 4
	if cc < 0.5e-12 {
		cc = 0.5e-12
	}
	boost := 1.0
	k6 := 2.6 // gm6 ≈ k6·2π·GBW·CL

	var d *TwoStage
	wmax := 20000 * techno.Micron
	wmin := techno.NMToMeters(tech.Rules.ActiveWidth)

	build := func() error {
		gm1 := 2 * math.Pi * spec.GBW * cc * boost
		w1, err := ps.Memo.SizeForGm(&tech.P, l, veff1, 0, gm1, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: two-stage input pair: %w", err)
		}
		m1 := device.MOS{Card: &tech.P, W: w1, L: l}
		id1 := m1.IDSat(veff1, 0, tech.Temp)
		itail := 2 * id1

		gm6 := k6 * 2 * math.Pi * spec.GBW * spec.CL
		w6, err := ps.Memo.SizeForGm(&tech.N, l, veff6, 0, gm6, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: MT6: %w", err)
		}
		m6 := device.MOS{Card: &tech.N, W: w6, L: l}
		i6 := m6.IDSat(veff6, 0, tech.Temp)

		w3, err := ps.Memo.SizeForCurrent(&tech.N, l, veff3, 0, id1, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: MT3: %w", err)
		}
		w5, err := ps.Memo.SizeForCurrent(&tech.P, l, vtl, 0, itail, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: MT5: %w", err)
		}
		w7, err := ps.Memo.SizeForCurrent(&tech.P, l, veff7, 0, i6, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: MT7: %w", err)
		}

		d = &TwoStage{
			Tech: tech, Spec: spec, Par: ps,
			Devices: map[string]DeviceSize{},
			Bias:    map[string]float64{},
			NodeEst: map[string]float64{},
			Itail:   itail, I6: i6,
			CC: cc, RZ: 1 / gm6,
		}
		oneFold := func(w float64) device.DiffGeom { return device.OneFoldGeom(tech, w) }
		add := func(name string, t techno.MOSType, w, veff, id float64) {
			d.Devices[name] = DeviceSize{
				Type: t, W: w, L: l, Veff: veff, ID: id,
				Geom: ps.deviceGeom(oneFold, name, w),
			}
		}
		add(MT1, techno.PMOS, w1, veff1, id1)
		add(MT2, techno.PMOS, w1, veff1, id1)
		add(MT3, techno.NMOS, w3, veff3, id1)
		add(MT4, techno.NMOS, w3, veff3, id1)
		add(MT5, techno.PMOS, w5, vtl, itail)
		add(MT6, techno.NMOS, w6, veff6, i6)
		add(MT7, techno.PMOS, w7, veff7, i6)

		vcm := 0.5 * (spec.ICMLow + spec.ICMHigh)
		if vcm < 0.3 {
			vcm = 0.3
		}
		mn3 := device.MOS{Card: &tech.N, W: w3, L: l}
		vgs3, err := ps.Memo.VGSForCurrent(&mn3, id1, 0.9, 0, tech.Temp)
		if err != nil {
			return fmt.Errorf("sizing: x1 estimate: %w", err)
		}
		d.NodeEst[NetVDD] = spec.VDD
		d.NodeEst[NetInP], d.NodeEst[NetInN] = vcm, vcm
		d.NodeEst[NetTail] = vcm + tech.P.VT0 + veff1
		d.NodeEst[NetX1] = vgs3
		d.NodeEst[NetX2] = tech.N.VT0 + veff6
		d.NodeEst[NetOut] = 0.5 * (spec.OutLow + spec.OutHigh)
		d.NodeEst[NetCZ] = d.NodeEst[NetOut]

		mp5 := device.MOS{Card: &tech.P, W: w5, L: l}
		vgs5, err := ps.Memo.VGSForCurrent(&mp5, itail, spec.VDD-d.NodeEst[NetTail], 0, tech.Temp)
		if err != nil {
			return fmt.Errorf("sizing: vbp: %w", err)
		}
		d.Bias[NetVBP] = spec.VDD - vgs5
		return nil
	}

	evaluate := func() (float64, float64, error) {
		// The assumed netlist folds the last layout report's wiring
		// capacitance into the evaluation, so under routing awareness
		// (case 4) the plan reacts to its own layout — the same feedback
		// the folded-cascode plan gets.
		ckt := d.AssumedNetlist("ts-eval")
		vcm := d.NodeEst[NetInP]
		ckt.Add(
			&circuit.VSource{Name: "szp", Pos: NetInP, Neg: circuit.Ground, DC: vcm, ACMag: 0.5},
			&circuit.VSource{Name: "szn", Pos: NetInN, Neg: circuit.Ground, DC: vcm, ACMag: 0.5, ACPhase: 180},
			&circuit.Capacitor{Name: "szload", A: NetOut, B: circuit.Ground, C: spec.CL},
		)
		return EvalGBWPM(tech, ckt, NetOut, d.NodeSet())
	}

	var gbw, pm float64
	for iter := 0; iter < 25; iter++ {
		if err := build(); err != nil {
			return nil, err
		}
		var err error
		gbw, pm, err = evaluate()
		if err != nil {
			return nil, err
		}
		gbwOK := gbw > 0.99*spec.GBW && gbw < 1.04*spec.GBW
		pmOK := pm >= spec.PM && pm < spec.PM+10
		if gbwOK && pmOK {
			break
		}
		if !gbwOK {
			boost = clamp(boost*spec.GBW/gbw, 0.3, 5)
		}
		if pm < spec.PM {
			k6 *= 1.25
			if k6 > 14 {
				return nil, fmt.Errorf("sizing: two-stage PM %0.1f° unreachable", pm)
			}
		} else if pm > spec.PM+10 {
			k6 /= 1.1
		}
	}
	if gbw < 0.97*spec.GBW || pm < spec.PM-1 {
		return nil, fmt.Errorf("sizing: two-stage did not converge (GBW %.1f MHz, PM %.1f°)",
			gbw/1e6, pm)
	}

	d.Predicted.GBW = gbw
	d.Predicted.PhaseDeg = pm
	d.Predicted.Power = spec.VDD * (d.Itail + d.I6)
	d.Predicted.SlewRate = math.Min(d.Itail/d.CC, d.I6/spec.CL)
	// Gain: both stages on the analytic small-signal parameters.
	op1 := evalAt(tech, d.Devices[MT1])
	op4 := evalAt(tech, d.Devices[MT4])
	op6 := evalAt(tech, d.Devices[MT6])
	op7 := evalAt(tech, d.Devices[MT7])
	a1 := op1.Gm / (op1.Gds + op4.Gds)
	a2 := op6.Gm / (op6.Gds + op7.Gds)
	d.Predicted.DCGainDB = DB(a1 * a2)
	sizingPasses.Inc()
	return d, nil
}

// evalAt evaluates a sized device at a representative saturated bias.
func evalAt(tech *techno.Tech, ds DeviceSize) device.OP {
	card := &tech.N
	if ds.Type == techno.PMOS {
		card = &tech.P
	}
	m := device.MOS{Card: card, W: ds.W, L: ds.L, Geom: ds.Geom}
	sign := card.VTSign()
	vgs, err := m.VGSForCurrent(ds.ID, ds.Veff+0.3, 0, tech.Temp)
	if err != nil {
		vgs = card.VT0 + ds.Veff
	}
	return m.Eval(sign*vgs, sign*(ds.Veff+0.3), 0, 0, tech.Temp)
}

// Netlist builds the two-stage OTA with its Miller network.
func (d *TwoStage) Netlist(name string) *circuit.Circuit {
	c := circuit.New(name)
	tech := d.Tech
	mos := func(inst, dn, g, s, b string) *circuit.MOSFET {
		ds := d.Devices[inst]
		card := &tech.N
		if ds.Type == techno.PMOS {
			card = &tech.P
		}
		return &circuit.MOSFET{Name: inst, D: dn, G: g, S: s, B: b,
			Dev: device.MOS{Card: card, W: ds.W, L: ds.L, Geom: ds.Geom}}
	}
	c.Add(
		&circuit.VSource{Name: "dd", Pos: NetVDD, Neg: NetGND, DC: d.Spec.VDD},
		&circuit.VSource{Name: "bp", Pos: NetVBP, Neg: NetGND, DC: d.Bias[NetVBP]},

		// MT2 (the x2 side) is the non-inverting input: two signal
		// inversions from inp to out.
		mos(MT1, NetX1, NetInN, NetTail, NetVDD),
		mos(MT2, NetX2, NetInP, NetTail, NetVDD),
		mos(MT3, NetX1, NetX1, NetGND, NetGND),
		mos(MT4, NetX2, NetX1, NetGND, NetGND),
		mos(MT5, NetTail, NetVBP, NetVDD, NetVDD),
		mos(MT6, NetOut, NetX2, NetGND, NetGND),
		mos(MT7, NetOut, NetVBP, NetVDD, NetVDD),

		&circuit.Resistor{Name: "z", A: NetOut, B: NetCZ, R: d.RZ},
		&circuit.Capacitor{Name: "c", A: NetCZ, B: NetX2, C: d.CC},
	)
	return c
}

// NodeSet seeds the simulator.
func (d *TwoStage) NodeSet() map[string]float64 {
	ns := map[string]float64{}
	for k, v := range d.NodeEst {
		ns[k] = v
	}
	ns[NetVBP] = d.Bias[NetVBP]
	return ns
}

// twoStageSignalNets lists the nets whose wiring capacitance matters to
// the small-signal behaviour of the two-stage OTA.
func twoStageSignalNets() []string {
	return []string{NetOut, NetX1, NetX2, NetCZ, NetTail, NetInP, NetInN}
}

// AssumedNetlist is Netlist plus the sizing-time routing assumption:
// when routing awareness is on, the last layout report's wiring/
// coupling/well capacitance is lumped onto each signal net (Design).
func (d *TwoStage) AssumedNetlist(name string) *circuit.Circuit {
	ckt := d.Netlist(name)
	if d.Par.Routing && d.Par.Report != nil {
		for _, net := range twoStageSignalNets() {
			if c := d.Par.wiringCap(net); c > 0 {
				ckt.Add(&circuit.Capacitor{Name: "asm_" + net, A: net, B: circuit.Ground, C: c})
			}
		}
	}
	return ckt
}

// PredictedPerf exposes the plan's performance prediction (Design).
func (d *TwoStage) PredictedPerf() Performance { return d.Predicted }

// DeviceTable exposes the sized devices (Design).
func (d *TwoStage) DeviceTable() map[string]DeviceSize { return d.Devices }

// OperatingPoint snapshots the design point (Design). The "non-input
// length" slot reports the second-stage device length — the plan keeps
// every channel at its fixed L and tunes gm6 instead.
func (d *TwoStage) OperatingPoint() OperatingPoint {
	return OperatingPoint{W1: d.Devices[MT1].W, Lc: d.Devices[MT6].L, Itail: d.Itail}
}

// HotNet is the first-stage output / second-stage gate — the node the
// Miller network pivots on (Design).
func (d *TwoStage) HotNet() string { return NetX2 }

// ACGroundNets lists the AC-ground nets of this topology (Design).
func (d *TwoStage) ACGroundNets() []string {
	return []string{NetVDD, "gnd", circuit.Ground, NetVBP}
}

// BiasFor recomputes the single bias voltage on an alternate technology
// (a process corner) for the same tail device (Design).
func (d *TwoStage) BiasFor(tech *techno.Tech) (map[string]float64, error) {
	t := d.Devices[MT5]
	mp5 := device.MOS{Card: &tech.P, W: t.W, L: t.L}
	vgs, err := mp5.VGSForCurrent(t.ID, d.Spec.VDD-d.NodeEst[NetTail], 0, tech.Temp)
	if err != nil {
		return nil, fmt.Errorf("sizing: two-stage corner vbp: %w", err)
	}
	return map[string]float64{NetVBP: d.Spec.VDD - vgs}, nil
}

// BiasSources maps the netlist's bias vsources to bias-net keys (Design).
func (d *TwoStage) BiasSources() map[string]string {
	return map[string]string{"bp": NetVBP}
}

// OffsetRefs returns the input pair against the mirror load; the gm
// ratio follows from the fixed overdrives (gm = 2·ID/Veff at equal
// currents) (Design).
func (d *TwoStage) OffsetRefs() (pair, load DeviceSize, gmRatio float64) {
	pair, load = d.Devices[MT1], d.Devices[MT3]
	gmRatio = pair.Veff / load.Veff
	return pair, load, gmRatio
}

// Layout builds the CAIRO design: pair and mirror stacks, three single
// transistors, the Miller capacitor and the nulling resistor.
func (d *TwoStage) Layout() *cairo.Design {
	chanW := int64(6000)
	tr := func(inst, dn, g, s, b string) *cairo.Transistor {
		ds := d.Devices[inst]
		return &cairo.Transistor{
			Inst: inst, Type: ds.Type, W: ds.W, L: ds.L,
			Style:    device.DrainInternal,
			DrainNet: dn, GateNet: g, SourceNet: s, BulkNet: b,
			IDrain:   ds.ID,
			MaxFolds: 10, EvenOnly: true,
		}
	}
	pair := &cairo.MatchedStack{
		Label: "tpair", Type: techno.PMOS,
		Devices: []stack.Device{
			{Name: MT1, Units: 2, DrainNet: NetX1, GateNet: NetInN},
			{Name: MT2, Units: 2, DrainNet: NetX2, GateNet: NetInP},
		},
		SourceNet: NetTail, BulkNet: NetVDD,
		WidthPerBaseUnit: d.Devices[MT1].W / 2,
		L:                d.Devices[MT1].L,
		Currents: map[string]float64{
			NetX1: d.Devices[MT1].ID, NetX2: d.Devices[MT2].ID,
		},
		EndDummies: true, Splits: []int{1, 2, 3},
	}
	mir := &cairo.MatchedStack{
		Label: "tmir", Type: techno.NMOS,
		Devices: []stack.Device{
			{Name: MT3, Units: 2, DrainNet: NetX1, GateNet: NetX1},
			{Name: MT4, Units: 2, DrainNet: NetX2, GateNet: NetX1},
		},
		SourceNet: "gnd", BulkNet: "gnd",
		WidthPerBaseUnit: d.Devices[MT3].W / 2,
		L:                d.Devices[MT3].L,
		Currents: map[string]float64{
			NetX1: d.Devices[MT3].ID, NetX2: d.Devices[MT4].ID,
		},
		EndDummies: true, Splits: []int{1, 2, 3},
	}

	return &cairo.Design{
		Name: "two-stage-miller-ota",
		Modules: []cairo.Module{
			pair, mir,
			tr(MT5, NetTail, NetVBP, NetVDD, NetVDD),
			tr(MT6, NetOut, NetX2, "gnd", "gnd"),
			tr(MT7, NetOut, NetVBP, NetVDD, NetVDD),
			&cairo.CapModule{Inst: "CC", C: d.CC, TopNet: NetX2, BottomNet: NetCZ},
			&cairo.ResistorModule{Inst: "RZ", R: d.RZ, ANet: NetOut, BNet: NetCZ},
		},
		Tree: &cairo.Tree{
			Vertical: false,
			GapNM:    chanW,
			Children: []*cairo.Tree{
				{Vertical: true, GapNM: chanW, Leaves: []string{"tmir", MT6}},
				{Vertical: true, GapNM: chanW, Leaves: []string{"tpair", MT5}},
				{Vertical: true, GapNM: chanW, Leaves: []string{MT7, "CC", "RZ"}},
			},
		},
		Nets: []route.Net{
			{Name: NetX1, Current: d.Devices[MT1].ID},
			{Name: NetX2, Current: d.Devices[MT2].ID},
			{Name: NetOut, Current: d.I6},
			{Name: NetTail, Current: d.Itail},
			{Name: NetCZ},
			{Name: NetInP}, {Name: NetInN}, {Name: NetVBP},
			{Name: NetVDD, Current: d.Itail + d.I6},
			{Name: "gnd", Current: d.Itail + d.I6},
		},
	}
}
