package rows

import (
	"strconv"
	"testing"

	"loas/internal/layout"
	"loas/internal/layout/cairo"
	"loas/internal/layout/drc"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// sizedDesign sizes one registered topology at its default spec and
// returns its layout IR.
func sizedDesign(t *testing.T, topology string) *cairo.Design {
	t.Helper()
	plan, err := sizing.Lookup(topology)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := sizing.Case(3)
	if err != nil {
		t.Fatal(err)
	}
	d, err := plan.Size(techno.Default060(), plan.DefaultSpec(), ps)
	if err != nil {
		t.Fatalf("size %s: %v", topology, err)
	}
	return d.Layout()
}

// TestRowsRegistered: the backend is in the registry with its
// capability descriptor.
func TestRowsRegistered(t *testing.T) {
	b, err := layout.Lookup("rows")
	if err != nil {
		t.Fatal(err)
	}
	info := b.Info()
	if info.Name != "rows" || !info.CacheSession {
		t.Fatalf("unexpected descriptor %+v", info)
	}
}

// TestRowsCandidatesDRC realizes every candidate placement for every
// registered topology and runs the full DRC deck over each routed cell.
// Every style must realize (the row discipline is routable by
// construction for these designs) and every cell must be clean.
func TestRowsCandidatesDRC(t *testing.T) {
	tech := techno.Default060()
	for _, topology := range sizing.Topologies() {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			d := sizedDesign(t, topology)
			cands := Candidates(tech, d, nil)
			if len(cands) != len(styles) {
				t.Fatalf("got %d candidates, want %d", len(cands), len(styles))
			}
			ok := 0
			for _, cand := range cands {
				if cand.Err != nil {
					t.Logf("candidate %s failed: %v", cand.Style, cand.Err)
					continue
				}
				ok++
				if v := drc.Check(tech, cand.Plan.Cell); len(v) != 0 {
					t.Errorf("candidate %s: %d DRC violations, first: %+v", cand.Style, len(v), v[0])
				}
				if cand.Plan.Parasitics.TotalCap() <= 0 {
					t.Errorf("candidate %s: non-positive total cap", cand.Style)
				}
				if cand.Plan.Parasitics.AreaUM2 <= 0 {
					t.Errorf("candidate %s: non-positive area", cand.Style)
				}
			}
			if ok == 0 {
				t.Fatal("no candidate realized")
			}
		})
	}
}

// TestRowsPlanDeterministic: Plan with a nil session and Plan against a
// fresh warm session must agree bit-for-bit on the extracted report —
// the session is a cache, not a heuristic.
func TestRowsPlanDeterministic(t *testing.T) {
	tech := techno.Default060()
	b, err := layout.Lookup("rows")
	if err != nil {
		t.Fatal(err)
	}
	for _, topology := range sizing.Topologies() {
		topology := topology
		t.Run(topology, func(t *testing.T) {
			d := sizedDesign(t, topology)
			cold, err := b.Plan(tech, d, layout.Constraint{}, nil)
			if err != nil {
				t.Fatal(err)
			}
			s := cairo.NewSession(true, true)
			if _, err := b.Plan(tech, d, layout.Constraint{}, s); err != nil {
				t.Fatal(err)
			}
			warm, err := b.Plan(tech, d, layout.Constraint{}, s)
			if err != nil {
				t.Fatal(err)
			}
			if hx(cold.Parasitics.TotalCap()) != hx(warm.Parasitics.TotalCap()) {
				t.Fatalf("total cap differs: %v vs %v",
					cold.Parasitics.TotalCap(), warm.Parasitics.TotalCap())
			}
			if hx(cold.Parasitics.AreaUM2) != hx(warm.Parasitics.AreaUM2) {
				t.Fatalf("area differs: %v vs %v",
					cold.Parasitics.AreaUM2, warm.Parasitics.AreaUM2)
			}
			if len(cold.Cell.Shapes) != len(warm.Cell.Shapes) {
				t.Fatalf("shape count differs: %d vs %d",
					len(cold.Cell.Shapes), len(warm.Cell.Shapes))
			}
		})
	}
}

// TestRowsShapeConstraint: an impossible width bound must reject every
// candidate with a diagnostic, not return an oversized plan.
func TestRowsShapeConstraint(t *testing.T) {
	tech := techno.Default060()
	b, err := layout.Lookup("rows")
	if err != nil {
		t.Fatal(err)
	}
	d := sizedDesign(t, "five-t")
	if _, err := b.Plan(tech, d, layout.Constraint{MaxW: 1000}, nil); err == nil {
		t.Fatal("expected no-feasible-placement error under MaxW=1µm")
	}
}

func hx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
