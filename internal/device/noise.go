package device

import (
	"math"

	"loas/internal/techno"
)

// NoisePSD returns the one-sided drain-current noise power spectral
// densities (A²/Hz) of the transistor at operating point op and frequency
// f: the white thermal channel noise and the 1/f flicker component.
//
// Thermal: S = 4kT·γ·(gm + gmb) in saturation; the gds term is added so
// the expression degrades gracefully towards 4kT·gds in deep triode.
// Flicker: S = KF·|ID|^AF / (Cox·Leff²·f), the SPICE level-1 form.
func (m *MOS) NoisePSD(op OP, f, temp float64) (thermal, flicker float64) {
	c := m.Card
	kT4 := 4 * techno.KBoltzmann * temp
	thermal = kT4 * (c.NoiseGamma*(op.Gm+op.Gmb) + op.Gds)
	if f > 0 {
		leff := m.Leff()
		flicker = c.KF * math.Pow(math.Abs(op.ID), c.AF) / (c.Cox * leff * leff * f)
	}
	return thermal, flicker
}

// ResistorNoisePSD returns the thermal current-noise PSD (A²/Hz) of a
// resistor r (Ω) at temperature temp: 4kT/R.
func ResistorNoisePSD(r, temp float64) float64 {
	if r <= 0 {
		return 0
	}
	return 4 * techno.KBoltzmann * temp / r
}
