package sizing

import (
	"fmt"
	"math"
	"math/cmplx"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/sim"
	"loas/internal/techno"
)

// SignalNets lists the internal nets whose wiring capacitance matters to
// the small-signal behaviour.
func SignalNets() []string {
	return []string{NetOut, NetFN1, NetFN2, NetMO1, NetN3, NetN4, NetTail, NetInP, NetInN}
}

// AssumedNetlist builds the amplifier netlist under the sizing-time
// parasitic assumptions: junction geometries as the ParasiticState
// resolved them (already baked into the device table) plus, when routing
// awareness is on, the last layout report's wiring/coupling/well
// capacitance lumped onto each signal net. This is the netlist whose
// simulation gives the paper's unbracketed "synthesized" column.
func (d *FoldedCascode) AssumedNetlist(name string) *circuit.Circuit {
	ckt := d.Netlist(name)
	if d.Par.Routing && d.Par.Report != nil {
		for _, net := range SignalNets() {
			if c := d.Par.wiringCap(net); c > 0 {
				ckt.Add(&circuit.Capacitor{Name: "asm_" + net, A: net, B: circuit.Ground, C: c})
			}
		}
	}
	return ckt
}

// simulateGBWPM runs a small-signal evaluation of the current sizing
// point: DC operating point, then an AC sweep to locate the unity-gain
// frequency and phase margin. This replaces closed-form pole counting —
// the design plan evaluates performance on the exact same engine and
// models the verification uses, which is the paper's stated accuracy
// recipe taken to its conclusion.
func (p *plan) simulateGBWPM() (gbw, pm float64, err error) {
	d := p.d
	ckt := d.AssumedNetlist("sizing-eval")
	vicm := 0.5 * (p.spec.ICMLow + p.spec.ICMHigh)
	if vicm < 0.3 {
		vicm = 0.3
	}
	ckt.Add(
		&circuit.VSource{Name: "szp", Pos: NetInP, Neg: circuit.Ground, DC: vicm, ACMag: 0.5},
		&circuit.VSource{Name: "szn", Pos: NetInN, Neg: circuit.Ground, DC: vicm, ACMag: 0.5, ACPhase: 180},
		&circuit.Capacitor{Name: "szload", A: NetOut, B: circuit.Ground, C: p.spec.CL},
	)
	ns := d.NodeSet()
	ns[NetInP], ns[NetInN] = vicm, vicm
	return EvalGBWPM(p.tech, ckt, NetOut, ns)
}

// EvalGBWPM measures the unity-gain frequency and phase margin of a
// prepared differential testbench circuit (AC drive and load already
// attached). Shared by every design plan's evaluation step.
func EvalGBWPM(tech *techno.Tech, ckt *circuit.Circuit, out string, nodeset map[string]float64) (gbw, pm float64, err error) {
	eng := sim.NewEngine(ckt, tech.Temp)
	op, err := eng.OP(sim.OPOptions{NodeSet: nodeset})
	if err != nil {
		return 0, 0, fmt.Errorf("sizing: evaluation OP: %w", err)
	}

	// One linearization serves the sweep and every bisection probe: the
	// ~26 gainAt calls below used to re-derive the MOSFET partials each
	// time, which profiling showed dominating the sizing evaluation.
	solver := eng.PrepareAC(op)
	gainAt := func(f float64) (complex128, error) {
		res, err := solver.Solve([]float64{f})
		if err != nil {
			return 0, err
		}
		return res[0].Volt(ckt, out), nil
	}
	freqs := sim.LogSpace(1e6, 3e9, 40)
	res, err := solver.Solve(freqs)
	if err != nil {
		return 0, 0, err
	}
	var fLo, fHi float64
	for i := 1; i < len(res); i++ {
		if cmplx.Abs(res[i].Volt(ckt, out)) < 1 {
			fLo, fHi = freqs[i-1], freqs[i]
			break
		}
	}
	if fHi == 0 {
		return 0, 0, fmt.Errorf("sizing: no unity crossing below 3 GHz")
	}
	for i := 0; i < 25; i++ {
		mid := math.Sqrt(fLo * fHi)
		h, err := gainAt(mid)
		if err != nil {
			return 0, 0, err
		}
		if cmplx.Abs(h) >= 1 {
			fLo = mid
		} else {
			fHi = mid
		}
	}
	fu := math.Sqrt(fLo * fHi)
	h, err := gainAt(fu)
	if err != nil {
		return 0, 0, err
	}
	phase := cmplx.Phase(h) * 180 / math.Pi
	pm = 180 + phase
	for pm > 180 {
		pm -= 360
	}
	return fu, pm, nil
}

// BiasFor recomputes the four bias voltages on an alternate technology
// (e.g. a process corner) for the same device sizes and node targets —
// the role of an on-chip bias generator that tracks the process. Used by
// the corner verification.
func (d *FoldedCascode) BiasFor(tech *techno.Tech) (map[string]float64, error) {
	out := map[string]float64{}
	vdd := d.Spec.VDD

	n5 := d.Devices[MN5]
	mn5 := device.MOS{Card: &tech.N, W: n5.W, L: n5.L}
	vgs, err := mn5.VGSForCurrent(n5.ID, d.NodeEst[NetFN1], 0, tech.Temp)
	if err != nil {
		return nil, fmt.Errorf("sizing: corner vbn: %w", err)
	}
	out[NetVBN] = vgs

	c := d.Devices[MN1C]
	mn1c := device.MOS{Card: &tech.N, W: c.W, L: c.L}
	vgsC, err := mn1c.VGSForCurrent(c.ID, d.NodeEst[NetMO1]-d.NodeEst[NetFN1], c.VSB, tech.Temp)
	if err != nil {
		return nil, fmt.Errorf("sizing: corner vc1: %w", err)
	}
	out[NetVC1] = d.NodeEst[NetFN1] + vgsC

	t := d.Devices[MP5]
	mp5 := device.MOS{Card: &tech.P, W: t.W, L: t.L}
	vgsT, err := mp5.VGSForCurrent(t.ID, vdd-d.NodeEst[NetTail], 0, tech.Temp)
	if err != nil {
		return nil, fmt.Errorf("sizing: corner vbp: %w", err)
	}
	out[NetVBP] = vdd - vgsT

	pc := d.Devices[MP3C]
	mp3c := device.MOS{Card: &tech.P, W: pc.W, L: pc.L}
	vgsPC, err := mp3c.VGSForCurrent(pc.ID, d.NodeEst[NetN3]-d.NodeEst[NetMO1], pc.VSB, tech.Temp)
	if err != nil {
		return nil, fmt.Errorf("sizing: corner vc3: %w", err)
	}
	out[NetVC3] = d.NodeEst[NetN3] - vgsPC
	return out, nil
}
