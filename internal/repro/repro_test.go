package repro

import (
	"math"
	"strings"
	"sync"
	"testing"

	"loas/internal/sizing"
	"loas/internal/techno"
)

func TestFig2ExactValues(t *testing.T) {
	pts := Fig2(8)
	if len(pts) != 8 {
		t.Fatalf("want 8 points, got %d", len(pts))
	}
	// Spot values from the paper's formulas.
	checks := []struct {
		nf   int
		col  string
		want float64
	}{
		{1, "ext", 1.0}, {1, "odd", 1.0},
		{2, "int", 0.5}, {2, "ext", 1.0},
		{3, "odd", 2.0 / 3.0},
		{4, "ext", 0.75},
		{6, "ext", 8.0 / 12.0},
		{5, "odd", 0.6},
	}
	for _, c := range checks {
		p := pts[c.nf-1]
		var got float64
		switch c.col {
		case "int":
			got = p.Internal
		case "ext":
			got = p.External
		case "odd":
			got = p.Odd
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Fig2 nf=%d %s = %g, want %g", c.nf, c.col, got, c.want)
		}
	}
}

func TestFig2CurveShape(t *testing.T) {
	pts := Fig2(32)
	for i := 1; i < len(pts); i++ {
		if pts[i].Internal != 0.5 {
			t.Fatal("internal curve must be flat at 1/2")
		}
		if i > 1 && pts[i].External > pts[i-1].External {
			t.Fatal("external curve must fall")
		}
		if pts[i].Odd > pts[i-1].Odd {
			t.Fatal("odd curve must fall")
		}
	}
	// Steep initial drop: most of the reduction in the first few folds.
	drop4 := pts[0].External - pts[3].External
	drop32 := pts[3].External - pts[31].External
	if drop4 < drop32 {
		t.Fatal("the first folds should give most of the reduction")
	}
}

func TestFig2TextRenders(t *testing.T) {
	s := Fig2Text(6)
	if !strings.Contains(s, "0.5000") || !strings.Contains(s, "Nf") {
		t.Fatalf("Fig2 text malformed:\n%s", s)
	}
}

func TestFig3Experiment(t *testing.T) {
	tech := techno.Default060()
	r, err := Fig3(tech)
	if err != nil {
		t.Fatal(err)
	}
	// Ratios realized exactly.
	if r.Pattern.UnitCount(0) != 1 || r.Pattern.UnitCount(1) != 3 || r.Pattern.UnitCount(2) != 6 {
		t.Fatal("mirror ratio wrong")
	}
	// Matching quality.
	if r.CentroidErr["M3"] > 0.5 {
		t.Fatalf("M3 centroid error %.2f", r.CentroidErr["M3"])
	}
	// Reliability: the 120 µA branch must have a wide enough strap
	// network — verified indirectly through positive geometry.
	if r.Stack.Width <= 0 {
		t.Fatal("no geometry")
	}
	text, err := Fig3Text(tech)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "1:3:6") || !strings.Contains(text, "centroid") {
		t.Fatalf("Fig3 text malformed:\n%s", text)
	}
}

func TestFoldStyleComparison(t *testing.T) {
	tech := techno.Default060()
	unfolded, internal, external := FoldStyleComparison(tech, 48e-6, 4)
	if !(internal < external && external < unfolded) {
		t.Fatalf("CDB ordering wrong: internal %.3g, external %.3g, unfolded %.3g",
			internal, external, unfolded)
	}
	// Internal-drain folding halves the capacitance (F = 1/2 + sidewall).
	ratio := internal / unfolded
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("internal/unfolded CDB ratio %.2f, want ≈ 0.5", ratio)
	}
}

var (
	t1Once  sync.Once
	t1Cases []Table1Case
	t1Err   error
)

func table1Cases(t *testing.T) []Table1Case {
	t.Helper()
	t1Once.Do(func() {
		t1Cases, t1Err = Table1(techno.Default060(), sizing.Default65MHz())
	})
	if t1Err != nil {
		t.Fatal(t1Err)
	}
	return t1Cases
}

func TestTable1AllShapeChecksHold(t *testing.T) {
	cases := table1Cases(t)
	if bad := Table1ShapeChecks(cases, sizing.Default65MHz()); len(bad) > 0 {
		t.Fatalf("qualitative shape violations:\n  %s", strings.Join(bad, "\n  "))
	}
}

func TestTable1TextComplete(t *testing.T) {
	cases := table1Cases(t)
	s := Table1Text(cases, sizing.Default65MHz())
	for _, want := range []string{"Case 1", "Case 4", "DC gain", "GBW", "Power", "layout calls"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Table 1 text missing %q", want)
		}
	}
}

func TestFig5LayoutGenerated(t *testing.T) {
	r, err := Fig5(techno.Default060(), sizing.Default65MHz())
	if err != nil {
		t.Fatal(err)
	}
	par := r.Plan.Parasitics
	if par.AreaUM2 < 1000 || par.AreaUM2 > 1e6 {
		t.Fatalf("OTA area %.0f µm² implausible", par.AreaUM2)
	}
	// Frequency-critical transistors fold with even counts (drains
	// internal), the paper's stated layout style.
	for _, inst := range []string{"MN2C", "MP4C"} {
		nf := par.Folds[inst].Folds
		if nf > 1 && nf%2 != 0 {
			t.Fatalf("%s folded %d times — signal drains must use even counts", inst, nf)
		}
	}
	var buf strings.Builder
	if err := r.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "<svg") {
		t.Fatal("SVG malformed")
	}
	txt := Fig5Text(r)
	if !strings.Contains(txt, "folds") {
		t.Fatalf("Fig5 text malformed:\n%s", txt)
	}
}

func TestTable1HeaderEchoesSpec(t *testing.T) {
	h := Table1Header(sizing.Default65MHz())
	for _, want := range []string{"3.3 V", "65 MHz", "3 pF", "[0.51, 2.31]"} {
		if !strings.Contains(h, want) {
			t.Fatalf("header missing %q: %s", want, h)
		}
	}
}

func TestConvergenceTrace(t *testing.T) {
	pts, err := ConvergenceTrace(techno.Default060(), sizing.Default65MHz(), 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) < 2 || len(pts) > 6 {
		t.Fatalf("expected a handful of calls, got %d", len(pts))
	}
	// Deltas must shrink monotonically to the fixpoint.
	for i := 2; i < len(pts); i++ {
		if pts[i].DeltaF > pts[i-1].DeltaF {
			t.Fatalf("delta grew at call %d: %g > %g", pts[i].Call,
				pts[i].DeltaF, pts[i-1].DeltaF)
		}
	}
	last := pts[len(pts)-1]
	if last.DeltaF > 1e-15 {
		t.Fatalf("loop ended with Δ = %g F", last.DeltaF)
	}
	txt := ConvergenceText(pts)
	if !strings.Contains(txt, "call") {
		t.Fatalf("trace text malformed:\n%s", txt)
	}
}

func TestEvalAblation(t *testing.T) {
	abl, err := RunEvalAblation(techno.Default060(), sizing.Default65MHz())
	if err != nil {
		t.Fatal(err)
	}
	// The simulated evaluation must predict the extracted PM far better
	// than closed-form pole counting (which is pessimistic: it misses
	// the mirror pole-zero doublet).
	errSim := math.Abs(abl.PMSimulated - abl.PMExtracted)
	errAna := math.Abs(abl.PMAnalytic - abl.PMExtracted)
	if errSim > 2 {
		t.Fatalf("simulated PM off by %.1f°", errSim)
	}
	if errAna < errSim {
		t.Fatalf("pole counting (%.1f° err) should not beat simulation (%.1f° err)",
			errAna, errSim)
	}
}
