package sizing

import (
	"fmt"
	"math"

	"loas/internal/device"
	"loas/internal/obs"
	"loas/internal/techno"
)

// Device names follow the paper's Fig. 4.
const (
	MP1  = "MP1" // input pair +
	MP2  = "MP2" // input pair −
	MP5  = "MP5" // tail current source
	MP3  = "MP3" // top current source, mirror side
	MP4  = "MP4" // top current source, output side
	MP3C = "MP3C"
	MP4C = "MP4C"
	MN1C = "MN1C"
	MN2C = "MN2C"
	MN5  = "MN5" // bottom sink, mirror side
	MN6  = "MN6" // bottom sink, output side
)

// Net names of the folded-cascode OTA.
const (
	NetVDD  = "vdd"
	NetGND  = "0"
	NetInP  = "inp"
	NetInN  = "inn"
	NetTail = "tail"
	NetFN1  = "fn1" // fold node, mirror side
	NetFN2  = "fn2" // fold node, output side
	NetN3   = "n3"  // source of MP3C
	NetN4   = "n4"  // source of MP4C
	NetMO1  = "mo1" // mirror gate node (drain of MP3C)
	NetOut  = "out"
	NetVBP  = "vbp"
	NetVBN  = "vbn"
	NetVC1  = "vc1"
	NetVC3  = "vc3"
)

// DeviceSize is one sized transistor with its design-time bias estimate.
type DeviceSize struct {
	Type techno.MOSType
	W, L float64
	Veff float64
	ID   float64 // magnitude (A)
	VSB  float64 // assumed source-bulk reverse bias (V)
	Geom device.DiffGeom
}

// FoldedCascode is a fully sized design.
type FoldedCascode struct {
	Tech *techno.Tech
	Spec OTASpec
	Par  ParasiticState

	Devices     map[string]DeviceSize
	Bias        map[string]float64 // vbp, vbn, vc1, vc3
	NodeEst     map[string]float64 // estimated DC node voltages
	NetCurrents map[string]float64

	Itail, Icasc float64
	Lc           float64 // non-input channel length from the PM iteration
	Predicted    Performance
	// PMAnalytic is the closed-form pole-counting phase margin at the
	// final sizing point — kept for the ablation against the simulated
	// evaluation the plan actually uses.
	PMAnalytic float64
	Iterations int
}

func init() {
	Register(Plan{
		Name:        "folded-cascode",
		Description: "folded-cascode OTA (paper Fig. 4): cascoded single stage, four bias voltages",
		Size: func(tech *techno.Tech, spec OTASpec, ps ParasiticState) (Design, error) {
			return SizeFoldedCascode(tech, spec, ps)
		},
		DefaultSpec: Default65MHz,
	})
}

// PredictedPerf exposes the plan's performance prediction (Design).
func (d *FoldedCascode) PredictedPerf() Performance { return d.Predicted }

// DeviceTable exposes the sized devices (Design).
func (d *FoldedCascode) DeviceTable() map[string]DeviceSize { return d.Devices }

// OperatingPoint snapshots the design point (Design).
func (d *FoldedCascode) OperatingPoint() OperatingPoint {
	return OperatingPoint{W1: d.Devices[MP1].W, Lc: d.Lc, Itail: d.Itail}
}

// HotNet is the mirror-side fold node — the net whose parasitics drive
// the GBW/PM feedback (Design).
func (d *FoldedCascode) HotNet() string { return NetFN1 }

// ACGroundNets lists the AC-ground nets of this topology (Design).
func (d *FoldedCascode) ACGroundNets() []string { return ACGroundNets() }

// BiasSources maps the netlist's bias vsources to bias-net keys (Design).
func (d *FoldedCascode) BiasSources() map[string]string {
	return map[string]string{"bp": NetVBP, "bn": NetVBN, "c1": NetVC1, "c3": NetVC3}
}

// OffsetRefs returns the mismatch-critical devices for the analytic
// offset estimate: the input pair against the bottom sinks (Design).
func (d *FoldedCascode) OffsetRefs() (pair, load DeviceSize, gmRatio float64) {
	return d.Devices[MP1], d.Devices[MN5], 0.7
}

// plan bundles the working state of one sizing pass.
type plan struct {
	tech *techno.Tech
	spec OTASpec
	ps   ParasiticState

	l1, lc                   float64
	veff1, veffN, veffP, vtl float64
	ratio                    float64 // Icasc / Itail
	gbwBoost                 float64 // gm over-design vs the analytic load estimate

	d               *FoldedCascode
	iters           int
	lastGBW, lastPM float64 // from the simulated evaluation
}

// SizeFoldedCascode runs the design plan. The paper's procedure: fix
// operating points, estimate currents from GBW, size widths on the exact
// model, iterate non-input lengths for phase margin, re-estimate until
// the GBW loop converges.
func SizeFoldedCascode(tech *techno.Tech, spec OTASpec, ps ParasiticState) (*FoldedCascode, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if spec.GBW <= 0 || spec.CL <= 0 || spec.VDD <= 0 {
		return nil, fmt.Errorf("sizing: incomplete spec %+v", spec)
	}
	p := &plan{tech: tech, spec: spec, ps: ps}
	p.l1 = 1.0 * techno.Micron
	p.ratio = 0.55
	p.gbwBoost = 1.0

	// Operating points from the voltage-range specification (the
	// knowledge in the knowledge-based plan).
	p.veffP = clamp(0.9*(spec.VDD-spec.OutHigh)/2, 0.15, 0.6)
	p.veffN = clamp(0.9*spec.OutLow/2, 0.15, 0.6)
	p.vtl = 0.20 // tail overdrive
	// Input pair overdrive bounded by the upper common-mode limit.
	icmLimit := spec.VDD - spec.ICMHigh - p.vtl - tech.P.VT0 - 0.05
	p.veff1 = clamp(icmLimit, 0.12, 0.25)

	// Phase-margin iteration on the shared non-input channel length:
	// longer channels raise gain but load the internal nodes (C ∝ W·L
	// with W ∝ L at fixed current and overdrive), dropping the
	// non-dominant poles. Bisect for the target, prefer the longest
	// channel that still meets it.
	const lMin, lMax = 0.6 * techno.Micron, 4.0 * techno.Micron
	for {
		pmAtMin, err := p.pmAt(lMin)
		if err != nil {
			return nil, err
		}
		if pmAtMin >= spec.PM {
			break
		}
		// Even minimal lengths miss the target: raise the cascode
		// current for more pole-frequency headroom.
		p.ratio *= 1.3
		if p.ratio > 1.6 {
			return nil, fmt.Errorf("sizing: phase margin %0.1f° unreachable (best %0.1f°)",
				spec.PM, pmAtMin)
		}
	}
	pmAtMax, err := p.pmAt(lMax)
	if err != nil {
		return nil, err
	}
	lo, hi := lMin, lMax
	if pmAtMax >= spec.PM {
		lo = lMax // longest channel already meets PM
	} else {
		for i := 0; i < 14; i++ {
			mid := 0.5 * (lo + hi)
			pm, err := p.pmAt(mid)
			if err != nil {
				return nil, err
			}
			if pm >= spec.PM {
				lo = mid
			} else {
				hi = mid
			}
		}
	}
	if _, err := p.pmAt(lo); err != nil { // final sizing at the chosen length
		return nil, err
	}
	p.d.Lc = lo
	p.d.Iterations = p.iters
	p.d.PMAnalytic = p.analyticPhaseMargin()
	p.predict()
	sizingPasses.Inc()
	return p.d, nil
}

// sizingPasses counts completed passes of every design plan — the
// COMDIAC-side half of the loasd /metrics convergence picture.
var sizingPasses = obs.Default.Counter("loas_sizing_passes_total",
	"completed sizing passes (all design plans)")

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// pmAt sizes the amplifier for the GBW target at non-input length lc,
// corrects the transconductance until the *simulated* GBW meets the
// target, and returns the simulated phase margin.
func (p *plan) pmAt(lc float64) (float64, error) {
	p.lc = lc
	for k := 0; k < 5; k++ {
		if err := p.size(); err != nil {
			return 0, err
		}
		gbw, pm, err := p.simulateGBWPM()
		if err != nil {
			return 0, err
		}
		p.lastGBW, p.lastPM = gbw, pm
		rel := gbw / p.spec.GBW
		if rel > 0.99 && rel < 1.03 {
			break
		}
		p.gbwBoost = clamp(p.gbwBoost*p.spec.GBW/gbw, 0.3, 5)
	}
	return p.lastPM, nil
}

// oneFold returns the worst-case unfolded junction geometry for width w.
func (p *plan) oneFold(w float64) device.DiffGeom {
	return device.OneFoldGeom(p.tech, w)
}

// size runs the inner GBW fixpoint: output load → gm1 → currents → widths
// → new output load, until the load stabilizes.
func (p *plan) size() error {
	tech := p.tech
	spec := p.spec
	cout := spec.CL
	var d *FoldedCascode
	for iter := 0; iter < 20; iter++ {
		p.iters++
		gm1 := 2 * math.Pi * spec.GBW * cout * p.gbwBoost
		w1, err := p.ps.Memo.SizeForGm(&tech.P, p.l1, p.veff1, 0, gm1,
			tech.Temp, techno.NMToMeters(tech.Rules.ActiveWidth), 20000*techno.Micron)
		if err != nil {
			return fmt.Errorf("sizing: input pair: %w", err)
		}
		m1 := device.MOS{Card: &tech.P, W: w1, L: p.l1}
		id1 := m1.IDSat(p.veff1, 0, tech.Temp)
		itail := 2 * id1
		icasc := p.ratio * itail
		in5 := id1 + icasc

		vfn := p.veffN + 0.10
		vn3 := p.veffP + 0.10 // below VDD

		szFor := func(card *techno.MOSCard, l, veff, vsb, id float64) (float64, error) {
			return p.ps.Memo.SizeForCurrent(card, l, veff, vsb, id, tech.Temp,
				techno.NMToMeters(tech.Rules.ActiveWidth), 20000*techno.Micron)
		}
		wn5, err := szFor(&tech.N, p.lc, p.veffN, 0, in5)
		if err != nil {
			return fmt.Errorf("sizing: MN5: %w", err)
		}
		wn1c, err := szFor(&tech.N, p.lc, p.veffN, vfn, icasc)
		if err != nil {
			return fmt.Errorf("sizing: MN1C: %w", err)
		}
		wp3, err := szFor(&tech.P, p.lc, p.veffP, 0, icasc)
		if err != nil {
			return fmt.Errorf("sizing: MP3: %w", err)
		}
		wp3c, err := szFor(&tech.P, p.lc, p.veffP, vn3, icasc)
		if err != nil {
			return fmt.Errorf("sizing: MP3C: %w", err)
		}
		wp5, err := szFor(&tech.P, p.lc, p.vtl, 0, itail)
		if err != nil {
			return fmt.Errorf("sizing: MP5: %w", err)
		}

		d = &FoldedCascode{
			Tech: tech, Spec: spec, Par: p.ps,
			Devices:     map[string]DeviceSize{},
			Bias:        map[string]float64{},
			NodeEst:     map[string]float64{},
			NetCurrents: map[string]float64{},
			Itail:       itail, Icasc: icasc, Lc: p.lc,
		}
		add := func(name string, t techno.MOSType, w, l, veff, id, vsb float64) {
			g := p.ps.deviceGeom(p.oneFold, name, w)
			d.Devices[name] = DeviceSize{Type: t, W: w, L: l, Veff: veff, ID: id, VSB: vsb, Geom: g}
		}
		add(MP1, techno.PMOS, w1, p.l1, p.veff1, id1, 0)
		add(MP2, techno.PMOS, w1, p.l1, p.veff1, id1, 0)
		add(MP5, techno.PMOS, wp5, p.lc, p.vtl, itail, 0)
		add(MP3, techno.PMOS, wp3, p.lc, p.veffP, icasc, 0)
		add(MP4, techno.PMOS, wp3, p.lc, p.veffP, icasc, 0)
		add(MP3C, techno.PMOS, wp3c, p.lc, p.veffP, icasc, vn3)
		add(MP4C, techno.PMOS, wp3c, p.lc, p.veffP, icasc, vn3)
		add(MN5, techno.NMOS, wn5, p.lc, p.veffN, in5, 0)
		add(MN6, techno.NMOS, wn5, p.lc, p.veffN, in5, 0)
		add(MN1C, techno.NMOS, wn1c, p.lc, p.veffN, icasc, vfn)
		add(MN2C, techno.NMOS, wn1c, p.lc, p.veffN, icasc, vfn)

		p.d = d
		p.estimateNodes()
		if err := p.biasVoltages(); err != nil {
			return err
		}

		newCout := p.nodeCap(NetOut, spec.CL)
		if math.Abs(newCout-cout) < 0.002*cout {
			cout = newCout
			break
		}
		cout = newCout
	}
	p.d.NetCurrents = map[string]float64{
		NetTail: p.d.Itail, NetFN1: p.d.Devices[MN5].ID, NetFN2: p.d.Devices[MN6].ID,
		NetN3: p.d.Icasc, NetN4: p.d.Icasc, NetMO1: p.d.Icasc, NetOut: p.d.Icasc,
		NetVDD: p.d.Itail + 2*p.d.Icasc, NetGND: p.d.Itail + 2*p.d.Icasc, "gnd": p.d.Itail + 2*p.d.Icasc,
	}
	return nil
}

// estimateNodes fills the design-time DC node voltage estimates (also the
// simulator's NodeSet seed).
func (p *plan) estimateNodes() {
	d := p.d
	spec := p.spec
	vcm := 0.5 * (spec.ICMLow + spec.ICMHigh)
	if vcm < 0.3 {
		vcm = 0.3
	}
	vfn := p.veffN + 0.10
	d.NodeEst[NetVDD] = spec.VDD
	d.NodeEst[NetInP] = vcm
	d.NodeEst[NetInN] = vcm
	d.NodeEst[NetTail] = vcm + p.tech.P.VT0 + p.veff1
	d.NodeEst[NetFN1] = vfn
	d.NodeEst[NetFN2] = vfn
	d.NodeEst[NetN3] = spec.VDD - (p.veffP + 0.10)
	d.NodeEst[NetN4] = spec.VDD - (p.veffP + 0.10)
	d.NodeEst[NetMO1] = spec.VDD - (p.tech.P.VT0 + p.veffP)
	d.NodeEst[NetOut] = 0.5 * (spec.OutLow + spec.OutHigh)
}

// biasVoltages computes the four bias voltages on the exact model — the
// "DC bias conditions … calculated in order to satisfy the given
// specifications".
func (p *plan) biasVoltages() error {
	d := p.d
	tech := p.tech
	vdd := p.spec.VDD

	// vbn: gate of MN5/MN6 sinking In5 with source at ground.
	n5 := d.Devices[MN5]
	mn5 := device.MOS{Card: &tech.N, W: n5.W, L: n5.L}
	vgs, err := p.ps.Memo.VGSForCurrent(&mn5, n5.ID, d.NodeEst[NetFN1], 0, tech.Temp)
	if err != nil {
		return fmt.Errorf("sizing: vbn: %w", err)
	}
	d.Bias[NetVBN] = vgs

	// vc1: gate of the NMOS cascodes (source at the fold node).
	c := d.Devices[MN1C]
	mn1c := device.MOS{Card: &tech.N, W: c.W, L: c.L}
	vgsC, err := p.ps.Memo.VGSForCurrent(&mn1c, c.ID, d.NodeEst[NetMO1]-d.NodeEst[NetFN1], c.VSB, tech.Temp)
	if err != nil {
		return fmt.Errorf("sizing: vc1: %w", err)
	}
	d.Bias[NetVC1] = d.NodeEst[NetFN1] + vgsC

	// vbp: gate of the tail source (PMOS, mirrored).
	t := d.Devices[MP5]
	mp5 := device.MOS{Card: &tech.P, W: t.W, L: t.L}
	vgsT, err := p.ps.Memo.VGSForCurrent(&mp5, t.ID, vdd-d.NodeEst[NetTail], 0, tech.Temp)
	if err != nil {
		return fmt.Errorf("sizing: vbp: %w", err)
	}
	d.Bias[NetVBP] = vdd - vgsT

	// vc3: gate of the PMOS cascodes (source at n3/n4 below VDD).
	pc := d.Devices[MP3C]
	mp3c := device.MOS{Card: &tech.P, W: pc.W, L: pc.L}
	vgsPC, err := p.ps.Memo.VGSForCurrent(&mp3c, pc.ID, d.NodeEst[NetN3]-d.NodeEst[NetMO1], pc.VSB, tech.Temp)
	if err != nil {
		return fmt.Errorf("sizing: vc3: %w", err)
	}
	d.Bias[NetVC3] = d.NodeEst[NetN3] - vgsPC
	return nil
}

// evalDev evaluates a sized device at its design-time bias estimate,
// returning the operating point and capacitances.
func (p *plan) evalDev(name string) (device.OP, device.CapSet) {
	ds := p.d.Devices[name]
	card := &p.tech.N
	if ds.Type == techno.PMOS {
		card = &p.tech.P
	}
	key := p.ps.Memo.Key("fc-evaldev", card,
		ds.W, ds.L, ds.Geom.AD, ds.Geom.PD, ds.Geom.AS, ds.Geom.PS,
		ds.ID, ds.Veff, ds.VSB, p.tech.Temp)
	return p.ps.Memo.OPCaps(key, func() (device.OP, device.CapSet) {
		m := device.MOS{Card: card, W: ds.W, L: ds.L, Geom: ds.Geom}
		// Synthetic saturated bias consistent with the estimates: VDS one
		// overdrive plus margin, VSB per the table.
		sign := card.VTSign()
		vs := 0.0
		vb := 0.0
		if ds.VSB > 0 {
			vs = sign * ds.VSB
		}
		vgs, err := m.VGSForCurrent(ds.ID, ds.Veff+0.2, ds.VSB, p.tech.Temp)
		if err != nil {
			vgs = card.VT0 + ds.Veff
		}
		vg := vs + sign*vgs
		vd := vs + sign*(ds.Veff+0.2)
		op := m.Eval(vg, vd, vs, vb, p.tech.Temp)
		return op, m.Caps(op, p.tech.Temp)
	})
}

// nodeCap estimates the total small-signal capacitance on a net under the
// current parasitic state.
func (p *plan) nodeCap(net string, external float64) float64 {
	c := external + p.ps.wiringCap(net)
	switch net {
	case NetOut:
		_, c2 := p.evalDev(MN2C)
		_, c4 := p.evalDev(MP4C)
		c += c2.CDB + c2.CGD + c4.CDB + c4.CGD
	case NetFN1, NetFN2:
		_, cp := p.evalDev(MP1)
		_, cn := p.evalDev(MN5)
		_, cc := p.evalDev(MN1C)
		c += cp.CDB + cp.CGD + cn.CDB + cn.CGD + cc.CGS + cc.CSB
	case NetMO1:
		_, c3c := p.evalDev(MP3C)
		_, c3 := p.evalDev(MP3)
		_, cn := p.evalDev(MN1C)
		c += c3c.CDB + c3c.CGD + 2*(c3.CGS+c3.CGB) + cn.CDB + cn.CGD
	case NetN3, NetN4:
		_, c3 := p.evalDev(MP3)
		_, cc := p.evalDev(MP3C)
		c += c3.CDB + c3.CGD + cc.CGS + cc.CSB
	}
	return c
}

// analyticPhaseMargin evaluates the closed-form pole-counting phase
// margin — kept for the ablation study against the simulated evaluation
// (pole counting is pessimistic: it ignores the mirror pole-zero doublet).
func (p *plan) analyticPhaseMargin() float64 {
	gbw := p.achievedGBW()
	pm := 90.0
	for _, pole := range p.nonDominantPoles() {
		pm -= math.Atan(gbw/pole) * 180 / math.Pi
	}
	return pm
}

// nonDominantPoles returns the fold-node, mirror-node and cascode-source
// pole frequencies (Hz).
func (p *plan) nonDominantPoles() []float64 {
	opN, _ := p.evalDev(MN1C)
	opP3, _ := p.evalDev(MP3)
	opP3C, _ := p.evalDev(MP3C)
	cfn := p.nodeCap(NetFN1, 0)
	cmo := p.nodeCap(NetMO1, 0)
	cn3 := p.nodeCap(NetN3, 0)
	return []float64{
		(opN.Gm + opN.Gmb) / (2 * math.Pi * cfn),
		opP3.Gm / (2 * math.Pi * cmo),
		(opP3C.Gm + opP3C.Gmb) / (2 * math.Pi * cn3),
	}
}

// achievedGBW is gm1 over the sized output load.
func (p *plan) achievedGBW() float64 {
	op1, _ := p.evalDev(MP1)
	return op1.Gm / (2 * math.Pi * p.nodeCap(NetOut, p.spec.CL))
}

// predict fills the Performance block from the design-plan equations.
func (p *plan) predict() {
	d := p.d
	op1, _ := p.evalDev(MP1)
	opN2C, _ := p.evalDev(MN2C)
	opN6, _ := p.evalDev(MN5)
	opP4, _ := p.evalDev(MP3)
	opP4C, _ := p.evalDev(MP3C)
	opT, _ := p.evalDev(MP5)

	cout := p.nodeCap(NetOut, p.spec.CL)
	gm1 := op1.Gm

	// Output resistance: cascoded NMOS branch || cascoded PMOS branch.
	roN := 1 / opN2C.Gds
	roSink := 1 / opN6.Gds
	roPair := 1 / op1.Gds
	rDown := (opN2C.Gm + opN2C.Gmb) * roN * parallel(roSink, roPair)
	roP := 1 / opP4C.Gds
	rUp := (opP4C.Gm + opP4C.Gmb) * roP / opP4.Gds
	rout := parallel(rDown, rUp)

	d.Predicted.DCGainDB = DB(gm1 * rout)
	d.Predicted.GBW = p.lastGBW
	d.Predicted.PhaseDeg = p.lastPM
	d.Predicted.Rout = rout
	d.Predicted.SlewRate = math.Min(d.Itail, 2*d.Icasc) / cout
	d.Predicted.Offset = 0
	d.Predicted.Power = p.spec.VDD * (d.Itail + 2*d.Icasc)

	// CMRR: tail rejection times cascode-mirror balance.
	cmrr := 2 * op1.Gm / opT.Gds * (opP4.Gm / opP4.Gds) / 2
	d.Predicted.CMRRDB = DB(cmrr)

	// Noise: input pair, bottom sinks and top sources dominate.
	kT4 := 4 * techno.KBoltzmann * p.tech.Temp
	gammaN, gammaP := p.tech.N.NoiseGamma, p.tech.P.NoiseGamma
	svTh := 2 * kT4 / (gm1 * gm1) *
		(gammaP*gm1 + gammaN*opN6.Gm + gammaP*opP4.Gm)
	d.Predicted.NoiseTh = math.Sqrt(svTh)

	leffIn := d.Devices[MP1].L - 2*p.tech.P.LD
	leffC := p.lc - 2*p.tech.N.LD
	cox := p.tech.N.Cox
	fl := 2 / (gm1 * gm1) * (p.tech.P.KF*d.Devices[MP1].ID/(cox*leffIn*leffIn) +
		p.tech.N.KF*d.Devices[MN5].ID/(cox*leffC*leffC)*1 +
		p.tech.P.KF*d.Devices[MP3].ID/(cox*leffC*leffC))
	d.Predicted.NoiseFl1 = math.Sqrt(fl)

	// Integrated input noise, 1 Hz … GBW: white × π/2·GBW plus 1/f × ln.
	gbw := d.Predicted.GBW
	total := svTh*(math.Pi/2)*gbw + fl*math.Log(gbw)
	d.Predicted.NoiseRMS = math.Sqrt(total)
}

func parallel(a, b float64) float64 { return a * b / (a + b) }
