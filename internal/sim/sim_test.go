package sim

import (
	"math"
	"math/cmplx"
	"testing"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/techno"
)

const um = techno.Micron

func TestOPResistorDivider(t *testing.T) {
	c := circuit.New("divider")
	c.Add(
		&circuit.VSource{Name: "dd", Pos: "in", Neg: "0", DC: 3.0},
		&circuit.Resistor{Name: "1", A: "in", B: "mid", R: 1e3},
		&circuit.Resistor{Name: "2", A: "mid", B: "0", R: 2e3},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Volt(c, "mid"); math.Abs(v-2.0) > 1e-9 {
		t.Fatalf("V(mid) = %g, want 2", v)
	}
	if i := r.BranchI["dd"]; math.Abs(i+1e-3) > 1e-9 {
		t.Fatalf("source current = %g, want −1 mA", i)
	}
	if res := e.KCLResidual(r); res > 1e-9 {
		t.Fatalf("KCL residual %g", res)
	}
}

func TestOPDiodeConnectedNMOS(t *testing.T) {
	tech := techno.Default060()
	c := circuit.New("diode")
	m := &circuit.MOSFET{Name: "1", D: "d", G: "d", S: "0", B: "0",
		Dev: device.MOS{Card: &tech.N, W: 20 * um, L: 1 * um}}
	c.Add(
		&circuit.ISource{Name: "b", Pos: "vdd", Neg: "d", DC: 50e-6},
		&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
		m,
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	op := r.MOSOPs["1"]
	if math.Abs(op.ID-50e-6)/50e-6 > 1e-4 {
		t.Fatalf("diode current %g, want 50 µA", op.ID)
	}
	vgs := r.Volt(c, "d")
	if vgs < tech.N.VT0 || vgs > tech.N.VT0+0.6 {
		t.Fatalf("diode VGS = %g, implausible", vgs)
	}
	if res := e.KCLResidual(r); res > 1e-9 {
		t.Fatalf("KCL residual %g", res)
	}
}

func TestOPCurrentMirrorRatio(t *testing.T) {
	tech := techno.Default060()
	c := circuit.New("mirror")
	mk := func(name string, w float64, d string) *circuit.MOSFET {
		return &circuit.MOSFET{Name: name, D: d, G: "g", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: w, L: 2 * um}}
	}
	c.Add(
		&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
		&circuit.ISource{Name: "ref", Pos: "vdd", Neg: "g", DC: 20e-6},
		mk("1", 10*um, "g"),
		mk("2", 30*um, "out"),
		&circuit.Resistor{Name: "l", A: "vdd", B: "out", R: 10e3},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	iOut := r.MOSOPs["2"].ID
	// 3:1 mirror with mild CLM mismatch: within 15% of 60 µA.
	if iOut < 55e-6 || iOut > 75e-6 {
		t.Fatalf("mirror output %g, want ≈ 60 µA", iOut)
	}
}

func TestOPPMOSCommonSource(t *testing.T) {
	tech := techno.Default060()
	c := circuit.New("pcs")
	c.Add(
		&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
		&circuit.VSource{Name: "in", Pos: "g", Neg: "0", DC: 2.2},
		&circuit.MOSFET{Name: "p", D: "out", G: "g", S: "vdd", B: "vdd",
			Dev: device.MOS{Card: &tech.P, W: 40 * um, L: 1 * um}},
		&circuit.Resistor{Name: "l", A: "out", B: "0", R: 20e3},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	op := r.MOSOPs["p"]
	// |VGS| = 1.1 V > |VT0p| = 0.8 V → conducting; V(out) = −ID·(−RL)…
	if op.ID >= 0 {
		t.Fatalf("PMOS drain current should be negative (out of drain into node): %g", op.ID)
	}
	vout := r.Volt(c, "out")
	if vout < 0.05 || vout > 3.3 {
		t.Fatalf("V(out) = %g out of range", vout)
	}
	if want := -op.ID * 20e3; math.Abs(vout-want) > 1e-6 {
		t.Fatalf("V(out) = %g inconsistent with ID·RL = %g", vout, want)
	}
}

// fiveTransistorOTA builds the classic 5T OTA used to validate OP/AC/noise
// against hand analysis.
func fiveTransistorOTA(tech *techno.Tech) (*circuit.Circuit, map[string]float64) {
	c := circuit.New("ota5t")
	wIn, wMir, wTail := 60*um, 30*um, 40*um
	l := 1 * um
	geomN := device.OneFoldGeom(tech, wMir)
	geomP := device.OneFoldGeom(tech, wIn)
	c.Add(
		&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
		&circuit.VSource{Name: "inp", Pos: "vip", Neg: "0", DC: 1.6, ACMag: 0.5},
		&circuit.VSource{Name: "inn", Pos: "vin", Neg: "0", DC: 1.6, ACMag: 0.5, ACPhase: 180},
		&circuit.ISource{Name: "b", Pos: "vbn", Neg: "0", DC: 20e-6},
		// Bias mirror for the tail.
		&circuit.MOSFET{Name: "b1", D: "vbn", G: "vbn", S: "vdd", B: "vdd",
			Dev: device.MOS{Card: &tech.P, W: wTail, L: l, Geom: device.OneFoldGeom(tech, wTail)}},
		&circuit.MOSFET{Name: "t", D: "tail", G: "vbn", S: "vdd", B: "vdd",
			Dev: device.MOS{Card: &tech.P, W: 2 * wTail, L: l, Geom: device.OneFoldGeom(tech, 2*wTail)}},
		// Input pair (PMOS).
		&circuit.MOSFET{Name: "1", D: "x", G: "vip", S: "tail", B: "vdd",
			Dev: device.MOS{Card: &tech.P, W: wIn, L: l, Geom: geomP}},
		&circuit.MOSFET{Name: "2", D: "out", G: "vin", S: "tail", B: "vdd",
			Dev: device.MOS{Card: &tech.P, W: wIn, L: l, Geom: geomP}},
		// NMOS mirror load.
		&circuit.MOSFET{Name: "3", D: "x", G: "x", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: wMir, L: l, Geom: geomN}},
		&circuit.MOSFET{Name: "4", D: "out", G: "x", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: wMir, L: l, Geom: geomN}},
		&circuit.Capacitor{Name: "l", A: "out", B: "0", C: 2e-12},
	)
	seeds := map[string]float64{
		"vdd": 3.3, "vbn": 2.3, "tail": 2.4, "x": 0.9, "out": 0.9,
		"vip": 1.6, "vin": 1.6,
	}
	return c, seeds
}

func TestOP5TOTA(t *testing.T) {
	tech := techno.Default060()
	c, seeds := fiveTransistorOTA(tech)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{NodeSet: seeds})
	if err != nil {
		t.Fatal(err)
	}
	// Pair must split the tail current evenly (symmetric bias).
	i1, i2 := r.MOSOPs["1"].ID, r.MOSOPs["2"].ID
	if math.Abs(i1-i2) > 0.02*math.Abs(i1) {
		t.Fatalf("pair imbalance: %g vs %g", i1, i2)
	}
	// All devices saturated.
	for _, name := range []string{"1", "2", "3", "4", "t"} {
		op := r.MOSOPs[name]
		if op.Region != device.RegionSaturation {
			t.Fatalf("M%s region = %v at VDS=%.3g, want saturation", name, op.Region, op.VDS)
		}
	}
	if res := e.KCLResidual(r); res > 1e-8 {
		t.Fatalf("KCL residual %g", res)
	}
}

func TestAC5TOTAGainAndPole(t *testing.T) {
	tech := techno.Default060()
	c, seeds := fiveTransistorOTA(tech)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{NodeSet: seeds})
	if err != nil {
		t.Fatal(err)
	}
	// Hand estimate: Av = gm1/(gds2+gds4).
	gm := r.MOSOPs["1"].Gm
	gds := r.MOSOPs["2"].Gds + r.MOSOPs["4"].Gds
	want := gm / gds

	acr, err := e.AC(r, []float64{10, 1e3})
	if err != nil {
		t.Fatal(err)
	}
	got := cmplx.Abs(acr[0].Volt(c, "out"))
	if math.Abs(got-want)/want > 0.05 {
		t.Fatalf("DC gain %g, hand analysis %g", got, want)
	}
	// Gain still flat at 1 kHz.
	if g2 := cmplx.Abs(acr[1].Volt(c, "out")); math.Abs(g2-got)/got > 0.02 {
		t.Fatalf("gain droop too early: %g vs %g", g2, got)
	}

	// −3 dB pole ≈ gds/(2π·CL); unity gain ≈ gm/(2π·CL).
	fu := gm / (2 * math.Pi * 2e-12)
	acu, err := e.AC(r, []float64{fu})
	if err != nil {
		t.Fatal(err)
	}
	gu := cmplx.Abs(acu[0].Volt(c, "out"))
	if gu < 0.5 || gu > 2 {
		t.Fatalf("|H| at estimated unity frequency = %g, want ≈ 1", gu)
	}
}

func TestACRCLowpass(t *testing.T) {
	c := circuit.New("rc")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0, ACMag: 1},
		&circuit.Resistor{Name: "r", A: "a", B: "b", R: 1e3},
		&circuit.Capacitor{Name: "c", A: "b", B: "0", C: 1e-9},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fc := 1 / (2 * math.Pi * 1e3 * 1e-9)
	acr, err := e.AC(r, []float64{fc / 100, fc, fc * 100})
	if err != nil {
		t.Fatal(err)
	}
	if g := cmplx.Abs(acr[0].Volt(c, "b")); math.Abs(g-1) > 1e-3 {
		t.Fatalf("passband gain %g", g)
	}
	if g := cmplx.Abs(acr[1].Volt(c, "b")); math.Abs(g-1/math.Sqrt2) > 1e-3 {
		t.Fatalf("gain at fc = %g, want 0.707", g)
	}
	ph := cmplx.Phase(acr[1].Volt(c, "b")) * 180 / math.Pi
	if math.Abs(ph+45) > 0.5 {
		t.Fatalf("phase at fc = %g°, want −45°", ph)
	}
	if g := cmplx.Abs(acr[2].Volt(c, "b")); math.Abs(g-0.01) > 2e-3 {
		t.Fatalf("stopband gain %g, want ≈ 0.01", g)
	}
}

func TestNoiseResistorMatchesTheory(t *testing.T) {
	// Output noise of an RC lowpass: S = 4kTR/(1+(f/fc)²).
	c := circuit.New("rcnoise")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0},
		&circuit.Resistor{Name: "r", A: "a", B: "b", R: 10e3},
		&circuit.Capacitor{Name: "c", A: "b", B: "0", C: 1e-12},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := e.Noise(r, "b", []float64{100})
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * techno.KBoltzmann * techno.TempNominal * 10e3
	if got := pts[0].OutPSD; math.Abs(got-want)/want > 1e-3 {
		t.Fatalf("noise PSD %g, want %g", got, want)
	}
}

func TestNoiseKTOverC(t *testing.T) {
	// Total integrated output noise of RC must be kT/C (independent of R).
	c := circuit.New("ktc")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0},
		&circuit.Resistor{Name: "r", A: "a", B: "b", R: 1e3},
		&circuit.Capacitor{Name: "c", A: "b", B: "0", C: 10e-12},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	fc := 1 / (2 * math.Pi * 1e3 * 10e-12)
	freqs := LogSpace(fc/1e4, fc*1e4, 400)
	pts, err := e.Noise(r, "b", freqs)
	if err != nil {
		t.Fatal(err)
	}
	psd := make([]float64, len(pts))
	for i, p := range pts {
		psd[i] = p.OutPSD
	}
	vn := IntegratePSD(freqs, psd)
	want := math.Sqrt(techno.KBoltzmann * techno.TempNominal / 10e-12)
	if math.Abs(vn-want)/want > 0.02 {
		t.Fatalf("integrated noise %g, want kT/C %g", vn, want)
	}
}

func TestTranRCStep(t *testing.T) {
	c := circuit.New("rcstep")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0,
			Pulse: &circuit.Pulse{V1: 0, V2: 1, Delay: 0, Rise: 1e-12, Width: 1}},
		&circuit.Resistor{Name: "r", A: "a", B: "b", R: 1e3},
		&circuit.Capacitor{Name: "c", A: "b", B: "0", C: 1e-9},
	)
	e := NewEngine(c, techno.TempNominal)
	tau := 1e-6
	res, err := e.Tran(5*tau, tau/100, OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w := res.Waveform(c, "b")
	// Compare against the analytic exponential at t = tau.
	idx := 100
	want := 1 - math.Exp(-1)
	if math.Abs(w[idx]-want) > 0.01 {
		t.Fatalf("v(tau) = %g, want %g", w[idx], want)
	}
	if final := w[len(w)-1]; math.Abs(final-(1-math.Exp(-5))) > 0.01 {
		t.Fatalf("v(5tau) = %g", final)
	}
}

func TestTranPulseShape(t *testing.T) {
	p := &circuit.Pulse{V1: 0, V2: 2, Delay: 1e-9, Rise: 1e-9, Width: 3e-9, Fall: 1e-9, Period: 10e-9}
	cases := []struct{ t, v float64 }{
		{0, 0}, {1e-9, 0}, {1.5e-9, 1}, {2e-9, 2}, {4e-9, 2}, {5.5e-9, 1}, {6.1e-9, 0},
		{11.5e-9, 1}, // periodic repeat
	}
	for _, c := range cases {
		if got := p.At(c.t); math.Abs(got-c.v) > 1e-9 {
			t.Fatalf("pulse at %g = %g, want %g", c.t, got, c.v)
		}
	}
}

func TestVCVSIdealAmp(t *testing.T) {
	c := circuit.New("vcvs")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0.1},
		&circuit.VCVS{Name: "e", Pos: "out", Neg: "0", CPos: "a", CNeg: "0", Gain: 10},
		&circuit.Resistor{Name: "l", A: "out", B: "0", R: 1e3},
	)
	e := NewEngine(c, techno.TempNominal)
	r, err := e.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v := r.Volt(c, "out"); math.Abs(v-1.0) > 1e-9 {
		t.Fatalf("VCVS output %g, want 1.0", v)
	}
}

func TestOPNoConvergenceReportsError(t *testing.T) {
	// Two ideal voltage sources fighting on one node → singular system.
	c := circuit.New("conflict")
	c.Add(
		&circuit.VSource{Name: "a", Pos: "x", Neg: "0", DC: 1},
		&circuit.VSource{Name: "b", Pos: "x", Neg: "0", DC: 2},
	)
	e := NewEngine(c, techno.TempNominal)
	if _, err := e.OP(OPOptions{}); err == nil {
		t.Fatal("conflicting sources must not converge")
	}
}

func TestEngineBranchIndexing(t *testing.T) {
	c := circuit.New("idx")
	c.Add(
		&circuit.VSource{Name: "v1", Pos: "a", Neg: "0", DC: 1},
		&circuit.Resistor{Name: "r", A: "a", B: "0", R: 1},
	)
	e := NewEngine(c, techno.TempNominal)
	if e.Size() != 2 { // one node + one branch
		t.Fatalf("size = %d, want 2", e.Size())
	}
	if _, ok := e.BranchIndex("v1"); !ok {
		t.Fatal("v1 branch missing")
	}
	if _, ok := e.BranchIndex("nope"); ok {
		t.Fatal("phantom branch")
	}
}
