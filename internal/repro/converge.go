package repro

import (
	"fmt"

	"loas/internal/core"
	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// ConvergencePoint is one sizing↔layout iteration of the case-4 loop —
// now the shared obs.Iteration event the whole stack records (core
// results, the loasd /v1/trace endpoint, `loas trace`).
type ConvergencePoint = obs.Iteration

// ConvergenceTrace replays the paper's "repeated till the calculated
// parasitics remain unchanged" loop, recording every layout call — the
// experiment behind the "three calls of the layout tool were needed"
// sentence in §5. It is the case-4 synthesis loop itself (core.Synthesize
// with verification skipped), so the trace is exactly what a full run
// would record.
func ConvergenceTrace(tech *techno.Tech, spec sizing.OTASpec, maxCalls int) ([]ConvergencePoint, error) {
	res, err := core.Synthesize(tech, spec, core.Options{
		Case:           4,
		MaxLayoutCalls: maxCalls,
		SkipVerify:     true,
	})
	if err != nil {
		return nil, err
	}
	return res.Trace, nil
}

// ConvergenceText renders the trace as the convergence table.
func ConvergenceText(pts []ConvergencePoint) string {
	return obs.ConvergenceTable(pts)
}

// EvalAblation compares the three phase-margin views of one design: the
// closed-form pole-counting estimate, the simulated evaluation the plan
// uses, and the extracted-netlist measurement — quantifying why the plan
// evaluates on the simulator (the paper's shared-models accuracy
// argument).
type EvalAblation struct {
	PMAnalytic  float64
	PMSimulated float64
	PMExtracted float64
}

// RunEvalAblation runs the case-4 synthesis once and reports the three
// phase margins.
func RunEvalAblation(tech *techno.Tech, spec sizing.OTASpec) (*EvalAblation, error) {
	res, err := core.Synthesize(tech, spec, core.Options{Case: 4})
	if err != nil {
		return nil, err
	}
	fc, ok := res.Design.(*sizing.FoldedCascode)
	if !ok {
		return nil, fmt.Errorf("repro: eval ablation needs the folded-cascode plan, got %T", res.Design)
	}
	return &EvalAblation{
		PMAnalytic:  fc.PMAnalytic,
		PMSimulated: fc.Predicted.PhaseDeg,
		PMExtracted: res.Extracted.PhaseDeg,
	}, nil
}
