package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"testing"

	"loas/internal/circuit"
	"loas/internal/layout/route"
	"loas/internal/mc"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// The differential harness: every cold-path cache layer (device-eval
// memo, incremental extraction, shape-function cache, Monte-Carlo
// batching) must be bit-invisible. Each subtest runs the same synthesis
// twice — all caches disabled vs all enabled — and asserts hex-exact
// byte identity of the Summary, the iteration trace, the parasitic
// report and the full layout geometry. Timing fields are the only
// exclusion (they measure the caches' purpose).

// cachesOff disables all four layers; the zero value enables them.
var cachesOff = CacheOptions{
	DisableEvalMemo:           true,
	DisableIncrementalExtract: true,
	DisableShapeCache:         true,
	DisableMCBatch:            true,
}

func hx(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func fpPerf(b *strings.Builder, tag string, p sizing.Performance) {
	fmt.Fprintf(b, "%s: gain=%s gbw=%s pm=%s sr=%s cmrr=%s off=%s rout=%s nrms=%s nth=%s nfl=%s pwr=%s\n",
		tag, hx(p.DCGainDB), hx(p.GBW), hx(p.PhaseDeg), hx(p.SlewRate), hx(p.CMRRDB),
		hx(p.Offset), hx(p.Rout), hx(p.NoiseRMS), hx(p.NoiseTh), hx(p.NoiseFl1), hx(p.Power))
}

// fingerprint renders everything a synthesis produced — summary, trace,
// parasitics, geometry — with every float in exact hex; two runs agree
// iff their results are bit-identical.
func fingerprint(t *testing.T, res *Result) string {
	t.Helper()
	var b strings.Builder
	s := res.Summary()
	fmt.Fprintf(&b, "topology=%s layout=%s layout_calls=%d sizing_passes=%d\n",
		s.Topology, s.Layout, s.LayoutCalls, s.SizingPasses)
	fpPerf(&b, "synthesized", s.Synthesized)
	fpPerf(&b, "extracted", s.Extracted)
	fmt.Fprintf(&b, "floorplan: w=%s h=%s area=%s\n", hx(s.WidthUM), hx(s.HeightUM), hx(s.AreaUM2))
	if s.Refine != nil {
		// The refine report carries no wall-clock; JSON floats use the
		// shortest round-trip rendering, which is injective on bit
		// patterns.
		j, err := json.Marshal(s.Refine)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprintf(&b, "refine: %s\n", j)
	}

	for _, it := range res.Trace {
		fmt.Fprintf(&b, "iter r%d c%d: delta=%s out=%s hot=%s total=%s folds=%d w1=%s lc=%s itail=%s\n",
			it.Round, it.Call, hx(it.DeltaF), hx(it.OutCapF), hx(it.FN1CapF), hx(it.TotalCapF),
			it.Folds, hx(it.W1), hx(it.Lc), hx(it.Itail))
	}

	par := res.Parasitics
	var names []string
	for n := range par.NetCap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "netcap %s=%s\n", n, hx(par.NetCap[n]))
	}
	pairs := make([]route.NetPair, 0, len(par.Coupling))
	for p := range par.Coupling {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].A != pairs[j].A {
			return pairs[i].A < pairs[j].A
		}
		return pairs[i].B < pairs[j].B
	})
	for _, p := range pairs {
		fmt.Fprintf(&b, "coupling %s~%s=%s\n", p.A, p.B, hx(par.Coupling[p]))
	}
	names = names[:0]
	for n := range par.WellCap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "wellcap %s=%s\n", n, hx(par.WellCap[n]))
	}
	names = names[:0]
	for n := range par.DeviceGeom {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		g := par.DeviceGeom[n]
		f := par.Folds[n]
		fmt.Fprintf(&b, "dev %s: ad=%s pd=%s as=%s ps=%s folds=%d fw=%s style=%d strips=%d/%d/%d/%d\n",
			n, hx(g.AD), hx(g.PD), hx(g.AS), hx(g.PS),
			f.Folds, hx(f.FingerW), f.Style, f.DrainStrips, f.DrainExt, f.SourceStrips, f.SourceExt)
	}

	cell := res.Layout.Cell
	fmt.Fprintf(&b, "cell %s: %d shapes %d ports\n", cell.Name, len(cell.Shapes), len(cell.Ports))
	for _, sh := range cell.Shapes {
		fmt.Fprintf(&b, "shape %d %d,%d,%d,%d %s\n", sh.Layer, sh.R.L, sh.R.B, sh.R.R, sh.R.T, sh.Net)
	}
	for _, p := range cell.Ports {
		fmt.Fprintf(&b, "port %s %s %d %d,%d,%d,%d\n", p.Name, p.Net, p.Layer, p.R.L, p.R.B, p.R.R, p.R.T)
	}
	return b.String()
}

func diffFingerprints(t *testing.T, off, on string) {
	t.Helper()
	if off == on {
		return
	}
	lo, ln := strings.Split(off, "\n"), strings.Split(on, "\n")
	for i := 0; i < len(lo) && i < len(ln); i++ {
		if lo[i] != ln[i] {
			t.Fatalf("caches changed the result at line %d:\n  off: %s\n  on:  %s", i+1, lo[i], ln[i])
		}
	}
	t.Fatalf("caches changed the result length: %d vs %d lines", len(lo), len(ln))
}

// TestDifferentialCachesOneShot pins bit identity of the one-shot flow
// for every registered topology, caches off vs on.
func TestDifferentialCachesOneShot(t *testing.T) {
	tech := techno.Default060()
	for _, topo := range sizing.Topologies() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			t.Parallel()
			plan, err := sizing.Lookup(topo)
			if err != nil {
				t.Fatal(err)
			}
			spec := plan.DefaultSpec()
			run := func(c CacheOptions) string {
				res, err := Synthesize(tech, spec, Options{Topology: topo, Caches: c})
				if err != nil {
					t.Fatalf("synthesize %s: %v", topo, err)
				}
				return fingerprint(t, res)
			}
			diffFingerprints(t, run(cachesOff), run(CacheOptions{}))
		})
	}
}

// TestDifferentialCachesRefined pins bit identity of the closed-loop
// refined flow (the heaviest cache consumer: caches are shared across
// refinement rounds) for every registered topology.
func TestDifferentialCachesRefined(t *testing.T) {
	tech := techno.Default060()
	for _, topo := range sizing.Topologies() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			t.Parallel()
			plan, err := sizing.Lookup(topo)
			if err != nil {
				t.Fatal(err)
			}
			spec := plan.DefaultSpec()
			run := func(c CacheOptions) string {
				res, err := Synthesize(tech, spec, Options{
					Topology: topo,
					Caches:   c,
					Refine:   RefineOptions{Enabled: true, MaxRounds: 2},
				})
				if err != nil {
					t.Fatalf("refine %s: %v", topo, err)
				}
				return fingerprint(t, res)
			}
			diffFingerprints(t, run(cachesOff), run(CacheOptions{}))
		})
	}
}

// TestDifferentialCachesRowsBackend pins bit identity of the one-shot
// flow under the row-based layout backend for every registered topology
// — the cache layers must be bit-invisible for every backend, not just
// the default slicing generator.
func TestDifferentialCachesRowsBackend(t *testing.T) {
	tech := techno.Default060()
	for _, topo := range sizing.Topologies() {
		topo := topo
		t.Run(topo, func(t *testing.T) {
			t.Parallel()
			plan, err := sizing.Lookup(topo)
			if err != nil {
				t.Fatal(err)
			}
			spec := plan.DefaultSpec()
			run := func(c CacheOptions) string {
				res, err := Synthesize(tech, spec, Options{Topology: topo, Layout: "rows", Caches: c})
				if err != nil {
					t.Fatalf("synthesize %s under rows: %v", topo, err)
				}
				if res.LayoutBackend != "rows" {
					t.Fatalf("result backend %q, want rows", res.LayoutBackend)
				}
				return fingerprint(t, res)
			}
			diffFingerprints(t, run(cachesOff), run(CacheOptions{}))
		})
	}
}

// TestDifferentialMCBatch pins bit identity of the batched Monte-Carlo
// evaluation against the per-solve-rebuild legacy path, sample by
// sample, on a sized folded-cascode.
func TestDifferentialMCBatch(t *testing.T) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	ps, err := sizing.Case(1)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := sizing.Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	d, err := plan.Size(tech, spec, ps)
	if err != nil {
		t.Fatal(err)
	}
	cfg := mc.OffsetConfig{
		Build:   func() *circuit.Circuit { return d.Netlist("mc") },
		InP:     sizing.NetInP,
		InN:     sizing.NetInN,
		Out:     sizing.NetOut,
		VicmDC:  0.5 * (spec.ICMLow + spec.ICMHigh),
		VoutMid: 0.5 * (spec.OutLow + spec.OutHigh),
		Temp:    tech.Temp,
		NodeSet: d.NodeSet(),
		Workers: 2,
	}
	const n, seed = 8, 7
	run := func(rebuild bool) string {
		c := cfg
		c.PerSolveRebuild = rebuild
		samples, err := mc.OffsetSamples(c, 0, n, seed)
		if err != nil {
			t.Fatal(err)
		}
		var b strings.Builder
		for _, s := range samples {
			fmt.Fprintf(&b, "%d %v %s\n", s.Index, s.OK, hx(s.OffsetV))
		}
		st := mc.ReduceOffsets(samples)
		fmt.Fprintf(&b, "n=%d fail=%d mean=%s sigma=%s worst=%s\n",
			st.N, st.Failures, hx(st.MeanV), hx(st.SigmaV), hx(st.WorstAbsV))
		return b.String()
	}
	diffFingerprints(t, run(true), run(false))
}
