package device

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"loas/internal/techno"
)

func nmos(w, l float64) *MOS {
	t := techno.Default060()
	return &MOS{Card: &t.N, W: w, L: l}
}

func pmos(w, l float64) *MOS {
	t := techno.Default060()
	return &MOS{Card: &t.P, W: w, L: l}
}

const um = techno.Micron

func TestNMOSCutoff(t *testing.T) {
	m := nmos(10*um, 1*um)
	op := m.Eval(0, 1.0, 0, 0, techno.TempNominal)
	if op.ID > 1e-12 {
		t.Fatalf("VGS=0 should be off, ID = %g", op.ID)
	}
	if op.Region != RegionOff && op.Region != RegionWeak {
		t.Fatalf("region = %v, want off/weak", op.Region)
	}
}

func TestNMOSStrongInversionCurrentScale(t *testing.T) {
	// Current should be near β/2n·Veff² and scale with W.
	m1 := nmos(10*um, 1*um)
	m2 := nmos(20*um, 1*um)
	op1 := m1.Eval(1.25, 2.0, 0, 0, techno.TempNominal)
	op2 := m2.Eval(1.25, 2.0, 0, 0, techno.TempNominal)
	if op1.ID <= 0 {
		t.Fatalf("expected conduction, got %g", op1.ID)
	}
	ratio := op2.ID / op1.ID
	if math.Abs(ratio-2) > 0.01 {
		t.Fatalf("current should double with W: ratio = %g", ratio)
	}
}

func TestNMOSSaturationRegion(t *testing.T) {
	m := nmos(10*um, 1*um)
	op := m.Eval(1.5, 3.0, 0, 0, techno.TempNominal)
	if op.Region != RegionSaturation {
		t.Fatalf("VDS=3 V at Veff≈0.7 V should saturate, got %v", op.Region)
	}
	opT := m.Eval(1.5, 0.05, 0, 0, techno.TempNominal)
	if opT.Region != RegionTriode {
		t.Fatalf("VDS=50 mV should be triode, got %v", opT.Region)
	}
	if opT.ID >= op.ID {
		t.Fatalf("triode current %g should be below saturation %g", opT.ID, op.ID)
	}
}

func TestPMOSMirrorSymmetry(t *testing.T) {
	// A PMOS biased with mirrored voltages must carry the mirrored current.
	n := nmos(10*um, 1*um)
	p := pmos(10*um, 1*um)
	p.Card = func() *techno.MOSCard { c := *n.Card; c.Type = techno.PMOS; return &c }()
	vdd := 3.3
	opN := n.Eval(1.2, 2.0, 0, 0, techno.TempNominal)
	opP := p.Eval(vdd-1.2, vdd-2.0, vdd, vdd, techno.TempNominal)
	if math.Abs(opN.ID+opP.ID) > 1e-9*math.Abs(opN.ID)+1e-15 {
		t.Fatalf("PMOS mirror current %g should equal −NMOS %g", opP.ID, opN.ID)
	}
}

func TestDrainSourceSymmetry(t *testing.T) {
	// Swapping drain and source must flip the current sign exactly.
	m := nmos(10*um, 1*um)
	a := m.Eval(1.4, 1.0, 0.2, 0, techno.TempNominal)
	b := m.Eval(1.4, 0.2, 1.0, 0, techno.TempNominal)
	if math.Abs(a.ID+b.ID) > 1e-12*math.Abs(a.ID) {
		t.Fatalf("S/D swap: %g vs %g", a.ID, b.ID)
	}
	if !b.Swapped {
		t.Fatal("reverse conduction should set Swapped")
	}
}

func TestGmMatchesFiniteDifference(t *testing.T) {
	m := nmos(20*um, 0.8*um)
	const h = 1e-5
	op := m.Eval(1.3, 2.0, 0, 0, techno.TempNominal)
	up := m.Eval(1.3+h, 2.0, 0, 0, techno.TempNominal)
	dn := m.Eval(1.3-h, 2.0, 0, 0, techno.TempNominal)
	gmFD := (up.ID - dn.ID) / (2 * h)
	if rel := math.Abs(op.Gm-gmFD) / gmFD; rel > 1e-3 {
		t.Fatalf("Gm = %g, FD = %g (rel %g)", op.Gm, gmFD, rel)
	}
}

func TestGdsPositiveAndEarlyVoltage(t *testing.T) {
	m := nmos(20*um, 2*um)
	op := m.Eval(1.3, 2.0, 0, 0, techno.TempNominal)
	if op.Gds <= 0 {
		t.Fatal("Gds must be positive in saturation")
	}
	// VA = VAL·Leff; check gds ≈ ID/(VA+VDS) within a factor of 2.
	va := m.Card.VAL * m.Leff()
	approx := op.ID / va
	if op.Gds > 2*approx || op.Gds < approx/3 {
		t.Fatalf("Gds = %g, expected near ID/VA = %g", op.Gds, approx)
	}
	// Longer device → smaller λ → higher intrinsic gain.
	mShort := nmos(20*um, 0.6*um)
	opS := mShort.Eval(1.3, 2.0, 0, 0, techno.TempNominal)
	if op.Gm/op.Gds <= opS.Gm/opS.Gds {
		t.Fatal("intrinsic gain should grow with L")
	}
}

func TestBodyEffectRaisesVTH(t *testing.T) {
	m := nmos(10*um, 1*um)
	op0 := m.Eval(1.2, 2.0, 0, 0, techno.TempNominal)
	op1 := m.Eval(2.2, 3.0, 1.0, 0, techno.TempNominal) // same VGS=1.2, VSB=1
	if op1.VTH <= op0.VTH {
		t.Fatalf("VSB=1 V should raise VTH: %g vs %g", op1.VTH, op0.VTH)
	}
	if op1.ID >= op0.ID {
		t.Fatalf("body effect should reduce current: %g vs %g", op1.ID, op0.ID)
	}
	if op1.Gmb <= 0 {
		t.Fatal("Gmb must be positive with body effect")
	}
}

func TestWeakInversionExponential(t *testing.T) {
	// In weak inversion, current should grow ~exp(VGS/nVt): a 60·n mV
	// increase multiplies current by ~10.
	m := nmos(10*um, 1*um)
	vt := techno.ThermalVoltage(techno.TempNominal)
	n := 1 + m.Card.Gamma/(2*math.Sqrt(m.Card.Phi))
	v1 := m.Card.VT0 - 0.25
	dec := math.Ln10 * n * vt
	a := m.Eval(v1, 1.0, 0, 0, techno.TempNominal)
	b := m.Eval(v1+dec, 1.0, 0, 0, techno.TempNominal)
	ratio := b.ID / a.ID
	if ratio < 6 || ratio > 14 {
		t.Fatalf("weak-inversion decade ratio = %g, want ≈10", ratio)
	}
}

func TestContinuityAcrossRegions(t *testing.T) {
	// Sweep VGS finely; current and its first difference must be smooth
	// (no jumps from region boundaries).
	m := nmos(10*um, 1*um)
	prev := math.NaN()
	prevD := math.NaN()
	const step = 1e-3
	for vgs := 0.0; vgs <= 2.5; vgs += step {
		op := m.Eval(vgs, 2.0, 0, 0, techno.TempNominal)
		if !math.IsNaN(prev) {
			d := op.ID - prev
			if d < -1e-15 {
				t.Fatalf("current decreased with VGS at %g V", vgs)
			}
			if !math.IsNaN(prevD) && prevD > 1e-9 {
				if d > 3*prevD+1e-9 {
					t.Fatalf("current kink at VGS = %g V: Δ %g → %g", vgs, prevD, d)
				}
			}
			prevD = d
		}
		prev = op.ID
	}
}

func TestIDSatMonotonicInVeff(t *testing.T) {
	m := nmos(10*um, 1*um)
	prev := 0.0
	for _, veff := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
		id := m.IDSat(veff, 0, techno.TempNominal)
		if id <= prev {
			t.Fatalf("IDSat must grow with Veff (%g: %g ≤ %g)", veff, id, prev)
		}
		prev = id
	}
}

func TestSizeForCurrentRoundTrip(t *testing.T) {
	tech := techno.Default060()
	for _, target := range []float64{10e-6, 50e-6, 200e-6} {
		w, err := SizeForCurrent(&tech.N, 1*um, 0.2, 0, target, techno.TempNominal, 0.8*um, 5000*um)
		if err != nil {
			t.Fatalf("target %g: %v", target, err)
		}
		m := &MOS{Card: &tech.N, W: w, L: 1 * um}
		got := m.IDSat(0.2, 0, techno.TempNominal)
		if rel := math.Abs(got-target) / target; rel > 1e-6 {
			t.Fatalf("target %g: sized W=%g gives %g (rel err %g)", target, w, got, rel)
		}
	}
}

func TestSizeForCurrentUnreachable(t *testing.T) {
	tech := techno.Default060()
	_, err := SizeForCurrent(&tech.N, 1*um, 0.2, 0, 1.0, techno.TempNominal, 0.8*um, 100*um)
	if err == nil {
		t.Fatal("1 A from a 100 µm device should be unreachable")
	}
}

func TestVGSForCurrentRoundTrip(t *testing.T) {
	m := nmos(50*um, 1*um)
	target := 100e-6
	vgs, err := m.VGSForCurrent(target, 2.0, 0, techno.TempNominal)
	if err != nil {
		t.Fatal(err)
	}
	op := m.Eval(vgs, 2.0, 0, 0, techno.TempNominal)
	if rel := math.Abs(op.ID-target) / target; rel > 1e-3 {
		t.Fatalf("VGS=%g gives ID=%g, want %g", vgs, op.ID, target)
	}
}

func TestEvalPropertyGmNonNegative(t *testing.T) {
	// Property: for random biases within the supply, Gm, Gds, Gmb ≥ 0 and
	// ID is finite.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		m := nmos((1+r.Float64()*100)*um, (0.6+r.Float64()*4)*um)
		vg := r.Float64() * 3.3
		vd := r.Float64() * 3.3
		vs := r.Float64() * 1.5
		op := m.Eval(vg, vd, vs, 0, techno.TempNominal)
		if math.IsNaN(op.ID) || math.IsInf(op.ID, 0) {
			return false
		}
		return op.Gm >= 0 && op.Gds >= 0 && op.Gmb >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiplierScalesCurrent(t *testing.T) {
	m1 := nmos(10*um, 1*um)
	m4 := nmos(10*um, 1*um)
	m4.Mult = 4
	a := m1.Eval(1.3, 2, 0, 0, techno.TempNominal)
	b := m4.Eval(1.3, 2, 0, 0, techno.TempNominal)
	if math.Abs(b.ID/a.ID-4) > 1e-9 {
		t.Fatalf("M=4 should quadruple current: %g", b.ID/a.ID)
	}
}

func TestMobilityDegradationBendsIV(t *testing.T) {
	// With Theta > 0, ID at high Veff must fall short of pure square law
	// extrapolated from low Veff.
	m := nmos(10*um, 1*um)
	idLo := m.IDSat(0.1, 0, techno.TempNominal)
	idHi := m.IDSat(0.8, 0, techno.TempNominal)
	squareLaw := idLo * (0.8 / 0.1) * (0.8 / 0.1)
	if idHi >= squareLaw {
		t.Fatalf("mobility degradation missing: %g ≥ %g", idHi, squareLaw)
	}
}
