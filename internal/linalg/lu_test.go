package linalg

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRealSolveIdentity(t *testing.T) {
	m := NewReal(3)
	for i := 0; i < 3; i++ {
		m.Set(i, i, 1)
	}
	lu, err := FactorReal(m)
	if err != nil {
		t.Fatal(err)
	}
	b := []float64{1, 2, 3}
	x := lu.Solve(b)
	for i := range b {
		if math.Abs(x[i]-b[i]) > 1e-14 {
			t.Fatalf("x[%d] = %g, want %g", i, x[i], b[i])
		}
	}
}

func TestRealSolveKnown(t *testing.T) {
	// [2 1; 1 3]·x = [3; 5] → x = [4/5, 7/5]
	m := NewReal(2)
	m.Set(0, 0, 2)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 3)
	lu, err := FactorReal(m)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]float64{3, 5})
	if math.Abs(x[0]-0.8) > 1e-12 || math.Abs(x[1]-1.4) > 1e-12 {
		t.Fatalf("got %v, want [0.8 1.4]", x)
	}
}

func TestRealPivoting(t *testing.T) {
	// Zero on the diagonal forces a row swap.
	m := NewReal(2)
	m.Set(0, 0, 0)
	m.Set(0, 1, 1)
	m.Set(1, 0, 1)
	m.Set(1, 1, 0)
	lu, err := FactorReal(m)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]float64{7, 9})
	if math.Abs(x[0]-9) > 1e-12 || math.Abs(x[1]-7) > 1e-12 {
		t.Fatalf("got %v, want [9 7]", x)
	}
}

func TestRealSingular(t *testing.T) {
	m := NewReal(2)
	m.Set(0, 0, 1)
	m.Set(0, 1, 2)
	m.Set(1, 0, 2)
	m.Set(1, 1, 4)
	if _, err := FactorReal(m); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestRealResidualProperty(t *testing.T) {
	// Property: for random diagonally dominant systems, A·x ≈ b.
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(20)
		m := NewReal(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i != j {
					v := r.NormFloat64()
					m.Set(i, j, v)
					rowSum += math.Abs(v)
				}
			}
			m.Set(i, i, rowSum+1+r.Float64())
		}
		b := make([]float64, n)
		for i := range b {
			b[i] = r.NormFloat64()
		}
		lu, err := FactorReal(m)
		if err != nil {
			return false
		}
		x := lu.Solve(b)
		ax := MulVecReal(m, x)
		for i := range b {
			if math.Abs(ax[i]-b[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestComplexSolveKnown(t *testing.T) {
	// (1+1i)·x = 2 → x = 1−1i
	m := NewComplex(1)
	m.Set(0, 0, complex(1, 1))
	lu, err := FactorComplex(m)
	if err != nil {
		t.Fatal(err)
	}
	x := lu.Solve([]complex128{2})
	if cmplx.Abs(x[0]-complex(1, -1)) > 1e-14 {
		t.Fatalf("got %v, want (1-1i)", x[0])
	}
}

func TestComplexPivotAndResidual(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(15)
		m := NewComplex(n)
		for i := 0; i < n; i++ {
			var rowSum float64
			for j := 0; j < n; j++ {
				if i != j {
					v := complex(rng.NormFloat64(), rng.NormFloat64())
					m.Set(i, j, v)
					rowSum += cmplx.Abs(v)
				}
			}
			m.Set(i, i, complex(rowSum+1, rng.NormFloat64()))
		}
		b := make([]complex128, n)
		for i := range b {
			b[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		}
		lu, err := FactorComplex(m)
		if err != nil {
			t.Fatal(err)
		}
		x := lu.Solve(b)
		for i := 0; i < n; i++ {
			var s complex128
			for j := 0; j < n; j++ {
				s += m.At(i, j) * x[j]
			}
			if cmplx.Abs(s-b[i]) > 1e-9 {
				t.Fatalf("trial %d: residual row %d = %g", trial, i, cmplx.Abs(s-b[i]))
			}
		}
	}
}

func TestComplexSingular(t *testing.T) {
	m := NewComplex(2)
	m.Set(0, 0, 1+2i)
	m.Set(0, 1, 2+4i)
	m.Set(1, 0, 0.5+1i)
	m.Set(1, 1, 1+2i)
	if _, err := FactorComplex(m); err == nil {
		t.Fatal("expected singular matrix error")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewReal(2)
	m.Set(0, 0, 5)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 5 {
		t.Fatal("Clone aliases original storage")
	}
}

func TestZeroClears(t *testing.T) {
	m := NewReal(3)
	m.Set(1, 2, 4)
	m.Zero()
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("(%d,%d) not cleared", i, j)
			}
		}
	}
}

func TestAddAccumulates(t *testing.T) {
	m := NewReal(2)
	m.Add(0, 1, 2)
	m.Add(0, 1, 3)
	if m.At(0, 1) != 5 {
		t.Fatalf("Add: got %g want 5", m.At(0, 1))
	}
}
