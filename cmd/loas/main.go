// Command loas reproduces the experiments of "Layout-Oriented Synthesis
// of High Performance Analog Circuits" (DATE 2000) from the command line.
//
// Usage:
//
//	loas fig2                  capacitance reduction factor table
//	loas fig3 [-svg file]      current-mirror stack generation
//	loas table1 [-case N] [-json]  the four-case sizing/extraction table
//	loas fig5 [-svg file]      generate the case-4 OTA layout
//	loas flow                  proposed vs traditional flow comparison
//	loas netlist [-case N]     print the extracted SPICE-like netlist
//	loas synth [-topology T] [-case N] [-refine] [-json]  one layout-in-the-loop synthesis
//	loas topologies            list the registered design plans
//	loas mc [-topology T] [-n N] [-json]  Monte-Carlo mismatch offset analysis
//	loas techeval              technology characterization report
//	loas twostage              size the two-stage Miller OTA
//	loas converge              per-call parasitic convergence trace
//	loas trace [-case N] [-json]   convergence trace with per-phase timings
//	loas corners [-topology T] process-corner verification
//	loas serve [flags]         run the loasd synthesis daemon (alias)
//	loas batch [-f file | -n N] [-json]    fan many synthesize requests through the daemon
//	loas explore [-gbw ...] [-mode M] [-json]  spec-grid sweep / guided search via the daemon
//	loas runs [-addr URL]      list the daemon's recent runs
//	loas show <run-id>         one run's span tree + convergence trace
//	loas tail [-addr URL]      follow the daemon's live run events (SSE)
//	loas replay [-ledger file] [-addr URL] [-c N] [-rate R]  replay a recorded ledger as live load
//
// The -topology flag selects a registered design plan (see `loas
// topologies`); the default is the paper's folded-cascode OTA.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"loas/internal/core"
	"loas/internal/layout"
	"loas/internal/layout/cairo"
	"loas/internal/obs"
	"loas/internal/repro"
	"loas/internal/serve"
	"loas/internal/sizing"
	"loas/internal/techeval"
	"loas/internal/techno"
)

// errUnknownCommand makes main print usage and exit 2; everything else
// exits 1.
var errUnknownCommand = errors.New("unknown command")

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	if err := run(os.Args[1], os.Args[2:], os.Stdout); err != nil {
		if errors.Is(err, errUnknownCommand) {
			usage()
			os.Exit(2)
		}
		fmt.Fprintln(os.Stderr, "loas:", err)
		os.Exit(1)
	}
}

// run dispatches one subcommand, writing its report to out. It is the
// in-process entry point the smoke tests drive.
func run(cmd string, args []string, out io.Writer) error {
	tech := techno.Default060()
	spec := sizing.Default65MHz()

	switch cmd {
	case "fig2":
		_, err := io.WriteString(out, repro.Fig2Text(20))
		return err
	case "fig3":
		return runFig3(tech, args, out)
	case "table1":
		return runTable1(tech, spec, args, out)
	case "fig5":
		return runFig5(tech, spec, args, out)
	case "flow":
		s, err := repro.FlowComparison(tech, spec)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, s)
		return err
	case "netlist":
		return runNetlist(tech, spec, args, out)
	case "synth":
		return runSynth(tech, args, out)
	case "topologies":
		return runTopologies(out)
	case "layouts":
		return runLayouts(out)
	case "mc":
		return runMC(tech, args, out)
	case "techeval":
		fmt.Fprint(out, techeval.Characterize(tech, techno.NMOS).Summary()+"\n")
		fmt.Fprint(out, techeval.Characterize(tech, techno.PMOS).Summary()+"\n")
		return nil
	case "twostage":
		return runTwoStage(tech, args, out)
	case "converge":
		pts, err := repro.ConvergenceTrace(tech, spec, 8)
		if err != nil {
			return err
		}
		_, err = io.WriteString(out, repro.ConvergenceText(pts))
		return err
	case "trace":
		return runTrace(tech, spec, args, out)
	case "corners":
		return runCorners(tech, args, out)
	case "serve":
		return serve.CLI(args, out)
	case "batch":
		return runBatch(args, out)
	case "explore":
		return runExplore(args, out)
	case "runs":
		return runRuns(args, out)
	case "show":
		return runShow(args, out)
	case "tail":
		return runTail(args, out)
	case "replay":
		return runReplay(args, out)
	default:
		return fmt.Errorf("%w: %q", errUnknownCommand, cmd)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr,
		`usage: loas <fig2|fig3|table1|fig5|flow|netlist|synth|topologies|layouts|mc|techeval|twostage|converge|trace|corners|serve|batch|explore|runs|show|tail|replay> [flags]`)
}

// topoSpec resolves a -topology flag value to its canonical plan name
// and that plan's default specification. Unknown names surface the
// registry's error (listing every registered topology) as a non-zero
// exit.
func topoSpec(topology string) (string, sizing.OTASpec, error) {
	plan, err := sizing.Lookup(topology)
	if err != nil {
		return "", sizing.OTASpec{}, err
	}
	return plan.Name, plan.DefaultSpec(), nil
}

// writeJSON shares the daemon's encoder so `loas -json` output is
// byte-identical to the corresponding loasd response body.
func writeJSON(out io.Writer, v any) error {
	enc := json.NewEncoder(out)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func runMC(tech *techno.Tech, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("mc", flag.ExitOnError)
	topology := fs.String("topology", "", "design plan to analyze (default folded-cascode; see `loas topologies`)")
	n := fs.Int("n", 25, "number of Monte-Carlo samples")
	seed := fs.Int64("seed", 1, "random seed")
	workers := fs.Int("workers", 0, "worker goroutines (0 = all CPUs, 1 = serial; same statistics either way)")
	caseN := fs.Int("case", 1, "Table-1 case of the design under test (1-4)")
	asJSON := fs.Bool("json", false, "emit the MCReport as JSON (same encoding as POST /v1/mc)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	name, spec, err := topoSpec(*topology)
	if err != nil {
		return err
	}
	rep, err := serve.RunMC(context.Background(), tech, spec, name, *caseN, *n, *seed, *workers)
	if err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(out, rep)
	}
	st := rep.Stats
	fmt.Fprintf(out, "Monte-Carlo offset (%d samples, %d failed):\n", st.N, st.Failures)
	fmt.Fprintf(out, "  mean  %8.3f mV\n  sigma %8.3f mV\n  worst %8.3f mV\n",
		st.MeanV*1e3, st.SigmaV*1e3, st.WorstAbsV*1e3)
	fmt.Fprintf(out, "  analytic estimate: %8.3f mV\n", rep.AnalyticSigmaV*1e3)
	return nil
}

// runTrace is the observability view of the synthesis loop: it runs one
// case and prints (or emits as JSON) the per-iteration convergence
// events the engine recorded — the paper's "three calls of the layout
// tool were needed" narrative as structured output, with per-phase wall
// time. The same events back the loasd GET /v1/trace/{key} endpoint.
func runTrace(tech *techno.Tech, spec sizing.OTASpec, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	caseN := fs.Int("case", 4, "Table-1 case to trace (1-4)")
	maxCalls := fs.Int("maxcalls", 8, "layout-call bound of the convergence loop")
	asJSON := fs.Bool("json", false, "emit the iterations as JSON (same events as GET /v1/trace/{key})")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.Synthesize(tech, spec, core.Options{
		Case:           *caseN,
		MaxLayoutCalls: *maxCalls,
		SkipVerify:     true,
	})
	if err != nil {
		return err
	}
	converged := obs.Converged(res.Trace, 1e-15)
	if *asJSON {
		return writeJSON(out, struct {
			Case       int             `json:"case"`
			Converged  bool            `json:"converged"`
			Iterations []obs.Iteration `json:"iterations"`
		}{*caseN, converged, res.Trace})
	}
	if _, err := io.WriteString(out, obs.ConvergenceTable(res.Trace)); err != nil {
		return err
	}
	var sizingNS, layoutNS int64
	for _, it := range res.Trace {
		sizingNS += it.SizingNS
		layoutNS += it.LayoutNS
	}
	fmt.Fprintf(out, "case %d: %d layout calls, %d sizing passes; sizing %.1f ms, layout %.1f ms",
		*caseN, res.LayoutCalls, res.SizingPasses,
		float64(sizingNS)/1e6, float64(layoutNS)/1e6)
	if converged {
		fmt.Fprintf(out, "; parasitics converged (Δ < 1 fF)\n")
	} else {
		fmt.Fprintf(out, "; no layout feedback requested, single pass\n")
	}
	return nil
}

func runTwoStage(tech *techno.Tech, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("twostage", flag.ExitOnError)
	gbw := fs.Float64("gbw", 20e6, "gain-bandwidth target (Hz)")
	cl := fs.Float64("cl", 5e-12, "load capacitance (F)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	spec := sizing.OTASpec{VDD: 3.3, GBW: *gbw, PM: 65, CL: *cl,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.4, OutHigh: 2.9}
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeTwoStage(tech, spec, ps)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "two-stage Miller OTA: Itail %.1f uA, I6 %.1f uA, CC %.2f pF, RZ %.0f ohm\n",
		d.Itail*1e6, d.I6*1e6, d.CC*1e12, d.RZ)
	fmt.Fprintf(out, "  gain %.1f dB, GBW %.2f MHz, PM %.1f deg, SR %.1f V/us, power %.2f mW\n",
		d.Predicted.DCGainDB, d.Predicted.GBW/1e6, d.Predicted.PhaseDeg,
		d.Predicted.SlewRate/1e6, d.Predicted.Power*1e3)
	plan, err := d.Layout().Plan(tech, cairo.Constraint{})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "  layout: %.1f x %.1f um (%.0f um2)\n",
		plan.Parasitics.WidthUM, plan.Parasitics.HeightUM, plan.Parasitics.AreaUM2)
	return nil
}

func runCorners(tech *techno.Tech, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("corners", flag.ExitOnError)
	topology := fs.String("topology", "", "design plan to verify (default folded-cascode; see `loas topologies`)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	name, spec, err := topoSpec(*topology)
	if err != nil {
		return err
	}
	res, err := core.Synthesize(tech, spec, core.Options{Topology: name, Case: 4})
	if err != nil {
		return err
	}
	corners, err := core.CornerSweep(tech, res)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "process-corner verification of the case-4 %s design (tracking bias):\n", res.Topology)
	for _, c := range []techno.Corner{techno.CornerSS, techno.CornerSF,
		techno.CornerTT, techno.CornerFS, techno.CornerFF} {
		p := corners[c]
		fmt.Fprintf(out, "  %s: gain %.1f dB, GBW %.1f MHz, PM %.1f deg, power %.2f mW\n",
			c, p.DCGainDB, p.GBW/1e6, p.PhaseDeg, p.Power*1e3)
	}
	return nil
}

func runFig3(tech *techno.Tech, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fig3", flag.ExitOnError)
	svg := fs.String("svg", "", "write the mirror layout as SVG to this file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	text, err := repro.Fig3Text(tech)
	if err != nil {
		return err
	}
	fmt.Fprint(out, text)
	if *svg != "" {
		r, err := repro.Fig3(tech)
		if err != nil {
			return err
		}
		f, err := os.Create(*svg)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cairo.WriteSVG(f, r.Stack.Cell); err != nil {
			return err
		}
		fmt.Fprintln(out, "wrote", *svg)
	}
	return nil
}

func runTable1(tech *techno.Tech, spec sizing.OTASpec, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("table1", flag.ExitOnError)
	onlyCase := fs.Int("case", 0, "run a single case (1-4); 0 = all")
	asJSON := fs.Bool("json", false, "emit the Table1Report as JSON (same encoding as POST /v1/table1)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var cases []repro.Table1Case
	if *onlyCase != 0 {
		res, err := core.Synthesize(tech, spec, core.Options{Case: *onlyCase})
		if err != nil {
			return err
		}
		cases = []repro.Table1Case{{Case: *onlyCase, Result: res}}
	} else {
		var err error
		cases, err = repro.Table1(tech, spec)
		if err != nil {
			return err
		}
	}
	if *asJSON {
		return writeJSON(out, repro.BuildTable1Report(cases, spec))
	}
	fmt.Fprint(out, repro.Table1Text(cases, spec))
	if *onlyCase != 0 {
		return nil
	}
	if bad := repro.Table1ShapeChecks(cases, spec); len(bad) > 0 {
		fmt.Fprintln(out, "shape-check violations:")
		for _, s := range bad {
			fmt.Fprintln(out, "  -", s)
		}
	} else {
		fmt.Fprintln(out, "all Table-1 qualitative shape checks hold.")
	}
	return nil
}

func runFig5(tech *techno.Tech, spec sizing.OTASpec, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("fig5", flag.ExitOnError)
	svg := fs.String("svg", "ota-layout.svg", "output SVG file")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r, err := repro.Fig5(tech, spec)
	if err != nil {
		return err
	}
	fmt.Fprint(out, repro.Fig5Text(r))
	f, err := os.Create(*svg)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := r.WriteSVG(f); err != nil {
		return err
	}
	fmt.Fprintln(out, "wrote", *svg)
	return nil
}

// runSynth is the topology-generic entry point: one full
// layout-in-the-loop synthesis of any registered design plan, reporting
// the summary and the convergence trace the loop recorded.
func runSynth(tech *techno.Tech, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("synth", flag.ExitOnError)
	topology := fs.String("topology", "", "design plan to synthesize (default folded-cascode; see `loas topologies`)")
	layoutName := fs.String("layout", "", "layout backend for the placement/routing stage (default slicing; see `loas layouts`)")
	caseN := fs.Int("case", 4, "parasitic-awareness case (1-4)")
	maxCalls := fs.Int("maxcalls", 8, "layout-call bound of the convergence loop")
	skipVerify := fs.Bool("skipverify", false, "skip the extracted-netlist measurement")
	refine := fs.Bool("refine", false, "close the loop: re-size until extracted performance meets the spec at all five corners")
	refineRounds := fs.Int("refine-rounds", core.DefaultRefineMaxRounds, "outer refinement round budget (with -refine)")
	refineStep := fs.Float64("refine-step", core.DefaultRefineMarginStep, "fraction of the worst-corner miss folded into the next round's target (with -refine)")
	asJSON := fs.Bool("json", false, "emit the summary and trace as JSON")
	ledgerPath := fs.String("ledger", "", "append this run to the JSONL ledger at this path (same format as loasd -ledger)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *refine && *skipVerify {
		return errors.New("-refine drives re-sizing from extracted verification; drop -skipverify")
	}
	name, spec, err := topoSpec(*topology)
	if err != nil {
		return err
	}
	// Canonicalize the backend name, with the default elided like the
	// daemon's request normalization, so ledger records and JSON output
	// match loasd byte for byte.
	layName, err := layout.CanonicalName(*layoutName)
	if err != nil {
		return err
	}
	if layName == layout.DefaultBackend {
		layName = ""
	}

	// With -ledger, the run is recorded exactly like a daemon run —
	// span tree, iterations, outcome — with Source "cli", into the same
	// JSONL format loasd appends and `loas runs` reads back.
	var ledger *obs.Ledger
	var recorder *obs.Recorder
	var root *obs.Span
	if *ledgerPath != "" {
		ledger, err = obs.OpenLedger(*ledgerPath, obs.LedgerOptions{})
		if err != nil {
			return err
		}
		defer ledger.Close()
		recorder = obs.NewRecorder()
		root = recorder.Root("request")
		root.SetAttr("kind", "synthesize")
		root.SetAttr("topology", name)
		if layName != "" {
			root.SetAttr("layout", layName)
		}
		root.SetAttr("case", strconv.Itoa(*caseN))
	}
	start := time.Now()
	res, err := core.Synthesize(tech, spec, core.Options{
		Topology:       name,
		Case:           *caseN,
		Layout:         layName,
		MaxLayoutCalls: *maxCalls,
		SkipVerify:     *skipVerify,
		Span:           root,
		Refine: core.RefineOptions{
			Enabled:    *refine,
			MaxRounds:  *refineRounds,
			MarginStep: *refineStep,
		},
	})
	if ledger != nil {
		root.End()
		seq := ledger.LastSeq() + 1
		rec := obs.RunRecord{
			ID:          fmt.Sprintf("run-%06d", seq),
			Seq:         seq,
			StartUnixNS: start.UnixNano(),
			Source:      "cli",
			Kind:        "synthesize",
			Topology:    name,
			Layout:      layName,
			Case:        *caseN,
			Outcome:     "ok",
			DurationNS:  root.Duration().Nanoseconds(),
			Spans:       recorder.Snapshot(),
		}
		if err != nil {
			rec.Outcome = "error"
			rec.Error = err.Error()
		} else {
			rec.Converged = obs.Converged(res.Trace, 1e-15)
			rec.LayoutCalls = res.LayoutCalls
			rec.Iterations = res.Trace
		}
		if lerr := ledger.Append(rec); lerr != nil {
			fmt.Fprintf(out, "warning: ledger append failed: %v\n", lerr)
		}
	}
	if err != nil {
		return err
	}
	if *asJSON {
		s := res.Summary()
		s.Case = *caseN
		return writeJSON(out, struct {
			Summary    core.Summary    `json:"summary"`
			Iterations []obs.Iteration `json:"iterations"`
		}{s, res.Trace})
	}
	backendTag := ""
	if layName != "" {
		backendTag = " [" + layName + "]"
	}
	fmt.Fprintf(out, "%s%s case %d: %d layout calls, %d sizing passes (%s)\n",
		res.Topology, backendTag, *caseN, res.LayoutCalls, res.SizingPasses, res.Elapsed.Round(1e6))
	for _, row := range sizing.RowNames() {
		fmt.Fprintln(out, "  "+res.Synthesized.Row(row, res.Extracted))
	}
	if res.Parasitics != nil {
		fmt.Fprintf(out, "layout: %.1f x %.1f um, %.0f um2\n",
			res.Parasitics.WidthUM, res.Parasitics.HeightUM, res.Parasitics.AreaUM2)
	}
	if rep := res.Refine; rep != nil {
		status := "best effort — original spec NOT met at all corners"
		if rep.Met {
			status = "original spec met at all five corners"
		}
		fmt.Fprintf(out, "\nrefinement: %d round(s), accepted round %d, %s\n",
			len(rep.Rounds), rep.BestRound, status)
		for _, rr := range rep.Rounds {
			fmt.Fprintf(out, "  round %d: target GBW %.2f MHz, PM %.1f deg -> worst-corner margin %+.4f\n",
				rr.Round, rr.TargetGBW/1e6, rr.TargetPM, rr.WorstMargin)
		}
		if rep.Aborted != "" {
			fmt.Fprintf(out, "  aborted: %s\n", rep.Aborted)
		}
	}
	fmt.Fprintln(out, "\nconvergence trace:")
	_, err = io.WriteString(out, obs.ConvergenceTable(res.Trace))
	return err
}

// runTopologies lists the registered design plans.
func runTopologies(out io.Writer) error {
	for _, name := range sizing.Topologies() {
		plan, err := sizing.Lookup(name)
		if err != nil {
			return err
		}
		mark := " "
		if name == sizing.DefaultTopology {
			mark = "*"
		}
		fmt.Fprintf(out, "%s %-16s %s\n", mark, name, plan.Description)
	}
	fmt.Fprintln(out, "(* = default)")
	return nil
}

// runLayouts lists the registered layout backends with their capability
// descriptors (`loas layouts`; same registry behind GET /v1/layouts).
func runLayouts(out io.Writer) error {
	for _, info := range layout.Backends() {
		mark := " "
		if info.Name == layout.DefaultBackend {
			mark = "*"
		}
		session := "no session cache"
		if info.CacheSession {
			session = "session cache"
		}
		fmt.Fprintf(out, "%s %-10s %s\n", mark, info.Name, info.Description)
		fmt.Fprintf(out, "  constraints: %s; %s\n", strings.Join(info.Constraints, ", "), session)
	}
	fmt.Fprintln(out, "(* = default)")
	return nil
}

func runNetlist(tech *techno.Tech, spec sizing.OTASpec, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("netlist", flag.ExitOnError)
	c := fs.Int("case", 4, "Table-1 case (1-4)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	res, err := core.Synthesize(tech, spec, core.Options{Case: *c})
	if err != nil {
		return err
	}
	_, err = io.WriteString(out, res.ExtractedCkt.Export())
	return err
}
