package repro

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"loas/internal/core"
	"loas/internal/layout/cairo"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Fig5Result is the generated case-4 OTA layout.
type Fig5Result struct {
	Result *core.Result
	Plan   *cairo.Plan
}

// Fig5 runs the full methodology (case 4) and generates the physical
// layout of the converged design — the paper's Fig. 5.
func Fig5(tech *techno.Tech, spec sizing.OTASpec) (*Fig5Result, error) {
	res, err := core.Synthesize(tech, spec, core.Options{Case: 4, SkipVerify: true})
	if err != nil {
		return nil, err
	}
	plan, err := res.Design.Layout().Generate(tech, core.Options{}.Shape)
	if err != nil {
		return nil, err
	}
	return &Fig5Result{Result: res, Plan: plan}, nil
}

// WriteSVG emits the layout as SVG.
func (f *Fig5Result) WriteSVG(w io.Writer) error {
	return cairo.WriteSVG(w, f.Plan.Cell)
}

// Fig5Text summarizes the layout the way the paper narrates it: fold
// choices with drains internal, the common-centroid input pair, area.
func Fig5Text(f *Fig5Result) string {
	var b strings.Builder
	par := f.Plan.Parasitics
	b.WriteString("Fig. 5 — generated layout of the case-4 OTA\n")
	fmt.Fprintf(&b, "  area: %.1f x %.1f um (%.0f um2)\n",
		par.WidthUM, par.HeightUM, par.AreaUM2)
	var names []string
	for name := range par.Folds {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fp := par.Folds[name]
		style := "drain-internal"
		if fp.Folds%2 == 1 && fp.Folds > 1 {
			style = "odd"
		}
		fmt.Fprintf(&b, "  %-5s %2d folds x %5.2f um  (%s)\n",
			name, fp.Folds, fp.FingerW*1e6, style)
	}
	fmt.Fprintf(&b, "  module shape choices: %v\n", f.Plan.ChoiceOf)
	return b.String()
}
