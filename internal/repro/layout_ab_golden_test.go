package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loas/internal/techno"
)

const layoutABPath = "testdata/layout_ab_golden.json"

// TestLayoutABGolden diffs a live rows-vs-slicing comparison — every
// registered topology under every registered layout backend — against
// the committed bit-exact golden. A diff under "slicing" means the
// default flow changed (which the table1/refine goldens will also
// flag); a diff under "rows" means the row placer's candidate set,
// scoring, or geometry changed. Re-bless after an intentional change:
//
//	go test ./internal/repro -run TestLayoutABGolden -update
func TestLayoutABGolden(t *testing.T) {
	got, err := BuildLayoutAB(techno.Default060())
	if err != nil {
		t.Fatal(err)
	}

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(layoutABPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(layoutABPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", layoutABPath)
		return
	}

	data, err := os.ReadFile(layoutABPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want LayoutABReport
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if diffs := DiffLayoutAB(&want, got); len(diffs) > 0 {
		t.Fatalf("live layout A/B diverges from %s in %d field(s):\n  %s\n(re-bless with -update if intentional)",
			layoutABPath, len(diffs), strings.Join(diffs, "\n  "))
	}
}

// TestLayoutABRoundTrip: encoding survives JSON and the differ detects
// perturbations.
func TestLayoutABRoundTrip(t *testing.T) {
	rep, err := BuildLayoutAB(techno.Default060())
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back LayoutABReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if diffs := DiffLayoutAB(rep, &back); len(diffs) > 0 {
		t.Fatalf("round trip not identity: %v", diffs)
	}

	back.Entries[0].AreaUM2 = hexF(1.0)
	back.Entries[1].LayoutCalls++
	if diffs := DiffLayoutAB(rep, &back); len(diffs) != 2 {
		t.Fatalf("differ missed perturbations: %v", diffs)
	}
}
