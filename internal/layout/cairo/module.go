// Package cairo is the procedural layout driver — the role of the CAIRO
// layout language in the paper. Circuit generators describe a layout as
// modules (folded transistors, matched stacks) arranged in a slicing
// tree; the driver runs in two modes:
//
//   - Plan (parasitic-calculation mode): area optimization under the shape
//     constraint decides every fold count and wire position, and the
//     parasitic report is computed — "no layout is physically generated"
//     in the paper's phrasing, though here the geometry is cheap enough to
//     build either way, which guarantees plan and generation can never
//     disagree.
//   - Generate: the same flow, returning the full cell plus an SVG view.
package cairo

import (
	"fmt"

	"loas/internal/device"
	"loas/internal/layout/geom"
	"loas/internal/layout/motif"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

// Built is a module realized for one shape choice.
type Built struct {
	Cell *geom.Cell
	// Geoms / Folds are keyed by circuit transistor instance name.
	Geoms map[string]device.DiffGeom
	Folds map[string]device.FoldPlan
	// RailCap is module-internal wiring capacitance per net (F).
	RailCap map[string]float64
	// WellNet receives the floating-well capacitance (empty = none or
	// tied to supply).
	WellNet             string
	WellArea, WellPerim float64
}

// Module is a placeable layout block with enumerable shape alternatives.
type Module interface {
	Name() string
	// Choices lists the shape alternative identifiers.
	Choices() []int
	// Build realizes one alternative.
	Build(tech *techno.Tech, choice int) (*Built, error)
}

// Transistor wraps a single folded transistor; choices are fold counts.
type Transistor struct {
	Inst string // circuit instance name (keys the parasitic report)
	Type techno.MOSType
	W, L float64
	// Style picks the interior net; the paper makes frequency-critical
	// drains internal, which also prefers even fold counts.
	Style                                 device.DiffNet
	DrainNet, GateNet, SourceNet, BulkNet string
	IDrain                                float64
	// MaxFolds bounds the alternatives (default 8).
	MaxFolds int
	// EvenOnly restricts to even fold counts (plus 1) so the critical
	// net stays fully internal.
	EvenOnly bool
	// WellNet, when set on a PMOS device, reports the floating-well
	// capacitance onto that net (e.g. a source-tied well).
	WellNet string
}

// Name implements Module.
func (t *Transistor) Name() string { return t.Inst }

// Choices implements Module.
func (t *Transistor) Choices() []int {
	maxf := t.MaxFolds
	if maxf < 1 {
		maxf = 8
	}
	var out []int
	for nf := 1; nf <= maxf; nf++ {
		if t.EvenOnly && nf > 1 && nf%2 == 1 {
			continue
		}
		out = append(out, nf)
	}
	return out
}

// Build implements Module.
func (t *Transistor) Build(tech *techno.Tech, choice int) (*Built, error) {
	m, err := motif.Build(tech, motif.Spec{
		Name:      t.Inst,
		Type:      t.Type,
		W:         t.W,
		L:         t.L,
		Folds:     choice,
		Style:     t.Style,
		DrainNet:  t.DrainNet,
		GateNet:   t.GateNet,
		SourceNet: t.SourceNet,
		BulkNet:   t.BulkNet,
		IDrain:    t.IDrain,
	})
	if err != nil {
		return nil, err
	}
	b := &Built{
		Cell:    m.Cell,
		Geoms:   map[string]device.DiffGeom{t.Inst: m.Geom},
		Folds:   map[string]device.FoldPlan{t.Inst: m.Plan},
		RailCap: m.RailCap,
		WellNet: t.WellNet,
	}
	b.WellArea, b.WellPerim = m.WellAreaM2()
	return b, nil
}

// MatchedStack wraps a matched multi-device stack (mirror, pair); choices
// multiply the unit count per device, trading height for width.
type MatchedStack struct {
	Label string
	Type  techno.MOSType
	// Devices holds per-device ratios and nets; Units is the *base* unit
	// count, scaled by the split choice.
	Devices   []stack.Device
	SourceNet string
	BulkNet   string
	// WidthPerBaseUnit is the gate width (m) of one base unit: device i
	// has total width Units_i · WidthPerBaseUnit.
	WidthPerBaseUnit float64
	L                float64
	Currents         map[string]float64
	EndDummies       bool
	// Splits lists unit multipliers to offer as shape alternatives
	// (default {1, 2}).
	Splits []int
	// WellNet as in Transistor.
	WellNet string
}

// Name implements Module.
func (s *MatchedStack) Name() string { return s.Label }

// Choices implements Module.
func (s *MatchedStack) Choices() []int {
	if len(s.Splits) == 0 {
		return []int{1, 2}
	}
	return append([]int(nil), s.Splits...)
}

// Build implements Module.
func (s *MatchedStack) Build(tech *techno.Tech, choice int) (*Built, error) {
	if choice < 1 {
		return nil, fmt.Errorf("cairo: stack %s: split %d", s.Label, choice)
	}
	devs := make([]stack.Device, len(s.Devices))
	for i, d := range s.Devices {
		d.Units *= choice
		devs[i] = d
	}
	pat, err := stack.Generate(stack.PatternSpec{
		Devices:    devs,
		SourceNet:  s.SourceNet,
		EndDummies: s.EndDummies,
	})
	if err != nil {
		return nil, fmt.Errorf("cairo: stack %s: %w", s.Label, err)
	}
	st, err := stack.Build(tech, pat, stack.BuildSpec{
		Name:     s.Label,
		Type:     s.Type,
		UnitW:    s.WidthPerBaseUnit / float64(choice),
		L:        s.L,
		BulkNet:  s.BulkNet,
		Currents: s.Currents,
	})
	if err != nil {
		return nil, fmt.Errorf("cairo: stack %s: %w", s.Label, err)
	}
	b := &Built{
		Cell:    st.Cell,
		Geoms:   map[string]device.DiffGeom{},
		Folds:   map[string]device.FoldPlan{},
		RailCap: st.RailCap,
		WellNet: s.WellNet,
	}
	for name, g := range st.Geoms {
		b.Geoms[name] = g
	}
	for _, d := range devs {
		b.Folds[d.Name] = device.FoldPlan{
			Folds:   d.Units,
			FingerW: st.UnitW, // realized, grid-snapped
			Style:   device.DrainInternal,
		}
	}
	b.WellArea, b.WellPerim = st.WellAreaM2()
	return b, nil
}
