package main

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loas/internal/obs"
	"loas/internal/serve"
)

// startRecordingDaemon is startDaemon plus a run ledger, so replay
// tests have a recorded workload to read back.
func startRecordingDaemon(t *testing.T, ledgerPath string) string {
	t.Helper()
	ledger, err := obs.OpenLedger(ledgerPath, obs.LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	s := serve.New(serve.Config{Backend: &cannedBackend{}, Ledger: ledger})
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() { ts.Close(); s.Close(); ledger.Close() })
	return ts.URL
}

// TestSmokeReplay: record a workload through the daemon's ledger, then
// `loas replay` it back against the same (warm) daemon — all cache
// hits, all byte-identical, exit zero.
func TestSmokeReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	url := startRecordingDaemon(t, path)
	for _, body := range []string{`{"case":1}`, `{"case":2}`, `{"case":1}`} {
		if code, data := postJSON(t, url+"/v1/synthesize", body); code != 200 {
			t.Fatalf("synthesize: %d %s", code, data)
		}
	}

	out := runOut(t, "replay", "-ledger", path, "-addr", url)
	for _, want := range []string{"replaying 3 requests", "replayed 3/3", "3 hit",
		"identity: 3/3 responses byte-identical"} {
		if !strings.Contains(out, want) {
			t.Fatalf("replay output missing %q:\n%s", want, out)
		}
	}

	// -kind filters, -n truncates.
	out = runOut(t, "replay", "-ledger", path, "-addr", url, "-kind", "synthesize", "-n", "1")
	if !strings.Contains(out, "replayed 1/1") {
		t.Fatalf("-n 1 replayed more than one:\n%s", out)
	}
	if err := run("replay", []string{"-ledger", path, "-addr", url, "-kind", "mc"}, &bytes.Buffer{}); err == nil {
		t.Fatal("replay of a kind with no runs should fail")
	}
	if err := run("replay", []string{"-ledger", filepath.Join(t.TempDir(), "none.jsonl"), "-addr", url}, &bytes.Buffer{}); err == nil {
		t.Fatal("replay of a missing ledger should fail")
	}
}

// TestReplayDetectsDivergence: replaying one daemon's ledger against a
// daemon in a different state (its canned call counter advanced) yields
// different bytes — replay must report the mismatch and exit nonzero.
func TestReplayDetectsDivergence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	url := startRecordingDaemon(t, path)
	if code, _ := postJSON(t, url+"/v1/synthesize", `{"case":1}`); code != 200 {
		t.Fatal("record failed")
	}

	other := startDaemon(t)
	// Advance the fresh daemon's backend: its next cold body is call 2,
	// not the recorded call 1.
	if code, _ := postJSON(t, other+"/v1/synthesize", `{"case":4}`); code != 200 {
		t.Fatal("prime failed")
	}
	var buf bytes.Buffer
	err := run("replay", []string{"-ledger", path, "-addr", other}, &buf)
	if err == nil || !strings.Contains(err.Error(), "differ from the recorded results") {
		t.Fatalf("want divergence error, got %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "MISMATCH") {
		t.Fatalf("report missing mismatch detail:\n%s", buf.String())
	}
}

// TestTailReconnect: a dropped /v1/events stream is reconnected with
// backoff (tailSleep stubbed out), events continue counting across
// connections, and -n still bounds the total.
func TestTailReconnect(t *testing.T) {
	var sleeps []time.Duration
	orig := tailSleep
	tailSleep = func(d time.Duration) { sleeps = append(sleeps, d) }
	defer func() { tailSleep = orig }()

	var conns atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/events" {
			http.NotFound(w, r)
			return
		}
		n := conns.Add(1)
		w.Header().Set("Content-Type", "text/event-stream")
		// One event per connection, then the stream drops.
		fmt.Fprintf(w, "event: run-start\ndata: {\"id\":\"run-%06d\",\"kind\":\"synthesize\"}\n\n", n)
	}))
	defer srv.Close()

	var buf bytes.Buffer
	if err := run("tail", []string{"-addr", srv.URL, "-n", "3"}, &buf); err != nil {
		t.Fatalf("tail: %v\n%s", err, buf.String())
	}
	out := buf.String()
	if got := conns.Load(); got != 3 {
		t.Fatalf("tail used %d connections, want 3 (one event each)", got)
	}
	for _, want := range []string{"run-000001", "run-000002", "run-000003", "reconnecting in"} {
		if !strings.Contains(out, want) {
			t.Fatalf("tail output missing %q:\n%s", want, out)
		}
	}
	// Each connection delivered an event, so every backoff is the floor
	// (delivery resets the exponential ramp).
	if len(sleeps) != 2 {
		t.Fatalf("slept %d times, want 2 (between 3 connections): %v", len(sleeps), sleeps)
	}
	for _, d := range sleeps {
		if d != tailBackoffFloor {
			t.Fatalf("backoff %v did not reset to the floor %v after events flowed", d, tailBackoffFloor)
		}
	}
}

// TestTailBackoffRampsWhenSilent: connections that close without
// delivering anything double the backoff instead of hammering the
// daemon.
func TestTailBackoffRampsWhenSilent(t *testing.T) {
	var sleeps []time.Duration
	orig := tailSleep
	stop := fmt.Errorf("enough")
	tailSleep = func(d time.Duration) {
		sleeps = append(sleeps, d)
		if len(sleeps) >= 4 {
			panic(stop) // break runTail's infinite loop
		}
	}
	defer func() { tailSleep = orig }()

	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		// Connect successfully, deliver nothing, drop.
	}))
	defer srv.Close()

	func() {
		defer func() {
			if v := recover(); v != nil && v != stop {
				panic(v)
			}
		}()
		var buf bytes.Buffer
		run("tail", []string{"-addr", srv.URL}, &buf)
		t.Error("tail returned instead of looping")
	}()

	want := []time.Duration{tailBackoffFloor, 2 * tailBackoffFloor, 4 * tailBackoffFloor, 8 * tailBackoffFloor}
	if len(sleeps) != len(want) {
		t.Fatalf("slept %d times: %v", len(sleeps), sleeps)
	}
	for i, d := range want {
		if sleeps[i] != d {
			t.Fatalf("backoff did not double: %v, want %v", sleeps, want)
		}
	}
}

// TestTailFailsFastWhenNeverConnected: with no daemon at all, tail
// errors out instead of retrying forever against nothing.
func TestTailFailsFastWhenNeverConnected(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // connection refused from now on
	orig := tailSleep
	tailSleep = func(time.Duration) { t.Fatal("tail slept instead of failing fast") }
	defer func() { tailSleep = orig }()
	var buf bytes.Buffer
	if err := run("tail", []string{"-addr", srv.URL}, &buf); err == nil {
		t.Fatal("tail with no daemon must fail")
	}
}
