package drc

import (
	"testing"

	"loas/internal/device"
	"loas/internal/layout/cairo"
	"loas/internal/layout/geom"
	"loas/internal/layout/motif"
	"loas/internal/layout/stack"
	"loas/internal/sizing"
	"loas/internal/techno"
)

const um = techno.Micron

func TestGeneratedMotifIsClean(t *testing.T) {
	tech := techno.Default060()
	for _, nf := range []int{1, 2, 4, 7} {
		m, err := motif.Build(tech, motif.Spec{
			Name: "m", Type: techno.NMOS,
			W: 40 * um, L: 1 * um, Folds: nf, Style: device.DrainInternal,
			DrainNet: "d", GateNet: "g", SourceNet: "s", BulkNet: "s",
			IDrain: 200e-6,
		})
		if err != nil {
			t.Fatal(err)
		}
		if v := Check(tech, m.Cell); len(v) > 0 {
			t.Fatalf("motif nf=%d has %d DRC violations, first: %s", nf, len(v), v[0])
		}
	}
}

func TestGeneratedStackIsClean(t *testing.T) {
	tech := techno.Default060()
	pat, err := stack.Generate(stack.PatternSpec{
		Devices: []stack.Device{
			{Name: "A", Units: 2, DrainNet: "da", GateNet: "ga"},
			{Name: "B", Units: 4, DrainNet: "db", GateNet: "ga"},
		},
		SourceNet: "s", EndDummies: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	st, err := stack.Build(tech, pat, stack.BuildSpec{
		Name: "st", Type: techno.PMOS, UnitW: 12 * um, L: 1 * um, BulkNet: "vdd",
		Currents: map[string]float64{"da": 100e-6, "db": 200e-6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(tech, st.Cell); len(v) > 0 {
		t.Fatalf("stack has %d DRC violations, first: %s", len(v), v[0])
	}
}

func TestDetectsNarrowWire(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("bad")
	c.Add(techno.LayerMetal1, geom.XYWH(0, 0, 10000, 400), "x") // 0.4 µm < 0.8
	v := Check(tech, c)
	if len(v) == 0 || v[0].Rule != "min-width" {
		t.Fatalf("narrow wire not flagged: %v", v)
	}
}

func TestDetectsSpacingViolation(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("bad")
	c.Add(techno.LayerMetal1, geom.XYWH(0, 0, 1000, 1000), "a")
	c.Add(techno.LayerMetal1, geom.XYWH(1400, 0, 1000, 1000), "b") // 0.4 µm < 0.8
	v := Check(tech, c)
	found := false
	for _, x := range v {
		if x.Rule == "min-space" {
			found = true
		}
	}
	if !found {
		t.Fatalf("spacing violation not flagged: %v", v)
	}
}

func TestSameNetSpacingAllowed(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("ok")
	c.Add(techno.LayerMetal1, geom.XYWH(0, 0, 1000, 1000), "a")
	c.Add(techno.LayerMetal1, geom.XYWH(1100, 0, 1000, 1000), "a")
	for _, x := range Check(tech, c) {
		if x.Rule == "min-space" {
			t.Fatalf("same-net spacing flagged: %s", x)
		}
	}
}

func TestDetectsFloatingContact(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("bad")
	c.Add(techno.LayerContact, geom.XYWH(0, 0, 600, 600), "x")
	v := Check(tech, c)
	var bottom, top bool
	for _, x := range v {
		if x.Rule == "contact-bottom" {
			bottom = true
		}
		if x.Rule == "contact-top" {
			top = true
		}
	}
	if !bottom || !top {
		t.Fatalf("floating contact not fully flagged: %v", v)
	}
}

func TestDetectsOffGrid(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("bad")
	c.Add(techno.LayerMetal1, geom.XYWH(25, 0, 1000, 1000), "x")
	v := Check(tech, c)
	if len(v) == 0 || v[0].Rule != "grid" {
		t.Fatalf("off-grid not flagged: %v", v)
	}
}

func TestCurrentDensity(t *testing.T) {
	tech := techno.Default060()
	c := geom.NewCell("w")
	c.Add(techno.LayerMetal1, geom.XYWH(0, 0, 100000, 800), "hot") // 0.8 µm
	// 0.8 µm at 1 mA/µm carries 0.8 mA.
	if v := CheckCurrentDensity(tech, c, "hot", 0.5e-3); len(v) != 0 {
		t.Fatalf("0.5 mA on 0.8 µm wrongly flagged: %v", v)
	}
	if v := CheckCurrentDensity(tech, c, "hot", 2e-3); len(v) == 0 {
		t.Fatal("2 mA on 0.8 µm not flagged")
	}
	if v := CheckCurrentDensity(tech, c, "cold", 2e-3); len(v) != 0 {
		t.Fatal("other nets must not be flagged")
	}
	if v := CheckCurrentDensity(tech, c, "hot", 0); len(v) != 0 {
		t.Fatal("zero current must not be flagged")
	}
}

func TestViolationString(t *testing.T) {
	v := Violation{Rule: "min-width", Layer: techno.LayerPoly, Note: "too thin"}
	if v.String() == "" {
		t.Fatal("empty violation string")
	}
}

func TestFullOTALayoutIsClean(t *testing.T) {
	tech := techno.Default060()
	ps, err := sizing.Case(1)
	if err != nil {
		t.Fatal(err)
	}
	d, err := sizing.SizeFoldedCascode(tech, sizing.Default65MHz(), ps)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.Layout().Generate(tech, cairo.Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	v := Check(tech, plan.Cell)
	// Module-internal geometry must be clean; top-level routing may abut
	// module ports (same net, never flagged). Report everything found.
	if len(v) > 0 {
		for i, x := range v {
			if i > 8 {
				break
			}
			t.Logf("violation: %s", x)
		}
		t.Fatalf("%d DRC violations in the generated OTA", len(v))
	}
}

func TestTwoStageLayoutIsClean(t *testing.T) {
	tech := techno.Default060()
	ps, _ := sizing.Case(1)
	spec := sizing.OTASpec{VDD: 3.3, GBW: 20e6, PM: 65, CL: 5e-12,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.4, OutHigh: 2.9}
	d, err := sizing.SizeTwoStage(tech, spec, ps)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.Layout().Generate(tech, cairo.Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if v := Check(tech, plan.Cell); len(v) > 0 {
		for i, x := range v {
			if i > 8 {
				break
			}
			t.Logf("violation: %s", x)
		}
		t.Fatalf("%d DRC violations in the generated two-stage OTA", len(v))
	}
}
