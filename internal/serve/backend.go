package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"

	"loas/internal/circuit"
	"loas/internal/core"
	"loas/internal/layout"
	"loas/internal/mc"
	"loas/internal/obs"
	"loas/internal/repro"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// SynthesizeRequest is the body of POST /v1/synthesize: one Table-1
// case. A missing spec means the topology's default specification; a
// missing topology means the paper's folded-cascode OTA.
type SynthesizeRequest struct {
	Topology       string          `json:"topology,omitempty"` // registered plan name, default folded-cascode
	Case           int             `json:"case,omitempty"`     // 1-4, default 4
	Layout         string          `json:"layout,omitempty"`   // registered layout backend, default slicing
	Spec           *sizing.OTASpec `json:"spec,omitempty"`
	MaxLayoutCalls int             `json:"max_layout_calls,omitempty"`
	SkipVerify     bool            `json:"skip_verify,omitempty"`
	// Refine turns on the closed-loop corner-driven refinement; the two
	// sub-parameters default to the engine's own defaults when zero.
	Refine           bool    `json:"refine,omitempty"`
	RefineMaxRounds  int     `json:"refine_max_rounds,omitempty"`
	RefineMarginStep float64 `json:"refine_margin_step,omitempty"`
}

func (r *SynthesizeRequest) normalize() error {
	plan, err := sizing.Lookup(r.Topology)
	if err != nil {
		return err
	}
	// Canonicalize before keying: an absent topology and the explicit
	// default hash to the same cache entry.
	r.Topology = plan.Name
	// Same for the layout backend, with the default elided rather than
	// spelled out — the default backend's wire format (request echoes,
	// summaries) predates the registry and must stay byte-identical.
	lay, err := layout.CanonicalName(r.Layout)
	if err != nil {
		return err
	}
	if lay == layout.DefaultBackend {
		lay = ""
	}
	r.Layout = lay
	if r.Case == 0 {
		r.Case = 4
	}
	if r.Case < 1 || r.Case > core.NumTable1Cases {
		return fmt.Errorf("case must be 1..%d, got %d", core.NumTable1Cases, r.Case)
	}
	if !r.Refine {
		// Refinement sub-parameters are inert without refine=true; zero
		// them so such requests share the unrefined cache entry.
		r.RefineMaxRounds = 0
		r.RefineMarginStep = 0
		return nil
	}
	if r.SkipVerify {
		return fmt.Errorf("refine requires extracted verification; drop skip_verify")
	}
	// Canonicalize explicit defaults onto the implicit ones so both
	// spellings hash to one cache entry.
	if r.RefineMaxRounds == 0 {
		r.RefineMaxRounds = core.DefaultRefineMaxRounds
	}
	if r.RefineMarginStep == 0 {
		r.RefineMarginStep = core.DefaultRefineMarginStep
	}
	if r.RefineMaxRounds < 1 || r.RefineMaxRounds > 16 {
		return fmt.Errorf("refine_max_rounds must be 1..16, got %d", r.RefineMaxRounds)
	}
	if !(r.RefineMarginStep > 0 && r.RefineMarginStep <= 2) {
		return fmt.Errorf("refine_margin_step must be in (0, 2], got %g", r.RefineMarginStep)
	}
	return nil
}

func (r *SynthesizeRequest) cacheKey(tech *techno.Tech, spec sizing.OTASpec) string {
	k := newKey("synthesize", tech)
	k.str("topology", r.Topology)
	// "" is the canonical spelling of the default backend, so an absent
	// layout and an explicit "slicing" share one entry while every other
	// backend gets its own.
	k.str("layout", r.Layout)
	k.spec(spec)
	k.int("case", int64(r.Case))
	k.int("maxcalls", int64(r.MaxLayoutCalls))
	k.bool("skipverify", r.SkipVerify)
	// Refined and one-shot results are distinct cache entries, and so
	// are refinements under different round budgets or margin steps
	// (MarginStep hashes by exact bit pattern like every float here).
	k.bool("refine", r.Refine)
	k.int("refrounds", int64(r.RefineMaxRounds))
	k.num("refstep", r.RefineMarginStep)
	return k.sum()
}

// Table1Request is the body of POST /v1/table1: all four cases.
type Table1Request struct {
	Spec *sizing.OTASpec `json:"spec,omitempty"`
}

func (r *Table1Request) cacheKey(tech *techno.Tech, spec sizing.OTASpec) string {
	k := newKey("table1", tech)
	k.spec(spec)
	return k.sum()
}

// MCRequest is the body of POST /v1/mc: Monte-Carlo mismatch offset.
// Workers tunes execution only — the statistics are worker-invariant by
// construction — so it is excluded from the cache key.
type MCRequest struct {
	Topology string          `json:"topology,omitempty"` // registered plan name, default folded-cascode
	N        int             `json:"n,omitempty"`        // samples, default 25
	Seed     int64           `json:"seed,omitempty"`     // default 1
	Case     int             `json:"case,omitempty"`     // parasitic-awareness level of the design, default 1
	Workers  int             `json:"workers,omitempty"`
	Spec     *sizing.OTASpec `json:"spec,omitempty"`
}

func (r *MCRequest) normalize() error {
	plan, err := sizing.Lookup(r.Topology)
	if err != nil {
		return err
	}
	r.Topology = plan.Name
	if r.N == 0 {
		r.N = 25
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.Case == 0 {
		r.Case = 1
	}
	if r.N < 1 || r.N > 100000 {
		return fmt.Errorf("n must be 1..100000, got %d", r.N)
	}
	if r.Case < 1 || r.Case > core.NumTable1Cases {
		return fmt.Errorf("case must be 1..%d, got %d", core.NumTable1Cases, r.Case)
	}
	return nil
}

func (r *MCRequest) cacheKey(tech *techno.Tech, spec sizing.OTASpec) string {
	k := newKey("mc", tech)
	k.str("topology", r.Topology)
	k.spec(spec)
	k.int("n", int64(r.N))
	k.int("seed", r.Seed)
	k.int("case", int64(r.Case))
	return k.sum()
}

// MCReport is the serializable Monte-Carlo result shared by
// `loas mc -json` and POST /v1/mc.
type MCReport struct {
	Topology        string         `json:"topology,omitempty"`
	Case            int            `json:"case"`
	Seed            int64          `json:"seed"`
	Stats           mc.OffsetStats `json:"stats"`
	AnalyticSigmaV  float64        `json:"analytic_sigma_v"`
	GradientCancels bool           `json:"gradient_cancels,omitempty"`
}

func layoutCacheKey(tech *techno.Tech, spec sizing.OTASpec) string {
	k := newKey("layout.svg", tech)
	k.spec(spec)
	return k.sum()
}

// Backend produces response bodies for the server. Implementations
// must be safe for concurrent use; the returned bytes are cached and
// replayed verbatim. Synthesize additionally returns the per-iteration
// convergence events of the run (nil is fine), which the server retains
// for GET /v1/trace/{key}. Tests substitute a counting stub to pin down
// the cache and dedup behaviour without paying for real synthesis.
type Backend interface {
	Synthesize(ctx context.Context, spec sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error)
	Table1(ctx context.Context, spec sizing.OTASpec) ([]byte, error)
	MC(ctx context.Context, spec sizing.OTASpec, req *MCRequest) ([]byte, error)
	LayoutSVG(ctx context.Context, spec sizing.OTASpec) ([]byte, error)
}

// StdBackend runs the real synthesis engine.
type StdBackend struct {
	Tech *techno.Tech
}

// Synthesize runs one Table-1 case and returns its JSON summary plus
// the convergence trace of the run. A span or live trace carried by ctx
// (the daemon's per-run recorder) is handed to the engine, so the run's
// span tree covers every sizing/layout/verify phase.
func (b *StdBackend) Synthesize(ctx context.Context, spec sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	res, err := core.Synthesize(b.Tech, spec, core.Options{
		Topology:       req.Topology,
		Case:           req.Case,
		Layout:         req.Layout,
		MaxLayoutCalls: req.MaxLayoutCalls,
		SkipVerify:     req.SkipVerify,
		Ctx:            ctx,
		Span:           obs.SpanFromContext(ctx),
		Trace:          obs.TraceFromContext(ctx),
		Refine: core.RefineOptions{
			Enabled:    req.Refine,
			MaxRounds:  req.RefineMaxRounds,
			MarginStep: req.RefineMarginStep,
		},
	})
	if err != nil {
		return nil, nil, err
	}
	s := res.Summary()
	s.Case = req.Case
	body, err := marshalJSON(s)
	if err != nil {
		return nil, nil, err
	}
	return body, res.Trace, nil
}

// Table1 runs all four cases (concurrently, via core.SynthesizeAll) and
// returns the full report. The context's span, if any, parents one
// "case" span per concurrent synthesis.
func (b *StdBackend) Table1(ctx context.Context, spec sizing.OTASpec) ([]byte, error) {
	cases, err := repro.Table1Opts(b.Tech, spec, core.Options{
		Ctx:   ctx,
		Span:  obs.SpanFromContext(ctx),
		Trace: obs.TraceFromContext(ctx),
	})
	if err != nil {
		return nil, err
	}
	return marshalJSON(repro.BuildTable1Report(cases, spec))
}

// MC sizes the requested case's design and runs the mismatch
// Monte-Carlo on it. The context's span, if any, parents one
// "mc-sample" span per draw.
func (b *StdBackend) MC(ctx context.Context, spec sizing.OTASpec, req *MCRequest) ([]byte, error) {
	rep, err := RunMC(ctx, b.Tech, spec, req.Topology, req.Case, req.N, req.Seed, req.Workers)
	if err != nil {
		return nil, err
	}
	return marshalJSON(rep)
}

// LayoutSVG generates the case-4 layout (Fig. 5) and returns the SVG
// document.
func (b *StdBackend) LayoutSVG(_ context.Context, spec sizing.OTASpec) ([]byte, error) {
	r, err := repro.Fig5(b.Tech, spec)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := r.WriteSVG(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// RunMC is the shared Monte-Carlo pipeline behind `loas mc` and
// POST /v1/mc: size the named topology's case design, fan the samples
// across the worker pool, attach the analytic Pelgrom estimate. A span
// carried by ctx gets one "mc-sample" child per draw; the statistics
// are unchanged by observation (worker-invariant by construction).
func RunMC(ctx context.Context, tech *techno.Tech, spec sizing.OTASpec, topology string, caseN, n int, seed int64, workers int) (*MCReport, error) {
	plan, err := sizing.Lookup(topology)
	if err != nil {
		return nil, err
	}
	ps, err := sizing.Case(caseN)
	if err != nil {
		return nil, err
	}
	d, err := plan.Size(tech, spec, ps)
	if err != nil {
		return nil, err
	}
	cfg := mc.OffsetConfig{
		Build:   func() *circuit.Circuit { return d.Netlist("mc") },
		InP:     sizing.NetInP,
		InN:     sizing.NetInN,
		Out:     sizing.NetOut,
		VicmDC:  0.5 * (spec.ICMLow + spec.ICMHigh),
		VoutMid: 0.5 * (spec.OutLow + spec.OutHigh),
		Temp:    tech.Temp,
		NodeSet: d.NodeSet(),
		Workers: workers,
		Ctx:     ctx,
		Span:    obs.SpanFromContext(ctx),
	}
	stats, err := mc.RunOffset(cfg, n, seed)
	if err != nil {
		return nil, err
	}
	card := func(t techno.MOSType) *techno.MOSCard {
		if t == techno.PMOS {
			return &tech.P
		}
		return &tech.N
	}
	pair, load, gmRatio := d.OffsetRefs()
	est := mc.EstimateOffsetSigma(card(pair.Type), pair.W, pair.L,
		card(load.Type), load.W, load.L, gmRatio)
	return &MCReport{Topology: plan.Name, Case: caseN, Seed: seed,
		Stats: *stats, AnalyticSigmaV: est}, nil
}

// marshalJSON is the one JSON encoder for every cacheable body:
// indented, trailing newline, HTML escaping off. One encoder ⇒ cached
// replays are byte-identical to cold responses.
func marshalJSON(v any) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
