package core

import (
	"context"
	"fmt"
	"math"
	"strconv"
	"time"

	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Closed-loop post-layout-driven sizing: the paper's case-4 promise is
// that extracted performance should *drive* re-sizing, not just be
// reported. When the extracted netlist misses the original spec at any
// process corner, the effective spec margins are tightened in
// proportion to the per-metric miss and the whole sizing↔layout loop
// re-runs — corner-robust sizing, not corner-reporting. The loop is
// bit-deterministic: corners are evaluated in a fixed order, margins
// are pure float arithmetic over index-ordered sweep results, and the
// inner engine is worker-invariant by construction, so the same spec
// refines to the same design at any worker count.

// Refinement defaults and acceptance slacks, shared by the engine, the
// serve request normalizer and the CLI flags.
const (
	// DefaultRefineMaxRounds bounds the outer loop (round 1 is the
	// one-shot run, so up to five corrective re-sizings).
	DefaultRefineMaxRounds = 6
	// DefaultRefineMarginStep folds the full per-metric worst-corner
	// miss into the next round's target (step 1 ≈ the traditional
	// flow's full-shortfall overdrive; smaller steps approach more
	// cautiously at the cost of rounds).
	DefaultRefineMarginStep = 1.0
	// RefineGBWSlack and RefinePMSlackDeg are the acceptance slacks
	// against the *original* spec, matching the traditional-flow
	// baseline (GBW within 2%, PM within 1°).
	RefineGBWSlack   = 0.02
	RefinePMSlackDeg = 1.0
	// refineMaxOverdrive caps the cumulative GBW target inflation and
	// refineMaxPMTarget the PM target, so an unreachable spec exhausts
	// the round budget instead of driving the sizer into infeasible
	// territory.
	refineMaxOverdrive = 3.0
	refineMaxPMTarget  = 80.0
)

// RefineOptions configures the outer refinement loop of Options.Refine.
// The zero value disables refinement entirely (one-shot flow).
type RefineOptions struct {
	// Enabled turns the corner-driven outer loop on.
	Enabled bool
	// MaxRounds bounds the outer loop (default DefaultRefineMaxRounds).
	MaxRounds int
	// MarginStep scales how much of the worst-corner miss is folded
	// into the next round's effective targets (default
	// DefaultRefineMarginStep).
	MarginStep float64
}

func (o *RefineOptions) defaults() {
	if o.MaxRounds <= 0 {
		o.MaxRounds = DefaultRefineMaxRounds
	}
	if o.MarginStep <= 0 {
		o.MarginStep = DefaultRefineMarginStep
	}
}

// refineCornerOrder fixes the corner evaluation and report order —
// margin arithmetic must never depend on map iteration.
var refineCornerOrder = []techno.Corner{techno.CornerTT, techno.CornerSS,
	techno.CornerFF, techno.CornerSF, techno.CornerFS}

// RefineCorner is one corner's verdict within a refinement round.
type RefineCorner struct {
	Corner string             `json:"corner"`
	Perf   sizing.Performance `json:"perf"`
	// GBWMarginRel is (GBW − spec.GBW)/spec.GBW against the original
	// spec (negative = miss); PMMarginDeg is PM − spec.PM in degrees.
	GBWMarginRel float64 `json:"gbw_margin_rel"`
	PMMarginDeg  float64 `json:"pm_margin_deg"`
	// Met reports whether this corner satisfies the original spec
	// within the acceptance slacks.
	Met bool `json:"met"`
}

// RefineRound is one pass of the outer loop: the effective targets it
// sized against, the inner loop's cost, and the per-corner extracted
// verdicts against the original spec.
type RefineRound struct {
	Round int `json:"round"`
	// TargetGBW / TargetPM are the tightened effective spec this round
	// sized against (round 1 uses the original spec).
	TargetGBW    float64        `json:"target_gbw_hz"`
	TargetPM     float64        `json:"target_pm_deg"`
	LayoutCalls  int            `json:"layout_calls"`
	SizingPasses int            `json:"sizing_passes"`
	Corners      []RefineCorner `json:"corners"`
	// WorstMargin is the round's worst-corner acceptance margin,
	// normalized so 0 is exactly on the slack-adjusted spec: the min
	// over corners of min((GBW−(1−slack)·specGBW)/specGBW,
	// (PM−(specPM−slack))/specPM). Met ⇔ WorstMargin ≥ 0.
	WorstMargin float64 `json:"worst_margin"`
	Met         bool    `json:"met"`
}

// RefineReport is the structured outcome of a refined synthesis,
// attached to Result.Refine and serialized into core.Summary.
type RefineReport struct {
	MaxRounds  int           `json:"max_rounds"`
	MarginStep float64       `json:"margin_step"`
	Rounds     []RefineRound `json:"rounds"`
	// BestRound names the accepted round (1-based): the first round
	// meeting the spec at every corner, else the round with the
	// greatest worst-corner margin. The Result carries that round's
	// design.
	BestRound int `json:"best_round"`
	// Met reports whether the accepted round satisfies the original
	// spec at all five corners.
	Met bool `json:"met"`
	// Aborted carries the error that cut the loop short after round 1
	// (a tightened target the sizer could not realize); the best
	// earlier round is still returned.
	Aborted string `json:"aborted,omitempty"`
}

// SynthesizeRefined runs the closed-loop flow explicitly (Synthesize
// with opts.Refine.Enabled forced on).
func SynthesizeRefined(tech *techno.Tech, spec sizing.OTASpec, opts Options) (*Result, error) {
	opts.Refine.Enabled = true
	return Synthesize(tech, spec, opts)
}

// synthesizeRefined is the outer loop: one-shot synthesis, corner
// verification against the original spec, and — on any corner miss —
// proportionally tightened effective targets for the next round, until
// the spec is met at every corner or the round budget is exhausted
// (the best round wins).
func synthesizeRefined(tech *techno.Tech, spec sizing.OTASpec, opts Options) (*Result, error) {
	ro := opts.Refine
	ro.defaults()
	start := time.Now()
	obs.Default.Counter("loas_refine_runs_total",
		"Closed-loop refined synthesis runs.").Inc()

	rep := &RefineReport{MaxRounds: ro.MaxRounds, MarginStep: ro.MarginStep}
	target := spec
	var best *Result
	bestMargin := math.Inf(-1)
	var allIters []obs.Iteration

	for round := 1; round <= ro.MaxRounds; round++ {
		rSpan := opts.Span.Child("refine-round")
		rSpan.SetAttr("round", strconv.Itoa(round))
		io := opts
		io.Refine = RefineOptions{}
		io.SkipVerify = false // the loop is driven by extracted performance
		io.Span = rSpan
		res, err := synthesizeOnce(tech, target, io, round)
		if err == nil {
			var corners map[techno.Corner]sizing.Performance
			sweep := rSpan.Child("corner-sweep")
			// The sweep context chains from opts.Ctx so the daemon's pprof
			// labels (topology, run_id) reach the per-corner workers.
			cctx := opts.Ctx
			if cctx == nil {
				cctx = context.Background()
			}
			corners, err = CornerSweepCtx(obs.ContextWithSpan(cctx, sweep), tech, res)
			sweep.End()
			if err == nil {
				rr := scoreRound(round, target, spec, res, corners)
				rep.Rounds = append(rep.Rounds, rr)
				allIters = append(allIters, res.Trace...)
				if rr.WorstMargin > bestMargin {
					bestMargin = rr.WorstMargin
					best = res
					rep.BestRound = round
				}
				rSpan.End()
				if rr.Met {
					break
				}
				target = tightenTarget(target, spec, rr, ro.MarginStep)
				continue
			}
		}
		rSpan.End()
		if best == nil {
			return nil, fmt.Errorf("core: refine round %d: %w", round, err)
		}
		rep.Aborted = fmt.Sprintf("round %d: %v", round, err)
		break
	}

	rep.Met = bestMargin >= 0
	best.Refine = rep
	best.Trace = allIters
	best.Elapsed = time.Since(start)
	obs.Default.Counter("loas_refine_rounds_total",
		"Refinement rounds executed across all refined runs.").Add(int64(len(rep.Rounds)))
	if rep.Met {
		obs.Default.Counter("loas_refine_met_total",
			"Refined runs that met the original spec at all corners.").Inc()
	}
	obs.Default.Histogram("loas_refine_rounds_per_run",
		"Rounds needed per refined synthesis run.",
		[]float64{1, 2, 3, 4, 5, 6, 8, 10}).Observe(float64(len(rep.Rounds)))
	return best, nil
}

// scoreRound verifies one round's extracted corner performance against
// the original spec and computes its acceptance margins. Corners are
// scored in refineCornerOrder so the report and every derived float are
// deterministic.
func scoreRound(round int, target, spec sizing.OTASpec, res *Result,
	corners map[techno.Corner]sizing.Performance) RefineRound {
	rr := RefineRound{
		Round:        round,
		TargetGBW:    target.GBW,
		TargetPM:     target.PM,
		LayoutCalls:  res.LayoutCalls,
		SizingPasses: res.SizingPasses,
		WorstMargin:  math.Inf(1),
	}
	for _, c := range refineCornerOrder {
		p := corners[c]
		gbwMargin := (p.GBW - (1-RefineGBWSlack)*spec.GBW) / spec.GBW
		pmMargin := (p.PhaseDeg - (spec.PM - RefinePMSlackDeg)) / spec.PM
		margin := math.Min(gbwMargin, pmMargin)
		rr.Corners = append(rr.Corners, RefineCorner{
			Corner:       string(c),
			Perf:         p,
			GBWMarginRel: (p.GBW - spec.GBW) / spec.GBW,
			PMMarginDeg:  p.PhaseDeg - spec.PM,
			Met:          margin >= 0,
		})
		if margin < rr.WorstMargin {
			rr.WorstMargin = margin
		}
	}
	rr.Met = rr.WorstMargin >= 0
	return rr
}

// tightenTarget folds the round's worst-corner misses back into the
// effective targets, proportionally to each metric's own miss: the GBW
// target inflates by step × the worst relative GBW shortfall, the PM
// target grows by step × the worst PM shortfall in degrees. Cumulative
// inflation is clamped so an unreachable spec exhausts rounds instead
// of breaking the sizer.
func tightenTarget(target, spec sizing.OTASpec, rr RefineRound, step float64) sizing.OTASpec {
	var gbwMiss, pmMiss float64 // worst-corner shortfall vs the slack-adjusted spec
	for _, c := range rr.Corners {
		if m := ((1-RefineGBWSlack)*spec.GBW - c.Perf.GBW) / spec.GBW; m > gbwMiss {
			gbwMiss = m
		}
		if m := (spec.PM - RefinePMSlackDeg) - c.Perf.PhaseDeg; m > pmMiss {
			pmMiss = m
		}
	}
	next := target
	next.GBW = target.GBW * (1 + step*gbwMiss)
	if max := refineMaxOverdrive * spec.GBW; next.GBW > max {
		next.GBW = max
	}
	next.PM = target.PM + step*pmMiss
	if next.PM > refineMaxPMTarget {
		next.PM = refineMaxPMTarget
	}
	return next
}
