package device

import (
	"fmt"
	"math"

	"loas/internal/techno"
)

// DiffNet says which diffusion net occupies the *internal* (shared) strips
// of a folded transistor. The paper's frequency-oriented layout style makes
// the drain internal whenever the fold count is even, minimizing the
// drain-bulk capacitance on the signal net (F = 1/2).
type DiffNet int

// Diffusion style choices.
const (
	// DrainInternal: fingers are ordered S-G-D-G-S-…; with an even fold
	// count every drain strip is shared between two gates.
	DrainInternal DiffNet = iota
	// SourceInternal: fingers are ordered D-G-S-G-D-…; the drain sits on
	// the stack ends.
	SourceInternal
)

// String implements fmt.Stringer.
func (d DiffNet) String() string {
	if d == DrainInternal {
		return "drain-internal"
	}
	return "source-internal"
}

// FFactor returns the capacitance reduction factor F of the paper's Fig. 2
// for the *interior-preferred* net (fd) and the complementary net (fs) of a
// transistor folded nf times with the given style. W_eff = F·W, so the
// diffusion bottom area on a net is F·W·E with E the strip extension.
//
//	nf even, net internal:   F = 1/2
//	nf even, net external:   F = (nf+2)/(2nf)
//	nf odd (either net):     F = (nf+1)/(2nf)   (nf = 1 → F = 1)
func FFactor(nf int, style DiffNet) (fd, fs float64) {
	if nf < 1 {
		nf = 1
	}
	n := float64(nf)
	var fInt, fExt float64
	if nf%2 == 0 {
		fInt = 0.5
		fExt = (n + 2) / (2 * n)
	} else {
		fInt = (n + 1) / (2 * n)
		fExt = fInt
	}
	if style == DrainInternal {
		return fInt, fExt
	}
	return fExt, fInt
}

// FoldPlan describes how a transistor is folded in the layout, with enough
// information to recompute its junction parasitics exactly. This is part
// of what the layout tool returns to the sizing tool in
// parasitic-calculation mode.
type FoldPlan struct {
	Folds        int     // number of gate fingers (≥ 1)
	FingerW      float64 // drawn width of one finger (m), grid-snapped
	Style        DiffNet
	DrainStrips  int // total drain diffusion strips
	DrainExt     int // of which on the stack ends
	SourceStrips int
	SourceExt    int
}

// TotalW returns the folded transistor's realized total width, which may
// differ from the requested width by grid snapping (the effect behind the
// small offset voltage the paper observes in case 2).
func (p FoldPlan) TotalW() float64 { return float64(p.Folds) * p.FingerW }

// PlanFolds builds a FoldPlan for total width w folded nf times with the
// requested style, snapping the finger width to the technology grid.
func PlanFolds(rules *techno.Rules, w float64, nf int, style DiffNet) FoldPlan {
	if nf < 1 {
		nf = 1
	}
	fw := techno.NMToMeters(rules.SnapNM(techno.MetersToNM(w / float64(nf))))
	minW := techno.NMToMeters(rules.ActiveWidth)
	if fw < minW {
		fw = minW
	}
	p := FoldPlan{Folds: nf, FingerW: fw, Style: style}
	strips := nf + 1
	if style == DrainInternal {
		if nf%2 == 0 {
			p.DrainStrips, p.DrainExt = nf/2, 0
			p.SourceStrips, p.SourceExt = nf/2+1, 2
		} else {
			p.DrainStrips, p.DrainExt = (nf+1)/2, 1
			p.SourceStrips, p.SourceExt = (nf+1)/2, 1
		}
	} else {
		if nf%2 == 0 {
			p.SourceStrips, p.SourceExt = nf/2, 0
			p.DrainStrips, p.DrainExt = nf/2+1, 2
		} else {
			p.DrainStrips, p.DrainExt = (nf+1)/2, 1
			p.SourceStrips, p.SourceExt = (nf+1)/2, 1
		}
	}
	if p.DrainStrips+p.SourceStrips != strips {
		panic(fmt.Sprintf("device: fold bookkeeping broke: %d+%d != %d",
			p.DrainStrips, p.SourceStrips, strips))
	}
	return p
}

// Geom converts the fold plan to junction areas and perimeters given the
// diffusion strip extensions of the technology. Internal strips expose two
// non-gate edges (their long sides); external strips add one finger-width
// edge. Gate-side edges are excluded per the SPICE convention.
func (p FoldPlan) Geom(tech *techno.Tech) DiffGeom {
	eC := tech.DiffExtContacted
	eS := tech.DiffExtShared
	fw := p.FingerW

	stripArea := func(ext bool) float64 {
		if ext {
			return fw * eC
		}
		return fw * eS
	}
	stripPerim := func(ext bool) float64 {
		if ext {
			return 2*eC + fw
		}
		return 2 * eS
	}

	var g DiffGeom
	dInt := p.DrainStrips - p.DrainExt
	sInt := p.SourceStrips - p.SourceExt
	g.AD = float64(dInt)*stripArea(false) + float64(p.DrainExt)*stripArea(true)
	g.PD = float64(dInt)*stripPerim(false) + float64(p.DrainExt)*stripPerim(true)
	g.AS = float64(sInt)*stripArea(false) + float64(p.SourceExt)*stripArea(true)
	g.PS = float64(sInt)*stripPerim(false) + float64(p.SourceExt)*stripPerim(true)
	return g
}

// OneFoldGeom returns the worst-case unfolded diffusion geometry (the
// paper's case-2 assumption: one fold per transistor, F = 1 on both nets).
func OneFoldGeom(tech *techno.Tech, w float64) DiffGeom {
	e := tech.DiffExtContacted
	return DiffGeom{
		AD: w * e, PD: 2*e + w,
		AS: w * e, PS: 2*e + w,
	}
}

// FoldsForHeight returns the fold count that keeps the finger width at or
// under maxFinger, always at least 1. When evenPreferred is set the count
// is rounded up to even so the preferred net can be fully internal — the
// parasitic control the paper applies to frequency-critical nets.
func FoldsForHeight(w, maxFinger float64, evenPreferred bool) int {
	if maxFinger <= 0 {
		return 1
	}
	nf := int(math.Ceil(w / maxFinger))
	if nf < 1 {
		nf = 1
	}
	if evenPreferred && nf > 1 && nf%2 == 1 {
		nf++
	}
	return nf
}
