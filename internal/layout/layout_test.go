package layout

import (
	"strings"
	"testing"
)

func TestLookupDefault(t *testing.T) {
	b, err := Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if b.Info().Name != DefaultBackend {
		t.Fatalf("empty name resolved to %q, want %q", b.Info().Name, DefaultBackend)
	}
	if name, err := CanonicalName(""); err != nil || name != DefaultBackend {
		t.Fatalf("CanonicalName(\"\") = %q, %v", name, err)
	}
}

func TestLookupUnknownListsRegistered(t *testing.T) {
	_, err := Lookup("herringbone")
	if err == nil {
		t.Fatal("expected error for unknown backend")
	}
	if !strings.Contains(err.Error(), DefaultBackend) {
		t.Fatalf("error %q does not list registered backends", err)
	}
}

func TestBackendsSortedAndDescribed(t *testing.T) {
	infos := Backends()
	if len(infos) == 0 {
		t.Fatal("no backends registered")
	}
	for i, info := range infos {
		if info.Name == "" || info.Description == "" {
			t.Fatalf("incomplete descriptor %+v", info)
		}
		if i > 0 && infos[i-1].Name >= info.Name {
			t.Fatalf("backends not sorted: %q before %q", infos[i-1].Name, info.Name)
		}
	}
}

func TestRegisterRejectsDuplicates(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(slicingBackend{})
}

func TestMetricName(t *testing.T) {
	if got := metricName("a-b.c"); got != "a_b_c" {
		t.Fatalf("metricName = %q", got)
	}
}
