package mc

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/stack"
	"loas/internal/sizing"
	"loas/internal/techno"
)

const um = techno.Micron

func TestDrawPelgromScaling(t *testing.T) {
	tech := techno.Default060()
	mk := func(name string, w float64) *circuit.MOSFET {
		return &circuit.MOSFET{Name: name, D: "d", G: "g", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: w, L: 1 * um}}
	}
	small := circuit.New("s")
	small.Add(mk("m", 4*um))
	big := circuit.New("b")
	big.Add(mk("m", 64*um))

	// Empirical σ over many draws must scale as 1/√area (factor 4 here).
	var sSmall, sBig float64
	const n = 4000
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < n; i++ {
		d := Draw(rng, small).DVT0["m"]
		sSmall += d * d
	}
	rng = rand.New(rand.NewSource(2))
	for i := 0; i < n; i++ {
		d := Draw(rng, big).DVT0["m"]
		sBig += d * d
	}
	ratio := math.Sqrt(sSmall / sBig)
	if ratio < 3.4 || ratio > 4.6 {
		t.Fatalf("σ ratio for 16× area = %.2f, want ≈ 4", ratio)
	}
}

func TestApplyClonesCards(t *testing.T) {
	tech := techno.Default060()
	c := circuit.New("c")
	c.Add(
		&circuit.MOSFET{Name: "a", D: "d", G: "g", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: 10 * um, L: 1 * um}},
		&circuit.MOSFET{Name: "b", D: "d2", G: "g", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: 10 * um, L: 1 * um}},
	)
	s := Sample{
		DVT0:  map[string]float64{"a": 5e-3, "b": -5e-3},
		DBeta: map[string]float64{"a": 0.01, "b": -0.01},
	}
	s.Apply(c)
	va := c.FindMOS("a").Dev.Card.VT0
	vb := c.FindMOS("b").Dev.Card.VT0
	if va == vb {
		t.Fatal("shifts not applied independently")
	}
	if tech.N.VT0 != 0.75 {
		t.Fatal("Apply mutated the shared technology card")
	}
}

// fcConfig builds the Monte-Carlo offset bench on the case-1 OTA.
func fcConfig(t *testing.T) OffsetConfig {
	t.Helper()
	tech := techno.Default060()
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeFoldedCascode(tech, sizing.Default65MHz(), ps)
	if err != nil {
		t.Fatal(err)
	}
	return OffsetConfig{
		Build:   func() *circuit.Circuit { return d.Netlist("mc") },
		InP:     sizing.NetInP,
		InN:     sizing.NetInN,
		Out:     sizing.NetOut,
		VicmDC:  0.645,
		VoutMid: 1.41,
		Temp:    tech.Temp,
		NodeSet: d.NodeSet(),
	}
}

func TestRunOffsetStatistics(t *testing.T) {
	cfg := fcConfig(t)
	stats, err := RunOffset(cfg, 12, 42)
	if err != nil {
		t.Fatal(err)
	}
	if stats.N < 10 {
		t.Fatalf("only %d of 12 samples converged (%d failures)", stats.N, stats.Failures)
	}
	// Input-referred offset σ of a 140 µm / 1 µm pair with cascode loads:
	// fractions of a millivolt to a few millivolts.
	if stats.SigmaV < 0.1e-3 || stats.SigmaV > 8e-3 {
		t.Fatalf("σ(offset) = %.3f mV outside the plausible band", stats.SigmaV*1e3)
	}
	if math.Abs(stats.MeanV) > 3*stats.SigmaV {
		t.Fatalf("offset mean %.3f mV inconsistent with σ %.3f mV",
			stats.MeanV*1e3, stats.SigmaV*1e3)
	}
	if stats.WorstAbsV < stats.SigmaV/2 {
		t.Fatal("worst case below sigma — bookkeeping broken")
	}
}

func TestRunOffsetDeterministic(t *testing.T) {
	cfg := fcConfig(t)
	a, err := RunOffset(cfg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOffset(cfg, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if a.SigmaV != b.SigmaV || a.MeanV != b.MeanV {
		t.Fatal("same seed must reproduce the same statistics")
	}
}

// TestRunOffsetWorkerInvariance pins the determinism contract of the
// engine as a property over execution shapes: the same (seed, n) yields
// bit-identical OffsetStats no matter how many workers execute the
// samples AND no matter how the sample range is split into resumed
// OffsetSamples batches — because sample i's random stream depends only
// on (seed, i) and the reduction runs in sample order.
func TestRunOffsetWorkerInvariance(t *testing.T) {
	const n, seed = 6, 7
	base := fcConfig(t)
	base.Workers = 1
	ref, err := RunOffset(base, n, seed)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		workers int
		split   []int // batch sizes summing to n; nil = single RunOffset
	}{
		{"workers=1", 1, nil},
		{"workers=4", 4, nil},
		{"workers=16", 16, nil},
		{"workers=numcpu", runtime.NumCPU(), nil},
		{"resume 2+4", 4, []int{2, 4}},
		{"resume 3+3", 1, []int{3, 3}},
		{"resume 1+2+3", 16, []int{1, 2, 3}},
		{"resume 1x6", 4, []int{1, 1, 1, 1, 1, 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			cfg.Workers = tc.workers
			var got *OffsetStats
			if tc.split == nil {
				got, err = RunOffset(cfg, n, seed)
				if err != nil {
					t.Fatal(err)
				}
			} else {
				var all []OffsetSample
				start := 0
				for _, bn := range tc.split {
					batch, err := OffsetSamples(cfg, start, bn, seed)
					if err != nil {
						t.Fatalf("batch at %d: %v", start, err)
					}
					all = append(all, batch...)
					start += bn
				}
				if start != n {
					t.Fatalf("split %v does not cover %d samples", tc.split, n)
				}
				got = ReduceOffsets(all)
			}
			if *got != *ref {
				t.Fatalf("statistics not bit-identical:\n  reference %+v\n  got       %+v",
					*ref, *got)
			}
		})
	}
}

// TestOffsetSamplesIndexing: a resumed batch must carry absolute sample
// indices and reproduce exactly the samples a full run would have drawn
// at those indices.
func TestOffsetSamplesIndexing(t *testing.T) {
	cfg := fcConfig(t)
	full, err := OffsetSamples(cfg, 0, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	tail, err := OffsetSamples(cfg, 3, 2, 11)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range tail {
		want := full[3+i]
		if s.Index != 3+i {
			t.Fatalf("tail[%d].Index = %d, want %d", i, s.Index, 3+i)
		}
		if s != want {
			t.Fatalf("resumed sample %d differs: %+v vs %+v", s.Index, s, want)
		}
	}
}

// TestSampleSeedStreamsIndependent: adjacent samples must not share a
// stream (the classic seed+i mistake correlates draws).
func TestSampleSeedStreamsIndependent(t *testing.T) {
	seen := map[int64]int{}
	for seed := int64(0); seed < 4; seed++ {
		for i := 0; i < 1000; i++ {
			s := sampleSeed(seed, i)
			if j, dup := seen[s]; dup {
				t.Fatalf("seed collision between streams %d and %d", j, i)
			}
			seen[s] = i
		}
	}
	// First draws of consecutive streams should look uncorrelated.
	var dot, n float64
	for i := 0; i < 500; i++ {
		a := rand.New(rand.NewSource(sampleSeed(1, i))).NormFloat64()
		b := rand.New(rand.NewSource(sampleSeed(1, i+1))).NormFloat64()
		dot += a * b
		n++
	}
	if r := dot / n; math.Abs(r) > 0.15 {
		t.Fatalf("consecutive streams correlate: r = %.3f", r)
	}
}

func TestEstimateOffsetSigma(t *testing.T) {
	tech := techno.Default060()
	// Bigger devices → smaller offset.
	small := EstimateOffsetSigma(&tech.P, 20*um, 1*um, &tech.N, 20*um, 1*um, 0.5)
	big := EstimateOffsetSigma(&tech.P, 200*um, 1*um, &tech.N, 200*um, 1*um, 0.5)
	if big >= small {
		t.Fatalf("offset should shrink with area: %g vs %g", big, small)
	}
	// Load contribution suppressed by the gm ratio.
	loadHeavy := EstimateOffsetSigma(&tech.P, 20*um, 1*um, &tech.N, 20*um, 1*um, 2.0)
	if loadHeavy <= small {
		t.Fatal("larger gm ratio should worsen the load contribution")
	}
}

func TestGradientRewardsCommonCentroid(t *testing.T) {
	// An optimized (near common-centroid) pair versus a naive AABB
	// arrangement under the same gradient.
	spec := stack.PatternSpec{
		Devices: []stack.Device{
			{Name: "A", Units: 2, DrainNet: "da", GateNet: "ga"},
			{Name: "B", Units: 2, DrainNet: "db", GateNet: "gb"},
		},
		SourceNet: "tail", EndDummies: true,
	}
	good, err := stack.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	const grad = 1e-3 // 1 mV per gate pitch
	offGood := math.Abs(GradientPairOffset(good, "A", "B", grad))

	// Naive AABB: centroids differ by 2 pitches → 2 mV offset.
	sc := good.SignedCentroid()
	_ = sc
	offNaive := 2 * grad
	if offGood >= offNaive {
		t.Fatalf("optimized stack offset %.3g V should beat AABB %.3g V", offGood, offNaive)
	}
	if offGood > 0.8e-3 {
		t.Fatalf("optimized stack gradient offset %.3g V too large", offGood)
	}
}

func TestGradientShiftSigns(t *testing.T) {
	p, err := stack.Generate(stack.PatternSpec{
		Devices: []stack.Device{
			{Name: "L", Units: 1, DrainNet: "dl", GateNet: "g"},
			{Name: "R", Units: 1, DrainNet: "dr", GateNet: "g"},
		},
		SourceNet: "s",
	})
	if err != nil {
		t.Fatal(err)
	}
	sh := GradientVTShift(p, 1e-3)
	// Two single units: one sits left of centre, one right — equal and
	// opposite shifts.
	if math.Abs(sh["L"]+sh["R"]) > 1e-12 {
		t.Fatalf("antisymmetric shifts expected: %v", sh)
	}
	if sh["L"] == 0 {
		t.Fatal("distinct positions must shift")
	}
}
