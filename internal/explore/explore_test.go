package explore

import (
	"context"
	"math/rand"
	"reflect"
	"runtime"
	"sync/atomic"
	"testing"

	"loas/internal/sizing"
)

// stubProber derives metrics deterministically from the spec: harder
// GBW targets buy bandwidth at a power and area cost, higher PM costs
// area. GBW targets past 300 MHz are infeasible, like a real plan
// running out of headroom.
type stubProber struct {
	calls atomic.Int64
}

func (p *stubProber) Probe(_ context.Context, _ string, s sizing.OTASpec) (Metrics, bool, string, error) {
	p.calls.Add(1)
	if s.GBW > 300e6 {
		return Metrics{}, false, "gbw target out of reach", nil
	}
	return Metrics{
		GainDB:  70 - s.GBW/1e7,
		GBWHz:   0.97 * s.GBW,
		PowerW:  1e-12 * s.GBW * (s.CL / 1e-12),
		AreaUM2: 1000 + s.PM*40 + s.GBW/1e5,
	}, true, "", nil
}

func testSpec() sizing.OTASpec {
	s := sizing.Default65MHz()
	return s
}

func TestDominates(t *testing.T) {
	a := Metrics{GainDB: 60, GBWHz: 65e6, PowerW: 1e-3, AreaUM2: 2000}
	b := a
	if Dominates(a, b) || Dominates(b, a) {
		t.Fatal("equal metric vectors must not dominate each other")
	}
	b.PowerW = 2e-3
	if !Dominates(a, b) {
		t.Fatal("a is strictly better on power, equal elsewhere: must dominate")
	}
	if Dominates(b, a) {
		t.Fatal("dominance must be asymmetric")
	}
	// Trade-off: b faster but hungrier — neither dominates.
	b = Metrics{GainDB: 60, GBWHz: 90e6, PowerW: 2e-3, AreaUM2: 2000}
	if Dominates(a, b) || Dominates(b, a) {
		t.Fatal("trade-off points must both survive")
	}
}

func TestFrontDropsDominatedAndInfeasible(t *testing.T) {
	mk := func(gbw, power float64, feasible bool) Point {
		return Point{Topology: "t", Spec: sizing.OTASpec{GBW: gbw},
			Feasible: feasible,
			Metrics:  Metrics{GainDB: 60, GBWHz: gbw, PowerW: power, AreaUM2: 1000}}
	}
	pts := []Point{
		mk(65e6, 1e-3, true),
		mk(65e6, 2e-3, true),   // dominated: same speed, more power
		mk(90e6, 2e-3, true),   // trade-off: survives
		mk(500e6, 1e-9, false), // infeasible: excluded however good it looks
	}
	front := Front(pts)
	if len(front) != 2 {
		t.Fatalf("front size %d, want 2: %+v", len(front), front)
	}
	// Canonical order: descending GBW first.
	if front[0].Metrics.GBWHz != 90e6 || front[1].Metrics.GBWHz != 65e6 {
		t.Fatalf("front order wrong: %+v", front)
	}
}

func TestGridCanonicalEnumeration(t *testing.T) {
	base := testSpec()
	a := Axes{GBW: []float64{90e6, 40e6, 65e6, 40e6}, PM: []float64{70, 55}}
	b := Axes{GBW: []float64{40e6, 65e6, 90e6}, PM: []float64{55, 70}}
	ga, gb := Grid(base, a), Grid(base, b)
	if !reflect.DeepEqual(ga, gb) {
		t.Fatal("grid enumeration must be invariant under axis-value shuffles and duplicates")
	}
	if len(ga) != 6 {
		t.Fatalf("grid size %d, want 6", len(ga))
	}
	if Grid(base, Axes{})[0] != base {
		t.Fatal("empty axes must yield the base spec")
	}
	if (Axes{GBW: []float64{1, 2}, CL: []float64{1e-12}}).Points() != 2 {
		t.Fatal("Points miscounts")
	}
}

func TestAxesValidate(t *testing.T) {
	for _, bad := range []Axes{
		{GBW: []float64{-1}},
		{PM: []float64{95}},
		{PM: []float64{0}},
		{CL: []float64{0}},
	} {
		if bad.Validate() == nil {
			t.Fatalf("axes %+v should be rejected", bad)
		}
	}
	ok := Axes{GBW: []float64{40e6}, PM: []float64{60}, CL: []float64{2e-12}}
	if err := ok.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestNeighborsDeterministicAndClamped(t *testing.T) {
	s := testSpec()
	front := []Point{{Topology: "t", Spec: s, Feasible: true}}
	probed := map[string]bool{SpecKey("t", s): true}
	n1 := Neighbors(front, 0.15, probed)
	n2 := Neighbors(front, 0.15, probed)
	if !reflect.DeepEqual(n1, n2) {
		t.Fatal("neighbor wave must be deterministic")
	}
	if len(n1) != 4 {
		t.Fatalf("expected 4 neighbors, got %d", len(n1))
	}
	for _, c := range n1 {
		if c.GBW < minGBWHz || c.GBW > maxGBWHz || c.PM < minPMDeg || c.PM > maxPMDeg {
			t.Fatalf("neighbor outside clamps: %+v", c)
		}
	}
	// A point already at the PM ceiling only expands downward.
	hi := s
	hi.PM = maxPMDeg
	nhi := Neighbors([]Point{{Topology: "t", Spec: hi}}, 0.15, map[string]bool{})
	for _, c := range nhi {
		if c.PM > maxPMDeg {
			t.Fatalf("clamp violated: %+v", c)
		}
	}
}

// runOnce executes one exploration with the stub prober.
func runOnce(t *testing.T, workers int, guided bool) *Result {
	t.Helper()
	res, err := Run(context.Background(), &stubProber{}, Config{
		Topology: "stub",
		Base:     testSpec(),
		Axes: Axes{GBW: []float64{40e6, 65e6, 90e6, 350e6},
			PM: []float64{55, 70}, CL: []float64{1e-12, 3e-12}},
		Guided:  guided,
		Budget:  40,
		Step:    0.15,
		Workers: workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestRunWorkerInvariance: the probe log and the front are identical at
// any worker count, grid and guided — the serving layer's determinism
// contract.
func TestRunWorkerInvariance(t *testing.T) {
	for _, guided := range []bool{false, true} {
		serial := runOnce(t, 1, guided)
		for _, w := range []int{2, 3, 8} {
			got := runOnce(t, w, guided)
			if !reflect.DeepEqual(serial, got) {
				t.Fatalf("guided=%v: workers=%d result differs from serial", guided, w)
			}
		}
	}
}

// TestRunGOMAXPROCSInvariance re-runs the guided search under a
// throttled scheduler; the result must not move.
func TestRunGOMAXPROCSInvariance(t *testing.T) {
	want := runOnce(t, 0, true)
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	got := runOnce(t, 0, true)
	if !reflect.DeepEqual(want, got) {
		t.Fatal("guided search result changed under GOMAXPROCS=1")
	}
}

// TestFrontShuffleInvariance: the front of a shuffled probe list equals
// the front of the canonical list — Front's ordering is total, not
// input-order dependent.
func TestFrontShuffleInvariance(t *testing.T) {
	res := runOnce(t, 0, true)
	want := Front(res.Probes)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		shuffled := append([]Point(nil), res.Probes...)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got := Front(shuffled)
		// Index records the probe position, which the shuffle permutes by
		// construction; compare the fronts modulo it.
		norm := func(ps []Point) []Point {
			out := append([]Point(nil), ps...)
			for i := range out {
				out[i].Index = 0
			}
			return out
		}
		if !reflect.DeepEqual(norm(want), norm(got)) {
			t.Fatalf("trial %d: front changed under probe shuffle", trial)
		}
	}
}

// TestRunShuffledAxesInvariance: any spelling of the same axes explores
// identically (grid canonicalization + canonical probe order).
func TestRunShuffledAxesInvariance(t *testing.T) {
	base := testSpec()
	run := func(ax Axes) *Result {
		res, err := Run(context.Background(), &stubProber{}, Config{
			Topology: "stub", Base: base, Axes: ax, Guided: true, Budget: 30})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	want := run(Axes{GBW: []float64{40e6, 90e6}, PM: []float64{55, 70}})
	got := run(Axes{GBW: []float64{90e6, 40e6, 90e6}, PM: []float64{70, 55}})
	if !reflect.DeepEqual(want, got) {
		t.Fatal("axes spelling leaked into the exploration result")
	}
}

// TestRunBudgetAndDedup: guided mode respects the probe budget and
// never probes one spec twice.
func TestRunBudgetAndDedup(t *testing.T) {
	p := &stubProber{}
	res, err := Run(context.Background(), p, Config{
		Topology: "stub", Base: testSpec(),
		Axes:   Axes{GBW: []float64{40e6, 65e6}},
		Guided: true, Budget: 11, Step: 0.15,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Probes) > 11 {
		t.Fatalf("budget exceeded: %d probes", len(res.Probes))
	}
	if p.calls.Load() != int64(len(res.Probes)) {
		t.Fatalf("prober called %d times for %d probes", p.calls.Load(), len(res.Probes))
	}
	seen := map[string]bool{}
	for _, pt := range res.Probes {
		k := SpecKey(pt.Topology, pt.Spec)
		if seen[k] {
			t.Fatalf("spec probed twice: %s", k)
		}
		seen[k] = true
	}
	if res.Rounds < 2 {
		t.Fatalf("guided run should expand past the seed wave, rounds=%d", res.Rounds)
	}
}

// TestRunInfeasiblePointsLogged: infeasible probes stay in the log,
// carry their reason, and never reach the front.
func TestRunInfeasiblePointsLogged(t *testing.T) {
	res := runOnce(t, 0, false)
	var infeasible int
	for _, pt := range res.Probes {
		if !pt.Feasible {
			infeasible++
			if pt.Error == "" {
				t.Fatal("infeasible point lost its reason")
			}
		}
	}
	if infeasible == 0 {
		t.Fatal("test grid should contain infeasible points (350 MHz)")
	}
	for _, pt := range res.Front {
		if !pt.Feasible {
			t.Fatal("infeasible point leaked into the front")
		}
	}
}

func TestSpecKeyDistinguishesBitPatterns(t *testing.T) {
	a := testSpec()
	b := a
	if SpecKey("t", a) != SpecKey("t", b) {
		t.Fatal("identical specs must share a key")
	}
	b.GBW = a.GBW * (1 + 1e-16) // one ulp-ish nudge
	if b.GBW != a.GBW && SpecKey("t", a) == SpecKey("t", b) {
		t.Fatal("distinct bit patterns must key differently")
	}
	if SpecKey("t", a) == SpecKey("u", a) {
		t.Fatal("topology must be part of the key")
	}
}
