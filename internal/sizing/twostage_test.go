package sizing

import (
	"math"
	"sync"
	"testing"

	"loas/internal/circuit"
	"loas/internal/layout/cairo"
	"loas/internal/sim"
	"loas/internal/techno"
)

func twoStageSpec() OTASpec {
	return OTASpec{VDD: 3.3, GBW: 20e6, PM: 65, CL: 5e-12,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.4, OutHigh: 2.9}
}

var (
	tsOnce sync.Once
	tsDes  *TwoStage
	tsErr  error
)

func sizedTwoStage(t *testing.T) *TwoStage {
	t.Helper()
	tsOnce.Do(func() {
		tech := techno.Default060()
		ps, _ := Case(1)
		tsDes, tsErr = SizeTwoStage(tech, twoStageSpec(), ps)
	})
	if tsErr != nil {
		t.Fatal(tsErr)
	}
	return tsDes
}

func TestTwoStageMeetsSpec(t *testing.T) {
	d := sizedTwoStage(t)
	spec := twoStageSpec()
	if d.Predicted.GBW < 0.97*spec.GBW {
		t.Fatalf("GBW %.2f MHz misses target", d.Predicted.GBW/1e6)
	}
	if d.Predicted.PhaseDeg < spec.PM-1 {
		t.Fatalf("PM %.2f° misses target", d.Predicted.PhaseDeg)
	}
	if d.Predicted.DCGainDB < 50 {
		t.Fatalf("gain %.1f dB too low for two stages", d.Predicted.DCGainDB)
	}
}

func TestTwoStageMillerNetwork(t *testing.T) {
	d := sizedTwoStage(t)
	if d.CC <= 0 || d.RZ <= 0 {
		t.Fatal("compensation network missing")
	}
	// Rz ≈ 1/gm6 — a few hundred ohms for MHz-class designs.
	if d.RZ < 10 || d.RZ > 100e3 {
		t.Fatalf("RZ = %.0f Ω implausible", d.RZ)
	}
	// Second stage must carry much more current than the first
	// (gm6 >> gm1 for pole splitting).
	if d.I6 < d.Itail {
		t.Fatalf("second stage current %.1f µA below tail %.1f µA",
			d.I6*1e6, d.Itail*1e6)
	}
}

func TestTwoStageNetlistSimulates(t *testing.T) {
	d := sizedTwoStage(t)
	ckt := d.Netlist("ts")
	vcm := d.NodeEst[NetInP]
	ckt.Add(
		&circuit.VSource{Name: "ip", Pos: NetInP, Neg: "0", DC: vcm},
		&circuit.VSource{Name: "in", Pos: NetInN, Neg: "0", DC: vcm},
		&circuit.Capacitor{Name: "load", A: NetOut, B: "0", C: d.Spec.CL},
	)
	eng := sim.NewEngine(ckt, d.Tech.Temp)
	r, err := eng.OP(sim.OPOptions{NodeSet: d.NodeSet()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MT1, MT2, MT3, MT4, MT5, MT6, MT7} {
		op := r.MOSOPs[name]
		if op.Region.String() != "saturation" {
			t.Fatalf("%s in %v (VDS=%.3f)", name, op.Region, op.VDS)
		}
	}
	// First-stage mirror splits the tail evenly.
	i1, i2 := r.MOSOPs[MT1].ID, r.MOSOPs[MT2].ID
	if math.Abs(i1-i2) > 0.05*math.Abs(i1) {
		t.Fatalf("pair imbalance: %g vs %g", i1, i2)
	}
}

func TestTwoStageLayoutComplete(t *testing.T) {
	d := sizedTwoStage(t)
	plan, err := d.Layout().Plan(d.Tech, cairo.Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []string{MT1, MT2, MT3, MT4, MT5, MT6, MT7} {
		if _, ok := plan.Parasitics.DeviceGeom[inst]; !ok {
			t.Fatalf("%s missing from the layout", inst)
		}
	}
	// The Miller network nets must be wired.
	for _, n := range []string{NetX2, NetOut, NetCZ} {
		if plan.Parasitics.NetCap[n] <= 0 {
			t.Fatalf("net %s unrouted", n)
		}
	}
	if plan.Parasitics.AreaUM2 <= 0 {
		t.Fatal("no area")
	}
}

func TestTwoStageSlewRateBudget(t *testing.T) {
	d := sizedTwoStage(t)
	// SR limited by the smaller of Itail/CC and I6/CL.
	want := math.Min(d.Itail/d.CC, d.I6/d.Spec.CL)
	if math.Abs(d.Predicted.SlewRate-want) > 1e-6*want {
		t.Fatalf("SR prediction inconsistent: %g vs %g", d.Predicted.SlewRate, want)
	}
}

func TestTwoStageRejectsImpossibleSpec(t *testing.T) {
	tech := techno.Default060()
	ps, _ := Case(1)
	spec := twoStageSpec()
	spec.GBW = 10e9 // far beyond the 0.6 µm process
	if _, err := SizeTwoStage(tech, spec, ps); err == nil {
		t.Fatal("10 GHz accepted in a 0.6 µm process")
	}
	if _, err := SizeTwoStage(tech, OTASpec{}, ps); err == nil {
		t.Fatal("empty spec accepted")
	}
}
