// Package device implements the MOS transistor model shared by the sizing
// tool and the circuit simulator.
//
// The DC core is an EKV-flavoured single-equation model: continuous from
// weak through strong inversion and from triode through saturation, with
// body effect, channel-length modulation (constant Early voltage per unit
// length) and first-order mobility degradation. Sharing one continuous
// model between synthesis and verification is exactly the accuracy argument
// the paper makes for COMDIAC ("Accuracy with respect to simulation is
// greatly improved by using the same transistor models").
//
// Capacitances follow the classical Meyer partition for the intrinsic gate
// capacitance plus constant overlaps, and bias-dependent junction
// capacitances evaluated on the *actual* source/drain diffusion geometry
// (area and perimeter), which is where transistor folding enters the
// electrical picture.
//
// Conventions: all equations are written for NMOS with voltages referenced
// to bulk; PMOS is handled by mirroring every terminal voltage and the
// resulting current. Drain/source are interchangeable (the model is
// symmetric); Eval reports currents with the usual sign convention
// (positive current flows into the drain terminal of an NMOS).
package device

import (
	"fmt"
	"math"

	"loas/internal/techno"
)

// Region labels the operating region for reporting purposes; the underlying
// equations are continuous and do not branch on it.
type Region int

// Operating regions.
const (
	RegionOff Region = iota
	RegionWeak
	RegionTriode
	RegionSaturation
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case RegionOff:
		return "off"
	case RegionWeak:
		return "weak"
	case RegionTriode:
		return "triode"
	case RegionSaturation:
		return "saturation"
	}
	return fmt.Sprintf("region(%d)", int(r))
}

// DiffGeom is the source/drain diffusion geometry of a (possibly folded)
// transistor: junction areas (m²) and perimeters (m). The perimeter
// convention matches SPICE: gate-side edges are excluded.
type DiffGeom struct {
	AD, PD float64 // drain area, perimeter
	AS, PS float64 // source area, perimeter
}

// MOS is a sized transistor instance bound to a model card.
type MOS struct {
	Card *techno.MOSCard
	W    float64 // total drawn gate width (m)
	L    float64 // drawn gate length (m)
	Geom DiffGeom
	// Mult is the device multiplier (parallel copies); 0 is treated as 1.
	Mult int
}

// M returns the effective multiplier.
func (m *MOS) M() float64 {
	if m.Mult <= 0 {
		return 1
	}
	return float64(m.Mult)
}

// Leff returns the effective channel length.
func (m *MOS) Leff() float64 {
	l := m.L - 2*m.Card.LD
	if l < 1e-9 {
		l = 1e-9
	}
	return l
}

// OP is a bias-point evaluation of a transistor.
type OP struct {
	ID  float64 // drain current (A); NMOS: into drain, PMOS: out of drain
	VGS float64 // with device-type sign (PMOS values are negative)
	VDS float64
	VBS float64

	Gm  float64 // ∂ID/∂VGS (S), always ≥ 0
	Gds float64 // ∂ID/∂VDS (S), always ≥ 0
	Gmb float64 // ∂ID/∂VBS (S), always ≥ 0

	VTH    float64 // threshold incl. body effect (magnitude, V)
	Veff   float64 // effective gate overdrive |VGS|−VTH (V, may be < 0)
	VdsSat float64 // saturation voltage estimate (V, magnitude)
	Region Region

	Swapped bool // true if drain and source were exchanged internally
}

const (
	// dv is the step for numerical derivatives. The model is smooth, so
	// central differences at 1 µV give ~9 significant digits.
	dv = 1e-6
)

// softPlus is a smooth max(x,0): 0.5*(x+sqrt(x²+eps)).
func softPlus(x, eps float64) float64 {
	return 0.5 * (x + math.Sqrt(x*x+eps))
}

// lnOnePlusExp computes ln(1+e^x) without overflow.
func lnOnePlusExp(x float64) float64 {
	if x > 40 {
		return x
	}
	if x < -40 {
		return math.Exp(x)
	}
	return math.Log1p(math.Exp(x))
}

// pinchOff returns the EKV pinch-off voltage VP and slope factor n for a
// gate-bulk voltage vgb (NMOS convention).
func pinchOff(c *techno.MOSCard, vgb float64) (vp, n float64) {
	// vgp is the "effective" gate voltage; clamped smoothly at 0 so the
	// model stays defined (and smooth) deep in accumulation.
	vgp := vgb - c.VT0 + c.Phi + c.Gamma*math.Sqrt(c.Phi)
	vgp = softPlus(vgp, 1e-6)
	half := c.Gamma / 2
	vp = vgp - c.Phi - c.Gamma*(math.Sqrt(vgp+half*half)-half)
	n = 1 + c.Gamma/(2*math.Sqrt(vp+c.Phi+1e-3))
	return vp, n
}

// idsCore evaluates the raw drain current for NMOS-convention bulk-referred
// terminal voltages. vt is the thermal voltage.
func (m *MOS) idsCore(vgb, vdb, vsb, vt float64) float64 {
	c := m.Card
	vp, n := pinchOff(c, vgb)
	uf := (vp - vsb) / (2 * vt)
	ur := (vp - vdb) / (2 * vt)
	lf := lnOnePlusExp(uf)
	lr := lnOnePlusExp(ur)
	iff := lf * lf
	irr := lr * lr

	beta := c.KP * m.W * m.M() / m.Leff()
	// Mobility degradation keyed on the forward inversion voltage, the
	// continuous analogue of Veff = VGS − VTH.
	veff := 2 * vt * lf
	beta /= 1 + c.Theta*veff

	id := 2 * n * beta * vt * vt * (iff - irr)

	// Channel-length modulation as a constant Early voltage per unit
	// length, applied to the magnitude so the model stays symmetric.
	va := c.VAL * m.Leff()
	id *= 1 + math.Abs(vdb-vsb)/va
	return id
}

// Eval computes the operating point for terminal voltages given against an
// arbitrary common reference (usually ground). Works for both NMOS and
// PMOS; PMOS voltages are internally mirrored.
func (m *MOS) Eval(vg, vd, vs, vb, temp float64) OP {
	c := m.Card
	vt := techno.ThermalVoltage(temp)
	sign := c.VTSign()

	// Mirror PMOS into NMOS convention and reference to bulk.
	vgb := sign * (vg - vb)
	vdb := sign * (vd - vb)
	vsb := sign * (vs - vb)

	swapped := false
	if vdb < vsb {
		vdb, vsb = vsb, vdb
		swapped = true
	}

	id := m.idsCore(vgb, vdb, vsb, vt)

	// Numerical conductances (central differences). The model is smooth
	// by construction, making this both simple and dependable.
	gm := (m.idsCore(vgb+dv, vdb, vsb, vt) - m.idsCore(vgb-dv, vdb, vsb, vt)) / (2 * dv)
	gds := (m.idsCore(vgb, vdb+dv, vsb, vt) - m.idsCore(vgb, vdb-dv, vsb, vt)) / (2 * dv)
	// gmb = ∂ID/∂VB with gate, drain, source fixed: raising the bulk by dv
	// lowers vgb, vdb and vsb together by dv (NMOS convention), which
	// reduces the reverse body bias and raises the current.
	idUp := m.idsCore(vgb-dv, vdb-dv, vsb-dv, vt)
	idDn := m.idsCore(vgb+dv, vdb+dv, vsb+dv, vt)
	gmb := (idUp - idDn) / (2 * dv)
	if gmb < 0 {
		gmb = 0
	}

	vp, n := pinchOff(c, vgb)
	vthEff := c.VT0 + c.Gamma*(math.Sqrt(softPlus(c.Phi+vsb, 1e-9))-math.Sqrt(c.Phi))
	veff := vgb - vsb - vthEff
	vdsat := 2*vt*lnOnePlusExp((vp-vsb)/(2*vt)) + 4*vt

	region := RegionSaturation
	vds := vdb - vsb
	switch {
	case veff < -6*n*vt:
		region = RegionOff
	case veff < 2*n*vt:
		region = RegionWeak
	case vds < vdsat:
		region = RegionTriode
	}

	op := OP{
		ID:      sign * id,
		VGS:     vg - vs,
		VDS:     vd - vs,
		VBS:     vb - vs,
		Gm:      math.Abs(gm),
		Gds:     math.Abs(gds),
		Gmb:     gmb,
		VTH:     vthEff,
		Veff:    veff,
		VdsSat:  vdsat,
		Region:  region,
		Swapped: swapped,
	}
	if swapped {
		// Current direction flips when the channel conducts backwards.
		op.ID = -op.ID
	}
	return op
}

// EvalID computes only the drain current of Eval — the identical
// arithmetic path (sign mirroring, drain/source swap, idsCore) without
// the six extra idsCore calls that back the numerical conductances. The
// DC Newton solver builds its own Jacobian by differencing this value,
// so it needs nothing else; keeping the code path shared with Eval is
// what makes the result bit-identical by construction.
func (m *MOS) EvalID(vg, vd, vs, vb, temp float64) float64 {
	c := m.Card
	vt := techno.ThermalVoltage(temp)
	sign := c.VTSign()

	vgb := sign * (vg - vb)
	vdb := sign * (vd - vb)
	vsb := sign * (vs - vb)

	swapped := false
	if vdb < vsb {
		vdb, vsb = vsb, vdb
		swapped = true
	}

	id := sign * m.idsCore(vgb, vdb, vsb, vt)
	if swapped {
		id = -id
	}
	return id
}

// IDSat returns the drain current in saturation for a given overdrive,
// solving nothing: it evaluates the model at VDS = Veff + 5·n·vt, VBS as
// given. Used by the sizing tool to stay on the exact simulator model.
func (m *MOS) IDSat(veff, vsb, temp float64) float64 {
	c := m.Card
	vt := techno.ThermalVoltage(temp)
	vthEff := c.VT0 + c.Gamma*(math.Sqrt(softPlus(c.Phi+vsb, 1e-9))-math.Sqrt(c.Phi))
	vgb := veff + vthEff + vsb
	vdb := vsb + veff + 8*vt // comfortably saturated
	if veff < 0.1 {
		vdb = vsb + 0.1 + 8*vt
	}
	return m.idsCore(vgb, vdb, vsb, vt)
}

// GmAt returns gm at the same synthetic saturation bias used by IDSat.
func (m *MOS) GmAt(veff, vsb, temp float64) float64 {
	c := m.Card
	vt := techno.ThermalVoltage(temp)
	vthEff := c.VT0 + c.Gamma*(math.Sqrt(softPlus(c.Phi+vsb, 1e-9))-math.Sqrt(c.Phi))
	vgb := veff + vthEff + vsb
	vdb := vsb + veff + 8*vt
	if veff < 0.1 {
		vdb = vsb + 0.1 + 8*vt
	}
	return (m.idsCore(vgb+dv, vdb, vsb, vt) - m.idsCore(vgb-dv, vdb, vsb, vt)) / (2 * dv)
}

// SizeForCurrent returns the gate width that carries current id in
// saturation at overdrive veff and source-bulk bias vsb, by monotonic
// bisection on the exact model. Returns an error when the target is
// unreachable within [wmin, wmax].
func SizeForCurrent(card *techno.MOSCard, l, veff, vsb, id, temp, wmin, wmax float64) (float64, error) {
	if id <= 0 {
		return 0, fmt.Errorf("device: target current must be positive, got %g", id)
	}
	probe := func(w float64) float64 {
		m := MOS{Card: card, W: w, L: l}
		return m.IDSat(veff, vsb, temp) - id
	}
	lo, hi := wmin, wmax
	flo, fhi := probe(lo), probe(hi)
	if flo > 0 {
		return lo, nil // already above target at minimum width: clamp
	}
	if fhi < 0 {
		return 0, fmt.Errorf("device: W=%g m insufficient for ID=%g A at Veff=%g V (max %g A)",
			hi, id, veff, fhi+id)
	}
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if probe(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// SizeForGm returns the gate width giving transconductance gm in
// saturation at overdrive veff and source-bulk bias vsb, by bisection on
// the exact model (gm is monotone in W at fixed bias).
func SizeForGm(card *techno.MOSCard, l, veff, vsb, gm, temp, wmin, wmax float64) (float64, error) {
	if gm <= 0 {
		return 0, fmt.Errorf("device: target gm must be positive, got %g", gm)
	}
	probe := func(w float64) float64 {
		m := MOS{Card: card, W: w, L: l}
		return m.GmAt(veff, vsb, temp) - gm
	}
	lo, hi := wmin, wmax
	if probe(lo) > 0 {
		return lo, nil
	}
	if probe(hi) < 0 {
		return 0, fmt.Errorf("device: W=%g m insufficient for gm=%g S at Veff=%g V", hi, gm, veff)
	}
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if probe(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// VGSForCurrent returns the gate-source voltage (NMOS convention; PMOS
// callers mirror) that makes the device carry id at the given
// drain-source voltage, by bisection on the exact model. vsb is the
// source-bulk reverse bias.
func (m *MOS) VGSForCurrent(id, vds, vsb, temp float64) (float64, error) {
	if id <= 0 {
		return 0, fmt.Errorf("device: target current must be positive, got %g", id)
	}
	vt := techno.ThermalVoltage(temp)
	probe := func(vgs float64) float64 {
		vgb := vgs + vsb
		vdb := vsb + vds
		return m.idsCore(vgb, vdb, vsb, vt) - id
	}
	lo, hi := -0.5, 5.0
	if probe(hi) < 0 {
		return 0, fmt.Errorf("device: cannot reach ID=%g A with VGS ≤ %g V (W=%g L=%g)", id, hi, m.W, m.L)
	}
	for i := 0; i < 80; i++ {
		mid := 0.5 * (lo + hi)
		if probe(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}
