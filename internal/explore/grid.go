package explore

import (
	"fmt"
	"sort"
	"strconv"

	"loas/internal/sizing"
)

// Axes are the swept dimensions of a spec grid. An empty axis keeps the
// base spec's value; axis values are canonicalized (sorted ascending,
// deduplicated by bit pattern) so any spelling of the same grid
// enumerates — and therefore keys and reports — identically.
type Axes struct {
	GBW []float64 `json:"gbw,omitempty"` // gain-bandwidth targets (Hz)
	PM  []float64 `json:"pm,omitempty"`  // phase-margin targets (degrees)
	CL  []float64 `json:"cl,omitempty"`  // load capacitances (F)
}

// Canonicalize sorts and deduplicates every axis in place.
func (a *Axes) Canonicalize() {
	a.GBW = canonAxis(a.GBW)
	a.PM = canonAxis(a.PM)
	a.CL = canonAxis(a.CL)
}

// Points is the grid size the axes induce (empty axes count as one).
func (a Axes) Points() int {
	return max1(len(a.GBW)) * max1(len(a.PM)) * max1(len(a.CL))
}

// Validate rejects axis values outside the synthesizable domain.
func (a Axes) Validate() error {
	for _, v := range a.GBW {
		if !(v > 0) {
			return fmt.Errorf("explore: gbw axis value must be positive, got %g", v)
		}
	}
	for _, v := range a.PM {
		if !(v > 0 && v < 90) {
			return fmt.Errorf("explore: pm axis value must be in (0, 90) degrees, got %g", v)
		}
	}
	for _, v := range a.CL {
		if !(v > 0) {
			return fmt.Errorf("explore: cl axis value must be positive, got %g", v)
		}
	}
	return nil
}

func canonAxis(vs []float64) []float64 {
	if len(vs) == 0 {
		return nil
	}
	out := append([]float64(nil), vs...)
	sort.Float64s(out)
	dedup := out[:1]
	for _, v := range out[1:] {
		if v != dedup[len(dedup)-1] {
			dedup = append(dedup, v)
		}
	}
	return dedup
}

func max1(n int) int {
	if n < 1 {
		return 1
	}
	return n
}

// Grid enumerates the cartesian product of the axes over the base spec
// in canonical order (the axes are canonicalized first; GBW is the
// outer axis, CL the inner). The result is already in canonical spec
// order, so shuffling the axis values cannot change the probe list.
func Grid(base sizing.OTASpec, ax Axes) []sizing.OTASpec {
	ax.Canonicalize()
	gbw := axisOr(ax.GBW, base.GBW)
	pm := axisOr(ax.PM, base.PM)
	cl := axisOr(ax.CL, base.CL)
	out := make([]sizing.OTASpec, 0, len(gbw)*len(pm)*len(cl))
	for _, g := range gbw {
		for _, p := range pm {
			for _, c := range cl {
				s := base
				s.GBW, s.PM, s.CL = g, p, c
				out = append(out, s)
			}
		}
	}
	SortSpecs(out)
	return out
}

func axisOr(vs []float64, def float64) []float64 {
	if len(vs) == 0 {
		return []float64{def}
	}
	return vs
}

// SortSpecs puts specs into the canonical probe order: ascending,
// field by field in the canonical field order. Probing in this order —
// regardless of how the spec list was assembled — is what makes the
// front invariant under input shuffles.
func SortSpecs(specs []sizing.OTASpec) {
	sort.SliceStable(specs, func(i, j int) bool { return specLess(specs[i], specs[j]) })
}

// DedupSpecs removes exact duplicates from a canonically sorted list.
func DedupSpecs(specs []sizing.OTASpec) []sizing.OTASpec {
	if len(specs) == 0 {
		return specs
	}
	out := specs[:1]
	for _, s := range specs[1:] {
		if s != out[len(out)-1] {
			out = append(out, s)
		}
	}
	return out
}

func specFields(s sizing.OTASpec) [8]float64 {
	return [8]float64{s.VDD, s.GBW, s.PM, s.CL, s.ICMLow, s.ICMHigh, s.OutLow, s.OutHigh}
}

func specLess(a, b sizing.OTASpec) bool {
	fa, fb := specFields(a), specFields(b)
	for i := range fa {
		if fa[i] != fb[i] {
			return fa[i] < fb[i]
		}
	}
	return false
}

// SpecKey renders (topology, spec) as the canonical dedup key: hex
// floats, exact bit patterns, fixed field order — the same discipline
// as the serving layer's content-addressed request keys.
func SpecKey(topology string, s sizing.OTASpec) string {
	b := make([]byte, 0, 160)
	b = append(b, topology...)
	for _, f := range specFields(s) {
		b = append(b, '|')
		b = strconv.AppendFloat(b, f, 'x', -1, 64)
	}
	return string(b)
}
