// Package loas reproduces "Layout-Oriented Synthesis of High Performance
// Analog Circuits" (Dessouky, Louërat, Porte — DATE 2000): a flow that
// couples analog circuit sizing with procedural layout generation so that
// layout parasitics are estimated and compensated during sizing rather
// than discovered after it.
//
// The repository root holds the benchmark harness (one benchmark per
// table/figure of the paper's evaluation, see bench_test.go); the library
// lives under internal/ and the runnable entry points under cmd/loas and
// examples/. Start with README.md, DESIGN.md and EXPERIMENTS.md.
package loas
