package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loas/internal/techno"
)

const refineGoldenPath = "testdata/refine_golden.json"

// refineGoldenTargets names the refined runs the golden pins: the
// paper's folded cascode at full parasitic awareness (the case where
// the one-shot flow misses spec at a corner and refinement must close
// it), plus each registered alternative topology. MustMeet asserts the
// loop closes; the two-stage's SS-corner GBW asymptotes a hair under
// the slack-adjusted spec (tightening its GBW target also grows the
// compensation, which pulls extracted GBW back down), so its golden
// instead pins the bounded-budget best-round fallback.
var refineGoldenTargets = []struct {
	Topology string
	Case     int
	MustMeet bool
}{
	{"folded-cascode", 4, true},
	{"two-stage", 4, false},
	{"five-t", 4, true},
}

// TestRefineGolden diffs a live closed-loop refined run of every target
// topology against the committed bit-exact golden: the accepted design
// point, the per-corner extracted metrics of the accepted round, and
// the full outer-loop trajectory. Re-bless after an intentional model
// or schedule change with
//
//	go test ./internal/repro -run TestRefineGolden -update
func TestRefineGolden(t *testing.T) {
	tech := techno.Default060()
	entries := make([]GoldenRefineEntry, len(refineGoldenTargets))
	var wantRep *GoldenRefineReport
	if !*updateGolden {
		data, err := os.ReadFile(refineGoldenPath)
		if err != nil {
			t.Fatalf("missing golden file (run with -update to create): %v", err)
		}
		wantRep = &GoldenRefineReport{}
		if err := json.Unmarshal(data, wantRep); err != nil {
			t.Fatalf("corrupt golden file: %v", err)
		}
		if len(wantRep.Entries) != len(refineGoldenTargets) {
			t.Fatalf("golden has %d entries, test expects %d (re-bless with -update)",
				len(wantRep.Entries), len(refineGoldenTargets))
		}
		if wantRep.Tech != tech.Name {
			t.Fatalf("golden tech %q, live %q", wantRep.Tech, tech.Name)
		}
	}

	for i, tgt := range refineGoldenTargets {
		i, tgt := i, tgt
		t.Run(tgt.Topology, func(t *testing.T) {
			got, err := RefineGolden(tech, tgt.Topology, tgt.Case)
			if err != nil {
				t.Fatal(err)
			}
			if tgt.MustMeet && !got.Met {
				t.Fatalf("refined %s run did not meet its spec at all corners: %+v", tgt.Topology, got)
			}
			if !tgt.MustMeet && got.BestRound == 0 {
				t.Fatalf("refined %s run produced no accepted round: %+v", tgt.Topology, got)
			}
			entries[i] = *got
			if *updateGolden {
				return
			}
			if diffs := DiffRefineGolden(&wantRep.Entries[i], got); len(diffs) > 0 {
				t.Fatalf("live refined %s run diverges from %s in %d field(s):\n  %s\n(re-bless with -update if intentional)",
					tgt.Topology, refineGoldenPath, len(diffs), strings.Join(diffs, "\n  "))
			}
		})
	}

	if *updateGolden && !t.Failed() {
		rep := &GoldenRefineReport{Tech: tech.Name, Entries: entries}
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(refineGoldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(refineGoldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", refineGoldenPath)
	}
}

// TestRefineGoldenRoundTrip pins the golden schema itself: marshal →
// unmarshal → diff must be empty.
func TestRefineGoldenRoundTrip(t *testing.T) {
	e := &GoldenRefineEntry{
		Topology:  "folded-cascode",
		Case:      4,
		BestRound: 2,
		Met:       true,
		Rounds: []GoldenRefineRound{
			{Round: 1, TargetGBW: hexF(65e6), TargetPM: hexF(65), LayoutCalls: 4, WorstMargin: hexF(-0.03)},
			{Round: 2, TargetGBW: hexF(67e6), TargetPM: hexF(65.5), LayoutCalls: 4, WorstMargin: hexF(0.01), Met: true},
		},
		Itail:   hexF(1.25e-4),
		Lc:      hexF(1.2e-6),
		Devices: map[string]GoldenDevice{"M1": {W: hexF(1e-5), L: hexF(6e-7)}},
		Corners: map[string]GoldenPerf{"tt": {GBW: hexF(6.6e7), PhaseDeg: hexF(66)}},
	}
	data, err := json.Marshal(&GoldenRefineReport{Tech: "t", Entries: []GoldenRefineEntry{*e}})
	if err != nil {
		t.Fatal(err)
	}
	var back GoldenRefineReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if diffs := DiffRefineGolden(e, &back.Entries[0]); len(diffs) > 0 {
		t.Fatalf("round trip not lossless:\n  %s", strings.Join(diffs, "\n  "))
	}
	// And the differ actually fires on a single-ulp change.
	mut := back.Entries[0]
	mut.Itail = hexF(1.25e-4 * (1 + 1e-15))
	if diffs := DiffRefineGolden(e, &mut); len(diffs) != 1 {
		t.Fatalf("ulp perturbation should yield exactly one diff, got %v", diffs)
	}
}
