package meas

import (
	"fmt"
	"math"

	"loas/internal/circuit"
	"loas/internal/sim"
)

// OutputRange measures the usable output voltage range of the amplifier:
// the output span over which the incremental open-loop gain stays above
// the given fraction of its peak (devices saturated). This validates the
// output-range specification the design plan derives its cascode
// overdrives from.
func OutputRange(b Bench, keepFraction float64) (lo, hi float64, err error) {
	if keepFraction <= 0 || keepFraction >= 1 {
		keepFraction = 0.25
	}
	// Open loop: sweep the differential input through the transition.
	// With gain A, the output traverses the full range over ~VDD/A of
	// input; sweep ±4× that around the nulling point.
	ckt := b.openLoop(0, false, false)
	vdd := supplyVoltage(ckt, b.SupplyName)
	if math.IsNaN(vdd) || vdd <= 0 {
		return 0, 0, fmt.Errorf("meas: cannot determine the supply voltage")
	}

	// Rough gain from a two-point probe for the sweep span.
	probe := func(vid float64) (float64, error) {
		c := b.openLoop(vid, false, false)
		e := sim.NewEngine(c, b.Temp)
		r, err := e.OP(sim.OPOptions{NodeSet: b.nodeSet()})
		if err != nil {
			return 0, err
		}
		return r.Volt(c, b.Out), nil
	}
	v1, err := probe(-1e-3)
	if err != nil {
		return 0, 0, err
	}
	v2, err := probe(1e-3)
	if err != nil {
		return 0, 0, err
	}
	gain := math.Abs(v2-v1) / 2e-3
	if gain < 1 {
		return 0, 0, fmt.Errorf("meas: no gain transition found (|Δ| = %.3g)", math.Abs(v2-v1))
	}
	span := 4 * vdd / gain

	const n = 160
	sweepCkt := b.openLoop(0, false, false)
	// Drive the positive input around the common mode; the negative
	// input stays fixed. This sweeps vid directly.
	values := make([]float64, n)
	for i := range values {
		values[i] = b.VicmDC - span/2 + span*float64(i)/float64(n-1)
	}
	engS := sim.NewEngine(sweepCkt, b.Temp)
	results, err := engS.DCSweep("tbip", values, sim.OPOptions{NodeSet: b.nodeSet()})
	if err != nil {
		return 0, 0, err
	}
	vout := make([]float64, n)
	for i, r := range results {
		vout[i] = r.Volt(sweepCkt, b.Out)
	}

	// Incremental gain per segment; keep the output interval where it
	// stays above keepFraction of the peak.
	step := span / float64(n-1)
	slopes := make([]float64, n-1)
	var peak float64
	for i := range slopes {
		slopes[i] = math.Abs(vout[i+1]-vout[i]) / step
		if slopes[i] > peak {
			peak = slopes[i]
		}
	}
	if peak <= 0 {
		return 0, 0, fmt.Errorf("meas: flat transfer curve")
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i, s := range slopes {
		if s >= keepFraction*peak {
			a, c := vout[i], vout[i+1]
			if a > c {
				a, c = c, a
			}
			if a < lo {
				lo = a
			}
			if c > hi {
				hi = c
			}
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("meas: no high-gain region found")
	}
	return lo, hi, nil
}

// InputCMRange measures the usable input common-mode range in a
// unity-gain buffer: the input interval over which the output tracks the
// input within the given error (V). The sweep covers [0, VDD]; a lower
// limit below ground (possible for a folded-cascode PMOS input) is
// reported as the sweep floor.
func InputCMRange(b Bench, maxErr float64) (lo, hi float64, err error) {
	if maxErr <= 0 {
		maxErr = 50e-3
	}
	ckt := b.Build()
	ckt.Add(
		&circuit.Resistor{Name: "tbfb", A: b.Out, B: b.InN, R: 1.0},
		&circuit.VSource{Name: "tbip", Pos: b.InP, Neg: circuit.Ground, DC: b.VicmDC},
		&circuit.Capacitor{Name: "tbload", A: b.Out, B: circuit.Ground, C: b.CL},
	)
	vdd := supplyVoltage(ckt, b.SupplyName)
	const n = 100
	values := make([]float64, n)
	for i := range values {
		values[i] = vdd * float64(i) / float64(n-1)
	}
	eng := sim.NewEngine(ckt, b.Temp)
	results, err := eng.DCSweep("tbip", values, sim.OPOptions{NodeSet: b.nodeSet()})
	if err != nil {
		return 0, 0, err
	}
	lo, hi = math.Inf(1), math.Inf(-1)
	for i, r := range results {
		if math.Abs(r.Volt(ckt, b.Out)-values[i]) <= maxErr {
			if values[i] < lo {
				lo = values[i]
			}
			if values[i] > hi {
				hi = values[i]
			}
		}
	}
	if lo > hi {
		return 0, 0, fmt.Errorf("meas: buffer never tracks within %.0f mV", maxErr*1e3)
	}
	return lo, hi, nil
}
