package serve

import (
	"math"
	"testing"

	"loas/internal/sizing"
	"loas/internal/techno"
)

// floatEquiv reports whether two floats produce the same canonical key
// encoding: strconv's 'x' format renders every NaN bit pattern as "NaN"
// and otherwise distinguishes exact bit patterns (so +0 != -0 and 1-ulp
// perturbations differ).
func floatEquiv(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// specFields flattens an OTASpec into the 8 floats the canonical
// encoding covers, in a fixed order.
func specFields(s sizing.OTASpec) [8]float64 {
	return [8]float64{s.VDD, s.GBW, s.PM, s.CL, s.ICMLow, s.ICMHigh, s.OutLow, s.OutHigh}
}

func specFromFields(f [8]float64) sizing.OTASpec {
	return sizing.OTASpec{
		VDD: f[0], GBW: f[1], PM: f[2], CL: f[3],
		ICMLow: f[4], ICMHigh: f[5], OutLow: f[6], OutHigh: f[7],
	}
}

// FuzzCanonicalKey checks the two directions of the content-addressed
// key contract on SynthesizeRequest.cacheKey (after normalize, which is
// how the server always keys — an absent topology is canonicalized to
// the default name before hashing):
//
//   - equal requests (where "equal" treats all NaN bit patterns alike
//     and distinguishes +0 from -0) hash to equal keys, and
//   - perturbing any single spec field — including by one ulp, a sign
//     flip on zero, or into NaN — or any request field, including the
//     topology, changes the key.
//
// The fuzzer drives spec A directly, derives spec B by XORing `xorBits`
// into the bit pattern of field `field%9` (9 selects "no perturbation"),
// and compares key equality against field-wise float equivalence.
func FuzzCanonicalKey(f *testing.F) {
	// Identity, 1-ulp, signed zero, and NaN seeds around the default spec.
	d := specFields(sizing.Default65MHz())
	seed := func(field uint8, xor uint64, caseN, maxCalls uint8, skip bool, topo uint8) {
		f.Add(d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7], field, xor, caseN, maxCalls, skip, topo)
	}
	seed(9, 0, 1, 0, false, 0)                            // identical specs
	seed(0, 1, 1, 0, false, 0)                            // vdd off by one ulp
	seed(3, 1<<63, 4, 3, true, 1)                         // cl sign flip, non-default topology
	seed(6, math.Float64bits(math.NaN()), 2, 0, false, 2) // outl -> NaN-ish
	z := d
	z[6] = 0
	f.Add(z[0], z[1], z[2], z[3], z[4], z[5], z[6], z[7], uint8(6), uint64(1)<<63, uint8(1), uint8(0), false, uint8(0)) // +0 vs -0

	tech := techno.Default060()
	names := sizing.Topologies()
	f.Fuzz(func(t *testing.T, f0, f1, f2, f3, f4, f5, f6, f7 float64,
		field uint8, xorBits uint64, caseN, maxCalls uint8, skip bool, topo uint8) {
		a := [8]float64{f0, f1, f2, f3, f4, f5, f6, f7}
		b := a
		if i := int(field % 9); i < 8 {
			b[i] = math.Float64frombits(math.Float64bits(a[i]) ^ xorBits)
		}

		req := SynthesizeRequest{
			Topology:       names[int(topo)%len(names)],
			Case:           1 + int(caseN%4),
			MaxLayoutCalls: int(maxCalls % 9),
			SkipVerify:     skip,
		}
		if err := req.normalize(); err != nil {
			t.Fatalf("normalize rejected a registered topology: %v", err)
		}
		keyA := req.cacheKey(tech, specFromFields(a))
		keyB := req.cacheKey(tech, specFromFields(b))

		equiv := true
		for i := range a {
			if !floatEquiv(a[i], b[i]) {
				equiv = false
				break
			}
		}
		if (keyA == keyB) != equiv {
			t.Fatalf("spec equivalence %v but key equality %v\na=%x\nb=%x",
				equiv, keyA == keyB, a, b)
		}

		// Request-field perturbations must always change the key.
		otherTopo := names[(int(topo)+1)%len(names)]
		for _, alt := range []SynthesizeRequest{
			{Topology: req.Topology, Case: 1 + (req.Case % 4), MaxLayoutCalls: req.MaxLayoutCalls, SkipVerify: req.SkipVerify},
			{Topology: req.Topology, Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls + 1, SkipVerify: req.SkipVerify},
			{Topology: req.Topology, Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls, SkipVerify: !req.SkipVerify},
			{Topology: otherTopo, Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls, SkipVerify: req.SkipVerify},
		} {
			if alt.cacheKey(tech, specFromFields(a)) == keyA {
				t.Fatalf("request perturbation %+v did not change key (base %+v)", alt, req)
			}
		}

		// An absent topology must key identically to the explicit default
		// (normalize canonicalizes it), so existing clients keep their
		// warm cache entries.
		absent := SynthesizeRequest{Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls, SkipVerify: req.SkipVerify}
		if err := absent.normalize(); err != nil {
			t.Fatal(err)
		}
		wantEqual := req.Topology == sizing.DefaultTopology
		if (absent.cacheKey(tech, specFromFields(a)) == keyA) != wantEqual {
			t.Fatalf("absent-topology key equality = %v, want %v (topology %q)",
				!wantEqual, wantEqual, req.Topology)
		}

		// Different endpoint kinds must never collide even on one spec.
		t1 := Table1Request{}
		if t1.cacheKey(tech, specFromFields(a)) == keyA {
			t.Fatal("table1 key collided with synthesize key")
		}
	})
}
