package stack

import (
	"fmt"
	"sort"

	"loas/internal/device"
	"loas/internal/layout/geom"
	"loas/internal/layout/motif"
	"loas/internal/techno"
)

// BuildSpec describes the physical realization of a pattern.
type BuildSpec struct {
	Name string
	Type techno.MOSType
	// UnitW is the drawn width of one unit transistor (m); L the gate
	// length (m).
	UnitW, L float64
	BulkNet  string
	// Currents maps drain nets to DC current magnitude (A) for
	// reliability-driven wire sizing; the common source rail is sized for
	// the sum.
	Currents map[string]float64
}

// Stack is the generated geometry plus the electrical summary.
type Stack struct {
	Cell    *geom.Cell
	Pattern *Pattern
	// Geoms maps device name → junction geometry from the actual strips.
	Geoms map[string]device.DiffGeom
	// RailCap maps net → internal wiring capacitance (F).
	RailCap map[string]float64
	// UnitW is the realized (grid-snapped) unit gate width (m).
	UnitW  float64
	Width  int64
	Height int64
}

// Build renders the pattern into geometry and computes the per-device
// junction parasitics from the strips actually drawn.
func Build(tech *techno.Tech, p *Pattern, spec BuildSpec) (*Stack, error) {
	r := &tech.Rules
	if spec.UnitW <= 0 || spec.L <= 0 {
		return nil, fmt.Errorf("stack %s: non-positive unit size", spec.Name)
	}
	// Validate drain nets unique per device.
	seen := map[string]string{}
	for _, d := range p.Spec.Devices {
		if owner, dup := seen[d.DrainNet]; dup {
			return nil, fmt.Errorf("stack %s: drain net %q shared by %s and %s",
				spec.Name, d.DrainNet, owner, d.Name)
		}
		seen[d.DrainNet] = d.Name
	}
	// Group gate nets: at most two distinct nets (top and bottom bars).
	var gateNets []string
	for _, d := range p.Spec.Devices {
		found := false
		for _, g := range gateNets {
			if g == d.GateNet {
				found = true
			}
		}
		if !found {
			gateNets = append(gateNets, d.GateNet)
		}
	}
	if len(gateNets) > 2 {
		return nil, fmt.Errorf("stack %s: %d distinct gate nets; a single row supports 2",
			spec.Name, len(gateNets))
	}

	lNM := r.SnapNM(techno.MetersToNM(spec.L))
	if lNM < r.PolyWidth {
		lNM = r.PolyWidth
	}
	wuNM := r.SnapNM(techno.MetersToNM(spec.UnitW))
	if wuNM < r.ActiveWidth {
		wuNM = r.ActiveWidth
	}
	stripW := r.SnapNM(techno.MetersToNM(tech.DiffExtContacted))

	cell := geom.NewCell(spec.Name)
	n := len(p.Units)

	// x positions.
	stripX := make([]int64, n+1)
	gateX := make([]int64, n)
	x := int64(0)
	for i := 0; i <= n; i++ {
		stripX[i] = x
		x += stripW
		if i < n {
			gateX[i] = x
			x += lNM
		}
	}
	totalW := x

	// Vertical stackup (bottom-up): tap row, source rail, bottom gate
	// bar, active row, top gate bar, drain rails (metal2). Fingers that
	// do not connect to a bar stop PolySpace short of it.
	yActiveB := int64(0)
	yActiveT := wuNM
	polyExt := r.PolyExtGate
	topBarB := yActiveT + polyExt + r.PolySpace
	topBarT := topBarB + r.PolyWidth
	botBarT := yActiveB - polyExt - r.PolySpace
	botBarB := botBarT - r.PolyWidth

	var totalI float64
	for _, i := range spec.Currents {
		totalI += i
	}
	srcRailW := motif.WireWidthNM(tech, totalI)
	// The source rail hosts the dummy-gate tie contacts, so it must
	// enclose a contact.
	if minRail := r.SnapNM(r.ContactSize + 2*r.ContactMetalEnc); srcRailW < minRail {
		srcRailW = minRail
	}
	srcRailT := botBarB - r.Metal1Space
	srcRailB := srcRailT - srcRailW

	// Distinct drain nets in first-appearance order for rail stacking.
	var drainNets []string
	for _, d := range p.Spec.Devices {
		drainNets = append(drainNets, d.DrainNet)
	}
	sort.Strings(drainNets)
	railY := map[string][2]int64{}
	y := topBarT + r.Metal2Space
	for _, net := range drainNets {
		w := r.Metal2Width
		if need := motif.WireWidthNM(tech, spec.Currents[net]); need > w {
			w = need
		}
		railY[net] = [2]int64{y, y + w}
		y += w + r.Metal2Space
	}

	railCap := map[string]float64{}
	addM1 := func(net string, rect geom.Rect) {
		railCap[net] += geom.WireCapM(rect, tech.Wire.CAreaM1, tech.Wire.CFringeM1)
	}
	addM2 := func(net string, rect geom.Rect) {
		railCap[net] += geom.WireCapM(rect, tech.Wire.CAreaM2, tech.Wire.CFringeM2)
	}
	addPoly := func(net string, rect geom.Rect) {
		railCap[net] += geom.WireCapM(rect, tech.Wire.CPolyArea, tech.Wire.CPolyFringe)
	}

	// Active row.
	cell.Add(techno.LayerActive, geom.Rect{L: 0, B: yActiveB, R: totalW, T: yActiveT}, "")

	// Gate fingers. Dummies tie into the source rail (they sit next to a
	// source strip, so VGS = 0 keeps them off); fingers of the first
	// gate net rise to the top bar, of the second net drop to the bottom
	// bar, and everything else stops PolySpace clear of both bars.
	sourceNet := p.Spec.SourceNet
	var botSpanL, botSpanR int64 = 1 << 62, -(1 << 62)
	for i, u := range p.Units {
		if u.IsDummy() {
			continue
		}
		if p.Spec.Devices[u.Dev].GateNet != gateNets[0] {
			if gateX[i] < botSpanL {
				botSpanL = gateX[i]
			}
			if gateX[i]+lNM > botSpanR {
				botSpanR = gateX[i] + lNM
			}
		}
	}
	for i, u := range p.Units {
		g := geom.Rect{L: gateX[i], B: yActiveB - polyExt, R: gateX[i] + lNM, T: yActiveT + polyExt}
		switch {
		case u.IsDummy():
			// Dummies extend down into the source rail and contact it.
			// They must not cross the (trimmed) bottom gate bar.
			if len(gateNets) == 2 && g.L < botSpanR && g.R > botSpanL {
				// An interior dummy inside the bottom-bar span would
				// short the bar; the pattern generator avoids this for
				// the supported pair/mirror stacks.
				panic(fmt.Sprintf("stack %s: dummy at position %d crosses the bottom gate bar", spec.Name, i))
			}
			g.B = srcRailB
			cell.Add(techno.LayerPoly, g, sourceNet)
			cell.Add(techno.LayerContact,
				geom.XYWH(r.SnapDownNM(g.L+(lNM-r.ContactSize)/2),
					r.SnapDownNM((srcRailB+srcRailT-r.ContactSize)/2),
					r.ContactSize, r.ContactSize), sourceNet)
		default:
			dev := p.Spec.Devices[u.Dev]
			if dev.GateNet == gateNets[0] {
				g.T = topBarT
			} else {
				g.B = botBarB
			}
			cell.Add(techno.LayerPoly, g, dev.GateNet)
		}
	}

	// Gate bars.
	topBar := geom.Rect{L: -(stripW + r.Metal1Space), B: topBarB, R: totalW, T: topBarT}
	cell.Add(techno.LayerPoly, topBar, gateNets[0])
	addPoly(gateNets[0], topBar)
	gPad := geom.Rect{L: topBar.L, B: topBarB, R: topBar.L + r.ContactSize + 2*r.ContactPolyEnc, T: topBarT}
	cell.Add(techno.LayerContact,
		geom.XYWH(gPad.L+r.ContactPolyEnc, topBarB+(topBarT-topBarB-r.ContactSize)/2,
			r.ContactSize, r.ContactSize), gateNets[0])
	gPadM := motif.EnsureMinDim(gPad, r.Metal1Width, r.Grid)
	cell.Add(techno.LayerMetal1, gPadM, gateNets[0])
	cell.AddPort("G0", gateNets[0], techno.LayerMetal1, gPadM)

	tapH := r.ContactSize + 2*r.ContactActiveEnc
	tapB := srcRailB - r.ActiveSpace - tapH
	var stub geom.Rect // poly stub carrying the bottom bar to its pad
	if len(gateNets) == 2 {
		// The bar spans only its own fingers so dummies can pass on
		// either side; its contact rides a poly stub from the leftmost
		// finger down past the tap row.
		botBar := geom.Rect{L: botSpanL, B: botBarB, R: botSpanR, T: botBarT}
		cell.Add(techno.LayerPoly, botBar, gateNets[1])
		addPoly(gateNets[1], botBar)
		padSize := r.ContactSize + 2*r.ContactPolyEnc
		padB := tapB - r.Metal1Space - padSize
		stub = geom.Rect{L: botSpanL, B: padB, R: botSpanL + lNM, T: botBarB}
		cell.Add(techno.LayerPoly, stub, gateNets[1])
		gPad2 := geom.Rect{L: r.SnapDownNM(stub.L + (lNM-padSize)/2), B: padB,
			R: r.SnapDownNM(stub.L+(lNM-padSize)/2) + padSize, T: padB + padSize}
		cell.Add(techno.LayerPoly, gPad2, gateNets[1])
		cell.Add(techno.LayerContact,
			geom.XYWH(gPad2.L+r.ContactPolyEnc, gPad2.B+r.ContactPolyEnc,
				r.ContactSize, r.ContactSize), gateNets[1])
		gPad2M := motif.EnsureMinDim(gPad2, r.Metal1Width, r.Grid)
		cell.Add(techno.LayerMetal1, gPad2M, gateNets[1])
		cell.AddPort("G1", gateNets[1], techno.LayerMetal1, gPad2M)
	}

	// Strips: contacts + straps to rails.
	fit := contactFitStack(r, wuNM)
	for i := 0; i <= n; i++ {
		net := p.Strips[i]
		cx := r.SnapDownNM(stripX[i] + stripW/2)
		stripCur := spec.Currents[net]
		if net == sourceNet {
			stripCur = totalI
		}
		nStrips := stripCountForNet(p, net)
		perStrip := stripCur
		if nStrips > 0 {
			perStrip = stripCur / float64(nStrips)
		}
		ncont := motif.ContactsForCurrent(tech, perStrip, fit)
		pitch := r.ContactSize + r.ContactSpace
		colH := int64(ncont)*pitch - r.ContactSpace
		y0 := r.SnapDownNM(yActiveB + (wuNM-colH)/2)
		if y0 < yActiveB+r.ContactActiveEnc {
			y0 = yActiveB + r.ContactActiveEnc
		}
		for k := 0; k < ncont; k++ {
			cell.Add(techno.LayerContact,
				geom.XYWH(cx-r.ContactSize/2, y0+int64(k)*pitch, r.ContactSize, r.ContactSize), net)
		}
		strapW := r.ContactSize + 2*r.ContactMetalEnc
		if need := motif.WireWidthNM(tech, perStrip); need > strapW {
			strapW = need
		}
		if net == sourceNet {
			strap := geom.Rect{L: cx - strapW/2, B: srcRailB, R: cx + strapW/2, T: yActiveT}
			cell.Add(techno.LayerMetal1, strap, net)
			addM1(net, strap)
			continue
		}
		ry := railY[net]
		strap := geom.Rect{L: cx - strapW/2, B: yActiveB, R: cx + strapW/2, T: ry[1]}
		cell.Add(techno.LayerMetal1, strap, net)
		addM1(net, strap)
		cell.Add(techno.LayerVia1,
			geom.XYWH(cx-r.Via1Size/2, r.SnapDownNM((ry[0]+ry[1])/2-r.Via1Size/2), r.Via1Size, r.Via1Size), net)
	}

	// Rails.
	sRail := geom.Rect{L: 0, B: srcRailB, R: totalW, T: srcRailT}
	cell.Add(techno.LayerMetal1, sRail, sourceNet)
	addM1(sourceNet, sRail)
	cell.AddPort("S", sourceNet, techno.LayerMetal1, sRail)
	for _, net := range drainNets {
		ry := railY[net]
		rail := geom.Rect{L: 0, B: ry[0], R: totalW, T: ry[1]}
		cell.Add(techno.LayerMetal2, rail, net)
		addM2(net, rail)
		cell.AddPort("D_"+net, net, techno.LayerMetal2, rail)
	}

	// Bulk tap row + implant + well.
	imp := techno.LayerNImplant
	if spec.Type == techno.PMOS {
		imp = techno.LayerPImplant
	}
	cell.Add(imp, geom.Rect{L: -r.ContactActiveEnc, B: yActiveB - r.ContactActiveEnc,
		R: totalW + r.ContactActiveEnc, T: yActiveT + r.ContactActiveEnc}, "")
	tapRect := geom.Rect{L: 0, B: tapB, R: totalW, T: tapB + tapH}
	cell.Add(techno.LayerActive, tapRect, spec.BulkNet)
	cell.Add(techno.LayerMetal1, tapRect, spec.BulkNet)
	cell.AddPort("B", spec.BulkNet, techno.LayerMetal1, tapRect)
	nTaps := int(totalW / (2 * (r.ContactSize + r.ContactSpace)))
	if nTaps < 1 {
		nTaps = 1
	}
	for k := 0; k < nTaps; k++ {
		cx := r.SnapDownNM(totalW * int64(2*k+1) / int64(2*nTaps))
		ct := geom.XYWH(cx-r.ContactSize/2, tapB+r.ContactActiveEnc, r.ContactSize, r.ContactSize)
		// The bottom-bar stub passes through the tap row: keep tap
		// contacts clear of it.
		if stub.Valid() && ct.Expand(r.ContactToGate).Intersects(stub) {
			continue
		}
		cell.Add(techno.LayerContact, ct, spec.BulkNet)
	}
	if spec.Type == techno.PMOS {
		bb := cell.BBox()
		cell.Add(techno.LayerNWell, bb.Expand(r.NWellEncActive), spec.BulkNet)
	}
	st := &Stack{
		Cell:    cell,
		Pattern: p,
		Geoms:   stripGeoms(tech, p, spec, wuNM, stripW),
		RailCap: railCap,
		UnitW:   techno.NMToMeters(wuNM),
	}
	bb := cell.BBox()
	st.Width, st.Height = bb.W(), bb.H()
	return st, nil
}

func contactFitStack(r *techno.Rules, h int64) int {
	usable := h - 2*r.ContactActiveEnc
	if usable < r.ContactSize {
		return 1
	}
	return int((usable-r.ContactSize)/(r.ContactSize+r.ContactSpace)) + 1
}

// stripCountForNet counts strips carrying a net.
func stripCountForNet(p *Pattern, net string) int {
	n := 0
	for _, s := range p.Strips {
		if s == net {
			n++
		}
	}
	return n
}

// stripGeoms computes per-device junction geometry from the strip list.
// Strip bottom area = unitW·stripW; perimeter = the two horizontal edges
// plus any vertical edge not covered by a gate (only stack ends; dummy
// gates cover their edges like real ones). The common source net is
// divided among devices in proportion to their unit counts.
func stripGeoms(tech *techno.Tech, p *Pattern, spec BuildSpec, wuNM, stripWNM int64) map[string]device.DiffGeom {
	wu := techno.NMToMeters(wuNM)
	sw := techno.NMToMeters(stripWNM)
	type ap struct{ a, p float64 }
	nets := map[string]ap{}
	last := len(p.Strips) - 1
	for i, net := range p.Strips {
		g := nets[net]
		g.a += wu * sw
		g.p += 2 * sw
		if i == 0 || i == last {
			g.p += wu
		}
		nets[net] = g
	}

	out := map[string]device.DiffGeom{}
	src := nets[p.Spec.SourceNet]
	var totalUnits int
	for _, d := range p.Spec.Devices {
		totalUnits += d.Units
	}
	for _, d := range p.Spec.Devices {
		dg := nets[d.DrainNet]
		share := float64(d.Units) / float64(totalUnits)
		out[d.Name] = device.DiffGeom{
			AD: dg.a, PD: dg.p,
			AS: src.a * share, PS: src.p * share,
		}
	}
	return out
}

// WellAreaM2 returns n-well area (m²) and perimeter (m) of the stack.
func (s *Stack) WellAreaM2() (area, perim float64) {
	for _, sh := range s.Cell.Shapes {
		if sh.Layer == techno.LayerNWell {
			area += sh.R.AreaM2()
			perim += sh.R.PerimM()
		}
	}
	return area, perim
}
