// benchsnap records a perf-trajectory snapshot: it runs the repo's
// figure/table benchmark set once and writes BENCH_9.json mapping each
// benchmark to its ns/op plus every custom metric the benchmark
// reported (gbw_MHz, area_um2, layout_calls, ...). Custom metrics are
// the reproduced paper quantities — deterministic across runs — so they
// are stored twice: as a decimal for humans and as a hex-exact float
// (strconv 'x' format) so a future PR can detect a one-ULP drift that
// decimal rounding would hide. ns/op is wall-clock and inherently
// noisy; it records the trajectory, not a contract.
//
// Usage:
//
//	go run ./cmd/benchsnap [-bench REGEX] [-o BENCH_9.json] [-dir .]
//	go run ./cmd/benchsnap diff [-tol F] [-strict-nsop] [-json] OLD.json NEW.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"sort"
	"strconv"
	"strings"
)

// defaultBenchSet names the deterministic figure/table benchmarks plus
// the batch cold/warm pair (its backend_runs metric is the dedup
// contract; its ns/op is trajectory), the end-to-end cold-path pair
// (Table1AllCases, ServeSynthesizeCold) and the per-stage cache
// benchmarks whose cold/warm ratios attribute the cold-path speedup to
// its four cache layers. The Layout(Rows|Slicing)(Cold|Warm)* pairs are
// the per-backend A/B: their area_um2/cap_fF metrics record which
// layout style wins each topology, their cold/warm ratios each
// backend's session reuse. The remaining serve and Monte-Carlo benches
// are excluded by default: their value is the serial/parallel and
// cold/hot *ratios*, which a single -benchtime 1x pass cannot measure
// meaningfully.
const defaultBenchSet = "Fig2CapReduction|Fig3CurrentMirror|Table1Case[1-4]$" +
	"|Fig5Layout|SCIntegrator|ConvergenceTrace|TwoStageSizing" +
	"|AblationFoldStyle|AblationEvalMethod|AblationShapeConstraint" +
	"|BatchSynthesize50Cold|BatchSynthesize50Warm" +
	"|Table1AllCases$|ServeSynthesizeCold$" +
	"|ModelCardEval$|ModelCardEvalID$|SizeBisectionCold|SizeBisectionMemoHit" +
	"|LayoutPlanCold|LayoutPlanSessionWarm|ShapeFunctionCold|ShapeFunctionCached" +
	"|MCSamplePerSolveRebuild|MCSampleBatched" +
	"|Layout(Rows|Slicing)(Cold|Warm)(FiveT|FoldedCascode|TwoStage)"

// metric is one reported benchmark quantity.
type metric struct {
	Value float64 `json:"value"`
	Hex   string  `json:"hex"`
}

// benchResult is one benchmark's snapshot entry.
type benchResult struct {
	NsPerOp float64           `json:"ns_op"`
	Metrics map[string]metric `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchsnap:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) > 0 && args[0] == "diff" {
		return runDiff(args[1:])
	}
	fs := flag.NewFlagSet("benchsnap", flag.ExitOnError)
	pattern := fs.String("bench", defaultBenchSet, "benchmark regex to snapshot")
	outPath := fs.String("o", "BENCH_9.json", "output file")
	dir := fs.String("dir", ".", "package directory holding the benchmarks")
	benchtime := fs.String("benchtime", "1x", "go test -benchtime value")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cmd := exec.Command("go", "test", "-run", "^$", "-bench", *pattern,
		"-benchtime", *benchtime, "-count", "1", ".")
	cmd.Dir = *dir
	out, err := cmd.CombinedOutput()
	if err != nil {
		return fmt.Errorf("go test -bench: %v\n%s", err, out)
	}
	results, err := parseBenchOutput(string(out))
	if err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmarks matched %q", *pattern)
	}

	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(*outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	names := make([]string, 0, len(results))
	for n := range results {
		names = append(names, n)
	}
	sort.Strings(names)
	fmt.Printf("benchsnap: wrote %s (%d benchmarks: %s)\n",
		*outPath, len(results), strings.Join(names, ", "))
	return nil
}

// parseBenchOutput extracts result lines from `go test -bench` output.
// A line looks like:
//
//	BenchmarkFig5Layout-8    1    8123456 ns/op    10169 area_um2    6.0 layout_calls
//
// The -N GOMAXPROCS suffix is stripped so snapshots diff cleanly across
// machines with different core counts.
func parseBenchOutput(out string) (map[string]benchResult, error) {
	results := map[string]benchResult{}
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i]
		}
		// fields[1] is the iteration count; the rest are (value, unit) pairs.
		res := benchResult{Metrics: map[string]metric{}}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("bench line %q: bad value %q: %v", line, fields[i], err)
			}
			unit := fields[i+1]
			if unit == "ns/op" {
				res.NsPerOp = v
				continue
			}
			res.Metrics[unit] = metric{Value: v, Hex: strconv.FormatFloat(v, 'x', -1, 64)}
		}
		if len(res.Metrics) == 0 {
			res.Metrics = nil
		}
		results[name] = res
	}
	return results, nil
}
