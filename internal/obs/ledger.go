package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"sync"
)

// The run ledger is the persistent synthesis history: one JSONL record
// per completed run (cold, cache-hit, dedup-joined or failed; CLI or
// daemon), appended crash-safely to a size-rotated on-disk file. The
// daemon replays a bounded tail on open so GET /v1/runs survives
// restarts; `loas runs` and future mining tools read the same format.
//
// Crash-safety model: every record is one write(2) of a full line, so a
// torn write can only corrupt the file's tail. The reader skips any
// line that does not decode to a RunRecord — a truncated final line is
// data loss of one record, never a fatal error.

// RunRecord is one completed run: identity, what ran, how it ended, and
// the full span tree + convergence iterations of the execution. It is
// both the ledger's line format and the GET /v1/runs/{id} payload.
type RunRecord struct {
	// ID is unique within one ledger lineage ("run-000042"); Seq is its
	// monotone sequence number, continued across daemon restarts.
	ID  string `json:"id"`
	Seq int64  `json:"seq"`
	// StartUnixNS timestamps the run start (wall clock).
	StartUnixNS int64 `json:"start_unix_ns"`
	// Source tells who executed the run: "daemon" or "cli".
	Source string `json:"source"`
	// Kind is the request family: synthesize | table1 | mc | layout.svg |
	// batch | explore.
	Kind     string `json:"kind"`
	Topology string `json:"topology,omitempty"`
	// Layout names the layout backend that served the run's
	// placement/routing stage; empty for the default (slicing).
	Layout string `json:"layout,omitempty"`
	Case   int    `json:"case,omitempty"`
	// Parent links a child run (one batch item, one explore probe) back
	// to the batch/explore run that spawned it. Empty for top-level runs.
	Parent string `json:"parent,omitempty"`
	// CacheKey is the content address of the result; SpecDigest hashes
	// just (tech, spec) so runs of the same target correlate across
	// request kinds.
	CacheKey   string `json:"cache_key,omitempty"`
	SpecDigest string `json:"spec_digest,omitempty"`
	// Outcome labels how the run ended: "ok" (cold execution), as
	// "cache-hit" (byte replay), "dedup" (joined an in-flight identical
	// run) or "error".
	Outcome    string `json:"outcome"`
	Error      string `json:"error,omitempty"`
	DurationNS int64  `json:"duration_ns"`
	// Converged / LayoutCalls / Bytes summarize the result: parasitic
	// fixpoint reached, layout-call count, response body size.
	Converged   bool `json:"converged,omitempty"`
	LayoutCalls int  `json:"layout_calls,omitempty"`
	Bytes       int  `json:"bytes,omitempty"`
	// Request is the canonicalized request body that produced this run
	// (compact JSON, recorded after normalization with the resolved spec
	// embedded) — what `loas replay` re-issues. Absent for GET-style
	// runs and for bodies over the daemon's recording bound.
	Request json.RawMessage `json:"request,omitempty"`
	// BodySHA256 is the hex SHA-256 of the response body; replay checks
	// byte-identity of replayed responses against it.
	BodySHA256 string `json:"body_sha256,omitempty"`
	// Spans is the request-lifecycle tree; Iterations the convergence
	// trace (cold runs only — replays carry no new iterations).
	Spans      []SpanRecord `json:"spans,omitempty"`
	Iterations []Iteration  `json:"iterations,omitempty"`
}

// EncodeRunRecord renders rec as its canonical ledger line (compact
// JSON + newline). The encoding round-trips byte-identically through
// DecodeRunRecords — pinned by FuzzLedgerDecode.
func EncodeRunRecord(rec RunRecord) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetEscapeHTML(false)
	if err := enc.Encode(rec); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeRunRecords parses JSONL data, skipping lines that do not decode
// (torn tail after a crash, hand-edited junk). If max > 0 only the last
// max records are kept. Never panics, never returns an error: a ledger
// is history, and unreadable history is dropped, not fatal.
func DecodeRunRecords(data []byte, max int) []RunRecord {
	var out []RunRecord
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec RunRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			continue
		}
		if rec.ID == "" && rec.Seq == 0 && rec.Kind == "" {
			continue // decoded but empty — not a run record
		}
		out = append(out, rec)
	}
	if max > 0 && len(out) > max {
		out = out[len(out)-max:]
	}
	return out
}

// ReadLedger reads the records of the ledger at path without opening it
// for append: the rotated <path>.1 generation first, then the active
// file, in write order. max > 0 keeps only the newest max records. This
// is the replay tool's loader — read-only, so it is safe against a
// ledger another process is still appending to (at worst the torn tail
// line is skipped, like any crash tail).
func ReadLedger(path string, max int) []RunRecord {
	var all []RunRecord
	for _, p := range []string{path + ".1", path} {
		data, err := os.ReadFile(p)
		if err != nil {
			continue // missing generation
		}
		all = append(all, DecodeRunRecords(data, 0)...)
	}
	if max > 0 && len(all) > max {
		all = all[len(all)-max:]
	}
	return all
}

// LedgerOptions sizes a ledger. Zero values mean defaults.
type LedgerOptions struct {
	// MaxBytes triggers rotation: when the active file exceeds it, the
	// file is renamed to <path>.1 (replacing the previous generation)
	// and a fresh file is started. Default 8 MiB.
	MaxBytes int64
	// MaxReplay bounds how many records OpenLedger reads back from disk
	// (newest win). Default 1024.
	MaxReplay int
}

func (o *LedgerOptions) defaults() {
	if o.MaxBytes <= 0 {
		o.MaxBytes = 8 << 20
	}
	if o.MaxReplay <= 0 {
		o.MaxReplay = 1024
	}
}

// Ledger is the append-side handle: open once, Append per run, Close on
// shutdown. Safe for concurrent Append.
type Ledger struct {
	mu      sync.Mutex
	path    string
	f       *os.File
	size    int64
	opts    LedgerOptions
	history []RunRecord
	lastSeq int64
}

// OpenLedger opens (creating if needed) the ledger at path and replays
// the bounded tail of its history — the rotated generation first, then
// the active file, keeping the newest MaxReplay records.
func OpenLedger(path string, opts LedgerOptions) (*Ledger, error) {
	opts.defaults()
	var all []RunRecord
	for _, p := range []string{path + ".1", path} {
		data, err := os.ReadFile(p)
		if err != nil {
			continue // missing generation: fresh ledger
		}
		all = append(all, DecodeRunRecords(data, opts.MaxReplay)...)
	}
	if len(all) > opts.MaxReplay {
		all = all[len(all)-opts.MaxReplay:]
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: open ledger: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: stat ledger: %w", err)
	}
	l := &Ledger{path: path, f: f, size: st.Size(), opts: opts, history: all}
	for _, r := range all {
		if r.Seq > l.lastSeq {
			l.lastSeq = r.Seq
		}
	}
	return l, nil
}

// History returns the records replayed at open (oldest first). The
// slice is owned by the caller.
func (l *Ledger) History() []RunRecord {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]RunRecord, len(l.history))
	copy(out, l.history)
	return out
}

// LastSeq reports the highest sequence number seen at open or appended
// since — the daemon continues numbering from here after a restart.
func (l *Ledger) LastSeq() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Append writes one record as a single line. Safe on a nil ledger
// (no-op) so call sites thread it through unconditionally.
func (l *Ledger) Append(rec RunRecord) error {
	if l == nil {
		return nil
	}
	line, err := EncodeRunRecord(rec)
	if err != nil {
		return err
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return fmt.Errorf("obs: ledger closed")
	}
	if l.size > 0 && l.size+int64(len(line)) > l.opts.MaxBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
	}
	n, err := l.f.Write(line)
	l.size += int64(n)
	if err != nil {
		return fmt.Errorf("obs: ledger append: %w", err)
	}
	if rec.Seq > l.lastSeq {
		l.lastSeq = rec.Seq
	}
	return nil
}

// rotateLocked swaps the active file out to <path>.1 (replacing any
// previous generation) and starts a fresh one.
func (l *Ledger) rotateLocked() error {
	if err := l.f.Close(); err != nil {
		return fmt.Errorf("obs: ledger rotate close: %w", err)
	}
	if err := os.Rename(l.path, l.path+".1"); err != nil {
		return fmt.Errorf("obs: ledger rotate: %w", err)
	}
	f, err := os.OpenFile(l.path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("obs: ledger reopen: %w", err)
	}
	l.f = f
	l.size = 0
	return nil
}

// Close flushes and closes the active file. Idempotent; safe on nil.
func (l *Ledger) Close() error {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return nil
	}
	err := l.f.Close()
	l.f = nil
	return err
}
