package meas

import (
	"math"
	"testing"

	"loas/internal/circuit"
	"loas/internal/sim"
	"loas/internal/techno"
)

func TestDCSweepWarmStart(t *testing.T) {
	// Sweep the input of a resistor divider: exact linear response.
	c := circuit.New("dv")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0},
		&circuit.Resistor{Name: "1", A: "a", B: "m", R: 1e3},
		&circuit.Resistor{Name: "2", A: "m", B: "0", R: 1e3},
	)
	eng := sim.NewEngine(c, techno.TempNominal)
	vals := []float64{0, 0.5, 1.0, 1.5, 2.0}
	res, err := eng.DCSweep("in", vals, sim.OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range res {
		if got := r.Volt(c, "m"); math.Abs(got-vals[i]/2) > 1e-9 {
			t.Fatalf("point %d: V(m) = %g, want %g", i, got, vals[i]/2)
		}
	}
	// The source value must be restored.
	if c.VSources()[0].DC != 0 {
		t.Fatal("sweep did not restore the source")
	}
	if _, err := eng.DCSweep("ghost", vals, sim.OPOptions{}); err == nil {
		t.Fatal("unknown source accepted")
	}
}

func TestOutputRangeCoversSpec(t *testing.T) {
	d, _ := measured(t)
	b := benchFor(d)
	lo, hi, err := OutputRange(b, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	spec := d.Spec
	// The plan derived its cascode overdrives from [OutLow, OutHigh];
	// the measured high-gain output range must cover that window.
	if lo > spec.OutLow+0.1 {
		t.Fatalf("measured low edge %.2f V above spec %.2f V", lo, spec.OutLow)
	}
	if hi < spec.OutHigh-0.1 {
		t.Fatalf("measured high edge %.2f V below spec %.2f V", hi, spec.OutHigh)
	}
	if hi-lo > d.Spec.VDD {
		t.Fatalf("range [%.2f, %.2f] exceeds the rails", lo, hi)
	}
}

func TestInputCMRange(t *testing.T) {
	d, _ := measured(t)
	b := benchFor(d)
	lo, hi, err := InputCMRange(b, 50e-3)
	if err != nil {
		t.Fatal(err)
	}
	// PMOS-input folded cascode: tracks from the bottom of the sweep
	// (true limit is below ground) up to ≈ min(ICMHigh, OutHigh).
	if lo > 0.7 {
		t.Fatalf("CM low edge %.2f V too high", lo)
	}
	if hi < 1.7 {
		t.Fatalf("CM high edge %.2f V below the ICM spec region", hi)
	}
}

// benchFor rebuilds the standard bench (helper for the range tests).
func benchFor(d interface {
	AssumedNetlist(string) *circuit.Circuit
	NodeSet() map[string]float64
}) Bench {
	tech := techno.Default060()
	return Bench{
		Build:      func() *circuit.Circuit { return d.AssumedNetlist("rng") },
		InP:        "inp",
		InN:        "inn",
		Out:        "out",
		SupplyName: "dd",
		CL:         3e-12,
		VicmDC:     0.645,
		VoutMid:    1.41,
		Temp:       tech.Temp,
		NodeSet:    d.NodeSet(),
	}
}
