// Otasynth reproduces the paper's full evaluation: Table 1 (four sizing
// cases against extracted-netlist simulation), the qualitative shape
// checks, and the Fig. 5 layout of the converged case-4 design.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"loas/internal/repro"
	"loas/internal/sizing"
	"loas/internal/techno"
)

func main() {
	tech := techno.Default060()
	spec := sizing.Default65MHz()

	// The four cases run concurrently (core.SynthesizeAll under the
	// hood), so on a multi-core machine the wall-clock printed below is
	// close to the slowest single case, not the sum of all four.
	start := time.Now()
	cases, err := repro.Table1(tech, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(repro.Table1Text(cases, spec))
	fmt.Printf("all four cases synthesized concurrently in %s wall-clock\n\n",
		time.Since(start).Round(time.Millisecond))
	if bad := repro.Table1ShapeChecks(cases, spec); len(bad) > 0 {
		fmt.Println("shape-check violations:")
		for _, s := range bad {
			fmt.Println("  -", s)
		}
	} else {
		fmt.Println("all Table-1 qualitative shape checks hold.")
	}

	fig5, err := repro.Fig5(tech, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(repro.Fig5Text(fig5))
	f, err := os.Create("ota-layout.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := fig5.WriteSVG(f); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote ota-layout.svg")
}
