package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"loas/internal/obs"
	"loas/internal/sizing"
)

// tracingStub is a stubBackend that also records its canned iterations
// into the live trace the server hands down via ctx — the behaviour the
// real StdBackend has through core.Options.Trace.
type tracingStub struct {
	stubBackend
}

func (b *tracingStub) Synthesize(ctx context.Context, spec sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	tr := obs.TraceFromContext(ctx)
	for _, it := range stubIterations {
		tr.Record(it)
	}
	return b.stubBackend.Synthesize(ctx, spec, req)
}

func getJSON(t *testing.T, url string, dst any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && dst != nil {
		if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

// TestRunsLifecycle pins the outcome labels of the three paths through
// respond: a cold run is "ok", its replay is "cache-hit", and every
// completed request shows up on /v1/runs newest first.
func TestRunsLifecycle(t *testing.T) {
	stub := &tracingStub{}
	_, ts := newStubServer(t, Config{}, stub)

	post(t, ts.URL+"/v1/synthesize", `{"case":2}`) // cold → ok
	post(t, ts.URL+"/v1/synthesize", `{"case":2}`) // replay → cache-hit
	post(t, ts.URL+"/v1/mc", `{"n":4}`)            // cold → ok

	var rep RunsReport
	getJSON(t, ts.URL+"/v1/runs", &rep)
	if rep.Total != 3 || len(rep.Runs) != 3 {
		t.Fatalf("runs = %d/%d, want 3/3", len(rep.Runs), rep.Total)
	}
	// Newest first: mc(ok), synthesize(cache-hit), synthesize(ok).
	wants := []struct{ kind, outcome string }{
		{"mc", "ok"}, {"synthesize", "cache-hit"}, {"synthesize", "ok"},
	}
	for i, w := range wants {
		r := rep.Runs[i]
		if r.Kind != w.kind || r.Outcome != w.outcome {
			t.Fatalf("run %d = %s/%s, want %s/%s", i, r.Kind, r.Outcome, w.kind, w.outcome)
		}
		if r.ID != fmt.Sprintf("run-%06d", r.Seq) {
			t.Fatalf("run %d id %q does not match seq %d", i, r.ID, r.Seq)
		}
	}
	// The cold synthesize recorded the live iterations; the cache hit
	// replayed bytes and recorded none.
	if rep.Runs[2].Iterations != len(stubIterations) || !rep.Runs[2].Converged {
		t.Fatalf("cold run summary = %+v, want %d iterations, converged", rep.Runs[2], len(stubIterations))
	}
	if rep.Runs[1].Iterations != 0 || rep.Runs[1].Converged {
		t.Fatalf("cache-hit summary = %+v, want no iterations", rep.Runs[1])
	}
}

// TestRunByIDSpanTree: GET /v1/runs/{id} returns the full span tree —
// request → cache-lookup + queue-wait + synthesize — with the phase
// durations summing to no more than the root.
func TestRunByIDSpanTree(t *testing.T) {
	stub := &tracingStub{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/synthesize", `{}`)

	var rep RunsReport
	getJSON(t, ts.URL+"/v1/runs", &rep)
	if len(rep.Runs) != 1 {
		t.Fatalf("runs = %d, want 1", len(rep.Runs))
	}
	var rec obs.RunRecord
	getJSON(t, ts.URL+"/v1/runs/"+rep.Runs[0].ID, &rec)

	if rec.Outcome != "ok" || rec.Kind != "synthesize" {
		t.Fatalf("record = %s/%s", rec.Kind, rec.Outcome)
	}
	if len(rec.Iterations) != len(stubIterations) {
		t.Fatalf("iterations = %d, want %d", len(rec.Iterations), len(stubIterations))
	}
	byName := map[string]obs.SpanRecord{}
	var root obs.SpanRecord
	for _, s := range rec.Spans {
		byName[s.Name] = s
		if s.Parent == 0 {
			root = s
		}
	}
	for _, name := range []string{"request", "cache-lookup", "queue-wait", "synthesize"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("span %q missing from tree %v", name, rec.Spans)
		}
	}
	if root.Name != "request" {
		t.Fatalf("root span = %q, want request", root.Name)
	}
	var childSum int64
	for _, name := range []string{"cache-lookup", "queue-wait", "synthesize"} {
		s := byName[name]
		if s.Parent != root.ID {
			t.Fatalf("span %q parent = %d, want root %d", name, s.Parent, root.ID)
		}
		if s.DurationNS < 0 {
			t.Fatalf("span %q has negative duration", name)
		}
		childSum += s.DurationNS
	}
	if childSum > root.DurationNS {
		t.Fatalf("phase durations (%d ns) exceed the request span (%d ns)",
			childSum, root.DurationNS)
	}
	if rec.DurationNS < root.DurationNS {
		t.Fatalf("record duration %d ns below root span %d ns", rec.DurationNS, root.DurationNS)
	}

	// Unknown run IDs are 404.
	if resp := getJSON(t, ts.URL+"/v1/runs/run-999999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown run status %d, want 404", resp.StatusCode)
	}
}

// TestRunsFilters exercises the /v1/runs query surface: kind, outcome,
// converged, min_duration, limit, and the 400s for malformed values.
func TestRunsFilters(t *testing.T) {
	stub := &tracingStub{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/synthesize", `{"case":1}`)
	post(t, ts.URL+"/v1/synthesize", `{"case":1}`) // cache-hit
	post(t, ts.URL+"/v1/mc", `{"n":4}`)            // mc: no iterations → not converged

	fetch := func(query string) RunsReport {
		t.Helper()
		var rep RunsReport
		getJSON(t, ts.URL+"/v1/runs"+query, &rep)
		return rep
	}
	if rep := fetch("?kind=mc"); len(rep.Runs) != 1 || rep.Runs[0].Kind != "mc" {
		t.Fatalf("kind filter: %+v", rep.Runs)
	}
	if rep := fetch("?outcome=cache-hit"); len(rep.Runs) != 1 || rep.Runs[0].Outcome != "cache-hit" {
		t.Fatalf("outcome filter: %+v", rep.Runs)
	}
	if rep := fetch("?converged=true"); len(rep.Runs) != 1 || rep.Runs[0].Kind != "synthesize" {
		t.Fatalf("converged filter: %+v", rep.Runs)
	}
	if rep := fetch("?limit=2"); len(rep.Runs) != 2 || rep.Total != 3 {
		t.Fatalf("limit: got %d runs, total %d", len(rep.Runs), rep.Total)
	}
	// Every run here completes in far less than a minute.
	if rep := fetch("?min_duration=1m"); len(rep.Runs) != 0 {
		t.Fatalf("min_duration filter: %+v", rep.Runs)
	}
	if rep := fetch("?topology=folded-cascode"); len(rep.Runs) != 3 {
		t.Fatalf("topology filter: %+v", rep.Runs)
	}
	for _, q := range []string{"?converged=maybe", "?min_duration=fast", "?limit=0", "?limit=x"} {
		if resp := getJSON(t, ts.URL+"/v1/runs"+q, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", q, resp.StatusCode)
		}
	}
}

// TestRunStoreBounded: the in-memory store evicts oldest-first at its
// bound, like the trace store.
func TestRunStoreBounded(t *testing.T) {
	rs := newRunStore(2)
	for i := 1; i <= 3; i++ {
		rs.add(&obs.RunRecord{ID: fmt.Sprintf("run-%06d", i), Seq: int64(i), Kind: "mc"})
	}
	if rs.len() != 2 {
		t.Fatalf("len = %d, want 2", rs.len())
	}
	if _, ok := rs.get("run-000001"); ok {
		t.Fatal("oldest run should have been evicted")
	}
	recs := rs.list(runFilter{})
	if len(recs) != 2 || recs[0].Seq != 3 || recs[1].Seq != 2 {
		t.Fatalf("list = %+v", recs)
	}
}

// TestQueueWaitHistogram: a request that reaches the backend observes
// exactly one queue-wait sample; cache hits observe none.
func TestQueueWaitHistogram(t *testing.T) {
	stub := &tracingStub{}
	_, ts := newStubServer(t, Config{}, stub)
	post(t, ts.URL+"/v1/synthesize", `{}`)
	post(t, ts.URL+"/v1/synthesize", `{}`) // hit: no queue admission

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# TYPE loas_queue_wait_seconds histogram",
		"loas_queue_wait_seconds_count 1",
		"loas_runs_stored 2",
		"loas_trace_evictions 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
