package sizing

import (
	"fmt"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/techno"
)

// BiasGen is a transistor-level bias generator for the folded-cascode
// OTA: one external reference current fans out through NMOS/PMOS mirrors
// into four diode-connected devices sized so their gate voltages hit the
// four bias targets the design plan computed. It upgrades the ideal
// voltage sources of the testbench into a circuit that tracks the process
// the way a real chip would (see core.VerifyAtCorner for the behavioural
// version of the same idea).
type BiasGen struct {
	Tech *techno.Tech
	IRef float64
	// Diode sizes for vbn, vc1, vbp, vc3 (large drops need long weak
	// devices, so each diode carries its own length); mirror widths for
	// the NMOS and PMOS fan-out devices (each output sized at its own
	// operating VDS to cancel the channel-length-modulation ratio error).
	WBN, WC1, WBP, WC3 float64
	LBN, LC1, LBP, LC3 float64
	WMirN              float64 // reference diode
	WN1, WN2           float64 // NMOS outputs feeding the PMOS diodes
	WP1, WP2           float64 // PMOS outputs feeding the NMOS diodes
	L                  float64
	// Targets records the voltages the generator was sized to produce.
	Targets map[string]float64
}

// sizeForVGS finds a diode geometry whose gate voltage at current id
// equals the target: bisection on width, lengthening the channel when
// even the minimum width is too strong (large drops need weak devices).
func sizeForVGS(card *techno.MOSCard, l, vgsTarget, id, temp, wmin, wmax float64) (w, lOut float64, err error) {
	if vgsTarget <= card.VT0 {
		return 0, 0, fmt.Errorf("sizing: bias target %.3f V below VT0 %.3f V", vgsTarget, card.VT0)
	}
	for try := 0; try < 12; try++ {
		probe := func(w float64) float64 {
			m := device.MOS{Card: card, W: w, L: l}
			vgs, err := m.VGSForCurrent(id, vgsTarget, 0, temp)
			if err != nil {
				return -1
			}
			return vgs - vgsTarget
		}
		if probe(wmin) < 0 {
			// Minimum width still conducts too well: weaken with length.
			l *= 1.5
			continue
		}
		if probe(wmax) > 0 {
			return 0, 0, fmt.Errorf("sizing: bias target %.3f V unreachable at %.3g A", vgsTarget, id)
		}
		lo, hi := wmin, wmax
		for i := 0; i < 60; i++ {
			mid := 0.5 * (lo + hi)
			if probe(mid) > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		return 0.5 * (lo + hi), l, nil
	}
	return 0, 0, fmt.Errorf("sizing: bias target %.3f V needs an implausibly weak device", vgsTarget)
}

// SizeBiasGen sizes a bias generator reproducing the design's four bias
// voltages from the reference current iref.
func SizeBiasGen(tech *techno.Tech, d *FoldedCascode, iref float64) (*BiasGen, error) {
	if iref <= 0 {
		return nil, fmt.Errorf("sizing: bias generator needs a positive reference current")
	}
	l := 1.0 * techno.Micron
	wmin := techno.NMToMeters(tech.Rules.ActiveWidth)
	wmax := 5000 * techno.Micron
	g := &BiasGen{Tech: tech, IRef: iref, L: l, Targets: map[string]float64{}}
	for k, v := range d.Bias {
		g.Targets[k] = v
	}
	vdd := d.Spec.VDD

	var err error
	if g.WBN, g.LBN, err = sizeForVGS(&tech.N, l, d.Bias[NetVBN], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("vbn: %w", err)
	}
	if g.WC1, g.LC1, err = sizeForVGS(&tech.N, l, d.Bias[NetVC1], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("vc1: %w", err)
	}
	if g.WBP, g.LBP, err = sizeForVGS(&tech.P, l, vdd-d.Bias[NetVBP], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("vbp: %w", err)
	}
	if g.WC3, g.LC3, err = sizeForVGS(&tech.P, l, vdd-d.Bias[NetVC3], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("vc3: %w", err)
	}
	if g.WMirN, err = device.SizeForCurrent(&tech.N, l, 0.25, 0, iref, tech.Temp, wmin, wmax); err != nil {
		return nil, err
	}
	// Gate voltage of the NMOS mirror, set by the reference diode whose
	// VDS equals its VGS — solved self-consistently.
	mn0 := device.MOS{Card: &tech.N, W: g.WMirN, L: l}
	vgsn := 0.45
	for i := 0; i < 8; i++ {
		vgsn, err = mn0.VGSForCurrent(iref, vgsn, 0, tech.Temp)
		if err != nil {
			return nil, err
		}
	}
	// Each mirror output is sized at the VDS its branch actually sees,
	// so the delivered current is IREF despite channel-length modulation.
	if g.WN1, err = sizeAtBias(&tech.N, l, vgsn, vdd-(vdd-d.Bias[NetVBP]), iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("n1: %w", err)
	}
	if g.WN2, err = sizeAtBias(&tech.N, l, vgsn, d.Bias[NetVC3], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("n2: %w", err)
	}
	vgsp := vdd - d.Bias[NetVBP]
	if g.WP1, err = sizeAtBias(&tech.P, l, vgsp, vdd-d.Bias[NetVBN], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("p1: %w", err)
	}
	if g.WP2, err = sizeAtBias(&tech.P, l, vgsp, vdd-d.Bias[NetVC1], iref, tech.Temp, wmin, wmax); err != nil {
		return nil, fmt.Errorf("p2: %w", err)
	}
	return g, nil
}

// sizeAtBias finds the width that delivers current id at the exact
// (NMOS-convention) bias point (vgs, vds) — current is proportional to
// width at fixed bias, so bisection converges trivially.
func sizeAtBias(card *techno.MOSCard, l, vgs, vds, id, temp, wmin, wmax float64) (float64, error) {
	sign := card.VTSign()
	probe := func(w float64) float64 {
		m := device.MOS{Card: card, W: w, L: l}
		op := m.Eval(sign*vgs, sign*vds, 0, 0, temp)
		return sign*op.ID - id
	}
	lo, hi := wmin, wmax
	if probe(lo) > 0 {
		return lo, nil
	}
	if probe(hi) < 0 {
		return 0, fmt.Errorf("sizing: %g A unreachable at vgs=%.3f vds=%.3f", id, vgs, vds)
	}
	for i := 0; i < 60; i++ {
		mid := 0.5 * (lo + hi)
		if probe(mid) < 0 {
			lo = mid
		} else {
			hi = mid
		}
	}
	return 0.5 * (lo + hi), nil
}

// AddTo wires the generator into a circuit, producing the nets vbn, vc1,
// vbp and vc3 from an ideal reference current (a bandgap substitute). The
// caller must not already drive those nets.
func (g *BiasGen) AddTo(ckt *circuit.Circuit, vddNet string) {
	tech := g.Tech
	l := g.L
	nm := func(name, dn, gn, s, b string, card *techno.MOSCard, w float64) *circuit.MOSFET {
		return &circuit.MOSFET{Name: "BG" + name, D: dn, G: gn, S: s, B: b,
			Dev: device.MOS{Card: card, W: w, L: l}}
	}
	diode := func(name, dn, s, b string, card *techno.MOSCard, w, dl float64) *circuit.MOSFET {
		return &circuit.MOSFET{Name: "BG" + name, D: dn, G: dn, S: s, B: b,
			Dev: device.MOS{Card: card, W: w, L: dl}}
	}
	ckt.Add(
		// Reference branch: IREF into an NMOS diode.
		&circuit.ISource{Name: "bgref", Pos: vddNet, Neg: "bgn", DC: g.IRef},
		nm("n0", "bgn", "bgn", circuit.Ground, circuit.Ground, &tech.N, g.WMirN),
		// NMOS mirror pulls through the two PMOS diodes.
		nm("n1", NetVBP, "bgn", circuit.Ground, circuit.Ground, &tech.N, g.WN1),
		nm("n2", NetVC3, "bgn", circuit.Ground, circuit.Ground, &tech.N, g.WN2),
		diode("pd1", NetVBP, vddNet, vddNet, &tech.P, g.WBP, g.LBP),
		diode("pd2", NetVC3, vddNet, vddNet, &tech.P, g.WC3, g.LC3),
		// PMOS mirror (from the vbp diode) pushes into the NMOS diodes.
		nm("p1", NetVBN, NetVBP, vddNet, vddNet, &tech.P, g.WP1),
		nm("p2", NetVC1, NetVBP, vddNet, vddNet, &tech.P, g.WP2),
		diode("nd1", NetVBN, circuit.Ground, circuit.Ground, &tech.N, g.WBN, g.LBN),
		diode("nd2", NetVC1, circuit.Ground, circuit.Ground, &tech.N, g.WC1, g.LC1),
		// Bypass capacitors: the diode output impedances (≈1/gm at the
		// reference current) would otherwise form poles with the cascode
		// gate capacitance of the main amplifier — the standard bias-line
		// decoupling.
		&circuit.Capacitor{Name: "bgcbn", A: NetVBN, B: circuit.Ground, C: 5e-12},
		&circuit.Capacitor{Name: "bgcc1", A: NetVC1, B: circuit.Ground, C: 5e-12},
		&circuit.Capacitor{Name: "bgcbp", A: NetVBP, B: vddNet, C: 5e-12},
		&circuit.Capacitor{Name: "bgcc3", A: NetVC3, B: vddNet, C: 5e-12},
	)
}

// NetlistWithBiasGen builds the OTA with the transistor-level bias
// generator in place of the four ideal bias sources.
func (d *FoldedCascode) NetlistWithBiasGen(name string, g *BiasGen) *circuit.Circuit {
	base := d.Netlist(name)
	out := circuit.New(name)
	for _, e := range base.Elements {
		if v, ok := e.(*circuit.VSource); ok {
			switch v.Name {
			case "bn", "bp", "c1", "c3":
				continue // replaced by the generator
			}
		}
		out.Add(e)
	}
	g.AddTo(out, NetVDD)
	return out
}
