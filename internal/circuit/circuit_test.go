package circuit

import (
	"strings"
	"testing"

	"loas/internal/device"
	"loas/internal/techno"
)

func TestNodeInterning(t *testing.T) {
	c := New("t")
	if c.Node("a") != c.Node("a") {
		t.Fatal("same name, different index")
	}
	if c.Node("0") != 0 || c.Node("gnd") != 0 || c.Node("GND") != 0 {
		t.Fatal("ground aliases broken")
	}
	if c.NumNodes() != 2 { // ground + a
		t.Fatalf("NumNodes = %d", c.NumNodes())
	}
	if c.NodeName(0) != Ground {
		t.Fatal("node 0 must be ground")
	}
	if _, ok := c.NodeIndex("missing"); ok {
		t.Fatal("phantom node")
	}
}

func TestAddInternsAndLists(t *testing.T) {
	c := New("t")
	c.Add(
		&Resistor{Name: "1", A: "x", B: "y", R: 10},
		&VSource{Name: "v", Pos: "x", Neg: "0", DC: 1},
	)
	if _, ok := c.NodeIndex("y"); !ok {
		t.Fatal("Add should intern element nodes")
	}
	if len(c.VSources()) != 1 {
		t.Fatal("VSources missing")
	}
}

func TestAddDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate element name must panic")
		}
	}()
	c := New("t")
	c.Add(&Resistor{Name: "1", A: "a", B: "b", R: 1})
	c.Add(&Resistor{Name: "1", A: "c", B: "d", R: 2})
}

func TestDuplicateAcrossKindsAllowed(t *testing.T) {
	c := New("t")
	c.Add(
		&Resistor{Name: "x", A: "a", B: "0", R: 1},
		&Capacitor{Name: "x", A: "a", B: "0", C: 1e-12},
	)
	if len(c.Elements) != 2 {
		t.Fatal("same name on different element kinds should be allowed")
	}
}

func TestFindMOS(t *testing.T) {
	tech := techno.Default060()
	c := New("t")
	m := &MOSFET{Name: "1", D: "d", G: "g", S: "0", B: "0",
		Dev: device.MOS{Card: &tech.N, W: 1e-5, L: 1e-6}}
	c.Add(m)
	if c.FindMOS("1") != m {
		t.Fatal("FindMOS failed")
	}
	if c.FindMOS("zz") != nil {
		t.Fatal("phantom MOS")
	}
	if len(c.MOSFETs()) != 1 {
		t.Fatal("MOSFETs list wrong")
	}
}

func TestExportDeck(t *testing.T) {
	tech := techno.Default060()
	c := New("deck")
	c.Add(
		&VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3, ACMag: 1},
		&Resistor{Name: "l", A: "vdd", B: "out", R: 1e4},
		&Capacitor{Name: "c", A: "out", B: "0", C: 1e-12},
		&ISource{Name: "b", Pos: "out", Neg: "0", DC: 1e-6},
		&VCVS{Name: "e", Pos: "x", Neg: "0", CPos: "out", CNeg: "0", Gain: 2},
		&MOSFET{Name: "1", D: "out", G: "vdd", S: "0", B: "0",
			Dev: device.MOS{Card: &tech.N, W: 10e-6, L: 1e-6}},
	)
	deck := c.Export()
	for _, want := range []string{
		"* deck", "Vdd vdd 0 DC 3.3 AC 1", "Rl vdd out 10000",
		"Cc out 0 1e-12", "Ib out 0 DC 1e-06", "Ee x 0 out 0 2",
		"M1 out vdd 0 0 nmos W=10u L=1u", ".end",
	} {
		if !strings.Contains(deck, want) {
			t.Fatalf("deck missing %q:\n%s", want, deck)
		}
	}
}

func TestNodeCap(t *testing.T) {
	c := New("t")
	c.Add(
		&Capacitor{Name: "1", A: "x", B: "0", C: 1e-12},
		&Capacitor{Name: "2", A: "x", B: "y", C: 2e-12},
		&Capacitor{Name: "3", A: "z", B: "0", C: 4e-12},
	)
	if got := c.NodeCap("x"); got != 3e-12 {
		t.Fatalf("NodeCap(x) = %g", got)
	}
}

func TestNodesSorted(t *testing.T) {
	c := New("t")
	c.Node("zeta")
	c.Node("alpha")
	n := c.Nodes()
	if len(n) != 2 || n[0] != "alpha" || n[1] != "zeta" {
		t.Fatalf("Nodes() = %v", n)
	}
}

func TestPulseDefaults(t *testing.T) {
	// Zero-width pulse holds V2 forever (SPICE default behaviour).
	p := &Pulse{V1: 0, V2: 1, Delay: 1e-9, Rise: 1e-10}
	if p.At(0.5e-9) != 0 {
		t.Fatal("before delay should be V1")
	}
	if p.At(1e-3) != 1 {
		t.Fatal("zero width must hold V2")
	}
	var nilPulse *Pulse
	if nilPulse.At(1) != 0 {
		t.Fatal("nil pulse should read 0")
	}
}

func TestSourceValue(t *testing.T) {
	v := &VSource{Name: "x", Pos: "a", Neg: "0", DC: 2,
		Pulse: &Pulse{V1: 0, V2: 5, Rise: 1e-12}}
	if v.Value(1) != 5 {
		t.Fatal("pulse should win in transient")
	}
	v.Pulse = nil
	if v.Value(1) != 2 {
		t.Fatal("DC fallback broken")
	}
	i := &ISource{Name: "y", Pos: "a", Neg: "0", DC: 3e-3}
	if i.Value(0.5) != 3e-3 {
		t.Fatal("ISource DC fallback broken")
	}
}
