package serve

import (
	"sync"
	"sync/atomic"

	"loas/internal/obs"
)

// TraceReport is the body of GET /v1/trace/{key}: the per-iteration
// convergence events recorded while the synthesis under that cache key
// ran. The key is the same content-addressed hash the result cache uses
// (returned to clients in the X-Loas-Key response header).
type TraceReport struct {
	Key        string          `json:"key"`
	Converged  bool            `json:"converged"`
	Iterations []obs.Iteration `json:"iterations"`
}

// traceStore retains the convergence traces of recent synthesis runs,
// keyed by cache key, bounded FIFO. Traces are tiny (a handful of
// events) so a fixed entry bound is enough; like the result cache, a
// stored trace is immutable and replayed as recorded.
type traceStore struct {
	mu        sync.Mutex
	max       int
	order     []string // insertion order for FIFO eviction
	m         map[string][]obs.Iteration
	evictions atomic.Int64 // traces dropped by the FIFO bound (loas_trace_evictions)
}

func newTraceStore(max int) *traceStore {
	if max <= 0 {
		max = 256
	}
	return &traceStore{max: max, m: map[string][]obs.Iteration{}}
}

// put stores iters under key (empty traces are ignored; re-running the
// same key refreshes the events without growing the order list).
func (ts *traceStore) put(key string, iters []obs.Iteration) {
	if len(iters) == 0 {
		return
	}
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if _, ok := ts.m[key]; !ok {
		ts.order = append(ts.order, key)
		for len(ts.order) > ts.max {
			delete(ts.m, ts.order[0])
			ts.order = ts.order[1:]
			ts.evictions.Add(1)
		}
	}
	ts.m[key] = iters
}

func (ts *traceStore) get(key string) ([]obs.Iteration, bool) {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	iters, ok := ts.m[key]
	return iters, ok
}

func (ts *traceStore) len() int {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return len(ts.m)
}
