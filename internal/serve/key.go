package serve

import (
	"crypto/sha256"
	"encoding/hex"
	"strconv"
	"strings"

	"loas/internal/sizing"
	"loas/internal/techno"
)

// Content-addressed request keys.
//
// A request is hashed to a key by a canonical, deterministic encoding:
// fields are emitted in a fixed order chosen by the code (never by map
// iteration or client JSON field order), floats are rendered with
// strconv 'x' formatting (exact bit pattern, so 65e6 and 6.5e7 collide
// and 65e6+1ulp does not), and the technology is identified by its name
// and temperature (cards are frozen after construction — DESIGN.md §4 —
// so the name pins the numbers). Anything that cannot change the bytes
// of the response is deliberately *excluded*: worker counts (the engine
// is worker-invariant by construction), timeouts, and transport
// details. Two requests with the same key may therefore share one
// synthesis and one cache slot.

type keyBuilder struct {
	b strings.Builder
}

func newKey(kind string, tech *techno.Tech) *keyBuilder {
	k := &keyBuilder{}
	k.b.WriteString("loas/1|kind=")
	k.b.WriteString(kind)
	k.b.WriteString("|tech=")
	k.b.WriteString(tech.Name)
	k.num("temp", tech.Temp)
	return k
}

func (k *keyBuilder) num(name string, v float64) {
	k.b.WriteByte('|')
	k.b.WriteString(name)
	k.b.WriteByte('=')
	k.b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
}

func (k *keyBuilder) str(name, v string) {
	k.b.WriteByte('|')
	k.b.WriteString(name)
	k.b.WriteByte('=')
	k.b.WriteString(v)
}

func (k *keyBuilder) int(name string, v int64) {
	k.b.WriteByte('|')
	k.b.WriteString(name)
	k.b.WriteByte('=')
	k.b.WriteString(strconv.FormatInt(v, 10))
}

func (k *keyBuilder) bool(name string, v bool) {
	k.b.WriteByte('|')
	k.b.WriteString(name)
	k.b.WriteByte('=')
	k.b.WriteString(strconv.FormatBool(v))
}

func (k *keyBuilder) spec(s sizing.OTASpec) {
	k.num("vdd", s.VDD)
	k.num("gbw", s.GBW)
	k.num("pm", s.PM)
	k.num("cl", s.CL)
	k.num("icml", s.ICMLow)
	k.num("icmh", s.ICMHigh)
	k.num("outl", s.OutLow)
	k.num("outh", s.OutHigh)
}

// sum finishes the canonical encoding and returns the hex SHA-256.
func (k *keyBuilder) sum() string {
	h := sha256.Sum256([]byte(k.b.String()))
	return hex.EncodeToString(h[:])
}

// specDigest hashes just (tech, spec) — no request kind or options — so
// ledger records of the same synthesis target correlate across request
// families (a Table-1 run and an MC run of the same spec share it).
func specDigest(tech *techno.Tech, spec sizing.OTASpec) string {
	k := &keyBuilder{}
	k.b.WriteString("loas/spec|tech=")
	k.b.WriteString(tech.Name)
	k.num("temp", tech.Temp)
	k.spec(spec)
	return k.sum()
}
