// Package route connects module ports across a placed floorplan with a
// channel-routing discipline that is correct by construction on a
// two-metal process:
//
//   - horizontal trunks run on metal-2 tracks inside the routing channels
//     (the module-free horizontal bands of the floorplan);
//   - vertical branches and the inter-channel spine run on metal-1, so a
//     vertical wire can cross any number of foreign trunks and module
//     metal-2 rails without shorting;
//   - a via connects a vertical wire to a trunk only where the net
//     matches.
//
// Branch x-positions are searched for metal-1 clearance against
// everything already placed (including module-internal wiring), extending
// the port rail sideways into the inter-module gap when the straight-down
// position is blocked (e.g. by a foreign substrate-tap row).
//
// Wire widths follow the electromigration rule. The router reports wiring
// capacitance per net and trunk-to-trunk coupling for the parasitic
// extractor. CAIRO's routing is likewise procedural and deterministic —
// that is what lets the paper's flow "fully determine the width and
// position of all routing wires" before any layout is generated.
package route

import (
	"fmt"
	"sort"

	"loas/internal/layout/geom"
	"loas/internal/layout/motif"
	"loas/internal/techno"
)

// Net describes one net to route.
type Net struct {
	Name string
	// Current is the DC current (A) carried by the net, for wire sizing.
	Current float64
}

// YRange is a horizontal routing channel (a module-free band).
type YRange struct{ B, T int64 }

// H returns the channel height.
func (y YRange) H() int64 { return y.T - y.B }

// Result reports the wiring added by the router.
type Result struct {
	// Wires are the added shapes (already merged into the cell as well).
	Wires []geom.Shape
	// NetCap is the wiring capacitance to substrate per net (F).
	NetCap map[string]float64
	// Coupling is the trunk/spine coupling capacitance between net pairs
	// (F); keys are ordered pairs with A < B.
	Coupling map[NetPair]float64
	// Length is the total wire length per net (m), for reports.
	Length map[string]float64
}

// NetPair is a canonically ordered pair of net names.
type NetPair struct{ A, B string }

// OrderedPair builds a canonical pair.
func OrderedPair(a, b string) NetPair {
	if a > b {
		a, b = b, a
	}
	return NetPair{A: a, B: b}
}

// Channels computes the horizontal module-free bands of a cell from the
// given obstacle rectangles (usually the placed module bounding boxes),
// including one open channel below and one above everything.
func Channels(obstacles []geom.Rect, slack int64) []YRange {
	if len(obstacles) == 0 {
		return []YRange{{B: 0, T: slack}}
	}
	type edge struct {
		y     int64
		delta int
	}
	var edges []edge
	lo, hi := obstacles[0].B, obstacles[0].T
	for _, r := range obstacles {
		edges = append(edges, edge{r.B, +1}, edge{r.T, -1})
		if r.B < lo {
			lo = r.B
		}
		if r.T > hi {
			hi = r.T
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].y != edges[j].y {
			return edges[i].y < edges[j].y
		}
		return edges[i].delta > edges[j].delta
	})
	var out []YRange
	out = append(out, YRange{B: lo - slack, T: lo})
	depth := 0
	var openAt int64
	for _, e := range edges {
		depth += e.delta
		switch {
		case depth == 0 && e.delta == -1:
			openAt = e.y
		case depth == 1 && e.delta == +1 && e.y > openAt && openAt > lo:
			if e.y-openAt > 0 {
				out = append(out, YRange{B: openAt, T: e.y})
			}
		}
	}
	out = append(out, YRange{B: hi, T: hi + slack})
	return out
}

// router holds the in-progress state.
type router struct {
	tech *techno.Tech
	cell *geom.Cell
	res  *Result
	// m1 holds every metal-1 rectangle placed so far (module wiring plus
	// routed wires) for clearance checks.
	m1 []geom.Shape
	// trunks holds placed metal-2 trunks for track assignment/coupling.
	trunks []geom.Shape
	// spines holds the left-margin vertical metal-1 spines for coupling.
	spines []geom.Shape
	// trackFill tracks the next free track per channel index.
	trackFill []int
	channels  []YRange
	bbox      geom.Rect
}

// Route wires the given nets over the cell. channels must cover the
// floorplan's module-free bands (see Channels); every port is connected
// through its nearest channel, and nets spanning several channels get a
// metal-1 spine along the left margin.
func Route(tech *techno.Tech, cell *geom.Cell, nets []Net, channels []YRange) (*Result, error) {
	if len(channels) == 0 {
		return nil, fmt.Errorf("route: no routing channels")
	}
	r := &router{
		tech: tech,
		cell: cell,
		res: &Result{
			NetCap:   map[string]float64{},
			Coupling: map[NetPair]float64{},
			Length:   map[string]float64{},
		},
		channels:  append([]YRange(nil), channels...),
		trackFill: make([]int, len(channels)),
		bbox:      cell.BBox(),
	}
	sort.Slice(r.channels, func(i, j int) bool { return r.channels[i].B < r.channels[j].B })
	for _, s := range cell.Shapes {
		if s.Layer == techno.LayerMetal1 {
			r.m1 = append(r.m1, s)
		}
	}

	ordered := append([]Net(nil), nets...)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Name < ordered[j].Name })

	spineIdx := 0
	for _, n := range ordered {
		ports := cell.PortsOnNet(n.Name)
		if len(ports) < 2 {
			continue
		}
		if err := r.routeNet(n, ports, &spineIdx); err != nil {
			return nil, err
		}
	}

	// Coupling between parallel metal-2 trunks and between the metal-1
	// spines running side by side on the margin.
	for i := 0; i < len(r.trunks); i++ {
		for j := i + 1; j < len(r.trunks); j++ {
			a, b := r.trunks[i], r.trunks[j]
			if a.Net == b.Net {
				continue
			}
			c := geom.CouplingCapM(a.R, b.R, tech.Wire.CCoupleM2, tech.Rules.Metal2Space)
			if c > 0 {
				r.res.Coupling[OrderedPair(a.Net, b.Net)] += c
			}
		}
	}
	for i := 0; i < len(r.spines); i++ {
		for j := i + 1; j < len(r.spines); j++ {
			a, b := r.spines[i], r.spines[j]
			c := geom.CouplingCapM(a.R, b.R, tech.Wire.CCoupleM1, tech.Rules.Metal1Space)
			if c > 0 {
				r.res.Coupling[OrderedPair(a.Net, b.Net)] += c
			}
		}
	}
	return r.res, nil
}

// channelFor picks the channel a port should exit into: the nearest
// channel edge in the direction away from the port's module interior.
func (r *router) channelFor(p geom.Port) int {
	cy := p.R.CenterY()
	best, bestDist := 0, int64(1)<<62
	for i, ch := range r.channels {
		var d int64
		switch {
		case cy < ch.B:
			d = ch.B - cy
		case cy > ch.T:
			d = cy - ch.T
		default:
			d = 0
		}
		if d < bestDist {
			best, bestDist = i, d
		}
	}
	return best
}

// addM1 places a metal-1 wire, recording it for clearance checks.
func (r *router) addM1(rect geom.Rect, net string) {
	r.cell.Add(techno.LayerMetal1, rect, net)
	s := geom.Shape{Layer: techno.LayerMetal1, R: rect, Net: net}
	r.m1 = append(r.m1, s)
	r.res.Wires = append(r.res.Wires, s)
	r.res.NetCap[net] += geom.WireCapM(rect, r.tech.Wire.CAreaM1, r.tech.Wire.CFringeM1)
	l := rect.W()
	if rect.H() > l {
		l = rect.H()
	}
	r.res.Length[net] += float64(l) * 1e-9
}

// addM2 places a metal-2 trunk.
func (r *router) addM2(rect geom.Rect, net string) {
	r.cell.Add(techno.LayerMetal2, rect, net)
	s := geom.Shape{Layer: techno.LayerMetal2, R: rect, Net: net}
	r.trunks = append(r.trunks, s)
	r.res.Wires = append(r.res.Wires, s)
	r.res.NetCap[net] += geom.WireCapM(rect, r.tech.Wire.CAreaM2, r.tech.Wire.CFringeM2)
	r.res.Length[net] += float64(rect.W()) * 1e-9
}

// via drops a via1 cut centred in the overlap of a vertical m1 wire and a
// trunk.
func (r *router) via(x, y int64, net string) {
	rl := &r.tech.Rules
	r.cell.Add(techno.LayerVia1,
		geom.XYWH(rl.SnapDownNM(x-rl.Via1Size/2), rl.SnapDownNM(y-rl.Via1Size/2),
			rl.Via1Size, rl.Via1Size), net)
}

// m1Clear reports whether a candidate metal-1 rect keeps spacing from all
// placed metal-1 of other nets.
func (r *router) m1Clear(cand geom.Rect, net string) bool {
	test := cand.Expand(r.tech.Rules.Metal1Space)
	for _, s := range r.m1 {
		if s.Net == net {
			continue
		}
		if test.Intersects(s.R) {
			return false
		}
	}
	return true
}

// branch connects a port vertically to trunk level trunkY (the trunk's
// vertical centre), searching for a clear x position and extending the
// port rail sideways when needed. Returns the branch x used.
func (r *router) branch(p geom.Port, w1, trunkB, trunkT int64, net string) (int64, error) {
	rl := &r.tech.Rules
	mkRects := func(x int64) (branch geom.Rect, ext geom.Rect, ok bool) {
		b := geom.Rect{L: x - w1/2, R: x + w1/2}
		if p.R.CenterY() <= trunkB {
			b.B, b.T = p.R.B, trunkT
		} else {
			b.B, b.T = trunkB, p.R.T
		}
		if !b.Valid() {
			return b, ext, false
		}
		// Rail extension when the branch leaves the port rect.
		if b.L < p.R.L || b.R > p.R.R {
			ext = geom.Rect{B: p.R.B, T: p.R.T}
			if b.R > p.R.R {
				ext.L, ext.R = p.R.R, b.R
			} else {
				ext.L, ext.R = b.L, p.R.L
			}
		}
		return b, ext, true
	}
	// Candidate positions: port centre, then alternating outward.
	span := p.R.W()/2 + 40000
	for step := int64(0); step <= span; step += rl.Grid * 4 {
		for _, sign := range []int64{1, -1} {
			if step == 0 && sign < 0 {
				continue
			}
			x := rl.SnapDownNM(p.R.CenterX() + sign*step)
			branch, ext, ok := mkRects(x)
			if !ok {
				continue
			}
			if !r.m1Clear(branch, net) {
				continue
			}
			if ext.Valid() && !r.m1Clear(ext, net) {
				continue
			}
			r.addM1(branch, net)
			if ext.Valid() {
				r.addM1(ext, net)
			}
			return x, nil
		}
	}
	return 0, fmt.Errorf("route: no clear branch position for net %s near %v", net, p.R)
}

// trunkTrack allocates the next metal-2 track in a channel and returns
// its y-range. Overflowing the channel keeps stacking upward (the caller
// sized the channels from the net count, so this is a safety valve, not
// the norm).
func (r *router) trunkTrack(ch int, w2 int64) (int64, int64) {
	rl := &r.tech.Rules
	pitch := w2 + rl.Metal2Space
	y := r.channels[ch].B + rl.Metal2Space + int64(r.trackFill[ch])*pitch
	r.trackFill[ch]++
	return y, y + w2
}

func (r *router) routeNet(n Net, ports []geom.Port, spineIdx *int) error {
	rl := &r.tech.Rules
	w1 := motif.WireWidthNM(r.tech, n.Current)
	w2 := rl.Metal2Width
	if need := motif.WireWidthNM(r.tech, n.Current); need > w2 {
		w2 = need
	}

	// Group ports by exit channel.
	byChannel := map[int][]geom.Port{}
	for _, p := range ports {
		c := r.channelFor(p)
		byChannel[c] = append(byChannel[c], p)
	}
	var chans []int
	for c := range byChannel {
		chans = append(chans, c)
	}
	sort.Ints(chans)

	needSpine := len(chans) > 1
	spineX := int64(0)
	if needSpine {
		pitch := w1 + rl.Metal1Space
		spineX = r.bbox.L - 2*rl.Metal1Space - int64(*spineIdx)*pitch - w1/2
		*spineIdx++
	}

	var spineLoY, spineHiY int64
	first := true
	for _, c := range chans {
		group := byChannel[c]
		trunkB, trunkT := r.trunkTrack(c, w2)
		// Branches first (their x positions bound the trunk).
		var xMin, xMax int64 = 1 << 62, -(1 << 62)
		for _, p := range group {
			x, err := r.branch(p, w1, trunkB, trunkT, n.Name)
			if err != nil {
				return err
			}
			r.via(x, (trunkB+trunkT)/2, n.Name)
			if x < xMin {
				xMin = x
			}
			if x > xMax {
				xMax = x
			}
		}
		if needSpine {
			if spineX < xMin {
				xMin = spineX
			}
			if spineX > xMax {
				xMax = spineX
			}
			r.via(spineX, (trunkB+trunkT)/2, n.Name)
			if first {
				spineLoY, spineHiY = trunkB, trunkT
				first = false
			}
			if trunkB < spineLoY {
				spineLoY = trunkB
			}
			if trunkT > spineHiY {
				spineHiY = trunkT
			}
		}
		trunk := geom.Rect{L: xMin - w1, B: trunkB, R: xMax + w1, T: trunkT}
		if trunk.W() < rl.Metal2Width {
			trunk.R = trunk.L + rl.Metal2Width
		}
		r.addM2(trunk, n.Name)
	}

	if needSpine {
		spine := geom.Rect{L: spineX - w1/2, B: spineLoY, R: spineX + w1/2, T: spineHiY}
		if !r.m1Clear(spine, n.Name) {
			return fmt.Errorf("route: spine collision for net %s", n.Name)
		}
		r.addM1(spine, n.Name)
		r.spines = append(r.spines, geom.Shape{Layer: techno.LayerMetal1, R: spine, Net: n.Name})
	}
	return nil
}
