// Memoized device evaluation. The sizing plans re-evaluate the exact
// model at literally identical arguments many times per synthesis: the
// node-capacitance estimate asks for the same device operating point
// several times per inner iteration, the bias solver repeats the same
// VGS bisection once per sizing pass, and converged sizing↔layout
// iterations repeat whole bisections argument-for-argument. A Memo
// short-circuits only these *exact* repeats — keys are hex-formatted
// float64 bit patterns, never rounded or quantized — so a hit returns
// the very float64 the underlying computation would produce and the
// cache is invisible in the results by construction.
//
// A Memo is created per synthesis run and handed down through the
// sizing.ParasiticState; a nil *Memo is valid everywhere and simply
// computes (the disabled/reference path of the differential harness).
package device

import (
	"strconv"
	"strings"
	"sync"

	"loas/internal/obs"
	"loas/internal/techno"
)

// memo cache effectiveness, exposed on /metrics. Hits and misses count
// every lookup through any Memo instance process-wide.
var (
	memoHits = obs.Default.Counter("loas_eval_memo_hits_total",
		"exact-key device-evaluation memo hits (all synthesis runs)")
	memoMisses = obs.Default.Counter("loas_eval_memo_misses_total",
		"exact-key device-evaluation memo misses (all synthesis runs)")
)

// DefaultMemoEntries bounds a Memo that was created with size <= 0. A
// synthesis run touches a few thousand distinct evaluation points; the
// bound exists so a pathological workload degrades to FIFO recycling
// instead of unbounded growth.
const DefaultMemoEntries = 1 << 14

// Memo is a bounded exact-key cache over the pure device-model
// computations (width/bias bisections and design-point evaluations).
// The zero value is not usable; create instances with NewMemo. All
// methods are safe for concurrent use and valid on a nil receiver
// (nil = caching disabled, every call computes).
type Memo struct {
	mu      sync.Mutex
	max     int
	entries map[string]any
	order   []string // insertion order, for FIFO eviction
	evict   int      // next order index to evict
	cardID  map[*techno.MOSCard]string
	hits    int64
	misses  int64
}

// NewMemo returns an empty memo bounded to max entries (<= 0 selects
// DefaultMemoEntries).
func NewMemo(max int) *Memo {
	if max <= 0 {
		max = DefaultMemoEntries
	}
	return &Memo{
		max:     max,
		entries: make(map[string]any),
		cardID:  make(map[*techno.MOSCard]string),
	}
}

// Stats reports lifetime hit/miss counts and the current entry count.
func (mc *Memo) Stats() (hits, misses int64, size int) {
	if mc == nil {
		return 0, 0, 0
	}
	mc.mu.Lock()
	defer mc.mu.Unlock()
	return mc.hits, mc.misses, len(mc.entries)
}

// hexF renders a float64 exactly: distinct bit patterns (one ulp apart,
// ±0, every NaN payload Go can print) yield distinct key fragments.
func hexF(v float64) string {
	return strconv.FormatFloat(v, 'x', -1, 64)
}

// Key builds an exact cache key for an operation on a model card with
// the given float arguments. Card identity is by pointer: the engine
// contract keeps MOSCard values immutable while shared, so a pointer
// names one set of card parameters for the life of the memo. Two cards
// with equal contents get distinct ids — that only costs hits, never
// correctness. A nil memo returns "".
func (mc *Memo) Key(op string, card *techno.MOSCard, vals ...float64) string {
	if mc == nil {
		return ""
	}
	mc.mu.Lock()
	id, ok := mc.cardID[card]
	if !ok {
		id = "c" + strconv.Itoa(len(mc.cardID))
		mc.cardID[card] = id
	}
	mc.mu.Unlock()
	var b strings.Builder
	b.Grow(len(op) + len(id) + 2 + 20*len(vals))
	b.WriteString(op)
	b.WriteByte('|')
	b.WriteString(id)
	for _, v := range vals {
		b.WriteByte('|')
		b.WriteString(hexF(v))
	}
	return b.String()
}

// lookup returns the cached value for key, counting the outcome.
func (mc *Memo) lookup(key string) (any, bool) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	v, ok := mc.entries[key]
	if ok {
		mc.hits++
		memoHits.Inc()
	} else {
		mc.misses++
		memoMisses.Inc()
	}
	return v, ok
}

// store inserts a value, evicting the oldest entry at the bound.
func (mc *Memo) store(key string, v any) {
	mc.mu.Lock()
	defer mc.mu.Unlock()
	if _, dup := mc.entries[key]; dup {
		return
	}
	if len(mc.entries) >= mc.max {
		// FIFO: drop the oldest live entry.
		for mc.evict < len(mc.order) {
			old := mc.order[mc.evict]
			mc.evict++
			if _, live := mc.entries[old]; live {
				delete(mc.entries, old)
				break
			}
		}
	}
	mc.entries[key] = v
	mc.order = append(mc.order, key)
	// Compact the spent prefix of the eviction queue once it dominates.
	if mc.evict > mc.max {
		mc.order = append([]string(nil), mc.order[mc.evict:]...)
		mc.evict = 0
	}
}

// Float memoizes a pure float64-valued computation under key. Errors
// are never cached (they are rare and cheap to rediscover); a nil memo
// or empty key just computes.
func (mc *Memo) Float(key string, f func() (float64, error)) (float64, error) {
	if mc == nil || key == "" {
		return f()
	}
	if v, ok := mc.lookup(key); ok {
		return v.(float64), nil
	}
	v, err := f()
	if err != nil {
		return v, err
	}
	mc.store(key, v)
	return v, nil
}

// opCaps is the cached value of a design-point evaluation.
type opCaps struct {
	op   OP
	caps CapSet
}

// OPCaps memoizes a design-point evaluation (operating point plus
// capacitance set) under key.
func (mc *Memo) OPCaps(key string, f func() (OP, CapSet)) (OP, CapSet) {
	if mc == nil || key == "" {
		return f()
	}
	if v, ok := mc.lookup(key); ok {
		c := v.(opCaps)
		return c.op, c.caps
	}
	op, caps := f()
	mc.store(key, opCaps{op: op, caps: caps})
	return op, caps
}

// SizeForCurrent is the memoized form of the package-level bisection.
func (mc *Memo) SizeForCurrent(card *techno.MOSCard, l, veff, vsb, id, temp, wmin, wmax float64) (float64, error) {
	return mc.Float(mc.Key("szI", card, l, veff, vsb, id, temp, wmin, wmax), func() (float64, error) {
		return SizeForCurrent(card, l, veff, vsb, id, temp, wmin, wmax)
	})
}

// SizeForGm is the memoized form of the package-level bisection.
func (mc *Memo) SizeForGm(card *techno.MOSCard, l, veff, vsb, gm, temp, wmin, wmax float64) (float64, error) {
	return mc.Float(mc.Key("szG", card, l, veff, vsb, gm, temp, wmin, wmax), func() (float64, error) {
		return SizeForGm(card, l, veff, vsb, gm, temp, wmin, wmax)
	})
}

// VGSForCurrent is the memoized form of (*MOS).VGSForCurrent. The key
// carries everything idsCore reads from the instance: card, W, L and
// the multiplier.
func (mc *Memo) VGSForCurrent(m *MOS, id, vds, vsb, temp float64) (float64, error) {
	return mc.Float(mc.Key("vgs", m.Card, m.W, m.L, m.M(), id, vds, vsb, temp), func() (float64, error) {
		return m.VGSForCurrent(id, vds, vsb, temp)
	})
}
