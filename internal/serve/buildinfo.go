package serve

import (
	"runtime/debug"
	"sync"
)

// BuildVersion identifies the running binary for /healthz and the
// loas_build_info metric: the module version when the binary was built
// with `go install module@version`, else the VCS revision (short hash,
// "+dirty" when the tree had local edits), else "unknown". Computed
// once — debug.ReadBuildInfo walks the embedded build info each call.
func BuildVersion() string {
	buildVersionOnce.Do(func() {
		buildVersion = computeBuildVersion(debug.ReadBuildInfo())
	})
	return buildVersion
}

var (
	buildVersionOnce sync.Once
	buildVersion     string
)

func computeBuildVersion(bi *debug.BuildInfo, ok bool) string {
	if !ok || bi == nil {
		return "unknown"
	}
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		return v
	}
	var rev string
	dirty := false
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if dirty {
		rev += "+dirty"
	}
	return rev
}
