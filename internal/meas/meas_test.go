package meas

import (
	"math"
	"sync"
	"testing"

	"loas/internal/circuit"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// The measurement harness is validated on the case-1 folded-cascode OTA
// (cheap: no layout loop) against the sizing tool's own evaluation — the
// two share models, so they must agree where they model the same things.

var (
	once    sync.Once
	design  *sizing.FoldedCascode
	report  *Report
	measErr error
)

func measured(t *testing.T) (*sizing.FoldedCascode, *Report) {
	t.Helper()
	once.Do(func() {
		tech := techno.Default060()
		ps, _ := sizing.Case(1)
		d, err := sizing.SizeFoldedCascode(tech, sizing.Default65MHz(), ps)
		if err != nil {
			measErr = err
			return
		}
		design = d
		b := Bench{
			Build:      func() *circuit.Circuit { return d.AssumedNetlist("meas") },
			InP:        sizing.NetInP,
			InN:        sizing.NetInN,
			Out:        sizing.NetOut,
			SupplyName: "dd",
			CL:         d.Spec.CL,
			VicmDC:     0.645,
			VoutMid:    1.41,
			Temp:       tech.Temp,
			NodeSet:    d.NodeSet(),
		}
		report, measErr = Measure(b)
	})
	if measErr != nil {
		t.Fatal(measErr)
	}
	return design, report
}

func TestMeasureAgreesWithSizingEvaluation(t *testing.T) {
	d, rep := measured(t)
	// GBW and PM were *simulated* by the sizing plan on the same
	// netlist; the harness must agree closely.
	if rel := math.Abs(rep.Perf.GBW-d.Predicted.GBW) / d.Predicted.GBW; rel > 0.02 {
		t.Fatalf("GBW: harness %.2f MHz vs plan %.2f MHz",
			rep.Perf.GBW/1e6, d.Predicted.GBW/1e6)
	}
	if math.Abs(rep.Perf.PhaseDeg-d.Predicted.PhaseDeg) > 1.0 {
		t.Fatalf("PM: harness %.2f° vs plan %.2f°",
			rep.Perf.PhaseDeg, d.Predicted.PhaseDeg)
	}
}

func TestMeasureGainAndRout(t *testing.T) {
	_, rep := measured(t)
	if rep.Perf.DCGainDB < 60 || rep.Perf.DCGainDB > 90 {
		t.Fatalf("gain %.1f dB outside the folded-cascode ballpark", rep.Perf.DCGainDB)
	}
	if rep.Perf.Rout < 0.5e6 || rep.Perf.Rout > 20e6 {
		t.Fatalf("Rout %.2f MΩ implausible", rep.Perf.Rout/1e6)
	}
	// Self-consistency: Av ≈ gm1·Rout within a factor ~2 (gm1 from the
	// unity frequency: gm1 = 2π·GBW·CL plus internal caps).
	gmEst := 2 * math.Pi * rep.Perf.GBW * 3e-12
	avEst := sizing.DB(gmEst * rep.Perf.Rout)
	if math.Abs(avEst-rep.Perf.DCGainDB) > 6 {
		t.Fatalf("gain %.1f dB inconsistent with gm·Rout %.1f dB",
			rep.Perf.DCGainDB, avEst)
	}
}

func TestMeasureOffsetTiny(t *testing.T) {
	_, rep := measured(t)
	// The schematic is symmetric: only second-order systematic offset
	// remains.
	if math.Abs(rep.Perf.Offset) > 2e-3 {
		t.Fatalf("offset %.3f mV too large for a symmetric OTA", rep.Perf.Offset*1e3)
	}
}

func TestMeasureNoiseOrdering(t *testing.T) {
	_, rep := measured(t)
	p := rep.Perf
	if p.NoiseTh <= 0 || p.NoiseFl1 <= 0 || p.NoiseRMS <= 0 {
		t.Fatal("noise figures missing")
	}
	// 1/f dominates at 1 Hz: flicker density far above the plateau.
	if p.NoiseFl1 < 10*p.NoiseTh {
		t.Fatalf("flicker at 1 Hz (%.3g) should dwarf the plateau (%.3g)",
			p.NoiseFl1, p.NoiseTh)
	}
	// Total integrated noise roughly thermal × √(π/2·GBW).
	est := p.NoiseTh * math.Sqrt(math.Pi/2*p.GBW)
	if p.NoiseRMS < 0.5*est || p.NoiseRMS > 2*est {
		t.Fatalf("integrated noise %.3g vs thermal estimate %.3g", p.NoiseRMS, est)
	}
}

func TestMeasureSlewRate(t *testing.T) {
	d, rep := measured(t)
	if rep.Perf.SlewRate <= 0 {
		t.Fatal("slew rate not measured")
	}
	// Bounded by the theoretical tail-current limit.
	limit := d.Itail / d.Spec.CL
	if rep.Perf.SlewRate > 1.2*limit {
		t.Fatalf("SR %.1f V/µs above the Itail/CL bound %.1f",
			rep.Perf.SlewRate/1e6, limit/1e6)
	}
	if rep.Perf.SlewRate < 0.3*limit {
		t.Fatalf("SR %.1f V/µs suspiciously far below Itail/CL %.1f",
			rep.Perf.SlewRate/1e6, limit/1e6)
	}
}

func TestMeasureCMRRAndPower(t *testing.T) {
	d, rep := measured(t)
	if rep.Perf.CMRRDB < 60 {
		t.Fatalf("CMRR %.1f dB too low", rep.Perf.CMRRDB)
	}
	wantP := d.Spec.VDD * (d.Itail + 2*d.Icasc)
	if math.Abs(rep.Perf.Power-wantP)/wantP > 0.05 {
		t.Fatalf("power %.3f mW vs budget %.3f mW",
			rep.Perf.Power*1e3, wantP*1e3)
	}
}

func TestMeasureRejectsBrokenBench(t *testing.T) {
	tech := techno.Default060()
	b := Bench{
		Build: func() *circuit.Circuit {
			// An amplifier with no gain path: input floating.
			c := circuit.New("broken")
			c.Add(
				&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
				&circuit.Resistor{Name: "r", A: "out", B: "0", R: 1e3},
				&circuit.Resistor{Name: "ri", A: "inp", B: "0", R: 1e6},
				&circuit.Resistor{Name: "rn", A: "inn", B: "0", R: 1e6},
			)
			return c
		},
		InP: "inp", InN: "inn", Out: "out",
		SupplyName: "dd", CL: 1e-12, VicmDC: 1, VoutMid: 1,
		Temp: tech.Temp,
	}
	if _, err := Measure(b); err == nil {
		t.Fatal("gainless circuit should fail the unity-crossing search")
	}
}
