package scfilter

import (
	"math"
	"math/cmplx"
	"testing"

	"loas/internal/sizing"
)

func goodOTA() OTAModel {
	return OTAModel{DCGain: 5000, GBW: 65e6, SR: 80e6}
}

func integ() Integrator {
	return Integrator{OTA: goodOTA(), Cs: 1e-12, Cf: 4e-12, Fs: 10e6}
}

func TestFromPerformance(t *testing.T) {
	p := sizing.Performance{DCGainDB: 60, GBW: 1e8, SlewRate: 5e7}
	m := FromPerformance(p)
	if math.Abs(m.DCGain-1000) > 1e-9 {
		t.Fatalf("gain = %g, want 1000", m.DCGain)
	}
	if m.GBW != 1e8 || m.SR != 5e7 {
		t.Fatal("fields not copied")
	}
}

func TestValidate(t *testing.T) {
	g := integ()
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Integrator{
		{OTA: goodOTA(), Cs: 0, Cf: 1e-12, Fs: 1e6},
		{OTA: goodOTA(), Cs: 1e-12, Cf: 1e-12, Fs: 0},
		{OTA: OTAModel{DCGain: 0.5, GBW: 1e8}, Cs: 1e-12, Cf: 1e-12, Fs: 1e6},
		{OTA: OTAModel{DCGain: 100, GBW: 0}, Cs: 1e-12, Cf: 1e-12, Fs: 1e6},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Fatalf("bad config %d accepted", i)
		}
	}
}

func TestFeedbackFactor(t *testing.T) {
	g := integ()
	if got := g.FeedbackFactor(); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("β = %g, want 0.8", got)
	}
}

func TestSettlingErrorBehaviour(t *testing.T) {
	g := integ()
	e1 := g.SettlingError()
	if e1 <= 0 || e1 >= 1 {
		t.Fatalf("settling error %g out of range", e1)
	}
	// Faster clock → worse settling.
	g.Fs *= 10
	if e2 := g.SettlingError(); e2 <= e1 {
		t.Fatalf("faster clock should settle worse: %g vs %g", e2, e1)
	}
	// Faster OTA → better settling.
	g = integ()
	g.OTA.GBW *= 4
	if e3 := g.SettlingError(); e3 >= e1 {
		t.Fatalf("faster OTA should settle better: %g vs %g", e3, e1)
	}
}

func TestGainErrorScalesWithDCGain(t *testing.T) {
	g := integ()
	e1 := g.GainError()
	g.OTA.DCGain *= 10
	if e2 := g.GainError(); math.Abs(e2*10-e1) > 1e-12 {
		t.Fatalf("gain error should scale as 1/A: %g vs %g", e1, e2)
	}
}

func TestHMatchesIdealForPerfectOTA(t *testing.T) {
	g := integ()
	g.OTA.DCGain = 1e9
	g.OTA.GBW = 1e12
	for _, f := range []float64{1e3, 1e4, 1e5, 1e6} {
		h := g.H(f)
		hi := g.HIdeal(f)
		if cmplx.Abs(h-hi)/cmplx.Abs(hi) > 1e-3 {
			t.Fatalf("perfect OTA should match ideal at %g Hz: %v vs %v", f, h, hi)
		}
	}
}

func TestHIdealSlope(t *testing.T) {
	// An integrator loses 20 dB per decade.
	g := integ()
	m1 := cmplx.Abs(g.HIdeal(1e3))
	m2 := cmplx.Abs(g.HIdeal(1e4))
	ratio := m1 / m2
	if math.Abs(ratio-10) > 0.3 {
		t.Fatalf("integrator slope: |H(1k)|/|H(10k)| = %g, want ≈ 10", ratio)
	}
}

func TestFiniteGainFlattensLowFreq(t *testing.T) {
	// Finite gain limits the low-frequency magnitude to ≈ A·β·(Cs/Cf)…
	// i.e. H stops growing as f → 0 while the ideal diverges.
	g := integ()
	g.OTA.DCGain = 100
	hReal := cmplx.Abs(g.H(1.0))
	hIdeal := cmplx.Abs(g.HIdeal(1.0))
	if hReal >= hIdeal {
		t.Fatalf("leaky integrator should be below ideal at DC: %g vs %g", hReal, hIdeal)
	}
	bound := g.OTA.DCGain * 2 // loose ceiling
	if hReal > bound {
		t.Fatalf("low-frequency gain %g above finite-gain ceiling %g", hReal, bound)
	}
}

func TestUnityGainFreq(t *testing.T) {
	g := integ()
	fu := g.UnityGainFreq()
	want := 10e6 * 0.25 / (2 * math.Pi)
	if math.Abs(fu-want)/want > 1e-12 {
		t.Fatalf("fu = %g, want %g", fu, want)
	}
	// |H| at fu must be ≈ 1.
	if got := cmplx.Abs(g.HIdeal(fu)); math.Abs(got-1) > 0.05 {
		t.Fatalf("|H(fu)| = %g", got)
	}
}

func TestMaxStepAndClock(t *testing.T) {
	g := integ()
	if g.MaxStep() <= 0 {
		t.Fatal("max step should be positive with finite SR")
	}
	g.OTA.SR = 0
	if g.MaxStep() != 0 {
		t.Fatal("zero SR should have zero step budget")
	}
	g = integ()
	fc := g.MaxClock(0.001)
	if fc <= 0 {
		t.Fatal("max clock must be positive")
	}
	// At that clock the settling error must be exactly the target.
	g.Fs = fc
	if e := g.SettlingError(); math.Abs(e-0.001)/0.001 > 1e-9 {
		t.Fatalf("settling at max clock = %g, want 0.001", e)
	}
	if g.MaxClock(0) != 0 || g.MaxClock(1) != 0 {
		t.Fatal("degenerate eps should return 0")
	}
}

func TestBiquadValidate(t *testing.T) {
	b := Biquad{OTA: goodOTA(), Fs: 10e6, F0: 250e3, Q: 10, GainLP: 1}
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	b.F0 = 4e6 // too close to Nyquist
	if err := b.Validate(); err == nil {
		t.Fatal("f0 near fs/2 accepted")
	}
	b = Biquad{OTA: goodOTA(), Fs: 0, F0: 1, Q: 1}
	if err := b.Validate(); err == nil {
		t.Fatal("zero fs accepted")
	}
}

func TestBiquadResonance(t *testing.T) {
	b := Biquad{OTA: goodOTA(), Fs: 10e6, F0: 250e3, Q: 10, GainLP: 1}
	rg := b.ResonantGain()
	if rg < 7 || rg > 12 {
		t.Fatalf("resonant gain %g, want ≈ Q = 10", rg)
	}
	// Passband (f << f0): |H| ≈ GainLP.
	lp := cmplx.Abs(b.HLowpass(5e3))
	if math.Abs(lp-1) > 0.15 {
		t.Fatalf("passband gain %g, want ≈ 1", lp)
	}
	// Stopband: two octaves above f0, well below passband.
	hs := cmplx.Abs(b.HLowpass(1e6))
	if hs > 0.5 {
		t.Fatalf("stopband gain %g too high", hs)
	}
}

func TestBiquadQDropsWithOTAGain(t *testing.T) {
	hi := Biquad{OTA: goodOTA(), Fs: 10e6, F0: 250e3, Q: 20, GainLP: 1}
	lo := hi
	lo.OTA.DCGain = 60
	if lo.ResonantGain() >= hi.ResonantGain() {
		t.Fatalf("finite OTA gain should deflate Q: %g vs %g",
			lo.ResonantGain(), hi.ResonantGain())
	}
}
