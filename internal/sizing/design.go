package sizing

import (
	"fmt"
	"sort"
	"strings"

	"loas/internal/circuit"
	"loas/internal/layout/cairo"
	"loas/internal/techno"
)

// Design is the common surface of a fully sized circuit — the contract
// between a design plan and every downstream layer (the convergence
// loop, the measurement benches, the corner sweep, the Monte-Carlo
// driver, the golden suite). The paper's CAIRO/COMDIAC coupling is
// topology-agnostic: anything that can rebuild its netlist under the
// current parasitic assumptions and emit a CAIRO layout fits the loop.
type Design interface {
	// Netlist builds the sized circuit with its supply and bias sources;
	// inputs and output are left for the testbench to drive/load.
	Netlist(name string) *circuit.Circuit
	// AssumedNetlist is Netlist plus the sizing-time parasitic
	// assumptions (wiring capacitance from the last layout report when
	// routing awareness is on) — the paper's "synthesized" column.
	AssumedNetlist(name string) *circuit.Circuit
	// NodeSet seeds the simulator's DC solve with the design-time node
	// voltage estimates.
	NodeSet() map[string]float64
	// Layout builds the CAIRO design (modules, slicing tree, nets).
	Layout() *cairo.Design
	// PredictedPerf is the plan's own performance prediction.
	PredictedPerf() Performance
	// DeviceTable exposes every sized transistor by instance name.
	DeviceTable() map[string]DeviceSize
	// OperatingPoint snapshots the headline design point for traces and
	// golden files.
	OperatingPoint() OperatingPoint
	// HotNet names the internal net whose parasitic capacitance drives
	// the GBW/PM feedback (the fold node for the folded cascode) —
	// reported per iteration in the convergence trace.
	HotNet() string
	// ACGroundNets lists nets whose wiring capacitance lands on AC
	// ground (skipped when lumping parasitics onto the netlist).
	ACGroundNets() []string
	// BiasFor recomputes the bias voltages on an alternate technology
	// (a process corner) for the same device sizes — the role of an
	// on-chip bias generator that tracks the process.
	BiasFor(tech *techno.Tech) (map[string]float64, error)
	// BiasSources maps bias vsource instance names in the netlist to
	// the bias-net keys of the BiasFor map, so corner verification can
	// retune them without topology knowledge.
	BiasSources() map[string]string
	// OffsetRefs returns the input-pair and load devices plus the
	// gm(load)/gm(pair) ratio for the analytic Pelgrom offset estimate.
	OffsetRefs() (pair, load DeviceSize, gmRatio float64)
}

// OperatingPoint is the design-point snapshot carried by convergence
// traces and golden files: input-pair width, the non-input channel
// length the PM iteration chose, and the tail current.
type OperatingPoint struct {
	W1    float64
	Lc    float64
	Itail float64
}

// Plan is one registered topology: a name, a sizing function and the
// specification its plan is tuned for.
type Plan struct {
	Name        string
	Description string
	// Size runs the design plan under the given parasitic state.
	Size func(tech *techno.Tech, spec OTASpec, ps ParasiticState) (Design, error)
	// DefaultSpec returns a specification this topology can meet —
	// used when a caller names a topology without providing one (the
	// paper's 65 MHz default is out of reach for the smaller OTAs).
	DefaultSpec func() OTASpec
}

// DefaultTopology is the plan used when no topology is named — the
// paper's folded-cascode OTA, so existing callers are unchanged.
const DefaultTopology = "folded-cascode"

var plans = map[string]Plan{}

// Register adds a topology to the registry. Called from init() by each
// design plan; duplicate or incomplete registrations are programming
// errors and panic.
func Register(p Plan) {
	if p.Name == "" || p.Size == nil || p.DefaultSpec == nil {
		panic(fmt.Sprintf("sizing: incomplete plan registration %+v", p))
	}
	if _, dup := plans[p.Name]; dup {
		panic("sizing: duplicate topology " + p.Name)
	}
	plans[p.Name] = p
}

// Lookup resolves a topology name to its plan. The empty string means
// the default; unknown names return an error that lists every
// registered topology (surfaced verbatim as the loasd 400 body and the
// loas CLI failure message).
func Lookup(name string) (Plan, error) {
	if name == "" {
		name = DefaultTopology
	}
	p, ok := plans[name]
	if !ok {
		return Plan{}, fmt.Errorf("sizing: unknown topology %q (registered: %s)",
			name, strings.Join(Topologies(), ", "))
	}
	return p, nil
}

// Topologies lists the registered topology names, sorted.
func Topologies() []string {
	out := make([]string, 0, len(plans))
	for name := range plans {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
