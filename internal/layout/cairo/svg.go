package cairo

import (
	"fmt"
	"io"
	"sort"

	"loas/internal/layout/geom"
	"loas/internal/techno"
)

// layerStyle maps mask layers to SVG fill colours (classic CAD palette).
var layerStyle = map[techno.Layer]struct {
	color   string
	opacity float64
	zOrder  int
}{
	techno.LayerNWell:    {"#d9d2e9", 0.8, 0},
	techno.LayerPImplant: {"#fce5cd", 0.4, 1},
	techno.LayerNImplant: {"#d9ead3", 0.4, 1},
	techno.LayerActive:   {"#38761d", 0.8, 2},
	techno.LayerPoly:     {"#cc0000", 0.8, 3},
	techno.LayerContact:  {"#000000", 1.0, 5},
	techno.LayerMetal1:   {"#3c78d8", 0.6, 4},
	techno.LayerVia1:     {"#ffffff", 1.0, 7},
	techno.LayerMetal2:   {"#9900ff", 0.5, 6},
	techno.LayerPoly2:    {"#e69138", 0.8, 4},
}

// WriteSVG renders a cell as SVG (1 nm = 1 user unit, y flipped so the
// layout reads bottom-up like a plot).
func WriteSVG(w io.Writer, cell *geom.Cell) error {
	bb := cell.BBox()
	if !bb.Valid() {
		return fmt.Errorf("cairo: cell %s has no geometry", cell.Name)
	}
	margin := int64(2000)
	vb := bb.Expand(margin)
	if _, err := fmt.Fprintf(w,
		"<svg xmlns=\"http://www.w3.org/2000/svg\" viewBox=\"%d %d %d %d\" width=\"%dpx\">\n",
		vb.L, -vb.T, vb.W(), vb.H(), 900); err != nil {
		return err
	}
	fmt.Fprintf(w, "<title>%s</title>\n", cell.Name)
	fmt.Fprintf(w, "<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"#fdfdf8\"/>\n",
		vb.L, -vb.T, vb.W(), vb.H())

	shapes := append([]geom.Shape(nil), cell.Shapes...)
	sort.SliceStable(shapes, func(i, j int) bool {
		return layerStyle[shapes[i].Layer].zOrder < layerStyle[shapes[j].Layer].zOrder
	})
	for _, s := range shapes {
		st, ok := layerStyle[s.Layer]
		if !ok {
			continue
		}
		title := ""
		if s.Net != "" {
			title = fmt.Sprintf("<title>%s %s</title>", s.Layer, s.Net)
		}
		fmt.Fprintf(w,
			"<rect x=\"%d\" y=\"%d\" width=\"%d\" height=\"%d\" fill=\"%s\" fill-opacity=\"%.2f\">%s</rect>\n",
			s.R.L, -s.R.T, s.R.W(), s.R.H(), st.color, st.opacity, title)
	}
	_, err := fmt.Fprintln(w, "</svg>")
	return err
}
