// Package layout is the pluggable placement/routing stage of the
// synthesis loop. The paper couples one layout generator (CAIRO's
// slicing-tree driver) to the sizing tool; this registry generalizes the
// coupling so several layout disciplines can serve the same sized
// design and be compared on extracted parasitics — the question the
// layout-in-the-loop methodology exists to answer.
//
// A Backend consumes the topology's cairo.Design (modules, nets — the
// shared layout IR every design plan emits) and produces a cairo.Plan
// (geometry + parasitic report). Backends register from init(), exactly
// like sizing design plans (sizing.Register); the default backend is
// the original slicing generator, and results under it are
// bit-identical to the pre-registry engine.
package layout

import (
	"fmt"
	"sort"
	"strings"

	"loas/internal/layout/cairo"
	"loas/internal/obs"
	"loas/internal/techno"
)

// Plan, Constraint and Session re-export the cairo types so backend
// callers (core, benchmarks) need no extra imports and the default path
// keeps its exact types.
type (
	Plan       = cairo.Plan
	Constraint = cairo.Constraint
	Session    = cairo.Session
)

// Info is a backend's capability descriptor, served verbatim by
// GET /v1/layouts and `loas layouts`.
type Info struct {
	Name        string `json:"name"`
	Description string `json:"description"`
	// Constraints lists the shape-constraint fields the backend honours
	// (subset of "max_w", "max_h", "aspect"). An unlisted field is
	// accepted but ignored.
	Constraints []string `json:"constraints"`
	// CacheSession reports whether the backend reuses a cairo.Session's
	// incremental caches (module builds, route replay, shape functions)
	// across the Plan calls of one synthesis run.
	CacheSession bool `json:"cache_session"`
}

// Backend generates layout plans for sized designs. Implementations
// must be deterministic — two Plan calls with bit-identical inputs must
// return bit-identical plans, with or without a session — and safe for
// concurrent use.
type Backend interface {
	// Info describes the backend.
	Info() Info
	// Plan places and routes the design under the shape constraint and
	// returns its geometry plus the extracted parasitic report. A nil
	// session disables cross-call caching.
	Plan(tech *techno.Tech, d *cairo.Design, c Constraint, s *Session) (*Plan, error)
}

// DefaultBackend is the backend used when none is named — the original
// slicing-tree generator, so existing callers are unchanged.
const DefaultBackend = "slicing"

var registry = map[string]Backend{}

// metricName makes a backend name safe for a Prometheus metric name.
func metricName(name string) string {
	return strings.NewReplacer("-", "_", ".", "_").Replace(name)
}

// counted decorates a registered backend with its per-backend plan
// counter, so every backend is metered the same way without each
// implementation remembering to.
type counted struct {
	Backend
	plans *obs.Counter
}

func (c counted) Plan(tech *techno.Tech, d *cairo.Design, con Constraint, s *Session) (*Plan, error) {
	c.plans.Inc()
	return c.Backend.Plan(tech, d, con, s)
}

// Register adds a layout backend to the registry. Called from init() by
// each backend package; duplicate or incomplete registrations are
// programming errors and panic.
func Register(b Backend) {
	info := b.Info()
	if info.Name == "" || info.Description == "" {
		panic(fmt.Sprintf("layout: incomplete backend registration %+v", info))
	}
	if _, dup := registry[info.Name]; dup {
		panic("layout: duplicate backend " + info.Name)
	}
	registry[info.Name] = counted{
		Backend: b,
		plans: obs.Default.Counter("loas_layout_plans_"+metricName(info.Name)+"_total",
			"layout plan calls through the "+info.Name+" backend"),
	}
}

// Lookup resolves a backend name. The empty string means the default;
// unknown names return an error that lists every registered backend
// (surfaced verbatim as the loasd 400 body and the loas CLI failure).
func Lookup(name string) (Backend, error) {
	if name == "" {
		name = DefaultBackend
	}
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("layout: unknown backend %q (registered: %s)",
			name, strings.Join(names(), ", "))
	}
	return b, nil
}

// CanonicalName resolves a backend name to its registered spelling
// ("" → the default), for request normalization and cache keys.
func CanonicalName(name string) (string, error) {
	b, err := Lookup(name)
	if err != nil {
		return "", err
	}
	return b.Info().Name, nil
}

func names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Backends lists every registered backend's descriptor, sorted by name.
func Backends() []Info {
	out := make([]Info, 0, len(registry))
	for _, name := range names() {
		out = append(out, registry[name].Info())
	}
	return out
}

// slicingBackend is backend one: the existing cairo slicing-tree
// generator behind the interface, byte-for-byte the pre-registry flow.
type slicingBackend struct{}

func (slicingBackend) Info() Info {
	return Info{
		Name: DefaultBackend,
		Description: "slicing-tree floorplan: Stockmeyer area optimization over " +
			"module shape functions, then channel routing (the paper's CAIRO flow)",
		Constraints:  []string{"max_w", "max_h", "aspect"},
		CacheSession: true,
	}
}

func (slicingBackend) Plan(tech *techno.Tech, d *cairo.Design, c Constraint, s *Session) (*Plan, error) {
	return d.PlanSession(tech, c, s)
}

func init() { Register(slicingBackend{}) }
