package obs

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"runtime/pprof"
	"strings"
	"testing"
)

// goroutineLabels captures the debug=1 goroutine profile, whose text
// form prints each goroutine group's pprof labels as `# labels: {...}`.
func goroutineLabels(t *testing.T) string {
	t.Helper()
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// TestPhaseAppliesPprofLabel: while Phase(fn) runs, the goroutine
// carries phase=<name> layered over the ctx labels, visible in the
// goroutine profile; phase wall time lands in loas_phase_seconds.
func TestPhaseAppliesPprofLabel(t *testing.T) {
	ctx := LabelCtx(context.Background(), "topology", "test_topo_xyz", "run_id", "run-000777")

	inPhase := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		Phase(ctx, "test-phase-abc", func() {
			close(inPhase)
			<-release
		})
	}()
	<-inPhase
	prof := goroutineLabels(t)
	close(release)
	<-done

	for _, want := range []string{`"phase":"test-phase-abc"`, `"topology":"test_topo_xyz"`, `"run_id":"run-000777"`} {
		if !strings.Contains(prof, want) {
			t.Errorf("goroutine profile missing label %s:\n%s", want, prof)
		}
	}

	// The phase duration must have been observed into the histogram vec.
	var buf bytes.Buffer
	if err := Default.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `loas_phase_seconds_count{phase="test-phase-abc"} 1`) {
		t.Errorf("loas_phase_seconds missing the phase observation:\n%s", buf.String())
	}
}

// TestLabelCtxSkipsEmptyPairs: empty keys or values are dropped so call
// sites can pass optional attributes unconditionally.
func TestLabelCtxSkipsEmptyPairs(t *testing.T) {
	ctx := LabelCtx(nil, "topology", "", "", "x", "run_id", "run-1")
	var got []string
	pprof.Do(ctx, pprof.Labels(), func(ctx context.Context) {
		pprof.ForLabels(ctx, func(k, v string) bool {
			got = append(got, k+"="+v)
			return true
		})
	})
	if len(got) != 1 || got[0] != "run_id=run-1" {
		t.Fatalf("want only run_id=run-1, got %v", got)
	}
}

// TestSampleResourcesMonotone: the counters are cumulative, so a second
// sample after forced allocation can only move forward, and allocation
// between the samples is visible in the delta.
func TestSampleResourcesMonotone(t *testing.T) {
	before := SampleResources()
	sink := make([][]byte, 0, 64)
	for i := 0; i < 64; i++ {
		sink = append(sink, make([]byte, 16<<10))
	}
	_ = sink
	after := SampleResources()
	if after.AllocBytes < before.AllocBytes {
		t.Fatalf("AllocBytes went backwards: %d -> %d", before.AllocBytes, after.AllocBytes)
	}
	// Size-class accounting can shave a little off the nominal total;
	// half is far above noise while immune to rounding.
	if after.AllocBytes-before.AllocBytes < 64*16<<10/2 {
		t.Fatalf("delta %d nowhere near the %d bytes allocated between samples",
			after.AllocBytes-before.AllocBytes, 64*16<<10)
	}
	if after.GCCycles < before.GCCycles {
		t.Fatalf("GCCycles went backwards: %d -> %d", before.GCCycles, after.GCCycles)
	}
}

// TestSpanResourceDeltas: a span that opts in via BeginResources freezes
// nonzero allocation deltas at End, they surface in the Snapshot record,
// and SpanTreeText renders them. A sibling without the opt-in stays at
// zero (omitted from JSON via omitempty).
func TestSpanResourceDeltas(t *testing.T) {
	rec := NewRecorder()
	root := rec.Root("request")
	sized := root.Child("sizing")
	sized.BeginResources()
	sink := make([][]byte, 0, 32)
	for i := 0; i < 32; i++ {
		sink = append(sink, make([]byte, 32<<10))
	}
	_ = sink
	sized.End()
	plain := root.Child("cache-lookup")
	plain.End()
	root.End()

	snap := rec.Snapshot()
	if len(snap) != 3 {
		t.Fatalf("want 3 spans, got %d", len(snap))
	}
	var sizing, lookup SpanRecord
	for _, s := range snap {
		switch s.Name {
		case "sizing":
			sizing = s
		case "cache-lookup":
			lookup = s
		}
	}
	if sizing.AllocBytes < 32*32<<10 {
		t.Errorf("sizing span alloc delta %d below the %d bytes it allocated", sizing.AllocBytes, 32*32<<10)
	}
	if sizing.GCCycles < 0 {
		t.Errorf("negative GC delta %d", sizing.GCCycles)
	}
	if lookup.AllocBytes != 0 || lookup.GCCycles != 0 {
		t.Errorf("span without BeginResources reported deltas: alloc=%d gc=%d", lookup.AllocBytes, lookup.GCCycles)
	}

	text := SpanTreeText(snap)
	if !strings.Contains(text, "alloc=") {
		t.Errorf("SpanTreeText missing alloc= rendering:\n%s", text)
	}
}

// TestBeginResourcesAfterEndIsNoop: opting in after the span closed must
// not resurrect it with garbage deltas.
func TestBeginResourcesAfterEndIsNoop(t *testing.T) {
	rec := NewRecorder()
	s := rec.Root("late")
	s.End()
	s.BeginResources()
	s.End()
	got := rec.Snapshot()[0]
	if got.AllocBytes != 0 || got.GCCycles != 0 {
		t.Fatalf("late BeginResources produced deltas: alloc=%d gc=%d", got.AllocBytes, got.GCCycles)
	}
}

// TestReadLedgerAcrossRotation writes enough records through a
// tiny-MaxBytes ledger to force rotation, then checks ReadLedger
// stitches <path>.1 + <path> back into one continuous, drop-free
// sequence in write order — the property `loas replay` depends on.
func TestReadLedgerAcrossRotation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	l, err := OpenLedger(path, LedgerOptions{MaxBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	const total = 40
	for i := 1; i <= total; i++ {
		err := l.Append(RunRecord{
			ID: fmt.Sprintf("run-%06d", i), Seq: int64(i), Kind: "synthesize",
			Topology: "ota_miller", Outcome: "ok",
			Request: []byte(`{"spec":{"gbw_hz":1e6}}`), BodySHA256: strings.Repeat("ab", 32),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("MaxBytes=2048 never rotated: %v", err)
	}

	got := ReadLedger(path, 0)
	// The single .1 generation keeps only the most recent rotation's
	// worth, so the head may be gone — but what remains must be a
	// continuous suffix ending at the final record.
	if len(got) == 0 {
		t.Fatal("ReadLedger returned nothing")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq != got[i-1].Seq+1 {
			t.Fatalf("sequence gap after rotation: seq %d followed by %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if last := got[len(got)-1]; last.Seq != total {
		t.Fatalf("last record seq = %d, want %d", last.Seq, total)
	}
	// Replay-critical fields survive the round trip.
	if r := got[len(got)-1]; string(r.Request) != `{"spec":{"gbw_hz":1e6}}` || r.BodySHA256 != strings.Repeat("ab", 32) {
		t.Fatalf("request/sha fields did not round-trip: %+v", r)
	}

	// max bounds the tail.
	if tail := ReadLedger(path, 5); len(tail) != 5 || tail[4].Seq != total {
		t.Fatalf("ReadLedger(max=5) = %d records ending seq %d", len(tail), tail[len(tail)-1].Seq)
	}
	// A missing ledger is empty history, not an error.
	if r := ReadLedger(filepath.Join(dir, "absent.jsonl"), 0); r != nil {
		t.Fatalf("ReadLedger on missing path = %v, want nil", r)
	}
}
