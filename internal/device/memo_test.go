package device

import (
	"errors"
	"math"
	"math/rand"
	"strconv"
	"testing"

	"loas/internal/techno"
)

func TestMemoBoundedFIFOEviction(t *testing.T) {
	m := NewMemo(4)
	calls := 0
	get := func(k string) float64 {
		v, err := m.Float(k, func() (float64, error) {
			calls++
			return float64(calls), nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	for i := 0; i < 10; i++ {
		get("k" + strconv.Itoa(i))
	}
	if _, _, size := m.Stats(); size > 4 {
		t.Fatalf("memo grew past its bound: %d entries", size)
	}
	// The four newest keys must still be cached...
	before := calls
	for i := 6; i < 10; i++ {
		get("k" + strconv.Itoa(i))
	}
	if calls != before {
		t.Fatalf("recent keys were evicted: %d recomputes", calls-before)
	}
	// ...and the oldest must have been dropped (FIFO).
	get("k0")
	if calls != before+1 {
		t.Fatal("k0 survived eviction past the bound")
	}
}

func TestMemoErrorsNotCached(t *testing.T) {
	m := NewMemo(0)
	calls := 0
	f := func() (float64, error) {
		calls++
		if calls == 1 {
			return 0, errors.New("transient")
		}
		return 42, nil
	}
	if _, err := m.Float("k", f); err == nil {
		t.Fatal("first call should fail")
	}
	v, err := m.Float("k", f)
	if err != nil || v != 42 {
		t.Fatalf("error was cached: v=%v err=%v", v, err)
	}
	if calls != 2 {
		t.Fatalf("expected 2 computes, got %d", calls)
	}
}

func TestMemoNilAndEmptyKeyCompute(t *testing.T) {
	var m *Memo
	v, err := m.Float(m.Key("op", nil, 1), func() (float64, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("nil memo: v=%v err=%v", v, err)
	}
	if h, mi, size := m.Stats(); h != 0 || mi != 0 || size != 0 {
		t.Fatal("nil memo reported stats")
	}
	mm := NewMemo(0)
	calls := 0
	for i := 0; i < 2; i++ {
		if _, err := mm.Float("", func() (float64, error) { calls++; return 1, nil }); err != nil {
			t.Fatal(err)
		}
	}
	if calls != 2 {
		t.Fatal("empty key was cached")
	}
}

// TestMemoKeyUlpDistinct is the collision-safety fuzz: keys built from
// operating points one ulp apart — or differing only in sign of zero —
// must never collide, for every argument position.
func TestMemoKeyUlpDistinct(t *testing.T) {
	m := NewMemo(0)
	card := &techno.MOSCard{}
	rng := rand.New(rand.NewSource(99))
	vals := make([]float64, 6)
	for trial := 0; trial < 2000; trial++ {
		for i := range vals {
			// Mix magnitudes from subnormal-adjacent to huge.
			vals[i] = (rng.Float64() - 0.5) * math.Pow(10, float64(rng.Intn(60)-30))
		}
		base := m.Key("op", card, vals...)
		pos := rng.Intn(len(vals))
		orig := vals[pos]
		vals[pos] = math.Nextafter(orig, math.Inf(1-2*rng.Intn(2)))
		if pert := m.Key("op", card, vals...); pert == base {
			t.Fatalf("ulp perturbation collided at pos %d: %v vs %v", pos, orig, vals[pos])
		}
		vals[pos] = orig
	}
	if m.Key("z", card, 0.0) == m.Key("z", card, math.Copysign(0, -1)) {
		t.Fatal("+0 and -0 collided")
	}
}

// TestMemoCardIdentity: two cards with identical contents get distinct
// key spaces (pointer identity names the card), so a memo can never leak
// results across model cards.
func TestMemoCardIdentity(t *testing.T) {
	m := NewMemo(0)
	a, b := &techno.MOSCard{VT0: 0.7}, &techno.MOSCard{VT0: 0.7}
	if m.Key("op", a, 1) == m.Key("op", b, 1) {
		t.Fatal("distinct cards share keys")
	}
	if m.Key("op", a, 1) != m.Key("op", a, 1) {
		t.Fatal("same card, same args: keys differ")
	}
}

// TestMemoizedWrappersMatchDirect: the memoized bisections return the
// exact float64 of the direct computation, and repeat calls hit.
func TestMemoizedWrappersMatchDirect(t *testing.T) {
	tech := techno.Default060()
	m := NewMemo(0)
	const l, veff, id, temp = 1e-6, 0.2, 1e-4, 27.0
	wmin, wmax := 1e-6, 2e-2

	direct, err := SizeForCurrent(&tech.N, l, veff, 0, id, temp, wmin, wmax)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		got, err := m.SizeForCurrent(&tech.N, l, veff, 0, id, temp, wmin, wmax)
		if err != nil {
			t.Fatal(err)
		}
		if got != direct {
			t.Fatalf("memoized SizeForCurrent diverged: %x vs %x", got, direct)
		}
	}
	hits, misses, _ := m.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("expected 1 hit / 1 miss, got %d / %d", hits, misses)
	}

	mos := MOS{Card: &tech.N, W: 20e-6, L: l}
	dv, err := mos.VGSForCurrent(id, 0.9, 0, temp)
	if err != nil {
		t.Fatal(err)
	}
	mv, err := m.VGSForCurrent(&mos, id, 0.9, 0, temp)
	if err != nil || mv != dv {
		t.Fatalf("memoized VGSForCurrent diverged: %x vs %x (err %v)", mv, dv, err)
	}
}

func TestMemoOPCaps(t *testing.T) {
	m := NewMemo(0)
	calls := 0
	f := func() (OP, CapSet) {
		calls++
		return OP{ID: 1e-4, Gm: 2e-3}, CapSet{CGS: 1e-15}
	}
	k := m.Key("oc", nil, 1, 2)
	op1, c1 := m.OPCaps(k, f)
	op2, c2 := m.OPCaps(k, f)
	if calls != 1 {
		t.Fatalf("expected 1 compute, got %d", calls)
	}
	if op1 != op2 || c1 != c2 {
		t.Fatal("cached OP/CapSet differs from computed")
	}
}
