package repro

import (
	"fmt"
	"sort"

	"loas/internal/core"
	"loas/internal/layout"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// The layout A/B golden pins the rows-vs-slicing comparison: for every
// registered topology, both backends run the full case-4 sizing↔layout
// loop to convergence, and the converged extracted parasitics and
// geometry are recorded bit-exactly. This is the per-backend parasitic
// A/B the registry exists to ask — which layout style yields the best
// parasitics for a given topology — frozen so neither backend can
// drift without a visible diff.

// LayoutABEntry is one (topology, backend) cell of the comparison.
type LayoutABEntry struct {
	Topology    string `json:"topology"`
	Layout      string `json:"layout"`
	LayoutCalls int    `json:"layout_calls"`
	// Converged extracted parasitics, hex-exact.
	TotalCapF string            `json:"total_cap_f"`
	NetCapF   map[string]string `json:"net_cap_f"`
	WidthUM   string            `json:"width_um"`
	HeightUM  string            `json:"height_um"`
	AreaUM2   string            `json:"area_um2"`
}

// LayoutABReport is the committed testdata/layout_ab_golden.json schema.
type LayoutABReport struct {
	Tech    string          `json:"tech"`
	Entries []LayoutABEntry `json:"entries"` // topology asc, then layout asc
}

// BuildLayoutAB runs every registered topology under every registered
// layout backend (case 4, default spec, verification skipped — the
// comparison is about parasitics and geometry, not simulation).
func BuildLayoutAB(tech *techno.Tech) (*LayoutABReport, error) {
	rep := &LayoutABReport{Tech: tech.Name}
	for _, topo := range sizing.Topologies() {
		plan, err := sizing.Lookup(topo)
		if err != nil {
			return nil, err
		}
		for _, info := range layout.Backends() {
			res, err := core.Synthesize(tech, plan.DefaultSpec(), core.Options{
				Topology:   topo,
				Case:       4,
				Layout:     info.Name,
				SkipVerify: true,
			})
			if err != nil {
				return nil, fmt.Errorf("repro: %s under %s: %w", topo, info.Name, err)
			}
			par := res.Parasitics
			e := LayoutABEntry{
				Topology:    topo,
				Layout:      info.Name,
				LayoutCalls: res.LayoutCalls,
				TotalCapF:   hexF(par.TotalCap()),
				NetCapF:     map[string]string{},
				WidthUM:     hexF(par.WidthUM),
				HeightUM:    hexF(par.HeightUM),
				AreaUM2:     hexF(par.AreaUM2),
			}
			for net, c := range par.NetCap {
				e.NetCapF[net] = hexF(c)
			}
			rep.Entries = append(rep.Entries, e)
		}
	}
	sort.Slice(rep.Entries, func(i, j int) bool {
		if rep.Entries[i].Topology != rep.Entries[j].Topology {
			return rep.Entries[i].Topology < rep.Entries[j].Topology
		}
		return rep.Entries[i].Layout < rep.Entries[j].Layout
	})
	return rep, nil
}

// DiffLayoutAB compares a live A/B report against the committed one,
// one line per mismatch (empty = bit-identical).
func DiffLayoutAB(want, got *LayoutABReport) []string {
	var bad []string
	add := func(format string, args ...interface{}) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if want.Tech != got.Tech {
		add("tech: want %s, got %s", want.Tech, got.Tech)
	}
	if len(want.Entries) != len(got.Entries) {
		add("entry count: want %d, got %d", len(want.Entries), len(got.Entries))
		return bad
	}
	for i := range want.Entries {
		w, g := want.Entries[i], got.Entries[i]
		pfx := fmt.Sprintf("%s/%s", w.Topology, w.Layout)
		if w.Topology != g.Topology || w.Layout != g.Layout {
			add("%s: entry order mismatch (got %s/%s)", pfx, g.Topology, g.Layout)
			continue
		}
		if w.LayoutCalls != g.LayoutCalls {
			add("%s.layout_calls: want %d, got %d", pfx, w.LayoutCalls, g.LayoutCalls)
		}
		for name, field := range map[string][2]string{
			"total_cap_f": {w.TotalCapF, g.TotalCapF},
			"width_um":    {w.WidthUM, g.WidthUM},
			"height_um":   {w.HeightUM, g.HeightUM},
			"area_um2":    {w.AreaUM2, g.AreaUM2},
		} {
			if field[0] != field[1] {
				add("%s.%s: want %s, got %s", pfx, name, field[0], field[1])
			}
		}
		for _, net := range sortedStrKeys(w.NetCapF) {
			if g.NetCapF[net] != w.NetCapF[net] {
				add("%s.net_cap_f.%s: want %s, got %s", pfx, net, w.NetCapF[net], g.NetCapF[net])
			}
		}
		if len(g.NetCapF) != len(w.NetCapF) {
			add("%s: net count: want %d, got %d", pfx, len(w.NetCapF), len(g.NetCapF))
		}
	}
	return bad
}
