// Package replay turns a recorded run ledger back into live traffic.
//
// Every run the daemon records carries its canonicalized request body
// (obs.RunRecord.Request) and the SHA-256 of the response it produced
// (BodySHA256). That makes the JSONL ledger a replayable workload: this
// package reads one — rotated generation included — re-issues the
// original requests against a live daemon in the recorded order, and
// measures what the paper's service layer is for: throughput, latency
// percentiles, cache-hit/dedup/shed behaviour, and whether cache-hit
// responses are byte-identical to the recorded results.
//
// Replay is a load generator, not a mutation: it only issues requests
// the daemon already answered once, so a warm daemon serves the whole
// ledger from its content-addressed cache and a cold one re-executes
// exactly the recorded workload.
package replay

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"loas/internal/obs"
)

// Item is one replayable request reconstructed from a ledger record.
type Item struct {
	Seq    int64  `json:"seq"`
	RunID  string `json:"run_id"`
	Kind   string `json:"kind"`
	Method string `json:"method"`
	Path   string `json:"path"`
	// Body is the recorded canonical request body (nil for GET kinds).
	Body []byte `json:"-"`
	// WantSHA and WantBytes are the recorded response's SHA-256 and
	// size; empty/zero when the original run errored or recorded no
	// body.
	WantSHA   string `json:"want_sha256,omitempty"`
	WantBytes int    `json:"want_bytes,omitempty"`
	// Outcome is the original run's outcome (ok | cache-hit | dedup).
	Outcome string `json:"outcome"`
}

// endpointFor maps a record kind to its HTTP method and path. Kinds
// without a mapping (or future ones) are skipped by Load.
func endpointFor(kind string) (method, path string, ok bool) {
	switch kind {
	case "synthesize":
		return http.MethodPost, "/v1/synthesize", true
	case "table1":
		return http.MethodPost, "/v1/table1", true
	case "mc":
		return http.MethodPost, "/v1/mc", true
	case "batch":
		return http.MethodPost, "/v1/batch", true
	case "explore":
		return http.MethodPost, "/v1/explore", true
	case "layout.svg":
		return http.MethodGet, "/v1/layout.svg", true
	}
	return "", "", false
}

// Load reads the ledger at path (the rotated <path>.1 generation first,
// then the active file) and returns its replayable items in recorded
// order. Child runs — batch items and exploration probes, recognizable
// by Parent — are excluded unless includeChildren is set: replaying the
// parent request re-issues its children through the daemon's own
// fan-out, so replaying both would double the workload. Records that
// errored, carry no request (pre-recording ledgers, oversized bodies)
// or name an unmapped kind are skipped.
func Load(path string, includeChildren bool) ([]Item, error) {
	recs := obs.ReadLedger(path, 0)
	if len(recs) == 0 {
		return nil, fmt.Errorf("replay: no run records in %s (or %s.1)", path, path)
	}
	var items []Item
	for _, rec := range recs {
		if rec.Outcome == "error" {
			continue
		}
		if rec.Parent != "" && !includeChildren {
			continue
		}
		method, p, ok := endpointFor(rec.Kind)
		if !ok {
			continue
		}
		if method == http.MethodPost && len(rec.Request) == 0 {
			continue
		}
		items = append(items, Item{
			Seq:       rec.Seq,
			RunID:     rec.ID,
			Kind:      rec.Kind,
			Method:    method,
			Path:      p,
			Body:      []byte(rec.Request),
			WantSHA:   rec.BodySHA256,
			WantBytes: rec.Bytes,
			Outcome:   rec.Outcome,
		})
	}
	if len(items) == 0 {
		return nil, fmt.Errorf("replay: %s holds %d records but none are replayable (no recorded requests — ledger predates request recording?)", path, len(recs))
	}
	// ReadLedger returns generations in file order; sort by sequence so
	// replay order matches recording order even across rotation.
	sort.SliceStable(items, func(i, j int) bool { return items[i].Seq < items[j].Seq })
	return items, nil
}

// Config shapes one replay run.
type Config struct {
	// BaseURL locates the daemon, e.g. "http://127.0.0.1:8086".
	BaseURL string
	// Concurrency is the number of in-flight requests (default 1).
	// Items are dispatched strictly in recorded order regardless.
	Concurrency int
	// Rate throttles dispatch to this many requests per second
	// (0 = as fast as the workers drain).
	Rate float64
	// Timeout bounds one request (default 5 minutes — a cold synthesis
	// can be slow; cache hits are microseconds).
	Timeout time.Duration
	// Client overrides the HTTP client (tests). Timeout is applied per
	// request via context either way.
	Client *http.Client
}

// Mismatch is one byte-identity failure: the daemon's response to a
// replayed request differed from the recorded response.
type Mismatch struct {
	Seq     int64  `json:"seq"`
	RunID   string `json:"run_id"`
	Kind    string `json:"kind"`
	WantSHA string `json:"want_sha256"`
	GotSHA  string `json:"got_sha256"`
	GotLen  int    `json:"got_bytes"`
}

// Report aggregates one replay run.
type Report struct {
	Items   int           `json:"items"` // replayable items loaded
	Sent    int           `json:"sent"`  // requests issued
	Elapsed time.Duration `json:"elapsed_ns"`
	// Throughput is completed requests per wall-clock second.
	Throughput float64 `json:"throughput_rps"`

	// Outcome counts, from the X-Loas-Cache header (200 responses),
	// HTTP 503 (shed by the bounded queue) and everything else (errors).
	Hits   int `json:"hits"`
	Misses int `json:"misses"`
	Dedup  int `json:"dedup"`
	Shed   int `json:"shed"`
	Errors int `json:"errors"`

	// Byte identity: Checked counts 200-responses with a recorded
	// SHA-256 to compare against; Matched those that reproduced the
	// recorded bytes exactly.
	Checked    int        `json:"checked"`
	Matched    int        `json:"matched"`
	Mismatches []Mismatch `json:"mismatches,omitempty"`

	// Latency percentiles over completed requests (nearest-rank).
	P50 time.Duration `json:"p50_ns"`
	P90 time.Duration `json:"p90_ns"`
	P99 time.Duration `json:"p99_ns"`
}

// maxMismatchDetails bounds the mismatch list carried in the report.
const maxMismatchDetails = 16

// outcome is one request's measured result.
type outcome struct {
	latency time.Duration
	class   string // hit | miss | dedup | shed | error
	sha     string
	n       int
}

// Run replays items against cfg.BaseURL and aggregates the report.
// Dispatch order is the recorded order; with Concurrency > 1 up to that
// many requests overlap (completion order is then the daemon's to
// decide, as it was for the original clients). ctx cancels the run
// between dispatches.
func Run(ctx context.Context, cfg Config, items []Item) (*Report, error) {
	if cfg.BaseURL == "" {
		return nil, fmt.Errorf("replay: BaseURL required")
	}
	base := strings.TrimRight(cfg.BaseURL, "/")
	conc := cfg.Concurrency
	if conc <= 0 {
		conc = 1
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 5 * time.Minute
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}

	var interval time.Duration
	if cfg.Rate > 0 {
		interval = time.Duration(float64(time.Second) / cfg.Rate)
	}

	outs := make([]outcome, len(items))
	feed := make(chan int) // unbuffered: workers adopt items in order
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range feed {
				outs[i] = issue(ctx, client, base, timeout, items[i])
			}
		}()
	}

	start := time.Now()
	sent := 0
	next := start
dispatch:
	for i := range items {
		if interval > 0 {
			if d := time.Until(next); d > 0 {
				select {
				case <-time.After(d):
				case <-ctx.Done():
					break dispatch
				}
			}
			next = next.Add(interval)
		}
		select {
		case feed <- i:
			sent++
		case <-ctx.Done():
			break dispatch
		}
	}
	close(feed)
	wg.Wait()
	elapsed := time.Since(start)

	rep := &Report{Items: len(items), Sent: sent, Elapsed: elapsed}
	if elapsed > 0 {
		rep.Throughput = float64(sent) / elapsed.Seconds()
	}
	latencies := make([]time.Duration, 0, sent)
	for i := range items[:sent] {
		o := outs[i]
		latencies = append(latencies, o.latency)
		switch o.class {
		case "hit":
			rep.Hits++
		case "dedup":
			rep.Dedup++
		case "shed":
			rep.Shed++
		case "error":
			rep.Errors++
		default:
			rep.Misses++
		}
		if it := items[i]; it.WantSHA != "" && (o.class == "hit" || o.class == "miss" || o.class == "dedup") {
			rep.Checked++
			if o.sha == it.WantSHA {
				rep.Matched++
			} else if len(rep.Mismatches) < maxMismatchDetails {
				rep.Mismatches = append(rep.Mismatches, Mismatch{
					Seq: it.Seq, RunID: it.RunID, Kind: it.Kind,
					WantSHA: it.WantSHA, GotSHA: o.sha, GotLen: o.n,
				})
			}
		}
	}
	rep.P50, rep.P90, rep.P99 = percentiles(latencies)
	return rep, nil
}

// issue sends one replayed request and classifies the response.
func issue(ctx context.Context, client *http.Client, base string, timeout time.Duration, it Item) outcome {
	rctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	var body io.Reader
	if len(it.Body) > 0 {
		body = bytes.NewReader(it.Body)
	}
	req, err := http.NewRequestWithContext(rctx, it.Method, base+it.Path, body)
	if err != nil {
		return outcome{class: "error"}
	}
	if it.Method == http.MethodPost {
		req.Header.Set("Content-Type", "application/json")
	}
	start := time.Now()
	resp, err := client.Do(req)
	if err != nil {
		return outcome{latency: time.Since(start), class: "error"}
	}
	defer resp.Body.Close()
	data, rerr := io.ReadAll(resp.Body)
	o := outcome{latency: time.Since(start), n: len(data)}
	switch {
	case rerr != nil:
		o.class = "error"
	case resp.StatusCode == http.StatusServiceUnavailable:
		o.class = "shed"
	case resp.StatusCode != http.StatusOK:
		o.class = "error"
	default:
		switch resp.Header.Get("X-Loas-Cache") {
		case "hit":
			o.class = "hit"
		case "dedup":
			o.class = "dedup"
		default:
			o.class = "miss"
		}
		sum := sha256.Sum256(data)
		o.sha = hex.EncodeToString(sum[:])
	}
	return o
}

// percentiles computes nearest-rank p50/p90/p99 over the latencies.
func percentiles(ds []time.Duration) (p50, p90, p99 time.Duration) {
	if len(ds) == 0 {
		return 0, 0, 0
	}
	sorted := append([]time.Duration(nil), ds...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := func(p float64) time.Duration {
		i := int(p*float64(len(sorted))+0.5) - 1
		if i < 0 {
			i = 0
		}
		if i >= len(sorted) {
			i = len(sorted) - 1
		}
		return sorted[i]
	}
	return rank(0.50), rank(0.90), rank(0.99)
}

// Text renders the report for the CLI.
func (r *Report) Text() string {
	var b strings.Builder
	fmt.Fprintf(&b, "replayed %d/%d requests in %s (%.1f req/s)\n",
		r.Sent, r.Items, r.Elapsed.Round(time.Millisecond), r.Throughput)
	fmt.Fprintf(&b, "  outcomes: %d hit, %d miss, %d dedup, %d shed, %d error\n",
		r.Hits, r.Misses, r.Dedup, r.Shed, r.Errors)
	fmt.Fprintf(&b, "  latency:  p50 %s  p90 %s  p99 %s\n",
		r.P50.Round(time.Microsecond), r.P90.Round(time.Microsecond), r.P99.Round(time.Microsecond))
	if r.Checked > 0 {
		fmt.Fprintf(&b, "  identity: %d/%d responses byte-identical to the recorded results\n",
			r.Matched, r.Checked)
		for _, m := range r.Mismatches {
			fmt.Fprintf(&b, "    MISMATCH seq %d (%s, %s): want %.12s..., got %.12s... (%d bytes)\n",
				m.Seq, m.RunID, m.Kind, m.WantSHA, m.GotSHA, m.GotLen)
		}
	}
	return b.String()
}
