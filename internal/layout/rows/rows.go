// Package rows is the second layout backend: a row-based placer in the
// style of analog row layout generators (Gebru et al.; Badaoui &
// Vemuri). Instead of a slicing tree it imposes a row discipline — an
// NFET row at the bottom, a passive row in the middle, a PFET row on
// top — with routing channels between the rows. Matched structures keep
// their interdigitation and common-centroid ordering because the
// modules themselves (cairo.MatchedStack over motif/stack primitives)
// already encode it; the placer adds row-level symmetry by centering
// the widest matched stacks in each row.
//
// The placer enumerates a small deterministic set of candidate
// placements (placement styles × fold policies), realizes and routes
// every one through the shared route + extract stages, and picks the
// winner by extracted parasitics, then area — the multi-placement-style
// selection loop of Badaoui & Vemuri, with the paper's
// parasitic-driven objective.
package rows

import (
	"fmt"
	"sort"
	"strings"

	"loas/internal/layout"
	"loas/internal/layout/cairo"
	"loas/internal/layout/extract"
	"loas/internal/layout/geom"
	"loas/internal/layout/route"
	"loas/internal/layout/slicing"
	"loas/internal/techno"
)

// Row indices, bottom to top. NMOS devices sit nearest the substrate
// rail, PMOS devices nearest their n-wells at the top, and passives
// (capacitors, resistors — no bulk terminal) fill the middle row.
const (
	rowNMOS = iota
	rowPassive
	rowPMOS
	rowCount
)

// Style names one candidate placement: an ordering discipline crossed
// with a fold (shape-choice) policy.
//
//   - "sym" orders each row center-out — matched stacks first, then
//     descending width — so the differential structures sit on the row's
//     symmetry axis; "alpha" orders alphabetically (the naive baseline).
//   - "quant" quantizes module heights up toward the row height (taller
//     folds → narrower modules → shorter rows); "flat" picks each
//     module's minimal-height realization.
var styles = []struct{ name, order, policy string }{
	{"sym-quant", "sym", "quant"},
	{"sym-flat", "sym", "flat"},
	{"alpha-quant", "alpha", "quant"},
	{"alpha-flat", "alpha", "flat"},
}

// Candidate is one realized (or failed) placement style. Tests run DRC
// over every candidate's Cell; Plan picks the winner.
type Candidate struct {
	Style string
	Plan  *cairo.Plan
	Err   error
}

// backend registers the placer as layout backend "rows".
type backend struct{}

func (backend) Info() layout.Info {
	return layout.Info{
		Name: "rows",
		Description: "row-based placement: NFET/passive/PFET rows with routing " +
			"channels between them; candidate placements scored by extracted " +
			"parasitics, then area",
		Constraints:  []string{"max_w", "max_h"},
		CacheSession: true,
	}
}

func init() { layout.Register(backend{}) }

// Plan realizes every candidate placement, drops the ones that fail to
// route or violate the shape constraint, and returns the winner:
// minimal total extracted capacitance, ties broken by area, then by
// candidate order. Deterministic with or without a session.
func (backend) Plan(tech *techno.Tech, d *cairo.Design, c layout.Constraint, s *layout.Session) (*layout.Plan, error) {
	cands := Candidates(tech, d, s)
	var best *Candidate
	var reasons []string
	for i := range cands {
		cand := &cands[i]
		if cand.Err != nil {
			reasons = append(reasons, cand.Style+": "+cand.Err.Error())
			continue
		}
		p := cand.Plan.Parasitics
		if c.MaxW > 0 && p.WidthUM*1e3 > float64(c.MaxW) {
			reasons = append(reasons, fmt.Sprintf("%s: width %.1fµm exceeds max_w", cand.Style, p.WidthUM))
			continue
		}
		if c.MaxH > 0 && p.HeightUM*1e3 > float64(c.MaxH) {
			reasons = append(reasons, fmt.Sprintf("%s: height %.1fµm exceeds max_h", cand.Style, p.HeightUM))
			continue
		}
		if best == nil || betterThan(cand, best) {
			best = cand
		}
	}
	if best == nil {
		return nil, fmt.Errorf("rows: design %s: no feasible placement (%s)",
			d.Name, strings.Join(reasons, "; "))
	}
	return best.Plan, nil
}

// betterThan reports whether a beats b: primary objective is total
// extracted capacitance, secondary is bounding-box area. Strict
// comparisons keep the earlier candidate on exact ties.
func betterThan(a, b *Candidate) bool {
	ca, cb := a.Plan.Parasitics.TotalCap(), b.Plan.Parasitics.TotalCap()
	if ca != cb {
		return ca < cb
	}
	return a.Plan.Parasitics.AreaUM2 < b.Plan.Parasitics.AreaUM2
}

// moduleSlot is one module with its realized alternatives.
type moduleSlot struct {
	m       cairo.Module
	name    string
	row     int
	stack   bool
	choices []int
	builds  map[int]*cairo.Built
}

// rowOf classifies a module into its row by device type; modules
// without a MOS type (capacitors, resistors) take the passive row.
func rowOf(m cairo.Module) (row int, isStack bool) {
	switch t := m.(type) {
	case *cairo.Transistor:
		if t.Type == techno.PMOS {
			return rowPMOS, false
		}
		return rowNMOS, false
	case *cairo.MatchedStack:
		if t.Type == techno.PMOS {
			return rowPMOS, true
		}
		return rowNMOS, true
	default:
		return rowPassive, false
	}
}

// Candidates realizes every placement style for the design, routing and
// extracting each one. Failed styles (typically unroutable placements)
// carry their error; tests DRC-check every successful candidate.
func Candidates(tech *techno.Tech, d *cairo.Design, s *layout.Session) []Candidate {
	slots, err := buildSlots(tech, d, s)
	out := make([]Candidate, 0, len(styles))
	for _, st := range styles {
		cand := Candidate{Style: st.name}
		if err != nil {
			cand.Err = err
		} else {
			cand.Plan, cand.Err = realize(tech, d, s, slots, st.order, st.policy)
		}
		out = append(out, cand)
	}
	return out
}

// buildSlots realizes every alternative of every module once (through
// the session's build cache when one is given) and classifies modules
// into rows.
func buildSlots(tech *techno.Tech, d *cairo.Design, s *layout.Session) ([]moduleSlot, error) {
	slots := make([]moduleSlot, 0, len(d.Modules))
	for _, m := range d.Modules {
		row, isStack := rowOf(m)
		slot := moduleSlot{
			m: m, name: m.Name(), row: row, stack: isStack,
			choices: m.Choices(), builds: map[int]*cairo.Built{},
		}
		if len(slot.choices) == 0 {
			return nil, fmt.Errorf("rows: module %s offers no shape choices", slot.name)
		}
		for _, choice := range slot.choices {
			b, err := s.Build(tech, m, choice)
			if err != nil {
				return nil, fmt.Errorf("rows: module %s choice %d: %w", slot.name, choice, err)
			}
			slot.builds[choice] = b
		}
		slots = append(slots, slot)
	}
	return slots, nil
}

func dims(b *cairo.Built) (w, h int64) {
	bb := b.Cell.BBox()
	return bb.W(), bb.H()
}

// minHeightChoice picks the module's shortest realization; ties prefer
// the narrower, then the earlier choice.
func minHeightChoice(slot moduleSlot) int {
	best := slot.choices[0]
	bw, bh := dims(slot.builds[best])
	for _, c := range slot.choices[1:] {
		w, h := dims(slot.builds[c])
		if h < bh || (h == bh && w < bw) {
			best, bw, bh = c, w, h
		}
	}
	return best
}

// quantChoice quantizes the module's height up toward the row target:
// the tallest realization not exceeding target (every module's minimal
// height is ≤ target by construction); ties prefer the narrower, then
// the earlier choice.
func quantChoice(slot moduleSlot, target int64) int {
	best, found := 0, false
	var bw, bh int64
	for _, c := range slot.choices {
		w, h := dims(slot.builds[c])
		if h > target {
			continue
		}
		if !found || h > bh || (h == bh && w < bw) {
			best, bw, bh, found = c, w, h, true
		}
	}
	if !found {
		return minHeightChoice(slot)
	}
	return best
}

// chooseFolds applies the fold policy to one row's modules and returns
// the chosen alternative per module name.
func chooseFolds(row []moduleSlot, policy string) map[string]int {
	chosen := map[string]int{}
	if policy == "quant" {
		var target int64
		for _, slot := range row {
			_, h := dims(slot.builds[minHeightChoice(slot)])
			if h > target {
				target = h
			}
		}
		for _, slot := range row {
			chosen[slot.name] = quantChoice(slot, target)
		}
		return chosen
	}
	for _, slot := range row {
		chosen[slot.name] = minHeightChoice(slot)
	}
	return chosen
}

// orderRow fixes the left-to-right module order of one row.
//
// "alpha" is alphabetical. "sym" builds a symmetric arrangement: rank
// modules by (matched stack first, width descending, name), then fan
// out from the center — rank 0 in the middle, successive ranks
// alternating right and left — so matched differential structures land
// on the row's symmetry axis with progressively smaller devices flanking
// them, the row-level mirror symmetry of analog row placers.
func orderRow(row []moduleSlot, chosen map[string]int, order string) []moduleSlot {
	sorted := append([]moduleSlot(nil), row...)
	if order == "alpha" {
		sort.Slice(sorted, func(i, j int) bool { return sorted[i].name < sorted[j].name })
		return sorted
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.stack != b.stack {
			return a.stack
		}
		wa, _ := dims(a.builds[chosen[a.name]])
		wb, _ := dims(b.builds[chosen[b.name]])
		if wa != wb {
			return wa > wb
		}
		return a.name < b.name
	})
	var left, right []moduleSlot
	for i, slot := range sorted {
		if i%2 == 0 {
			right = append(right, slot)
		} else {
			left = append(left, slot)
		}
	}
	out := make([]moduleSlot, 0, len(sorted))
	for i := len(left) - 1; i >= 0; i-- {
		out = append(out, left[i])
	}
	return append(out, right...)
}

func snapDown(v, grid int64) int64 {
	if grid <= 1 {
		return v
	}
	return (v / grid) * grid
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// realize places one candidate: rows stacked bottom-up with
// channel-height gaps between them, each row centered on the common
// vertical axis, then routes and extracts exactly like the slicing
// backend.
func realize(tech *techno.Tech, d *cairo.Design, s *layout.Session, slots []moduleSlot, order, policy string) (*cairo.Plan, error) {
	byRow := make([][]moduleSlot, rowCount)
	for _, slot := range slots {
		byRow[slot.row] = append(byRow[slot.row], slot)
	}

	need := d.ChannelNeedNM(tech)
	// Intra-row gap: wide enough for adjacent n-wells on different nets
	// (the 6 µm the slicing designs use between vertically-cut siblings).
	gapX := max64(6000, tech.Rules.NWellSpace)

	type placedRow struct {
		slots  []moduleSlot
		chosen map[string]int
		w, h   int64
	}
	var rows []placedRow
	var maxW int64
	for r := 0; r < rowCount; r++ {
		if len(byRow[r]) == 0 {
			continue
		}
		chosen := chooseFolds(byRow[r], policy)
		ordered := orderRow(byRow[r], chosen, order)
		pr := placedRow{slots: ordered, chosen: chosen}
		for i, slot := range ordered {
			w, h := dims(slot.builds[chosen[slot.name]])
			if i > 0 {
				pr.w += gapX
			}
			pr.w += w
			if h > pr.h {
				pr.h = h
			}
		}
		if pr.w > maxW {
			maxW = pr.w
		}
		rows = append(rows, pr)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("rows: design %s has no modules", d.Name)
	}

	top := geom.NewCell(d.Name)
	par := extract.New()
	choices := map[string]int{}
	placed := map[string]slicing.Placed{}
	var obstacles []geom.Rect

	var y int64
	for ri, pr := range rows {
		if ri > 0 {
			y += need
		}
		x := snapDown((maxW-pr.w)/2, tech.Rules.Grid)
		for _, slot := range pr.slots {
			choice := pr.chosen[slot.name]
			b := slot.builds[choice]
			bb := b.Cell.BBox()
			top.Merge(b.Cell, x-bb.L, y-bb.B)
			r := geom.XYWH(x, y, bb.W(), bb.H())
			placed[slot.name] = slicing.Placed{Name: slot.name, Rect: r, Choice: choice}
			obstacles = append(obstacles, r)
			choices[slot.name] = choice
			for inst, g := range b.Geoms {
				par.DeviceGeom[inst] = g
			}
			for inst, f := range b.Folds {
				par.Folds[inst] = f
			}
			for net, cap := range b.RailCap {
				par.NetCap[net] += cap
			}
			if b.WellNet != "" && b.WellArea > 0 {
				par.WellCap[b.WellNet] += b.WellArea*tech.Wire.CWellArea + b.WellPerim*tech.Wire.CWellPerim
			}
			x += bb.W() + gapX
		}
		y += pr.h
	}

	channels := route.Channels(obstacles, need)
	rres, err := s.RouteCached(tech, top, d.Nets, channels)
	if err != nil {
		return nil, fmt.Errorf("rows: design %s (%s-%s): %w", d.Name, order, policy, err)
	}
	for net, cap := range rres.NetCap {
		par.NetCap[net] += cap
	}
	for pair, cap := range rres.Coupling {
		par.Coupling[pair] += cap
	}

	bb := top.BBox()
	par.WidthUM = float64(bb.W()) * 1e-3
	par.HeightUM = float64(bb.H()) * 1e-3
	par.AreaUM2 = bb.AreaUM2()
	par.LayoutCalls = 1

	fp := &slicing.Floorplan{W: maxW, H: y, Placed: placed}
	return &cairo.Plan{Parasitics: par, Cell: top, Floorplan: fp, ChoiceOf: choices}, nil
}
