// Quickstart: synthesize a 65 MHz folded-cascode OTA with full layout
// awareness (the paper's case 4), print the synthesized-vs-extracted
// performance and the layout summary.
package main

import (
	"fmt"
	"log"

	"loas/internal/core"
	"loas/internal/sizing"
	"loas/internal/techno"
)

func main() {
	tech := techno.Default060()
	spec := sizing.Default65MHz()

	res, err := core.Synthesize(tech, spec, core.Options{Case: 4})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("Layout-oriented synthesis converged in %d layout calls (%s)\n\n",
		res.LayoutCalls, res.Elapsed.Round(1e6))
	fmt.Println("                        synthesized(extracted)")
	for _, row := range sizing.RowNames() {
		fmt.Println("  " + res.Synthesized.Row(row, res.Extracted))
	}
	fmt.Printf("\nlayout: %.1f x %.1f um, %.0f um2\n",
		res.Parasitics.WidthUM, res.Parasitics.HeightUM, res.Parasitics.AreaUM2)
	op := res.Design.OperatingPoint()
	fmt.Printf("devices: input pair %.1f um / %.2f um, cascode length %.2f um, tail %.0f uA\n",
		res.Design.DeviceTable()[sizing.MP1].W*1e6, res.Design.DeviceTable()[sizing.MP1].L*1e6,
		op.Lc*1e6, op.Itail*1e6)
}
