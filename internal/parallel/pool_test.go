package parallel

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolRunsJobs(t *testing.T) {
	p := NewPool(4, 8)
	defer p.Close()
	var n atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := p.Submit(context.Background(), func(context.Context) error {
				n.Add(1)
				return nil
			}); err != nil && !errors.Is(err, ErrQueueFull) {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	st := p.Stats()
	if n.Load() != st.Executed || st.Executed+st.Rejected != 32 {
		t.Fatalf("executed %d, rejected %d, ran %d", st.Executed, st.Rejected, n.Load())
	}
}

func TestPoolBoundedConcurrency(t *testing.T) {
	const workers = 3
	p := NewPool(workers, 64)
	defer p.Close()
	var cur, peak atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 24; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(context.Context) error {
				c := cur.Add(1)
				for {
					pk := peak.Load()
					if c <= pk || peak.CompareAndSwap(pk, c) {
						break
					}
				}
				time.Sleep(time.Millisecond)
				cur.Add(-1)
				return nil
			})
		}()
	}
	wg.Wait()
	if pk := peak.Load(); pk > workers {
		t.Fatalf("peak concurrency %d > %d workers", pk, workers)
	}
}

func TestPoolQueueFull(t *testing.T) {
	p := NewPool(1, 0)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func(context.Context) error {
		close(started)
		<-block
		return nil
	})
	<-started
	err := p.Submit(context.Background(), func(context.Context) error { return nil })
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("want ErrQueueFull, got %v", err)
	}
	if st := p.Stats(); st.Rejected != 1 {
		t.Fatalf("rejected = %d, want 1", st.Rejected)
	}
	close(block)
}

func TestPoolPanicContained(t *testing.T) {
	p := NewPool(2, 2)
	defer p.Close()
	err := p.Submit(context.Background(), func(context.Context) error {
		panic("boom")
	})
	var pe *PanicError
	if !errors.As(err, &pe) || pe.Value != "boom" {
		t.Fatalf("want PanicError(boom), got %v", err)
	}
	// The pool survives the panic.
	if err := p.Submit(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("submit after panic: %v", err)
	}
}

func TestPoolCloseDrains(t *testing.T) {
	p := NewPool(2, 8)
	var done atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.Submit(context.Background(), func(context.Context) error {
				time.Sleep(5 * time.Millisecond)
				done.Add(1)
				return nil
			})
		}()
	}
	time.Sleep(2 * time.Millisecond) // let some jobs get accepted
	p.Close()
	wg.Wait()
	if err := p.Submit(context.Background(), func(context.Context) error { return nil }); !errors.Is(err, ErrPoolClosed) {
		t.Fatalf("want ErrPoolClosed, got %v", err)
	}
	st := p.Stats()
	if st.Depth != 0 {
		t.Fatalf("depth after close = %d, want 0", st.Depth)
	}
	if done.Load() != st.Executed {
		t.Fatalf("close lost jobs: done %d, executed %d", done.Load(), st.Executed)
	}
}

func TestPoolSubmitContextExpired(t *testing.T) {
	p := NewPool(1, 4)
	defer p.Close()
	block := make(chan struct{})
	started := make(chan struct{})
	go p.Submit(context.Background(), func(context.Context) error {
		close(started)
		<-block
		return nil
	})
	<-started
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := p.Submit(ctx, func(context.Context) error {
		t.Error("cancelled queued job must not run")
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	close(block)
}
