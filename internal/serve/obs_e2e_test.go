package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"loas/internal/obs"
	"loas/internal/replay"
)

// TestHealthzBuildStamp: /healthz carries the build stamp so one probe
// identifies what is running where (satellite: build identity).
func TestHealthzBuildStamp(t *testing.T) {
	_, ts := newStubServer(t, Config{}, &stubBackend{})
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rep HealthReport
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	if rep.Status != "ok" {
		t.Errorf("status = %q", rep.Status)
	}
	if rep.Version == "" {
		t.Error("version empty — BuildVersion must always report something (\"unknown\" at worst)")
	}
	if rep.GoVersion != runtime.Version() {
		t.Errorf("go_version = %q, want %q", rep.GoVersion, runtime.Version())
	}
	if rep.GOMAXPROCS < 1 {
		t.Errorf("gomaxprocs = %d", rep.GOMAXPROCS)
	}
}

// TestMetricsBuildInfo: the loas_build_info gauge is on /metrics with
// the version/go labels and the constant value 1.
func TestMetricsBuildInfo(t *testing.T) {
	_, ts := newStubServer(t, Config{}, &stubBackend{})
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	out := string(data)
	if !strings.Contains(out, "# TYPE loas_build_info gauge") {
		t.Errorf("/metrics missing loas_build_info TYPE header:\n%.2000s", out)
	}
	want := fmt.Sprintf(`go="%s"`, runtime.Version())
	if !strings.Contains(out, want) || !strings.Contains(out, `version="`) {
		t.Errorf("/metrics loas_build_info missing %s / version label:\n%.2000s", want, out)
	}
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "loas_build_info{") && !strings.HasSuffix(line, " 1") {
			t.Errorf("build info gauge not constant 1: %q", line)
		}
	}
}

// TestExecuteKeyedLabelsLeader: while a cold run executes, the pool
// worker carries the request's pprof labels (phase/layout/run_id), so
// profile samples attribute to the request. The stub blocks inside the
// backend; the goroutine profile is captured mid-flight.
func TestExecuteKeyedLabelsLeader(t *testing.T) {
	stub := &stubBackend{started: make(chan struct{}), release: make(chan struct{})}
	_, ts := newStubServer(t, Config{}, stub)

	errc := make(chan error, 1)
	go func() {
		resp, err := http.Post(ts.URL+"/v1/synthesize", "application/json",
			strings.NewReader(`{"case":3}`))
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		errc <- err
	}()
	<-stub.started
	var buf bytes.Buffer
	if err := pprof.Lookup("goroutine").WriteTo(&buf, 1); err != nil {
		t.Fatal(err)
	}
	close(stub.release)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	prof := buf.String()
	for _, want := range []string{`"phase":"synthesize"`, `"layout":"slicing"`, `"run_id":"run-`} {
		if !strings.Contains(prof, want) {
			t.Errorf("goroutine profile missing %s while the leader ran:\n%s", want, prof)
		}
	}
}

// TestLedgerReplayEndToEnd is the tentpole's closed loop: a daemon
// records its traffic (through a rotating ledger), and `loas replay`'s
// engine turns the ledger back into the same traffic — continuous
// sequence numbers across the rotation boundary, every response
// byte-identical to the recorded SHA-256 (the warm daemon serves them
// from cache).
func TestLedgerReplayEndToEnd(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	// MaxBytes sized so the workload (~24 KiB of records, ~1 KiB each)
	// crosses the rotation boundary exactly once — both generations stay
	// readable and no record is dropped.
	ledger, err := obs.OpenLedger(path, obs.LedgerOptions{MaxBytes: 16 << 10})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ledger.Close() })
	_, ts := newStubServer(t, Config{Ledger: ledger}, &stubBackend{})

	// Distinct specs → distinct cache keys → every run is a cold "ok"
	// run with its own recorded request and response hash.
	spec := func(gbwMHz int) string {
		return fmt.Sprintf(`{"spec":{"vdd":3.3,"gbw":%d000000,"pm":65,"cl":3e-12,"icm_low":-0.55,"icm_high":1.84,"out_low":0.51,"out_high":2.31}}`, gbwMHz)
	}
	const n = 24
	for i := 0; i < n; i++ {
		resp, data := post(t, ts.URL+"/v1/synthesize", spec(60+i))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, data)
		}
	}
	// One duplicate: recorded as a cache-hit run, still replayable.
	post(t, ts.URL+"/v1/synthesize", spec(60))

	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("workload did not cross a rotation (records too small?): %v", err)
	}

	items, err := replay.Load(path, false)
	if err != nil {
		t.Fatal(err)
	}
	// No drops across rotation: one item per request, strictly
	// consecutive sequence numbers.
	if len(items) != n+1 {
		t.Fatalf("loaded %d items, want %d", len(items), n+1)
	}
	for i := 1; i < len(items); i++ {
		if items[i].Seq != items[i-1].Seq+1 {
			t.Fatalf("sequence gap across rotation: %d then %d", items[i-1].Seq, items[i].Seq)
		}
	}
	for _, it := range items {
		if it.WantSHA == "" || len(it.Body) == 0 {
			t.Fatalf("item %s not replayable: sha=%q len(body)=%d", it.RunID, it.WantSHA, len(it.Body))
		}
	}

	// Replay against the same (warm) daemon: every response must be a
	// cache hit and byte-identical to the recorded hash.
	rep, err := replay.Run(context.Background(), replay.Config{
		BaseURL: ts.URL, Concurrency: 4,
	}, items)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != len(items) {
		t.Fatalf("sent %d of %d", rep.Sent, rep.Items)
	}
	if rep.Hits != len(items) {
		t.Fatalf("warm replay: %d hits of %d (miss=%d dedup=%d shed=%d err=%d)",
			rep.Hits, len(items), rep.Misses, rep.Dedup, rep.Shed, rep.Errors)
	}
	if rep.Checked != len(items) || rep.Matched != len(items) {
		t.Fatalf("byte identity: matched %d / checked %d of %d; mismatches: %+v",
			rep.Matched, rep.Checked, len(items), rep.Mismatches)
	}
}

// TestRecordedRequestIsSelfContained: the ledger records the request
// with the resolved spec embedded, so replaying it against a daemon
// configured with a different default spec still reproduces the
// recorded result (the recorded body does not depend on server config).
func TestRecordedRequestIsSelfContained(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	ledger, err := obs.OpenLedger(path, obs.LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ledger.Close() })
	_, ts := newStubServer(t, Config{Ledger: ledger}, &stubBackend{})

	// A spec-less request resolves against the server default.
	resp, _ := post(t, ts.URL+"/v1/synthesize", `{"case":2}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	items, err := replay.Load(path, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 1 {
		t.Fatalf("loaded %d items", len(items))
	}
	var req struct {
		Spec *struct {
			GBW float64 `json:"gbw"`
			VDD float64 `json:"vdd"`
		} `json:"spec"`
	}
	if err := json.Unmarshal(items[0].Body, &req); err != nil {
		t.Fatal(err)
	}
	if req.Spec == nil || req.Spec.GBW <= 0 || req.Spec.VDD <= 0 {
		t.Fatalf("recorded request does not embed the resolved spec: %s", items[0].Body)
	}
}
