package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestTraceNilSafe(t *testing.T) {
	var tr *Trace
	tr.Record(Iteration{Call: 1}) // must not panic
	if tr.Iterations() != nil {
		t.Fatal("nil trace should report no iterations")
	}
	if tr.Len() != 0 {
		t.Fatal("nil trace should have length 0")
	}
}

func TestTraceRecordsInOrder(t *testing.T) {
	tr := &Trace{}
	for i := 1; i <= 3; i++ {
		tr.Record(Iteration{Call: i, DeltaF: float64(i)})
	}
	got := tr.Iterations()
	if len(got) != 3 || tr.Len() != 3 {
		t.Fatalf("expected 3 iterations, got %d", len(got))
	}
	for i, it := range got {
		if it.Call != i+1 {
			t.Fatalf("iteration %d out of order: call %d", i, it.Call)
		}
	}
	// The returned slice is a copy: mutating it must not affect the trace.
	got[0].Call = 99
	if tr.Iterations()[0].Call != 1 {
		t.Fatal("Iterations must return a copy")
	}
}

func TestTraceConcurrentRecord(t *testing.T) {
	tr := &Trace{}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				tr.Record(Iteration{Call: i})
			}
		}()
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("lost records: %d of 800", tr.Len())
	}
}

func TestConvergenceTableRendering(t *testing.T) {
	iters := []Iteration{
		{Call: 1, DeltaF: -1, OutCapF: 100e-15, FN1CapF: 50e-15, W1: 140e-6, Lc: 1e-6, Itail: 300e-6, Folds: 20},
		{Call: 2, DeltaF: 12e-15, OutCapF: 110e-15, FN1CapF: 55e-15, W1: 141e-6, Lc: 1.1e-6, Itail: 310e-6, Folds: 20},
	}
	txt := ConvergenceTable(iters)
	for _, want := range []string{"call", "Δ(fF)", "—", "12.00", "folds"} {
		if !strings.Contains(txt, want) {
			t.Fatalf("table missing %q:\n%s", want, txt)
		}
	}
}

func TestConverged(t *testing.T) {
	tol := 1e-15
	cases := []struct {
		name  string
		iters []Iteration
		want  bool
	}{
		{"empty", nil, false},
		{"single call has no delta", []Iteration{{Call: 1, DeltaF: -1}}, false},
		{"fixpoint", []Iteration{{Call: 1, DeltaF: -1}, {Call: 2, DeltaF: 1e-16}}, true},
		{"still moving", []Iteration{{Call: 1, DeltaF: -1}, {Call: 2, DeltaF: 5e-15}}, false},
	}
	for _, c := range cases {
		if got := Converged(c.iters, tol); got != c.want {
			t.Errorf("%s: Converged = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestCounter(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	c.Add(-7) // ignored: counters are monotonic
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 0.05+0.1+0.5+2+50; got != want {
		t.Fatalf("sum = %g, want %g", got, want)
	}
	var b strings.Builder
	r := NewRegistry()
	r.Histogram("lat", "latency", []float64{0.1, 1, 10})
	// Re-registering returns the same instance.
	if r.Histogram("lat", "", nil) != r.Histogram("lat", "", nil) {
		t.Fatal("histogram registration not idempotent")
	}
	for _, v := range []float64{0.05, 0.1, 0.5, 2, 50} {
		r.Histogram("lat", "", nil).Observe(v)
	}
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Cumulative buckets: ≤0.1 → 2 (0.05 and the boundary 0.1), ≤1 → 3,
	// ≤10 → 4, +Inf → 5.
	for _, want := range []string{
		`lat_bucket{le="0.1"} 2`,
		`lat_bucket{le="1"} 3`,
		`lat_bucket{le="10"} 4`,
		`lat_bucket{le="+Inf"} 5`,
		"lat_count 5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("b_total", "second").Add(2)
	r.Counter("a_total", "first").Inc()
	r.GaugeFunc("depth", "queue depth", func() float64 { return 3.5 })
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Sorted by name, typed, with help lines.
	ia, ib := strings.Index(out, "a_total 1"), strings.Index(out, "b_total 2")
	if ia < 0 || ib < 0 || ia > ib {
		t.Fatalf("counters missing or unsorted:\n%s", out)
	}
	for _, want := range []string{
		"# HELP a_total first",
		"# TYPE a_total counter",
		"# TYPE depth gauge",
		"depth 3.5",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Histogram("x", "", nil)
}

func TestHistogramConcurrentObserve(t *testing.T) {
	h := NewHistogram([]float64{1})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(0.5)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8000 {
		t.Fatalf("count = %d, want 8000", h.Count())
	}
	if h.Sum() != 4000 {
		t.Fatalf("sum = %g, want 4000", h.Sum())
	}
}
