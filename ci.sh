#!/bin/sh
# CI gate for the repository. The -race run is mandatory: the parallel
# synthesis engine (internal/parallel and its users in mc, core, repro)
# is only shippable while the race detector, the worker-invariance tests
# and the shared-tech concurrency tests all pass.
set -eux

go vet ./...
go build ./...
go test -race ./...
