package obs

import "context"

// Context propagation for the serving stack: the daemon opens the
// request-level spans and a live trace, then hands both to the backend
// through the job context so the Backend interface stays byte-oriented.
// Every accessor is nil-safe — a context without a span or trace yields
// the no-op nil recorder, so the core engine never branches on whether
// it is being observed.

type ctxKey int

const (
	ctxSpan ctxKey = iota
	ctxTrace
)

// ContextWithSpan returns ctx carrying span as the current parent.
func ContextWithSpan(ctx context.Context, span *Span) context.Context {
	return context.WithValue(ctx, ctxSpan, span)
}

// SpanFromContext returns the current span, or nil (a valid no-op).
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxSpan).(*Span)
	return s
}

// ContextWithTrace returns ctx carrying a live iteration recorder.
func ContextWithTrace(ctx context.Context, t *Trace) context.Context {
	return context.WithValue(ctx, ctxTrace, t)
}

// TraceFromContext returns the live trace, or nil (a valid no-op).
func TraceFromContext(ctx context.Context) *Trace {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(ctxTrace).(*Trace)
	return t
}
