package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"loas/internal/circuit"
	"loas/internal/techno"
)

// randomLadder builds an n-stage resistor ladder from a 1 V source and
// returns the circuit plus the analytically computed node voltages.
func randomLadder(r *rand.Rand, n int) (*circuit.Circuit, []float64) {
	c := circuit.New("ladder")
	c.Add(&circuit.VSource{Name: "in", Pos: "n0", Neg: "0", DC: 1})
	rs := make([]float64, 2*n)
	for i := range rs {
		rs[i] = math.Exp(r.Float64()*8 - 2) // 0.13 Ω … 400 Ω decades
	}
	for i := 0; i < n; i++ {
		c.Add(
			&circuit.Resistor{Name: fmt.Sprintf("s%d", i),
				A: fmt.Sprintf("n%d", i), B: fmt.Sprintf("n%d", i+1), R: rs[2*i]},
			&circuit.Resistor{Name: fmt.Sprintf("p%d", i),
				A: fmt.Sprintf("n%d", i+1), B: "0", R: rs[2*i+1]},
		)
	}
	// Analytic solution by backward impedance folding.
	z := make([]float64, n+1)
	z[n] = rs[2*n-1]
	for i := n - 1; i >= 1; i-- {
		zin := rs[2*i] + z[i+1]
		z[i] = rs[2*i-1] * zin / (rs[2*i-1] + zin)
	}
	v := make([]float64, n+1)
	v[0] = 1
	for i := 1; i <= n; i++ {
		zin := z[i]
		v[i] = v[i-1] * zin / (rs[2*(i-1)] + zin)
	}
	return c, v
}

func TestDCLadderMatchesAnalytic(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(8)
		ckt, want := randomLadder(r, n)
		eng := NewEngine(ckt, techno.TempNominal)
		res, err := eng.OP(OPOptions{})
		if err != nil {
			return false
		}
		for i := 1; i <= n; i++ {
			got := res.Volt(ckt, fmt.Sprintf("n%d", i))
			if math.Abs(got-want[i]) > 1e-6+1e-6*math.Abs(want[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestACPassiveGainBounded(t *testing.T) {
	// Property: a passive RC network driven by a 1 V source never shows
	// |V(node)| > 1 anywhere at any frequency.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(6)
		ckt, _ := randomLadder(r, n)
		// Sprinkle capacitors to ground.
		for i := 1; i <= n; i++ {
			ckt.Add(&circuit.Capacitor{Name: fmt.Sprintf("c%d", i),
				A: fmt.Sprintf("n%d", i), B: "0", C: math.Exp(r.Float64()*6 - 30)})
		}
		for _, v := range ckt.VSources() {
			v.ACMag = 1
		}
		eng := NewEngine(ckt, techno.TempNominal)
		op, err := eng.OP(OPOptions{})
		if err != nil {
			return false
		}
		res, err := eng.AC(op, LogSpace(1, 1e12, 13))
		if err != nil {
			return false
		}
		for _, pt := range res {
			for i := 1; i <= n; i++ {
				if cmplx.Abs(pt.Volt(ckt, fmt.Sprintf("n%d", i))) > 1+1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestACDCLimitMatchesOP(t *testing.T) {
	// Property: the AC solution at a very low frequency equals the DC
	// small-signal response — computed here by comparing two DC solves
	// against the AC transfer on a resistive ladder.
	r := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 1 + r.Intn(6)
		ckt, _ := randomLadder(r, n)
		for _, v := range ckt.VSources() {
			v.ACMag = 1
		}
		eng := NewEngine(ckt, techno.TempNominal)
		op, err := eng.OP(OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.AC(op, []float64{1e-3})
		if err != nil {
			t.Fatal(err)
		}
		// Linear network with 1 V DC and 1 V AC: phasor == DC voltage.
		for i := 1; i <= n; i++ {
			node := fmt.Sprintf("n%d", i)
			dc := op.Volt(ckt, node)
			ac := cmplx.Abs(res[0].Volt(ckt, node))
			if math.Abs(dc-ac) > 1e-9 {
				t.Fatalf("trial %d node %s: AC %.9g vs DC %.9g", trial, node, ac, dc)
			}
		}
	}
}

func TestTranSettlesToDC(t *testing.T) {
	// Property: with constant sources, the transient must hold the DC
	// solution indefinitely.
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		n := 1 + r.Intn(4)
		ckt, _ := randomLadder(r, n)
		for i := 1; i <= n; i++ {
			ckt.Add(&circuit.Capacitor{Name: fmt.Sprintf("c%d", i),
				A: fmt.Sprintf("n%d", i), B: "0", C: 1e-12})
		}
		eng := NewEngine(ckt, techno.TempNominal)
		op, err := eng.OP(OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := eng.Tran(1e-8, 1e-10, OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 1; i <= n; i++ {
			node := fmt.Sprintf("n%d", i)
			if math.Abs(res.SettleValue(ckt, node)-op.Volt(ckt, node)) > 1e-6 {
				t.Fatalf("trial %d node %s drifted from DC", trial, node)
			}
		}
	}
}

func TestNoiseScalesWithTemperature(t *testing.T) {
	build := func() *circuit.Circuit {
		c := circuit.New("rt")
		c.Add(
			&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0},
			&circuit.Resistor{Name: "r", A: "a", B: "b", R: 1e4},
			&circuit.Capacitor{Name: "c", A: "b", B: "0", C: 1e-12},
		)
		return c
	}
	psdAt := func(temp float64) float64 {
		ckt := build()
		eng := NewEngine(ckt, temp)
		op, err := eng.OP(OPOptions{})
		if err != nil {
			t.Fatal(err)
		}
		pts, err := eng.Noise(op, "b", []float64{100})
		if err != nil {
			t.Fatal(err)
		}
		return pts[0].OutPSD
	}
	cold, hot := psdAt(250), psdAt(400)
	if ratio := hot / cold; math.Abs(ratio-400.0/250.0) > 1e-6 {
		t.Fatalf("thermal noise should scale with T: ratio %g", ratio)
	}
}

func TestNoiseContributorBreakdown(t *testing.T) {
	c := circuit.New("two")
	c.Add(
		&circuit.VSource{Name: "in", Pos: "a", Neg: "0", DC: 0},
		&circuit.Resistor{Name: "big", A: "a", B: "b", R: 9e3},
		&circuit.Resistor{Name: "small", A: "b", B: "0", R: 1e3},
	)
	eng := NewEngine(c, techno.TempNominal)
	op, err := eng.OP(OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	pts, err := eng.Noise(op, "b", []float64{1e3})
	if err != nil {
		t.Fatal(err)
	}
	top := pts[0].TopNoiseContributors(2)
	if len(top) != 2 {
		t.Fatalf("want 2 contributors, got %v", top)
	}
	// Both noise currents see the same tap impedance R1∥R2, so the
	// contributions weight by conductance: the smaller resistor wins.
	if pts[0].BySource["small/thermal"] <= pts[0].BySource["big/thermal"] {
		t.Fatalf("contributor weighting wrong: %v", pts[0].BySource)
	}
	// Total equals the thermal noise of the parallel combination.
	want := 4 * techno.KBoltzmann * techno.TempNominal * (9e3 * 1e3 / 10e3)
	if math.Abs(pts[0].OutPSD-want)/want > 1e-9 {
		t.Fatalf("tap PSD %g, want 4kT·(R1∥R2) = %g", pts[0].OutPSD, want)
	}
}
