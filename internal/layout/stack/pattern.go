// Package stack generates analog transistor stacks: several matched
// devices realized as interleaved unit transistors on one diffusion row,
// with common-centroid placement, current-direction-aware orientation and
// dummy insertion — the machinery behind the paper's Fig. 3 current mirror
// and the common-centroid input pair of the OTA layout (Fig. 5),
// following the stack-generation formulation of Malavasi & Pandini that
// the paper builds on.
package stack

import (
	"fmt"
	"math"
	"sort"
)

// Device is one logical transistor realized as Units parallel unit
// transistors inside the stack.
type Device struct {
	Name     string
	Units    int
	DrainNet string
	GateNet  string
}

// PatternSpec drives pattern generation.
type PatternSpec struct {
	Devices []Device
	// SourceNet is the net shared by every unit's source terminal.
	SourceNet string
	// EndDummies adds one dummy gate at each stack end (matching rule).
	EndDummies bool
}

// Unit is one gate position in the stack.
type Unit struct {
	// Dev indexes PatternSpec.Devices; −1 marks a dummy gate.
	Dev int
	// Flip is the channel orientation: false = source on the left
	// (current flows right), true = drain on the left.
	Flip bool
}

// IsDummy reports whether the unit is a dummy gate.
func (u Unit) IsDummy() bool { return u.Dev < 0 }

// Pattern is a generated stack arrangement.
type Pattern struct {
	Spec  PatternSpec
	Units []Unit
	// Strips holds the diffusion-strip nets; len = len(Units)+1.
	Strips []string
	// InsertedDummies counts dummies added mid-stack to separate
	// incompatible diffusions (end dummies not included).
	InsertedDummies int
}

// Generate builds a stack pattern optimizing the analog constraints
// jointly, in the spirit of the optimum-stack-generation literature the
// paper builds on:
//
//  1. Several deterministic seed arrangements are built (mirrored device
//     pairs with odd leftovers centred, mirrored single units, leftovers
//     at the ends).
//  2. Each arrangement is realized by an orientation walk that shares a
//     diffusion strip whenever abutting terminals carry the same net and
//     inserts an isolation dummy where they cannot (the paper's
//     dummy-insertion rule).
//  3. A deterministic all-pairs-swap hill climb minimizes the weighted sum
//     of inserted dummies, per-device centroid error and current-direction
//     imbalance.
func Generate(spec PatternSpec) (*Pattern, error) {
	if len(spec.Devices) == 0 {
		return nil, fmt.Errorf("stack: no devices")
	}
	names := map[string]bool{}
	for _, d := range spec.Devices {
		if d.Units < 1 {
			return nil, fmt.Errorf("stack: device %s has %d units", d.Name, d.Units)
		}
		if names[d.Name] {
			return nil, fmt.Errorf("stack: duplicate device %s", d.Name)
		}
		names[d.Name] = true
		if d.DrainNet == spec.SourceNet {
			return nil, fmt.Errorf("stack: device %s drain equals the common source net %q",
				d.Name, spec.SourceNet)
		}
	}

	best := realize(spec, seedMirroredPairs(spec))
	bestScore := patternScore(best)
	for _, seed := range [][]int{seedMirroredUnits(spec), seedLeftoversOutside(spec)} {
		if p := realize(spec, seed); patternScore(p) < bestScore {
			best, bestScore = p, patternScore(p)
		}
	}

	// Hill climb on the best seed's device sequence.
	seq := deviceSequence(best)
	for pass := 0; pass < 12; pass++ {
		improved := false
		for i := 0; i < len(seq); i++ {
			for j := i + 1; j < len(seq); j++ {
				if seq[i] == seq[j] {
					continue
				}
				seq[i], seq[j] = seq[j], seq[i]
				if p := realize(spec, seq); patternScore(p) < bestScore {
					best, bestScore = p, patternScore(p)
					improved = true
				} else {
					seq[i], seq[j] = seq[j], seq[i]
				}
			}
		}
		if !improved {
			break
		}
	}
	return best, nil
}

// seedMirroredPairs pairs up each device's units (pairs share their drain
// strip), mirrors half of the pairs, and centres odd pairs and leftover
// units.
func seedMirroredPairs(spec PatternSpec) []int {
	type block struct{ dev, n int }
	var leftBlocks, centre []block
	for i, d := range spec.Devices {
		pairs := d.Units / 2
		for k := 0; k < pairs/2; k++ {
			leftBlocks = append(leftBlocks, block{i, 2})
		}
		if pairs%2 == 1 {
			centre = append(centre, block{i, 2})
		}
		if d.Units%2 == 1 {
			centre = append(centre, block{i, 1})
		}
	}
	sort.SliceStable(centre, func(a, b int) bool { return centre[a].n > centre[b].n })

	var seq []int
	for _, b := range leftBlocks {
		for k := 0; k < b.n; k++ {
			seq = append(seq, b.dev)
		}
	}
	for _, b := range centre {
		for k := 0; k < b.n; k++ {
			seq = append(seq, b.dev)
		}
	}
	for i := len(leftBlocks) - 1; i >= 0; i-- {
		for k := 0; k < leftBlocks[i].n; k++ {
			seq = append(seq, leftBlocks[i].dev)
		}
	}
	return seq
}

// seedMirroredUnits interleaves half of each device's units (largest
// remaining first), mirrors them, and centres the odd leftovers.
func seedMirroredUnits(spec PatternSpec) []int {
	rem := make([]int, len(spec.Devices))
	for i, d := range spec.Devices {
		rem[i] = d.Units / 2
	}
	var left []int
	for {
		best, bestRem := -1, 0
		for i, r := range rem {
			if r > bestRem {
				best, bestRem = i, r
			}
		}
		if best < 0 {
			break
		}
		left = append(left, best)
		rem[best]--
	}
	var seq []int
	seq = append(seq, left...)
	for i := len(spec.Devices) - 1; i >= 0; i-- {
		if spec.Devices[i].Units%2 == 1 {
			seq = append(seq, i)
		}
	}
	for i := len(left) - 1; i >= 0; i-- {
		seq = append(seq, left[i])
	}
	return seq
}

// seedLeftoversOutside is seedMirroredPairs with odd single units pushed
// to the stack ends (trading centroid for fewer dummies).
func seedLeftoversOutside(spec PatternSpec) []int {
	var singles []int
	for i, d := range spec.Devices {
		if d.Units%2 == 1 {
			singles = append(singles, i)
		}
	}
	inner := seedMirroredPairsEvenOnly(spec)
	var seq []int
	for i := 0; i < len(singles); i += 2 {
		seq = append(seq, singles[i])
	}
	seq = append(seq, inner...)
	for i := 1; i < len(singles); i += 2 {
		seq = append(seq, singles[i])
	}
	return seq
}

func seedMirroredPairsEvenOnly(spec PatternSpec) []int {
	even := PatternSpec{SourceNet: spec.SourceNet}
	idx := make([]int, 0, len(spec.Devices))
	for i, d := range spec.Devices {
		if d.Units >= 2 {
			d.Units -= d.Units % 2
			even.Devices = append(even.Devices, d)
			idx = append(idx, i)
		}
	}
	inner := seedMirroredPairs(even)
	for k, v := range inner {
		inner[k] = idx[v]
	}
	return inner
}

// deviceSequence recovers the non-dummy device order of a pattern.
func deviceSequence(p *Pattern) []int {
	var seq []int
	for _, u := range p.Units {
		if !u.IsDummy() {
			seq = append(seq, u.Dev)
		}
	}
	return seq
}

// realize runs the orientation walk over a device sequence, inserting
// isolation dummies and end dummies.
func realize(spec PatternSpec, seq []int) *Pattern {
	p := &Pattern{Spec: spec}
	var strips []string
	var units []Unit
	cur := spec.SourceNet // leftmost strip defaults to the common net
	strips = append(strips, cur)
	for _, dev := range seq {
		d := spec.Devices[dev]
		switch cur {
		case spec.SourceNet:
			units = append(units, Unit{Dev: dev, Flip: false})
			cur = d.DrainNet
		case d.DrainNet:
			units = append(units, Unit{Dev: dev, Flip: true})
			cur = spec.SourceNet
		default:
			// Another device's drain is exposed: isolate with a dummy
			// whose right strip restarts at the common net.
			units = append(units, Unit{Dev: -1})
			strips = append(strips, spec.SourceNet)
			p.InsertedDummies++
			units = append(units, Unit{Dev: dev, Flip: false})
			cur = d.DrainNet
		}
		strips = append(strips, cur)
	}

	if spec.EndDummies {
		// Dummies abut the end strips; the outermost strips tie to the
		// common source net (dummy gates are off, so an exposed drain
		// next to a dummy stays isolated from the outer strip).
		units = append([]Unit{{Dev: -1}}, units...)
		strips = append([]string{spec.SourceNet}, strips...)
		units = append(units, Unit{Dev: -1})
		strips = append(strips, spec.SourceNet)
	}
	p.Units = units
	p.Strips = strips
	if len(p.Strips) != len(p.Units)+1 {
		panic("stack: strip/unit bookkeeping out of sync")
	}
	return p
}

// patternScore is the weighted analog-constraint cost minimized by
// Generate: dummies cost area, centroid error costs systematic mismatch,
// orientation imbalance costs current-direction mismatch.
func patternScore(p *Pattern) float64 {
	s := 1.0 * float64(p.InsertedDummies)
	for _, e := range p.CentroidError() {
		s += 2.0 * e
	}
	for _, b := range p.OrientationImbalance() {
		s += 0.25 * float64(b)
	}
	return s
}

// UnitCount returns how many non-dummy units device dev has in the pattern.
func (p *Pattern) UnitCount(dev int) int {
	n := 0
	for _, u := range p.Units {
		if u.Dev == dev {
			n++
		}
	}
	return n
}

// SignedCentroid returns each device's centroid offset from the stack
// centre in gate pitches, with sign (positive = shifted right). A linear
// process gradient along the stack turns this directly into a threshold
// difference — the coupling the Monte-Carlo package exploits.
func (p *Pattern) SignedCentroid() map[string]float64 {
	out := map[string]float64{}
	centre := float64(len(p.Units)-1) / 2
	for i, d := range p.Spec.Devices {
		var sum float64
		var n int
		for pos, u := range p.Units {
			if u.Dev == i {
				sum += float64(pos)
				n++
			}
		}
		if n > 0 {
			out[d.Name] = sum/float64(n) - centre
		}
	}
	return out
}

// CentroidError returns each device's centroid offset from the stack
// centre, in gate pitches. Perfectly common-centroid devices return 0.
func (p *Pattern) CentroidError() map[string]float64 {
	out := map[string]float64{}
	centre := float64(len(p.Units)-1) / 2
	for i, d := range p.Spec.Devices {
		var sum float64
		var n int
		for pos, u := range p.Units {
			if u.Dev == i {
				sum += float64(pos)
				n++
			}
		}
		if n > 0 {
			out[d.Name] = math.Abs(sum/float64(n) - centre)
		}
	}
	return out
}

// OrientationImbalance returns, per device, |units flowing left − units
// flowing right| — the current-direction mismatch metric of the
// stack-generation literature (0 is ideal).
func (p *Pattern) OrientationImbalance() map[string]int {
	out := map[string]int{}
	for i, d := range p.Spec.Devices {
		bal := 0
		for _, u := range p.Units {
			if u.Dev == i {
				if u.Flip {
					bal--
				} else {
					bal++
				}
			}
		}
		if bal < 0 {
			bal = -bal
		}
		out[d.Name] = bal
	}
	return out
}

// String renders the pattern like the figures in the paper, e.g.
// "[dum] M3→ ←M3 M2→ …" with arrows showing current direction.
func (p *Pattern) String() string {
	s := ""
	for i, u := range p.Units {
		if i > 0 {
			s += " "
		}
		if u.IsDummy() {
			s += "[dum]"
			continue
		}
		name := p.Spec.Devices[u.Dev].Name
		if u.Flip {
			s += "←" + name
		} else {
			s += name + "→"
		}
	}
	return s
}
