package device

import (
	"math"
	"testing"

	"loas/internal/techno"
)

func biasedNMOS(t *testing.T, vgs, vds float64) (*MOS, OP) {
	t.Helper()
	tech := techno.Default060()
	m := &MOS{Card: &tech.N, W: 20 * um, L: 1 * um}
	m.Geom = OneFoldGeom(tech, m.W)
	return m, m.Eval(vgs, vds, 0, 0, techno.TempNominal)
}

func TestCapsSaturationPartition(t *testing.T) {
	m, op := biasedNMOS(t, 1.5, 3.0)
	cs := m.Caps(op, techno.TempNominal)
	coxTot := m.Card.Cox * m.W * m.Leff()
	// Saturation: intrinsic CGS ≈ 2/3·Cox·W·L (+overlap), CGD ≈ overlap only.
	wantCGS := (2.0/3.0)*coxTot + m.Card.CGSO*m.W
	if rel := math.Abs(cs.CGS-wantCGS) / wantCGS; rel > 0.05 {
		t.Fatalf("CGS = %g, want ≈ %g", cs.CGS, wantCGS)
	}
	ovl := m.Card.CGDO * m.W
	if cs.CGD < ovl*0.9 || cs.CGD > ovl*1.6 {
		t.Fatalf("saturation CGD = %g, want ≈ overlap %g", cs.CGD, ovl)
	}
}

func TestCapsTriodeSplit(t *testing.T) {
	m, op := biasedNMOS(t, 1.8, 0.0)
	cs := m.Caps(op, techno.TempNominal)
	// VDS = 0: channel splits evenly.
	if rel := math.Abs(cs.CGS-cs.CGD) / cs.CGS; rel > 0.01 {
		t.Fatalf("triode CGS %g should equal CGD %g", cs.CGS, cs.CGD)
	}
}

func TestCapsOffGateToBulk(t *testing.T) {
	m, op := biasedNMOS(t, 0, 1.0)
	cs := m.Caps(op, techno.TempNominal)
	coxTot := m.Card.Cox * m.W * m.Leff()
	if cs.CGB < 0.8*coxTot {
		t.Fatalf("off-state CGB = %g, want ≈ Cox·W·L = %g", cs.CGB, coxTot)
	}
	if cs.CGS > 0.3*coxTot {
		t.Fatalf("off-state CGS = %g should be near overlap only", cs.CGS)
	}
}

func TestJunctionCapBiasDependence(t *testing.T) {
	tech := techno.Default060()
	m := &MOS{Card: &tech.N, W: 20 * um, L: 1 * um, Geom: OneFoldGeom(tech, 20*um)}
	op0 := m.Eval(1.5, 0.5, 0, 0, techno.TempNominal)
	op2 := m.Eval(1.5, 2.5, 0, 0, techno.TempNominal)
	c0 := m.Caps(op0, techno.TempNominal)
	c2 := m.Caps(op2, techno.TempNominal)
	if c2.CDB >= c0.CDB {
		t.Fatalf("reverse bias should shrink CDB: %g at 2.5 V vs %g at 0.5 V", c2.CDB, c0.CDB)
	}
	if c2.CSB != c0.CSB {
		t.Fatalf("CSB should not depend on VDS: %g vs %g", c2.CSB, c0.CSB)
	}
}

func TestJunctionCapForwardClampFinite(t *testing.T) {
	tech := techno.Default060()
	// Strongly forward-biased junction must stay finite and positive.
	c := junctionCap(&tech.N, 1e-12, 1e-6, -tech.N.PB)
	if math.IsInf(c, 0) || math.IsNaN(c) || c <= 0 {
		t.Fatalf("forward-bias clamp broken: %g", c)
	}
}

func TestFoldedDeviceHasSmallerCDB(t *testing.T) {
	// The headline mechanism of the paper: an even-folded, drain-internal
	// device must show roughly half the drain junction capacitance.
	tech := techno.Default060()
	w := 48 * um
	m1 := &MOS{Card: &tech.N, W: w, L: 1 * um, Geom: OneFoldGeom(tech, w)}
	m4 := &MOS{Card: &tech.N, W: w, L: 1 * um,
		Geom: PlanFolds(&tech.Rules, w, 4, DrainInternal).Geom(tech)}
	op := m1.Eval(1.5, 2.0, 0, 0, techno.TempNominal)
	c1 := m1.Caps(op, techno.TempNominal)
	c4 := m4.Caps(op, techno.TempNominal)
	ratio := c4.CDB / c1.CDB
	if ratio > 0.65 || ratio < 0.35 {
		t.Fatalf("folded CDB ratio = %g, want ≈ 0.5", ratio)
	}
}

func TestCapsAllNonNegative(t *testing.T) {
	tech := techno.Default060()
	m := &MOS{Card: &tech.P, W: 30 * um, L: 0.8 * um, Geom: OneFoldGeom(tech, 30*um)}
	for _, vgs := range []float64{0, -0.5, -1.0, -1.8} {
		for _, vds := range []float64{0, -0.3, -1.5, -3.0} {
			op := m.Eval(3.3+vgs, 3.3+vds, 3.3, 3.3, techno.TempNominal)
			cs := m.Caps(op, techno.TempNominal)
			for i, c := range []float64{cs.CGS, cs.CGD, cs.CGB, cs.CDB, cs.CSB} {
				if c < 0 || math.IsNaN(c) {
					t.Fatalf("cap %d negative/NaN at vgs=%g vds=%g: %g", i, vgs, vds, c)
				}
			}
		}
	}
}

func TestGateCapScalesWithArea(t *testing.T) {
	tech := techno.Default060()
	a := (&MOS{Card: &tech.N, W: 10 * um, L: 1 * um}).GateCap()
	b := (&MOS{Card: &tech.N, W: 20 * um, L: 1 * um}).GateCap()
	if b <= a || b > 2.2*a {
		t.Fatalf("gate cap scaling wrong: %g → %g", a, b)
	}
}

func TestNoisePSDBasics(t *testing.T) {
	m, op := biasedNMOS(t, 1.3, 2.0)
	th1, fl1 := m.NoisePSD(op, 1.0, techno.TempNominal)
	th2, fl2 := m.NoisePSD(op, 100.0, techno.TempNominal)
	if th1 <= 0 || fl1 <= 0 {
		t.Fatal("noise PSDs must be positive for a conducting device")
	}
	if th1 != th2 {
		t.Fatal("thermal noise must be white")
	}
	if math.Abs(fl1/fl2-100) > 1e-6 {
		t.Fatalf("flicker must fall as 1/f: ratio %g", fl1/fl2)
	}
	// Thermal ≈ 4kT·γ·gm within 2×.
	want := 4 * techno.KBoltzmann * techno.TempNominal * (2.0 / 3.0) * op.Gm
	if th1 < want*0.8 || th1 > want*2 {
		t.Fatalf("thermal PSD %g vs 4kTγgm %g", th1, want)
	}
}

func TestResistorNoise(t *testing.T) {
	r := 1000.0
	got := ResistorNoisePSD(r, techno.TempNominal)
	want := 4 * techno.KBoltzmann * techno.TempNominal / r
	if math.Abs(got-want)/want > 1e-12 {
		t.Fatalf("resistor noise %g, want %g", got, want)
	}
	if ResistorNoisePSD(0, 300) != 0 {
		t.Fatal("degenerate resistor should have zero noise")
	}
}
