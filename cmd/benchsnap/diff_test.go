package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

func hexOf(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

func writeSnap(t *testing.T, dir, name string, snap map[string]benchResult) string {
	t.Helper()
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func baseSnap() map[string]benchResult {
	return map[string]benchResult{
		"Fig5Layout": {NsPerOp: 1000, Metrics: map[string]metric{
			"area_um2":     {Value: 10169, Hex: hexOf(10169)},
			"layout_calls": {Value: 6, Hex: hexOf(6)},
		}},
		"Table1Case1": {NsPerOp: 2000, Metrics: map[string]metric{
			"gbw_MHz": {Value: 66.5, Hex: hexOf(66.5)},
		}},
	}
}

func TestCompareSnapshotsCleanDiff(t *testing.T) {
	rep := compareSnapshots("a", "b", baseSnap(), baseSnap(), 0.25)
	if len(rep.MetricDrift) != 0 || len(rep.Regressions) != 0 || len(rep.Improvements) != 0 {
		t.Fatalf("identical snapshots produced a diff: %+v", rep)
	}
	if rep.Compared != 2 {
		t.Fatalf("compared %d, want 2", rep.Compared)
	}
}

func TestCompareSnapshotsMetricDriftBlocks(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", baseSnap())
	newer := baseSnap()
	// One-ULP drift: invisible in short decimal, fatal in hex.
	drifted := 10169.000000000002
	newer["Fig5Layout"].Metrics["area_um2"] = metric{Value: drifted, Hex: hexOf(drifted)}
	newPath := writeSnap(t, dir, "new.json", newer)

	err := runDiff([]string{oldPath, newPath})
	if err == nil || !strings.Contains(err.Error(), "hex-exact metric(s) drifted") {
		t.Fatalf("one-ULP drift must block: %v", err)
	}

	rep := compareSnapshots("a", "b", baseSnap(), newer, 0.25)
	if len(rep.MetricDrift) != 1 || rep.MetricDrift[0].Metric != "area_um2" {
		t.Fatalf("drift report: %+v", rep.MetricDrift)
	}
}

func TestCompareSnapshotsNsOpTolerance(t *testing.T) {
	newer := baseSnap()
	f5 := newer["Fig5Layout"]
	f5.NsPerOp = 1300 // +30%: beyond the 25% tolerance
	newer["Fig5Layout"] = f5
	t1 := newer["Table1Case1"]
	t1.NsPerOp = 1400 // -30%: improvement beyond tolerance
	newer["Table1Case1"] = t1

	rep := compareSnapshots("a", "b", baseSnap(), newer, 0.25)
	if len(rep.MetricDrift) != 0 {
		t.Fatalf("ns/op moves must not count as metric drift: %+v", rep.MetricDrift)
	}
	if len(rep.Regressions) != 1 || rep.Regressions[0].Bench != "Fig5Layout" {
		t.Fatalf("regressions: %+v", rep.Regressions)
	}
	if len(rep.Improvements) != 1 || rep.Improvements[0].Bench != "Table1Case1" {
		t.Fatalf("improvements: %+v", rep.Improvements)
	}
	// Within tolerance: silent.
	within := baseSnap()
	w := within["Fig5Layout"]
	w.NsPerOp = 1100
	within["Fig5Layout"] = w
	rep = compareSnapshots("a", "b", baseSnap(), within, 0.25)
	if len(rep.Regressions) != 0 {
		t.Fatalf("+10%% flagged at 25%% tolerance: %+v", rep.Regressions)
	}
}

func TestRunDiffStrictNsOp(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeSnap(t, dir, "old.json", baseSnap())
	newer := baseSnap()
	f5 := newer["Fig5Layout"]
	f5.NsPerOp = 2000
	newer["Fig5Layout"] = f5
	newPath := writeSnap(t, dir, "new.json", newer)

	// Default: regressions are trajectory, not failures.
	if err := runDiff([]string{oldPath, newPath}); err != nil {
		t.Fatalf("ns/op regression blocked without -strict-nsop: %v", err)
	}
	err := runDiff([]string{"-strict-nsop", oldPath, newPath})
	if err == nil || !strings.Contains(err.Error(), "regressed beyond") {
		t.Fatalf("-strict-nsop must block: %v", err)
	}
}

func TestCompareSnapshotsAddedAndGone(t *testing.T) {
	newer := baseSnap()
	newer["NewBench"] = benchResult{NsPerOp: 10}
	delete(newer, "Table1Case1")
	f5 := newer["Fig5Layout"]
	f5.Metrics = map[string]metric{
		"area_um2": f5.Metrics["area_um2"],
		"cap_fF":   {Value: 3.5, Hex: hexOf(3.5)},
	}
	newer["Fig5Layout"] = f5

	rep := compareSnapshots("a", "b", baseSnap(), newer, 0.25)
	if len(rep.AddedBenches) != 1 || rep.AddedBenches[0] != "NewBench" {
		t.Fatalf("added: %+v", rep.AddedBenches)
	}
	if len(rep.GoneBenches) != 1 || rep.GoneBenches[0] != "Table1Case1" {
		t.Fatalf("gone: %+v", rep.GoneBenches)
	}
	if len(rep.AddedMetrics) != 1 || rep.AddedMetrics[0] != "Fig5Layout/cap_fF" {
		t.Fatalf("added metrics: %+v", rep.AddedMetrics)
	}
	if len(rep.GoneMetrics) != 1 || rep.GoneMetrics[0] != "Fig5Layout/layout_calls" {
		t.Fatalf("gone metrics: %+v", rep.GoneMetrics)
	}
	if len(rep.MetricDrift) != 0 {
		t.Fatalf("set growth must never block: %+v", rep.MetricDrift)
	}
}

func TestLoadSnapshotRejectsCorruption(t *testing.T) {
	dir := t.TempDir()

	// Hex disagrees with the decimal: hand-edited snapshot.
	bad := baseSnap()
	bad["Fig5Layout"].Metrics["area_um2"] = metric{Value: 10170, Hex: hexOf(10169)}
	path := writeSnap(t, dir, "bad.json", bad)
	if _, err := loadSnapshot(path); err == nil || !strings.Contains(err.Error(), "snapshot corrupt") {
		t.Fatalf("hex/decimal disagreement must fail load: %v", err)
	}

	// Unparseable hex.
	bad2 := baseSnap()
	bad2["Fig5Layout"].Metrics["area_um2"] = metric{Value: 10169, Hex: "not-a-float"}
	path2 := writeSnap(t, dir, "bad2.json", bad2)
	if _, err := loadSnapshot(path2); err == nil || !strings.Contains(err.Error(), "bad hex float") {
		t.Fatalf("bad hex must fail load: %v", err)
	}

	// Empty snapshot.
	path3 := filepath.Join(dir, "empty.json")
	os.WriteFile(path3, []byte("{}"), 0o644)
	if _, err := loadSnapshot(path3); err == nil {
		t.Fatal("empty snapshot must fail load")
	}

	if _, err := loadSnapshot(filepath.Join(dir, "absent.json")); err == nil {
		t.Fatal("missing snapshot must fail load")
	}
}

func TestRunDiffUsageErrors(t *testing.T) {
	dir := t.TempDir()
	p := writeSnap(t, dir, "one.json", baseSnap())
	if err := runDiff([]string{p}); err == nil {
		t.Fatal("one argument must be a usage error")
	}
	if err := runDiff([]string{"-tol", "-1", p, p}); err == nil {
		t.Fatal("negative tolerance must be rejected")
	}
}

// TestRunDiffCommittedSnapshots is the ci.sh perf lane in miniature:
// the two snapshots committed at the repo root must diff clean on the
// hex-exact metrics (ns/op differences are machine noise, reported but
// never blocking without -strict-nsop).
func TestRunDiffCommittedSnapshots(t *testing.T) {
	for _, p := range []string{"../../BENCH_8.json", "../../BENCH_9.json"} {
		if _, err := os.Stat(p); err != nil {
			t.Skipf("snapshot %s not present: %v", p, err)
		}
	}
	if err := runDiff([]string{"../../BENCH_8.json", "../../BENCH_9.json"}); err != nil {
		t.Fatalf("committed snapshots disagree on reproduced quantities: %v", err)
	}
}
