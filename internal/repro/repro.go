// Package repro packages every experiment of the paper's evaluation into
// a reusable harness: each table and figure has a function that runs the
// experiment and renders the same rows/series the paper reports. The CLI
// (cmd/loas), the benchmark suite (bench_test.go) and EXPERIMENTS.md all
// drive these entry points.
package repro

import (
	"fmt"
	"strings"

	"loas/internal/device"
	"loas/internal/layout/stack"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Fig2Point is one curve point of the capacitance-reduction-factor plot.
type Fig2Point struct {
	Nf                 int
	Internal, External float64 // even-fold internal/external F
	Odd                float64 // odd-fold F
}

// Fig2 evaluates the paper's Fig. 2: F versus the number of folds for the
// three diffusion positions. Odd entries are only defined for odd Nf and
// even entries for even Nf; both columns are reported at every Nf using
// the respective closed forms so the curves can be plotted densely.
func Fig2(maxFolds int) []Fig2Point {
	out := make([]Fig2Point, 0, maxFolds)
	for nf := 1; nf <= maxFolds; nf++ {
		n := float64(nf)
		p := Fig2Point{Nf: nf}
		p.Internal = 0.5
		p.External = (n + 2) / (2 * n)
		p.Odd = (n + 1) / (2 * n)
		if nf == 1 {
			p.External = 1
		}
		out = append(out, p)
	}
	return out
}

// Fig2Text renders the curves as the table behind the figure.
func Fig2Text(maxFolds int) string {
	var b strings.Builder
	b.WriteString("Fig. 2 — capacitance reduction factor F(Nf)\n")
	b.WriteString("  Nf   internal(even)  external(even)  odd\n")
	for _, p := range Fig2(maxFolds) {
		fmt.Fprintf(&b, "  %2d   %0.4f          %0.4f          %0.4f\n",
			p.Nf, p.Internal, p.External, p.Odd)
	}
	return b.String()
}

// Fig3Result is the generated current-mirror stack of the paper's Fig. 3.
type Fig3Result struct {
	Pattern      *stack.Pattern
	Stack        *stack.Stack
	CentroidErr  map[string]float64
	OrientImbal  map[string]int
	ContactsNote string
}

// Fig3 builds the M1:M2:M3 = 1:3:6 current mirror with dummies,
// current-direction-aware orientation and reliability-driven wire sizing.
func Fig3(tech *techno.Tech) (*Fig3Result, error) {
	iUnit := 20e-6 // reference current per unit
	spec := stack.PatternSpec{
		Devices: []stack.Device{
			{Name: "M1", Units: 1, DrainNet: "d1", GateNet: "g"},
			{Name: "M2", Units: 3, DrainNet: "d2", GateNet: "g"},
			{Name: "M3", Units: 6, DrainNet: "d3", GateNet: "g"},
		},
		SourceNet:  "gnd",
		EndDummies: true,
	}
	pat, err := stack.Generate(spec)
	if err != nil {
		return nil, err
	}
	st, err := stack.Build(tech, pat, stack.BuildSpec{
		Name: "fig3-mirror", Type: techno.NMOS,
		UnitW: 10 * techno.Micron, L: 2 * techno.Micron, BulkNet: "gnd",
		Currents: map[string]float64{
			"d1": 1 * iUnit, "d2": 3 * iUnit, "d3": 6 * iUnit,
		},
	})
	if err != nil {
		return nil, err
	}
	return &Fig3Result{
		Pattern:     pat,
		Stack:       st,
		CentroidErr: pat.CentroidError(),
		OrientImbal: pat.OrientationImbalance(),
	}, nil
}

// Fig3Text renders the experiment summary.
func Fig3Text(tech *techno.Tech) (string, error) {
	r, err := Fig3(tech)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	b.WriteString("Fig. 3 — current mirror M1:M2:M3 = 1:3:6\n")
	fmt.Fprintf(&b, "  stack:   %s\n", r.Pattern)
	fmt.Fprintf(&b, "  size:    %.1f x %.1f um\n",
		float64(r.Stack.Width)*1e-3, float64(r.Stack.Height)*1e-3)
	for _, name := range []string{"M1", "M2", "M3"} {
		g := r.Stack.Geoms[name]
		fmt.Fprintf(&b, "  %s: centroid err %.2f pitch, orient imbalance %d, AD %.1f um2, PD %.1f um\n",
			name, r.CentroidErr[name], r.OrientImbal[name], g.AD*1e12, g.PD*1e6)
	}
	fmt.Fprintf(&b, "  inserted isolation dummies: %d (plus 2 end dummies)\n",
		r.Pattern.InsertedDummies)
	return b.String(), nil
}

// FoldStyleComparison quantifies the Fig. 2 mechanism on a concrete
// device: the drain junction capacitance of a transistor folded with the
// drain internal versus external versus unfolded.
func FoldStyleComparison(tech *techno.Tech, w float64, nf int) (cdbUnfolded, cdbInternal, cdbExternal float64) {
	bias := func(g device.DiffGeom) float64 {
		m := device.MOS{Card: &tech.N, W: w, L: techno.Micron, Geom: g}
		op := m.Eval(1.5, 2.0, 0, 0, tech.Temp)
		return m.Caps(op, tech.Temp).CDB
	}
	cdbUnfolded = bias(device.OneFoldGeom(tech, w))
	cdbInternal = bias(device.PlanFolds(&tech.Rules, w, nf, device.DrainInternal).Geom(tech))
	cdbExternal = bias(device.PlanFolds(&tech.Rules, w, nf, device.SourceInternal).Geom(tech))
	return
}

// Table1Header echoes the paper's input specification line.
func Table1Header(spec sizing.OTASpec) string {
	return fmt.Sprintf("VDD = %.1f V, GBW = %.0f MHz, PM = %.0f deg, CL = %.0f pF, "+
		"ICM = [%.2f, %.2f] V, out = [%.2f, %.2f] V",
		spec.VDD, spec.GBW/1e6, spec.PM, spec.CL*1e12,
		spec.ICMLow, spec.ICMHigh, spec.OutLow, spec.OutHigh)
}
