// Package scfilter builds switched-capacitor circuits on top of a
// synthesized OTA — the paper's stated future work ("synthesis of larger
// systems as switched capacitor filters … using the same methodology").
//
// The blocks are modelled in the discrete-time domain with the standard
// non-ideality corrections driven by the OTA figures the synthesis flow
// delivers: finite DC gain (static gain and phase error), finite
// gain-bandwidth (incomplete settling) and slew-rate limiting (maximum
// step before the linear-settling model breaks).
package scfilter

import (
	"fmt"
	"math"
	"math/cmplx"

	"loas/internal/sizing"
)

// OTAModel is the subset of amplifier performance the SC analysis needs.
type OTAModel struct {
	DCGain float64 // V/V (not dB)
	GBW    float64 // Hz
	SR     float64 // V/s
}

// FromPerformance converts a measured/synthesized Performance.
func FromPerformance(p sizing.Performance) OTAModel {
	return OTAModel{
		DCGain: math.Pow(10, p.DCGainDB/20),
		GBW:    p.GBW,
		SR:     p.SlewRate,
	}
}

// Integrator is a parasitic-insensitive (bottom-plate) SC integrator.
type Integrator struct {
	OTA    OTAModel
	Cs, Cf float64 // sampling and feedback capacitors (F)
	Fs     float64 // clock frequency (Hz)
}

// Validate checks parameter sanity.
func (g *Integrator) Validate() error {
	switch {
	case g.Cs <= 0 || g.Cf <= 0:
		return fmt.Errorf("scfilter: capacitors must be positive")
	case g.Fs <= 0:
		return fmt.Errorf("scfilter: clock must be positive")
	case g.OTA.DCGain <= 1:
		return fmt.Errorf("scfilter: OTA gain %.2f too low", g.OTA.DCGain)
	case g.OTA.GBW <= 0:
		return fmt.Errorf("scfilter: OTA GBW must be positive")
	}
	return nil
}

// FeedbackFactor is the charge-transfer feedback factor Cf/(Cf+Cs).
func (g *Integrator) FeedbackFactor() float64 { return g.Cf / (g.Cf + g.Cs) }

// SettlingError returns the relative linear settling error left at the
// end of a half clock period: exp(−T/2·τ) with τ = 1/(2π·β·GBW).
func (g *Integrator) SettlingError() float64 {
	tau := 1 / (2 * math.Pi * g.FeedbackFactor() * g.OTA.GBW)
	return math.Exp(-1 / (2 * g.Fs * tau))
}

// GainError returns the static charge-transfer gain error from the
// finite DC gain: ≈ 1/(A·β).
func (g *Integrator) GainError() float64 {
	return 1 / (g.OTA.DCGain * g.FeedbackFactor())
}

// H returns the integrator transfer function at frequency f, including
// the finite-gain magnitude/phase corrections and the settling error.
// The ideal response is −(Cs/Cf)·e^{−jωT/2}/(1 − e^{−jωT}).
func (g *Integrator) H(f float64) complex128 {
	wT := 2 * math.Pi * f / g.Fs
	z1 := cmplx.Exp(complex(0, -wT)) // z^{-1}

	// Finite gain: leaky integration — the pole moves inside the unit
	// circle by 1/(A·β), and the passband gain drops by the same amount.
	leak := g.GainError()
	actual := -complex(g.Cs/g.Cf*(1-leak), 0) * cmplx.Sqrt(z1) /
		(1 - complex(1-leak, 0)*z1)

	// Incomplete settling scales the transferred charge each cycle.
	eps := g.SettlingError()
	actual *= complex(1-eps, 0)
	return actual
}

// HIdeal returns the ideal (infinite-gain, fully settled) response.
func (g *Integrator) HIdeal(f float64) complex128 {
	wT := 2 * math.Pi * f / g.Fs
	z1 := cmplx.Exp(complex(0, -wT))
	return -complex(g.Cs/g.Cf, 0) * cmplx.Sqrt(z1) / (1 - z1)
}

// UnityGainFreq returns the integrator's unity-gain frequency
// fs·(Cs/Cf)/(2π) — the design equation for filter synthesis.
func (g *Integrator) UnityGainFreq() float64 {
	return g.Fs * g.Cs / g.Cf / (2 * math.Pi)
}

// MaxStep returns the largest output step that still settles linearly
// (slew-limited settling starts above SR·T/2 with margin for the linear
// tail).
func (g *Integrator) MaxStep() float64 {
	if g.OTA.SR <= 0 {
		return 0
	}
	return g.OTA.SR / (2 * g.Fs) * 0.5
}

// MaxClock returns the highest clock for a target settling error.
func (g *Integrator) MaxClock(eps float64) float64 {
	if eps <= 0 || eps >= 1 {
		return 0
	}
	tau := 1 / (2 * math.Pi * g.FeedbackFactor() * g.OTA.GBW)
	return 1 / (2 * tau * math.Log(1/eps))
}

// Biquad is a two-integrator-loop (Fleischer–Laker style) SC bandpass /
// lowpass section built from two integrators sharing one OTA design.
type Biquad struct {
	OTA    OTAModel
	Fs     float64
	F0     float64 // centre frequency (Hz)
	Q      float64
	GainLP float64 // passband gain of the lowpass output
}

// Validate checks parameter sanity.
func (b *Biquad) Validate() error {
	switch {
	case b.Fs <= 0 || b.F0 <= 0 || b.Q <= 0:
		return fmt.Errorf("scfilter: biquad needs positive fs, f0, Q")
	case b.F0 >= b.Fs/4:
		return fmt.Errorf("scfilter: f0 = %g too close to fs/2", b.F0)
	}
	return nil
}

// CapRatios returns the designed capacitor ratios of the
// lossless-discrete-integrator pair: k1 = k2 = ω0·T and damping ω0·T/Q
// (with LDI phasing the loop carries exactly one delay, so no
// Q-predistortion is required).
func (b *Biquad) CapRatios() (k1, k2, damp float64) {
	w0T := 2 * math.Pi * b.F0 / b.Fs
	return w0T, w0T, w0T / b.Q
}

// HLowpass evaluates the lowpass output response at frequency f with the
// OTA non-idealities applied to both integrators. The loop is the
// classic two-integrator topology:
//
//	v1   = I(z)·k1·(vin − vout)
//	vout = I(z)·(k2·v1 − d·vout),  I(z) = z⁻¹/(1 − p·z⁻¹)
//
// with p < 1 (finite-gain leak) and k1, k2 scaled by the settling error.
func (b *Biquad) HLowpass(f float64) complex128 {
	k1, k2, damp := b.CapRatios()
	g := Integrator{OTA: b.OTA, Cs: k1, Cf: 1, Fs: b.Fs}
	leak := g.GainError()
	eps := g.SettlingError()
	k1 *= 1 - eps
	k2 *= 1 - eps

	wT := 2 * math.Pi * f / b.Fs
	zi := cmplx.Exp(complex(0, -wT)) // z⁻¹
	p := complex(1-leak, 0)
	// LDI pairing: the loop carries one full delay in total.
	num := complex(k1*k2, 0) * zi
	den := (1-p*zi)*(1-p*zi+complex(damp, 0)*zi) + num
	return complex(b.GainLP, 0) * num / den
}

// ResonantGain returns |H| at f0 — ≈ Q·GainLP for an ideal section; OTA
// finite gain lowers it, which is the SC-design sensitivity the paper's
// methodology propagates from layout parasitics all the way to system
// level.
func (b *Biquad) ResonantGain() float64 {
	return cmplx.Abs(b.HLowpass(b.F0))
}
