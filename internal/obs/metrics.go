package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. The zero value is ready
// to use; obtain shared instances through a Registry.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored — counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: bucket counts are cumulative over the upper bounds, plus an
// implicit +Inf bucket). All methods are safe for concurrent use.
type Histogram struct {
	bounds []float64      // sorted upper bounds
	counts []atomic.Int64 // len(bounds)+1; last = +Inf
	count  atomic.Int64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

// NewHistogram builds a histogram over the given bucket upper bounds
// (sorted ascending; an implicit +Inf bucket is always appended).
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		s := math.Float64frombits(old) + v
		if h.sum.CompareAndSwap(old, math.Float64bits(s)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// HistogramVec is a family of Histograms split by one label — the
// Prometheus `name{label="value"}` form. Label values materialize
// their series on first Observe, so the exposition only carries phases
// that actually ran. All methods are safe for concurrent use.
type HistogramVec struct {
	label  string
	bounds []float64

	mu     sync.Mutex
	series map[string]*Histogram
}

// With returns the histogram of one label value, creating it on first
// use. The returned *Histogram is shared: callers may retain it.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.series[value]
	if !ok {
		h = NewHistogram(v.bounds)
		v.series[value] = h
	}
	return h
}

// snapshot returns the label values (sorted) and their histograms.
func (v *HistogramVec) snapshot() ([]string, []*Histogram) {
	v.mu.Lock()
	defer v.mu.Unlock()
	values := make([]string, 0, len(v.series))
	for val := range v.series {
		values = append(values, val)
	}
	sort.Strings(values)
	hs := make([]*Histogram, len(values))
	for i, val := range values {
		hs[i] = v.series[val]
	}
	return values, hs
}

// metric is one registered name: exactly one of the fields is set.
type metric struct {
	help  string
	c     *Counter
	h     *Histogram
	hv    *HistogramVec
	gauge func() float64
	info  map[string]string
}

// Registry holds named metrics and renders them in the Prometheus text
// exposition format. Get-or-create accessors make registration
// idempotent: the first call for a name wins, later calls return the
// same instance.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metric
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: map[string]*metric{}}
}

// Default is the process-wide registry for domain-level counters (layout
// plans, sizing passes, MC samples). Servers expose it alongside their
// own per-instance registry.
var Default = NewRegistry()

// Counter returns the counter registered under name, creating it with
// the given help text on first use. Panics if name is already registered
// as a different metric kind.
func (r *Registry) Counter(name, help string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.c == nil {
			panic("obs: " + name + " already registered as a non-counter")
		}
		return m.c
	}
	c := &Counter{}
	r.metrics[name] = &metric{help: help, c: c}
	return c
}

// Histogram returns the histogram registered under name, creating it
// over the given bucket bounds on first use.
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.h == nil {
			panic("obs: " + name + " already registered as a non-histogram")
		}
		return m.h
	}
	h := NewHistogram(bounds)
	r.metrics[name] = &metric{help: help, h: h}
	return h
}

// HistogramVec returns the labeled histogram family registered under
// name, creating it over the given label name and bucket bounds on
// first use.
func (r *Registry) HistogramVec(name, help, label string, bounds []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		if m.hv == nil {
			panic("obs: " + name + " already registered as a non-histogram-vec")
		}
		return m.hv
	}
	v := &HistogramVec{label: label, bounds: append([]float64(nil), bounds...),
		series: map[string]*Histogram{}}
	sort.Float64s(v.bounds)
	r.metrics[name] = &metric{help: help, hv: v}
	return v
}

// InfoGauge registers a constant `name{k="v",...} 1` series — the
// Prometheus idiom for build/runtime identity (loas_build_info). The
// first registration of a name wins.
func (r *Registry) InfoGauge(name, help string, labels map[string]string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		return
	}
	copied := make(map[string]string, len(labels))
	for k, v := range labels {
		copied[k] = v
	}
	r.metrics[name] = &metric{help: help, info: copied}
}

// GaugeFunc registers fn as a gauge sampled at exposition time (queue
// depth, cache bytes — values that go up and down and already live in
// someone else's counter). Re-registering a name keeps the first fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.metrics[name]; ok {
		return
	}
	r.metrics[name] = &metric{help: help, gauge: fn}
}

// WritePrometheus renders every metric in the text exposition format,
// sorted by name so output is deterministic and diffable.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for n := range r.metrics {
		names = append(names, n)
	}
	ms := make([]*metric, 0, len(names))
	sort.Strings(names)
	for _, n := range names {
		ms = append(ms, r.metrics[n])
	}
	r.mu.Unlock()

	for i, name := range names {
		m := ms[i]
		if m.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", name, m.help); err != nil {
				return err
			}
		}
		var err error
		switch {
		case m.c != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", name, name, m.c.Value())
		case m.gauge != nil:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(m.gauge()))
		case m.h != nil:
			err = writeHistogram(w, name, "", m.h)
		case m.hv != nil:
			err = writeHistogramVec(w, name, m.hv)
		case m.info != nil:
			err = writeInfoGauge(w, name, m.info)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series. labels, when non-empty,
// is a rendered `key="value"` fragment prefixed into every bucket's
// brace set and suffixed onto _sum/_count (the HistogramVec case); the
// TYPE line is the caller's job then.
func writeHistogram(w io.Writer, name, labels string, h *Histogram) error {
	if labels == "" {
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
			return err
		}
	}
	sep, suffix := "", ""
	if labels != "" {
		sep = labels + ","
		suffix = "{" + labels + "}"
	}
	var cum int64
	for i, bound := range h.bounds {
		cum += h.counts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, sep, formatFloat(bound), cum); err != nil {
			return err
		}
	}
	cum += h.counts[len(h.bounds)].Load()
	_, err := fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n%s_sum%s %s\n%s_count%s %d\n",
		name, sep, cum, name, suffix, formatFloat(h.Sum()), name, suffix, h.Count())
	return err
}

// writeHistogramVec renders every materialized series of the family
// under one TYPE header, label values in sorted order so output is
// stable scrape over scrape.
func writeHistogramVec(w io.Writer, name string, v *HistogramVec) error {
	if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
		return err
	}
	values, hs := v.snapshot()
	for i, val := range values {
		labels := fmt.Sprintf("%s=\"%s\"", v.label, escapeLabelValue(val))
		if err := writeHistogram(w, name, labels, hs[i]); err != nil {
			return err
		}
	}
	return nil
}

// writeInfoGauge renders the constant info series with sorted label
// keys.
func writeInfoGauge(w io.Writer, name string, labels map[string]string) error {
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=\"%s\"", k, escapeLabelValue(labels[k])))
	}
	_, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s{%s} 1\n", name, name, strings.Join(parts, ","))
	return err
}

// escapeLabelValue applies the Prometheus text-format label escapes:
// backslash, double quote and newline.
func escapeLabelValue(v string) string {
	return labelEscaper.Replace(v)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
