package core

import (
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"loas/internal/layout/extract"
	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

var (
	runOnce sync.Once
	results [5]*Result // index by case
	runErr  error
)

// allCases synthesizes the four Table-1 cases once for the whole package,
// through the concurrent driver — so every assertion below also vouches
// for the parallel path.
func allCases(t *testing.T) [5]*Result {
	t.Helper()
	runOnce.Do(func() {
		tech := techno.Default060()
		spec := sizing.Default65MHz()
		all, err := SynthesizeAll(tech, spec, Options{})
		if err != nil {
			runErr = err
			return
		}
		for i, res := range all {
			results[i+1] = res
		}
	})
	if runErr != nil {
		t.Fatal(runErr)
	}
	return results
}

// table1Rows renders a result the way Table 1 prints it — everything a
// user of the experiment sees, minus wall-clock.
func table1Rows(res *Result) string {
	var b strings.Builder
	for _, name := range sizing.RowNames() {
		b.WriteString(res.Synthesized.Row(name, res.Extracted) + "\n")
	}
	fmt.Fprintf(&b, "layout calls %d, sizing passes %d\n", res.LayoutCalls, res.SizingPasses)
	return b.String()
}

// TestSynthesizeAllMatchesSerial is the determinism gate for the
// parallel engine: the concurrent four-case run must produce
// byte-identical Table-1 rows to four serial Synthesize calls.
func TestSynthesizeAllMatchesSerial(t *testing.T) {
	parallelRes := allCases(t)
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	for c := 1; c <= 4; c++ {
		serial, err := Synthesize(tech, spec, Options{Case: c})
		if err != nil {
			t.Fatal(err)
		}
		want, got := table1Rows(serial), table1Rows(parallelRes[c])
		if want != got {
			t.Fatalf("case %d diverged between serial and concurrent runs:\nserial:\n%s\nconcurrent:\n%s",
				c, want, got)
		}
	}
}

// TestConcurrentSynthesisSharedTech is the tech-card-immutability
// contract: two synthesis runs sharing one *techno.Tech from concurrent
// goroutines must not interfere. Any hidden mutation of the shared cards
// either trips the race detector or diverges the rendered rows.
func TestConcurrentSynthesisSharedTech(t *testing.T) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	rows := make([]string, 2)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Synthesize(tech, spec, Options{Case: 2})
			if err != nil {
				errs[g] = err
				return
			}
			rows[g] = table1Rows(res)
		}(g)
	}
	wg.Wait()
	for g, err := range errs {
		if err != nil {
			t.Fatalf("goroutine %d: %v", g, err)
		}
	}
	if rows[0] != rows[1] {
		t.Fatalf("concurrent runs over one shared Tech disagree:\n%s\nvs\n%s", rows[0], rows[1])
	}
}

// TestCompareFlowsMatchesComponents: the side-by-side comparison returns
// the same designs the individual flows produce.
func TestCompareFlowsMatchesComponents(t *testing.T) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	fc, err := CompareFlows(tech, spec, 10, Options{}.Shape)
	if err != nil {
		t.Fatal(err)
	}
	if fc.TraditionalErr != nil {
		t.Fatalf("traditional flow should meet spec here: %v", fc.TraditionalErr)
	}
	want := table1Rows(allCases(t)[4])
	if got := table1Rows(fc.Proposed); got != want {
		t.Fatalf("proposed flow diverged from a standalone case-4 run:\n%s\nvs\n%s", got, want)
	}
	if fc.Traditional.Iterations < 2 {
		t.Fatalf("traditional baseline converged in %d iteration(s)", fc.Traditional.Iterations)
	}
	// Concurrent execution: total wall-clock below the sum of the parts.
	sum := fc.Proposed.Elapsed + fc.Traditional.Elapsed
	if fc.Elapsed > sum+time.Second {
		t.Fatalf("comparison wall-clock %s exceeds the serial sum %s", fc.Elapsed, sum)
	}
}

func TestCase4MatchesExtraction(t *testing.T) {
	res := allCases(t)[4]
	s, x := res.Synthesized, res.Extracted
	if rel := math.Abs(s.GBW-x.GBW) / x.GBW; rel > 0.02 {
		t.Fatalf("case 4 GBW mismatch: %.2f vs %.2f MHz", s.GBW/1e6, x.GBW/1e6)
	}
	if math.Abs(s.PhaseDeg-x.PhaseDeg) > 1.0 {
		t.Fatalf("case 4 PM mismatch: %.2f vs %.2f°", s.PhaseDeg, x.PhaseDeg)
	}
	if math.Abs(s.DCGainDB-x.DCGainDB) > 0.5 {
		t.Fatalf("case 4 gain mismatch: %.2f vs %.2f dB", s.DCGainDB, x.DCGainDB)
	}
	if rel := math.Abs(s.SlewRate-x.SlewRate) / x.SlewRate; rel > 0.05 {
		t.Fatalf("case 4 SR mismatch: %.1f vs %.1f V/µs", s.SlewRate/1e6, x.SlewRate/1e6)
	}
}

func TestCase4MeetsSpec(t *testing.T) {
	res := allCases(t)[4]
	spec := sizing.Default65MHz()
	if res.Extracted.GBW < 0.99*spec.GBW {
		t.Fatalf("case 4 extracted GBW %.2f MHz misses spec", res.Extracted.GBW/1e6)
	}
	if res.Extracted.PhaseDeg < spec.PM-1 {
		t.Fatalf("case 4 extracted PM %.2f° misses spec", res.Extracted.PhaseDeg)
	}
}

func TestCase1MissesSpecInExtraction(t *testing.T) {
	res := allCases(t)[1]
	spec := sizing.Default65MHz()
	if res.Extracted.GBW >= spec.GBW {
		t.Fatalf("case 1 extracted GBW %.2f MHz should miss spec", res.Extracted.GBW/1e6)
	}
	if res.Extracted.PhaseDeg >= spec.PM {
		t.Fatalf("case 1 extracted PM %.2f° should miss spec", res.Extracted.PhaseDeg)
	}
	// But its own evaluation believed the spec was met.
	if res.Synthesized.GBW < 0.99*spec.GBW {
		t.Fatal("case 1 synthesized GBW should look on-spec")
	}
}

func TestCase2OverShootsAndDegrades(t *testing.T) {
	r := allCases(t)
	spec := sizing.Default65MHz()
	c1, c2 := r[1], r[2]
	if c2.Extracted.GBW <= spec.GBW {
		t.Fatalf("case 2 extracted GBW %.2f should exceed spec", c2.Extracted.GBW/1e6)
	}
	if c2.Extracted.PhaseDeg <= spec.PM {
		t.Fatalf("case 2 extracted PM %.2f should exceed spec", c2.Extracted.PhaseDeg)
	}
	if c2.Extracted.DCGainDB >= c1.Extracted.DCGainDB {
		t.Fatal("case 2 should lose DC gain versus case 1")
	}
	if c2.Extracted.Rout >= c1.Extracted.Rout {
		t.Fatal("case 2 should lose output resistance versus case 1")
	}
	if c2.Extracted.Power <= c1.Extracted.Power {
		t.Fatal("case 2 should burn more power than case 1")
	}
}

func TestCase3SlightResidual(t *testing.T) {
	res := allCases(t)[3]
	s, x := res.Synthesized, res.Extracted
	// Residual mismatch from neglected routing stays within 5%.
	if rel := math.Abs(s.GBW-x.GBW) / s.GBW; rel > 0.05 {
		t.Fatalf("case 3 GBW residual %.1f%% too large", rel*100)
	}
	// Worse match than case 4 on the bandwidth family.
	c4 := allCases(t)[4]
	res3 := math.Abs(s.GBW-x.GBW) / s.GBW
	res4 := math.Abs(c4.Synthesized.GBW-c4.Extracted.GBW) / c4.Synthesized.GBW
	if res3 < res4 {
		t.Fatalf("case 3 (%.3f%%) should match worse than case 4 (%.3f%%)",
			res3*100, res4*100)
	}
}

func TestParasiticConvergence(t *testing.T) {
	r := allCases(t)
	for _, c := range []int{3, 4} {
		if n := r[c].LayoutCalls; n < 2 || n > 6 {
			t.Fatalf("case %d used %d layout calls, expected a handful", c, n)
		}
	}
	for _, c := range []int{1, 2} {
		if n := r[c].LayoutCalls; n != 1 {
			t.Fatalf("case %d should need exactly one layout call, got %d", c, n)
		}
	}
}

// TestConvergenceTraceRecorded: every synthesis carries one trace event
// per layout call, well-formed (calls numbered from 1, first delta is
// the -1 sentinel, later deltas measured, phases timed, caps positive).
func TestConvergenceTraceRecorded(t *testing.T) {
	r := allCases(t)
	for c := 1; c <= NumTable1Cases; c++ {
		res := r[c]
		if len(res.Trace) != res.LayoutCalls {
			t.Fatalf("case %d: %d trace events for %d layout calls",
				c, len(res.Trace), res.LayoutCalls)
		}
		for i, it := range res.Trace {
			if it.Call != i+1 {
				t.Fatalf("case %d event %d: call numbered %d", c, i, it.Call)
			}
			if i == 0 && it.DeltaF != -1 {
				t.Fatalf("case %d: first call must carry the -1 delta sentinel, got %g", c, it.DeltaF)
			}
			if i > 0 && it.DeltaF < 0 {
				t.Fatalf("case %d call %d: unmeasured delta", c, it.Call)
			}
			if it.OutCapF <= 0 || it.TotalCapF < it.OutCapF || it.Folds <= 0 {
				t.Fatalf("case %d call %d: implausible caps/folds %+v", c, it.Call, it)
			}
			if it.W1 <= 0 || it.Lc <= 0 || it.Itail <= 0 {
				t.Fatalf("case %d call %d: missing design point %+v", c, it.Call, it)
			}
			if it.SizingNS <= 0 || it.LayoutNS <= 0 {
				t.Fatalf("case %d call %d: phases not timed %+v", c, it.Call, it)
			}
		}
	}
}

// TestConvergenceBudgetAndShrinkingDeltas pins the paper's convergence
// story as a regression bound: the case-4 loop settles within the seed's
// layout-call count and every measured parasitic delta shrinks
// monotonically down to the fixpoint tolerance.
func TestConvergenceBudgetAndShrinkingDeltas(t *testing.T) {
	// The seed converges in 4 layout calls at the 1 fF tolerance (the
	// paper's example needed 3 at its coarser tolerance); more means the
	// loop regressed.
	const seedLayoutCalls = 4
	res := allCases(t)[4]
	if res.LayoutCalls > seedLayoutCalls {
		t.Fatalf("case 4 used %d layout calls, seed needed %d", res.LayoutCalls, seedLayoutCalls)
	}
	tr := res.Trace
	for i := 2; i < len(tr); i++ {
		if tr[i].DeltaF >= tr[i-1].DeltaF {
			t.Fatalf("parasitic delta stopped shrinking at call %d: %g fF after %g fF",
				tr[i].Call, tr[i].DeltaF*1e15, tr[i-1].DeltaF*1e15)
		}
	}
	last := tr[len(tr)-1]
	if last.DeltaF < 0 || last.DeltaF >= 1e-15 {
		t.Fatalf("loop ended above tolerance: Δ = %g fF", last.DeltaF*1e15)
	}
	if !obs.Converged(tr, 1e-15) {
		t.Fatal("obs.Converged disagrees with the loop's own fixpoint")
	}
}

// TestOptionsTraceMirrorsResult: the live recorder passed via Options
// sees exactly the events the Result carries.
func TestOptionsTraceMirrorsResult(t *testing.T) {
	tr := &obs.Trace{}
	res, err := Synthesize(techno.Default060(), sizing.Default65MHz(),
		Options{Case: 4, SkipVerify: true, Trace: tr})
	if err != nil {
		t.Fatal(err)
	}
	live := tr.Iterations()
	if len(live) != len(res.Trace) {
		t.Fatalf("live recorder got %d events, result has %d", len(live), len(res.Trace))
	}
	for i := range live {
		if live[i] != res.Trace[i] {
			t.Fatalf("event %d diverged:\n  live   %+v\n  result %+v", i, live[i], res.Trace[i])
		}
	}
}

func TestParasiticFixpoint(t *testing.T) {
	// Re-running the layout on the converged design changes nothing
	// beyond the convergence tolerance.
	res := allCases(t)[4]
	plan, err := res.Design.Layout().Plan(techno.Default060(), Options{}.Shape)
	if err != nil {
		t.Fatal(err)
	}
	if d := extract.MaxDelta(res.Parasitics, plan.Parasitics); d > 1e-15 {
		t.Fatalf("fixpoint violated: re-plan moved parasitics by %.3g fF", d*1e15)
	}
}

func TestRuntimeWithinPaperBudget(t *testing.T) {
	// The paper reports "sizing time … does not exceed two minutes";
	// a software-only reproduction should beat that by a wide margin.
	res := allCases(t)[4]
	if res.Elapsed.Seconds() > 120 {
		t.Fatalf("case 4 took %s", res.Elapsed)
	}
}

func TestExtractedNetlistContents(t *testing.T) {
	res := allCases(t)[4]
	deck := res.ExtractedCkt.Export()
	for _, want := range []string{"MMP1", "MMN2C", "Cpar_out", "Ctbload"} {
		if want == "Ctbload" {
			continue // the bench adds the load, not the netlist
		}
		if !strings.Contains(deck, want) {
			t.Fatalf("extracted deck missing %q", want)
		}
	}
	// Coupling capacitors present.
	if !strings.Contains(deck, "Ccc_") {
		t.Fatal("extracted deck missing coupling capacitors")
	}
}

func TestTraditionalFlowConverges(t *testing.T) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	res, err := TraditionalFlow(tech, spec, 10, Options{}.Shape)
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 2 {
		t.Fatalf("traditional flow converged in %d iteration(s) — the whole "+
			"point is that it should need several", res.Iterations)
	}
	if res.Extracted.GBW < 0.98*spec.GBW {
		t.Fatalf("traditional flow missed GBW: %.2f MHz", res.Extracted.GBW/1e6)
	}
	if res.GBWOverdrive <= 1.0 {
		t.Fatal("traditional flow should have had to over-design")
	}
}

func TestOptionsValidation(t *testing.T) {
	tech := techno.Default060()
	if _, err := Synthesize(tech, sizing.Default65MHz(), Options{Case: 7}); err == nil {
		t.Fatal("case 7 accepted")
	}
}

func TestCornerSweep(t *testing.T) {
	res := allCases(t)[4]
	tech := techno.Default060()
	corners, err := CornerSweep(tech, res)
	if err != nil {
		t.Fatal(err)
	}
	tt := corners[techno.CornerTT]
	ss := corners[techno.CornerSS]
	ff := corners[techno.CornerFF]
	// Fast silicon is faster, slow is slower; nominal in between.
	if !(ss.GBW < tt.GBW && tt.GBW < ff.GBW) {
		t.Fatalf("corner GBW ordering broken: ss %.1f, tt %.1f, ff %.1f MHz",
			ss.GBW/1e6, tt.GBW/1e6, ff.GBW/1e6)
	}
	// The design stays functional at every corner: gain within 6 dB of
	// nominal, phase margin above 45°.
	for c, p := range corners {
		if math.Abs(p.DCGainDB-tt.DCGainDB) > 6 {
			t.Fatalf("corner %s gain %.1f dB too far from nominal %.1f", c, p.DCGainDB, tt.DCGainDB)
		}
		if p.PhaseDeg < 45 {
			t.Fatalf("corner %s phase margin %.1f° collapsed", c, p.PhaseDeg)
		}
	}
}
