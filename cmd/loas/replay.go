// `loas replay` is the ledger-driven load generator: it reads a
// recorded JSONL run ledger (loasd -ledger / loas synth -ledger) and
// re-issues the original requests against a live daemon, reporting
// throughput, latency percentiles, cache behaviour and byte-identity
// of the responses against the recorded results.

package main

import (
	"context"
	"flag"
	"fmt"
	"io"

	"loas/internal/replay"
)

func runReplay(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	ledger := fs.String("ledger", "loas-runs.jsonl", "JSONL run ledger to replay (reads the rotated .1 generation too)")
	addr := fs.String("addr", "http://127.0.0.1:8086", "loasd base URL")
	conc := fs.Int("c", 1, "concurrent in-flight requests")
	rate := fs.Float64("rate", 0, "dispatch rate in requests/second (0 = as fast as workers drain)")
	n := fs.Int("n", 0, "replay only the first N replayable items (0 = all)")
	kind := fs.String("kind", "", "replay only this kind (synthesize|table1|mc|batch|explore|layout.svg)")
	children := fs.Bool("children", false, "also replay child runs (batch items, explore probes); off by default since parents re-issue them")
	timeout := fs.Duration("timeout", 0, "per-request timeout (default 5m)")
	asJSON := fs.Bool("json", false, "emit the replay.Report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}

	items, err := replay.Load(*ledger, *children)
	if err != nil {
		return err
	}
	if *kind != "" {
		kept := items[:0]
		for _, it := range items {
			if it.Kind == *kind {
				kept = append(kept, it)
			}
		}
		items = kept
		if len(items) == 0 {
			return fmt.Errorf("no replayable %q runs in %s", *kind, *ledger)
		}
	}
	if *n > 0 && *n < len(items) {
		items = items[:*n]
	}

	if !*asJSON {
		fmt.Fprintf(out, "replaying %d requests from %s against %s (c=%d", len(items), *ledger, *addr, *conc)
		if *rate > 0 {
			fmt.Fprintf(out, ", rate=%g/s", *rate)
		}
		fmt.Fprintln(out, ")")
	}
	rep, err := replay.Run(context.Background(), replay.Config{
		BaseURL:     *addr,
		Concurrency: *conc,
		Rate:        *rate,
		Timeout:     *timeout,
	}, items)
	if err != nil {
		return err
	}
	if *asJSON {
		err = writeJSON(out, rep)
	} else {
		_, err = io.WriteString(out, rep.Text())
	}
	if err != nil {
		return err
	}
	// Checked-Matched, not len(Mismatches): the detail list is capped.
	if rep.Checked > rep.Matched {
		return fmt.Errorf("%d of %d checked responses differ from the recorded results", rep.Checked-rep.Matched, rep.Checked)
	}
	return nil
}
