// Package techno describes a fabrication technology to the rest of the
// system: MOS model cards, layout design rules, interconnect parasitic
// coefficients and reliability limits.
//
// It plays the role of the foundry design kit plus the "technology
// evaluation interface" of the COMDIAC sizing tool described in the paper.
// All electrical quantities are SI (volts, amperes, farads, metres, ohms);
// layout geometry elsewhere in the repository uses integer nanometres and
// converts at the extraction boundary.
package techno

import (
	"fmt"
	"math"
)

// Physical constants used across the library.
const (
	// Boltzmann constant (J/K).
	KBoltzmann = 1.380649e-23
	// Elementary charge (C).
	QElectron = 1.602176634e-19
	// Permittivity of SiO2 (F/m).
	EpsSiO2 = 3.45313e-11
	// Default analysis temperature (K): 300.15 K ≈ 27 °C.
	TempNominal = 300.15
)

// Micron expressed in metres; handy for model cards and specs.
const Micron = 1e-6

// ThermalVoltage returns kT/q at temperature t (K).
func ThermalVoltage(t float64) float64 { return KBoltzmann * t / QElectron }

// MOSType distinguishes n-channel from p-channel devices.
type MOSType int

const (
	NMOS MOSType = iota
	PMOS
)

// String implements fmt.Stringer.
func (t MOSType) String() string {
	if t == NMOS {
		return "nmos"
	}
	return "pmos"
}

// MOSCard is a level-1+ MOS model card. The model implemented in package
// device extends SPICE level 1 with length-dependent channel-length
// modulation (constant Early voltage per unit length), body effect, a
// continuous weak-inversion tail, Meyer intrinsic capacitances, overlap
// capacitances and bias-dependent junction capacitances.
type MOSCard struct {
	Type MOSType

	VT0   float64 // zero-bias threshold voltage magnitude (V)
	KP    float64 // transconductance parameter µCox (A/V²)
	Gamma float64 // body-effect coefficient (V^0.5)
	Phi   float64 // surface potential 2φF (V)
	VAL   float64 // Early voltage per unit length (V/m): VA = VAL·Leff
	Theta float64 // mobility degradation vs Veff (1/V)

	Cox  float64 // gate oxide capacitance per area (F/m²)
	LD   float64 // lateral diffusion per side (m)
	CGDO float64 // gate-drain overlap capacitance per width (F/m)
	CGSO float64 // gate-source overlap capacitance per width (F/m)
	CGBO float64 // gate-bulk overlap capacitance per length (F/m)

	CJ   float64 // zero-bias junction bottom capacitance (F/m²)
	CJSW float64 // zero-bias junction sidewall capacitance (F/m)
	MJ   float64 // bottom grading coefficient
	MJSW float64 // sidewall grading coefficient
	PB   float64 // junction built-in potential (V)

	KF float64 // flicker noise coefficient (SPICE level-1 form)
	AF float64 // flicker noise current exponent

	// Pelgrom matching coefficients: σ(ΔVT0) = AVT/√(W·L),
	// σ(Δβ/β) = ABeta/√(W·L), for the difference between two
	// identically drawn devices.
	AVT   float64 // V·m
	ABeta float64 // (fraction)·m

	// NoiseGamma is the thermal channel-noise factor (2/3 in strong
	// inversion for long-channel devices).
	NoiseGamma float64
}

// VTSign returns +1 for NMOS and −1 for PMOS; device equations are written
// for NMOS and mirrored through this sign.
func (c *MOSCard) VTSign() float64 {
	if c.Type == NMOS {
		return 1
	}
	return -1
}

// Layer identifies a mask layer used by the layout generators.
type Layer int

// Mask layers, bottom-up.
const (
	LayerNWell Layer = iota
	LayerActive
	LayerPoly
	LayerContact
	LayerMetal1
	LayerVia1
	LayerMetal2
	LayerNImplant
	LayerPImplant
	LayerPoly2 // capacitor top plate
	NumLayers
)

var layerNames = [...]string{
	"nwell", "active", "poly", "contact", "metal1", "via1", "metal2",
	"nimplant", "pimplant", "poly2",
}

// String implements fmt.Stringer.
func (l Layer) String() string {
	if l < 0 || int(l) >= len(layerNames) {
		return fmt.Sprintf("layer(%d)", int(l))
	}
	return layerNames[l]
}

// Rules is the subset of layout design rules the procedural generators
// need. All values are in nanometres.
type Rules struct {
	Grid int64 // manufacturing grid; every coordinate snaps to it

	PolyWidth   int64 // minimum (= drawn) gate length support
	PolySpace   int64
	PolyExtGate int64 // poly endcap extension beyond active

	ActiveWidth int64
	ActiveSpace int64

	ContactSize      int64
	ContactSpace     int64
	ContactActiveEnc int64 // active enclosure of contact
	ContactPolyEnc   int64
	ContactMetalEnc  int64 // metal1 enclosure of contact
	ContactToGate    int64 // contact to gate-poly spacing

	Metal1Width int64
	Metal1Space int64
	Metal2Width int64
	Metal2Space int64
	Via1Size    int64
	Via1Space   int64
	Via1Enc     int64

	NWellEncActive int64 // n-well enclosure of p-active
	NWellSpace     int64

	GateSpace int64 // poly gate to poly gate inside a diffusion stack
}

// Interconnect carries wiring parasitic coefficients and reliability
// limits, per routing layer.
type Interconnect struct {
	// CArea is capacitance to substrate per area (F/m²) for metal1, metal2.
	CAreaM1, CAreaM2 float64
	// CFringe is fringe capacitance per edge length (F/m).
	CFringeM1, CFringeM2 float64
	// CCouple is lateral coupling capacitance per length at minimum
	// spacing (F/m); scaled by minSpace/space for wider gaps.
	CCoupleM1, CCoupleM2 float64
	// CPolyArea / CPolyFringe for poly routing over field.
	CPolyArea, CPolyFringe float64
	// RSheet: sheet resistances (Ω/sq).
	RSheetM1, RSheetM2, RSheetPoly float64
	// RContact, RVia: single contact/via resistance (Ω).
	RContact, RVia float64
	// JMax: maximum current density for electromigration (A/m of wire
	// width). 1 mA/µm = 1000 A/m.
	JMax float64
	// IContact: maximum current per contact/via (A).
	IContact float64
	// CWellArea: floating n-well to substrate capacitance (F/m²),
	// CWellPerim (F/m).
	CWellArea, CWellPerim float64
	// CPolyPoly: poly–poly2 capacitor dielectric capacitance (F/m²).
	CPolyPoly float64
	// RSheetPoly2 (Ω/sq) for the capacitor top plate.
	RSheetPoly2 float64
}

// Tech bundles everything the sizing and layout tools need to know about a
// process.
type Tech struct {
	Name string
	// Feature is the drawn minimum gate length (m).
	Feature float64
	// VDDNominal is the nominal supply (V).
	VDDNominal float64
	Temp       float64 // analysis temperature (K)

	N MOSCard // n-channel card
	P MOSCard // p-channel card

	Rules Rules
	Wire  Interconnect

	// DiffExtContacted: length of a contacted source/drain diffusion
	// strip along the channel direction (m). Used for junction area
	// estimates before layout exists.
	DiffExtContacted float64
	// DiffExtShared: length of a diffusion shared between two gates (m).
	DiffExtShared float64
}

// Card returns the model card for the requested device type.
func (t *Tech) Card(mt MOSType) *MOSCard {
	if mt == NMOS {
		return &t.N
	}
	return &t.P
}

// Vt returns the thermal voltage at the technology's analysis temperature.
func (t *Tech) Vt() float64 { return ThermalVoltage(t.Temp) }

// Default060 returns a generic 0.6 µm CMOS technology with typical
// mid-1990s parameters. It substitutes for the proprietary foundry kit used
// in the paper; see DESIGN.md §5.
func Default060() *Tech {
	const tox = 12e-9
	cox := EpsSiO2 / tox // ≈ 2.88e-3 F/m² = 2.88 fF/µm²
	t := &Tech{
		Name:       "generic-cmos-0.6um",
		Feature:    0.6 * Micron,
		VDDNominal: 3.3,
		Temp:       TempNominal,
		N: MOSCard{
			Type:       NMOS,
			VT0:        0.75,
			KP:         450e-4 * cox, // µn = 450 cm²/Vs → 1.30e-4 A/V²
			Gamma:      0.60,
			Phi:        0.70,
			VAL:        8.0 / Micron, // 8 V per µm of channel length
			Theta:      0.20,
			Cox:        cox,
			LD:         0.05 * Micron,
			CGDO:       0.05 * Micron * cox, // overlap = LD·Cox ≈ 0.144 fF/µm
			CGSO:       0.05 * Micron * cox,
			CGBO:       0.10e-9, // 0.1 fF/µm
			CJ:         0.42e-3, // 0.42 fF/µm²
			CJSW:       0.33e-9, // 0.33 fF/µm
			MJ:         0.45,
			MJSW:       0.33,
			PB:         0.90,
			KF:         3.0e-28,
			AF:         1.0,
			AVT:        11e-9,    // 11 mV·µm, typical 0.6 µm NMOS
			ABeta:      0.018e-6, // 1.8 %·µm
			NoiseGamma: 2.0 / 3.0,
		},
		P: MOSCard{
			Type:       PMOS,
			VT0:        0.80,
			KP:         160e-4 * cox, // µp = 160 cm²/Vs → 4.6e-5 A/V²
			Gamma:      0.55,
			Phi:        0.70,
			VAL:        12.0 / Micron, // PMOS shows higher VA/L in this card
			Theta:      0.15,
			Cox:        cox,
			LD:         0.05 * Micron,
			CGDO:       0.05 * Micron * cox,
			CGSO:       0.05 * Micron * cox,
			CGBO:       0.10e-9,
			CJ:         0.56e-3,
			CJSW:       0.38e-9,
			MJ:         0.48,
			MJSW:       0.32,
			PB:         0.95,
			KF:         1.0e-28, // buried-channel PMOS: less 1/f noise
			AF:         1.0,
			AVT:        13e-9, // PMOS matches slightly worse
			ABeta:      0.022e-6,
			NoiseGamma: 2.0 / 3.0,
		},
		Rules: Rules{
			Grid:             50, // 0.05 µm grid
			PolyWidth:        600,
			PolySpace:        700,
			PolyExtGate:      500,
			ActiveWidth:      800,
			ActiveSpace:      1000,
			ContactSize:      600,
			ContactSpace:     700,
			ContactActiveEnc: 300,
			ContactPolyEnc:   300,
			ContactMetalEnc:  250,
			ContactToGate:    500,
			Metal1Width:      800,
			Metal1Space:      800,
			Metal2Width:      900,
			Metal2Space:      900,
			Via1Size:         600,
			Via1Space:        700,
			Via1Enc:          300,
			NWellEncActive:   1200,
			NWellSpace:       2400,
			GateSpace:        1700, // contacted gate pitch inside a stack
		},
		Wire: Interconnect{
			CAreaM1:     30e-6,  // 30 aF/µm²
			CAreaM2:     17e-6,  // 17 aF/µm²
			CFringeM1:   40e-12, // 40 aF/µm
			CFringeM2:   35e-12,
			CCoupleM1:   85e-12, // 85 aF/µm at min spacing
			CCoupleM2:   90e-12,
			CPolyArea:   55e-6,
			CPolyFringe: 45e-12,
			RSheetM1:    0.07,
			RSheetM2:    0.05,
			RSheetPoly:  25.0,
			RContact:    8.0,
			RVia:        4.0,
			JMax:        1.0e3, // 1 mA/µm
			IContact:    0.8e-3,
			CWellArea:   0.10e-3, // 0.1 fF/µm²
			CWellPerim:  0.25e-9,
			CPolyPoly:   0.90e-3, // 0.9 fF/µm² poly–poly capacitor
			RSheetPoly2: 40.0,
		},
		DiffExtContacted: 1.7 * Micron, // contact + 2 enclosures + gate gap
		DiffExtShared:    1.7 * Micron,
	}
	return t
}

// SnapNM rounds a length in nanometres to the manufacturing grid, away from
// zero, so widths never shrink below a design-rule minimum when snapped.
func (r *Rules) SnapNM(v int64) int64 {
	if r.Grid <= 1 {
		return v
	}
	g := r.Grid
	if v >= 0 {
		return (v + g - 1) / g * g
	}
	return -((-v + g - 1) / g * g)
}

// SnapDownNM rounds towards zero onto the grid.
func (r *Rules) SnapDownNM(v int64) int64 {
	if r.Grid <= 1 {
		return v
	}
	g := r.Grid
	if v >= 0 {
		return v / g * g
	}
	return -(-v / g * g)
}

// MetersToNM converts an SI length to integer nanometres (rounded).
func MetersToNM(m float64) int64 { return int64(math.Round(m * 1e9)) }

// NMToMeters converts integer nanometres to SI metres.
func NMToMeters(nm int64) float64 { return float64(nm) * 1e-9 }

// Validate performs a sanity check of the card and rules; it returns an
// error naming the first inconsistent field.
func (t *Tech) Validate() error {
	for _, c := range []*MOSCard{&t.N, &t.P} {
		switch {
		case c.VT0 <= 0:
			return fmt.Errorf("techno %s: %s VT0 must be positive (magnitude convention)", t.Name, c.Type)
		case c.KP <= 0:
			return fmt.Errorf("techno %s: %s KP must be positive", t.Name, c.Type)
		case c.Cox <= 0:
			return fmt.Errorf("techno %s: %s Cox must be positive", t.Name, c.Type)
		case c.PB <= 0:
			return fmt.Errorf("techno %s: %s PB must be positive", t.Name, c.Type)
		case c.VAL <= 0:
			return fmt.Errorf("techno %s: %s VAL must be positive", t.Name, c.Type)
		}
	}
	if t.Rules.Grid <= 0 {
		return fmt.Errorf("techno %s: grid must be positive", t.Name)
	}
	if t.Wire.JMax <= 0 {
		return fmt.Errorf("techno %s: JMax must be positive", t.Name)
	}
	if t.Feature <= 0 || t.VDDNominal <= 0 {
		return fmt.Errorf("techno %s: feature and VDD must be positive", t.Name)
	}
	return nil
}

// Corner names the standard process corners.
type Corner string

// Process corners: typical, slow/slow, fast/fast, slow-N/fast-P and
// fast-N/slow-P.
const (
	CornerTT Corner = "tt"
	CornerSS Corner = "ss"
	CornerFF Corner = "ff"
	CornerSF Corner = "sf"
	CornerFS Corner = "fs"
)

// AtCorner returns a deep copy of the technology shifted to a process
// corner: ±8% on VT0 and ∓10% on KP per device type (slow = high VT, low
// mobility). The nominal card is CornerTT.
func (t *Tech) AtCorner(c Corner) (*Tech, error) {
	shift := func(card *MOSCard, slow bool) {
		if slow {
			card.VT0 *= 1.08
			card.KP *= 0.90
		} else {
			card.VT0 *= 0.92
			card.KP *= 1.10
		}
	}
	out := *t
	out.Name = t.Name + "-" + string(c)
	switch c {
	case CornerTT:
		return &out, nil
	case CornerSS:
		shift(&out.N, true)
		shift(&out.P, true)
	case CornerFF:
		shift(&out.N, false)
		shift(&out.P, false)
	case CornerSF:
		shift(&out.N, true)
		shift(&out.P, false)
	case CornerFS:
		shift(&out.N, false)
		shift(&out.P, true)
	default:
		return nil, fmt.Errorf("techno: unknown corner %q", c)
	}
	return &out, nil
}
