package device

import (
	"math"
	"testing"
	"testing/quick"

	"loas/internal/techno"
)

func TestFFactorPaperValues(t *testing.T) {
	// Exact values from the paper's Fig. 2 formulas.
	cases := []struct {
		nf     int
		style  DiffNet
		fd, fs float64
	}{
		{1, DrainInternal, 1.0, 1.0},             // odd: (1+1)/2 = 1
		{2, DrainInternal, 0.5, 1.0},             // even: 1/2 and (2+2)/4
		{3, DrainInternal, 2.0 / 3.0, 2.0 / 3.0}, // odd: 4/6
		{4, DrainInternal, 0.5, 0.75},            // (4+2)/8
		{6, DrainInternal, 0.5, 8.0 / 12.0},
		{2, SourceInternal, 1.0, 0.5},
		{4, SourceInternal, 0.75, 0.5},
	}
	for _, c := range cases {
		fd, fs := FFactor(c.nf, c.style)
		if math.Abs(fd-c.fd) > 1e-12 || math.Abs(fs-c.fs) > 1e-12 {
			t.Errorf("FFactor(%d,%v) = %g,%g want %g,%g", c.nf, c.style, fd, fs, c.fd, c.fs)
		}
	}
}

func TestFFactorBoundsAndMonotone(t *testing.T) {
	// Property: 0.5 ≤ F ≤ 1 always; the internal-net factor never
	// increases as even fold counts grow.
	for nf := 1; nf <= 64; nf++ {
		fd, fs := FFactor(nf, DrainInternal)
		for _, f := range []float64{fd, fs} {
			if f < 0.5-1e-12 || f > 1+1e-12 {
				t.Fatalf("F out of bounds at nf=%d: %g", nf, f)
			}
		}
	}
	prev := 1.0
	for nf := 2; nf <= 64; nf += 2 {
		fd, _ := FFactor(nf, DrainInternal)
		if fd > prev+1e-12 {
			t.Fatalf("internal F increased at nf=%d", nf)
		}
		prev = fd
	}
	// External even factor approaches 1/2 from above.
	_, fs64 := FFactor(64, DrainInternal)
	if fs64 < 0.5 || fs64 > 0.52 {
		t.Fatalf("external F at 64 folds = %g, want ≈ 0.515", fs64)
	}
}

func TestPlanFoldsBookkeeping(t *testing.T) {
	tech := techno.Default060()
	for nf := 1; nf <= 12; nf++ {
		for _, style := range []DiffNet{DrainInternal, SourceInternal} {
			p := PlanFolds(&tech.Rules, 24*um, nf, style)
			if p.DrainStrips+p.SourceStrips != nf+1 {
				t.Fatalf("nf=%d: strips %d+%d != %d", nf, p.DrainStrips, p.SourceStrips, nf+1)
			}
			if p.DrainExt+p.SourceExt != 2 {
				t.Fatalf("nf=%d: a stack always has exactly 2 external strips, got %d",
					nf, p.DrainExt+p.SourceExt)
			}
			if p.FingerW <= 0 {
				t.Fatalf("nf=%d: non-positive finger width", nf)
			}
		}
	}
}

func TestPlanFoldsGridSnap(t *testing.T) {
	tech := techno.Default060()
	p := PlanFolds(&tech.Rules, 10.01*um, 3, DrainInternal)
	fwNM := techno.MetersToNM(p.FingerW)
	if fwNM%tech.Rules.Grid != 0 {
		t.Fatalf("finger width %d nm not on %d nm grid", fwNM, tech.Rules.Grid)
	}
	// Snapping rounds up, so realized total width ≥ requested.
	if p.TotalW() < 10.01*um-1e-12 {
		t.Fatalf("snapped width %g below request", p.TotalW())
	}
}

func TestGeomMatchesFFactor(t *testing.T) {
	// The diffusion areas from the explicit strip bookkeeping must equal
	// F·W·E (the paper's formulation) when contacted and shared strip
	// extensions are equal.
	tech := techno.Default060()
	tech.DiffExtShared = tech.DiffExtContacted
	e := tech.DiffExtContacted
	for nf := 1; nf <= 10; nf++ {
		p := PlanFolds(&tech.Rules, 20*um, nf, DrainInternal)
		g := p.Geom(tech)
		w := p.TotalW()
		fd, fs := FFactor(nf, DrainInternal)
		if rel := math.Abs(g.AD-fd*w*e) / (fd * w * e); rel > 1e-9 {
			t.Fatalf("nf=%d: AD=%g, F·W·E=%g", nf, g.AD, fd*w*e)
		}
		if rel := math.Abs(g.AS-fs*w*e) / (fs * w * e); rel > 1e-9 {
			t.Fatalf("nf=%d: AS=%g, F·W·E=%g", nf, g.AS, fs*w*e)
		}
	}
}

func TestGeomFoldingShrinksDrainCap(t *testing.T) {
	// Folding with drain internal must reduce AD and PD versus one fold.
	tech := techno.Default060()
	one := PlanFolds(&tech.Rules, 40*um, 1, DrainInternal).Geom(tech)
	four := PlanFolds(&tech.Rules, 40*um, 4, DrainInternal).Geom(tech)
	if four.AD >= one.AD {
		t.Fatalf("4-fold AD %g should beat 1-fold %g", four.AD, one.AD)
	}
	if four.PD >= one.PD {
		t.Fatalf("4-fold PD %g should beat 1-fold %g", four.PD, one.PD)
	}
}

func TestOneFoldGeomWorstCase(t *testing.T) {
	tech := techno.Default060()
	w := 25 * um
	g := OneFoldGeom(tech, w)
	if g.AD != g.AS || g.PD != g.PS {
		t.Fatal("unfolded geometry must be symmetric")
	}
	if g.AD != w*tech.DiffExtContacted {
		t.Fatalf("AD = %g, want W·E = %g", g.AD, w*tech.DiffExtContacted)
	}
}

func TestFoldsForHeight(t *testing.T) {
	if nf := FoldsForHeight(100*um, 20*um, false); nf != 5 {
		t.Fatalf("100/20 = %d folds, want 5", nf)
	}
	if nf := FoldsForHeight(100*um, 20*um, true); nf != 6 {
		t.Fatalf("even-preferred should bump 5 → 6, got %d", nf)
	}
	if nf := FoldsForHeight(5*um, 20*um, true); nf != 1 {
		t.Fatalf("small device stays unfolded, got %d", nf)
	}
	if nf := FoldsForHeight(5*um, 0, true); nf != 1 {
		t.Fatalf("degenerate maxFinger returns 1, got %d", nf)
	}
}

func TestGeomAreasNonNegativeProperty(t *testing.T) {
	tech := techno.Default060()
	f := func(w8 uint8, nf8 uint8, styleBit bool) bool {
		w := (1 + float64(w8)) * 0.5 * um
		nf := 1 + int(nf8)%16
		style := DrainInternal
		if styleBit {
			style = SourceInternal
		}
		g := PlanFolds(&tech.Rules, w, nf, style).Geom(tech)
		return g.AD > 0 && g.AS > 0 && g.PD > 0 && g.PS > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
