package serve

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"loas/internal/obs"
)

// CLI is the loasd daemon entry point, shared by the loasd binary and
// the `loas serve` subcommand. It parses flags, binds the listener,
// serves until SIGINT/SIGTERM, then shuts down gracefully: the HTTP
// server stops accepting, in-flight requests finish, and the job queue
// drains.
func CLI(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("loasd", flag.ContinueOnError)
	fs.SetOutput(out)
	addr := fs.String("addr", "127.0.0.1:8086", "listen address")
	cacheMB := fs.Int64("cache-mb", 64, "result cache bound (MiB); 0 disables caching")
	ttl := fs.Duration("ttl", 0, "result TTL (0 = entries never expire)")
	workers := fs.Int("workers", 0, "synthesis workers (0 = all CPUs)")
	queue := fs.Int("queue", 64, "queued jobs beyond the workers before shedding load")
	timeout := fs.Duration("timeout", 5*time.Minute, "per-request synthesis timeout")
	batchMax := fs.Int("batch-max", 4096, "maximum items in one POST /v1/batch request")
	pprofOn := fs.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
	ledgerPath := fs.String("ledger", "", "append every completed run to this JSONL ledger (off by default); replayed into /v1/runs on start")
	ledgerMB := fs.Int64("ledger-mb", 8, "ledger size (MiB) that triggers rotation to <path>.1")
	if err := fs.Parse(args); err != nil {
		return err
	}
	cacheBytes := *cacheMB << 20
	if *cacheMB <= 0 {
		cacheBytes = -1
	}
	var ledger *obs.Ledger
	if *ledgerPath != "" {
		var err error
		ledger, err = obs.OpenLedger(*ledgerPath, obs.LedgerOptions{MaxBytes: *ledgerMB << 20})
		if err != nil {
			return err
		}
		defer ledger.Close()
	}
	srv := New(Config{
		CacheBytes:    cacheBytes,
		TTL:           *ttl,
		Workers:       *workers,
		QueueDepth:    *queue,
		Timeout:       *timeout,
		BatchMaxItems: *batchMax,
		EnablePprof:   *pprofOn,
		Ledger:        ledger,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(out, "loasd listening on http://%s (workers %d, queue %d, cache %d MiB, ttl %s)\n",
		ln.Addr(), srv.pool.Stats().Workers, *queue, *cacheMB, *ttl)
	if ledger != nil {
		fmt.Fprintf(out, "loasd: run ledger %s (%d records replayed, next run seq %d)\n",
			*ledgerPath, len(ledger.History()), ledger.LastSeq()+1)
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()

	select {
	case err := <-errc:
		srv.Close()
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(out, "loasd: shutting down, draining in-flight work")
	sctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	err = hs.Shutdown(sctx)
	srv.Close()
	st := srv.Stats()
	fmt.Fprintf(out, "loasd: served %d requests (%d cache hits, %d dedup, %d backend runs)\n",
		st.Served, st.Cache.Hits, st.DedupJoined, st.BackendRuns)
	return err
}
