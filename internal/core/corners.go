package core

import (
	"context"
	"fmt"

	"loas/internal/circuit"
	"loas/internal/meas"
	"loas/internal/obs"
	"loas/internal/parallel"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// VerifyAtCorner re-measures a synthesized design's extracted netlist with
// the model cards shifted to a process corner. The bias voltages are
// recomputed on the corner models (the role of an on-chip bias generator
// that tracks the process — fixed external voltages would starve the
// current sinks at the skew corners), while the device sizes stay as the
// nominal design chose them. This probes the paper's claim that fixing
// operating points during synthesis "increases the reliability of the
// produced circuits".
func VerifyAtCorner(tech *techno.Tech, corner techno.Corner, res *Result) (*sizing.Performance, error) {
	ct, err := tech.AtCorner(corner)
	if err != nil {
		return nil, err
	}
	bias, err := res.Design.BiasFor(ct)
	if err != nil {
		return nil, fmt.Errorf("core: corner %s bias: %w", corner, err)
	}
	sources := res.Design.BiasSources()
	build := func() *circuit.Circuit {
		ckt := ExtractedNetlist(tech, res.Design, res.Parasitics)
		for _, m := range ckt.MOSFETs() {
			m.Dev.Card = ct.Card(m.Dev.Card.Type)
		}
		for _, v := range ckt.VSources() {
			if net, ok := sources[v.Name]; ok {
				v.DC = bias[net]
			}
		}
		return ckt
	}
	rep, err := meas.Measure(OTABench(tech, res.Spec, res.Design, build))
	if err != nil {
		return nil, fmt.Errorf("core: corner %s: %w", corner, err)
	}
	return &rep.Perf, nil
}

// CornerSweep verifies the design at all five corners concurrently. Each
// corner gets a deep tech copy (AtCorner) and builds its own circuits, so
// the only shared state is the read-only design, parasitic report and
// nominal technology. A span carried by ctx (obs.ContextWithSpan) gets
// one "corner" child per worker item, so the span tree shows where the
// fan-out's parallel time goes.
func CornerSweep(tech *techno.Tech, res *Result) (map[techno.Corner]sizing.Performance, error) {
	return CornerSweepCtx(context.Background(), tech, res)
}

// CornerSweepCtx is CornerSweep under a caller context; the context's
// span (if any) parents the per-corner spans.
func CornerSweepCtx(ctx context.Context, tech *techno.Tech, res *Result) (map[techno.Corner]sizing.Performance, error) {
	parent := obs.SpanFromContext(ctx)
	corners := []techno.Corner{techno.CornerTT, techno.CornerSS,
		techno.CornerFF, techno.CornerSF, techno.CornerFS}
	perfs, err := parallel.Map(ctx, 0, corners,
		func(cctx context.Context, _ int, c techno.Corner) (sizing.Performance, error) {
			span := parent.Child("corner")
			span.SetAttr("corner", string(c))
			defer span.End()
			var p *sizing.Performance
			var err error
			obs.Phase(cctx, "corner", func() {
				p, err = VerifyAtCorner(tech, c, res)
			})
			if err != nil {
				return sizing.Performance{}, err
			}
			return *p, nil
		})
	if err != nil {
		return nil, err
	}
	out := map[techno.Corner]sizing.Performance{}
	for i, c := range corners {
		out[c] = perfs[i]
	}
	return out, nil
}
