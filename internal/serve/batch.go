package serve

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"time"

	"loas/internal/parallel"
	"loas/internal/sizing"
)

// POST /v1/batch fans many synthesize requests through the daemon's
// existing machinery in one round trip. Every item takes the same
// cache → singleflight → bounded queue path as POST /v1/synthesize and
// is its own child run (kind=synthesize, Parent=<batch run ID>), so a
// 50-item batch with k unique specs costs exactly k backend syntheses:
// duplicates either replay from the cache or join the in-flight leader.
// Item completions stream as batch-item frames on /v1/events; the final
// response is one ordered BatchReport.
//
// The report itself is NOT cached — the per-item cache already carries
// all the reuse, and the report embeds per-item outcomes (hit vs miss)
// that legitimately differ between reruns. The X-Loas-Key header still
// reports the canonical batch key (order-invariant over the item keys)
// so clients can correlate reruns of the same workload.

// BatchRequest is the body of POST /v1/batch.
type BatchRequest struct {
	Items []sizingItem `json:"items"`
	// Limit and Offset paginate the report's Results window: Offset
	// skips that many leading results, Limit bounds how many are
	// returned (0 = unbounded). Every item still executes — pagination
	// trims the response body, not the workload — and the deterministic
	// submission order is preserved, so walking pages covers each result
	// exactly once. Items/Unique/Errors always describe the full batch.
	Limit  int `json:"limit,omitempty"`
	Offset int `json:"offset,omitempty"`
}

// sizingItem aliases SynthesizeRequest so the batch body reads
// {"items":[{...synthesize body...}, ...]}.
type sizingItem = SynthesizeRequest

// BatchItemResult is one submitted item's outcome, in submission order.
type BatchItemResult struct {
	Index    int    `json:"index"`
	Topology string `json:"topology"`
	Layout   string `json:"layout,omitempty"` // non-default layout backend
	Case     int    `json:"case"`
	Key      string `json:"key"`    // content-addressed item key
	RunID    string `json:"run_id"` // child run (GET /v1/runs/{id})
	Outcome  string `json:"outcome"`
	Cache    string `json:"cache"` // hit | miss | dedup
	Error    string `json:"error,omitempty"`
	// Summary is the item's core.Summary body, verbatim (absent on
	// error) — byte-identical to what POST /v1/synthesize would return.
	Summary json.RawMessage `json:"summary,omitempty"`
}

// BatchReport is the POST /v1/batch payload.
type BatchReport struct {
	Key    string `json:"key"`    // canonical batch key
	Items  int    `json:"items"`  // submitted
	Unique int    `json:"unique"` // distinct item keys
	Errors int    `json:"errors,omitempty"`
	// Offset and Limit echo the request's pagination window (absent when
	// unpaginated, keeping the unpaginated wire format unchanged).
	Offset  int               `json:"offset,omitempty"`
	Limit   int               `json:"limit,omitempty"`
	Results []BatchItemResult `json:"results"` // submission order, windowed
}

// batchItem is one normalized, spec-resolved item ready to execute.
type batchItem struct {
	req  SynthesizeRequest
	spec sizing.OTASpec
	key  string
}

// batchKey hashes the multiset of item keys, order-invariantly: the
// keys are sorted before hashing, duplicates kept. Shuffling the items
// of a batch cannot change its key; adding a second copy of an item
// does (a different workload, even if it costs no extra synthesis).
func batchKey(itemKeys []string) string {
	sorted := append([]string(nil), itemKeys...)
	sort.Strings(sorted)
	var b strings.Builder
	b.WriteString("loas/1|kind=batch")
	for _, k := range sorted {
		b.WriteString("|item=")
		b.WriteString(k)
	}
	h := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(h[:])
}

// batchBodyLimit bounds one POST /v1/batch body: thousands of specs fit
// well inside 8 MiB.
const batchBodyLimit = 8 << 20

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := decodeJSONLimit(r, &req, batchBodyLimit); err != nil {
		s.badRequest(w, err)
		return
	}
	if len(req.Items) == 0 {
		s.badRequest(w, fmt.Errorf("batch requires at least one item"))
		return
	}
	if len(req.Items) > s.batchMax {
		s.badRequest(w, fmt.Errorf("batch of %d items exceeds the %d-item bound", len(req.Items), s.batchMax))
		return
	}
	if req.Limit < 0 || req.Offset < 0 {
		s.badRequest(w, fmt.Errorf("limit and offset must be >= 0, got limit=%d offset=%d", req.Limit, req.Offset))
		return
	}
	items := make([]batchItem, len(req.Items))
	keys := make([]string, len(req.Items))
	unique := map[string]bool{}
	for i := range req.Items {
		it := req.Items[i]
		if err := it.normalize(); err != nil {
			s.badRequest(w, fmt.Errorf("item %d: %w", i, err))
			return
		}
		spec, err := s.specFor(it.Spec, it.Topology)
		if err != nil {
			s.badRequest(w, fmt.Errorf("item %d: %w", i, err))
			return
		}
		key := it.cacheKey(s.tech, spec)
		items[i] = batchItem{req: it, spec: spec, key: key}
		keys[i] = key
		unique[key] = true
	}

	start := time.Now()
	s.requests.Add(1)
	evRequests.Add(1)
	s.batchRequests.Inc()
	s.batchItems.Add(int64(len(items)))
	s.batchSize.Observe(float64(len(items)))
	// Record the normalized batch with resolved specs embedded, so a
	// replayed batch re-keys identically even under different server
	// defaults. recordRequest bounds nothing — finishRun drops bodies
	// over maxRecordedRequest.
	recItems := make([]sizingItem, len(items))
	for i := range items {
		recItems[i] = items[i].req
		recItems[i].Spec = &items[i].spec
	}
	info := runInfo{kind: "batch", key: batchKey(keys),
		request: recordRequest(BatchRequest{Items: recItems, Limit: req.Limit, Offset: req.Offset})}
	ar := s.beginRun(info, start)
	ar.root.SetAttr("items", fmt.Sprintf("%d", len(items)))
	ar.root.SetAttr("unique", fmt.Sprintf("%d", len(unique)))
	s.events.publish("batch-start", batchStartEvent{
		ID: ar.id, Kind: "batch", Items: len(items), Unique: len(unique),
	})

	// Fan out on at most as many goroutines as the pool has workers: the
	// batch alone can then never overflow the bounded queue, and other
	// traffic keeps the queue slots as its admission headroom. Items run
	// under the daemon's lifetime (each leader already detaches from the
	// client context), so a disconnecting client wastes nothing — every
	// completed item is in the content-addressed cache.
	fan := ar.root.Child("batch-fanout")
	results, _ := parallel.MapN(context.Background(), s.pool.Stats().Workers, len(items),
		func(_ context.Context, i int) (BatchItemResult, error) {
			return s.runBatchItem(ar.id, i, items[i]), nil
		})
	fan.End()

	errs := 0
	for i := range results {
		if results[i].Error != "" {
			errs++
		}
	}
	outcome := outcomeOK
	var runErr error
	if errs > 0 {
		outcome = outcomeError
		runErr = fmt.Errorf("%d of %d items failed", errs, len(items))
	}
	// Pagination windows the response only: every item above executed
	// (and is cached / ledgered) regardless of the window.
	window := results
	if req.Offset > 0 {
		if req.Offset >= len(window) {
			window = window[len(window):]
		} else {
			window = window[req.Offset:]
		}
	}
	if req.Limit > 0 && req.Limit < len(window) {
		window = window[:req.Limit]
	}
	rep := BatchReport{
		Key: info.key, Items: len(items), Unique: len(unique),
		Errors: errs, Offset: req.Offset, Limit: req.Limit, Results: window,
	}
	body, err := marshalJSON(rep)
	if err != nil {
		s.finishRun(ar, outcomeError, err, nil)
		s.fail(w, err)
		return
	}
	s.finishRun(ar, outcome, runErr, body)
	s.events.publish("batch-end", batchEndEvent{
		ID: ar.id, Outcome: outcome, Items: len(items), Errors: errs,
		DurationNS: time.Since(start).Nanoseconds(),
	})
	s.write(w, Value{Body: body, ContentType: "application/json"}, info.key, "none", start)
}

// runBatchItem executes one item as a child run through the shared
// cache → singleflight → queue path and narrates it on /v1/events.
// Item failures are report data, not batch failures.
func (s *Server) runBatchItem(parentID string, i int, it batchItem) BatchItemResult {
	recReq := it.req
	recReq.Spec = &it.spec
	info := runInfo{
		kind: "synthesize", topology: it.req.Topology, layout: it.req.Layout, caseN: it.req.Case,
		key: it.key, specDigest: specDigest(s.tech, it.spec), parent: parentID,
		request: recordRequest(recReq),
	}
	child := s.beginRun(info, time.Now())
	req := it.req
	v, outcome, err := s.executeKeyed(child, "application/json",
		func(ctx context.Context) ([]byte, error) {
			body, iters, err := s.backend.Synthesize(ctx, it.spec, &req)
			if err == nil {
				s.traces.put(it.key, iters)
			}
			return body, err
		})
	res := BatchItemResult{
		Index: i, Topology: it.req.Topology, Layout: it.req.Layout, Case: it.req.Case,
		Key: it.key, RunID: child.id,
	}
	if err != nil {
		s.batchItemErrors.Inc()
		s.finishRun(child, outcomeError, err, nil)
		res.Outcome = outcomeError
		res.Error = err.Error()
	} else {
		s.finishRun(child, outcome, nil, v.Body)
		res.Outcome = outcome
		res.Cache = cacheSource(outcome)
		res.Summary = json.RawMessage(v.Body)
	}
	s.events.publish("batch-item", batchItemEvent{
		Parent: parentID, Index: i, Outcome: res.Outcome, Cache: res.Cache,
		Topology: res.Topology, Case: res.Case, Error: res.Error,
	})
	return res
}
