package slicing

import (
	"testing"
	"testing/quick"
)

func leaf(name string, whs ...[2]int64) *Leaf {
	var opts []Option
	for i, wh := range whs {
		opts = append(opts, Option{W: wh[0], H: wh[1], Choice: i})
	}
	return NewLeaf(name, opts)
}

func TestParetoFilters(t *testing.T) {
	sf := Pareto([]Option{
		{W: 10, H: 10}, {W: 20, H: 5}, {W: 15, H: 12}, // 15x12 dominated by 10x10
		{W: 10, H: 8}, // beats 10x10
		{W: 30, H: 5}, // dominated by 20x5
	})
	if len(sf) != 2 {
		t.Fatalf("pareto kept %d options: %+v", len(sf), sf)
	}
	if sf[0].W != 10 || sf[0].H != 8 || sf[1].W != 20 || sf[1].H != 5 {
		t.Fatalf("wrong survivors: %+v", sf)
	}
}

func TestParetoMonotoneProperty(t *testing.T) {
	f := func(ws, hs []uint16) bool {
		n := len(ws)
		if len(hs) < n {
			n = len(hs)
		}
		var opts []Option
		for i := 0; i < n; i++ {
			opts = append(opts, Option{W: int64(ws[i]) + 1, H: int64(hs[i]) + 1})
		}
		sf := Pareto(opts)
		for i := 1; i < len(sf); i++ {
			if sf[i].W <= sf[i-1].W || sf[i].H >= sf[i-1].H {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestVerticalCutAddsWidths(t *testing.T) {
	a := leaf("a", [2]int64{10, 20})
	b := leaf("b", [2]int64{30, 15})
	cut := NewCut(true, 5, a, b)
	sf := cut.Shapes()
	if len(sf) != 1 || sf[0].W != 45 || sf[0].H != 20 {
		t.Fatalf("V-cut shape = %+v", sf)
	}
}

func TestHorizontalCutAddsHeights(t *testing.T) {
	a := leaf("a", [2]int64{10, 20})
	b := leaf("b", [2]int64{30, 15})
	cut := NewCut(false, 5, a, b)
	sf := cut.Shapes()
	if len(sf) != 1 || sf[0].W != 30 || sf[0].H != 40 {
		t.Fatalf("H-cut shape = %+v", sf)
	}
}

func TestStockmeyerPicksFoldTradeoff(t *testing.T) {
	// A "transistor" that can be 100x10, 50x20 or 25x40 next to a fixed
	// 25x25 block: under a height cap of 30 the optimizer must pick the
	// 50x20 variant.
	tr := leaf("m", [2]int64{100, 10}, [2]int64{50, 20}, [2]int64{25, 40})
	fix := leaf("f", [2]int64{25, 25})
	root := NewCut(true, 0, tr, fix)
	fp, err := Optimize(root, Constraint{MaxH: 30})
	if err != nil {
		t.Fatal(err)
	}
	if got := fp.Placed["m"].Choice; got != 1 {
		t.Fatalf("chose option %d, want 1 (50x20)", got)
	}
	if fp.H > 30 {
		t.Fatalf("height %d exceeds cap", fp.H)
	}
}

func TestOptimizeRealizationConsistent(t *testing.T) {
	a := leaf("a", [2]int64{10, 30}, [2]int64{30, 10})
	b := leaf("b", [2]int64{20, 20})
	c := leaf("c", [2]int64{40, 5}, [2]int64{5, 40})
	root := NewCut(false, 2, NewCut(true, 3, a, b), c)
	fp, err := Optimize(root, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	// Realized rectangles must not overlap and must fit the floorplan.
	names := []string{"a", "b", "c"}
	for i, n1 := range names {
		r1 := fp.Placed[n1].Rect
		if r1.L < 0 || r1.B < 0 || r1.R > fp.W || r1.T > fp.H {
			t.Fatalf("%s %v outside floorplan %dx%d", n1, r1, fp.W, fp.H)
		}
		for _, n2 := range names[i+1:] {
			if r1.Intersects(fp.Placed[n2].Rect) {
				t.Fatalf("%s and %s overlap", n1, n2)
			}
		}
	}
}

func TestOptimizeGapsRespected(t *testing.T) {
	a := leaf("a", [2]int64{10, 10})
	b := leaf("b", [2]int64{10, 10})
	fp, err := Optimize(NewCut(true, 7, a, b), Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := fp.Placed["a"].Rect, fp.Placed["b"].Rect
	gap := rb.L - ra.R
	if gap != 7 {
		t.Fatalf("gap = %d, want 7", gap)
	}
}

func TestOptimizeAspectPreference(t *testing.T) {
	// Equal-area options: aspect preference must break the tie.
	m := leaf("m", [2]int64{100, 25}, [2]int64{50, 50}, [2]int64{25, 100})
	fpWide, _ := Optimize(m, Constraint{Aspect: 4})
	fpSq, _ := Optimize(m, Constraint{Aspect: 1})
	if fpWide.Placed["m"].Choice != 0 {
		t.Fatalf("aspect 4 chose %d", fpWide.Placed["m"].Choice)
	}
	if fpSq.Placed["m"].Choice != 1 {
		t.Fatalf("aspect 1 chose %d", fpSq.Placed["m"].Choice)
	}
}

func TestOptimizeInfeasiblePicksLeastBad(t *testing.T) {
	m := leaf("m", [2]int64{100, 40}, [2]int64{60, 70})
	fp, err := Optimize(m, Constraint{MaxW: 10, MaxH: 10})
	if err != nil {
		t.Fatal(err)
	}
	if fp.W <= 0 {
		t.Fatal("no realization")
	}
}

func TestOptimizeEmptyTree(t *testing.T) {
	if _, err := Optimize(NewCut(true, 0), Constraint{}); err == nil {
		t.Fatal("empty cut accepted")
	}
}

func TestCombineAreaLowerBoundProperty(t *testing.T) {
	// Property: any combined option's area ≥ sum of the children's
	// minimal areas (no free lunch from slicing).
	f := func(w1, h1, w2, h2 uint8) bool {
		a := leaf("a", [2]int64{int64(w1) + 1, int64(h1) + 1})
		b := leaf("b", [2]int64{int64(w2) + 1, int64(h2) + 1})
		for _, vertical := range []bool{true, false} {
			sf := NewCut(vertical, 0, a, b).Shapes()
			for _, o := range sf {
				if o.W*o.H < (int64(w1)+1)*(int64(h1)+1)+(int64(w2)+1)*(int64(h2)+1) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMinAreaOption(t *testing.T) {
	sf := Pareto([]Option{{W: 10, H: 10}, {W: 20, H: 4}, {W: 50, H: 3}})
	o, err := MinAreaOption(sf)
	if err != nil {
		t.Fatal(err)
	}
	if o.W != 20 || o.H != 4 {
		t.Fatalf("min area = %dx%d", o.W, o.H)
	}
	if _, err := MinAreaOption(nil); err == nil {
		t.Fatal("empty shape function accepted")
	}
}
