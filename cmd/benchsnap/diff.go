// `benchsnap diff` compares two BENCH_N.json snapshots and reports the
// perf trajectory between them. The two halves of a snapshot carry two
// different contracts and the diff enforces them differently:
//
//   - custom metrics (gbw_MHz, area_um2, layout_calls, ...) are the
//     reproduced paper quantities, recorded hex-exact. Any change, even
//     one ULP, is a behaviour change and BLOCKS (nonzero exit);
//   - ns/op is wall-clock and noisy: regressions beyond -tol are
//     reported as trajectory, and block only with -strict-nsop.
//
// Benchmarks or metrics present on one side only are reported but never
// block — the set legitimately grows PR over PR.

package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
)

// metricChange is one hex-exact metric that drifted (blocking).
type metricChange struct {
	Bench    string  `json:"bench"`
	Metric   string  `json:"metric"`
	OldValue float64 `json:"old_value"`
	NewValue float64 `json:"new_value"`
	OldHex   string  `json:"old_hex"`
	NewHex   string  `json:"new_hex"`
}

// nsopChange is one benchmark whose ns/op moved beyond the tolerance.
type nsopChange struct {
	Bench string  `json:"bench"`
	OldNs float64 `json:"old_ns_op"`
	NewNs float64 `json:"new_ns_op"`
	Ratio float64 `json:"ratio"` // new/old
}

// diffReport is the full comparison outcome.
type diffReport struct {
	Old          string         `json:"old"`
	New          string         `json:"new"`
	Compared     int            `json:"compared"` // benchmarks present in both
	Tolerance    float64        `json:"tolerance"`
	MetricDrift  []metricChange `json:"metric_drift,omitempty"` // blocking
	Regressions  []nsopChange   `json:"nsop_regressions,omitempty"`
	Improvements []nsopChange   `json:"nsop_improvements,omitempty"`
	AddedBenches []string       `json:"added_benches,omitempty"`
	GoneBenches  []string       `json:"removed_benches,omitempty"`
	AddedMetrics []string       `json:"added_metrics,omitempty"` // "bench/metric"
	GoneMetrics  []string       `json:"removed_metrics,omitempty"`
}

func runDiff(args []string) error {
	fs := flag.NewFlagSet("benchsnap diff", flag.ExitOnError)
	tol := fs.Float64("tol", 0.25, "relative ns/op tolerance (0.25 = flag regressions over +25%)")
	strictNsOp := fs.Bool("strict-nsop", false, "ns/op regressions beyond -tol also block (nonzero exit)")
	asJSON := fs.Bool("json", false, "emit the diff report as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchsnap diff [-tol F] [-strict-nsop] [-json] OLD.json NEW.json")
	}
	if *tol < 0 {
		return fmt.Errorf("-tol must be >= 0, got %g", *tol)
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	oldSnap, err := loadSnapshot(oldPath)
	if err != nil {
		return err
	}
	newSnap, err := loadSnapshot(newPath)
	if err != nil {
		return err
	}

	rep := compareSnapshots(oldPath, newPath, oldSnap, newSnap, *tol)

	if *asJSON {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			return err
		}
		fmt.Println(string(data))
	} else {
		printDiff(rep)
	}
	if len(rep.MetricDrift) > 0 {
		return fmt.Errorf("%d hex-exact metric(s) drifted between %s and %s", len(rep.MetricDrift), oldPath, newPath)
	}
	if *strictNsOp && len(rep.Regressions) > 0 {
		return fmt.Errorf("%d benchmark(s) regressed beyond %.0f%% ns/op tolerance", len(rep.Regressions), *tol*100)
	}
	return nil
}

// loadSnapshot reads one BENCH_N.json and validates its schema: every
// metric's hex form must parse and round-trip to the decimal value —
// a snapshot that fails this was hand-edited or truncated, and diffing
// it would report nonsense.
func loadSnapshot(path string) (map[string]benchResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var snap map[string]benchResult
	if err := json.Unmarshal(data, &snap); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(snap) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks in snapshot", path)
	}
	for bench, res := range snap {
		for name, m := range res.Metrics {
			v, err := strconv.ParseFloat(m.Hex, 64)
			if err != nil {
				return nil, fmt.Errorf("%s: %s/%s: bad hex float %q: %v", path, bench, name, m.Hex, err)
			}
			if v != m.Value {
				return nil, fmt.Errorf("%s: %s/%s: hex %q decodes to %v, decimal says %v — snapshot corrupt",
					path, bench, name, m.Hex, v, m.Value)
			}
		}
	}
	return snap, nil
}

func compareSnapshots(oldPath, newPath string, oldSnap, newSnap map[string]benchResult, tol float64) *diffReport {
	rep := &diffReport{Old: oldPath, New: newPath, Tolerance: tol}
	names := make([]string, 0, len(oldSnap))
	for n := range oldSnap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, bench := range names {
		o := oldSnap[bench]
		n, ok := newSnap[bench]
		if !ok {
			rep.GoneBenches = append(rep.GoneBenches, bench)
			continue
		}
		rep.Compared++

		mnames := make([]string, 0, len(o.Metrics))
		for m := range o.Metrics {
			mnames = append(mnames, m)
		}
		sort.Strings(mnames)
		for _, m := range mnames {
			om := o.Metrics[m]
			nm, ok := n.Metrics[m]
			if !ok {
				rep.GoneMetrics = append(rep.GoneMetrics, bench+"/"+m)
				continue
			}
			if om.Hex != nm.Hex {
				rep.MetricDrift = append(rep.MetricDrift, metricChange{
					Bench: bench, Metric: m,
					OldValue: om.Value, NewValue: nm.Value,
					OldHex: om.Hex, NewHex: nm.Hex,
				})
			}
		}
		newMetrics := make([]string, 0, len(n.Metrics))
		for m := range n.Metrics {
			if _, ok := o.Metrics[m]; !ok {
				newMetrics = append(newMetrics, bench+"/"+m)
			}
		}
		sort.Strings(newMetrics)
		rep.AddedMetrics = append(rep.AddedMetrics, newMetrics...)

		if o.NsPerOp > 0 && n.NsPerOp > 0 {
			ratio := n.NsPerOp / o.NsPerOp
			switch {
			case ratio > 1+tol:
				rep.Regressions = append(rep.Regressions, nsopChange{
					Bench: bench, OldNs: o.NsPerOp, NewNs: n.NsPerOp, Ratio: ratio})
			case ratio < 1-tol:
				rep.Improvements = append(rep.Improvements, nsopChange{
					Bench: bench, OldNs: o.NsPerOp, NewNs: n.NsPerOp, Ratio: ratio})
			}
		}
	}
	added := make([]string, 0)
	for n := range newSnap {
		if _, ok := oldSnap[n]; !ok {
			added = append(added, n)
		}
	}
	sort.Strings(added)
	rep.AddedBenches = added
	return rep
}

func printDiff(rep *diffReport) {
	fmt.Printf("benchsnap diff: %s -> %s (%d benchmarks compared, ns/op tolerance ±%.0f%%)\n",
		rep.Old, rep.New, rep.Compared, rep.Tolerance*100)
	if len(rep.MetricDrift) > 0 {
		fmt.Printf("\nBLOCKING: %d hex-exact metric(s) drifted — reproduced quantities changed:\n", len(rep.MetricDrift))
		for _, c := range rep.MetricDrift {
			fmt.Printf("  %s %s: %v -> %v  (hex %s -> %s)\n",
				c.Bench, c.Metric, c.OldValue, c.NewValue, c.OldHex, c.NewHex)
		}
	} else {
		fmt.Println("hex-exact metrics: all identical")
	}
	if len(rep.Regressions) > 0 {
		fmt.Printf("\nns/op regressions beyond tolerance (%d):\n", len(rep.Regressions))
		for _, c := range rep.Regressions {
			fmt.Printf("  %s: %.0f -> %.0f ns/op (%.2fx)\n", c.Bench, c.OldNs, c.NewNs, c.Ratio)
		}
	}
	if len(rep.Improvements) > 0 {
		fmt.Printf("\nns/op improvements beyond tolerance (%d):\n", len(rep.Improvements))
		for _, c := range rep.Improvements {
			fmt.Printf("  %s: %.0f -> %.0f ns/op (%.2fx)\n", c.Bench, c.OldNs, c.NewNs, c.Ratio)
		}
	}
	for _, s := range rep.AddedBenches {
		fmt.Printf("  new benchmark: %s\n", s)
	}
	for _, s := range rep.GoneBenches {
		fmt.Printf("  removed benchmark: %s\n", s)
	}
	for _, s := range rep.AddedMetrics {
		fmt.Printf("  new metric: %s\n", s)
	}
	for _, s := range rep.GoneMetrics {
		fmt.Printf("  removed metric: %s\n", s)
	}
}
