package serve

import (
	"fmt"
	"testing"
	"time"
)

func val(s string) Value { return Value{Body: []byte(s), ContentType: "t"} }

func TestCacheHitMiss(t *testing.T) {
	c := NewCache(1<<20, 0)
	if _, ok := c.Get("a"); ok {
		t.Fatal("empty cache hit")
	}
	c.Put("a", val("body"))
	v, ok := c.Get("a")
	if !ok || string(v.Body) != "body" || v.ContentType != "t" {
		t.Fatalf("get = %q, %v", v.Body, ok)
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheLRUEvictionAtByteBound(t *testing.T) {
	entry := val("0123456789").size() // all entries same size
	c := NewCache(3*entry, 0)
	for i := 0; i < 3; i++ {
		c.Put(fmt.Sprintf("k%d", i), val("0123456789"))
	}
	c.Get("k0") // k0 now most recent; k1 is LRU
	c.Put("k3", val("0123456789"))
	if _, ok := c.Get("k1"); ok {
		t.Fatal("k1 should have been evicted as LRU")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over bound %d", st.Bytes, st.MaxBytes)
	}
}

func TestCacheOversizeEntryNotStored(t *testing.T) {
	c := NewCache(64, 0)
	c.Put("big", val(string(make([]byte, 1024))))
	if _, ok := c.Get("big"); ok {
		t.Fatal("entry larger than the cache must not be stored")
	}
	if st := c.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestCacheTTLExpiry(t *testing.T) {
	c := NewCache(1<<20, time.Minute)
	now := time.Unix(1000, 0)
	c.now = func() time.Time { return now }

	c.Put("a", val("x"))
	if _, ok := c.Get("a"); !ok {
		t.Fatal("fresh entry should hit")
	}
	now = now.Add(2 * time.Minute)
	if _, ok := c.Get("a"); ok {
		t.Fatal("expired entry should miss")
	}
	st := c.Stats()
	if st.Expirations != 1 || st.Entries != 0 {
		t.Fatalf("stats = %+v", st)
	}
	// Re-putting after expiry works and refreshes the deadline.
	c.Put("a", val("y"))
	now = now.Add(30 * time.Second)
	if v, ok := c.Get("a"); !ok || string(v.Body) != "y" {
		t.Fatalf("refreshed entry: %q, %v", v.Body, ok)
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := NewCache(1<<20, 0)
	c.Put("a", val("short"))
	c.Put("a", val("a rather longer body than before"))
	v, ok := c.Get("a")
	if !ok || string(v.Body) != "a rather longer body than before" {
		t.Fatalf("update lost: %q %v", v.Body, ok)
	}
	st := c.Stats()
	if st.Entries != 1 {
		t.Fatalf("entries = %d, want 1", st.Entries)
	}
	want := val("a rather longer body than before").size()
	if st.Bytes != want {
		t.Fatalf("bytes = %d, want %d (no stale accounting)", st.Bytes, want)
	}
}
