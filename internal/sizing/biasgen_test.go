package sizing

import (
	"math"
	"testing"

	"loas/internal/circuit"
	"loas/internal/sim"
	"loas/internal/techno"
)

func TestBiasGenHitsTargets(t *testing.T) {
	d := sizedCase1(t)
	tech := d.Tech
	g, err := SizeBiasGen(tech, d, 20e-6)
	if err != nil {
		t.Fatal(err)
	}
	// Standalone generator: simulate and compare the four voltages.
	ckt := circuit.New("bg")
	ckt.Add(&circuit.VSource{Name: "dd", Pos: NetVDD, Neg: "0", DC: d.Spec.VDD})
	g.AddTo(ckt, NetVDD)
	eng := sim.NewEngine(ckt, tech.Temp)
	ns := map[string]float64{NetVDD: d.Spec.VDD}
	for k, v := range d.Bias {
		ns[k] = v
	}
	r, err := eng.OP(sim.OPOptions{NodeSet: ns})
	if err != nil {
		t.Fatal(err)
	}
	for _, net := range []string{NetVBN, NetVC1, NetVBP, NetVC3} {
		got := r.Volt(ckt, net)
		want := d.Bias[net]
		if math.Abs(got-want) > 30e-3 {
			t.Fatalf("%s = %.3f V, target %.3f V", net, got, want)
		}
	}
}

func TestBiasGenDrivesTheOTA(t *testing.T) {
	d := sizedCase1(t)
	tech := d.Tech
	g, err := SizeBiasGen(tech, d, 20e-6)
	if err != nil {
		t.Fatal(err)
	}
	vcm := 0.645
	mkBench := func(withGen bool) (float64, float64) {
		var ckt *circuit.Circuit
		if withGen {
			ckt = d.NetlistWithBiasGen("fcbg", g)
		} else {
			ckt = d.Netlist("fc")
		}
		ckt.Add(
			&circuit.VSource{Name: "szp", Pos: NetInP, Neg: "0", DC: vcm, ACMag: 0.5},
			&circuit.VSource{Name: "szn", Pos: NetInN, Neg: "0", DC: vcm, ACMag: 0.5, ACPhase: 180},
			&circuit.Capacitor{Name: "szload", A: NetOut, B: "0", C: d.Spec.CL},
		)
		ns := d.NodeSet()
		ns[NetInP], ns[NetInN] = vcm, vcm
		gbw, pm, err := EvalGBWPM(tech, ckt, NetOut, ns)
		if err != nil {
			t.Fatal(err)
		}
		return gbw, pm
	}
	gbwIdeal, pmIdeal := mkBench(false)
	gbwGen, pmGen := mkBench(true)
	if rel := math.Abs(gbwGen-gbwIdeal) / gbwIdeal; rel > 0.05 {
		t.Fatalf("bias generator shifts GBW by %.1f%% (%.1f vs %.1f MHz)",
			rel*100, gbwGen/1e6, gbwIdeal/1e6)
	}
	if math.Abs(pmGen-pmIdeal) > 3 {
		t.Fatalf("bias generator shifts PM by %.1f°", math.Abs(pmGen-pmIdeal))
	}
}

func TestBiasGenValidation(t *testing.T) {
	d := sizedCase1(t)
	if _, err := SizeBiasGen(d.Tech, d, 0); err == nil {
		t.Fatal("zero reference accepted")
	}
	tech := techno.Default060()
	if _, _, err := sizeForVGS(&tech.N, 1e-6, 0.3, 1e-6, tech.Temp, 1e-6, 1e-3); err == nil {
		t.Fatal("sub-VT target accepted")
	}
}
