package serve

import (
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"

	"loas/internal/obs"
)

// latencyBuckets spans the service's dynamic range: sub-millisecond
// cache hits up to multi-minute cold Table-1 runs (seconds).
var latencyBuckets = []float64{
	0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 2.5, 5, 10, 30, 60, 120,
}

// queueWaitBuckets resolves the short end: an idle queue admits in
// microseconds, a saturated one holds jobs for seconds.
var queueWaitBuckets = []float64{
	0.0001, 0.0005, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 10, 30,
}

// batchSizeBuckets span one item up to the BatchMaxItems default.
var batchSizeBuckets = []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500}

// frontSizeBuckets span a single-point front up to a budget-sized one.
var frontSizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128}

// initMetrics builds the per-server registry. Counters the server
// already tracks atomically (requests, cache hits, queue depth) are
// exposed as gauges sampled at scrape time — one source of truth, two
// views (/stats JSON and /metrics Prometheus text).
func (s *Server) initMetrics() {
	r := obs.NewRegistry()
	s.reg = r
	r.InfoGauge("loas_build_info",
		"build identity of the running daemon (constant 1)",
		map[string]string{
			"version":    BuildVersion(),
			"go":         runtime.Version(),
			"gomaxprocs": strconv.Itoa(runtime.GOMAXPROCS(0)),
		})
	s.latency = r.Histogram("loas_synth_latency_seconds",
		"request latency of result endpoints (cache hits and backend runs)", latencyBuckets)
	s.queueWait = r.Histogram("loas_queue_wait_seconds",
		"time a request's job waited behind the bounded queue before a worker picked it up",
		queueWaitBuckets)

	s.batchRequests = r.Counter("loas_batch_requests_total",
		"POST /v1/batch requests accepted")
	s.batchItems = r.Counter("loas_batch_items_total",
		"synthesize items submitted across all batches")
	s.batchItemErrors = r.Counter("loas_batch_item_errors_total",
		"batch items that ended in error")
	s.batchSize = r.Histogram("loas_batch_size_items",
		"items per accepted batch request", batchSizeBuckets)
	s.exploreRequests = r.Counter("loas_explore_requests_total",
		"POST /v1/explore requests accepted")
	s.exploreProbes = r.Counter("loas_explore_probe_runs_total",
		"exploration probes completed by this server (including cache hits and dedup joins)")
	s.exploreFront = r.Histogram("loas_explore_front_size",
		"Pareto-front points per explored topology", frontSizeBuckets)

	r.GaugeFunc("loas_requests", "requests received",
		func() float64 { return float64(s.requests.Load()) })
	r.GaugeFunc("loas_errors", "requests answered with an error status",
		func() float64 { return float64(s.errs.Load()) })
	r.GaugeFunc("loas_backend_runs", "synthesis executions that reached the backend",
		func() float64 { return float64(s.backendRuns.Load()) })
	r.GaugeFunc("loas_dedup_joined", "requests that joined an in-flight identical synthesis",
		func() float64 { return float64(s.flight.Joined()) })

	r.GaugeFunc("loas_cache_hits", "result cache hits",
		func() float64 { return float64(s.cache.Stats().Hits) })
	r.GaugeFunc("loas_cache_misses", "result cache misses",
		func() float64 { return float64(s.cache.Stats().Misses) })
	r.GaugeFunc("loas_cache_bytes", "bytes held by the result cache",
		func() float64 { return float64(s.cache.Stats().Bytes) })
	r.GaugeFunc("loas_cache_entries", "entries held by the result cache",
		func() float64 { return float64(s.cache.Stats().Entries) })

	r.GaugeFunc("loas_queue_depth", "synthesis jobs accepted and not yet finished",
		func() float64 { return float64(s.pool.Stats().Depth) })
	r.GaugeFunc("loas_queue_depth_max", "high-water mark of the job queue depth",
		func() float64 { return float64(s.pool.Stats().MaxDepth) })
	r.GaugeFunc("loas_queue_rejected", "jobs shed because the queue was full",
		func() float64 { return float64(s.pool.Stats().Rejected) })
	r.GaugeFunc("loas_queue_saturation",
		"queue depth as a fraction of total admission capacity (workers + queue slots); 1.0 sheds load",
		func() float64 {
			st := s.pool.Stats()
			if cap := st.Workers + st.Capacity; cap > 0 {
				return float64(st.Depth) / float64(cap)
			}
			return 0
		})

	r.GaugeFunc("loas_traces_stored", "convergence traces retained for /v1/trace",
		func() float64 { return float64(s.traces.len()) })
	r.GaugeFunc("loas_trace_evictions", "convergence traces dropped by the store's FIFO bound",
		func() float64 { return float64(s.traces.evictions.Load()) })

	r.GaugeFunc("loas_runs_stored", "run records retained for /v1/runs",
		func() float64 { return float64(s.runs.len()) })
	r.GaugeFunc("loas_ledger_errors", "run records that failed to append to the ledger",
		func() float64 { return float64(s.ledgerErrs.Load()) })
	r.GaugeFunc("loas_event_subscribers", "clients connected to /v1/events",
		func() float64 { return float64(s.events.subscribers()) })
	r.GaugeFunc("loas_events_published", "SSE frames published to /v1/events subscribers",
		func() float64 { return float64(s.events.published.Load()) })
	r.GaugeFunc("loas_event_subscribers_dropped", "slow /v1/events subscribers dropped",
		func() float64 { return float64(s.events.dropped.Load()) })
}

// handleMetrics serves the Prometheus text exposition: the server's own
// registry first, then the process-wide obs.Default registry carrying
// the domain counters (sizing passes, layout plans, MC samples).
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		return
	}
	obs.Default.WritePrometheus(w)
}

// mountPprof exposes the net/http/pprof profiles on the server mux
// (Config.EnablePprof / loasd -pprof). Mounted explicitly rather than
// through the package's DefaultServeMux side effect so an undebugged
// daemon serves nothing under /debug/.
func mountPprof(mux *http.ServeMux) {
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
}
