// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, plus ablations on the design choices called out in
// DESIGN.md. Key reproduced quantities are attached as custom benchmark
// metrics so `go test -bench` output doubles as the experiment record:
//
//	Fig. 2  → BenchmarkFig2CapReduction
//	Fig. 3  → BenchmarkFig3CurrentMirror
//	Table 1 → BenchmarkTable1Case1…4 (gbw_MHz, pm_deg, gain_dB, power_mW
//	          metrics carry synthesized values; x* the extracted ones)
//	Fig. 5  → BenchmarkFig5Layout (area_um2)
//	Fig. 1  → BenchmarkFlowProposed / BenchmarkFlowTraditional
//	§6      → BenchmarkSCIntegrator
//
// Serial/parallel pairs (identical results, sec/op ratio = speedup):
// BenchmarkTable1AllCasesSerial vs BenchmarkTable1AllCases and
// BenchmarkMonteCarloOffset vs BenchmarkMonteCarloOffsetParallel.
//
// The serving layer (DESIGN.md row 22) gets its own cold/hot pair:
// BenchmarkServeSynthesizeCold vs BenchmarkServeSynthesizeHot — the
// sec/op ratio is the value of the content-addressed result cache on a
// repeat request.
package loas

import (
	"fmt"
	"math/cmplx"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"loas/internal/circuit"
	"loas/internal/core"
	"loas/internal/device"
	"loas/internal/layout"
	"loas/internal/layout/cairo"
	"loas/internal/layout/slicing"
	"loas/internal/mc"
	"loas/internal/repro"
	"loas/internal/scfilter"
	"loas/internal/serve"
	"loas/internal/sizing"
	"loas/internal/techno"
)

func BenchmarkFig2CapReduction(b *testing.B) {
	var last []repro.Fig2Point
	for i := 0; i < b.N; i++ {
		last = repro.Fig2(64)
	}
	b.ReportMetric(last[3].External, "F_ext_nf4")
	b.ReportMetric(last[3].Internal, "F_int_nf4")
}

func BenchmarkFig3CurrentMirror(b *testing.B) {
	tech := techno.Default060()
	var r *repro.Fig3Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = repro.Fig3(tech)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.CentroidErr["M3"], "centroid_M3_pitch")
	b.ReportMetric(float64(r.Pattern.InsertedDummies), "dummies")
	b.ReportMetric(float64(r.Stack.Width)*1e-3, "width_um")
}

func benchTable1Case(b *testing.B, c int) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Synthesize(tech, spec, core.Options{Case: c})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Synthesized.GBW/1e6, "gbw_MHz")
	b.ReportMetric(res.Extracted.GBW/1e6, "xgbw_MHz")
	b.ReportMetric(res.Synthesized.PhaseDeg, "pm_deg")
	b.ReportMetric(res.Extracted.PhaseDeg, "xpm_deg")
	b.ReportMetric(res.Extracted.DCGainDB, "xgain_dB")
	b.ReportMetric(res.Extracted.Power*1e3, "xpower_mW")
	b.ReportMetric(float64(res.LayoutCalls), "layout_calls")
}

func BenchmarkTable1Case1(b *testing.B) { benchTable1Case(b, 1) }
func BenchmarkTable1Case2(b *testing.B) { benchTable1Case(b, 2) }
func BenchmarkTable1Case3(b *testing.B) { benchTable1Case(b, 3) }
func BenchmarkTable1Case4(b *testing.B) { benchTable1Case(b, 4) }

// BenchmarkTable1AllCasesSerial / BenchmarkTable1AllCases are the
// serial/parallel pair for the whole four-case experiment: same work,
// same results (TestSynthesizeAllMatchesSerial), sec/op is the speedup.
func BenchmarkTable1AllCasesSerial(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		for c := 1; c <= core.NumTable1Cases; c++ {
			r, err := core.Synthesize(tech, spec, core.Options{Case: c})
			if err != nil {
				b.Fatal(err)
			}
			if c == core.NumTable1Cases {
				res = r
			}
		}
	}
	b.ReportMetric(res.Extracted.GBW/1e6, "case4_xgbw_MHz")
}

func BenchmarkTable1AllCases(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var all []*core.Result
	var err error
	for i := 0; i < b.N; i++ {
		all, err = core.SynthesizeAll(tech, spec, core.Options{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(all[3].Extracted.GBW/1e6, "case4_xgbw_MHz")
}

func BenchmarkFig5Layout(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var r *repro.Fig5Result
	var err error
	for i := 0; i < b.N; i++ {
		r, err = repro.Fig5(tech, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(r.Plan.Parasitics.AreaUM2, "area_um2")
}

func BenchmarkFlowProposed(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var res *core.Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.Synthesize(tech, spec, core.Options{Case: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.LayoutCalls), "layout_calls")
	b.ReportMetric(float64(res.SizingPasses), "sizing_passes")
}

func BenchmarkFlowTraditional(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var res *core.TraditionalResult
	var err error
	for i := 0; i < b.N; i++ {
		res, err = core.TraditionalFlow(tech, spec, 10, core.Options{}.Shape)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Iterations), "full_iterations")
	b.ReportMetric(res.GBWOverdrive, "gbw_overdrive")
}

func BenchmarkSCIntegrator(b *testing.B) {
	g := scfilter.Integrator{
		OTA: scfilter.OTAModel{DCGain: 4800, GBW: 65e6, SR: 78e6},
		Cs:  1e-12, Cf: 4e-12, Fs: 10e6,
	}
	var mag float64
	for i := 0; i < b.N; i++ {
		mag = cmplx.Abs(g.H(10e3))
	}
	b.ReportMetric(sizing.DB(mag), "H10k_dB")
	b.ReportMetric(g.SettlingError()*1e6, "settle_ppm")
}

// --- Ablations (design choices called out in DESIGN.md) -----------------

// BenchmarkAblationFoldStyle quantifies the frequency benefit of the
// paper's drain-internal folding rule: the drain-bulk capacitance of a
// 48 µm transistor under the three styles of Fig. 2.
func BenchmarkAblationFoldStyle(b *testing.B) {
	tech := techno.Default060()
	var u, in, ex float64
	for i := 0; i < b.N; i++ {
		u, in, ex = repro.FoldStyleComparison(tech, 48e-6, 4)
	}
	b.ReportMetric(u*1e15, "cdb_unfolded_fF")
	b.ReportMetric(in*1e15, "cdb_internal_fF")
	b.ReportMetric(ex*1e15, "cdb_external_fF")
}

// BenchmarkAblationEvalMethod compares the closed-form pole-counting
// phase margin against the simulated evaluation the sizing plan actually
// uses and the extracted measurement — the shared-models accuracy
// argument of the paper, quantified.
func BenchmarkAblationEvalMethod(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var abl *repro.EvalAblation
	var err error
	for i := 0; i < b.N; i++ {
		abl, err = repro.RunEvalAblation(tech, spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(abl.PMAnalytic, "pm_analytic_deg")
	b.ReportMetric(abl.PMSimulated, "pm_simulated_deg")
	b.ReportMetric(abl.PMExtracted, "pm_extracted_deg")
}

// BenchmarkConvergenceTrace measures the paper's parasitic fixpoint loop
// call by call.
func BenchmarkConvergenceTrace(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	var pts []repro.ConvergencePoint
	var err error
	for i := 0; i < b.N; i++ {
		pts, err = repro.ConvergenceTrace(tech, spec, 8)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(len(pts)), "layout_calls")
	b.ReportMetric(pts[len(pts)-1].DeltaF*1e15, "final_delta_fF")
}

// BenchmarkAblationShapeConstraint measures how the shape constraint
// steers the floorplan: minimal-area versus a binding width cap, which
// forces taller fold/split choices and costs area.
func BenchmarkAblationShapeConstraint(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeFoldedCascode(tech, spec, ps)
	if err != nil {
		b.Fatal(err)
	}
	var free, narrow float64
	for i := 0; i < b.N; i++ {
		pf, err := d.Layout().Plan(tech, core.Options{}.Shape)
		if err != nil {
			b.Fatal(err)
		}
		free = pf.Parasitics.AreaUM2
		pn, err := d.Layout().Plan(tech, cairo.Constraint{MaxW: 70000})
		if err != nil {
			b.Fatal(err)
		}
		narrow = pn.Parasitics.AreaUM2
	}
	b.ReportMetric(free, "area_free_um2")
	b.ReportMetric(narrow, "area_constrained_um2")
}

// BenchmarkTwoStageSizing exercises the second topology of the library
// (the paper's "hierarchy simplifies the addition of new topologies").
func BenchmarkTwoStageSizing(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.OTASpec{VDD: 3.3, GBW: 20e6, PM: 65, CL: 5e-12,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.4, OutHigh: 2.9}
	ps, _ := sizing.Case(1)
	var d *sizing.TwoStage
	var err error
	for i := 0; i < b.N; i++ {
		d, err = sizing.SizeTwoStage(tech, spec, ps)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(d.Predicted.GBW/1e6, "gbw_MHz")
	b.ReportMetric(d.Predicted.PhaseDeg, "pm_deg")
	b.ReportMetric(d.CC*1e12, "cc_pF")
}

// benchSynthesizeTopology runs the full case-4 layout-in-the-loop
// synthesis (verification included) for one registered topology — the
// per-topology cost record from the registry PR onward.
func benchSynthesizeTopology(b *testing.B, topology string) {
	b.Helper()
	tech := techno.Default060()
	plan, err := sizing.Lookup(topology)
	if err != nil {
		b.Fatal(err)
	}
	spec := plan.DefaultSpec()
	var res *core.Result
	for i := 0; i < b.N; i++ {
		res, err = core.Synthesize(tech, spec, core.Options{Topology: topology, Case: 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Extracted.GBW/1e6, "xgbw_MHz")
	b.ReportMetric(res.Extracted.PhaseDeg, "xpm_deg")
	b.ReportMetric(float64(res.LayoutCalls), "layout_calls")
}

func BenchmarkSynthesizeFoldedCascode(b *testing.B) { benchSynthesizeTopology(b, "folded-cascode") }
func BenchmarkSynthesizeTwoStage(b *testing.B)      { benchSynthesizeTopology(b, "two-stage") }
func BenchmarkSynthesizeFiveT(b *testing.B)         { benchSynthesizeTopology(b, "five-t") }

// benchMonteCarloOffset measures the statistical verification interface
// (8 mismatch samples with full DC nulling each) at a given worker count.
func benchMonteCarloOffset(b *testing.B, workers int) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeFoldedCascode(tech, spec, ps)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mc.OffsetConfig{
		Build:   func() *circuit.Circuit { return d.Netlist("mcb") },
		InP:     sizing.NetInP,
		InN:     sizing.NetInN,
		Out:     sizing.NetOut,
		VicmDC:  0.645,
		VoutMid: 1.41,
		Temp:    tech.Temp,
		NodeSet: d.NodeSet(),
		Workers: workers,
	}
	var stats *mc.OffsetStats
	for i := 0; i < b.N; i++ {
		stats, err = mc.RunOffset(cfg, 8, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(stats.SigmaV*1e3, "sigma_mV")
}

// Serial/parallel pair; identical sigma_mV by construction (the samples
// draw from seed-split streams, see TestRunOffsetWorkerInvariance).
func BenchmarkMonteCarloOffset(b *testing.B)         { benchMonteCarloOffset(b, 1) }
func BenchmarkMonteCarloOffsetParallel(b *testing.B) { benchMonteCarloOffset(b, 0) }

// BenchmarkCornerSweep times the five-corner verification, which also
// runs on the worker pool.
func BenchmarkCornerSweep(b *testing.B) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	res, err := core.Synthesize(tech, spec, core.Options{Case: 4})
	if err != nil {
		b.Fatal(err)
	}
	var corners map[techno.Corner]sizing.Performance
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		corners, err = core.CornerSweep(tech, res)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(corners[techno.CornerSS].GBW/1e6, "ss_gbw_MHz")
	b.ReportMetric(corners[techno.CornerFF].GBW/1e6, "ff_gbw_MHz")
}

// benchServePost drives one request through the daemon's handler
// in-process (no sockets, so the measurement is cache + engine, not
// the TCP stack).
func benchServePost(b *testing.B, h http.Handler, body string) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/synthesize", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Body.Len() == 0 {
		b.Fatalf("status %d, %d bytes: %s", w.Code, w.Body.Len(), w.Body.String())
	}
}

// BenchmarkServeSynthesizeCold: every iteration carries a fresh content
// address (the layout-call cap varies while staying far above what a
// case-1 synthesis uses, so the work itself is identical), forcing a
// full backend synthesis each time.
func BenchmarkServeSynthesizeCold(b *testing.B) {
	s := serve.New(serve.Config{})
	defer s.Close()
	h := s.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServePost(b, h, fmt.Sprintf(
			`{"case":1,"skip_verify":true,"max_layout_calls":%d}`, 50+i))
	}
	b.StopTimer()
	b.ReportMetric(float64(s.Stats().BackendRuns), "backend_runs")
}

// BenchmarkServeSynthesizeHot repeats one identical request; after the
// warm-up every iteration is a byte-replay from the result cache.
func BenchmarkServeSynthesizeHot(b *testing.B) {
	s := serve.New(serve.Config{})
	defer s.Close()
	h := s.Handler()
	const body = `{"case":1,"skip_verify":true}`
	benchServePost(b, h, body) // warm the cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchServePost(b, h, body)
	}
	b.StopTimer()
	if runs := s.Stats().BackendRuns; runs != 1 {
		b.Fatalf("hot path ran the backend %d times, want 1", runs)
	}
}

// batchBody50 is the benchmark batch: 50 items cycling over 3 unique
// specs (cases 1..3, skip_verify keeps each unique synthesis one-pass),
// the same shape as the batch acceptance test.
func batchBody50() string {
	var sb strings.Builder
	sb.WriteString(`{"items":[`)
	for i := 0; i < 50; i++ {
		if i > 0 {
			sb.WriteString(",")
		}
		fmt.Fprintf(&sb, `{"case":%d,"skip_verify":true}`, 1+i%3)
	}
	sb.WriteString(`]}`)
	return sb.String()
}

// benchBatchPost drives one POST /v1/batch through the handler
// in-process.
func benchBatchPost(b *testing.B, h http.Handler, body string) {
	b.Helper()
	req := httptest.NewRequest("POST", "/v1/batch", strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	if w.Code != http.StatusOK || w.Body.Len() == 0 {
		b.Fatalf("status %d, %d bytes: %s", w.Code, w.Body.Len(), w.Body.String())
	}
}

// BenchmarkBatchSynthesize50Cold: a fresh daemon per iteration, so the
// 50-item batch pays for exactly its 3 unique syntheses — the other 47
// items ride the per-item cache and singleflight. The backend_runs
// metric pins the dedup contract into the snapshot.
func BenchmarkBatchSynthesize50Cold(b *testing.B) {
	body := batchBody50()
	var runs float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s := serve.New(serve.Config{})
		h := s.Handler()
		b.StartTimer()
		benchBatchPost(b, h, body)
		b.StopTimer()
		runs = float64(s.Stats().BackendRuns)
		if runs != 3 {
			b.Fatalf("cold batch ran the backend %.0f times, want 3", runs)
		}
		s.Close()
		b.StartTimer()
	}
	b.StopTimer()
	b.ReportMetric(50, "items")
	b.ReportMetric(runs, "backend_runs")
}

// BenchmarkBatchSynthesize50Warm repeats the identical batch against
// one daemon; after the warm-up every item is a cache hit, so the
// sec/op ratio against the cold pair is the value of content-addressed
// reuse on repeated spec-grid workloads.
func BenchmarkBatchSynthesize50Warm(b *testing.B) {
	s := serve.New(serve.Config{})
	defer s.Close()
	h := s.Handler()
	body := batchBody50()
	benchBatchPost(b, h, body) // warm the per-item cache
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchBatchPost(b, h, body)
	}
	b.StopTimer()
	runs := float64(s.Stats().BackendRuns)
	if runs != 3 {
		b.Fatalf("warm batches ran the backend %.0f times, want 3", runs)
	}
	b.ReportMetric(50, "items")
	b.ReportMetric(runs, "backend_runs")
}

// --- Cold-path caching stage benchmarks ---
//
// One benchmark per cache layer, in cold/warm pairs where a cache is
// involved; the pair ratio is the layer's contribution to the cold-path
// speedup recorded in BENCH_8.json. Results are bit-identical either
// way (see internal/core/differential_test.go).

// BenchmarkModelCardEval: one full device-model evaluation — the drain
// current plus six extra core solves for the numerical conductances.
func BenchmarkModelCardEval(b *testing.B) {
	tech := techno.Default060()
	m := device.MOS{Card: &tech.N, W: 50e-6, L: 1e-6}
	var op device.OP
	for i := 0; i < b.N; i++ {
		op = m.Eval(1.2, 1.5, 0, 0, tech.Temp)
	}
	b.ReportMetric(op.ID*1e3, "id_mA")
}

// BenchmarkModelCardEvalID: the ID-only evaluation the DC solver's
// Jacobian builder uses (1 core solve instead of 7).
func BenchmarkModelCardEvalID(b *testing.B) {
	tech := techno.Default060()
	m := device.MOS{Card: &tech.N, W: 50e-6, L: 1e-6}
	var id float64
	for i := 0; i < b.N; i++ {
		id = m.EvalID(1.2, 1.5, 0, 0, tech.Temp)
	}
	b.ReportMetric(id*1e3, "id_mA")
}

// BenchmarkSizeBisectionCold: one 80-iteration width bisection on the
// exact model — the unit of work the evaluation memo short-circuits.
func BenchmarkSizeBisectionCold(b *testing.B) {
	tech := techno.Default060()
	var w float64
	var err error
	for i := 0; i < b.N; i++ {
		w, err = device.SizeForCurrent(&tech.N, 1e-6, 0.2, 0, 1e-4, tech.Temp, 1e-6, 2e-2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(w*1e6, "w_um")
}

// BenchmarkSizeBisectionMemoHit: the same bisection served from the
// evaluation memo (exact-key lookup, no model evaluation at all).
func BenchmarkSizeBisectionMemoHit(b *testing.B) {
	tech := techno.Default060()
	memo := device.NewMemo(0)
	if _, err := memo.SizeForCurrent(&tech.N, 1e-6, 0.2, 0, 1e-4, tech.Temp, 1e-6, 2e-2); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var w float64
	var err error
	for i := 0; i < b.N; i++ {
		w, err = memo.SizeForCurrent(&tech.N, 1e-6, 0.2, 0, 1e-4, tech.Temp, 1e-6, 2e-2)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(w*1e6, "w_um")
}

// benchFCDesign sizes the paper's folded-cascode once for the layout
// benchmarks.
func benchFCDesign(b *testing.B) *sizing.FoldedCascode {
	b.Helper()
	tech := techno.Default060()
	ps, _ := sizing.Case(3)
	d, err := sizing.SizeFoldedCascode(tech, sizing.Default65MHz(), ps)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// BenchmarkLayoutPlanCold: one full layout call — every module built,
// floorplan optimized, routed and extracted from scratch.
func BenchmarkLayoutPlanCold(b *testing.B) {
	tech := techno.Default060()
	d := benchFCDesign(b)
	b.ResetTimer()
	var p *cairo.Plan
	var err error
	for i := 0; i < b.N; i++ {
		p, err = d.Layout().Plan(tech, cairo.Constraint{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.Parasitics.AreaUM2, "area_um2")
}

// BenchmarkLayoutPlanSessionWarm: the same layout call against a warm
// session — unchanged modules replay their builds, the floorplan reuses
// cached shape functions and the router replays its recorded shapes, so
// the call re-extracts only what changed (here: nothing). The ratio to
// BenchmarkLayoutPlanCold is the incremental-extraction win on the
// converged iterations of the synthesis loop.
func BenchmarkLayoutPlanSessionWarm(b *testing.B) {
	tech := techno.Default060()
	d := benchFCDesign(b)
	s := cairo.NewSession(true, true)
	if _, err := d.Layout().PlanSession(tech, cairo.Constraint{}, s); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var p *cairo.Plan
	var err error
	for i := 0; i < b.N; i++ {
		p, err = d.Layout().PlanSession(tech, cairo.Constraint{}, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.Parasitics.AreaUM2, "area_um2")
}

// benchLayoutBackend runs one registered layout backend over one sized
// topology — the registry-level rows-vs-slicing comparison. Cold plans
// with no session; warm plans against a session primed by one prior
// call, so the ratio is each backend's incremental-extraction win.
// area_um2 and cap_fF are deterministic and land in the benchsnap
// record as the per-backend quality A/B.
func benchLayoutBackend(b *testing.B, topology, backendName string, warm bool) {
	b.Helper()
	tech := techno.Default060()
	sp, err := sizing.Lookup(topology)
	if err != nil {
		b.Fatal(err)
	}
	ps, _ := sizing.Case(3)
	sized, err := sp.Size(tech, sp.DefaultSpec(), ps)
	if err != nil {
		b.Fatal(err)
	}
	d := sized.Layout()
	be, err := layout.Lookup(backendName)
	if err != nil {
		b.Fatal(err)
	}
	var s *cairo.Session
	if warm {
		s = cairo.NewSession(true, true)
		if _, err := be.Plan(tech, d, cairo.Constraint{}, s); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	var p *cairo.Plan
	for i := 0; i < b.N; i++ {
		p, err = be.Plan(tech, d, cairo.Constraint{}, s)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(p.Parasitics.AreaUM2, "area_um2")
	b.ReportMetric(p.Parasitics.TotalCap()*1e15, "cap_fF")
}

func BenchmarkLayoutSlicingColdFiveT(b *testing.B) { benchLayoutBackend(b, "five-t", "slicing", false) }
func BenchmarkLayoutSlicingWarmFiveT(b *testing.B) { benchLayoutBackend(b, "five-t", "slicing", true) }
func BenchmarkLayoutRowsColdFiveT(b *testing.B)    { benchLayoutBackend(b, "five-t", "rows", false) }
func BenchmarkLayoutRowsWarmFiveT(b *testing.B)    { benchLayoutBackend(b, "five-t", "rows", true) }

func BenchmarkLayoutSlicingColdFoldedCascode(b *testing.B) {
	benchLayoutBackend(b, "folded-cascode", "slicing", false)
}
func BenchmarkLayoutSlicingWarmFoldedCascode(b *testing.B) {
	benchLayoutBackend(b, "folded-cascode", "slicing", true)
}
func BenchmarkLayoutRowsColdFoldedCascode(b *testing.B) {
	benchLayoutBackend(b, "folded-cascode", "rows", false)
}
func BenchmarkLayoutRowsWarmFoldedCascode(b *testing.B) {
	benchLayoutBackend(b, "folded-cascode", "rows", true)
}

func BenchmarkLayoutSlicingColdTwoStage(b *testing.B) {
	benchLayoutBackend(b, "two-stage", "slicing", false)
}
func BenchmarkLayoutSlicingWarmTwoStage(b *testing.B) {
	benchLayoutBackend(b, "two-stage", "slicing", true)
}
func BenchmarkLayoutRowsColdTwoStage(b *testing.B) { benchLayoutBackend(b, "two-stage", "rows", false) }
func BenchmarkLayoutRowsWarmTwoStage(b *testing.B) { benchLayoutBackend(b, "two-stage", "rows", true) }

// benchSlicingTree builds a synthetic 3-level slicing tree wide enough
// that Stockmeyer combination dominates (8 leaves x 8 options).
func benchSlicingTree() slicing.Node {
	var rows []slicing.Node
	for r := 0; r < 4; r++ {
		var leaves []slicing.Node
		for l := 0; l < 2; l++ {
			var opts []slicing.Option
			for c := 0; c < 8; c++ {
				w := int64(1000 * (c + 1 + r + l))
				opts = append(opts, slicing.Option{W: w, H: 64000000 / w, Choice: c})
			}
			leaves = append(leaves, slicing.NewLeaf(fmt.Sprintf("m%d_%d", r, l), opts))
		}
		rows = append(rows, slicing.NewCut(true, 8000, leaves...))
	}
	return slicing.NewCut(false, 8000, rows...)
}

// BenchmarkShapeFunctionCold: full Stockmeyer evaluation of the tree's
// shape function plus realization.
func BenchmarkShapeFunctionCold(b *testing.B) {
	root := benchSlicingTree()
	var fp *slicing.Floorplan
	var err error
	for i := 0; i < b.N; i++ {
		fp, err = slicing.Optimize(root, slicing.Constraint{})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fp.Area(), "area_um2")
}

// BenchmarkShapeFunctionCached: the same optimization with every
// subtree's shape function served from a warm cache.
func BenchmarkShapeFunctionCached(b *testing.B) {
	root := benchSlicingTree()
	sc := slicing.NewShapeCache()
	if _, err := slicing.OptimizeCached(root, slicing.Constraint{}, sc); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var fp *slicing.Floorplan
	var err error
	for i := 0; i < b.N; i++ {
		fp, err = slicing.OptimizeCached(root, slicing.Constraint{}, sc)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(fp.Area(), "area_um2")
}

// benchMCOffsetSample times one Monte-Carlo sample (bracket + 18
// bisection solves) on either evaluation path.
func benchMCOffsetSample(b *testing.B, perSolveRebuild bool) {
	tech := techno.Default060()
	spec := sizing.Default65MHz()
	ps, _ := sizing.Case(1)
	d, err := sizing.SizeFoldedCascode(tech, spec, ps)
	if err != nil {
		b.Fatal(err)
	}
	cfg := mc.OffsetConfig{
		Build:           func() *circuit.Circuit { return d.Netlist("mcs") },
		InP:             sizing.NetInP,
		InN:             sizing.NetInN,
		Out:             sizing.NetOut,
		VicmDC:          0.645,
		VoutMid:         1.41,
		Temp:            tech.Temp,
		NodeSet:         d.NodeSet(),
		Workers:         1,
		PerSolveRebuild: perSolveRebuild,
	}
	var samples []mc.OffsetSample
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		samples, err = mc.OffsetSamples(cfg, 0, 1, 42)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(samples[0].OffsetV*1e3, "offset_mV")
}

// BenchmarkMCSamplePerSolveRebuild: the legacy path — a fresh netlist
// and engine for each of the ~21 solves of the sample.
func BenchmarkMCSamplePerSolveRebuild(b *testing.B) { benchMCOffsetSample(b, true) }

// BenchmarkMCSampleBatched: the batched path — one netlist and engine
// per sample, only the input sources swept. Identical offsets.
func BenchmarkMCSampleBatched(b *testing.B) { benchMCOffsetSample(b, false) }
