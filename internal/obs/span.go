package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Spans are the request-lifecycle complement of the convergence trace:
// where an Iteration tells the story of one sizing↔layout call, a span
// tree tells the story of one whole run — request → queue-wait →
// cache-lookup → synthesize → per-iteration phases → verification —
// with wall-clock attributed to every step. The corner and Monte-Carlo
// fan-outs open one span per worker item, so the tree also shows where
// parallel time goes.
//
// Span IDs come from the recorder's own counter, never from time or
// rand: two identical runs produce structurally identical trees, which
// is what keeps golden comparisons and the ledger replay exact.

// SpanRecord is the serialized form of one finished span — the wire
// format of GET /v1/runs/{id} and the ledger's `spans` field.
type SpanRecord struct {
	// ID and Parent are recorder-local: the root span has ID 1 and
	// Parent 0, children reference their parent's ID. IDs increase in
	// span start order.
	ID     int    `json:"id"`
	Parent int    `json:"parent,omitempty"`
	Name   string `json:"name"`
	// StartNS is the span's start offset from the recorder's epoch (the
	// run start), DurationNS its wall-clock length. A span still open at
	// snapshot time reports the elapsed time so far.
	StartNS    int64             `json:"start_ns"`
	DurationNS int64             `json:"duration_ns"`
	Attrs      map[string]string `json:"attrs,omitempty"`
	// AllocBytes and GCCycles are the span's resource deltas, present
	// only when the span opted in via BeginResources: heap bytes
	// allocated and GC cycles completed process-wide while the span ran.
	// Exact attribution on serial phases; an upper bound when other work
	// ran concurrently.
	AllocBytes int64 `json:"alloc_bytes,omitempty"`
	GCCycles   int64 `json:"gc_cycles,omitempty"`
}

// Recorder allocates and collects the spans of one run. The zero value
// is not usable; create with NewRecorder. A nil *Recorder hands out nil
// spans, so unobserved call paths pay nothing.
type Recorder struct {
	mu     sync.Mutex
	nextID int
	spans  []*Span
	t0     time.Time
	now    func() time.Time // injectable for deterministic tests
}

// NewRecorder starts a recorder whose epoch is now.
func NewRecorder() *Recorder {
	r := &Recorder{now: time.Now}
	r.t0 = r.now()
	return r
}

// setClock replaces the wall clock (tests only: deterministic spans).
func (r *Recorder) setClock(now func() time.Time) {
	r.mu.Lock()
	r.now = now
	r.t0 = now()
	r.mu.Unlock()
}

// Root opens a top-level span. Safe on a nil recorder (returns nil).
func (r *Recorder) Root(name string) *Span { return r.start(0, name) }

func (r *Recorder) start(parent int, name string) *Span {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.nextID++
	s := &Span{
		rec:    r,
		id:     r.nextID,
		parent: parent,
		name:   name,
		start:  r.now(),
	}
	s.startNS = s.start.Sub(r.t0).Nanoseconds()
	r.spans = append(r.spans, s)
	return s
}

// Snapshot returns every span started so far, in start order. Spans not
// yet ended report their elapsed time at snapshot. Safe on nil.
func (r *Recorder) Snapshot() []SpanRecord {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	spans := make([]*Span, len(r.spans))
	copy(spans, r.spans)
	now := r.now
	r.mu.Unlock()
	out := make([]SpanRecord, 0, len(spans))
	for _, s := range spans {
		out = append(out, s.record(now))
	}
	return out
}

// Span is one live timed region. All methods are safe on a nil receiver
// and safe for concurrent use, so fan-out workers can open children of a
// shared parent without coordination.
type Span struct {
	rec     *Recorder
	id      int
	parent  int
	name    string
	start   time.Time
	startNS int64

	mu    sync.Mutex
	attrs map[string]string
	durNS int64
	ended bool

	// Resource sampling (BeginResources): res0 is the reading at opt-in;
	// the deltas freeze at End.
	sampled    bool
	res0       ResourceSample
	allocBytes int64
	gcCycles   int64
}

// Child opens a sub-span. Safe on nil (returns nil).
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.rec.start(s.id, name)
}

// SetAttr attaches a key/value label. Safe on nil.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.attrs == nil {
		s.attrs = map[string]string{}
	}
	s.attrs[k] = v
	s.mu.Unlock()
}

// BeginResources samples the process resource counters now, opting the
// span into allocation/GC-delta attribution: End will sample again and
// freeze the deltas into the record. Call it on serial phases where the
// delta is exact (sizing, extraction, verification); on concurrent
// spans the delta would count the neighbors' work too. Safe on nil.
func (s *Span) BeginResources() {
	if s == nil {
		return
	}
	r := SampleResources()
	s.mu.Lock()
	if !s.ended {
		s.sampled = true
		s.res0 = r
	}
	s.mu.Unlock()
}

// End closes the span, freezing its duration (and resource deltas when
// BeginResources was called). Idempotent; safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.rec.mu.Lock()
	now := s.rec.now
	s.rec.mu.Unlock()
	s.mu.Lock()
	sampled := s.sampled && !s.ended
	s.mu.Unlock()
	// Sample outside the span lock; freeze under it only if still open.
	var r ResourceSample
	if sampled {
		r = SampleResources()
	}
	s.mu.Lock()
	if !s.ended {
		s.ended = true
		s.durNS = now().Sub(s.start).Nanoseconds()
		if sampled {
			s.allocBytes = int64(r.AllocBytes - s.res0.AllocBytes)
			s.gcCycles = int64(r.GCCycles - s.res0.GCCycles)
		}
	}
	s.mu.Unlock()
}

// Duration reports the span's length so far (frozen once ended). Safe
// on nil (zero).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.rec.mu.Lock()
	now := s.rec.now
	s.rec.mu.Unlock()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ended {
		return time.Duration(s.durNS)
	}
	return now().Sub(s.start)
}

func (s *Span) record(now func() time.Time) SpanRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	rec := SpanRecord{
		ID:         s.id,
		Parent:     s.parent,
		Name:       s.name,
		StartNS:    s.startNS,
		DurationNS: s.durNS,
		AllocBytes: s.allocBytes,
		GCCycles:   s.gcCycles,
	}
	if !s.ended {
		rec.DurationNS = now().Sub(s.start).Nanoseconds()
	}
	if len(s.attrs) > 0 {
		rec.Attrs = make(map[string]string, len(s.attrs))
		for k, v := range s.attrs {
			rec.Attrs[k] = v
		}
	}
	return rec
}

// SpanTreeText renders a span slice as an indented text table — the
// `loas show` view. Children are indented under their parent in start
// order; attrs render as sorted k=v pairs.
func SpanTreeText(spans []SpanRecord) string {
	children := map[int][]SpanRecord{}
	for _, s := range spans {
		children[s.Parent] = append(children[s.Parent], s)
	}
	var b strings.Builder
	b.WriteString("  span                              duration      attrs\n")
	var walk func(parent, depth int)
	walk = func(parent, depth int) {
		for _, s := range children[parent] {
			label := strings.Repeat("  ", depth) + s.Name
			extra := attrText(s.Attrs)
			if s.AllocBytes > 0 || s.GCCycles > 0 {
				if extra != "" {
					extra += " "
				}
				extra += fmt.Sprintf("alloc=%.1fkB gc=%d", float64(s.AllocBytes)/1e3, s.GCCycles)
			}
			fmt.Fprintf(&b, "  %-32s %9.3f ms  %s\n",
				label, float64(s.DurationNS)/1e6, extra)
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
	return b.String()
}

func attrText(attrs map[string]string) string {
	if len(attrs) == 0 {
		return ""
	}
	keys := make([]string, 0, len(attrs))
	for k := range attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	parts := make([]string, 0, len(keys))
	for _, k := range keys {
		parts = append(parts, k+"="+attrs[k])
	}
	return strings.Join(parts, " ")
}
