// Package slicing implements floorplan area optimization with shape
// functions over slicing trees (Stockmeyer's algorithm), the method the
// paper's layout language uses to honour a global shape constraint: every
// module publishes its realizable (width, height) alternatives — e.g. the
// fold counts of a transistor — and the tree combination picks the
// alternative set that best fits the constraint.
package slicing

import (
	"fmt"
	"math"
	"sort"

	"loas/internal/layout/geom"
)

// Placed is one leaf module's realization inside an optimized floorplan.
type Placed struct {
	Name   string
	Rect   geom.Rect
	Choice int // the leaf option index that was selected
}

// Option is one realizable shape of a node. The realize closure places the
// subtree for this option with its lower-left corner at (x, y).
type Option struct {
	W, H    int64
	Choice  int
	realize func(x, y int64, out map[string]Placed)
}

// ShapeFn is a Pareto-minimal shape list sorted by increasing width
// (therefore non-increasing height).
type ShapeFn []Option

// Pareto filters dominated options and sorts the survivors.
func Pareto(opts []Option) ShapeFn {
	sort.Slice(opts, func(i, j int) bool {
		if opts[i].W != opts[j].W {
			return opts[i].W < opts[j].W
		}
		return opts[i].H < opts[j].H
	})
	var out ShapeFn
	for _, o := range opts {
		if len(out) > 0 {
			last := out[len(out)-1]
			if o.W == last.W || o.H >= last.H {
				// Same width (sorted: not shorter) or not strictly
				// shorter than the previous survivor: dominated.
				continue
			}
		}
		out = append(out, o)
	}
	return out
}

// Node is a slicing-tree node.
type Node interface {
	// Shapes returns the node's Pareto shape function.
	Shapes() ShapeFn
}

// Leaf is a module with explicit shape alternatives.
type Leaf struct {
	Name    string
	Options []Option // W, H, Choice filled by the caller
}

// NewLeaf builds a leaf from raw (w, h, choice) alternatives.
func NewLeaf(name string, alts []Option) *Leaf {
	l := &Leaf{Name: name}
	for _, a := range alts {
		a := a
		a.realize = func(x, y int64, out map[string]Placed) {
			out[l.Name] = Placed{
				Name:   l.Name,
				Rect:   geom.XYWH(x, y, a.W, a.H),
				Choice: a.Choice,
			}
		}
		l.Options = append(l.Options, a)
	}
	return l
}

// Shapes implements Node.
func (l *Leaf) Shapes() ShapeFn { return Pareto(append([]Option(nil), l.Options...)) }

// Cut composes children side by side (Vertical=true: left to right,
// widths add) or stacked (heights add), separated by Gap — the routing
// channel between modules.
type Cut struct {
	Vertical bool
	Gap      int64
	Children []Node
}

// NewCut builds an n-ary cut node.
func NewCut(vertical bool, gap int64, children ...Node) *Cut {
	return &Cut{Vertical: vertical, Gap: gap, Children: children}
}

// Shapes implements Node by folding pairwise Stockmeyer combinations over
// the children.
func (c *Cut) Shapes() ShapeFn {
	if len(c.Children) == 0 {
		return nil
	}
	acc := c.Children[0].Shapes()
	for _, ch := range c.Children[1:] {
		acc = combine(acc, ch.Shapes(), c.Vertical, c.Gap)
	}
	return acc
}

// combine merges two Pareto shape functions under a cut direction.
func combine(a, b ShapeFn, vertical bool, gap int64) ShapeFn {
	var opts []Option
	for _, oa := range a {
		for _, ob := range b {
			oa, ob := oa, ob
			var w, h int64
			if vertical {
				w = oa.W + gap + ob.W
				h = max64(oa.H, ob.H)
			} else {
				w = max64(oa.W, ob.W)
				h = oa.H + gap + ob.H
			}
			opts = append(opts, Option{
				W: w, H: h,
				realize: func(x, y int64, out map[string]Placed) {
					if vertical {
						oa.realize(x, y, out)
						ob.realize(x+oa.W+gap, y, out)
					} else {
						oa.realize(x, y, out)
						ob.realize(x, y+oa.H+gap, out)
					}
				},
			})
		}
	}
	return Pareto(opts)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// Constraint is the global shape constraint: a bounding box and/or a
// target aspect ratio (width/height). Zero fields are unconstrained.
type Constraint struct {
	MaxW, MaxH int64
	// Aspect > 0 selects the option whose W/H is closest to it among
	// near-minimal-area options.
	Aspect float64
}

// Floorplan is a realized slicing floorplan.
type Floorplan struct {
	W, H   int64
	Placed map[string]Placed
}

// Area returns the floorplan bounding-box area in µm².
func (f *Floorplan) Area() float64 { return float64(f.W) * float64(f.H) * 1e-6 }

// Optimize evaluates the tree's shape function and realizes the best
// option under the constraint: minimal area among options that fit, with
// the aspect preference as tie-breaker; if nothing fits, the option with
// the smallest constraint violation.
func Optimize(root Node, c Constraint) (*Floorplan, error) {
	return realizeBest(root.Shapes(), c)
}

// realizeBest picks and realizes the best option of a computed shape
// function (the selection half of Optimize, shared with the cached path).
func realizeBest(sf ShapeFn, c Constraint) (*Floorplan, error) {
	if len(sf) == 0 {
		return nil, fmt.Errorf("slicing: empty shape function")
	}
	best := -1
	bestKey := math.Inf(1)
	for i, o := range sf {
		fits := (c.MaxW <= 0 || o.W <= c.MaxW) && (c.MaxH <= 0 || o.H <= c.MaxH)
		area := float64(o.W) * float64(o.H)
		key := area
		if !fits {
			// Penalize violations heavily but proportionally so the
			// least-violating option wins when nothing fits.
			var over float64
			if c.MaxW > 0 && o.W > c.MaxW {
				over += float64(o.W-c.MaxW) / float64(c.MaxW)
			}
			if c.MaxH > 0 && o.H > c.MaxH {
				over += float64(o.H-c.MaxH) / float64(c.MaxH)
			}
			key = area * (1e6 + over)
		}
		if c.Aspect > 0 {
			ar := float64(o.W) / float64(o.H)
			dev := math.Abs(math.Log(ar / c.Aspect))
			key *= 1 + 0.05*dev*dev
		}
		if key < bestKey {
			bestKey, best = key, i
		}
	}
	o := sf[best]
	fp := &Floorplan{W: o.W, H: o.H, Placed: map[string]Placed{}}
	o.realize(0, 0, fp.Placed)
	return fp, nil
}

// MinAreaOption returns the minimum-area point of a shape function; used
// by tests and reports.
func MinAreaOption(sf ShapeFn) (Option, error) {
	if len(sf) == 0 {
		return Option{}, fmt.Errorf("slicing: empty shape function")
	}
	best, bestArea := 0, math.Inf(1)
	for i, o := range sf {
		if a := float64(o.W) * float64(o.H); a < bestArea {
			best, bestArea = i, a
		}
	}
	return sf[best], nil
}
