package repro

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loas/internal/sizing"
	"loas/internal/techno"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata/table1_golden.json from a live run")

const goldenPath = "testdata/table1_golden.json"

// TestTable1Golden diffs a live four-case Table-1 run against the
// committed bit-exact golden file. The synthesis pipeline is
// deterministic, so any diff is a real behavioural change: rerun with
//
//	go test ./internal/repro -run TestTable1Golden -update
//
// to re-bless after an intentional model or solver change.
func TestTable1Golden(t *testing.T) {
	got := BuildGolden(techno.Default060(), sizing.Default65MHz(), table1Cases(t))

	if *updateGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	var want GoldenReport
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden file: %v", err)
	}
	if diffs := DiffGolden(&want, got); len(diffs) > 0 {
		t.Fatalf("live Table-1 run diverges from %s in %d field(s):\n  %s\n(re-bless with -update if intentional)",
			goldenPath, len(diffs), strings.Join(diffs, "\n  "))
	}
}

// TestGoldenRoundTrip: the golden encoding must survive JSON and the
// differ must actually detect perturbations (a differ that never fires
// would make the golden test vacuous).
func TestGoldenRoundTrip(t *testing.T) {
	rep := BuildGolden(techno.Default060(), sizing.Default65MHz(), table1Cases(t))
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back GoldenReport
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if diffs := DiffGolden(rep, &back); len(diffs) > 0 {
		t.Fatalf("round trip not identity: %v", diffs)
	}

	back.Cases[0].Extracted.GBW = hexF(1.0)
	back.Cases[3].LayoutCalls++
	diffs := DiffGolden(rep, &back)
	if len(diffs) != 2 {
		t.Fatalf("differ missed perturbations: %v", diffs)
	}
	for _, d := range diffs {
		if !strings.Contains(d, "case 1.extracted.gbw_hz") && !strings.Contains(d, "case 4.layout_calls") {
			t.Fatalf("unexpected diff line %q", d)
		}
	}
}

// TestGoldenHexEncoding pins the float codec itself: hex round trip is
// exact and distinguishes the edge cases decimal formatting blurs.
func TestGoldenHexEncoding(t *testing.T) {
	if hexF(0) == hexF(negZero()) {
		t.Fatal("hex encoding must distinguish +0 from -0")
	}
	v := 65e6
	if hexF(v) != hexF(6.5e7) {
		t.Fatal("equal values must encode equally")
	}
	if hexF(v) == hexF(math.Nextafter(v, math.Inf(1))) {
		t.Fatal("one ulp apart must encode differently")
	}
}

func negZero() float64 { z := 0.0; return -z }
