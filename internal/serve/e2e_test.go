package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestEndToEndDaemon boots the real daemon (real backend, real
// synthesis engine) on an ephemeral port and exercises the acceptance
// path: two identical /v1/table1 requests (second must be a cache hit
// with byte-identical JSON), one /v1/mc, one /v1/layout.svg, then a
// graceful shutdown with a request still in flight.
func TestEndToEndDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test runs real synthesis")
	}
	srv := New(Config{})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	postRaw := func(path, body string) (*http.Response, []byte, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}
	mustPost := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, data, err := postRaw(path, body)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, data)
		}
		return resp, data
	}

	// Two identical table1 requests: cold then byte-identical cache hit.
	r1, b1 := mustPost("/v1/table1", "")
	if h := r1.Header.Get("X-Loas-Cache"); h != "miss" {
		t.Fatalf("first table1 X-Loas-Cache = %q, want miss", h)
	}
	var rep struct {
		Rows []struct {
			Case   int `json:"case"`
			Result struct {
				LayoutCalls int `json:"layout_calls"`
			} `json:"result"`
		} `json:"rows"`
		ShapeViolations []string `json:"shape_violations"`
	}
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatalf("table1 response is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("table1 rows = %d, want 4", len(rep.Rows))
	}
	if len(rep.ShapeViolations) != 0 {
		t.Fatalf("table1 shape violations over HTTP: %v", rep.ShapeViolations)
	}

	r2, b2 := mustPost("/v1/table1", "")
	if h := r2.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("second table1 X-Loas-Cache = %q, want hit", h)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache hit is not byte-identical to the cold response")
	}

	// The hit must be visible in /stats.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Cache.Hits < 1 {
		t.Fatalf("stats cache hits = %d, want >= 1 after the repeated table1", st.Cache.Hits)
	}

	// Monte-Carlo over HTTP.
	_, mcBody := mustPost("/v1/mc", `{"n":2,"seed":7}`)
	var mcRep MCReport
	if err := json.Unmarshal(mcBody, &mcRep); err != nil {
		t.Fatalf("mc response: %v", err)
	}
	if mcRep.Stats.N+mcRep.Stats.Failures != 2 {
		t.Fatalf("mc samples = %d + %d failures, want 2 total", mcRep.Stats.N, mcRep.Stats.Failures)
	}
	if mcRep.AnalyticSigmaV <= 0 {
		t.Fatal("mc analytic estimate missing")
	}

	// Case-4 generate-mode layout as SVG.
	resp, err = http.Get(base + "/v1/layout.svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("layout.svg: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("layout.svg content type %q", ct)
	}
	if !bytes.HasPrefix(svg, []byte("<svg")) || !bytes.Contains(svg, []byte("</svg>")) {
		t.Fatalf("layout.svg is not an SVG document (%d bytes)", len(svg))
	}

	// Graceful shutdown with a request in flight: launch a cold
	// synthesis, wait for it to reach the backend, then Shutdown — the
	// request must still complete with 200.
	type result struct {
		status int
		err    error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, data, err := postRaw("/v1/synthesize", `{"case":1}`)
		if err != nil {
			inFlight <- result{0, err}
			return
		}
		_ = data
		inFlight <- result{resp.StatusCode, nil}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().BackendRuns < 4 { // table1, mc, layout already ran; wait for the 4th to start
		if time.Now().After(deadline) {
			t.Fatal("in-flight synthesize never reached the backend")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	srv.Close()

	got := <-inFlight
	if got.err != nil || got.status != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status %d, err %v", got.status, got.err)
	}
}
