package repro

import (
	"fmt"
	"sort"
	"strconv"

	"loas/internal/sizing"
	"loas/internal/techno"
)

// Golden-file encoding of the Table-1 experiment.
//
// Every float is rendered with strconv's 'x' format — the exact bit
// pattern, not a rounded decimal — so the golden file pins results to
// the ulp. The synthesis pipeline is deterministic by construction
// (sorted net/pair iteration everywhere floats accumulate, seed-split
// random streams), which is what makes a bit-exact golden viable; any
// unintended change to a model, a solver, or an iteration order shows
// up as a diff here before it can silently move the reproduced numbers.

// hexF encodes one float64 exactly.
func hexF(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }

// GoldenPerf is a hex-exact sizing.Performance.
type GoldenPerf struct {
	DCGainDB string `json:"dc_gain_db"`
	GBW      string `json:"gbw_hz"`
	PhaseDeg string `json:"phase_margin_deg"`
	SlewRate string `json:"slew_rate_v_per_s"`
	CMRRDB   string `json:"cmrr_db"`
	Offset   string `json:"offset_v"`
	Rout     string `json:"rout_ohm"`
	NoiseRMS string `json:"noise_rms_v"`
	NoiseTh  string `json:"noise_thermal_v_rthz"`
	NoiseFl1 string `json:"noise_flicker_1hz_v_rthz"`
	Power    string `json:"power_w"`
}

func goldenPerf(p sizing.Performance) GoldenPerf {
	return GoldenPerf{
		DCGainDB: hexF(p.DCGainDB),
		GBW:      hexF(p.GBW),
		PhaseDeg: hexF(p.PhaseDeg),
		SlewRate: hexF(p.SlewRate),
		CMRRDB:   hexF(p.CMRRDB),
		Offset:   hexF(p.Offset),
		Rout:     hexF(p.Rout),
		NoiseRMS: hexF(p.NoiseRMS),
		NoiseTh:  hexF(p.NoiseTh),
		NoiseFl1: hexF(p.NoiseFl1),
		Power:    hexF(p.Power),
	}
}

// GoldenDevice pins one transistor's realized dimensions.
type GoldenDevice struct {
	W string `json:"w"`
	L string `json:"l"`
}

// GoldenCase is one Table-1 column, bit-exact.
type GoldenCase struct {
	Case         int                     `json:"case"`
	Synthesized  GoldenPerf              `json:"synthesized"`
	Extracted    GoldenPerf              `json:"extracted"`
	LayoutCalls  int                     `json:"layout_calls"`
	SizingPasses int                     `json:"sizing_passes"`
	Itail        string                  `json:"itail_a"`
	Lc           string                  `json:"lc_m"`
	WidthUM      string                  `json:"width_um"`
	HeightUM     string                  `json:"height_um"`
	AreaUM2      string                  `json:"area_um2"`
	Devices      map[string]GoldenDevice `json:"devices"`
}

// GoldenReport is the committed testdata/table1_golden.json schema.
type GoldenReport struct {
	Tech  string            `json:"tech"`
	Spec  map[string]string `json:"spec"`
	Cases []GoldenCase      `json:"cases"`
}

// BuildGolden projects a finished Table-1 run onto the golden schema.
func BuildGolden(tech *techno.Tech, spec sizing.OTASpec, cases []Table1Case) *GoldenReport {
	rep := &GoldenReport{
		Tech: tech.Name,
		Spec: map[string]string{
			"vdd":  hexF(spec.VDD),
			"gbw":  hexF(spec.GBW),
			"pm":   hexF(spec.PM),
			"cl":   hexF(spec.CL),
			"icml": hexF(spec.ICMLow),
			"icmh": hexF(spec.ICMHigh),
			"outl": hexF(spec.OutLow),
			"outh": hexF(spec.OutHigh),
		},
	}
	for _, c := range cases {
		r := c.Result
		op := r.Design.OperatingPoint()
		gc := GoldenCase{
			Case:         c.Case,
			Synthesized:  goldenPerf(r.Synthesized),
			Extracted:    goldenPerf(r.Extracted),
			LayoutCalls:  r.LayoutCalls,
			SizingPasses: r.SizingPasses,
			Itail:        hexF(op.Itail),
			Lc:           hexF(op.Lc),
			Devices:      map[string]GoldenDevice{},
		}
		if r.Parasitics != nil {
			gc.WidthUM = hexF(r.Parasitics.WidthUM)
			gc.HeightUM = hexF(r.Parasitics.HeightUM)
			gc.AreaUM2 = hexF(r.Parasitics.AreaUM2)
		}
		for name, d := range r.Design.DeviceTable() {
			gc.Devices[name] = GoldenDevice{W: hexF(d.W), L: hexF(d.L)}
		}
		rep.Cases = append(rep.Cases, gc)
	}
	sort.Slice(rep.Cases, func(i, j int) bool { return rep.Cases[i].Case < rep.Cases[j].Case })
	return rep
}

// DiffGolden compares a live report against the committed one and
// returns one human-readable line per mismatch (empty = bit-identical).
func DiffGolden(want, got *GoldenReport) []string {
	var bad []string
	add := func(format string, args ...interface{}) {
		bad = append(bad, fmt.Sprintf(format, args...))
	}
	if want.Tech != got.Tech {
		add("tech: want %s, got %s", want.Tech, got.Tech)
	}
	for _, k := range sortedStrKeys(want.Spec) {
		if got.Spec[k] != want.Spec[k] {
			add("spec.%s: want %s, got %s", k, want.Spec[k], got.Spec[k])
		}
	}
	if len(want.Cases) != len(got.Cases) {
		add("case count: want %d, got %d", len(want.Cases), len(got.Cases))
		return bad
	}
	for i := range want.Cases {
		w, g := want.Cases[i], got.Cases[i]
		pfx := fmt.Sprintf("case %d", w.Case)
		if w.Case != g.Case {
			add("%s: case number mismatch (got %d)", pfx, g.Case)
			continue
		}
		diffPerf(&bad, pfx+".synthesized", w.Synthesized, g.Synthesized)
		diffPerf(&bad, pfx+".extracted", w.Extracted, g.Extracted)
		if w.LayoutCalls != g.LayoutCalls {
			add("%s.layout_calls: want %d, got %d", pfx, w.LayoutCalls, g.LayoutCalls)
		}
		if w.SizingPasses != g.SizingPasses {
			add("%s.sizing_passes: want %d, got %d", pfx, w.SizingPasses, g.SizingPasses)
		}
		for name, field := range map[string][2]string{
			"itail_a":   {w.Itail, g.Itail},
			"lc_m":      {w.Lc, g.Lc},
			"width_um":  {w.WidthUM, g.WidthUM},
			"height_um": {w.HeightUM, g.HeightUM},
			"area_um2":  {w.AreaUM2, g.AreaUM2},
		} {
			if field[0] != field[1] {
				add("%s.%s: want %s, got %s", pfx, name, field[0], field[1])
			}
		}
		for _, name := range sortedDevKeys(w.Devices) {
			wd, gd := w.Devices[name], g.Devices[name]
			if wd != gd {
				add("%s.devices.%s: want %+v, got %+v", pfx, name, wd, gd)
			}
		}
		if len(g.Devices) != len(w.Devices) {
			add("%s: device count: want %d, got %d", pfx, len(w.Devices), len(g.Devices))
		}
	}
	return bad
}

func diffPerf(bad *[]string, pfx string, w, g GoldenPerf) {
	for _, f := range [...][3]string{
		{"dc_gain_db", w.DCGainDB, g.DCGainDB},
		{"gbw_hz", w.GBW, g.GBW},
		{"phase_margin_deg", w.PhaseDeg, g.PhaseDeg},
		{"slew_rate_v_per_s", w.SlewRate, g.SlewRate},
		{"cmrr_db", w.CMRRDB, g.CMRRDB},
		{"offset_v", w.Offset, g.Offset},
		{"rout_ohm", w.Rout, g.Rout},
		{"noise_rms_v", w.NoiseRMS, g.NoiseRMS},
		{"noise_thermal_v_rthz", w.NoiseTh, g.NoiseTh},
		{"noise_flicker_1hz_v_rthz", w.NoiseFl1, g.NoiseFl1},
		{"power_w", w.Power, g.Power},
	} {
		if f[1] != f[2] {
			*bad = append(*bad, fmt.Sprintf("%s.%s: want %s, got %s", pfx, f[0], f[1], f[2]))
		}
	}
}

func sortedStrKeys(m map[string]string) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

func sortedDevKeys(m map[string]GoldenDevice) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
