package sim

import (
	"fmt"
	"math"
	"math/cmplx"

	"loas/internal/circuit"
	"loas/internal/linalg"
)

// acStamps is the linearized circuit at a DC operating point, precompiled
// into flat stamp lists so a frequency sweep only re-assembles jωC terms.
type acStamps struct {
	e *Engine
	// conductance entries G[i][j] += g (i, j are unknown indices ≥ 0).
	gRow, gCol []int
	gVal       []float64
	// capacitance entries Y[i][j] += jω·c.
	cRow, cCol []int
	cVal       []float64
	// constant ±1 incidence entries (voltage source branches etc.).
	uRow, uCol []int
	uVal       []float64
	// AC excitation vector (frequency-independent phasors).
	rhs []complex128
}

// addG accumulates the two-terminal conductance stamp between unknowns a,b.
func (s *acStamps) addG(a, b int, g float64) {
	s.add4(&s.gRow, &s.gCol, &s.gVal, a, b, g)
}

// addC accumulates the two-terminal capacitance stamp between unknowns a,b.
func (s *acStamps) addC(a, b int, c float64) {
	s.add4(&s.cRow, &s.cCol, &s.cVal, a, b, c)
}

func (s *acStamps) add4(rows, cols *[]int, vals *[]float64, a, b int, v float64) {
	if v == 0 {
		return
	}
	if a >= 0 {
		*rows = append(*rows, a)
		*cols = append(*cols, a)
		*vals = append(*vals, v)
		if b >= 0 {
			*rows = append(*rows, a)
			*cols = append(*cols, b)
			*vals = append(*vals, -v)
		}
	}
	if b >= 0 {
		*rows = append(*rows, b)
		*cols = append(*cols, b)
		*vals = append(*vals, v)
		if a >= 0 {
			*rows = append(*rows, b)
			*cols = append(*cols, a)
			*vals = append(*vals, -v)
		}
	}
}

// addEntry records a single raw matrix entry.
func (s *acStamps) addEntry(i, j int, v float64) {
	if i < 0 || j < 0 || v == 0 {
		return
	}
	s.uRow = append(s.uRow, i)
	s.uCol = append(s.uCol, j)
	s.uVal = append(s.uVal, v)
}

// compileAC linearizes the circuit at op.
func (e *Engine) compileAC(op *OPResult) *acStamps {
	s := &acStamps{e: e, rhs: make([]complex128, e.size)}
	ckt := e.Ckt
	for _, el := range ckt.Elements {
		switch t := el.(type) {
		case *circuit.Resistor:
			s.addG(e.unknownOf(t.A), e.unknownOf(t.B), 1/t.R)

		case *circuit.Capacitor:
			s.addC(e.unknownOf(t.A), e.unknownOf(t.B), t.C)

		case *circuit.ISource:
			if t.ACMag != 0 {
				ph := cmplx.Rect(t.ACMag, t.ACPhase*math.Pi/180)
				if a := e.unknownOf(t.Pos); a >= 0 {
					s.rhs[a] -= ph // current leaves Pos through the source
				}
				if b := e.unknownOf(t.Neg); b >= 0 {
					s.rhs[b] += ph
				}
			}

		case *circuit.VSource:
			br := e.branch[t.Name]
			a, b := e.unknownOf(t.Pos), e.unknownOf(t.Neg)
			s.addEntry(a, br, 1)
			s.addEntry(b, br, -1)
			s.addEntry(br, a, 1)
			s.addEntry(br, b, -1)
			if t.ACMag != 0 {
				s.rhs[br] += cmplx.Rect(t.ACMag, t.ACPhase*math.Pi/180)
			}

		case *circuit.VCVS:
			br := e.branch[t.Name]
			a, b := e.unknownOf(t.Pos), e.unknownOf(t.Neg)
			ca, cb := e.unknownOf(t.CPos), e.unknownOf(t.CNeg)
			s.addEntry(a, br, 1)
			s.addEntry(b, br, -1)
			s.addEntry(br, a, 1)
			s.addEntry(br, b, -1)
			s.addEntry(br, ca, -t.Gain)
			s.addEntry(br, cb, t.Gain)

		case *circuit.MOSFET:
			d, g, srcU, bk := e.unknownOf(t.D), e.unknownOf(t.G), e.unknownOf(t.S), e.unknownOf(t.B)
			vd := voltAtNode(op, ckt, t.D)
			vg := voltAtNode(op, ckt, t.G)
			vs := voltAtNode(op, ckt, t.S)
			vb := voltAtNode(op, ckt, t.B)
			_, dd, dg, ds, db := mosPartials(t, vd, vg, vs, vb, e.Temp)
			// Drain current linearization: i_d = dd·vd + dg·vg + ds·vs + db·vb,
			// entering the drain and leaving the source.
			for _, tm := range []struct {
				u int
				p float64
			}{{d, dd}, {g, dg}, {srcU, ds}, {bk, db}} {
				if tm.p == 0 {
					continue
				}
				s.addEntry(d, tm.u, tm.p)
				if srcU >= 0 {
					s.addEntry(srcU, tm.u, -tm.p)
				}
			}
			// Small-signal capacitances at the bias point.
			mop := op.MOSOPs[t.Name]
			cs := t.Dev.Caps(mop, e.Temp)
			s.addC(g, srcU, cs.CGS)
			s.addC(g, d, cs.CGD)
			s.addC(g, bk, cs.CGB)
			s.addC(d, bk, cs.CDB)
			s.addC(srcU, bk, cs.CSB)

		default:
			panic(fmt.Sprintf("sim: unsupported element %T", el))
		}
	}
	return s
}

func voltAtNode(op *OPResult, ckt *circuit.Circuit, node string) float64 {
	i, _ := ckt.NodeIndex(node)
	return op.V[i]
}

// assemble builds the complex MNA matrix at angular frequency w.
func (s *acStamps) assemble(w float64) *linalg.Complex {
	y := linalg.NewComplex(s.e.size)
	for k, v := range s.gVal {
		y.Add(s.gRow[k], s.gCol[k], complex(v, 0))
	}
	for k, v := range s.uVal {
		y.Add(s.uRow[k], s.uCol[k], complex(v, 0))
	}
	for k, v := range s.cVal {
		y.Add(s.cRow[k], s.cCol[k], complex(0, w*v))
	}
	return y
}

// ACResult holds one frequency point.
type ACResult struct {
	Freq float64
	// V holds node phasors indexed by circuit node index (0 = ground).
	V []complex128
}

// Volt returns the phasor at a named node.
func (r *ACResult) Volt(ckt *circuit.Circuit, node string) complex128 {
	i, ok := ckt.NodeIndex(node)
	if !ok {
		return cmplx.NaN()
	}
	if i == 0 {
		return 0
	}
	return r.V[i]
}

// ACSolver is a compiled small-signal linearization at one operating
// point. Compiling once and solving many frequency points skips the
// per-call re-linearization (every MOSFET's central-difference partials
// and capacitances) that AC pays on each invocation; the per-frequency
// assembly and factorization are unchanged, so the phasors are
// bit-identical to a fresh AC call at the same operating point.
type ACSolver struct {
	e  *Engine
	st *acStamps
}

// PrepareAC linearizes the circuit at op once, for repeated Solve calls.
func (e *Engine) PrepareAC(op *OPResult) *ACSolver {
	return &ACSolver{e: e, st: e.compileAC(op)}
}

// Solve runs the compiled linearization over the given frequencies (Hz).
func (s *ACSolver) Solve(freqs []float64) ([]*ACResult, error) {
	e := s.e
	out := make([]*ACResult, 0, len(freqs))
	for _, f := range freqs {
		y := s.st.assemble(2 * math.Pi * f)
		lu, err := linalg.FactorComplex(y)
		if err != nil {
			return nil, fmt.Errorf("sim: AC matrix singular at %g Hz: %w", f, err)
		}
		x := lu.Solve(s.st.rhs)
		r := &ACResult{Freq: f, V: make([]complex128, e.Ckt.NumNodes())}
		for i := 1; i < e.Ckt.NumNodes(); i++ {
			r.V[i] = x[e.nodeUnknown(i)]
		}
		out = append(out, r)
	}
	return out, nil
}

// AC runs a small-signal analysis at the operating point over the given
// frequencies (Hz). The sources' ACMag/ACPhase fields define the
// excitation.
func (e *Engine) AC(op *OPResult, freqs []float64) ([]*ACResult, error) {
	return e.PrepareAC(op).Solve(freqs)
}

// LogSpace returns n logarithmically spaced frequencies from f1 to f2.
func LogSpace(f1, f2 float64, n int) []float64 {
	if n < 2 {
		return []float64{f1}
	}
	out := make([]float64, n)
	l1, l2 := math.Log10(f1), math.Log10(f2)
	for i := range out {
		out[i] = math.Pow(10, l1+(l2-l1)*float64(i)/float64(n-1))
	}
	return out
}
