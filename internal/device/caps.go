package device

import (
	"math"

	"loas/internal/techno"
)

// CapSet holds the five terminal capacitances of a MOS transistor at a
// bias point (F). All values are non-negative.
type CapSet struct {
	CGS, CGD, CGB float64
	CDB, CSB      float64
}

// Total returns the sum of all five capacitances (used in sanity checks).
func (c CapSet) Total() float64 { return c.CGS + c.CGD + c.CGB + c.CDB + c.CSB }

// Caps evaluates the terminal capacitances at an operating point. The
// intrinsic gate capacitance uses the classical Meyer partition with a
// smooth inversion blend; junction capacitances use the instance diffusion
// geometry, which is how layout folding feeds back into the electrical
// model.
func (m *MOS) Caps(op OP, temp float64) CapSet {
	c := m.Card
	mult := m.M()
	coxTot := c.Cox * m.W * m.Leff() * mult

	vt := techno.ThermalVoltage(temp)
	n := 1 + c.Gamma/(2*math.Sqrt(c.Phi))

	// Degree of inversion: 0 deep off → 1 strong inversion; transition
	// width tracks the subthreshold slope.
	sInv := 1 / (1 + math.Exp(-op.Veff/(2*n*vt)))

	// Meyer partition in inversion.
	vgst := softPlus(op.Veff, 1e-6)
	vds := math.Abs(op.VDS)
	if vds > vgst {
		vds = vgst // saturation clamp
	}
	den := 2*vgst - vds
	var cgsI, cgdI float64
	if den > 1e-12 {
		a := (vgst - vds) / den
		b := vgst / den
		cgsI = (2.0 / 3.0) * coxTot * (1 - a*a)
		cgdI = (2.0 / 3.0) * coxTot * (1 - b*b)
	} else {
		cgsI = 0.5 * coxTot
		cgdI = 0.5 * coxTot
	}

	cs := CapSet{
		CGS: sInv*cgsI + c.CGSO*m.W*mult,
		CGD: sInv*cgdI + c.CGDO*m.W*mult,
		CGB: (1-sInv)*coxTot + c.CGBO*m.L*mult,
	}
	if op.Swapped {
		cs.CGS, cs.CGD = cs.CGD, cs.CGS
	}

	// Junction capacitances. Reverse bias of drain-bulk is −VBD; device
	// sign handled by mirroring: for NMOS reverse bias = VD−VB, for PMOS
	// = VB−VD.
	sign := c.VTSign()
	vrevD := sign * (op.VDS - op.VBS) // = (vd−vb)·sign
	vrevS := sign * (-op.VBS)         // = (vs−vb)·sign
	cs.CDB = mult * junctionCap(c, m.Geom.AD, m.Geom.PD, vrevD)
	cs.CSB = mult * junctionCap(c, m.Geom.AS, m.Geom.PS, vrevS)
	return cs
}

// junctionCap returns the depletion capacitance of a junction with bottom
// area a and sidewall perimeter p at reverse bias vrev (positive =
// reverse). Forward bias is linearized below PB/2, as SPICE does, to keep
// the value finite.
func junctionCap(c *techno.MOSCard, a, p, vrev float64) float64 {
	grade := func(c0, m float64) float64 {
		const fc = 0.5
		if vrev > -fc*c.PB {
			return c0 / math.Pow(1+vrev/c.PB, m)
		}
		// Linear extrapolation beyond the forward-bias clamp point.
		f := math.Pow(1-fc, -m)
		return c0 * f * (1 + m*(-vrev/c.PB-fc)/(1-fc))
	}
	return a*grade(c.CJ, c.MJ) + p*grade(c.CJSW, c.MJSW)
}

// GateCap returns the total gate capacitance (CGS+CGD+CGB) in strong
// inversion saturation, the quantity the sizing tool uses for quick
// loading estimates before a full bias point exists.
func (m *MOS) GateCap() float64 {
	c := m.Card
	return (2.0/3.0)*c.Cox*m.W*m.Leff()*m.M() + (c.CGSO+c.CGDO)*m.W*m.M() + c.CGBO*m.L*m.M()
}
