package techno

import (
	"math"
	"strings"
	"testing"
)

func TestDefault060Valid(t *testing.T) {
	tech := Default060()
	if err := tech.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDefault060Plausibility(t *testing.T) {
	tech := Default060()
	// Cox from 12 nm oxide ≈ 2.88 fF/µm².
	if tech.N.Cox < 2.5e-3 || tech.N.Cox > 3.2e-3 {
		t.Fatalf("Cox = %g F/m² implausible for 0.6 µm", tech.N.Cox)
	}
	if tech.N.KP <= tech.P.KP {
		t.Fatal("electron mobility should beat holes")
	}
	if tech.P.KF >= tech.N.KF {
		t.Fatal("buried-channel PMOS should have less flicker noise")
	}
	if tech.Feature != 0.6*Micron {
		t.Fatalf("feature = %g", tech.Feature)
	}
}

func TestThermalVoltage(t *testing.T) {
	vt := ThermalVoltage(TempNominal)
	if math.Abs(vt-0.02585) > 3e-4 {
		t.Fatalf("kT/q at 300 K = %g, want ≈ 25.9 mV", vt)
	}
}

func TestVTSign(t *testing.T) {
	tech := Default060()
	if tech.N.VTSign() != 1 || tech.P.VTSign() != -1 {
		t.Fatal("device-type signs wrong")
	}
}

func TestCard(t *testing.T) {
	tech := Default060()
	if tech.Card(NMOS) != &tech.N || tech.Card(PMOS) != &tech.P {
		t.Fatal("Card returned wrong pointers")
	}
}

func TestSnapNM(t *testing.T) {
	r := &Rules{Grid: 50}
	cases := []struct{ in, up, down int64 }{
		{0, 0, 0},
		{1, 50, 0},
		{49, 50, 0},
		{50, 50, 50},
		{51, 100, 50},
		{-1, -50, 0},
		{-51, -100, -50},
	}
	for _, c := range cases {
		if got := r.SnapNM(c.in); got != c.up {
			t.Errorf("SnapNM(%d) = %d, want %d", c.in, got, c.up)
		}
		if got := r.SnapDownNM(c.in); got != c.down {
			t.Errorf("SnapDownNM(%d) = %d, want %d", c.in, got, c.down)
		}
	}
	// Degenerate grid: passthrough.
	r1 := &Rules{Grid: 1}
	if r1.SnapNM(37) != 37 {
		t.Fatal("grid 1 should not snap")
	}
}

func TestUnitConversions(t *testing.T) {
	if MetersToNM(1.5*Micron) != 1500 {
		t.Fatalf("1.5 µm = %d nm", MetersToNM(1.5*Micron))
	}
	if NMToMeters(1500) != 1.5e-6 {
		t.Fatalf("1500 nm = %g m", NMToMeters(1500))
	}
}

func TestLayerNames(t *testing.T) {
	for l := Layer(0); l < NumLayers; l++ {
		if strings.HasPrefix(l.String(), "layer(") {
			t.Fatalf("layer %d has no name", int(l))
		}
	}
	if !strings.HasPrefix(Layer(99).String(), "layer(") {
		t.Fatal("out-of-range layer should fall back")
	}
	if NMOS.String() != "nmos" || PMOS.String() != "pmos" {
		t.Fatal("MOSType names wrong")
	}
}

func TestValidateCatchesBrokenCards(t *testing.T) {
	breakers := []func(*Tech){
		func(x *Tech) { x.N.VT0 = -1 },
		func(x *Tech) { x.P.KP = 0 },
		func(x *Tech) { x.N.Cox = 0 },
		func(x *Tech) { x.P.PB = 0 },
		func(x *Tech) { x.N.VAL = 0 },
		func(x *Tech) { x.Rules.Grid = 0 },
		func(x *Tech) { x.Wire.JMax = 0 },
		func(x *Tech) { x.Feature = 0 },
	}
	for i, brk := range breakers {
		tech := Default060()
		brk(tech)
		if err := tech.Validate(); err == nil {
			t.Fatalf("breaker %d not caught", i)
		}
	}
}

func TestCorners(t *testing.T) {
	tech := Default060()
	ss, err := tech.AtCorner(CornerSS)
	if err != nil {
		t.Fatal(err)
	}
	ff, err := tech.AtCorner(CornerFF)
	if err != nil {
		t.Fatal(err)
	}
	if ss.N.VT0 <= tech.N.VT0 || ss.N.KP >= tech.N.KP {
		t.Fatal("SS corner should be slower")
	}
	if ff.N.VT0 >= tech.N.VT0 || ff.N.KP <= tech.N.KP {
		t.Fatal("FF corner should be faster")
	}
	sf, _ := tech.AtCorner(CornerSF)
	if sf.N.KP >= tech.N.KP || sf.P.KP <= tech.P.KP {
		t.Fatal("SF corner mixes wrong")
	}
	tt, _ := tech.AtCorner(CornerTT)
	if tt.N.VT0 != tech.N.VT0 {
		t.Fatal("TT must be nominal")
	}
	if _, err := tech.AtCorner("zz"); err == nil {
		t.Fatal("unknown corner accepted")
	}
	// The original card must be untouched.
	if tech.N.VT0 != 0.75 {
		t.Fatal("AtCorner mutated the base technology")
	}
}
