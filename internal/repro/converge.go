package repro

import (
	"fmt"
	"strings"

	"loas/internal/core"
	"loas/internal/layout/extract"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// ConvergencePoint is one sizing↔layout iteration of the case-4 loop.
type ConvergencePoint struct {
	Call    int
	DeltaF  float64 // MaxDelta vs the previous report (F); NaN for call 1
	OutCapF float64
	FN1CapF float64
	W1      float64 // input pair width (m)
	Lc      float64
	Itail   float64
}

// ConvergenceTrace replays the paper's "repeated till the calculated
// parasitics remain unchanged" loop, recording every layout call — the
// experiment behind the "three calls of the layout tool were needed"
// sentence in §5.
func ConvergenceTrace(tech *techno.Tech, spec sizing.OTASpec, maxCalls int) ([]ConvergencePoint, error) {
	ps, err := sizing.Case(4)
	if err != nil {
		return nil, err
	}
	var out []ConvergencePoint
	var par *extract.Parasitics
	for call := 1; call <= maxCalls; call++ {
		ps.Report = par
		d, err := sizing.SizeFoldedCascode(tech, spec, ps)
		if err != nil {
			return nil, err
		}
		plan, err := d.Layout().Plan(tech, core.Options{}.Shape)
		if err != nil {
			return nil, err
		}
		np := plan.Parasitics
		pt := ConvergencePoint{
			Call:    call,
			OutCapF: np.TotalNetCap(sizing.NetOut),
			FN1CapF: np.TotalNetCap(sizing.NetFN1),
			W1:      d.Devices[sizing.MP1].W,
			Lc:      d.Lc,
			Itail:   d.Itail,
		}
		if par != nil {
			pt.DeltaF = extract.MaxDelta(par, np)
		} else {
			pt.DeltaF = -1
		}
		out = append(out, pt)
		if par != nil && pt.DeltaF < 1e-15 {
			break
		}
		par = np
	}
	return out, nil
}

// ConvergenceText renders the trace.
func ConvergenceText(pts []ConvergencePoint) string {
	var b strings.Builder
	b.WriteString("Parasitic convergence (case-4 loop)\n")
	b.WriteString("  call   Δ(fF)   C(out) fF  C(fn1) fF   W1 (µm)   Lc (µm)  Itail (µA)\n")
	for _, p := range pts {
		delta := "    —"
		if p.DeltaF >= 0 {
			delta = fmt.Sprintf("%7.2f", p.DeltaF*1e15)
		}
		fmt.Fprintf(&b, "  %4d %s %10.1f %10.1f %9.2f %9.2f %10.1f\n",
			p.Call, delta, p.OutCapF*1e15, p.FN1CapF*1e15,
			p.W1*1e6, p.Lc*1e6, p.Itail*1e6)
	}
	return b.String()
}

// EvalAblation compares the three phase-margin views of one design: the
// closed-form pole-counting estimate, the simulated evaluation the plan
// uses, and the extracted-netlist measurement — quantifying why the plan
// evaluates on the simulator (the paper's shared-models accuracy
// argument).
type EvalAblation struct {
	PMAnalytic  float64
	PMSimulated float64
	PMExtracted float64
}

// RunEvalAblation runs the case-4 synthesis once and reports the three
// phase margins.
func RunEvalAblation(tech *techno.Tech, spec sizing.OTASpec) (*EvalAblation, error) {
	res, err := core.Synthesize(tech, spec, core.Options{Case: 4})
	if err != nil {
		return nil, err
	}
	return &EvalAblation{
		PMAnalytic:  res.Design.PMAnalytic,
		PMSimulated: res.Design.Predicted.PhaseDeg,
		PMExtracted: res.Extracted.PhaseDeg,
	}, nil
}
