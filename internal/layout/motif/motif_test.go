package motif

import (
	"math"
	"testing"

	"loas/internal/device"
	"loas/internal/techno"
)

const um = techno.Micron

func defaultSpec() Spec {
	return Spec{
		Name: "m1", Type: techno.NMOS,
		W: 48 * um, L: 1 * um, Folds: 4, Style: device.DrainInternal,
		DrainNet: "out", GateNet: "in", SourceNet: "gnd", BulkNet: "gnd",
		IDrain: 200e-6,
	}
}

func TestBuildBasics(t *testing.T) {
	tech := techno.Default060()
	m, err := Build(tech, defaultSpec())
	if err != nil {
		t.Fatal(err)
	}
	if m.Width <= 0 || m.Height <= 0 {
		t.Fatalf("degenerate cell %dx%d", m.Width, m.Height)
	}
	// Expected width: 4 gates + 5 strips.
	want := 4*1000 + 5*1700
	if int64(want) > m.Width {
		t.Fatalf("width %d below active row %d", m.Width, want)
	}
	// All four ports present.
	for _, p := range []string{"D", "G", "S", "B"} {
		found := false
		for _, port := range m.Cell.Ports {
			if port.Name == p {
				found = true
			}
		}
		if !found {
			t.Fatalf("port %s missing", p)
		}
	}
	if err := m.Cell.CheckGrid(tech.Rules.Grid); err != nil {
		t.Fatal(err)
	}
}

func TestBuildGeomMatchesPlan(t *testing.T) {
	// The geometry handed to the sizing tool must match the fold plan.
	tech := techno.Default060()
	spec := defaultSpec()
	m, err := Build(tech, spec)
	if err != nil {
		t.Fatal(err)
	}
	want := device.PlanFolds(&tech.Rules, spec.W, spec.Folds, spec.Style).Geom(tech)
	if m.Geom != want {
		t.Fatalf("geom %+v != plan %+v", m.Geom, want)
	}
}

func TestBuildFoldCountsShapes(t *testing.T) {
	tech := techno.Default060()
	spec := defaultSpec()
	m1, _ := Build(tech, spec)
	spec.Folds = 8
	m8, _ := Build(tech, spec)
	if m8.Width <= m1.Width {
		t.Fatal("more folds must widen the cell")
	}
	if m8.Height >= m1.Height {
		t.Fatal("more folds must shorten the cell")
	}
}

func TestBuildPolyCount(t *testing.T) {
	tech := techno.Default060()
	spec := defaultSpec()
	spec.Folds = 6
	m, _ := Build(tech, spec)
	fingers := 0
	for _, s := range m.Cell.Shapes {
		if s.Layer == techno.LayerPoly && s.R.W() < s.R.H() {
			fingers++
		}
	}
	if fingers != 6 {
		t.Fatalf("poly fingers = %d, want 6", fingers)
	}
}

func TestBuildPMOSGetsWell(t *testing.T) {
	tech := techno.Default060()
	spec := defaultSpec()
	spec.Type = techno.PMOS
	spec.SourceNet, spec.BulkNet = "vdd", "vdd"
	m, err := Build(tech, spec)
	if err != nil {
		t.Fatal(err)
	}
	a, p := m.WellAreaM2()
	if a <= 0 || p <= 0 {
		t.Fatal("PMOS must have an n-well")
	}
	bb := m.Cell.BBox()
	// Well encloses everything: bbox is the well itself.
	var well *techno.Layer
	for _, s := range m.Cell.Shapes {
		if s.Layer == techno.LayerNWell {
			l := s.Layer
			well = &l
			if s.R != bb {
				t.Fatalf("well %v does not bound the cell %v", s.R, bb)
			}
		}
	}
	if well == nil {
		t.Fatal("no n-well shape")
	}
}

func TestBuildNMOSNoWell(t *testing.T) {
	tech := techno.Default060()
	m, _ := Build(tech, defaultSpec())
	if a, _ := m.WellAreaM2(); a != 0 {
		t.Fatal("NMOS must not have an n-well")
	}
}

func TestWireWidthFollowsCurrent(t *testing.T) {
	tech := techno.Default060()
	// 1 mA at 1 mA/µm → 1 µm > min 0.8 µm.
	if w := WireWidthNM(tech, 1e-3); w != 1000 {
		t.Fatalf("1 mA wire = %d nm, want 1000", w)
	}
	// Small current → minimum width.
	if w := WireWidthNM(tech, 1e-6); w != tech.Rules.Metal1Width {
		t.Fatalf("tiny current wire = %d nm, want min", w)
	}
	// 5 mA → 5 µm.
	if w := WireWidthNM(tech, 5e-3); w != 5000 {
		t.Fatalf("5 mA wire = %d nm, want 5000", w)
	}
}

func TestContactsForCurrent(t *testing.T) {
	tech := techno.Default060()
	if n := ContactsForCurrent(tech, 0, 10); n != 1 {
		t.Fatalf("zero current: %d contacts, want 1", n)
	}
	if n := ContactsForCurrent(tech, 2e-3, 10); n != 3 {
		t.Fatalf("2 mA at 0.8 mA/contact: %d, want 3", n)
	}
	if n := ContactsForCurrent(tech, 50e-3, 10); n != 10 {
		t.Fatalf("clamps at fit: %d, want 10", n)
	}
}

func TestBuildHighCurrentWidensRails(t *testing.T) {
	tech := techno.Default060()
	lo := defaultSpec()
	lo.IDrain = 10e-6
	hi := defaultSpec()
	hi.IDrain = 5e-3
	mLo, _ := Build(tech, lo)
	mHi, _ := Build(tech, hi)
	railH := func(m *Motif) int64 {
		var best int64
		for _, s := range m.Cell.Shapes {
			if s.Layer == techno.LayerMetal1 && s.Net == "out" && s.R.W() > s.R.H() {
				if s.R.H() > best {
					best = s.R.H()
				}
			}
		}
		return best
	}
	if railH(mHi) <= railH(mLo) {
		t.Fatalf("5 mA drain rail %d nm not wider than 10 µA rail %d nm",
			railH(mHi), railH(mLo))
	}
	if mHi.ContactsPerStrip <= mLo.ContactsPerStrip {
		t.Fatal("high current should add contacts")
	}
}

func TestBuildRejectsBadSpec(t *testing.T) {
	tech := techno.Default060()
	spec := defaultSpec()
	spec.W = 0
	if _, err := Build(tech, spec); err == nil {
		t.Fatal("zero width accepted")
	}
}

func TestRailCapPositive(t *testing.T) {
	tech := techno.Default060()
	m, _ := Build(tech, defaultSpec())
	for _, net := range []string{"out", "gnd"} {
		if m.RailCap[net] <= 0 {
			t.Fatalf("rail cap on %s = %g", net, m.RailCap[net])
		}
	}
	// Sanity: internal wiring of a 50 µm device is tens of fF at most.
	if m.RailCap["out"] > 100e-15 {
		t.Fatalf("drain wiring cap implausibly large: %g", m.RailCap["out"])
	}
	if math.IsNaN(m.RailCap["out"]) {
		t.Fatal("NaN rail cap")
	}
}
