package obs

import (
	"context"
	"runtime/pprof"
	"time"
)

// Profiler labels tie the pipeline's logical structure to the runtime's
// sample-based profiles: the daemon labels each run's context with
// phase/topology/layout/run_id, the worker pool adopts those labels for
// the job's duration, and every engine phase layers its own phase label
// on top. A CPU or heap profile captured through /debug/pprof then
// slices by pipeline stage — `go tool pprof -tagfocus phase=sizing` —
// instead of by call stack alone.

// phaseBuckets resolve microsecond-scale MC samples up to multi-second
// refined sizing rounds.
var phaseBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// phaseSeconds aggregates per-phase wall time process-wide — the
// loas_phase_seconds{phase=...} histogram family on /metrics. Every
// Phase call feeds it, whichever server or CLI invocation is running.
var phaseSeconds = Default.HistogramVec("loas_phase_seconds",
	"wall-clock time of pipeline phases (sizing, layout-extract, verification, corners, MC samples), by phase",
	"phase", phaseBuckets)

// LabelCtx returns ctx carrying the given pprof label pairs merged over
// any labels already present. Empty values are skipped so callers can
// pass optional attributes unconditionally. A nil ctx starts from
// Background.
func LabelCtx(ctx context.Context, kv ...string) context.Context {
	if ctx == nil {
		ctx = context.Background()
	}
	pairs := make([]string, 0, len(kv))
	for i := 0; i+1 < len(kv); i += 2 {
		if kv[i] != "" && kv[i+1] != "" {
			pairs = append(pairs, kv[i], kv[i+1])
		}
	}
	if len(pairs) == 0 {
		return ctx
	}
	return pprof.WithLabels(ctx, pprof.Labels(pairs...))
}

// Phase runs fn as one named pipeline phase: for fn's duration the
// goroutine carries `phase=name` layered over ctx's labels (so profile
// samples attribute to the stage), and the phase's wall time lands in
// loas_phase_seconds{phase=name}.
func Phase(ctx context.Context, name string, fn func()) {
	if ctx == nil {
		ctx = context.Background()
	}
	start := time.Now()
	pprof.Do(ctx, pprof.Labels("phase", name), func(context.Context) { fn() })
	phaseSeconds.With(name).Observe(time.Since(start).Seconds())
}
