// Package circuit holds the netlist representation shared by the sizing
// tool, the layout generators and the simulator: named nodes, passive
// elements, independent sources and MOS instances. It deliberately looks
// like a SPICE deck turned into data; Export writes one back out.
package circuit

import (
	"fmt"
	"sort"
	"strings"

	"loas/internal/device"
)

// Ground is the reference node name; "gnd" is accepted as an alias.
const Ground = "0"

// Element is anything that can live in a netlist.
type Element interface {
	// ElemName returns the instance name (unique within a circuit).
	ElemName() string
	// ElemNodes returns the connected node names in terminal order.
	ElemNodes() []string
	// Card returns the element's SPICE-like card for export.
	Card() string
}

// Resistor is a linear resistor between nodes A and B.
type Resistor struct {
	Name string
	A, B string
	R    float64 // Ω
}

// ElemName implements Element.
func (r *Resistor) ElemName() string { return r.Name }

// ElemNodes implements Element.
func (r *Resistor) ElemNodes() []string { return []string{r.A, r.B} }

// Card implements Element.
func (r *Resistor) Card() string { return fmt.Sprintf("R%s %s %s %.6g", r.Name, r.A, r.B, r.R) }

// Capacitor is a linear capacitor between nodes A and B.
type Capacitor struct {
	Name string
	A, B string
	C    float64 // F
}

// ElemName implements Element.
func (c *Capacitor) ElemName() string { return c.Name }

// ElemNodes implements Element.
func (c *Capacitor) ElemNodes() []string { return []string{c.A, c.B} }

// Card implements Element.
func (c *Capacitor) Card() string { return fmt.Sprintf("C%s %s %s %.6g", c.Name, c.A, c.B, c.C) }

// VSource is an independent voltage source. DC sets the operating point;
// ACMag/ACPhase drive small-signal analyses; Pulse (optional) drives
// transient analysis.
type VSource struct {
	Name     string
	Pos, Neg string
	DC       float64
	ACMag    float64
	ACPhase  float64 // degrees
	Pulse    *Pulse
}

// Pulse describes a SPICE-style pulse waveform for transient analysis.
// A zero Width means the pulse never falls back (the SPICE default of
// "width = simulation stop time").
type Pulse struct {
	V1, V2 float64 // initial and pulsed value
	Delay  float64 // s
	Rise   float64 // s
	Fall   float64 // s
	Width  float64 // s; 0 = hold V2 forever
	Period float64 // s; 0 = single pulse
}

// At evaluates the pulse at time t.
func (p *Pulse) At(t float64) float64 {
	if p == nil {
		return 0
	}
	t -= p.Delay
	if t < 0 {
		return p.V1
	}
	if p.Period > 0 {
		for t >= p.Period {
			t -= p.Period
		}
	}
	switch {
	case t < p.Rise:
		if p.Rise <= 0 {
			return p.V2
		}
		return p.V1 + (p.V2-p.V1)*t/p.Rise
	case p.Width <= 0, t < p.Rise+p.Width:
		return p.V2
	case t < p.Rise+p.Width+p.Fall:
		if p.Fall <= 0 {
			return p.V1
		}
		return p.V2 + (p.V1-p.V2)*(t-p.Rise-p.Width)/p.Fall
	default:
		return p.V1
	}
}

// ElemName implements Element.
func (v *VSource) ElemName() string { return v.Name }

// ElemNodes implements Element.
func (v *VSource) ElemNodes() []string { return []string{v.Pos, v.Neg} }

// Card implements Element.
func (v *VSource) Card() string {
	s := fmt.Sprintf("V%s %s %s DC %.6g", v.Name, v.Pos, v.Neg, v.DC)
	if v.ACMag != 0 {
		s += fmt.Sprintf(" AC %.6g %.6g", v.ACMag, v.ACPhase)
	}
	return s
}

// Value returns the source value at time t (DC when no pulse is set).
func (v *VSource) Value(t float64) float64 {
	if v.Pulse != nil {
		return v.Pulse.At(t)
	}
	return v.DC
}

// ISource is an independent current source pushing current from Pos to Neg
// through the source (i.e. conventional current exits at Neg).
type ISource struct {
	Name     string
	Pos, Neg string
	DC       float64
	ACMag    float64
	ACPhase  float64
	Pulse    *Pulse
}

// ElemName implements Element.
func (i *ISource) ElemName() string { return i.Name }

// ElemNodes implements Element.
func (i *ISource) ElemNodes() []string { return []string{i.Pos, i.Neg} }

// Card implements Element.
func (i *ISource) Card() string {
	s := fmt.Sprintf("I%s %s %s DC %.6g", i.Name, i.Pos, i.Neg, i.DC)
	if i.ACMag != 0 {
		s += fmt.Sprintf(" AC %.6g %.6g", i.ACMag, i.ACPhase)
	}
	return s
}

// Value returns the source value at time t.
func (i *ISource) Value(t float64) float64 {
	if i.Pulse != nil {
		return i.Pulse.At(t)
	}
	return i.DC
}

// MOSFET is a transistor instance.
type MOSFET struct {
	Name       string
	D, G, S, B string
	Dev        device.MOS
}

// ElemName implements Element.
func (m *MOSFET) ElemName() string { return m.Name }

// ElemNodes implements Element.
func (m *MOSFET) ElemNodes() []string { return []string{m.D, m.G, m.S, m.B} }

// Card implements Element.
func (m *MOSFET) Card() string {
	g := m.Dev.Geom
	return fmt.Sprintf("M%s %s %s %s %s %s W=%.4gu L=%.4gu AD=%.4gp PD=%.4gu AS=%.4gp PS=%.4gu M=%g",
		m.Name, m.D, m.G, m.S, m.B, m.Dev.Card.Type,
		m.Dev.W*1e6, m.Dev.L*1e6, g.AD*1e12, g.PD*1e6, g.AS*1e12, g.PS*1e6, m.Dev.M())
}

// VCVS is a voltage-controlled voltage source (E element), used by tests
// and the switched-capacitor macromodels.
type VCVS struct {
	Name       string
	Pos, Neg   string
	CPos, CNeg string
	Gain       float64
}

// ElemName implements Element.
func (e *VCVS) ElemName() string { return e.Name }

// ElemNodes implements Element.
func (e *VCVS) ElemNodes() []string { return []string{e.Pos, e.Neg, e.CPos, e.CNeg} }

// Card implements Element.
func (e *VCVS) Card() string {
	return fmt.Sprintf("E%s %s %s %s %s %.6g", e.Name, e.Pos, e.Neg, e.CPos, e.CNeg, e.Gain)
}

// Circuit is a flat netlist with a node table. The zero value is not
// usable; call New.
type Circuit struct {
	Name     string
	Elements []Element

	nodeIdx   map[string]int
	nodeNames []string
}

// New creates an empty circuit containing only the ground node.
func New(name string) *Circuit {
	c := &Circuit{Name: name, nodeIdx: map[string]int{}}
	c.nodeNames = append(c.nodeNames, Ground)
	c.nodeIdx[Ground] = 0
	c.nodeIdx["gnd"] = 0
	c.nodeIdx["GND"] = 0
	return c
}

// Node interns a node name and returns its index; ground is always 0.
func (c *Circuit) Node(name string) int {
	if i, ok := c.nodeIdx[name]; ok {
		return i
	}
	i := len(c.nodeNames)
	c.nodeNames = append(c.nodeNames, name)
	c.nodeIdx[name] = i
	return i
}

// NodeIndex returns the index of an existing node and whether it exists.
func (c *Circuit) NodeIndex(name string) (int, bool) {
	i, ok := c.nodeIdx[name]
	return i, ok
}

// NodeName returns the name of node index i.
func (c *Circuit) NodeName(i int) string { return c.nodeNames[i] }

// NumNodes returns the node count including ground.
func (c *Circuit) NumNodes() int { return len(c.nodeNames) }

// Add appends elements, interning their nodes, and returns the circuit for
// chaining. Duplicate instance names are rejected with a panic: they are
// programming errors in generators, never runtime conditions.
func (c *Circuit) Add(elems ...Element) *Circuit {
	for _, e := range elems {
		for _, prev := range c.Elements {
			if prev.ElemName() == e.ElemName() && sameKind(prev, e) {
				panic(fmt.Sprintf("circuit %q: duplicate element %q", c.Name, e.ElemName()))
			}
		}
		for _, n := range e.ElemNodes() {
			c.Node(n)
		}
		c.Elements = append(c.Elements, e)
	}
	return c
}

func sameKind(a, b Element) bool { return fmt.Sprintf("%T", a) == fmt.Sprintf("%T", b) }

// FindMOS returns the named transistor or nil.
func (c *Circuit) FindMOS(name string) *MOSFET {
	for _, e := range c.Elements {
		if m, ok := e.(*MOSFET); ok && m.Name == name {
			return m
		}
	}
	return nil
}

// MOSFETs returns all transistors in insertion order.
func (c *Circuit) MOSFETs() []*MOSFET {
	var out []*MOSFET
	for _, e := range c.Elements {
		if m, ok := e.(*MOSFET); ok {
			out = append(out, m)
		}
	}
	return out
}

// VSources returns all voltage sources in insertion order.
func (c *Circuit) VSources() []*VSource {
	var out []*VSource
	for _, e := range c.Elements {
		if v, ok := e.(*VSource); ok {
			out = append(out, v)
		}
	}
	return out
}

// NodeCap sums all two-terminal capacitors attached between node and
// ground plus half of floating caps touching it; a quick loading estimate
// used in tests and sizing heuristics.
func (c *Circuit) NodeCap(node string) float64 {
	var total float64
	for _, e := range c.Elements {
		cap, ok := e.(*Capacitor)
		if !ok {
			continue
		}
		switch {
		case cap.A == node && cap.B == Ground, cap.B == node && cap.A == Ground:
			total += cap.C
		case cap.A == node || cap.B == node:
			total += cap.C
		}
	}
	return total
}

// Export writes the netlist as a SPICE-like deck (deterministic order).
func (c *Circuit) Export() string {
	var b strings.Builder
	fmt.Fprintf(&b, "* %s — exported by loas\n", c.Name)
	for _, e := range c.Elements {
		b.WriteString(e.Card())
		b.WriteByte('\n')
	}
	b.WriteString(".end\n")
	return b.String()
}

// Nodes returns all node names except ground, sorted, for reporting.
func (c *Circuit) Nodes() []string {
	out := make([]string, 0, len(c.nodeNames)-1)
	for _, n := range c.nodeNames[1:] {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
