package core

import (
	"loas/internal/layout"
	"loas/internal/sizing"
)

// Summary is the serializable projection of a Result: everything a
// downstream consumer (the loasd daemon, `loas -json`, a dashboard)
// needs, with none of the live objects (design, netlist, layout plan).
// The JSON tags define the wire format shared by the CLI and the
// server.
type Summary struct {
	Topology string `json:"topology,omitempty"`
	Case     int    `json:"case,omitempty"`
	// Layout names the layout backend that produced the geometry.
	// Present only for non-default backends, keeping the default
	// backend's wire format byte-identical to the pre-registry engine.
	Layout       string             `json:"layout,omitempty"`
	Synthesized  sizing.Performance `json:"synthesized"`
	Extracted    sizing.Performance `json:"extracted"`
	LayoutCalls  int                `json:"layout_calls"`
	SizingPasses int                `json:"sizing_passes"`
	ElapsedMS    float64            `json:"elapsed_ms"`
	WidthUM      float64            `json:"width_um"`
	HeightUM     float64            `json:"height_um"`
	AreaUM2      float64            `json:"area_um2"`
	// Refine carries the closed-loop refinement report (absent for
	// one-shot runs, keeping their wire format byte-identical).
	Refine *RefineReport `json:"refine,omitempty"`
}

// Summary projects the result onto its serializable form. The Case
// field is not known to the Result itself; callers set it afterwards.
func (r *Result) Summary() Summary {
	s := Summary{
		Topology:     r.Topology,
		Synthesized:  r.Synthesized,
		Extracted:    r.Extracted,
		LayoutCalls:  r.LayoutCalls,
		SizingPasses: r.SizingPasses,
		ElapsedMS:    float64(r.Elapsed.Nanoseconds()) / 1e6,
		Refine:       r.Refine,
	}
	if r.LayoutBackend != "" && r.LayoutBackend != layout.DefaultBackend {
		s.Layout = r.LayoutBackend
	}
	if r.Parasitics != nil {
		s.WidthUM = r.Parasitics.WidthUM
		s.HeightUM = r.Parasitics.HeightUM
		s.AreaUM2 = r.Parasitics.AreaUM2
	}
	return s
}
