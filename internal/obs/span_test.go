package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

// fakeClock steps a deterministic wall clock: every reading advances by
// one millisecond, so span durations are exact and repeatable.
func fakeClock() func() time.Time {
	t := time.Unix(0, 0)
	var mu sync.Mutex
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		t = t.Add(time.Millisecond)
		return t
	}
}

// record builds the canonical three-level tree the daemon produces:
// request → {cache-lookup, queue-wait, synthesize → iteration → …}.
func recordTree() []SpanRecord {
	r := NewRecorder()
	r.setClock(fakeClock())
	root := r.Root("request")
	root.SetAttr("kind", "synthesize")
	look := root.Child("cache-lookup")
	look.End()
	q := root.Child("queue-wait")
	q.End()
	syn := root.Child("synthesize")
	for call := 1; call <= 2; call++ {
		it := syn.Child("iteration")
		s := it.Child("sizing")
		s.End()
		l := it.Child("layout-extract")
		l.End()
		it.End()
	}
	syn.End()
	root.End()
	return r.Snapshot()
}

// TestSpanTreeDeterminism: IDs come from the recorder's counter, not
// time or rand, so two identical recordings marshal byte-identically.
func TestSpanTreeDeterminism(t *testing.T) {
	a, err := json.Marshal(recordTree())
	if err != nil {
		t.Fatal(err)
	}
	b, err := json.Marshal(recordTree())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("identical recordings differ:\n%s\n%s", a, b)
	}
}

func TestSpanTreeStructure(t *testing.T) {
	spans := recordTree()
	if len(spans) != 10 {
		t.Fatalf("span count = %d, want 10", len(spans))
	}
	if spans[0].ID != 1 || spans[0].Parent != 0 || spans[0].Name != "request" {
		t.Fatalf("root span = %+v", spans[0])
	}
	if spans[0].Attrs["kind"] != "synthesize" {
		t.Fatalf("root attrs = %v", spans[0].Attrs)
	}
	// IDs are dense and increase in start order; parents precede children.
	byID := map[int]SpanRecord{}
	for i, s := range spans {
		if s.ID != i+1 {
			t.Fatalf("span %d has ID %d, want start-ordered dense IDs", i, s.ID)
		}
		if s.DurationNS <= 0 {
			t.Fatalf("span %q duration = %d, want > 0", s.Name, s.DurationNS)
		}
		byID[s.ID] = s
	}
	for _, s := range spans[1:] {
		if _, ok := byID[s.Parent]; !ok {
			t.Fatalf("span %q references unknown parent %d", s.Name, s.Parent)
		}
	}
	// Children of a span sum to no more than the parent's duration (the
	// fake clock ticks on every reading, so strict accounting holds).
	var childSum int64
	for _, s := range spans {
		if s.Parent == spans[0].ID {
			childSum += s.DurationNS
		}
	}
	if childSum > spans[0].DurationNS {
		t.Fatalf("children (%d ns) exceed root (%d ns)", childSum, spans[0].DurationNS)
	}
}

// TestSpanNilSafety: every method of the nil recorder and nil span is a
// no-op, so unobserved call paths need no branches.
func TestSpanNilSafety(t *testing.T) {
	var r *Recorder
	if got := r.Snapshot(); got != nil {
		t.Fatalf("nil recorder snapshot = %v", got)
	}
	s := r.Root("x")
	if s != nil {
		t.Fatal("nil recorder handed out a non-nil span")
	}
	s.SetAttr("k", "v")
	s.End()
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span duration = %v", d)
	}
	if c := s.Child("y"); c != nil {
		t.Fatal("nil span handed out a non-nil child")
	}
}

// TestSpanConcurrentChildren: fan-out workers opening children of one
// shared parent (the corner/MC pattern) is race-clean and loses nothing.
func TestSpanConcurrentChildren(t *testing.T) {
	r := NewRecorder()
	root := r.Root("request")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("mc-sample")
			c.SetAttr("worker", "w")
			c.End()
		}()
	}
	wg.Wait()
	root.End()
	spans := r.Snapshot()
	if len(spans) != 17 {
		t.Fatalf("span count = %d, want 17", len(spans))
	}
}

// TestSnapshotOpenSpan: a span still open at snapshot time reports its
// elapsed-so-far duration rather than zero.
func TestSnapshotOpenSpan(t *testing.T) {
	r := NewRecorder()
	r.setClock(fakeClock())
	root := r.Root("request")
	spans := r.Snapshot()
	if spans[0].DurationNS <= 0 {
		t.Fatalf("open span duration = %d, want elapsed > 0", spans[0].DurationNS)
	}
	root.End()
	frozen := r.Snapshot()[0].DurationNS
	if again := r.Snapshot()[0].DurationNS; again != frozen {
		t.Fatalf("ended span duration moved: %d then %d", frozen, again)
	}
}

func TestSpanTreeText(t *testing.T) {
	out := SpanTreeText(recordTree())
	for _, want := range []string{"request", "  cache-lookup", "  synthesize", "    iteration", "      sizing", "kind=synthesize"} {
		if !strings.Contains(out, want) {
			t.Fatalf("span tree rendering missing %q:\n%s", want, out)
		}
	}
}

// TestTraceNotify: the live hook fires once per recorded iteration, in
// order, and the trace still accumulates normally.
func TestTraceNotify(t *testing.T) {
	var got []int
	tr := NewTraceFunc(func(it Iteration) { got = append(got, it.Call) })
	for c := 1; c <= 3; c++ {
		tr.Record(Iteration{Call: c})
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("notify calls = %v", got)
	}
	if tr.Len() != 3 {
		t.Fatalf("trace len = %d", tr.Len())
	}
}
