// Incremental layout across the repeated Plan calls of one synthesis
// run. Between consecutive sizing↔layout iterations most modules are
// byte-for-byte unchanged (the sizing pass converges device by device),
// and on the final iterations nothing changes at all. A Session caches:
//
//   - module realizations (Built) keyed by an exact signature of every
//     module parameter plus the shape choice, so only modules whose
//     geometry inputs changed are rebuilt and re-extracted;
//   - the routing step keyed by an exact serialization of the placed
//     cell, net list and channels, so an unchanged placement replays the
//     recorded wire/via shapes and reuses the extracted wiring report;
//   - slicing shape functions (see slicing.ShapeCache).
//
// Every key is an exact rendering of the inputs (hex float64 bit
// patterns, integer nanometres), so a cache hit returns precisely what
// recomputation would — layouts and parasitics stay bit-identical with
// the session on or off. A nil *Session disables everything (the
// reference path of the differential harness).
package cairo

import (
	"sort"
	"strconv"
	"strings"
	"sync"

	"loas/internal/layout/geom"
	"loas/internal/layout/route"
	"loas/internal/layout/slicing"
	"loas/internal/obs"
	"loas/internal/techno"
)

// sessionBypasses counts cache bypasses caused by a Plan call under a
// different technology than the one the session is pinned to. Each
// bypassed build/route/shape lookup increments once; a non-zero value
// means a session is being shared across technologies and caching
// nothing — previously a silent slow path.
var sessionBypasses = obs.Default.Counter("loas_layout_session_bypass_total",
	"layout session cache bypasses due to a technology mismatch")

// Session carries layout caches across Plan calls. Safe for concurrent
// use, but keyed to the first *techno.Tech it sees: a Plan call with a
// different technology bypasses the caches.
type Session struct {
	mu     sync.Mutex
	tech   *techno.Tech
	shapes *slicing.ShapeCache
	builds map[string]*Built
	routes map[string]*routeEntry

	buildHits, buildMisses int64
	routeHits, routeMisses int64
}

// routeEntry records one routing outcome: the shapes the router appended
// to the top cell (wires and vias, in order) and its parasitic report.
// Plan only reads the report, so the entry is shared, not copied.
type routeEntry struct {
	added []geom.Shape
	res   *route.Result
}

// NewSession returns a session with the selected cache layers enabled:
// incremental re-extraction (module builds + routing) and/or slicing
// shape-function caching. NewSession(false, false) — or a nil Session —
// caches nothing.
func NewSession(incremental, shapeCache bool) *Session {
	s := &Session{}
	if incremental {
		s.builds = map[string]*Built{}
		s.routes = map[string]*routeEntry{}
	}
	if shapeCache {
		s.shapes = slicing.NewShapeCache()
	}
	return s
}

// SessionStats is a point-in-time view of cache effectiveness.
type SessionStats struct {
	BuildHits, BuildMisses int64
	RouteHits, RouteMisses int64
	ShapeHits, ShapeMisses int64
}

// Stats reports hit/miss counts for every cache layer.
func (s *Session) Stats() SessionStats {
	if s == nil {
		return SessionStats{}
	}
	s.mu.Lock()
	st := SessionStats{
		BuildHits: s.buildHits, BuildMisses: s.buildMisses,
		RouteHits: s.routeHits, RouteMisses: s.routeMisses,
	}
	s.mu.Unlock()
	st.ShapeHits, st.ShapeMisses, _ = s.shapes.Stats()
	return st
}

// shapeCache returns the slicing cache to use for a Plan call under the
// given technology (nil when disabled or the tech doesn't match).
func (s *Session) shapeCache(tech *techno.Tech) *slicing.ShapeCache {
	if s == nil || !s.bindTech(tech) {
		return nil
	}
	return s.shapes
}

// bindTech pins the session to the first technology it serves; a
// different one disables the caches rather than risking stale geometry.
func (s *Session) bindTech(tech *techno.Tech) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tech == nil {
		s.tech = tech
	}
	if s.tech != tech {
		sessionBypasses.Inc()
		return false
	}
	return true
}

// sigWriter accumulates exact cache-key fragments.
type sigWriter struct{ b strings.Builder }

func (w *sigWriter) str(v string) {
	w.b.WriteString(strconv.Itoa(len(v)))
	w.b.WriteByte(':')
	w.b.WriteString(v)
}
func (w *sigWriter) f64(v float64) {
	w.b.WriteString(strconv.FormatFloat(v, 'x', -1, 64))
	w.b.WriteByte('|')
}
func (w *sigWriter) i64(v int64) {
	w.b.WriteString(strconv.FormatInt(v, 10))
	w.b.WriteByte('|')
}
func (w *sigWriter) boolean(v bool) {
	if v {
		w.b.WriteByte('t')
	} else {
		w.b.WriteByte('f')
	}
}
func (w *sigWriter) rect(r geom.Rect) {
	w.i64(r.L)
	w.i64(r.B)
	w.i64(r.R)
	w.i64(r.T)
}

// moduleSig renders the full parameter set of a known module type; ok is
// false for module implementations the session cannot fingerprint, which
// then build uncached.
func moduleSig(m Module) (sig string, ok bool) {
	var w sigWriter
	switch t := m.(type) {
	case *Transistor:
		w.b.WriteString("xtor|")
		w.str(t.Inst)
		w.i64(int64(t.Type))
		w.f64(t.W)
		w.f64(t.L)
		w.i64(int64(t.Style))
		w.str(t.DrainNet)
		w.str(t.GateNet)
		w.str(t.SourceNet)
		w.str(t.BulkNet)
		w.f64(t.IDrain)
		w.i64(int64(t.MaxFolds))
		w.boolean(t.EvenOnly)
		w.str(t.WellNet)
	case *MatchedStack:
		w.b.WriteString("stack|")
		w.str(t.Label)
		w.i64(int64(t.Type))
		for _, d := range t.Devices {
			w.str(d.Name)
			w.i64(int64(d.Units))
			w.str(d.DrainNet)
			w.str(d.GateNet)
		}
		w.str(t.SourceNet)
		w.str(t.BulkNet)
		w.f64(t.WidthPerBaseUnit)
		w.f64(t.L)
		names := make([]string, 0, len(t.Currents))
		for n := range t.Currents {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			w.str(n)
			w.f64(t.Currents[n])
		}
		w.boolean(t.EndDummies)
		for _, sp := range t.Splits {
			w.i64(int64(sp))
		}
		w.str(t.WellNet)
	case *CapModule:
		w.b.WriteString("cap|")
		w.str(t.Inst)
		w.f64(t.C)
		w.str(t.TopNet)
		w.str(t.BottomNet)
		for _, a := range t.Aspects {
			w.f64(a)
		}
	case *ResistorModule:
		w.b.WriteString("res|")
		w.str(t.Inst)
		w.f64(t.R)
		w.str(t.ANet)
		w.str(t.BNet)
		w.i64(t.WidthNM)
	default:
		return "", false
	}
	return w.b.String(), true
}

// Build realizes one module choice through the session's build cache.
// It is the module-realization entry point for alternative layout
// backends (e.g. the row placer); a nil session builds uncached.
func (s *Session) Build(tech *techno.Tech, m Module, choice int) (*Built, error) {
	return s.build(tech, m, choice)
}

// RouteCached routes the cell through the session's route-replay cache;
// a nil session routes uncached. Exported for alternative layout
// backends, which reuse the channel router and its caching verbatim.
func (s *Session) RouteCached(tech *techno.Tech, cell *geom.Cell, nets []route.Net, channels []route.YRange) (*route.Result, error) {
	return s.routeCached(tech, cell, nets, channels)
}

// build realizes one module choice through the cache. Built values are
// shared across Plan calls: Plan merges (copies) the cell into the top
// cell and only reads the parasitic maps, so reuse is safe.
func (s *Session) build(tech *techno.Tech, m Module, choice int) (*Built, error) {
	if s == nil || s.builds == nil || !s.bindTech(tech) {
		return m.Build(tech, choice)
	}
	sig, ok := moduleSig(m)
	if !ok {
		return m.Build(tech, choice)
	}
	key := sig + "#" + strconv.Itoa(choice)
	s.mu.Lock()
	b, hit := s.builds[key]
	if hit {
		s.buildHits++
	} else {
		s.buildMisses++
	}
	s.mu.Unlock()
	if hit {
		return b, nil
	}
	b, err := m.Build(tech, choice)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.builds[key] = b
	s.mu.Unlock()
	return b, nil
}

// routeKey serializes everything route.Route reads: the placed cell's
// shapes and ports, the net list with currents, and the channel bands.
func routeKey(cell *geom.Cell, nets []route.Net, channels []route.YRange) string {
	var w sigWriter
	w.b.Grow(64 * (len(cell.Shapes) + len(cell.Ports) + len(nets)))
	for _, sh := range cell.Shapes {
		w.i64(int64(sh.Layer))
		w.rect(sh.R)
		w.str(sh.Net)
	}
	w.b.WriteString("P|")
	for _, p := range cell.Ports {
		w.str(p.Name)
		w.str(p.Net)
		w.i64(int64(p.Layer))
		w.rect(p.R)
	}
	w.b.WriteString("N|")
	for _, n := range nets {
		w.str(n.Name)
		w.f64(n.Current)
	}
	w.b.WriteString("C|")
	for _, c := range channels {
		w.i64(c.B)
		w.i64(c.T)
	}
	return w.b.String()
}

// routeCached routes the cell, replaying a recorded outcome when the
// exact placement was routed before. The router mutates the cell only by
// appending shapes, so a replay re-appends the recorded wires and vias
// and skips the channel router and wiring extraction entirely.
func (s *Session) routeCached(tech *techno.Tech, cell *geom.Cell, nets []route.Net, channels []route.YRange) (*route.Result, error) {
	if s == nil || s.routes == nil || !s.bindTech(tech) {
		return route.Route(tech, cell, nets, channels)
	}
	key := routeKey(cell, nets, channels)
	s.mu.Lock()
	e, hit := s.routes[key]
	if hit {
		s.routeHits++
	} else {
		s.routeMisses++
	}
	s.mu.Unlock()
	if hit {
		cell.Shapes = append(cell.Shapes, e.added...)
		return e.res, nil
	}
	before := len(cell.Shapes)
	res, err := route.Route(tech, cell, nets, channels)
	if err != nil {
		return nil, err
	}
	added := append([]geom.Shape(nil), cell.Shapes[before:]...)
	s.mu.Lock()
	s.routes[key] = &routeEntry{added: added, res: res}
	s.mu.Unlock()
	return res, nil
}
