// Package parallel is the execution layer of the synthesis engine: a
// small bounded worker pool used by the embarrassingly parallel
// workloads of the reproduction — Monte-Carlo mismatch sampling
// (mc.RunOffset), process-corner verification (core.CornerSweep), the
// four Table-1 parasitic-awareness cases (core.SynthesizeAll) and the
// proposed-vs-traditional flow comparison (core.CompareFlows).
//
// The pool guarantees, in order of importance for the callers:
//
//   - Bounded concurrency: at most `workers` tasks run at once, each on
//     its own goroutine; excess tasks queue.
//   - Deterministic reduction: results come back indexed by task, so a
//     caller that folds them in index order gets bit-identical floating-
//     point sums regardless of worker count or scheduling.
//   - First-error propagation: the failing task with the lowest index
//     wins, the shared context is cancelled, and tasks that have not
//     started yet are skipped.
//   - Panic containment: a panic inside a task is recovered and
//     surfaced as a *PanicError instead of tearing down the process.
//
// Tasks receive a context derived from the caller's; long tasks should
// poll it. The pool itself never leaks goroutines: MapN returns only
// after every started task has finished.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
)

// PanicError reports a panic recovered inside a worker task.
type PanicError struct {
	Index int    // task index that panicked
	Value any    // the recovered value
	Stack []byte // stack of the panicking goroutine
}

// Error implements the error interface.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", e.Index, e.Value, e.Stack)
}

// MapN runs fn(ctx, i) for i in [0, n) on at most `workers` goroutines
// (workers <= 0 means GOMAXPROCS) and returns the results indexed by i.
//
// The first failing task (lowest index among failures) cancels the
// derived context and its error is returned; tasks that have not started
// by then are skipped and keep the zero result. If the parent context is
// cancelled and no task failed, the context's error is returned. The
// returned slice always has length n so callers can use the successful
// prefix/suffix entries even on error.
func MapN[R any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	if n == 0 {
		return results, ctx.Err()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next     atomic.Int64 // next task index to claim
		mu       sync.Mutex
		firstIdx = -1
		firstErr error
		wg       sync.WaitGroup
	)
	fail := func(i int, err error) {
		mu.Lock()
		if firstIdx == -1 || i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if ctx.Err() != nil {
					return // cancelled: skip everything not yet started
				}
				r, err := protect(ctx, i, fn)
				if err != nil {
					fail(i, err)
					return
				}
				results[i] = r
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return results, firstErr
	}
	return results, ctx.Err()
}

// protect runs one task with panic recovery.
func protect[R any](ctx context.Context, i int, fn func(ctx context.Context, i int) (R, error)) (r R, err error) {
	defer func() {
		if v := recover(); v != nil {
			err = &PanicError{Index: i, Value: v, Stack: debug.Stack()}
		}
	}()
	return fn(ctx, i)
}

// Map applies fn to every item of items under the MapN contract and
// returns the mapped values in item order.
func Map[T, R any](ctx context.Context, workers int, items []T, fn func(ctx context.Context, i int, item T) (R, error)) ([]R, error) {
	return MapN(ctx, workers, len(items), func(ctx context.Context, i int) (R, error) {
		return fn(ctx, i, items[i])
	})
}

// Do runs n result-less tasks under the MapN contract.
func Do(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	_, err := MapN(ctx, workers, n, func(ctx context.Context, i int) (struct{}, error) {
		return struct{}{}, fn(ctx, i)
	})
	return err
}
