package explore

// The guided planner is the result-history half of the subsystem: the
// next probe wave is generated from the current Pareto front rather
// than from a fixed grid. Each non-dominated point contributes four
// deterministic neighbors — its spec with the GBW target pushed up and
// down by the step fraction, and the PM target nudged harder and
// softer — so the search walks outward along the front's trade-off
// directions (faster/more power vs slower/less power; more stable/more
// area vs less). No randomness anywhere: the wave is a pure function
// of the front, so reruns and worker counts cannot change it.

import "loas/internal/sizing"

// Guided-search clamps: targets outside these bounds are not worth
// probing (the sizing plans reject or degenerate there).
const (
	minGBWHz = 1e6
	maxGBWHz = 1e9
	minPMDeg = 40
	maxPMDeg = 85
)

// Neighbors expands the front into the next probe wave: per front
// point, GBW ×(1±step) and PM ±(20·step)°, clamped, deduplicated
// against everything already probed, canonically sorted.
func Neighbors(front []Point, step float64, probed map[string]bool) []sizing.OTASpec {
	var out []sizing.OTASpec
	seen := map[string]bool{}
	for _, p := range front {
		for _, cand := range neighborSpecs(p.Spec, step) {
			k := SpecKey(p.Topology, cand)
			if probed[k] || seen[k] {
				continue
			}
			seen[k] = true
			out = append(out, cand)
		}
	}
	SortSpecs(out)
	return out
}

func neighborSpecs(s sizing.OTASpec, step float64) []sizing.OTASpec {
	var out []sizing.OTASpec
	add := func(mut func(*sizing.OTASpec)) {
		c := s
		mut(&c)
		if c.GBW < minGBWHz || c.GBW > maxGBWHz || c.PM < minPMDeg || c.PM > maxPMDeg {
			return
		}
		if c != s {
			out = append(out, c)
		}
	}
	add(func(c *sizing.OTASpec) { c.GBW = s.GBW * (1 + step) })
	add(func(c *sizing.OTASpec) { c.GBW = s.GBW * (1 - step) })
	add(func(c *sizing.OTASpec) { c.PM = s.PM + 20*step })
	add(func(c *sizing.OTASpec) { c.PM = s.PM - 20*step })
	return out
}
