package serve

import (
	"math"
	"testing"

	"loas/internal/core"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// floatEquiv reports whether two floats produce the same canonical key
// encoding: strconv's 'x' format renders every NaN bit pattern as "NaN"
// and otherwise distinguishes exact bit patterns (so +0 != -0 and 1-ulp
// perturbations differ).
func floatEquiv(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Float64bits(a) == math.Float64bits(b)
}

// specFields flattens an OTASpec into the 8 floats the canonical
// encoding covers, in a fixed order.
func specFields(s sizing.OTASpec) [8]float64 {
	return [8]float64{s.VDD, s.GBW, s.PM, s.CL, s.ICMLow, s.ICMHigh, s.OutLow, s.OutHigh}
}

func specFromFields(f [8]float64) sizing.OTASpec {
	return sizing.OTASpec{
		VDD: f[0], GBW: f[1], PM: f[2], CL: f[3],
		ICMLow: f[4], ICMHigh: f[5], OutLow: f[6], OutHigh: f[7],
	}
}

// FuzzBatchCanonicalKey checks the batch-key contract on real item
// keys: the key is a multiset hash — invariant under any reordering of
// the items, sensitive to multiplicity (adding a duplicate changes the
// workload identity even though it costs no synthesis), and sensitive
// to any change that moves a single item's content address (a case
// flip, or a 1-ulp perturbation of one spec field).
func FuzzBatchCanonicalKey(f *testing.F) {
	f.Add(uint8(1), uint8(2), uint8(3), uint8(1), uint64(0))
	f.Add(uint8(1), uint8(1), uint8(1), uint8(2), uint64(1))
	f.Add(uint8(4), uint8(2), uint8(0), uint8(5), uint64(1)<<63)
	f.Add(uint8(0), uint8(3), uint8(2), uint8(0), uint64(0))

	tech := techno.Default060()
	spec := sizing.Default65MHz()
	f.Fuzz(func(t *testing.T, c1, c2, c3, rot uint8, xorBits uint64) {
		itemKey := func(c uint8, s sizing.OTASpec) string {
			r := SynthesizeRequest{Case: 1 + int(c%4)}
			if err := r.normalize(); err != nil {
				t.Fatal(err)
			}
			return r.cacheKey(tech, s)
		}
		keys := []string{itemKey(c1, spec), itemKey(c2, spec), itemKey(c3, spec)}
		base := batchKey(keys)

		// Order invariance: every rotation and the reversal spell the
		// same workload.
		n := len(keys)
		r := int(rot) % n
		rotated := append(append([]string{}, keys[r:]...), keys[:r]...)
		reversed := []string{keys[2], keys[1], keys[0]}
		for _, alt := range [][]string{rotated, reversed} {
			if batchKey(alt) != base {
				t.Fatalf("reordering %v changed the batch key (base order %v)", alt, keys)
			}
		}

		// Multiplicity: one more copy of an existing item is a different
		// workload; dropping one is too.
		if batchKey(append(append([]string{}, keys...), keys[0])) == base {
			t.Fatal("duplicating an item kept the batch key")
		}
		if batchKey(keys[:2]) == base {
			t.Fatal("dropping an item kept the batch key")
		}

		// Item sensitivity: perturbing one item's spec by the fuzzed bit
		// pattern moves the batch key exactly when it moves the item key.
		spec2 := spec
		spec2.GBW = math.Float64frombits(math.Float64bits(spec.GBW) ^ xorBits)
		perturbed := []string{keys[0], keys[1], itemKey(c3, spec2)}
		wantEqual := floatEquiv(spec.GBW, spec2.GBW)
		if (batchKey(perturbed) == base) != wantEqual {
			t.Fatalf("item-key perturbation equality = %v, want %v (xor %#x)",
				batchKey(perturbed) == base, wantEqual, xorBits)
		}

		// A batch never collides with its own single item's key namespace.
		if batchKey(keys[:1]) == keys[0] {
			t.Fatal("single-item batch key collided with the item key itself")
		}
	})
}

// FuzzCanonicalKey checks the two directions of the content-addressed
// key contract on SynthesizeRequest.cacheKey (after normalize, which is
// how the server always keys — an absent topology is canonicalized to
// the default name before hashing):
//
//   - equal requests (where "equal" treats all NaN bit patterns alike
//     and distinguishes +0 from -0) hash to equal keys, and
//   - perturbing any single spec field — including by one ulp, a sign
//     flip on zero, or into NaN — or any request field, including the
//     topology, changes the key.
//
// The fuzzer drives spec A directly, derives spec B by XORing `xorBits`
// into the bit pattern of field `field%9` (9 selects "no perturbation"),
// and compares key equality against field-wise float equivalence.
//
// The refine parameters get the same treatment: refined and unrefined
// spellings of one case must never collide, a 1-ulp perturbation of
// MarginStep must change the key, and the canonicalized spellings of
// the defaults (absent, ±0) must all land on one cache entry.
func FuzzCanonicalKey(f *testing.F) {
	// Identity, 1-ulp, signed zero, and NaN seeds around the default spec.
	d := specFields(sizing.Default65MHz())
	seed := func(field uint8, xor uint64, caseN, maxCalls uint8, skip bool, topo uint8,
		refine bool, refRounds uint8, stepBits uint64) {
		f.Add(d[0], d[1], d[2], d[3], d[4], d[5], d[6], d[7], field, xor, caseN, maxCalls, skip, topo,
			refine, refRounds, stepBits)
	}
	seed(9, 0, 1, 0, false, 0, false, 0, 0)                            // identical specs, one-shot
	seed(0, 1, 1, 0, false, 0, true, 0, 0)                             // vdd off by one ulp, refined with defaults
	seed(3, 1<<63, 4, 3, true, 1, true, 3, math.Float64bits(1.0))      // cl sign flip, refined at step 1
	seed(6, math.Float64bits(math.NaN()), 2, 0, false, 2, false, 7, 1) // outl -> NaN-ish, inert refine params
	seed(9, 0, 4, 0, false, 0, true, 5, math.Float64bits(0.5))         // refined, custom rounds and step
	z := d
	z[6] = 0
	f.Add(z[0], z[1], z[2], z[3], z[4], z[5], z[6], z[7], uint8(6), uint64(1)<<63, uint8(1), uint8(0), false, uint8(0),
		true, uint8(0), uint64(1)<<63) // +0 vs -0 spec field, -0 margin step

	tech := techno.Default060()
	names := sizing.Topologies()
	f.Fuzz(func(t *testing.T, f0, f1, f2, f3, f4, f5, f6, f7 float64,
		field uint8, xorBits uint64, caseN, maxCalls uint8, skip bool, topo uint8,
		refine bool, refRounds uint8, stepBits uint64) {
		a := [8]float64{f0, f1, f2, f3, f4, f5, f6, f7}
		b := a
		if i := int(field % 9); i < 8 {
			b[i] = math.Float64frombits(math.Float64bits(a[i]) ^ xorBits)
		}

		// Sanitize the refine inputs into normalize's accepted domain,
		// keeping 0 ("use the default") reachable for both sub-params.
		// ±0 and out-of-range bit patterns collapse to 0, which normalize
		// must canonicalize onto the explicit defaults.
		step := math.Float64frombits(stepBits)
		if !(step > 0 && step <= 2) {
			step = 0
		}
		rounds := int(refRounds % 17) // 0 (default) or 1..16
		req := SynthesizeRequest{
			Topology:         names[int(topo)%len(names)],
			Case:             1 + int(caseN%4),
			MaxLayoutCalls:   int(maxCalls % 9),
			SkipVerify:       skip && !refine, // refine rejects skip_verify
			Refine:           refine,
			RefineMaxRounds:  rounds,
			RefineMarginStep: step,
		}
		if err := req.normalize(); err != nil {
			t.Fatalf("normalize rejected a valid request: %v", err)
		}
		keyA := req.cacheKey(tech, specFromFields(a))
		keyB := req.cacheKey(tech, specFromFields(b))

		equiv := true
		for i := range a {
			if !floatEquiv(a[i], b[i]) {
				equiv = false
				break
			}
		}
		if (keyA == keyB) != equiv {
			t.Fatalf("spec equivalence %v but key equality %v\na=%x\nb=%x",
				equiv, keyA == keyB, a, b)
		}

		// Request-field perturbations must always change the key.
		otherTopo := names[(int(topo)+1)%len(names)]
		alts := []SynthesizeRequest{}
		for _, mut := range []func(r *SynthesizeRequest){
			func(r *SynthesizeRequest) { r.Case = 1 + (r.Case % 4) },
			func(r *SynthesizeRequest) { r.MaxLayoutCalls++ },
			func(r *SynthesizeRequest) { r.SkipVerify = !r.SkipVerify },
			func(r *SynthesizeRequest) { r.Topology = otherTopo },
			func(r *SynthesizeRequest) { // refined <-> one-shot, both normalized spellings
				r.Refine = !r.Refine
				if r.Refine {
					r.SkipVerify = false
					r.RefineMaxRounds = core.DefaultRefineMaxRounds
					r.RefineMarginStep = core.DefaultRefineMarginStep
				} else {
					r.RefineMaxRounds = 0
					r.RefineMarginStep = 0
				}
			},
		} {
			alt := req
			mut(&alt)
			alts = append(alts, alt)
		}
		if req.Refine {
			// A 1-ulp nudge of MarginStep or a ±1 on the round budget is a
			// different refinement and must key separately.
			ulp := req
			ulp.RefineMarginStep = math.Float64frombits(math.Float64bits(req.RefineMarginStep) ^ 1)
			rnd := req
			rnd.RefineMaxRounds = 1 + (req.RefineMaxRounds % 16)
			alts = append(alts, ulp, rnd)
		}
		for _, alt := range alts {
			if alt.cacheKey(tech, specFromFields(a)) == keyA {
				t.Fatalf("request perturbation %+v did not change key (base %+v)", alt, req)
			}
		}

		// The canonicalized spellings of the refine defaults — absent
		// sub-params, explicit defaults, and a -0 margin step — must all
		// land on req's cache entry when they describe the same request.
		if req.Refine {
			for _, spell := range []SynthesizeRequest{
				{Topology: req.Topology, Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls,
					Refine: true},
				{Topology: req.Topology, Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls,
					Refine: true, RefineMaxRounds: req.RefineMaxRounds, RefineMarginStep: math.Copysign(0, -1)},
			} {
				if err := spell.normalize(); err != nil {
					t.Fatal(err)
				}
				wantEq := spell.RefineMaxRounds == req.RefineMaxRounds &&
					spell.RefineMarginStep == req.RefineMarginStep &&
					math.Signbit(spell.RefineMarginStep) == math.Signbit(req.RefineMarginStep)
				if (spell.cacheKey(tech, specFromFields(a)) == keyA) != wantEq {
					t.Fatalf("canonicalized refine spelling %+v key equality != %v (base %+v)", spell, wantEq, req)
				}
			}
		} else {
			// Sub-parameters are inert without refine=true: any values
			// normalize to the one unrefined entry.
			inert := SynthesizeRequest{Topology: req.Topology, Case: req.Case,
				MaxLayoutCalls: req.MaxLayoutCalls, SkipVerify: req.SkipVerify,
				RefineMaxRounds: 12, RefineMarginStep: 1.75}
			if err := inert.normalize(); err != nil {
				t.Fatal(err)
			}
			if inert.cacheKey(tech, specFromFields(a)) != keyA {
				t.Fatal("inert refine sub-params leaked into the unrefined cache key")
			}
		}

		// An absent topology must key identically to the explicit default
		// (normalize canonicalizes it), so existing clients keep their
		// warm cache entries.
		absent := SynthesizeRequest{Case: req.Case, MaxLayoutCalls: req.MaxLayoutCalls, SkipVerify: req.SkipVerify,
			Refine: req.Refine, RefineMaxRounds: req.RefineMaxRounds, RefineMarginStep: req.RefineMarginStep}
		if err := absent.normalize(); err != nil {
			t.Fatal(err)
		}
		wantEqual := req.Topology == sizing.DefaultTopology
		if (absent.cacheKey(tech, specFromFields(a)) == keyA) != wantEqual {
			t.Fatalf("absent-topology key equality = %v, want %v (topology %q)",
				!wantEqual, wantEqual, req.Topology)
		}

		// Different endpoint kinds must never collide even on one spec.
		t1 := Table1Request{}
		if t1.cacheKey(tech, specFromFields(a)) == keyA {
			t.Fatal("table1 key collided with synthesize key")
		}
	})
}
