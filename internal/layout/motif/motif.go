// Package motif generates the geometry of a single (possibly folded) MOS
// transistor: alternating source/drain diffusion strips, vertical poly
// gate fingers joined by a poly bar, contact columns, metal-1 straps and
// horizontal drain/source rails.
//
// It is the "single motif generator which allows total control over
// terminals and wires" of the paper's layout language: the same code path
// produces the physical geometry (generation mode) and the junction/wire
// parasitics (parasitic-calculation mode), so the two can never disagree.
//
// Orientation: gate fingers run vertically; the transistor's W direction
// is vertical (finger height), its L direction horizontal. The drain rail
// runs along the top, the source rail along the bottom, the gate bar just
// above the active area with its contact on the left.
package motif

import (
	"fmt"

	"loas/internal/device"
	"loas/internal/layout/geom"
	"loas/internal/techno"
)

// Spec describes one folded transistor to generate.
type Spec struct {
	Name string
	Type techno.MOSType
	// W is the requested total gate width (m); L the gate length (m).
	W, L float64
	// Folds is the gate finger count (≥1).
	Folds int
	// Style selects which net occupies shared strips (the paper folds
	// frequency-critical drains internal).
	Style device.DiffNet
	// Net names for the four terminals.
	DrainNet, GateNet, SourceNet, BulkNet string
	// IDrain is the DC drain current magnitude (A) used for
	// reliability-driven wire widths and contact counts.
	IDrain float64
}

// Motif is the generated transistor: its geometry plus the electrical
// summary the sizing tool consumes.
type Motif struct {
	Cell *geom.Cell
	Plan device.FoldPlan
	// Geom is the junction geometry extracted from the generated strips.
	Geom device.DiffGeom
	// RailCap is the wiring capacitance (F) of the internal metal
	// straps/rails per net (keyed by net name), part of the routing
	// parasitics reported to the sizing tool.
	RailCap map[string]float64
	// ContactsPerStrip records the reliability-driven contact count.
	ContactsPerStrip int
	// Width, Height of the cell (nm).
	Width, Height int64
}

// WireWidthNM returns the metal-1 width (nm) needed to carry current i (A)
// under the electromigration limit, at least the minimum width, snapped to
// grid.
func WireWidthNM(tech *techno.Tech, i float64) int64 {
	w := tech.Rules.Metal1Width
	if i > 0 {
		need := int64(i / tech.Wire.JMax * 1e9) // JMax in A/m of width
		if need > w {
			w = need
		}
	}
	return tech.Rules.SnapNM(w)
}

// ContactsForCurrent returns how many contacts carry current i reliably,
// clamped to [1, fit].
func ContactsForCurrent(tech *techno.Tech, i float64, fit int) int {
	n := 1
	if tech.Wire.IContact > 0 && i > 0 {
		n = int(i/tech.Wire.IContact) + 1
	}
	if n > fit {
		n = fit
	}
	if n < 1 {
		n = 1
	}
	return n
}

// EnsureMinDim grows a rectangle symmetrically until both dimensions meet
// the minimum, keeping edges on the grid.
func EnsureMinDim(rc geom.Rect, minDim, grid int64) geom.Rect {
	grow := func(lo, hi int64) (int64, int64) {
		if hi-lo >= minDim {
			return lo, hi
		}
		d := (minDim - (hi - lo) + 1) / 2
		d = (d + grid - 1) / grid * grid
		return lo - d, hi + d
	}
	rc.L, rc.R = grow(rc.L, rc.R)
	rc.B, rc.T = grow(rc.B, rc.T)
	return rc
}

// contactFit returns how many contacts fit in a column of height h.
func contactFit(r *techno.Rules, h int64) int {
	usable := h - 2*r.ContactActiveEnc
	if usable < r.ContactSize {
		return 1
	}
	return int((usable-r.ContactSize)/(r.ContactSize+r.ContactSpace)) + 1
}

// Build generates the transistor.
func Build(tech *techno.Tech, spec Spec) (*Motif, error) {
	if spec.Folds < 1 {
		spec.Folds = 1
	}
	if spec.W <= 0 || spec.L <= 0 {
		return nil, fmt.Errorf("motif %s: non-positive size W=%g L=%g", spec.Name, spec.W, spec.L)
	}
	r := &tech.Rules
	plan := device.PlanFolds(r, spec.W, spec.Folds, spec.Style)

	lNM := r.SnapNM(techno.MetersToNM(spec.L))
	if lNM < r.PolyWidth {
		lNM = r.PolyWidth
	}
	fwNM := r.SnapNM(techno.MetersToNM(plan.FingerW))
	stripW := r.SnapNM(techno.MetersToNM(tech.DiffExtContacted))

	nf := plan.Folds
	cell := geom.NewCell(spec.Name)

	// Strip nets: alternate starting per style. DrainInternal starts and
	// ends with source for even folds.
	stripNet := make([]string, nf+1)
	first := spec.SourceNet
	second := spec.DrainNet
	if spec.Style == device.SourceInternal {
		first, second = second, first
	}
	for i := range stripNet {
		if i%2 == 0 {
			stripNet[i] = first
		} else {
			stripNet[i] = second
		}
	}

	// Horizontal extent: strip 0, gate 0, strip 1, …, gate nf-1, strip nf.
	x := int64(0)
	stripX := make([]int64, nf+1)
	gateX := make([]int64, nf)
	for i := 0; i <= nf; i++ {
		stripX[i] = x
		x += stripW
		if i < nf {
			gateX[i] = x
			x += lNM
		}
	}
	totalW := x

	// Vertical layout.
	yActiveB := int64(0)
	yActiveT := fwNM
	polyExt := r.PolyExtGate
	barB := yActiveT + polyExt
	barT := barB + r.PolyWidth

	drainI := spec.IDrain
	perStripDrain := drainI
	if plan.DrainStrips > 0 {
		perStripDrain = drainI / float64(plan.DrainStrips)
	}
	railW := WireWidthNM(tech, drainI)
	strapW := r.ContactSize + 2*r.ContactMetalEnc
	if need := WireWidthNM(tech, perStripDrain); need > strapW {
		strapW = need
	}

	drainRailB := barT + r.Metal1Space
	drainRailT := drainRailB + railW
	srcRailT := yActiveB - polyExt - r.Metal1Space
	srcRailB := srcRailT - railW

	// Active area: one rectangle spanning all strips and channels.
	cell.Add(techno.LayerActive, geom.Rect{L: 0, B: yActiveB, R: totalW, T: yActiveT}, "")

	// Gate fingers + bar.
	for i := 0; i < nf; i++ {
		cell.Add(techno.LayerPoly,
			geom.Rect{L: gateX[i], B: yActiveB - polyExt, R: gateX[i] + lNM, T: barT},
			spec.GateNet)
	}
	gateBarL := -(stripW + r.Metal1Space)
	cell.Add(techno.LayerPoly, geom.Rect{L: gateBarL, B: barB, R: totalW, T: barT}, spec.GateNet)
	// Gate contact pad (poly→metal1) on the left extension.
	gPad := geom.Rect{L: gateBarL, B: barB, R: gateBarL + r.ContactSize + 2*r.ContactPolyEnc, T: barT}
	cell.Add(techno.LayerContact,
		geom.XYWH(gPad.L+r.ContactPolyEnc, barB+(barT-barB-r.ContactSize)/2, r.ContactSize, r.ContactSize),
		spec.GateNet)
	gMet := EnsureMinDim(gPad, r.Metal1Width, r.Grid)
	cell.Add(techno.LayerMetal1, gMet, spec.GateNet)
	cell.AddPort("G", spec.GateNet, techno.LayerMetal1, gMet)

	// Diffusion strips: contacts, straps, rail hookup.
	fit := contactFit(r, fwNM)
	ncont := ContactsForCurrent(tech, perStripDrain, fit)
	railCap := map[string]float64{}
	addWireCap := func(net string, rect geom.Rect) {
		railCap[net] += geom.WireCapM(rect, tech.Wire.CAreaM1, tech.Wire.CFringeM1)
	}
	for i := 0; i <= nf; i++ {
		net := stripNet[i]
		cx := r.SnapDownNM(stripX[i] + stripW/2)
		// Contact column, centred.
		pitch := r.ContactSize + r.ContactSpace
		colH := int64(ncont)*pitch - r.ContactSpace
		y0 := r.SnapDownNM(yActiveB + (fwNM-colH)/2)
		if y0 < yActiveB+r.ContactActiveEnc {
			y0 = yActiveB + r.ContactActiveEnc
		}
		for k := 0; k < ncont; k++ {
			cell.Add(techno.LayerContact,
				geom.XYWH(cx-r.ContactSize/2, y0+int64(k)*pitch, r.ContactSize, r.ContactSize), net)
		}
		// Vertical metal strap to the proper rail.
		var strap geom.Rect
		if net == spec.DrainNet {
			strap = geom.Rect{L: cx - strapW/2, B: yActiveB, R: cx + strapW/2, T: drainRailT}
		} else {
			strap = geom.Rect{L: cx - strapW/2, B: srcRailB, R: cx + strapW/2, T: yActiveT}
		}
		cell.Add(techno.LayerMetal1, strap, net)
		addWireCap(net, strap)
	}

	// Rails.
	dRail := geom.Rect{L: 0, B: drainRailB, R: totalW, T: drainRailT}
	sRail := geom.Rect{L: 0, B: srcRailB, R: totalW, T: srcRailT}
	cell.Add(techno.LayerMetal1, dRail, spec.DrainNet)
	cell.Add(techno.LayerMetal1, sRail, spec.SourceNet)
	addWireCap(spec.DrainNet, dRail)
	addWireCap(spec.SourceNet, sRail)
	cell.AddPort("D", spec.DrainNet, techno.LayerMetal1, dRail)
	cell.AddPort("S", spec.SourceNet, techno.LayerMetal1, sRail)

	// Bulk: implant over active; PMOS additionally gets an enclosing
	// n-well and an n-tap strip below the source rail, NMOS a p-tap.
	imp := techno.LayerNImplant
	if spec.Type == techno.PMOS {
		imp = techno.LayerPImplant
	}
	cell.Add(imp, geom.Rect{L: -r.ContactActiveEnc, B: yActiveB - r.ContactActiveEnc,
		R: totalW + r.ContactActiveEnc, T: yActiveT + r.ContactActiveEnc}, "")

	tapH := r.ContactSize + 2*r.ContactActiveEnc
	tapB := srcRailB - r.ActiveSpace - tapH
	tapRect := geom.Rect{L: 0, B: tapB, R: totalW, T: tapB + tapH}
	cell.Add(techno.LayerActive, tapRect, spec.BulkNet)
	tapMet := tapRect
	cell.Add(techno.LayerMetal1, tapMet, spec.BulkNet)
	cell.AddPort("B", spec.BulkNet, techno.LayerMetal1, tapMet)
	nTaps := int(totalW / (2 * (r.ContactSize + r.ContactSpace)))
	if nTaps < 1 {
		nTaps = 1
	}
	for k := 0; k < nTaps; k++ {
		cx := r.SnapDownNM(totalW * int64(2*k+1) / int64(2*nTaps))
		cell.Add(techno.LayerContact,
			geom.XYWH(cx-r.ContactSize/2, tapB+r.ContactActiveEnc, r.ContactSize, r.ContactSize),
			spec.BulkNet)
	}

	if spec.Type == techno.PMOS {
		enc := r.NWellEncActive
		bb := cell.BBox()
		cell.Add(techno.LayerNWell, bb.Expand(enc), spec.BulkNet)
	}

	bb := cell.BBox()
	m := &Motif{
		Cell:             cell,
		Plan:             plan,
		Geom:             plan.Geom(tech),
		RailCap:          railCap,
		ContactsPerStrip: ncont,
		Width:            bb.W(),
		Height:           bb.H(),
	}
	return m, nil
}

// WellAreaM2 returns the n-well bottom area (m²) and perimeter (m) of the
// motif (zero for NMOS), used for floating-well capacitance.
func (m *Motif) WellAreaM2() (area, perim float64) {
	for _, s := range m.Cell.Shapes {
		if s.Layer == techno.LayerNWell {
			area += s.R.AreaM2()
			perim += s.R.PerimM()
		}
	}
	return area, perim
}
