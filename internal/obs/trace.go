// Package obs is the observability layer of the synthesis engine: a
// structured trace of the sizing↔layout convergence loop (the paper's
// "repeated till the calculated parasitics remain unchanged" narrative,
// made inspectable event by event) and a dependency-free metrics
// registry with Prometheus text exposition.
//
// The package sits at the bottom of the dependency graph — it imports
// nothing from the rest of the module — so every layer (sizing, layout,
// mc, serve, the CLIs) can record into it without cycles. Trace events
// flow upward attached to results (core.Result.Trace, the loasd
// /v1/trace/{key} endpoint, `loas trace`); metrics flow outward through
// Registry.WritePrometheus (the loasd /metrics endpoint).
package obs

import (
	"fmt"
	"strings"
	"sync"
)

// Iteration is one sizing↔layout call of the convergence loop — the
// structured form of one row of the paper's §5 story ("three calls of
// the layout tool were needed"). The JSON tags are the wire format of
// GET /v1/trace/{key} and `loas trace -json`.
type Iteration struct {
	// Topology labels the design plan that produced the iteration
	// (omitted on the wire when unset, so traces recorded before the
	// label existed decode and compare unchanged).
	Topology string `json:"topology,omitempty"`
	// Round is the 1-based outer refinement round that ran this
	// iteration; 0 (omitted on the wire) for one-shot synthesis, so
	// traces recorded before closed-loop refinement existed decode and
	// compare unchanged.
	Round int `json:"round,omitempty"`
	Call  int `json:"call"` // 1-based layout-call number
	// DeltaF is the max parasitic change vs the previous report in
	// farads (extract.MaxDelta); -1 on the first call, which has no
	// previous report to diff against.
	DeltaF float64 `json:"delta_f"`
	// OutCapF and FN1CapF are the wiring+well capacitance totals on the
	// output net and the mirror-side fold node — the two nets whose
	// parasitics drive the GBW/PM feedback.
	OutCapF float64 `json:"out_cap_f"`
	FN1CapF float64 `json:"fn1_cap_f"`
	// TotalCapF sums every net's wiring+well capacitance in the report.
	TotalCapF float64 `json:"total_cap_f"`
	// Folds is the total gate-finger count across all devices in the
	// fold plan (the layout style the sizing tool reacted to).
	Folds int `json:"folds"`
	// W1, Lc, Itail snapshot the design point the iteration produced:
	// input-pair width (m), non-input channel length (m), tail current (A).
	W1    float64 `json:"w1_m"`
	Lc    float64 `json:"lc_m"`
	Itail float64 `json:"itail_a"`
	// SizingNS and LayoutNS are the wall-clock of the two phases of this
	// iteration (the sizing pass and the layout plan call).
	SizingNS int64 `json:"sizing_ns"`
	LayoutNS int64 `json:"layout_ns"`
}

// Trace is a concurrency-safe recorder of convergence iterations. A nil
// *Trace is a valid no-op recorder, so call sites thread it through
// unconditionally.
type Trace struct {
	mu     sync.Mutex
	iters  []Iteration
	notify func(Iteration)
}

// NewTraceFunc returns a Trace that additionally invokes fn for every
// recorded iteration (after appending, outside the lock) — the live
// event feed behind the daemon's SSE stream.
func NewTraceFunc(fn func(Iteration)) *Trace {
	return &Trace{notify: fn}
}

// Record appends one iteration. Safe on a nil receiver.
func (t *Trace) Record(it Iteration) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.iters = append(t.iters, it)
	fn := t.notify
	t.mu.Unlock()
	if fn != nil {
		fn(it)
	}
}

// Iterations returns a copy of everything recorded so far, in record
// order. Safe on a nil receiver (returns nil).
func (t *Trace) Iterations() []Iteration {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Iteration, len(t.iters))
	copy(out, t.iters)
	return out
}

// Len reports how many iterations have been recorded. Safe on nil.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.iters)
}

// ConvergenceTable renders iterations as the human-readable convergence
// table (`loas trace`, `loas converge`): one row per layout call with
// the parasitic delta, the two hot-net capacitances, the design point
// and the per-phase wall time. Traces produced by the closed-loop
// refinement (any iteration with Round > 0) gain a leading round
// column, so the outer loop's structure shows in the same table.
func ConvergenceTable(iters []Iteration) string {
	refined := false
	for _, p := range iters {
		if p.Round > 0 {
			refined = true
			break
		}
	}
	var b strings.Builder
	b.WriteString("Parasitic convergence (case-4 loop)\n")
	if refined {
		b.WriteString(" round")
	}
	b.WriteString("  call   Δ(fF)   C(out) fF  C(fn1) fF   W1 (µm)   Lc (µm)  Itail (µA)  folds  size(ms)  layout(ms)\n")
	for _, p := range iters {
		delta := "    —"
		if p.DeltaF >= 0 {
			delta = fmt.Sprintf("%7.2f", p.DeltaF*1e15)
		}
		if refined {
			fmt.Fprintf(&b, " %5d", p.Round)
		}
		fmt.Fprintf(&b, "  %4d %s %10.1f %10.1f %9.2f %9.2f %10.1f %6d %9.2f %11.2f\n",
			p.Call, delta, p.OutCapF*1e15, p.FN1CapF*1e15,
			p.W1*1e6, p.Lc*1e6, p.Itail*1e6, p.Folds,
			float64(p.SizingNS)/1e6, float64(p.LayoutNS)/1e6)
	}
	return b.String()
}

// Converged reports whether the trace reached a parasitic fixpoint under
// tol (farads): the last recorded delta is non-negative and below tol.
func Converged(iters []Iteration, tol float64) bool {
	if len(iters) < 2 {
		return false
	}
	last := iters[len(iters)-1]
	return last.DeltaF >= 0 && last.DeltaF < tol
}
