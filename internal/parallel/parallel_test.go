package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapNOrderAndResults(t *testing.T) {
	got, err := MapN(context.Background(), 8, 100, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("want 100 results, got %d", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("result %d = %d, want %d", i, v, i*i)
		}
	}
}

func TestMapKeepsItemOrder(t *testing.T) {
	items := []string{"a", "bb", "ccc", "dddd"}
	got, err := Map(context.Background(), 2, items, func(_ context.Context, i int, s string) (int, error) {
		time.Sleep(time.Duration(len(items)-i) * time.Millisecond) // finish out of order
		return len(s), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i+1 {
			t.Fatalf("result %d = %d, want %d", i, v, i+1)
		}
	}
}

// TestFirstErrorShortCircuits proves the pool contract the synthesis
// paths rely on: one failing task cancels the shared context and tasks
// that have not started are never run.
func TestFirstErrorShortCircuits(t *testing.T) {
	boom := errors.New("boom")
	var started atomic.Int64
	const n = 200
	err := Do(context.Background(), 2, n, func(ctx context.Context, i int) error {
		started.Add(1)
		if i == 0 {
			return boom
		}
		// Everybody else waits for the cancellation triggered by task 0.
		select {
		case <-ctx.Done():
			return nil
		case <-time.After(5 * time.Second):
			return fmt.Errorf("task %d never saw the cancellation", i)
		}
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want the task error, got %v", err)
	}
	if s := started.Load(); s >= n {
		t.Fatalf("all %d tasks started despite the early error", n)
	}
}

func TestPanicRecoveredAsError(t *testing.T) {
	_, err := MapN(context.Background(), 4, 8, func(_ context.Context, i int) (int, error) {
		if i == 3 {
			panic("kaboom")
		}
		return i, nil
	})
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("want *PanicError, got %v", err)
	}
	if pe.Index != 3 || pe.Value != "kaboom" {
		t.Fatalf("panic metadata wrong: index %d value %v", pe.Index, pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("panic error should carry the goroutine stack")
	}
}

// TestConcurrencyBound observes the in-flight high-water mark through an
// atomic counter: it must reach the bound (the tasks block long enough to
// pile up even on one CPU) and never exceed it.
func TestConcurrencyBound(t *testing.T) {
	const workers = 4
	var inFlight, high atomic.Int64
	err := Do(context.Background(), workers, 32, func(_ context.Context, i int) error {
		cur := inFlight.Add(1)
		defer inFlight.Add(-1)
		for {
			h := high.Load()
			if cur <= h || high.CompareAndSwap(h, cur) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if h := high.Load(); h > workers {
		t.Fatalf("high-water mark %d exceeds the bound %d", h, workers)
	}
	if h := high.Load(); h < 2 {
		t.Fatalf("high-water mark %d shows no overlap at all", h)
	}
}

func TestWorkerDefaultsAndEmptyInput(t *testing.T) {
	// workers <= 0 falls back to GOMAXPROCS; workers > n is clamped.
	for _, w := range []int{-1, 0, 1, 1000} {
		got, err := MapN(context.Background(), w, 3, func(_ context.Context, i int) (int, error) {
			return i, nil
		})
		if err != nil || len(got) != 3 {
			t.Fatalf("workers=%d: err %v, %d results", w, err, len(got))
		}
	}
	got, err := MapN(context.Background(), 4, 0, func(_ context.Context, i int) (int, error) {
		t.Error("task ran for n=0")
		return 0, nil
	})
	if err != nil || len(got) != 0 {
		t.Fatalf("n=0: err %v, %d results", err, len(got))
	}
}

func TestParentCancellationPropagates(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := Do(ctx, 4, 16, func(_ context.Context, i int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d tasks ran on a dead context", ran.Load())
	}
}

// TestPartialResultsSurviveError: entries finished before the failure
// stay usable (the Monte-Carlo reducer relies on the slice length).
func TestPartialResultsSurviveError(t *testing.T) {
	boom := errors.New("boom")
	got, err := MapN(context.Background(), 1, 4, func(_ context.Context, i int) (int, error) {
		if i == 2 {
			return 0, boom
		}
		return i + 10, nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("want boom, got %v", err)
	}
	if len(got) != 4 || got[0] != 10 || got[1] != 11 {
		t.Fatalf("completed prefix lost: %v", got)
	}
}
