package cairo

import (
	"fmt"
	"sort"

	"loas/internal/layout/extract"
	"loas/internal/layout/geom"
	"loas/internal/layout/route"
	"loas/internal/layout/slicing"
	"loas/internal/obs"
	"loas/internal/techno"
)

// Tree describes the slicing structure over module names — the
// "language constructs [that] allow to build up the appropriate slicing
// structure for the circuit".
type Tree struct {
	// Vertical: children placed side by side (widths add).
	Vertical bool
	// GapNM separates children; it is the routing channel width.
	GapNM int64
	// Leaves lists module names placed directly at this level.
	Leaves []string
	// Children are nested cuts (composed after Leaves, in order).
	Children []*Tree
}

// Design is a complete layout description: modules, slicing structure and
// the nets to route.
type Design struct {
	Name    string
	Modules []Module
	Tree    *Tree
	// Nets lists top-level nets to route with their DC currents.
	Nets []route.Net
}

// Constraint re-exports the slicing constraint for callers.
type Constraint = slicing.Constraint

// Plan is the result of either mode: the parasitic report plus the
// geometry that produced it.
type Plan struct {
	Parasitics *extract.Parasitics
	Cell       *geom.Cell
	Floorplan  *slicing.Floorplan
	// ChoiceOf records the selected shape alternative per module.
	ChoiceOf map[string]int
}

// buildCache builds every alternative of every module once.
type buildCache struct {
	byModule map[string]map[int]*Built
}

func (d *Design) module(name string) Module {
	for _, m := range d.Modules {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// slicingNode converts the tree spec into slicing nodes backed by real
// module builds, so the shape function reflects exact geometry. Module
// realizations go through the session's build cache when one is given.
func (d *Design) slicingNode(tech *techno.Tech, t *Tree, cache *buildCache, s *Session) (slicing.Node, error) {
	var children []slicing.Node
	for _, name := range t.Leaves {
		m := d.module(name)
		if m == nil {
			return nil, fmt.Errorf("cairo: tree references unknown module %q", name)
		}
		var alts []slicing.Option
		built := map[int]*Built{}
		for _, choice := range m.Choices() {
			b, err := s.build(tech, m, choice)
			if err != nil {
				return nil, fmt.Errorf("cairo: module %s choice %d: %w", name, choice, err)
			}
			bb := b.Cell.BBox()
			alts = append(alts, slicing.Option{W: bb.W(), H: bb.H(), Choice: choice})
			built[choice] = b
		}
		cache.byModule[name] = built
		children = append(children, slicing.NewLeaf(name, alts))
	}
	for _, sub := range t.Children {
		n, err := d.slicingNode(tech, sub, cache, s)
		if err != nil {
			return nil, err
		}
		children = append(children, n)
	}
	if len(children) == 0 {
		return nil, fmt.Errorf("cairo: empty tree node in design %s", d.Name)
	}
	if len(children) == 1 {
		return children[0], nil
	}
	return slicing.NewCut(t.Vertical, t.GapNM, children...), nil
}

// ChannelNeedNM sizes the routing channels from the net count: one
// metal-2 track per net plus slack, so trunk stacking never overflows
// into a module row. Every backend that routes this design should open
// channels at least this tall.
func (d *Design) ChannelNeedNM(tech *techno.Tech) int64 {
	pitch := tech.Rules.Metal2Width + tech.Rules.Metal2Space
	return int64(len(d.Nets)+2)*pitch + 2*tech.Rules.Metal2Space
}

// widenGaps returns a copy of the tree with horizontal-cut gaps widened
// to the routing-channel requirement.
func widenGaps(t *Tree, need int64) *Tree {
	c := *t
	if !c.Vertical && c.GapNM < need {
		c.GapNM = need
	}
	c.Children = make([]*Tree, len(t.Children))
	for i, ch := range t.Children {
		c.Children[i] = widenGaps(ch, need)
	}
	return &c
}

// layoutPlans counts layout-tool invocations process-wide — the
// CAIRO-side half of the loasd /metrics convergence picture (plans per
// synthesis ≈ the paper's "three calls of the layout tool").
var layoutPlans = obs.Default.Counter("loas_layout_plans_total",
	"layout plan/generate calls (area optimization + realization + extraction)")

// Plan runs the flow: area optimization under the shape constraint,
// module realization, routing, extraction.
func (d *Design) Plan(tech *techno.Tech, c Constraint) (*Plan, error) {
	return d.PlanSession(tech, c, nil)
}

// PlanSession is Plan with cross-call caching: a non-nil Session reuses
// module builds, slicing shape functions and routing outcomes recorded
// by earlier Plan calls of the same synthesis run, re-extracting only
// what actually changed. The result is bit-identical to Plan.
func (d *Design) PlanSession(tech *techno.Tech, c Constraint, s *Session) (*Plan, error) {
	layoutPlans.Inc()
	cache := &buildCache{byModule: map[string]map[int]*Built{}}
	need := d.ChannelNeedNM(tech)
	root, err := d.slicingNode(tech, widenGaps(d.Tree, need), cache, s)
	if err != nil {
		return nil, err
	}
	fp, err := slicing.OptimizeCached(root, c, s.shapeCache(tech))
	if err != nil {
		return nil, fmt.Errorf("cairo: design %s: %w", d.Name, err)
	}

	top := geom.NewCell(d.Name)
	par := extract.New()
	choices := map[string]int{}

	// Deterministic module order.
	var names []string
	for name := range fp.Placed {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pl := fp.Placed[name]
		b := cache.byModule[name][pl.Choice]
		if b == nil {
			return nil, fmt.Errorf("cairo: missing build for %s choice %d", name, pl.Choice)
		}
		choices[name] = pl.Choice
		bb := b.Cell.BBox()
		top.Merge(b.Cell, pl.Rect.L-bb.L, pl.Rect.B-bb.B)
		for inst, g := range b.Geoms {
			par.DeviceGeom[inst] = g
		}
		for inst, f := range b.Folds {
			par.Folds[inst] = f
		}
		for net, cap := range b.RailCap {
			par.NetCap[net] += cap
		}
		if b.WellNet != "" && b.WellArea > 0 {
			par.WellCap[b.WellNet] += b.WellArea*tech.Wire.CWellArea + b.WellPerim*tech.Wire.CWellPerim
		}
	}

	// Routing channels: the module-free horizontal bands of the
	// floorplan, plus margins above and below.
	var obstacles []geom.Rect
	for _, name := range names {
		obstacles = append(obstacles, fp.Placed[name].Rect)
	}
	channels := route.Channels(obstacles, need)
	rres, err := s.routeCached(tech, top, d.Nets, channels)
	if err != nil {
		return nil, fmt.Errorf("cairo: design %s: %w", d.Name, err)
	}
	for net, cap := range rres.NetCap {
		par.NetCap[net] += cap
	}
	for pair, cap := range rres.Coupling {
		par.Coupling[pair] += cap
	}

	bb := top.BBox()
	par.WidthUM = float64(bb.W()) * 1e-3
	par.HeightUM = float64(bb.H()) * 1e-3
	par.AreaUM2 = bb.AreaUM2()
	par.LayoutCalls = 1

	return &Plan{Parasitics: par, Cell: top, Floorplan: fp, ChoiceOf: choices}, nil
}

// Generate runs the same flow as Plan; the distinction is semantic
// (physical output requested). The returned Plan's Cell is the full
// layout ready for SVG export.
func (d *Design) Generate(tech *techno.Tech, c Constraint) (*Plan, error) {
	return d.Plan(tech, c)
}
