package geom

import (
	"math"
	"testing"
	"testing/quick"

	"loas/internal/techno"
)

func TestRectBasics(t *testing.T) {
	r := XYWH(10, 20, 100, 50)
	if r.W() != 100 || r.H() != 50 || r.Area() != 5000 {
		t.Fatalf("bad rect arithmetic: %v", r)
	}
	if !r.Valid() {
		t.Fatal("rect should be valid")
	}
	if (Rect{L: 5, B: 5, R: 5, T: 9}).Valid() {
		t.Fatal("zero-width rect must be invalid")
	}
}

func TestRectUnitsConversions(t *testing.T) {
	r := XYWH(0, 0, 1000, 1000) // 1 µm × 1 µm
	if math.Abs(r.AreaUM2()-1) > 1e-12 {
		t.Fatalf("area = %g µm², want 1", r.AreaUM2())
	}
	if math.Abs(r.AreaM2()-1e-12) > 1e-24 {
		t.Fatalf("area = %g m², want 1e-12", r.AreaM2())
	}
	if math.Abs(r.PerimM()-4e-6) > 1e-18 {
		t.Fatalf("perimeter = %g m, want 4e-6", r.PerimM())
	}
}

func TestUnionIntersect(t *testing.T) {
	a := XYWH(0, 0, 10, 10)
	b := XYWH(5, 5, 10, 10)
	u := a.Union(b)
	if u.L != 0 || u.B != 0 || u.R != 15 || u.T != 15 {
		t.Fatalf("union = %v", u)
	}
	if !a.Intersects(b) {
		t.Fatal("should intersect")
	}
	i := a.Intersect(b)
	if i.W() != 5 || i.H() != 5 {
		t.Fatalf("intersect = %v", i)
	}
	c := XYWH(10, 0, 5, 5) // abutting only
	if a.Intersects(c) {
		t.Fatal("touching edges must not count as intersecting")
	}
}

func TestUnionWithInvalid(t *testing.T) {
	var z Rect
	a := XYWH(1, 1, 2, 2)
	if u := z.Union(a); u != a {
		t.Fatalf("union with zero rect = %v", u)
	}
	if u := a.Union(z); u != a {
		t.Fatalf("union with zero rect = %v", u)
	}
}

func TestTranslateProperty(t *testing.T) {
	f := func(x, y, dx, dy int16) bool {
		r := XYWH(int64(x), int64(y), 100, 200)
		tr := r.Translate(int64(dx), int64(dy))
		return tr.W() == r.W() && tr.H() == r.H() && tr.L == r.L+int64(dx)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCellMergeTranslates(t *testing.T) {
	child := NewCell("kid")
	child.Add(techno.LayerMetal1, XYWH(0, 0, 10, 10), "a")
	child.AddPort("P", "a", techno.LayerMetal1, XYWH(0, 0, 10, 10))
	top := NewCell("top")
	top.Merge(child, 100, 200)
	if top.Shapes[0].R.L != 100 || top.Shapes[0].R.B != 200 {
		t.Fatalf("merge did not translate: %v", top.Shapes[0].R)
	}
	if top.Ports[0].Name != "kid.P" {
		t.Fatalf("port name = %q, want kid.P", top.Ports[0].Name)
	}
	if len(top.PortsOnNet("a")) != 1 {
		t.Fatal("PortsOnNet missed the merged port")
	}
}

func TestCellBBox(t *testing.T) {
	c := NewCell("c")
	c.Add(techno.LayerPoly, XYWH(-5, -5, 10, 10), "")
	c.Add(techno.LayerPoly, XYWH(20, 20, 10, 10), "")
	bb := c.BBox()
	if bb.L != -5 || bb.T != 30 {
		t.Fatalf("bbox = %v", bb)
	}
}

func TestCheckGrid(t *testing.T) {
	c := NewCell("c")
	c.Add(techno.LayerMetal1, XYWH(0, 0, 100, 100), "")
	if err := c.CheckGrid(50); err != nil {
		t.Fatalf("on-grid cell flagged: %v", err)
	}
	c.Add(techno.LayerMetal1, XYWH(0, 0, 125, 100), "")
	if err := c.CheckGrid(50); err == nil {
		t.Fatal("off-grid shape not flagged")
	}
}

func TestMinSpacingViolation(t *testing.T) {
	c := NewCell("c")
	c.Add(techno.LayerMetal1, XYWH(0, 0, 100, 100), "a")
	c.Add(techno.LayerMetal1, XYWH(150, 0, 100, 100), "b")
	if _, bad := c.MinSpacingViolation(techno.LayerMetal1, 40); bad {
		t.Fatal("50 nm gap flagged at 40 nm rule")
	}
	if _, bad := c.MinSpacingViolation(techno.LayerMetal1, 80); !bad {
		t.Fatal("50 nm gap not flagged at 80 nm rule")
	}
	// Same net: never a violation.
	c2 := NewCell("c2")
	c2.Add(techno.LayerMetal1, XYWH(0, 0, 100, 100), "a")
	c2.Add(techno.LayerMetal1, XYWH(110, 0, 100, 100), "a")
	if _, bad := c2.MinSpacingViolation(techno.LayerMetal1, 500); bad {
		t.Fatal("same-net spacing flagged")
	}
}

func TestWireCap(t *testing.T) {
	// 100 µm × 1 µm wire at 30 aF/µm² + 40 aF/µm fringe:
	// area 100 µm² → 3 fF; perimeter 202 µm → 8.08 fF.
	r := XYWH(0, 0, 100000, 1000)
	c := WireCapM(r, 30e-6, 40e-12)
	want := 100e-12*30e-6*1e6 + 202e-6*40e-12
	_ = want
	wantF := 3e-15 + 8.08e-15
	if math.Abs(c-wantF)/wantF > 1e-9 {
		t.Fatalf("wire cap = %g, want %g", c, wantF)
	}
}

func TestCouplingCap(t *testing.T) {
	// Two horizontal wires, 100 µm parallel run, at min spacing.
	a := XYWH(0, 0, 100000, 1000)
	b := XYWH(0, 1800, 100000, 1000) // 800 nm gap
	c := CouplingCapM(a, b, 85e-12, 800)
	want := 85e-12 * 100e-6 // full coefficient at min space
	if math.Abs(c-want)/want > 1e-9 {
		t.Fatalf("coupling = %g, want %g", c, want)
	}
	// Double the gap halves the coupling.
	b2 := XYWH(0, 2600, 100000, 1000)
	c2 := CouplingCapM(a, b2, 85e-12, 800)
	if math.Abs(c2-want/2)/want > 1e-9 {
		t.Fatalf("coupling at 2× gap = %g, want %g", c2, want/2)
	}
	// No parallel run → zero.
	far := XYWH(200000, 0, 1000, 1000)
	if CouplingCapM(a, far, 85e-12, 800) != 0 {
		t.Fatal("non-parallel wires should not couple")
	}
	// Overlapping wires → zero (same net routing overlaps).
	if CouplingCapM(a, a, 85e-12, 800) != 0 {
		t.Fatal("overlapping rects should not report lateral coupling")
	}
}

func TestSnapRectOutward(t *testing.T) {
	r := SnapRect(Rect{L: 12, B: -12, R: 88, T: 37}, 25)
	if r.L != 0 || r.B != -25 || r.R != 100 || r.T != 50 {
		t.Fatalf("snap = %v", r)
	}
}

func TestLayerAreaAndNetShapes(t *testing.T) {
	c := NewCell("c")
	c.Add(techno.LayerMetal1, XYWH(0, 0, 1000, 1000), "x")
	c.Add(techno.LayerMetal1, XYWH(2000, 0, 1000, 1000), "y")
	c.Add(techno.LayerMetal2, XYWH(0, 0, 1000, 1000), "x")
	if a := c.LayerArea(techno.LayerMetal1); math.Abs(a-2e-12) > 1e-24 {
		t.Fatalf("layer area = %g", a)
	}
	if n := len(c.NetShapes("x", techno.LayerMetal1)); n != 1 {
		t.Fatalf("net shapes = %d", n)
	}
}
