// Package mc is the statistical verification interface of the sizing
// tool ("a verification interface … permits to undergo statistical
// analysis to check the reliability of the synthesized circuit"). It
// perturbs every transistor's threshold and current factor with
// Pelgrom-scaled random mismatch (σ ∝ 1/√(W·L)), re-simulates the DC
// operating point, and extracts the input-referred offset distribution.
//
// A deterministic linear process-gradient model complements the random
// part: the signed centroid of each device in its stack converts a VT
// gradient along the die directly into systematic offset — which is
// exactly the mismatch mechanism the common-centroid layout style of the
// paper's Fig. 3/Fig. 5 exists to cancel.
package mc

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"strconv"

	"loas/internal/circuit"
	"loas/internal/layout/stack"
	"loas/internal/obs"
	"loas/internal/parallel"
	"loas/internal/sim"
	"loas/internal/techno"
)

// Sample is one Monte-Carlo draw.
type Sample struct {
	// DVT0 and DBeta map transistor name → applied shifts.
	DVT0  map[string]float64
	DBeta map[string]float64
}

// Draw generates mismatch shifts for every transistor in the circuit.
// Each device gets an independent N(0, σ) draw with Pelgrom scaling on
// its own W·L·M area (device-to-device correlation of identical pairs is
// then √2 larger, as the coefficients define).
func Draw(rng *rand.Rand, ckt *circuit.Circuit) Sample {
	s := Sample{DVT0: map[string]float64{}, DBeta: map[string]float64{}}
	for _, m := range ckt.MOSFETs() {
		area := m.Dev.W * m.Dev.L * m.Dev.M()
		if area <= 0 {
			continue
		}
		// Single-device σ is the pair coefficient divided by √2.
		sVT := m.Dev.Card.AVT / math.Sqrt(area) / math.Sqrt2
		sB := m.Dev.Card.ABeta / math.Sqrt(area) / math.Sqrt2
		s.DVT0[m.Name] = rng.NormFloat64() * sVT
		s.DBeta[m.Name] = rng.NormFloat64() * sB
	}
	return s
}

// Apply clones each transistor's model card and applies the shifts; the
// circuit is modified in place (use a freshly built netlist per sample).
func (s Sample) Apply(ckt *circuit.Circuit) {
	for _, m := range ckt.MOSFETs() {
		card := *m.Dev.Card
		card.VT0 += s.DVT0[m.Name]
		card.KP *= 1 + s.DBeta[m.Name]
		m.Dev.Card = &card
	}
}

// OffsetConfig describes the offset measurement for Monte Carlo.
type OffsetConfig struct {
	// Build returns a fresh amplifier netlist (no input sources).
	Build func() *circuit.Circuit
	// InP, InN, Out name the ports; VicmDC biases the inputs; VoutMid is
	// the output null target.
	InP, InN, Out string
	VicmDC        float64
	VoutMid       float64
	CLName        string // ignored; load is not needed for DC offset
	Temp          float64
	NodeSet       map[string]float64
	// SearchMV bounds the offset search (default ±25 mV).
	SearchMV float64
	// Workers bounds the Monte-Carlo parallelism: samples are fanned out
	// across this many goroutines (0 = GOMAXPROCS, 1 = serial). The
	// statistics are identical for any value — see RunOffset.
	Workers int
	// Span, when non-nil, parents one "mc-sample" span per draw — the
	// per-worker-item view of where the fan-out's wall time goes. Spans
	// observe only; the sample statistics are unchanged.
	Span *obs.Span
	// Ctx, when non-nil, is the context the sample fan-out derives its
	// worker contexts from: cancellation propagates, and pprof labels it
	// carries (the daemon's phase/topology/run_id) reach the per-sample
	// phase instrumentation. Nil means Background.
	Ctx context.Context
	// PerSolveRebuild selects the legacy evaluation that rebuilds the
	// netlist and engine for every bisection probe instead of batching
	// the ~21 solves of a sample onto one engine. The two paths are
	// bit-identical (the engine is structural, source values are read at
	// solve time, and every OP starts fresh from the node set); the flag
	// exists for the differential harness and the batching benchmark.
	PerSolveRebuild bool
}

// SimulateOffset nulls the output by bisection on the differential input
// for one mismatch sample and returns the input-referred offset.
func SimulateOffset(cfg OffsetConfig, s Sample) (float64, error) {
	search := cfg.SearchMV
	if search <= 0 {
		search = 25
	}
	var solve func(vid float64) (float64, error)
	if cfg.PerSolveRebuild {
		// Legacy path: a fresh netlist and engine per bisection probe.
		solve = func(vid float64) (float64, error) {
			ckt := cfg.Build()
			s.Apply(ckt)
			ckt.Add(
				&circuit.VSource{Name: "mcp", Pos: cfg.InP, Neg: circuit.Ground, DC: cfg.VicmDC + vid/2},
				&circuit.VSource{Name: "mcn", Pos: cfg.InN, Neg: circuit.Ground, DC: cfg.VicmDC - vid/2},
			)
			eng := sim.NewEngine(ckt, cfg.Temp)
			ns := map[string]float64{cfg.InP: cfg.VicmDC, cfg.InN: cfg.VicmDC, cfg.Out: cfg.VoutMid}
			for k, v := range cfg.NodeSet {
				ns[k] = v
			}
			op, err := eng.OP(sim.OPOptions{NodeSet: ns})
			if err != nil {
				return 0, err
			}
			return op.Volt(ckt, cfg.Out) - cfg.VoutMid, nil
		}
	} else {
		// Batched path: build the sample's netlist and engine once and
		// sweep only the input sources across the bisection. The engine
		// holds structure, source DC values are read when stamping, and
		// OP restarts from the node set every call, so each probe solves
		// the very system the legacy path would.
		ckt := cfg.Build()
		s.Apply(ckt)
		vp := &circuit.VSource{Name: "mcp", Pos: cfg.InP, Neg: circuit.Ground}
		vn := &circuit.VSource{Name: "mcn", Pos: cfg.InN, Neg: circuit.Ground}
		ckt.Add(vp, vn)
		eng := sim.NewEngine(ckt, cfg.Temp)
		ns := map[string]float64{cfg.InP: cfg.VicmDC, cfg.InN: cfg.VicmDC, cfg.Out: cfg.VoutMid}
		for k, v := range cfg.NodeSet {
			ns[k] = v
		}
		solve = func(vid float64) (float64, error) {
			vp.DC = cfg.VicmDC + vid/2
			vn.DC = cfg.VicmDC - vid/2
			op, err := eng.OP(sim.OPOptions{NodeSet: ns})
			if err != nil {
				return 0, err
			}
			return op.Volt(ckt, cfg.Out) - cfg.VoutMid, nil
		}
	}
	lo, hi := -search*1e-3, search*1e-3
	fLo, err := solve(lo)
	if err != nil {
		return 0, err
	}
	fHi, err := solve(hi)
	if err != nil {
		return 0, err
	}
	if math.Signbit(fLo) == math.Signbit(fHi) {
		return 0, fmt.Errorf("mc: offset outside ±%.0f mV search window", search)
	}
	var vid float64
	for i := 0; i < 18; i++ {
		vid = 0.5 * (lo + hi)
		f, err := solve(vid)
		if err != nil {
			return 0, err
		}
		if math.Signbit(f) == math.Signbit(fLo) {
			lo = vid
		} else {
			hi = vid
		}
	}
	return vid, nil
}

// OffsetStats summarizes a Monte-Carlo offset run. The JSON tags are
// the wire format shared by `loas mc -json` and the loasd daemon.
type OffsetStats struct {
	N         int     `json:"n"`
	MeanV     float64 `json:"mean_v"`
	SigmaV    float64 `json:"sigma_v"`
	WorstAbsV float64 `json:"worst_abs_v"`
	Failures  int     `json:"failures"` // samples whose offset escaped the search window
}

// sampleSeed derives the i-th sample's RNG seed from the run seed with a
// SplitMix64 step. Every sample owns an independent deterministic random
// stream, so the draw does not depend on which worker executes it or on
// how many workers exist.
func sampleSeed(seed int64, i int) int64 {
	z := uint64(seed) + uint64(i+1)*0x9e3779b97f4a7c15
	z ^= z >> 30
	z *= 0xbf58476d1ce4e9b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// mcSamples counts completed Monte-Carlo offset samples process-wide
// (the loasd /metrics throughput number).
var mcSamples = obs.Default.Counter("loas_mc_samples_total",
	"completed Monte-Carlo offset samples (including failed searches)")

// OffsetSample is the outcome of one Monte-Carlo draw. Index is the
// sample's global position in the run's seed-split stream, so a run can
// be split into ranges and resumed: sample i is identical no matter
// which call — or which worker — produced it.
type OffsetSample struct {
	Index   int     `json:"index"`
	OffsetV float64 `json:"offset_v"`
	OK      bool    `json:"ok"` // false: search escaped the window or DC failed
}

// OffsetSamples simulates samples [start, start+n) of the run seeded by
// seed, fanning them across cfg.Workers goroutines. Each sample draws
// from its own seed-split random stream (sampleSeed), so the outcome of
// sample i depends only on (seed, i) — never on start, the worker count
// or GOMAXPROCS. Results come back in index order.
func OffsetSamples(cfg OffsetConfig, start, n int, seed int64) ([]OffsetSample, error) {
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	// A failed offset search (outside the window, no DC convergence) is a
	// per-sample outcome counted by the reducer, never a pool error — so
	// the only errors MapN can surface here are worker panics.
	return parallel.MapN(ctx, cfg.Workers, n,
		func(sctx context.Context, i int) (OffsetSample, error) {
			idx := start + i
			span := cfg.Span.Child("mc-sample")
			span.SetAttr("index", strconv.Itoa(idx))
			defer span.End()
			var out OffsetSample
			obs.Phase(sctx, "mc-sample", func() {
				base := cfg.Build()
				s := Draw(rand.New(rand.NewSource(sampleSeed(seed, idx))), base)
				off, err := SimulateOffset(cfg, s)
				mcSamples.Inc()
				if err != nil {
					out = OffsetSample{Index: idx}
					return
				}
				out = OffsetSample{Index: idx, OffsetV: off, OK: true}
			})
			return out, nil
		})
}

// ReduceOffsets folds samples into offset statistics, accumulating in
// the order given. Reducing the concatenation of consecutive ranges is
// bit-identical to reducing one full run — float addition is performed
// in the same sample order either way.
func ReduceOffsets(samples []OffsetSample) *OffsetStats {
	stats := &OffsetStats{}
	var sum, sum2 float64
	for _, o := range samples {
		if !o.OK {
			stats.Failures++
			continue
		}
		stats.N++
		sum += o.OffsetV
		sum2 += o.OffsetV * o.OffsetV
		if a := math.Abs(o.OffsetV); a > stats.WorstAbsV {
			stats.WorstAbsV = a
		}
	}
	if stats.N == 0 {
		return stats
	}
	stats.MeanV = sum / float64(stats.N)
	stats.SigmaV = math.Sqrt(sum2/float64(stats.N) - stats.MeanV*stats.MeanV)
	return stats
}

// RunOffset draws n samples and returns the offset statistics, fanning
// the samples across cfg.Workers goroutines. The run is deterministic
// for a given seed and bit-identical for any worker count or GOMAXPROCS,
// and for any split of the index range into OffsetSamples calls: each
// sample owns a seed-split random stream and the statistics are reduced
// serially in sample order.
func RunOffset(cfg OffsetConfig, n int, seed int64) (*OffsetStats, error) {
	outs, err := OffsetSamples(cfg, 0, n, seed)
	if err != nil {
		return nil, err
	}
	stats := ReduceOffsets(outs)
	if stats.N == 0 {
		return stats, fmt.Errorf("mc: all %d samples failed", n)
	}
	return stats, nil
}

// EstimateOffsetSigma is the analytic companion (the sizing tool's quick
// reliability number): the input pair's own VT mismatch plus the load
// mismatch divided by the pair's transconductance ratio.
//
// σ²(Voff) = σ²VT(pair) + (gmLoad/gmPair)²·σ²VT(load)
func EstimateOffsetSigma(card *techno.MOSCard, wPair, lPair float64,
	loadCard *techno.MOSCard, wLoad, lLoad, gmRatio float64) float64 {
	sPair := card.AVT / math.Sqrt(wPair*lPair)
	sLoad := loadCard.AVT / math.Sqrt(wLoad*lLoad)
	return math.Sqrt(sPair*sPair + gmRatio*gmRatio*sLoad*sLoad)
}

// GradientVTShift converts a linear VT process gradient along a stack
// (volts per gate pitch) into per-device threshold shifts using the
// pattern's signed centroids. Perfect common-centroid devices get zero —
// the quantitative payoff of the paper's matched-stack style.
func GradientVTShift(p *stack.Pattern, voltsPerPitch float64) map[string]float64 {
	out := map[string]float64{}
	for name, c := range p.SignedCentroid() {
		out[name] = c * voltsPerPitch
	}
	return out
}

// GradientPairOffset returns the input-referred offset a VT gradient
// induces on a differential pair laid out as the given stack: the
// difference of the two devices' gradient shifts.
func GradientPairOffset(p *stack.Pattern, a, b string, voltsPerPitch float64) float64 {
	sh := GradientVTShift(p, voltsPerPitch)
	return sh[a] - sh[b]
}
