#!/bin/sh
# CI gate for the repository. The -race run is mandatory: the parallel
# synthesis engine (internal/parallel and its users in mc, core, repro,
# serve) is only shippable while the race detector, the worker-invariance
# tests and the shared-tech concurrency tests all pass.
set -eux

# Formatting gate: gofmt must have nothing to say.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...
go build ./cmd/...
go test -race ./...
