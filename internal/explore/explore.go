// Package explore is the design-space exploration layer on top of the
// synthesis engine: it turns many cheap, dedupable spec→layout probes
// into a per-topology Pareto front over gain / GBW / power / area.
//
// Two probe planners are provided. Grid mode walks a deterministic
// cartesian product of spec axes (GBW × PM × CL over a base spec).
// Guided mode is the result-history-guided search of the EEsizer
// lineage: it seeds with the grid, then repeatedly expands the current
// front by perturbing the specs of non-dominated points toward harder
// and easier targets, within a fixed probe budget.
//
// Everything here is bit-deterministic at any worker count and under
// any input order: probe lists are canonically sorted before fanning
// out, results are collected index-ordered, and the front uses a total
// tie-breaking order — the same request yields byte-identical reports
// on every rerun, which is what lets the serving layer cache them.
package explore

import (
	"context"
	"sort"

	"loas/internal/obs"
	"loas/internal/parallel"
	"loas/internal/sizing"
)

// Metrics are the four objectives of the front, taken from the
// *extracted* (post-layout) performance of a synthesis: gain and GBW
// are maximized, power and area minimized.
type Metrics struct {
	GainDB  float64 `json:"gain_db"`
	GBWHz   float64 `json:"gbw_hz"`
	PowerW  float64 `json:"power_w"`
	AreaUM2 float64 `json:"area_um2"`
}

// Point is one probed specification and its outcome. Infeasible points
// (the sizing plan cannot meet the spec) stay in the probe log with
// Feasible=false and never enter the front.
type Point struct {
	Index    int            `json:"index"` // position in the canonical probe order
	Topology string         `json:"topology"`
	Spec     sizing.OTASpec `json:"spec"`
	Feasible bool           `json:"feasible"`
	Error    string         `json:"error,omitempty"` // infeasibility reason
	Metrics  Metrics        `json:"metrics"`
}

// Dominates reports whether a is at least as good as b on every
// objective and strictly better on at least one (gain↑, GBW↑, power↓,
// area↓). Equal metric vectors do not dominate each other — both
// survive into the front.
func Dominates(a, b Metrics) bool {
	if a.GainDB < b.GainDB || a.GBWHz < b.GBWHz ||
		a.PowerW > b.PowerW || a.AreaUM2 > b.AreaUM2 {
		return false
	}
	return a.GainDB > b.GainDB || a.GBWHz > b.GBWHz ||
		a.PowerW < b.PowerW || a.AreaUM2 < b.AreaUM2
}

// Front returns the non-dominated subset of the feasible points in
// canonical order: descending GBW, then descending gain, ascending
// power, ascending area, and finally the canonical spec key — a total
// order, so the front is byte-stable however the probes were produced.
func Front(points []Point) []Point {
	var out []Point
	for i, p := range points {
		if !p.Feasible {
			continue
		}
		dominated := false
		for j, q := range points {
			if i == j || !q.Feasible {
				continue
			}
			if Dominates(q.Metrics, p.Metrics) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return frontLess(out[i], out[j]) })
	return out
}

// frontLess is the front's total tie-breaking order.
func frontLess(a, b Point) bool {
	if a.Metrics.GBWHz != b.Metrics.GBWHz {
		return a.Metrics.GBWHz > b.Metrics.GBWHz
	}
	if a.Metrics.GainDB != b.Metrics.GainDB {
		return a.Metrics.GainDB > b.Metrics.GainDB
	}
	if a.Metrics.PowerW != b.Metrics.PowerW {
		return a.Metrics.PowerW < b.Metrics.PowerW
	}
	if a.Metrics.AreaUM2 != b.Metrics.AreaUM2 {
		return a.Metrics.AreaUM2 < b.Metrics.AreaUM2
	}
	return SpecKey(a.Topology, a.Spec) < SpecKey(b.Topology, b.Spec)
}

// Prober executes one spec→layout probe. Implementations must be safe
// for concurrent use. A spec the sizing plan cannot meet returns
// feasible=false with a nil error; a non-nil error is an infrastructure
// failure (queue shed, shutdown) and aborts the whole exploration —
// a partial front would silently break the determinism contract.
type Prober interface {
	Probe(ctx context.Context, topology string, spec sizing.OTASpec) (m Metrics, feasible bool, reason string, err error)
}

// Config drives one exploration of one topology.
type Config struct {
	Topology string
	Base     sizing.OTASpec // axes override its GBW/PM/CL fields
	Axes     Axes
	Guided   bool    // expand the front after the grid seed
	Budget   int     // total probe bound in guided mode (default 64)
	Step     float64 // guided perturbation fraction (default 0.15)
	Workers  int     // concurrent probes (<= 0: GOMAXPROCS)
	Rounds   int     // guided round bound (default 6)
	Span     *obs.Span
}

// Result is one topology's exploration outcome.
type Result struct {
	Topology string  `json:"topology"`
	Probes   []Point `json:"probes"` // canonical order, feasible and not
	Front    []Point `json:"front"`
	Rounds   int     `json:"rounds"` // probe waves executed (grid seed = 1)
}

// Domain counters on the process-wide registry, beside the sizing and
// MC counters.
var (
	exploreProbes = obs.Default.Counter("loas_explore_probes_total",
		"design-space probes executed by internal/explore (grid and guided)")
	exploreRounds = obs.Default.Counter("loas_explore_rounds_total",
		"probe waves executed by internal/explore")
)

// Run executes one exploration: grid seed, then (in guided mode)
// front-biased expansion rounds until the budget, the round bound or
// the candidate pool is exhausted. Probes within a wave fan across
// workers index-ordered; waves are barriers, so the result is
// bit-identical at any worker count.
func Run(ctx context.Context, p Prober, cfg Config) (*Result, error) {
	if cfg.Budget <= 0 {
		cfg.Budget = 64
	}
	if cfg.Step <= 0 {
		cfg.Step = 0.15
	}
	if cfg.Rounds <= 0 {
		cfg.Rounds = 6
	}
	seed := Grid(cfg.Base, cfg.Axes)
	if cfg.Guided && len(seed) > cfg.Budget {
		seed = seed[:cfg.Budget]
	}
	res := &Result{Topology: cfg.Topology}
	probed := map[string]bool{}
	wave := seed
	for len(wave) > 0 {
		res.Rounds++
		exploreRounds.Inc()
		span := cfg.Span.Child("explore-round")
		points, err := probeWave(ctx, p, cfg, wave, len(res.Probes))
		span.End()
		if err != nil {
			return nil, err
		}
		for _, pt := range points {
			probed[SpecKey(cfg.Topology, pt.Spec)] = true
		}
		res.Probes = append(res.Probes, points...)
		res.Front = Front(res.Probes)
		if !cfg.Guided || res.Rounds >= cfg.Rounds || len(res.Probes) >= cfg.Budget {
			break
		}
		wave = Neighbors(res.Front, cfg.Step, probed)
		if left := cfg.Budget - len(res.Probes); len(wave) > left {
			wave = wave[:left]
		}
	}
	return res, nil
}

// probeWave fans one wave of specs across the workers, index-ordered.
func probeWave(ctx context.Context, p Prober, cfg Config, specs []sizing.OTASpec, base int) ([]Point, error) {
	type outcome struct {
		m        Metrics
		feasible bool
		reason   string
	}
	outs, err := parallel.MapN(ctx, cfg.Workers, len(specs), func(ctx context.Context, i int) (outcome, error) {
		m, feasible, reason, err := p.Probe(ctx, cfg.Topology, specs[i])
		return outcome{m, feasible, reason}, err
	})
	if err != nil {
		return nil, err
	}
	points := make([]Point, len(specs))
	for i, o := range outs {
		exploreProbes.Inc()
		points[i] = Point{
			Index:    base + i,
			Topology: cfg.Topology,
			Spec:     specs[i],
			Feasible: o.feasible,
			Error:    o.reason,
			Metrics:  o.m,
		}
	}
	return points, nil
}
