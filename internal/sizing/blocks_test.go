package sizing

import (
	"math"
	"testing"

	"loas/internal/circuit"
	"loas/internal/layout/cairo"
	"loas/internal/sim"
	"loas/internal/techno"
)

func TestSizeMirrorRoundTrip(t *testing.T) {
	tech := techno.Default060()
	m, err := SizeMirror(tech, MirrorSpec{
		Type: techno.NMOS, IRef: 20e-6, Ratios: []int{3, 6},
	})
	if err != nil {
		t.Fatal(err)
	}
	if m.WUnit <= 0 {
		t.Fatal("no unit width")
	}
	// Simulate: reference current in, branch currents out at 3× and 6×.
	ckt, err := m.Netlist("mir", "vdd", "ref", []string{"o1", "o2"})
	if err != nil {
		t.Fatal(err)
	}
	ckt.Add(
		&circuit.VSource{Name: "dd", Pos: "vdd", Neg: "0", DC: 3.3},
		&circuit.ISource{Name: "ir", Pos: "vdd", Neg: "ref", DC: 20e-6},
		&circuit.Resistor{Name: "l1", A: "vdd", B: "o1", R: 10e3},
		&circuit.Resistor{Name: "l2", A: "vdd", B: "o2", R: 5e3},
	)
	eng := sim.NewEngine(ckt, tech.Temp)
	r, err := eng.OP(sim.OPOptions{})
	if err != nil {
		t.Fatal(err)
	}
	i1 := r.MOSOPs["mir_o1"].ID
	i2 := r.MOSOPs["mir_o2"].ID
	if math.Abs(i1-60e-6)/60e-6 > 0.15 {
		t.Fatalf("3x branch = %.1f µA, want ≈ 60", i1*1e6)
	}
	if math.Abs(i2-120e-6)/120e-6 > 0.15 {
		t.Fatalf("6x branch = %.1f µA, want ≈ 120", i2*1e6)
	}
	// The 6x branch must mirror at 2x the 3x branch far more accurately
	// (ratio errors cancel).
	if math.Abs(i2/i1-2) > 0.05 {
		t.Fatalf("branch ratio = %.3f, want 2", i2/i1)
	}
}

func TestSizeMirrorValidation(t *testing.T) {
	tech := techno.Default060()
	if _, err := SizeMirror(tech, MirrorSpec{Type: techno.NMOS, IRef: 0}); err == nil {
		t.Fatal("zero reference accepted")
	}
	if _, err := SizeMirror(tech, MirrorSpec{Type: techno.NMOS, IRef: 1e-6, Ratios: []int{0}}); err == nil {
		t.Fatal("zero ratio accepted")
	}
}

func TestMirrorStackModuleBuilds(t *testing.T) {
	tech := techno.Default060()
	m, err := SizeMirror(tech, MirrorSpec{Type: techno.NMOS, IRef: 20e-6, Ratios: []int{3, 6}})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := m.StackModule("mir", "ref", []string{"o1", "o2"}, "gnd", "gnd")
	if err != nil {
		t.Fatal(err)
	}
	b, err := mod.Build(tech, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Geoms) != 3 {
		t.Fatalf("stack module built %d devices, want 3", len(b.Geoms))
	}
	if _, err := m.StackModule("mir", "ref", []string{"only-one"}, "gnd", "gnd"); err == nil {
		t.Fatal("mismatched branch nets accepted")
	}
}

func fiveTSpec() OTASpec {
	return OTASpec{VDD: 3.3, GBW: 30e6, PM: 60, CL: 2e-12,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.5, OutHigh: 2.8}
}

func TestSizeFiveT(t *testing.T) {
	tech := techno.Default060()
	ps, _ := Case(1)
	d, err := SizeFiveT(tech, fiveTSpec(), ps)
	if err != nil {
		t.Fatal(err)
	}
	if d.Predicted.GBW < 0.97*30e6 {
		t.Fatalf("GBW %.1f MHz misses target", d.Predicted.GBW/1e6)
	}
	if d.Predicted.PhaseDeg < 60 {
		t.Fatalf("PM %.1f° misses target", d.Predicted.PhaseDeg)
	}
	// Single stage: modest gain.
	if d.Predicted.DCGainDB < 25 || d.Predicted.DCGainDB > 60 {
		t.Fatalf("5T gain %.1f dB implausible", d.Predicted.DCGainDB)
	}

	// DC check: all saturated.
	ckt := d.Netlist("5t")
	vcm := d.NodeEst[NetInP]
	ckt.Add(
		&circuit.VSource{Name: "ip", Pos: NetInP, Neg: "0", DC: vcm},
		&circuit.VSource{Name: "in", Pos: NetInN, Neg: "0", DC: vcm},
		&circuit.Capacitor{Name: "load", A: NetOut, B: "0", C: 2e-12},
	)
	eng := sim.NewEngine(ckt, tech.Temp)
	r, err := eng.OP(sim.OPOptions{NodeSet: d.NodeSet()})
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{MF1, MF2, MF3, MF4, MF5} {
		if r.MOSOPs[name].Region.String() != "saturation" {
			t.Fatalf("%s in %v", name, r.MOSOPs[name].Region)
		}
	}
}

func TestFiveTLayout(t *testing.T) {
	tech := techno.Default060()
	ps, _ := Case(1)
	d, err := SizeFiveT(tech, fiveTSpec(), ps)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := d.Layout().Plan(tech, cairo.Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	for _, inst := range []string{MF1, MF2, MF3, MF4, MF5} {
		if _, ok := plan.Parasitics.DeviceGeom[inst]; !ok {
			t.Fatalf("%s missing from the layout", inst)
		}
	}
	if plan.Parasitics.NetCap[NetOut] <= 0 {
		t.Fatal("out unrouted")
	}
}

func TestFiveTRejectsTightPM(t *testing.T) {
	tech := techno.Default060()
	ps, _ := Case(1)
	spec := fiveTSpec()
	spec.GBW = 3e9 // beyond the 0.6 µm device fT — must be rejected
	if _, err := SizeFiveT(tech, spec, ps); err == nil {
		t.Fatal("absurd GBW accepted")
	}
}
