// Package sizing is the knowledge-based circuit sizing tool — the COMDIAC
// role in the paper. Design plans for fixed topologies size every
// transistor from a performance specification by direct, monotonic
// numerical iteration on the exact device model shared with the simulator:
// transistor operating points (effective gate voltages) are fixed first,
// currents are estimated from the gain-bandwidth target, widths follow
// from the model, and non-input channel lengths are iterated until the
// phase-margin requirement is met.
//
// Layout parasitics enter through a ParasiticState, which carries the
// junction model (none / one-fold worst case / exact from the layout
// tool) and the wiring report of the last layout call — exactly the four
// awareness levels of the paper's Table 1.
package sizing

import (
	"fmt"
	"math"

	"loas/internal/device"
	"loas/internal/layout/extract"
)

// OTASpec is the performance specification of an operational
// transconductance amplifier (the paper's §5 inputs).
type OTASpec struct {
	VDD float64 `json:"vdd"` // supply (V)
	GBW float64 `json:"gbw"` // gain-bandwidth product (Hz)
	PM  float64 `json:"pm"`  // phase margin (degrees)
	CL  float64 `json:"cl"`  // load capacitance (F)
	// Input common-mode range (V).
	ICMLow  float64 `json:"icm_low"`
	ICMHigh float64 `json:"icm_high"`
	// Output voltage range (V).
	OutLow  float64 `json:"out_low"`
	OutHigh float64 `json:"out_high"`
}

// Default65MHz reproduces the paper's example specification: VDD = 3.3 V,
// GBW = 65 MHz, PM = 65°, CL = 3 pF, ICM = [−0.55, 1.84] V,
// out = [0.51, 2.31] V.
func Default65MHz() OTASpec {
	return OTASpec{
		VDD: 3.3, GBW: 65e6, PM: 65, CL: 3e-12,
		ICMLow: -0.55, ICMHigh: 1.84,
		OutLow: 0.51, OutHigh: 2.31,
	}
}

// Performance carries the eleven rows of the paper's Table 1, in SI units.
type Performance struct {
	DCGainDB float64 `json:"dc_gain_db"`
	GBW      float64 `json:"gbw_hz"`
	PhaseDeg float64 `json:"phase_margin_deg"`
	SlewRate float64 `json:"slew_rate_v_per_s"`
	CMRRDB   float64 `json:"cmrr_db"`
	Offset   float64 `json:"offset_v"`                 // V (input referred)
	Rout     float64 `json:"rout_ohm"`                 // Ω
	NoiseRMS float64 `json:"noise_rms_v"`              // V, input referred, integrated 1 Hz … GBW
	NoiseTh  float64 `json:"noise_thermal_v_rthz"`     // V/√Hz, white plateau
	NoiseFl1 float64 `json:"noise_flicker_1hz_v_rthz"` // V/√Hz at 1 Hz
	Power    float64 `json:"power_w"`
}

// Row formats one spec-vs-measured pair the way Table 1 prints them.
func (p Performance) Row(name string, q Performance) string {
	f := func(v float64) string { return fmt.Sprintf("%.4g", v) }
	switch name {
	case "gain":
		return fmt.Sprintf("DC gain (dB)            %s(%s)", f(p.DCGainDB), f(q.DCGainDB))
	case "gbw":
		return fmt.Sprintf("GBW (MHz)               %s(%s)", f(p.GBW/1e6), f(q.GBW/1e6))
	case "pm":
		return fmt.Sprintf("Phase margin (deg)      %s(%s)", f(p.PhaseDeg), f(q.PhaseDeg))
	case "sr":
		return fmt.Sprintf("Slew rate (V/us)        %s(%s)", f(p.SlewRate/1e6), f(q.SlewRate/1e6))
	case "cmrr":
		return fmt.Sprintf("CMRR (dB)               %s(%s)", f(p.CMRRDB), f(q.CMRRDB))
	case "offset":
		return fmt.Sprintf("Offset (mV)             %s(%s)", f(p.Offset*1e3), f(q.Offset*1e3))
	case "rout":
		return fmt.Sprintf("Output res (Mohm)       %s(%s)", f(p.Rout/1e6), f(q.Rout/1e6))
	case "noise":
		return fmt.Sprintf("Input noise (uV)        %s(%s)", f(p.NoiseRMS*1e6), f(q.NoiseRMS*1e6))
	case "thermal":
		return fmt.Sprintf("Thermal noise (nV/rtHz) %s(%s)", f(p.NoiseTh*1e9), f(q.NoiseTh*1e9))
	case "flicker":
		return fmt.Sprintf("Flicker @1Hz (uV/rtHz)  %s(%s)", f(p.NoiseFl1*1e6), f(q.NoiseFl1*1e6))
	case "power":
		return fmt.Sprintf("Power (mW)              %s(%s)", f(p.Power*1e3), f(q.Power*1e3))
	}
	return ""
}

// RowNames lists the Table-1 rows in print order.
func RowNames() []string {
	return []string{"gain", "gbw", "pm", "sr", "cmrr", "offset", "rout",
		"noise", "thermal", "flicker", "power"}
}

// ParasiticState tells the sizing plan which layout parasitics to account
// for; the four Table-1 cases are fixed combinations of its fields.
type ParasiticState struct {
	// Junction: how source/drain junction capacitance is modelled during
	// sizing.
	Junction extract.JunctionModel
	// Routing: include wiring, coupling and well capacitances from the
	// last layout report.
	Routing bool
	// Report is the last layout parasitic report (nil before the first
	// layout call).
	Report *extract.Parasitics
	// Memo, when non-nil, memoizes exact-repeat device-model evaluations
	// (width/bias bisections, design-point operating points) across the
	// sizing iterations of one synthesis run. Keys are exact float bit
	// patterns, so results are byte-identical with the memo on or off;
	// nil disables caching (the differential harness's reference path).
	Memo *device.Memo
}

// Case returns the ParasiticState of the paper's Table-1 case n (1–4).
func Case(n int) (ParasiticState, error) {
	switch n {
	case 1:
		return ParasiticState{Junction: extract.JunctionNone}, nil
	case 2:
		return ParasiticState{Junction: extract.JunctionOneFold}, nil
	case 3:
		return ParasiticState{Junction: extract.JunctionExact}, nil
	case 4:
		return ParasiticState{Junction: extract.JunctionExact, Routing: true}, nil
	}
	return ParasiticState{}, fmt.Errorf("sizing: table-1 case must be 1–4, got %d", n)
}

// deviceGeom resolves the junction geometry the sizing plan should assume
// for a device of the given name and current width.
func (ps *ParasiticState) deviceGeom(oneFold func(w float64) device.DiffGeom, name string, w float64) device.DiffGeom {
	switch ps.Junction {
	case extract.JunctionNone:
		return device.DiffGeom{}
	case extract.JunctionOneFold:
		return oneFold(w)
	case extract.JunctionExact:
		if ps.Report != nil {
			if g, ok := ps.Report.DeviceGeom[name]; ok {
				return g
			}
		}
		// Before the first layout call, exact mode falls back to the
		// one-fold worst case (the paper's first sizing pass does the
		// same: "the first circuit sizing is done assuming one fold per
		// transistor").
		return oneFold(w)
	}
	return device.DiffGeom{}
}

// wiringCap returns the wiring (+coupling, +well) capacitance the sizing
// plan should attach to a net.
func (ps *ParasiticState) wiringCap(net string) float64 {
	if !ps.Routing || ps.Report == nil {
		return 0
	}
	return ps.Report.TotalNetCap(net) + ps.Report.CouplingTo(net)
}

// DB converts a ratio to decibels.
func DB(x float64) float64 { return 20 * math.Log10(math.Abs(x)) }
