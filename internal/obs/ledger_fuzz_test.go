package obs

import (
	"bytes"
	"testing"
)

// FuzzLedgerDecode pins the ledger reader's two contracts: arbitrary
// bytes never panic it, and every record it does accept re-encodes
// canonically — enc(dec(enc(dec(line)))) is byte-identical to
// enc(dec(line)), so a replayed-and-rewritten ledger is stable.
func FuzzLedgerDecode(f *testing.F) {
	line, err := EncodeRunRecord(RunRecord{
		ID: "run-000001", Seq: 1, Source: "daemon", Kind: "synthesize",
		Topology: "folded-cascode", Outcome: "ok", DurationNS: 123456,
		Converged: true, LayoutCalls: 3,
		Spans:      []SpanRecord{{ID: 1, Name: "request", DurationNS: 123456}},
		Iterations: []Iteration{{Call: 1, DeltaF: -1, OutCapF: 101.5e-15, W1: 92.4e-6}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(line)
	f.Add([]byte("{}\n"))
	f.Add([]byte("{\"id\":\"x\",\"seq\":9,\"source\":\"cli\",\"kind\":\"mc\",\"outcome\":\"error\",\"error\":\"boom\",\"duration_ns\":1}\n"))
	f.Add([]byte("not json\n{\"truncated"))
	f.Add(bytes.Repeat([]byte("\n"), 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		recs := DecodeRunRecords(data, 64) // must not panic
		for _, r := range recs {
			enc1, err := EncodeRunRecord(r)
			if err != nil {
				// Arbitrary input can smuggle unencodable values (NaN
				// via no path — JSON has no NaN literal — but guard
				// anyway); an encode error is fine, a panic is not.
				continue
			}
			back := DecodeRunRecords(enc1, 0)
			if len(back) != 1 {
				t.Fatalf("canonical line decoded to %d records", len(back))
			}
			enc2, err := EncodeRunRecord(back[0])
			if err != nil {
				t.Fatalf("re-encode failed: %v", err)
			}
			if !bytes.Equal(enc1, enc2) {
				t.Fatalf("round-trip not byte-identical:\n%s\n%s", enc1, enc2)
			}
		}
	})
}
