// Run-history subcommands: `loas runs`, `loas show` and `loas tail`
// are the CLI face of the daemon's run ledger — list recent runs,
// render one run's span tree, and follow the live /v1/events stream.

package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"loas/internal/obs"
	"loas/internal/serve"
)

// daemonGet fetches one daemon endpoint and decodes the JSON payload,
// folding non-200 responses (which carry {"error": ...} bodies) into a
// readable error.
func daemonGet(base, path string, dst any) error {
	resp, err := http.Get(strings.TrimRight(base, "/") + path)
	if err != nil {
		return fmt.Errorf("is loasd running at %s? %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("loasd: %s", e.Error)
		}
		return fmt.Errorf("loasd: %s returned status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// runRuns lists the daemon's recent runs (GET /v1/runs) as a table.
func runRuns(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("runs", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8086", "loasd base URL")
	topology := fs.String("topology", "", "only runs of this topology")
	kind := fs.String("kind", "", "only runs of this kind (synthesize|table1|mc|layout.svg|batch|explore)")
	outcome := fs.String("outcome", "", "only runs with this outcome (ok|cache-hit|dedup|error)")
	parent := fs.String("parent", "", "only children of this batch/explore run ID")
	converged := fs.String("converged", "", "only converged (true) or unconverged (false) runs")
	minDur := fs.Duration("min-duration", 0, "only runs at least this long (e.g. 150ms)")
	limit := fs.Int("limit", 20, "maximum rows")
	asJSON := fs.Bool("json", false, "emit the RunsReport as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	q := url.Values{}
	for k, v := range map[string]string{
		"topology": *topology, "kind": *kind, "outcome": *outcome,
		"converged": *converged, "parent": *parent,
	} {
		if v != "" {
			q.Set(k, v)
		}
	}
	if *minDur > 0 {
		q.Set("min_duration", minDur.String())
	}
	q.Set("limit", fmt.Sprint(*limit))

	var rep serve.RunsReport
	if err := daemonGet(*addr, "/v1/runs?"+q.Encode(), &rep); err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(out, rep)
	}
	fmt.Fprintf(out, "%d runs retained, %d shown (newest first):\n", rep.Total, len(rep.Runs))
	fmt.Fprintf(out, "  %-12s %-11s %-16s %-10s %-5s %5s %12s\n",
		"ID", "KIND", "TOPOLOGY", "OUTCOME", "CONV", "ITERS", "DURATION")
	for _, r := range rep.Runs {
		conv := "-"
		if r.Converged {
			conv = "yes"
		}
		fmt.Fprintf(out, "  %-12s %-11s %-16s %-10s %-5s %5d %12s\n",
			r.ID, r.Kind, r.Topology, r.Outcome, conv, r.Iterations,
			time.Duration(r.DurationNS).Round(time.Microsecond))
	}
	return nil
}

// runShow renders one run (GET /v1/runs/{id}): header, indented span
// tree, and the convergence table when the run recorded iterations.
func runShow(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("show", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8086", "loasd base URL")
	asJSON := fs.Bool("json", false, "emit the full obs.RunRecord as JSON")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: loas show [-addr URL] <run-id>")
	}
	id := fs.Arg(0)
	var rec obs.RunRecord
	if err := daemonGet(*addr, "/v1/runs/"+url.PathEscape(id), &rec); err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(out, rec)
	}
	fmt.Fprintf(out, "%s  %s  %s", rec.ID, rec.Kind, rec.Outcome)
	if rec.Topology != "" {
		fmt.Fprintf(out, "  topology=%s", rec.Topology)
	}
	if rec.Case != 0 {
		fmt.Fprintf(out, "  case=%d", rec.Case)
	}
	fmt.Fprintf(out, "  %s (%s)\n", time.Duration(rec.DurationNS).Round(time.Microsecond),
		time.Unix(0, rec.StartUnixNS).Format(time.RFC3339))
	if rec.Error != "" {
		fmt.Fprintf(out, "error: %s\n", rec.Error)
	}
	if rec.Parent != "" {
		fmt.Fprintf(out, "parent: %s (loas runs -parent %s lists the siblings)\n", rec.Parent, rec.Parent)
	}
	if rec.CacheKey != "" {
		fmt.Fprintf(out, "cache key: %s\n", rec.CacheKey)
	}
	if len(rec.Spans) > 0 {
		fmt.Fprintln(out, "\nspan tree:")
		io.WriteString(out, obs.SpanTreeText(rec.Spans))
	}
	if len(rec.Iterations) > 0 {
		fmt.Fprintln(out, "\nconvergence trace:")
		io.WriteString(out, obs.ConvergenceTable(rec.Iterations))
	}
	return nil
}

// Tail reconnect pacing: after a stream drop the client retries with
// exponential backoff, reset to the floor once events flow again.
// tailSleep is swapped out by tests.
const (
	tailBackoffFloor = 500 * time.Millisecond
	tailBackoffCap   = 30 * time.Second
)

var tailSleep = time.Sleep

// runTail follows the daemon's live run stream (GET /v1/events) and
// prints one line per lifecycle event. A dropped stream — daemon
// restart, idle timeout, proxy hiccup — is reconnected with exponential
// backoff rather than ending the tail; only a failure to connect at all
// on the first attempt is fatal. With -n, the tail exits after that
// many events across all connections.
func runTail(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tail", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8086", "loasd base URL")
	n := fs.Int("n", 0, "exit after this many events (0 = follow forever)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	base := strings.TrimRight(*addr, "/")
	fmt.Fprintf(out, "tailing %s/v1/events\n", base)

	seen := 0
	connectedOnce := false
	backoff := tailBackoffFloor
	for {
		got, connected, err := tailOnce(base, out, *n, &seen)
		if *n > 0 && seen >= *n {
			return nil
		}
		if err != nil && !connectedOnce && !connected {
			// Never reached the stream: loasd isn't there — fail fast
			// instead of backing off against nothing.
			return err
		}
		connectedOnce = true
		if got > 0 {
			backoff = tailBackoffFloor
		}
		if err != nil {
			fmt.Fprintf(out, "stream lost (%v), reconnecting in %s\n", err, backoff)
		} else {
			fmt.Fprintf(out, "stream closed, reconnecting in %s\n", backoff)
		}
		tailSleep(backoff)
		if backoff *= 2; backoff > tailBackoffCap {
			backoff = tailBackoffCap
		}
	}
}

// tailOnce holds one /v1/events connection until it drops (nil error)
// or fails (connect refusal, non-200, read error), printing events as
// they arrive and counting them into *seen. It returns how many events
// this connection delivered and whether the stream was reached at all.
func tailOnce(base string, out io.Writer, n int, seen *int) (got int, connected bool, err error) {
	resp, err := http.Get(base + "/v1/events")
	if err != nil {
		return 0, false, fmt.Errorf("is loasd running at %s? %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, false, fmt.Errorf("loasd: /v1/events returned status %d", resp.StatusCode)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var event string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: ") && event != "":
			printEvent(out, event, strings.TrimPrefix(line, "data: "))
			event = ""
			got++
			*seen++
			if n > 0 && *seen >= n {
				return got, true, nil
			}
		}
	}
	return got, true, sc.Err()
}

// printEvent renders one SSE payload as a single log line.
func printEvent(out io.Writer, event, data string) {
	switch event {
	case "run-start":
		var v struct {
			ID       string `json:"id"`
			Kind     string `json:"kind"`
			Topology string `json:"topology"`
			Case     int    `json:"case"`
		}
		if json.Unmarshal([]byte(data), &v) != nil {
			break
		}
		fmt.Fprintf(out, "%s  start  %s", v.ID, v.Kind)
		if v.Topology != "" {
			fmt.Fprintf(out, " topology=%s", v.Topology)
		}
		if v.Case != 0 {
			fmt.Fprintf(out, " case=%d", v.Case)
		}
		fmt.Fprintln(out)
		return
	case "iteration":
		var v struct {
			RunID string  `json:"run_id"`
			Call  int     `json:"call"`
			Delta float64 `json:"delta_f"`
			Folds int     `json:"folds"`
		}
		if json.Unmarshal([]byte(data), &v) != nil {
			break
		}
		delta := "first"
		if v.Delta >= 0 {
			delta = fmt.Sprintf("Δ %.2f fF", v.Delta*1e15)
		}
		fmt.Fprintf(out, "%s  iter   call %d (%s, %d folds)\n", v.RunID, v.Call, delta, v.Folds)
		return
	case "run-end":
		var v struct {
			ID          string `json:"id"`
			Outcome     string `json:"outcome"`
			DurationNS  int64  `json:"duration_ns"`
			Converged   bool   `json:"converged"`
			LayoutCalls int    `json:"layout_calls"`
			Error       string `json:"error"`
		}
		if json.Unmarshal([]byte(data), &v) != nil {
			break
		}
		fmt.Fprintf(out, "%s  end    %s in %s", v.ID, v.Outcome,
			time.Duration(v.DurationNS).Round(time.Microsecond))
		if v.LayoutCalls > 0 {
			fmt.Fprintf(out, " (%d layout calls, converged=%v)", v.LayoutCalls, v.Converged)
		}
		if v.Error != "" {
			fmt.Fprintf(out, " error=%q", v.Error)
		}
		fmt.Fprintln(out)
		return
	}
	// Unknown or undecodable event: print it raw rather than dropping it.
	fmt.Fprintf(out, "%s %s\n", event, data)
}
