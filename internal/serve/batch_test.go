package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"loas/internal/obs"
	"loas/internal/sizing"
)

// TestBatchDedupExactSyntheses is the batch acceptance contract: a
// 50-item batch with k unique specs costs exactly k backend syntheses —
// duplicates replay from the cache or join the in-flight leader — and
// the report comes back in submission order.
func TestBatchDedupExactSyntheses(t *testing.T) {
	stub := &stubBackend{}
	s, ts := newStubServer(t, Config{}, stub)

	const n, k = 50, 4
	var b strings.Builder
	b.WriteString(`{"items":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"case":%d}`, 1+i%k)
	}
	b.WriteString(`]}`)

	resp, data := post(t, ts.URL+"/v1/batch", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	// The report is never served from cache; the canonical batch key is
	// still echoed for workload correlation.
	if h := resp.Header.Get("X-Loas-Cache"); h != "none" {
		t.Fatalf("X-Loas-Cache = %q, want none", h)
	}
	var rep BatchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("batch report: %v", err)
	}
	if rep.Key == "" || rep.Key != resp.Header.Get("X-Loas-Key") {
		t.Fatalf("report key %q != header %q", rep.Key, resp.Header.Get("X-Loas-Key"))
	}
	if rep.Items != n || rep.Unique != k || rep.Errors != 0 || len(rep.Results) != n {
		t.Fatalf("report = items %d unique %d errors %d results %d, want %d/%d/0/%d",
			rep.Items, rep.Unique, rep.Errors, len(rep.Results), n, k, n)
	}

	if got := stub.calls.Load(); got != k {
		t.Fatalf("backend ran %d times for %d items with %d unique specs, want %d", got, n, k, k)
	}
	if st := s.Stats(); st.BackendRuns != k {
		t.Fatalf("stats backend runs = %d, want %d", st.BackendRuns, k)
	}

	// Submission order, one leader per unique key, duplicates reused.
	leaders := 0
	for i, r := range rep.Results {
		if r.Index != i {
			t.Fatalf("result %d has index %d (order lost)", i, r.Index)
		}
		if r.Case != 1+i%k || r.Key == "" || r.RunID == "" {
			t.Fatalf("result %d = %+v", i, r)
		}
		switch r.Outcome {
		case outcomeOK:
			leaders++
			if r.Cache != "miss" {
				t.Fatalf("leader %d cache = %q, want miss", i, r.Cache)
			}
		case outcomeCacheHit, outcomeDedup:
			if r.Cache != "hit" && r.Cache != "dedup" {
				t.Fatalf("follower %d cache = %q", i, r.Cache)
			}
		default:
			t.Fatalf("result %d outcome %q", i, r.Outcome)
		}
		if len(r.Summary) == 0 || r.Error != "" {
			t.Fatalf("result %d missing summary or has error: %+v", i, r)
		}
	}
	if leaders != k {
		t.Fatalf("%d leader (outcome ok) items, want exactly %d", leaders, k)
	}

	// Items sharing a key replayed the same bytes the leader produced.
	byKey := map[string][]byte{}
	for _, r := range rep.Results {
		if prev, ok := byKey[r.Key]; ok {
			if !bytes.Equal(prev, r.Summary) {
				t.Fatalf("key %s has diverging summaries", r.Key)
			}
			continue
		}
		byKey[r.Key] = r.Summary
	}
	if len(byKey) != k {
		t.Fatalf("%d distinct item keys, want %d", len(byKey), k)
	}
}

// TestBatchKeyOrderInvariance pins the canonical batch key: a multiset
// hash over item keys — shuffle-invariant, multiplicity-sensitive.
func TestBatchKeyOrderInvariance(t *testing.T) {
	a, b, c := "k-aaa", "k-bbb", "k-ccc"
	base := batchKey([]string{a, b, c})
	for _, perm := range [][]string{
		{a, c, b}, {b, a, c}, {b, c, a}, {c, a, b}, {c, b, a},
	} {
		if batchKey(perm) != base {
			t.Fatalf("permutation %v changed the batch key", perm)
		}
	}
	if batchKey([]string{a, b}) == base {
		t.Fatal("dropping an item kept the batch key")
	}
	if batchKey([]string{a, a, b, c}) == base {
		t.Fatal("duplicating an item kept the batch key (multiplicity lost)")
	}
	if batchKey([]string{a, b, "k-ddd"}) == base {
		t.Fatal("swapping an item kept the batch key")
	}
}

// TestBatchShuffledItemsShareKey: over HTTP, the same workload in a
// different item order lands on the same X-Loas-Key and costs zero
// extra syntheses (every item is already cached).
func TestBatchShuffledItemsShareKey(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	r1, _ := post(t, ts.URL+"/v1/batch", `{"items":[{"case":1},{"case":2},{"case":1}]}`)
	r2, data := post(t, ts.URL+"/v1/batch", `{"items":[{"case":2},{"case":1},{"case":1}]}`)
	if k1, k2 := r1.Header.Get("X-Loas-Key"), r2.Header.Get("X-Loas-Key"); k1 == "" || k1 != k2 {
		t.Fatalf("shuffled batch keys %q vs %q, want equal", k1, k2)
	}
	if got := stub.calls.Load(); got != 2 {
		t.Fatalf("backend calls = %d, want 2 (rerun must be all cache hits)", got)
	}
	var rep BatchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	for i, r := range rep.Results {
		if r.Outcome != outcomeCacheHit {
			t.Fatalf("rerun item %d outcome %q, want cache-hit", i, r.Outcome)
		}
	}
}

// TestBatchParentLinkedRuns: the batch is one parent run (kind=batch)
// and every item a child synthesize run carrying Parent, so
// /v1/runs?parent=<id> reassembles the batch.
func TestBatchParentLinkedRuns(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	_, data := post(t, ts.URL+"/v1/batch", `{"items":[{"case":1},{"case":2},{"case":1}]}`)
	var rep BatchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}

	var parents RunsReport
	getJSON(t, ts.URL+"/v1/runs?kind=batch", &parents)
	if len(parents.Runs) != 1 || parents.Runs[0].Kind != "batch" || parents.Runs[0].Outcome != outcomeOK {
		t.Fatalf("batch run listing = %+v", parents.Runs)
	}
	parent := parents.Runs[0].ID

	var kids RunsReport
	getJSON(t, ts.URL+"/v1/runs?parent="+parent, &kids)
	if len(kids.Runs) != 3 {
		t.Fatalf("children = %d, want 3: %+v", len(kids.Runs), kids.Runs)
	}
	childIDs := map[string]bool{}
	for _, r := range kids.Runs {
		if r.Kind != "synthesize" || r.Parent != parent {
			t.Fatalf("child = %+v, want synthesize with parent %s", r, parent)
		}
		childIDs[r.ID] = true
	}
	for i, r := range rep.Results {
		if !childIDs[r.RunID] {
			t.Fatalf("report item %d run %s missing from the parent filter", i, r.RunID)
		}
	}

	// The parent filter composes with the kind filter and excludes the
	// parent itself.
	var none RunsReport
	getJSON(t, ts.URL+"/v1/runs?parent="+parent+"&kind=batch", &none)
	if len(none.Runs) != 0 {
		t.Fatalf("parent+kind=batch = %+v, want empty", none.Runs)
	}
}

// TestBatchEventsStream: a subscriber sees batch-start (with the item
// and unique counts), one batch-item frame per item carrying the parent
// run ID, and a final batch-end.
func TestBatchEventsStream(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{}, stub)
	frames, stop := sseClient(t, ts.URL)
	defer stop()

	post(t, ts.URL+"/v1/batch", `{"items":[{"case":1},{"case":1},{"case":2}]}`)

	var start batchStartEvent
	items := map[int]batchItemEvent{}
	var end batchEndEvent
	for end.ID == "" {
		f := nextFrame(t, frames)
		switch f.event {
		case "batch-start":
			if err := json.Unmarshal([]byte(f.data), &start); err != nil {
				t.Fatalf("batch-start payload %q: %v", f.data, err)
			}
		case "batch-item":
			var ev batchItemEvent
			if err := json.Unmarshal([]byte(f.data), &ev); err != nil {
				t.Fatalf("batch-item payload %q: %v", f.data, err)
			}
			items[ev.Index] = ev
		case "batch-end":
			if err := json.Unmarshal([]byte(f.data), &end); err != nil {
				t.Fatalf("batch-end payload %q: %v", f.data, err)
			}
		}
	}
	if start.ID == "" || start.Kind != "batch" || start.Items != 3 || start.Unique != 2 {
		t.Fatalf("batch-start = %+v", start)
	}
	if len(items) != 3 {
		t.Fatalf("batch-item frames for indices %v, want 0..2", items)
	}
	for i := 0; i < 3; i++ {
		ev, ok := items[i]
		if !ok || ev.Parent != start.ID || ev.Outcome == "" {
			t.Fatalf("batch-item %d = %+v (parent %s)", i, ev, start.ID)
		}
	}
	if end.ID != start.ID || end.Outcome != outcomeOK || end.Items != 3 || end.Errors != 0 {
		t.Fatalf("batch-end = %+v", end)
	}
}

// TestBatchValidation: malformed batches are rejected up front — before
// any item reaches the backend — with errors naming the offending item.
func TestBatchValidation(t *testing.T) {
	stub := &stubBackend{}
	_, ts := newStubServer(t, Config{BatchMaxItems: 2}, stub)
	for _, tc := range []struct{ body, wantIn string }{
		{`{"items":[]}`, "at least one item"},
		{`{}`, "at least one item"},
		{`{"items":[{},{},{}]}`, "3 items exceeds the 2-item bound"},
		{`{"items":[{"case":9}]}`, "item 0"},
		{`{"items":[{"case":1},{"topology":"no-such-ota"}]}`, "item 1"},
		{`not json`, ""},
	} {
		resp, data := post(t, ts.URL+"/v1/batch", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d (%s), want 400", tc.body, resp.StatusCode, data)
		}
		if tc.wantIn != "" && !strings.Contains(string(data), tc.wantIn) {
			t.Errorf("%s: error %s does not mention %q", tc.body, data, tc.wantIn)
		}
	}
	if stub.calls.Load() != 0 {
		t.Fatalf("invalid batches reached the backend %d times", stub.calls.Load())
	}
}

// caseFailingBackend fails any synthesis of one case, deterministically.
type caseFailingBackend struct {
	stubBackend
	failCase int
}

func (b *caseFailingBackend) Synthesize(ctx context.Context, spec sizing.OTASpec, req *SynthesizeRequest) ([]byte, []obs.Iteration, error) {
	if req.Case == b.failCase {
		b.calls.Add(1)
		return nil, nil, fmt.Errorf("sizing: case %d is out of reach", req.Case)
	}
	return b.stubBackend.Synthesize(ctx, spec, req)
}

// TestBatchItemErrorIsReportData: one failing item does not fail the
// batch — HTTP stays 200, the failure is per-item report data, and the
// parent run records the error outcome.
func TestBatchItemErrorIsReportData(t *testing.T) {
	stub := &caseFailingBackend{failCase: 3}
	_, ts := newStubServer(t, Config{}, stub)

	resp, data := post(t, ts.URL+"/v1/batch", `{"items":[{"case":1},{"case":3},{"case":1}]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, data)
	}
	var rep BatchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 {
		t.Fatalf("report errors = %d, want 1", rep.Errors)
	}
	bad := rep.Results[1]
	if bad.Outcome != outcomeError || bad.Error == "" || len(bad.Summary) != 0 {
		t.Fatalf("failing item = %+v", bad)
	}
	for _, i := range []int{0, 2} {
		if r := rep.Results[i]; r.Error != "" || len(r.Summary) == 0 {
			t.Fatalf("healthy item %d = %+v", i, r)
		}
	}

	var parents RunsReport
	getJSON(t, ts.URL+"/v1/runs?kind=batch", &parents)
	if len(parents.Runs) != 1 || parents.Runs[0].Outcome != outcomeError {
		t.Fatalf("batch parent run = %+v, want outcome error", parents.Runs)
	}

	mbody := metricsBody(t, ts.URL)
	if !strings.Contains(mbody, "loas_batch_item_errors_total 1") {
		t.Fatalf("metrics missing item error counter:\n%s", mbody)
	}
}

// metricsBody fetches /metrics as text.
func metricsBody(t *testing.T, base string) string {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestBatchExploreMetrics: the batch/explore counters, the size and
// front histograms, and the queue saturation gauge are all exposed.
func TestBatchExploreMetrics(t *testing.T) {
	stub := &summaryBackend{}
	_, ts := newStubServer(t, Config{}, stub)

	post(t, ts.URL+"/v1/batch", `{"items":[{"case":1},{"case":2}]}`)
	post(t, ts.URL+"/v1/explore", `{"axes":{"gbw":[4e7,6.5e7]},"case":1}`)

	out := metricsBody(t, ts.URL)
	for _, want := range []string{
		"loas_batch_requests_total 1",
		"loas_batch_items_total 2",
		"loas_batch_item_errors_total 0",
		"# TYPE loas_batch_size_items histogram",
		"loas_batch_size_items_count 1",
		"loas_explore_requests_total 1",
		"loas_explore_probe_runs_total 2",
		"# TYPE loas_explore_front_size histogram",
		"loas_explore_front_size_count 1",
		"# TYPE loas_queue_saturation gauge",
		"loas_queue_saturation 0",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("metrics missing %q:\n%s", want, out)
		}
	}
}
