package sim

import (
	"fmt"
	"math"
	"math/cmplx"
	"sort"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/linalg"
)

// NoiseSource is one physical noise generator in the circuit.
type NoiseSource struct {
	Elem string // owning element instance name
	Kind string // "thermal" or "flicker"
	// a, b are the unknown indices the noise current flows between
	// (into a, out of b); −1 is ground.
	a, b int
	// psd returns the one-sided current PSD (A²/Hz) at frequency f.
	psd func(f float64) float64
}

// NoisePoint is the noise analysis result at one frequency.
type NoisePoint struct {
	Freq float64
	// OutPSD is the total output noise voltage PSD (V²/Hz).
	OutPSD float64
	// BySource maps "elem/kind" to its output PSD contribution (V²/Hz).
	BySource map[string]float64
}

// noiseSources enumerates every generator with its attachment nodes.
func (e *Engine) noiseSources(op *OPResult) []NoiseSource {
	var out []NoiseSource
	for _, el := range e.Ckt.Elements {
		switch t := el.(type) {
		case *circuit.Resistor:
			r := t.R
			out = append(out, NoiseSource{
				Elem: t.Name, Kind: "thermal",
				a: e.unknownOf(t.A), b: e.unknownOf(t.B),
				psd: func(float64) float64 { return device.ResistorNoisePSD(r, e.Temp) },
			})
		case *circuit.MOSFET:
			mop := op.MOSOPs[t.Name]
			dev := &t.Dev
			a, b := e.unknownOf(t.D), e.unknownOf(t.S)
			out = append(out, NoiseSource{
				Elem: t.Name, Kind: "thermal", a: a, b: b,
				psd: func(float64) float64 {
					th, _ := dev.NoisePSD(mop, 0, e.Temp)
					return th
				},
			})
			out = append(out, NoiseSource{
				Elem: t.Name, Kind: "flicker", a: a, b: b,
				psd: func(f float64) float64 {
					_, fl := dev.NoisePSD(mop, f, e.Temp)
					return fl
				},
			})
		}
	}
	return out
}

// Noise computes the output noise voltage PSD at node out for each
// frequency, using the adjoint (transposed-system) method: one extra solve
// per frequency yields the transimpedance from every internal node to the
// output simultaneously.
func (e *Engine) Noise(op *OPResult, out string, freqs []float64) ([]NoisePoint, error) {
	outIdx := e.unknownOf(out)
	if outIdx < 0 {
		return nil, fmt.Errorf("sim: noise output node %q is ground", out)
	}
	st := e.compileAC(op)
	sources := e.noiseSources(op)

	points := make([]NoisePoint, 0, len(freqs))
	for _, f := range freqs {
		y := st.assemble(2 * math.Pi * f)
		// Transpose in place into a new matrix.
		yt := linalg.NewComplex(y.N)
		for i := 0; i < y.N; i++ {
			for j := 0; j < y.N; j++ {
				yt.Set(i, j, y.At(j, i))
			}
		}
		lu, err := linalg.FactorComplex(yt)
		if err != nil {
			return nil, fmt.Errorf("sim: noise adjoint singular at %g Hz: %w", f, err)
		}
		rhs := make([]complex128, y.N)
		rhs[outIdx] = 1
		z := lu.Solve(rhs)

		pt := NoisePoint{Freq: f, BySource: map[string]float64{}}
		for _, s := range sources {
			var tz complex128
			if s.a >= 0 {
				tz += z[s.a]
			}
			if s.b >= 0 {
				tz -= z[s.b]
			}
			mag2 := real(tz)*real(tz) + imag(tz)*imag(tz)
			contrib := s.psd(f) * mag2
			pt.BySource[s.Elem+"/"+s.Kind] += contrib
			pt.OutPSD += contrib
		}
		points = append(points, pt)
	}
	return points, nil
}

// TopNoiseContributors returns the n largest contributors at a point,
// formatted for reports.
func (p *NoisePoint) TopNoiseContributors(n int) []string {
	type kv struct {
		k string
		v float64
	}
	var all []kv
	for k, v := range p.BySource {
		all = append(all, kv{k, v})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].v > all[j].v })
	if n > len(all) {
		n = len(all)
	}
	out := make([]string, 0, n)
	for _, e := range all[:n] {
		out = append(out, fmt.Sprintf("%s: %.3g V²/Hz", e.k, e.v))
	}
	return out
}

// IntegratePSD integrates a PSD given as parallel freq/psd slices using
// log-trapezoidal quadrature and returns the RMS value (e.g. volts).
func IntegratePSD(freqs, psd []float64) float64 {
	if len(freqs) != len(psd) || len(freqs) < 2 {
		return math.NaN()
	}
	var total float64
	for i := 1; i < len(freqs); i++ {
		df := freqs[i] - freqs[i-1]
		total += 0.5 * (psd[i] + psd[i-1]) * df
	}
	return math.Sqrt(total)
}

// GainAt is a helper extracting |V(out)| from an AC point; callers use it
// to convert output noise to input-referred noise.
func GainAt(r *ACResult, ckt *circuit.Circuit, node string) float64 {
	return cmplx.Abs(r.Volt(ckt, node))
}
