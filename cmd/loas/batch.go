// Batch and exploration subcommands: `loas batch` fans a file of
// synthesize requests through the daemon's POST /v1/batch; `loas
// explore` sweeps a spec grid (or runs the guided search) through
// POST /v1/explore and prints the per-topology Pareto fronts.

package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"time"

	"loas/internal/serve"
)

// daemonPost posts a JSON body to one daemon endpoint and decodes the
// JSON payload, folding error bodies like daemonGet.
func daemonPost(base, path string, body any, dst any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	resp, err := http.Post(strings.TrimRight(base, "/")+path,
		"application/json", bytes.NewReader(payload))
	if err != nil {
		return fmt.Errorf("is loasd running at %s? %w", base, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e struct {
			Error string `json:"error"`
		}
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("loasd: %s", e.Error)
		}
		return fmt.Errorf("loasd: %s returned status %d", path, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(dst)
}

// readInput loads a -f argument: a path, or "-" for stdin.
func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// runBatch posts many synthesize requests in one round trip. The input
// file holds either a full BatchRequest {"items":[...]} or a bare JSON
// array of synthesize bodies; without -f, one default item per -n.
func runBatch(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("batch", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8086", "loasd base URL")
	file := fs.String("f", "", `items file: {"items":[...]} or a bare array of synthesize bodies ("-" = stdin)`)
	n := fs.Int("n", 0, "without -f: submit n copies of the default synthesize request")
	caseN := fs.Int("case", 0, "without -f: the case of those default items (1-4)")
	topology := fs.String("topology", "", "without -f: the topology of those default items")
	asJSON := fs.Bool("json", false, "emit the BatchReport as JSON (same encoding as POST /v1/batch)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var req serve.BatchRequest
	switch {
	case *file != "":
		data, err := readInput(*file)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &req); err != nil {
			// Not a BatchRequest object — accept a bare item array too.
			if aerr := json.Unmarshal(data, &req.Items); aerr != nil {
				return fmt.Errorf("batch input is neither {\"items\":[...]} nor a bare item array: %w", err)
			}
		}
	case *n > 0:
		for i := 0; i < *n; i++ {
			req.Items = append(req.Items, serve.SynthesizeRequest{
				Topology: *topology, Case: *caseN,
			})
		}
	default:
		return fmt.Errorf("usage: loas batch -f items.json | loas batch -n N [-case C] [-topology T]")
	}

	var rep serve.BatchReport
	start := time.Now()
	if err := daemonPost(*addr, "/v1/batch", req, &rep); err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(out, rep)
	}
	fmt.Fprintf(out, "batch of %d items (%d unique) in %s, %d errors\n",
		rep.Items, rep.Unique, time.Since(start).Round(time.Millisecond), rep.Errors)
	fmt.Fprintf(out, "  %-5s %-16s %-4s %-9s %-6s %s\n", "INDEX", "TOPOLOGY", "CASE", "OUTCOME", "CACHE", "RUN")
	for _, r := range rep.Results {
		cache := r.Cache
		if cache == "" {
			cache = "-"
		}
		fmt.Fprintf(out, "  %-5d %-16s %-4d %-9s %-6s %s\n",
			r.Index, r.Topology, r.Case, r.Outcome, cache, r.RunID)
		if r.Error != "" {
			fmt.Fprintf(out, "        error: %s\n", r.Error)
		}
	}
	return nil
}

// parseAxis splits a comma-separated list of floats ("4e7,6.5e7").
func parseAxis(s string) ([]float64, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil {
			return nil, fmt.Errorf("axis value %q: %w", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// runExplore sweeps a spec grid or runs the guided search through the
// daemon and prints each topology's Pareto front.
func runExplore(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("explore", flag.ExitOnError)
	addr := fs.String("addr", "http://127.0.0.1:8086", "loasd base URL")
	file := fs.String("f", "", `full ExploreRequest JSON file ("-" = stdin); overrides the axis flags`)
	topologies := fs.String("topologies", "", "comma-separated design plans (default: the daemon default)")
	gbw := fs.String("gbw", "", "comma-separated GBW axis values in Hz (e.g. 4e7,6.5e7,9e7)")
	pm := fs.String("pm", "", "comma-separated phase-margin axis values in degrees")
	cl := fs.String("cl", "", "comma-separated load-capacitance axis values in F")
	mode := fs.String("mode", "grid", "probe planner: grid | guided")
	budget := fs.Int("budget", 0, "guided-mode probe budget (0 = daemon default)")
	step := fs.Float64("step", 0, "guided-mode perturbation fraction (0 = daemon default)")
	caseN := fs.Int("case", 0, "parasitic-awareness case of each probe (0 = daemon default)")
	asJSON := fs.Bool("json", false, "emit the ExploreReport as JSON (same encoding as POST /v1/explore)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var req serve.ExploreRequest
	if *file != "" {
		data, err := readInput(*file)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &req); err != nil {
			return fmt.Errorf("explore input: %w", err)
		}
	} else {
		var err error
		if req.Axes.GBW, err = parseAxis(*gbw); err != nil {
			return err
		}
		if req.Axes.PM, err = parseAxis(*pm); err != nil {
			return err
		}
		if req.Axes.CL, err = parseAxis(*cl); err != nil {
			return err
		}
		if *topologies != "" {
			for _, t := range strings.Split(*topologies, ",") {
				req.Topologies = append(req.Topologies, strings.TrimSpace(t))
			}
		}
		req.Mode = *mode
		req.Budget = *budget
		req.Step = *step
		req.Case = *caseN
	}

	var rep serve.ExploreReport
	start := time.Now()
	if err := daemonPost(*addr, "/v1/explore", req, &rep); err != nil {
		return err
	}
	if *asJSON {
		return writeJSON(out, rep)
	}
	fmt.Fprintf(out, "%s exploration, case %d, %s\n", rep.Mode, rep.Case,
		time.Since(start).Round(time.Millisecond))
	for _, tf := range rep.Results {
		fmt.Fprintf(out, "\n%s: %d probes (%d infeasible), %d rounds, front of %d:\n",
			tf.Topology, tf.Probes, tf.Infeasible, tf.Rounds, len(tf.Front))
		fmt.Fprintf(out, "  %-10s %-10s %-10s %-10s %-12s %s\n",
			"GBW", "GAIN", "POWER", "AREA", "SPEC GBW", "SPEC PM")
		for _, p := range tf.Front {
			fmt.Fprintf(out, "  %-10s %-10s %-10s %-10s %-12s %.1f°\n",
				fmtHz(p.Metrics.GBWHz), fmt.Sprintf("%.1f dB", p.Metrics.GainDB),
				fmt.Sprintf("%.2f mW", p.Metrics.PowerW*1e3),
				fmt.Sprintf("%.0f µm²", p.Metrics.AreaUM2),
				fmtHz(p.Spec.GBW), p.Spec.PM)
		}
	}
	return nil
}

// fmtHz renders a frequency with an engineering unit.
func fmtHz(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.2f GHz", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.1f MHz", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.1f kHz", v/1e3)
	}
	return fmt.Sprintf("%.0f Hz", v)
}
