package repro

import (
	"loas/internal/core"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// TopologyGolden runs the full case-4 layout-in-the-loop synthesis for
// one registered topology under its default specification and projects
// the result onto the golden schema — the same hex-exact encoding and
// differ as the Table-1 golden, so each topology's converged sizing is
// pinned to the ulp independently of the others.
func TopologyGolden(tech *techno.Tech, topology string) (*GoldenReport, error) {
	plan, err := sizing.Lookup(topology)
	if err != nil {
		return nil, err
	}
	spec := plan.DefaultSpec()
	res, err := core.Synthesize(tech, spec, core.Options{Topology: plan.Name, Case: 4})
	if err != nil {
		return nil, err
	}
	return BuildGolden(tech, spec, []Table1Case{{Case: 4, Result: res}}), nil
}
