package sizing

import (
	"fmt"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/cairo"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

// This file holds the "fixed routines … for frequently used building
// blocks" of the knowledge-based tool: ratioed current mirrors and the
// classic five-transistor OTA. They demonstrate the hierarchy the paper
// credits for making new topologies cheap to add.

// MirrorSpec sizes a ratioed current mirror.
type MirrorSpec struct {
	Type techno.MOSType
	// IRef is the reference (diode) branch current (A).
	IRef float64
	// Ratios lists output-branch multiples of IRef (e.g. {3, 6} builds
	// the paper's Fig. 3 with the 1× diode).
	Ratios []int
	// Veff sets the mirror overdrive (compliance = accuracy trade);
	// default 0.25 V.
	Veff float64
	// L sets the channel length; longer = better matching and higher
	// output resistance. Default 2 µm.
	L float64
}

// Mirror is a sized ratioed current mirror.
type Mirror struct {
	Spec MirrorSpec
	tech *techno.Tech
	// WUnit is the unit (diode) device width; branch i has width
	// WUnit·Ratios[i] realized as Ratios[i] stacked units.
	WUnit float64
	// Compliance is the minimum output voltage for saturation (≈ Veff
	// plus margin).
	Compliance float64
}

// SizeMirror sizes the unit device on the exact model.
func SizeMirror(tech *techno.Tech, spec MirrorSpec) (*Mirror, error) {
	if spec.IRef <= 0 {
		return nil, fmt.Errorf("sizing: mirror needs positive reference current")
	}
	if spec.Veff <= 0 {
		spec.Veff = 0.25
	}
	if spec.L <= 0 {
		spec.L = 2 * techno.Micron
	}
	for _, r := range spec.Ratios {
		if r < 1 {
			return nil, fmt.Errorf("sizing: mirror ratio %d must be ≥ 1", r)
		}
	}
	card := tech.Card(spec.Type)
	w, err := device.SizeForCurrent(card, spec.L, spec.Veff, 0, spec.IRef,
		tech.Temp, techno.NMToMeters(tech.Rules.ActiveWidth), 10000*techno.Micron)
	if err != nil {
		return nil, fmt.Errorf("sizing: mirror unit: %w", err)
	}
	return &Mirror{Spec: spec, tech: tech, WUnit: w, Compliance: spec.Veff + 0.1}, nil
}

// StackModule renders the mirror as a matched-stack layout module: the
// diode is device 0, branches follow, all interleaved with end dummies —
// the Fig. 3 generator as a reusable block.
func (m *Mirror) StackModule(label, refNet string, outNets []string, sourceNet, bulkNet string) (*cairo.MatchedStack, error) {
	if len(outNets) != len(m.Spec.Ratios) {
		return nil, fmt.Errorf("sizing: mirror has %d branches, %d nets given",
			len(m.Spec.Ratios), len(outNets))
	}
	gate := refNet
	devs := []stack.Device{{Name: label + "_ref", Units: 1, DrainNet: refNet, GateNet: gate}}
	currents := map[string]float64{refNet: m.Spec.IRef}
	for i, r := range m.Spec.Ratios {
		devs = append(devs, stack.Device{
			Name: fmt.Sprintf("%s_o%d", label, i+1), Units: r,
			DrainNet: outNets[i], GateNet: gate,
		})
		currents[outNets[i]] = float64(r) * m.Spec.IRef
	}
	return &cairo.MatchedStack{
		Label: label, Type: m.Spec.Type,
		Devices:          devs,
		SourceNet:        sourceNet,
		BulkNet:          bulkNet,
		WidthPerBaseUnit: m.WUnit,
		L:                m.Spec.L,
		Currents:         currents,
		EndDummies:       true,
		Splits:           []int{1, 2},
	}, nil
}

// Netlist builds the mirror circuit with the reference current source.
func (m *Mirror) Netlist(name, vddNet, refNet string, outNets []string) (*circuit.Circuit, error) {
	if len(outNets) != len(m.Spec.Ratios) {
		return nil, fmt.Errorf("sizing: mirror has %d branches, %d nets given",
			len(m.Spec.Ratios), len(outNets))
	}
	c := circuit.New(name)
	card := m.tech.Card(m.Spec.Type)
	src, bulk := circuit.Ground, circuit.Ground
	if m.Spec.Type == techno.PMOS {
		src, bulk = vddNet, vddNet
	}
	c.Add(&circuit.MOSFET{
		Name: name + "_ref", D: refNet, G: refNet, S: src, B: bulk,
		Dev: device.MOS{Card: card, W: m.WUnit, L: m.Spec.L},
	})
	for i, r := range m.Spec.Ratios {
		c.Add(&circuit.MOSFET{
			Name: fmt.Sprintf("%s_o%d", name, i+1), D: outNets[i], G: refNet, S: src, B: bulk,
			Dev: device.MOS{Card: card, W: m.WUnit * float64(r), L: m.Spec.L},
		})
	}
	return c, nil
}
