package serve

import (
	"container/list"
	"sync"
	"time"
)

// Value is a cached response: the exact bytes the server will replay,
// plus the content type they were produced under. Replaying bytes (not
// re-encoding structs) is what makes cache hits byte-identical to the
// response that populated them.
type Value struct {
	Body        []byte
	ContentType string
}

const entryOverhead = 128 // accounting estimate per entry (key, pointers, list node)

func (v Value) size() int64 {
	return int64(len(v.Body)) + int64(len(v.ContentType)) + entryOverhead
}

// CacheStats is a point-in-time snapshot of the cache counters.
type CacheStats struct {
	Entries     int   `json:"entries"`
	Bytes       int64 `json:"bytes"`
	MaxBytes    int64 `json:"max_bytes"`
	Hits        int64 `json:"hits"`
	Misses      int64 `json:"misses"`
	Evictions   int64 `json:"evictions"`
	Expirations int64 `json:"expirations"`
}

// Cache is a byte-bounded LRU with optional TTL over content-addressed
// synthesis results. All methods are safe for concurrent use.
type Cache struct {
	mu       sync.Mutex
	maxBytes int64
	ttl      time.Duration // 0 = entries never expire
	ll       *list.List    // front = most recently used
	items    map[string]*list.Element
	bytes    int64

	hits, misses, evictions, expirations int64

	now func() time.Time // injectable clock for TTL tests
}

type cacheEntry struct {
	key     string
	val     Value
	expires time.Time // zero = never
}

// NewCache builds a cache bounded to maxBytes of stored response bytes
// (plus a small per-entry overhead). maxBytes <= 0 disables caching
// entirely; ttl <= 0 disables expiry.
func NewCache(maxBytes int64, ttl time.Duration) *Cache {
	if ttl < 0 {
		ttl = 0
	}
	return &Cache{
		maxBytes: maxBytes,
		ttl:      ttl,
		ll:       list.New(),
		items:    make(map[string]*list.Element),
		now:      time.Now,
	}
}

// Get returns the cached value for key and whether it was present and
// fresh. An expired entry counts as a miss and is removed.
func (c *Cache) Get(key string) (Value, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return Value{}, false
	}
	ent := el.Value.(*cacheEntry)
	if !ent.expires.IsZero() && c.now().After(ent.expires) {
		c.removeLocked(el)
		c.expirations++
		c.misses++
		return Value{}, false
	}
	c.ll.MoveToFront(el)
	c.hits++
	return ent.val, true
}

// Put stores the value under key, evicting least-recently-used entries
// until the byte bound holds. A value larger than the whole cache is
// not stored.
func (c *Cache) Put(key string, v Value) {
	if v.size() > c.maxBytes {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var expires time.Time
	if c.ttl > 0 {
		expires = c.now().Add(c.ttl)
	}
	if el, ok := c.items[key]; ok {
		ent := el.Value.(*cacheEntry)
		c.bytes += v.size() - ent.val.size()
		ent.val, ent.expires = v, expires
		c.ll.MoveToFront(el)
	} else {
		el := c.ll.PushFront(&cacheEntry{key: key, val: v, expires: expires})
		c.items[key] = el
		c.bytes += v.size()
	}
	for c.bytes > c.maxBytes {
		back := c.ll.Back()
		if back == nil {
			break
		}
		c.removeLocked(back)
		c.evictions++
	}
}

func (c *Cache) removeLocked(el *list.Element) {
	ent := el.Value.(*cacheEntry)
	c.ll.Remove(el)
	delete(c.items, ent.key)
	c.bytes -= ent.val.size()
}

// Stats snapshots the counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Entries:     len(c.items),
		Bytes:       c.bytes,
		MaxBytes:    c.maxBytes,
		Hits:        c.hits,
		Misses:      c.misses,
		Evictions:   c.evictions,
		Expirations: c.expirations,
	}
}
