// Package sim is the circuit simulator: DC operating point
// (Newton–Raphson with gmin stepping), small-signal AC analysis (complex
// MNA), noise analysis (adjoint method) and transient analysis
// (trapezoidal integration).
//
// It substitutes for the commercial simulator/extractor combination used in
// the paper's evaluation. Crucially, it shares the exact transistor model
// (package device) with the sizing tool, which is the paper's own accuracy
// recipe.
package sim

import (
	"fmt"

	"loas/internal/circuit"
)

// Engine binds a circuit to an unknown ordering: node voltages first
// (ground excluded), then one branch current per voltage source and per
// VCVS, in insertion order.
type Engine struct {
	Ckt  *circuit.Circuit
	Temp float64 // K

	nNodes   int // unknown node voltages = NumNodes-1
	branch   map[string]int
	nBranch  int
	size     int
	branches []branchElem
}

type branchElem struct {
	name string
	elem circuit.Element
}

// NewEngine prepares an engine for the circuit at temperature temp (K).
func NewEngine(ckt *circuit.Circuit, temp float64) *Engine {
	e := &Engine{Ckt: ckt, Temp: temp, branch: map[string]int{}}
	e.nNodes = ckt.NumNodes() - 1
	for _, el := range ckt.Elements {
		switch el.(type) {
		case *circuit.VSource, *circuit.VCVS:
			e.branch[el.ElemName()] = e.nNodes + e.nBranch
			e.branches = append(e.branches, branchElem{el.ElemName(), el})
			e.nBranch++
		}
	}
	e.size = e.nNodes + e.nBranch
	return e
}

// Size returns the MNA system dimension.
func (e *Engine) Size() int { return e.size }

// nodeUnknown maps a circuit node index to its position in the unknown
// vector; ground returns -1.
func (e *Engine) nodeUnknown(nodeIdx int) int { return nodeIdx - 1 }

// unknownOf interns the node name and returns its unknown index (-1 for
// ground). Panics on unknown nodes: elements intern their nodes at Add
// time, so a miss is a bug.
func (e *Engine) unknownOf(name string) int {
	i, ok := e.Ckt.NodeIndex(name)
	if !ok {
		panic(fmt.Sprintf("sim: node %q not in circuit %q", name, e.Ckt.Name))
	}
	return e.nodeUnknown(i)
}

// voltsAt reads a node voltage from an unknown vector (ground = 0).
func voltsAt(x []float64, u int) float64 {
	if u < 0 {
		return 0
	}
	return x[u]
}

// BranchIndex returns the unknown index of a named source's branch current
// and whether the source exists.
func (e *Engine) BranchIndex(name string) (int, bool) {
	i, ok := e.branch[name]
	return i, ok
}
