package sim

import (
	"fmt"
	"math"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/linalg"
)

// OPOptions tunes the DC solver.
type OPOptions struct {
	// NodeSet seeds initial node voltages by name (good seeds from the
	// sizing tool make convergence immediate).
	NodeSet map[string]float64
	// MaxIter per gmin step (default 200).
	MaxIter int
	// VTol is the voltage convergence tolerance (default 1 µV).
	VTol float64
	// MaxStep clamps the Newton update per unknown (default 0.5 V).
	MaxStep float64
	// GminStart/GminEnd bound the gmin continuation (defaults 1e-2 → 1e-12).
	GminStart, GminEnd float64
}

func (o *OPOptions) defaults() {
	if o.MaxIter <= 0 {
		o.MaxIter = 200
	}
	if o.VTol <= 0 {
		o.VTol = 1e-6
	}
	if o.MaxStep <= 0 {
		o.MaxStep = 0.5
	}
	if o.GminStart <= 0 {
		o.GminStart = 1e-2
	}
	if o.GminEnd <= 0 {
		o.GminEnd = 1e-12
	}
}

// OPResult is a converged DC operating point.
type OPResult struct {
	// V holds node voltages indexed by circuit node index (0 = ground).
	V []float64
	// BranchI holds voltage-source branch currents by source name;
	// positive current flows from Pos through the source to Neg.
	BranchI map[string]float64
	// MOSOPs holds per-transistor bias data by instance name.
	MOSOPs map[string]device.OP
	// Iterations is the total Newton iteration count across gmin steps.
	Iterations int
}

// Volt returns the voltage of a named node.
func (r *OPResult) Volt(ckt *circuit.Circuit, node string) float64 {
	i, ok := ckt.NodeIndex(node)
	if !ok {
		return math.NaN()
	}
	return r.V[i]
}

// SupplyCurrent returns the magnitude of the current delivered by the
// named supply source.
func (r *OPResult) SupplyCurrent(name string) float64 {
	return math.Abs(r.BranchI[name])
}

// mosPartials evaluates the drain current (into the drain terminal) and
// its partial derivatives with respect to the four terminal voltages,
// using central differences on the full device model. This sidesteps all
// polarity/swap bookkeeping: whatever the model does, the Jacobian matches
// it exactly.
func mosPartials(m *circuit.MOSFET, vd, vg, vs, vb, temp float64) (id, dd, dg, ds, db float64) {
	const h = 1e-6
	f := func(vd, vg, vs, vb float64) float64 {
		return m.Dev.EvalID(vg, vd, vs, vb, temp)
	}
	id = f(vd, vg, vs, vb)
	dd = (f(vd+h, vg, vs, vb) - f(vd-h, vg, vs, vb)) / (2 * h)
	dg = (f(vd, vg+h, vs, vb) - f(vd, vg-h, vs, vb)) / (2 * h)
	ds = (f(vd, vg, vs+h, vb) - f(vd, vg, vs-h, vb)) / (2 * h)
	db = (f(vd, vg, vs, vb+h) - f(vd, vg, vs, vb-h)) / (2 * h)
	return id, dd, dg, ds, db
}

// stampDC assembles the Jacobian J and residual f at candidate solution x
// for a given gmin and source scale (0..1). The residual convention is
// f(x) = 0 at solution; Newton solves J·Δ = −f.
// tNow < 0 means pure DC (sources at their DC values); tNow ≥ 0 evaluates
// time-dependent sources at that instant (used by transient analysis).
func (e *Engine) stampDC(x []float64, gmin, srcScale, tNow float64, j *linalg.Real, f []float64) {
	j.Zero()
	for i := range f {
		f[i] = 0
	}
	// gmin from every node to ground keeps the Jacobian non-singular
	// through continuation.
	for i := 0; i < e.nNodes; i++ {
		j.Add(i, i, gmin)
		f[i] += gmin * x[i]
	}

	for _, el := range e.Ckt.Elements {
		switch t := el.(type) {
		case *circuit.Resistor:
			a, b := e.unknownOf(t.A), e.unknownOf(t.B)
			g := 1 / t.R
			va, vb := voltsAt(x, a), voltsAt(x, b)
			i := g * (va - vb)
			if a >= 0 {
				j.Add(a, a, g)
				f[a] += i
				if b >= 0 {
					j.Add(a, b, -g)
				}
			}
			if b >= 0 {
				j.Add(b, b, g)
				f[b] -= i
				if a >= 0 {
					j.Add(b, a, -g)
				}
			}

		case *circuit.Capacitor:
			// Open at DC.

		case *circuit.ISource:
			a, b := e.unknownOf(t.Pos), e.unknownOf(t.Neg)
			val := t.DC
			if tNow >= 0 {
				val = t.Value(tNow)
			}
			cur := srcScale * val
			if a >= 0 {
				f[a] += cur
			}
			if b >= 0 {
				f[b] -= cur
			}

		case *circuit.VSource:
			br := e.branch[t.Name]
			a, b := e.unknownOf(t.Pos), e.unknownOf(t.Neg)
			// KCL: branch current leaves Pos, enters Neg.
			if a >= 0 {
				j.Add(a, br, 1)
				f[a] += x[br]
			}
			if b >= 0 {
				j.Add(b, br, -1)
				f[b] -= x[br]
			}
			// Branch equation: V(pos) − V(neg) − E = 0.
			if a >= 0 {
				j.Add(br, a, 1)
			}
			if b >= 0 {
				j.Add(br, b, -1)
			}
			val := t.DC
			if tNow >= 0 {
				val = t.Value(tNow)
			}
			f[br] += voltsAt(x, a) - voltsAt(x, b) - srcScale*val

		case *circuit.VCVS:
			br := e.branch[t.Name]
			a, b := e.unknownOf(t.Pos), e.unknownOf(t.Neg)
			ca, cb := e.unknownOf(t.CPos), e.unknownOf(t.CNeg)
			if a >= 0 {
				j.Add(a, br, 1)
				f[a] += x[br]
			}
			if b >= 0 {
				j.Add(b, br, -1)
				f[b] -= x[br]
			}
			if a >= 0 {
				j.Add(br, a, 1)
			}
			if b >= 0 {
				j.Add(br, b, -1)
			}
			if ca >= 0 {
				j.Add(br, ca, -t.Gain)
			}
			if cb >= 0 {
				j.Add(br, cb, t.Gain)
			}
			f[br] += voltsAt(x, a) - voltsAt(x, b) - t.Gain*(voltsAt(x, ca)-voltsAt(x, cb))

		case *circuit.MOSFET:
			d, g, s, bk := e.unknownOf(t.D), e.unknownOf(t.G), e.unknownOf(t.S), e.unknownOf(t.B)
			vd, vg, vs, vb := voltsAt(x, d), voltsAt(x, g), voltsAt(x, s), voltsAt(x, bk)
			id, dd, dg, ds, db := mosPartials(t, vd, vg, vs, vb, e.Temp)
			// Current id enters the drain node and leaves the source node.
			terms := [4]struct {
				u int
				p float64
			}{{d, dd}, {g, dg}, {s, ds}, {bk, db}}
			if d >= 0 {
				f[d] += id
				for _, tm := range terms {
					if tm.u >= 0 {
						j.Add(d, tm.u, tm.p)
					}
				}
			}
			if s >= 0 {
				f[s] -= id
				for _, tm := range terms {
					if tm.u >= 0 {
						j.Add(s, tm.u, -tm.p)
					}
				}
			}

		default:
			panic(fmt.Sprintf("sim: unsupported element %T", el))
		}
	}
}

// newtonSolve runs damped Newton at a fixed gmin/source scale.
func (e *Engine) newtonSolve(x []float64, gmin, srcScale float64, opts *OPOptions) (int, error) {
	return e.newtonSolveAt(x, gmin, srcScale, -1, nil, opts)
}

// newtonSolveAt optionally adds extra linear stamps (transient companions)
// through the extra callback.
func (e *Engine) newtonSolveAt(x []float64, gmin, srcScale, tNow float64, extra func(x []float64, j *linalg.Real, f []float64), opts *OPOptions) (int, error) {
	j := linalg.NewReal(e.size)
	f := make([]float64, e.size)
	for iter := 1; iter <= opts.MaxIter; iter++ {
		e.stampDC(x, gmin, srcScale, tNow, j, f)
		if extra != nil {
			extra(x, j, f)
		}
		lu, err := linalg.FactorReal(j)
		if err != nil {
			return iter, fmt.Errorf("sim: singular Jacobian at gmin=%.3g iter=%d: %w", gmin, iter, err)
		}
		for i := range f {
			f[i] = -f[i]
		}
		dx := lu.Solve(f)
		var maxDx float64
		for i := range dx {
			d := dx[i]
			if d > opts.MaxStep {
				d = opts.MaxStep
			} else if d < -opts.MaxStep {
				d = -opts.MaxStep
			}
			x[i] += d
			if a := math.Abs(d); a > maxDx {
				maxDx = a
			}
		}
		if maxDx < opts.VTol {
			return iter, nil
		}
	}
	return opts.MaxIter, fmt.Errorf("sim: DC Newton did not converge (gmin=%.3g)", gmin)
}

// OP computes the DC operating point.
func (e *Engine) OP(opts OPOptions) (*OPResult, error) {
	opts.defaults()
	x := make([]float64, e.size)
	for name, v := range opts.NodeSet {
		if i, ok := e.Ckt.NodeIndex(name); ok && i > 0 {
			x[e.nodeUnknown(i)] = v
		}
	}

	totalIter := 0
	// Gmin continuation: sweep gmin down in decades, warm-starting each
	// solve from the previous one.
	converged := false
	for gmin := opts.GminStart; ; gmin /= 10 {
		if gmin < opts.GminEnd {
			gmin = opts.GminEnd
		}
		it, err := e.newtonSolve(x, gmin, 1.0, &opts)
		totalIter += it
		if err != nil {
			if gmin == opts.GminEnd {
				// Fall back to source stepping from scratch.
				return e.opSourceStepping(opts)
			}
			// Retry the failed rung after re-seeding below is pointless;
			// tighten by moving to source stepping immediately.
			return e.opSourceStepping(opts)
		}
		if gmin == opts.GminEnd {
			converged = true
			break
		}
	}
	if !converged {
		return nil, fmt.Errorf("sim: DC analysis failed")
	}
	e.polish(x, &opts, &totalIter)
	return e.finishOP(x, totalIter), nil
}

// polish runs a final Newton pass with gmin removed entirely, so the
// reported solution carries no continuation bias. Failure (a circuit that
// genuinely needs gmin, e.g. a floating node) keeps the last good point.
func (e *Engine) polish(x []float64, opts *OPOptions, totalIter *int) {
	backup := make([]float64, len(x))
	copy(backup, x)
	it, err := e.newtonSolve(x, 0, 1.0, opts)
	*totalIter += it
	if err != nil {
		copy(x, backup)
	}
}

// opSourceStepping ramps all independent sources from 0 to full value.
func (e *Engine) opSourceStepping(opts OPOptions) (*OPResult, error) {
	x := make([]float64, e.size)
	total := 0
	for _, scale := range []float64{0.05, 0.1, 0.2, 0.3, 0.45, 0.6, 0.75, 0.9, 1.0} {
		it, err := e.newtonSolve(x, 1e-9, scale, &opts)
		total += it
		if err != nil {
			return nil, fmt.Errorf("sim: source stepping failed at scale %.2f: %w", scale, err)
		}
	}
	e.polish(x, &opts, &total)
	return e.finishOP(x, total), nil
}

// finishOP packages the solution vector.
func (e *Engine) finishOP(x []float64, iters int) *OPResult {
	r := &OPResult{
		V:          make([]float64, e.Ckt.NumNodes()),
		BranchI:    map[string]float64{},
		MOSOPs:     map[string]device.OP{},
		Iterations: iters,
	}
	for i := 1; i < e.Ckt.NumNodes(); i++ {
		r.V[i] = x[e.nodeUnknown(i)]
	}
	for name, idx := range e.branch {
		r.BranchI[name] = x[idx]
	}
	for _, m := range e.Ckt.MOSFETs() {
		vd := r.V[mustIdx(e.Ckt, m.D)]
		vg := r.V[mustIdx(e.Ckt, m.G)]
		vs := r.V[mustIdx(e.Ckt, m.S)]
		vb := r.V[mustIdx(e.Ckt, m.B)]
		r.MOSOPs[m.Name] = m.Dev.Eval(vg, vd, vs, vb, e.Temp)
	}
	return r
}

func mustIdx(c *circuit.Circuit, node string) int {
	i, ok := c.NodeIndex(node)
	if !ok {
		panic(fmt.Sprintf("sim: node %q vanished", node))
	}
	return i
}

// KCLResidual recomputes the DC residual vector norm at a solution — used
// by tests to assert physical consistency of converged points.
func (e *Engine) KCLResidual(r *OPResult) float64 {
	x := make([]float64, e.size)
	for i := 1; i < e.Ckt.NumNodes(); i++ {
		x[e.nodeUnknown(i)] = r.V[i]
	}
	for name, idx := range e.branch {
		x[idx] = r.BranchI[name]
	}
	j := linalg.NewReal(e.size)
	f := make([]float64, e.size)
	e.stampDC(x, 0, 1.0, -1, j, f)
	var norm float64
	for _, v := range f[:e.nNodes] { // node KCL rows only
		norm = math.Max(norm, math.Abs(v))
	}
	return norm
}
