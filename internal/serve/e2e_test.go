package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"loas/internal/obs"
)

// TestEndToEndDaemon boots the real daemon (real backend, real
// synthesis engine) on an ephemeral port and exercises the acceptance
// path: two identical /v1/table1 requests (second must be a cache hit
// with byte-identical JSON), one /v1/mc, one /v1/layout.svg, then a
// graceful shutdown with a request still in flight.
func TestEndToEndDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end daemon test runs real synthesis")
	}
	srv := New(Config{})
	hs := &http.Server{Handler: srv.Handler()}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go hs.Serve(ln)
	base := "http://" + ln.Addr().String()

	postRaw := func(path, body string) (*http.Response, []byte, error) {
		resp, err := http.Post(base+path, "application/json", strings.NewReader(body))
		if err != nil {
			return nil, nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		return resp, data, err
	}
	mustPost := func(path, body string) (*http.Response, []byte) {
		t.Helper()
		resp, data, err := postRaw(path, body)
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, data)
		}
		return resp, data
	}

	// Two identical table1 requests: cold then byte-identical cache hit.
	r1, b1 := mustPost("/v1/table1", "")
	if h := r1.Header.Get("X-Loas-Cache"); h != "miss" {
		t.Fatalf("first table1 X-Loas-Cache = %q, want miss", h)
	}
	var rep struct {
		Rows []struct {
			Case   int `json:"case"`
			Result struct {
				LayoutCalls int `json:"layout_calls"`
			} `json:"result"`
		} `json:"rows"`
		ShapeViolations []string `json:"shape_violations"`
	}
	if err := json.Unmarshal(b1, &rep); err != nil {
		t.Fatalf("table1 response is not valid JSON: %v", err)
	}
	if len(rep.Rows) != 4 {
		t.Fatalf("table1 rows = %d, want 4", len(rep.Rows))
	}
	if len(rep.ShapeViolations) != 0 {
		t.Fatalf("table1 shape violations over HTTP: %v", rep.ShapeViolations)
	}

	r2, b2 := mustPost("/v1/table1", "")
	if h := r2.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("second table1 X-Loas-Cache = %q, want hit", h)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache hit is not byte-identical to the cold response")
	}

	// The hit must be visible in /stats.
	resp, err := http.Get(base + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st Stats
	err = json.NewDecoder(resp.Body).Decode(&st)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("stats decode: %v", err)
	}
	if st.Cache.Hits < 1 {
		t.Fatalf("stats cache hits = %d, want >= 1 after the repeated table1", st.Cache.Hits)
	}

	// Monte-Carlo over HTTP.
	_, mcBody := mustPost("/v1/mc", `{"n":2,"seed":7}`)
	var mcRep MCReport
	if err := json.Unmarshal(mcBody, &mcRep); err != nil {
		t.Fatalf("mc response: %v", err)
	}
	if mcRep.Stats.N+mcRep.Stats.Failures != 2 {
		t.Fatalf("mc samples = %d + %d failures, want 2 total", mcRep.Stats.N, mcRep.Stats.Failures)
	}
	if mcRep.AnalyticSigmaV <= 0 {
		t.Fatal("mc analytic estimate missing")
	}

	// Case-4 generate-mode layout as SVG.
	resp, err = http.Get(base + "/v1/layout.svg")
	if err != nil {
		t.Fatal(err)
	}
	svg, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("layout.svg: status %d, err %v", resp.StatusCode, err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "image/svg+xml" {
		t.Fatalf("layout.svg content type %q", ct)
	}
	if !bytes.HasPrefix(svg, []byte("<svg")) || !bytes.Contains(svg, []byte("</svg>")) {
		t.Fatalf("layout.svg is not an SVG document (%d bytes)", len(svg))
	}

	// Graceful shutdown with a request in flight: launch a cold
	// synthesis, wait for it to reach the backend, then Shutdown — the
	// request must still complete with 200.
	type result struct {
		status int
		err    error
	}
	inFlight := make(chan result, 1)
	go func() {
		resp, data, err := postRaw("/v1/synthesize", `{"case":1}`)
		if err != nil {
			inFlight <- result{0, err}
			return
		}
		_ = data
		inFlight <- result{resp.StatusCode, nil}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for srv.Stats().BackendRuns < 4 { // table1, mc, layout already ran; wait for the 4th to start
		if time.Now().After(deadline) {
			t.Fatal("in-flight synthesize never reached the backend")
		}
		time.Sleep(2 * time.Millisecond)
	}

	sctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		t.Fatalf("graceful shutdown did not drain: %v", err)
	}
	srv.Close()

	got := <-inFlight
	if got.err != nil || got.status != http.StatusOK {
		t.Fatalf("in-flight request during shutdown: status %d, err %v", got.status, got.err)
	}
}

// TestEndToEndLedgerDaemon is the run-history acceptance path: a real
// daemon with a ledger serves one cold synthesize, one cache hit and
// one Monte-Carlo run; /v1/runs labels all three correctly, the cold
// run's span tree is internally consistent down to the per-iteration
// phases, /v1/events streamed every run-end live, and a restart on the
// same ledger file replays the history and continues the sequence.
func TestEndToEndLedgerDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end ledger test runs real synthesis")
	}
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	ledger, err := obs.OpenLedger(path, obs.LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Ledger: ledger})
	ts := httptest.NewServer(srv.Handler())

	frames, stopSSE := sseClient(t, ts.URL)

	mustPost := func(base, p, body string) {
		t.Helper()
		resp, data := post(t, base+p, body)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("POST %s: status %d: %s", p, resp.StatusCode, data)
		}
	}
	mustPost(ts.URL, "/v1/synthesize", `{"case":4,"skip_verify":true}`) // cold
	mustPost(ts.URL, "/v1/synthesize", `{"case":4,"skip_verify":true}`) // byte replay
	mustPost(ts.URL, "/v1/mc", `{"n":2,"seed":7}`)

	// The subscriber connected before any run: it must have seen every
	// run-end live, with the outcome the listing will also report.
	endOutcomes := map[string]string{}
	for len(endOutcomes) < 3 {
		f := nextFrame(t, frames)
		if f.event != "run-end" {
			continue
		}
		var v struct {
			ID      string `json:"id"`
			Outcome string `json:"outcome"`
		}
		if err := json.Unmarshal([]byte(f.data), &v); err != nil {
			t.Fatalf("run-end payload %q: %v", f.data, err)
		}
		endOutcomes[v.ID] = v.Outcome
	}
	stopSSE()
	wantOutcomes := map[string]string{
		"run-000001": "ok", "run-000002": "cache-hit", "run-000003": "ok",
	}
	for id, want := range wantOutcomes {
		if endOutcomes[id] != want {
			t.Fatalf("SSE outcomes = %v, want %v", endOutcomes, wantOutcomes)
		}
	}

	var rep RunsReport
	getJSON(t, ts.URL+"/v1/runs", &rep)
	if rep.Total != 3 || len(rep.Runs) != 3 {
		t.Fatalf("runs = %d/%d, want 3/3", rep.Total, len(rep.Runs))
	}
	// Newest first: mc, replay, cold.
	if rep.Runs[0].Kind != "mc" || rep.Runs[0].Outcome != "ok" ||
		rep.Runs[1].Kind != "synthesize" || rep.Runs[1].Outcome != "cache-hit" ||
		rep.Runs[2].Kind != "synthesize" || rep.Runs[2].Outcome != "ok" {
		t.Fatalf("run listing = %+v", rep.Runs)
	}
	if !rep.Runs[2].Converged || rep.Runs[2].Iterations < 2 {
		t.Fatalf("cold synthesize summary = %+v", rep.Runs[2])
	}

	// The cold run's span tree: every lifecycle phase present, children
	// nested inside their parents, sums consistent.
	var rec obs.RunRecord
	getJSON(t, ts.URL+"/v1/runs/run-000001", &rec)
	byID := map[int]obs.SpanRecord{}
	children := map[int][]obs.SpanRecord{}
	names := map[string]int{}
	for _, sp := range rec.Spans {
		byID[sp.ID] = sp
		children[sp.Parent] = append(children[sp.Parent], sp)
		names[sp.Name]++
	}
	for _, want := range []string{"request", "queue-wait", "cache-lookup",
		"synthesize", "iteration", "sizing", "layout-extract"} {
		if names[want] == 0 {
			t.Fatalf("span tree missing %q: %v", names, rec.Spans)
		}
	}
	if names["iteration"] != rec.LayoutCalls || len(rec.Iterations) != rec.LayoutCalls {
		t.Fatalf("iteration spans = %d, trace rows = %d, layout calls = %d",
			names["iteration"], len(rec.Iterations), rec.LayoutCalls)
	}
	roots := children[0]
	if len(roots) != 1 || roots[0].Name != "request" {
		t.Fatalf("root spans = %+v", roots)
	}
	root := roots[0]
	if root.DurationNS <= 0 || rec.DurationNS < root.DurationNS {
		t.Fatalf("record %dns < root span %dns", rec.DurationNS, root.DurationNS)
	}
	for parent, kids := range children {
		if parent == 0 {
			continue
		}
		p := byID[parent]
		var sum int64
		for _, k := range kids {
			if k.StartNS < p.StartNS || k.StartNS+k.DurationNS > p.StartNS+p.DurationNS {
				t.Fatalf("span %s [%d,+%d] escapes parent %s [%d,+%d]",
					k.Name, k.StartNS, k.DurationNS, p.Name, p.StartNS, p.DurationNS)
			}
			sum += k.DurationNS
		}
		if sum > p.DurationNS {
			t.Fatalf("children of %s sum to %dns > parent %dns", p.Name, sum, p.DurationNS)
		}
	}

	// Restart on the same ledger: history replays, sequence continues.
	ts.Close()
	srv.Close()
	ledger.Close()
	ledger2, err := obs.OpenLedger(path, obs.LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Ledger: ledger2})
	ts2 := httptest.NewServer(srv2.Handler())
	defer func() { ts2.Close(); srv2.Close(); ledger2.Close() }()

	var rep2 RunsReport
	getJSON(t, ts2.URL+"/v1/runs", &rep2)
	if rep2.Total != 3 || rep2.Runs[0].ID != "run-000003" {
		t.Fatalf("after restart runs = %+v", rep2)
	}
	var replayed obs.RunRecord
	getJSON(t, ts2.URL+"/v1/runs/run-000001", &replayed)
	if len(replayed.Spans) != len(rec.Spans) || replayed.Outcome != "ok" {
		t.Fatalf("replayed record lost detail: %d spans vs %d", len(replayed.Spans), len(rec.Spans))
	}
	mustPost(ts2.URL, "/v1/mc", `{"n":3,"seed":7}`)
	getJSON(t, ts2.URL+"/v1/runs", &rep2)
	if rep2.Total != 4 || rep2.Runs[0].ID != "run-000004" {
		t.Fatalf("sequence did not continue after restart: %+v", rep2.Runs)
	}
}

// TestEndToEndBatchDedup is the batch acceptance path on the real
// engine: a 50-item batch with 3 unique specs costs exactly 3 real
// syntheses, streams one batch-item frame per item, and links every
// child run to the batch parent.
func TestEndToEndBatchDedup(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end batch test runs real synthesis")
	}
	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()

	frames, stopSSE := sseClient(t, ts.URL)
	defer stopSSE()

	// 50 items over 3 unique specs (skip_verify keeps each synthesis
	// one-pass; dedup is what's under test here).
	const n, k = 50, 3
	var b strings.Builder
	b.WriteString(`{"items":[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		fmt.Fprintf(&b, `{"case":%d,"skip_verify":true}`, 1+i%k)
	}
	b.WriteString(`]}`)

	resp, data := post(t, ts.URL+"/v1/batch", b.String())
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, data)
	}
	var rep BatchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Items != n || rep.Unique != k || rep.Errors != 0 {
		t.Fatalf("report = %d items, %d unique, %d errors; want %d/%d/0",
			rep.Items, rep.Unique, rep.Errors, n, k)
	}
	if st := srv.Stats(); st.BackendRuns != k {
		t.Fatalf("real backend ran %d times for %d unique specs, want exactly %d",
			st.BackendRuns, k, k)
	}
	for i, r := range rep.Results {
		if r.Index != i || len(r.Summary) == 0 {
			t.Fatalf("result %d = %+v", i, r)
		}
		var sum struct {
			LayoutCalls int `json:"layout_calls"`
		}
		if err := json.Unmarshal(r.Summary, &sum); err != nil || sum.LayoutCalls < 1 {
			t.Fatalf("result %d summary not a synthesis summary: %v %s", i, err, r.Summary)
		}
	}

	// The SSE feed narrated every item under the batch parent.
	itemFrames := 0
	for {
		f := nextFrame(t, frames)
		if f.event == "batch-item" {
			itemFrames++
		}
		if f.event == "batch-end" {
			break
		}
	}
	if itemFrames != n {
		t.Fatalf("saw %d batch-item frames, want %d", itemFrames, n)
	}

	var parents, kids RunsReport
	getJSON(t, ts.URL+"/v1/runs?kind=batch", &parents)
	if len(parents.Runs) != 1 {
		t.Fatalf("batch runs = %+v", parents.Runs)
	}
	getJSON(t, ts.URL+"/v1/runs?parent="+parents.Runs[0].ID+"&limit=100", &kids)
	if len(kids.Runs) != n {
		t.Fatalf("children = %d, want %d", len(kids.Runs), n)
	}
}

// TestEndToEndExploreGolden pins the exploration report of the real
// engine to a golden file: the report must be byte-identical on every
// rerun and at every worker count — the determinism half of the
// acceptance criteria. Refresh with LOAS_UPDATE_GOLDEN=1.
func TestEndToEndExploreGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end explore test runs real synthesis")
	}
	const body = `{"axes":{"gbw":[4e7,6.5e7]},"case":1}`
	golden := filepath.Join("testdata", "explore_golden.json")

	srv := New(Config{})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close() }()
	resp, got := post(t, ts.URL+"/v1/explore", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("explore status %d: %s", resp.StatusCode, got)
	}

	if os.Getenv("LOAS_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", golden, len(got))
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (rerun with LOAS_UPDATE_GOLDEN=1 to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("explore report drifted from %s:\ngot:  %s\nwant: %s", golden, got, want)
	}

	// The same exploration on a single-worker daemon reproduces the
	// golden bytes exactly.
	srv1 := New(Config{Workers: 1})
	ts1 := httptest.NewServer(srv1.Handler())
	defer func() { ts1.Close(); srv1.Close() }()
	_, got1 := post(t, ts1.URL+"/v1/explore", body)
	if !bytes.Equal(got1, want) {
		t.Fatalf("1-worker report differs from golden:\ngot:  %s\nwant: %s", got1, want)
	}

	// Sanity on the pinned content: two feasible probes of the default
	// topology and a non-empty front.
	var rep ExploreReport
	if err := json.Unmarshal(want, &rep); err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 1 || rep.Results[0].Probes != 2 ||
		rep.Results[0].Infeasible != 0 || len(rep.Results[0].Front) == 0 {
		t.Fatalf("golden content unexpected: %+v", rep.Results)
	}
}

// TestEndToEndRefineDaemon is the closed-loop acceptance path over
// HTTP: a refined request runs the outer loop on the real engine, the
// ledger record carries round-tagged iterations under refine-round
// spans, the SSE feed streams an iteration event per round live, the
// identical request replays from cache, and the unrefined spelling of
// the same case keys (and runs) separately.
func TestEndToEndRefineDaemon(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end refine test runs real synthesis")
	}
	path := filepath.Join(t.TempDir(), "runs.jsonl")
	ledger, err := obs.OpenLedger(path, obs.LedgerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Ledger: ledger})
	ts := httptest.NewServer(srv.Handler())
	defer func() { ts.Close(); srv.Close(); ledger.Close() }()

	frames, stopSSE := sseClient(t, ts.URL)

	const refineBody = `{"case":1,"refine":true,"refine_max_rounds":2}`
	r1, b1 := post(t, ts.URL+"/v1/synthesize", refineBody)
	if r1.StatusCode != http.StatusOK {
		t.Fatalf("refined synthesize: status %d: %s", r1.StatusCode, b1)
	}
	if h := r1.Header.Get("X-Loas-Cache"); h != "miss" {
		t.Fatalf("cold refined run X-Loas-Cache = %q, want miss", h)
	}
	refKey := r1.Header.Get("X-Loas-Key")

	var sum struct {
		Refine *struct {
			MaxRounds int `json:"max_rounds"`
			BestRound int `json:"best_round"`
			Rounds    []struct {
				Round   int  `json:"round"`
				Met     bool `json:"met"`
				Corners []struct {
					Corner string `json:"corner"`
				} `json:"corners"`
			} `json:"rounds"`
		} `json:"refine"`
	}
	if err := json.Unmarshal(b1, &sum); err != nil {
		t.Fatalf("refined summary: %v", err)
	}
	if sum.Refine == nil || sum.Refine.MaxRounds != 2 || len(sum.Refine.Rounds) != 2 {
		t.Fatalf("refined summary report = %+v", sum.Refine)
	}
	for i, rr := range sum.Refine.Rounds {
		if rr.Round != i+1 || len(rr.Corners) != 5 {
			t.Fatalf("round %d malformed: %+v", i+1, rr)
		}
	}

	// Identical request: byte replay from cache under the same key.
	r2, b2 := post(t, ts.URL+"/v1/synthesize", refineBody)
	if h := r2.Header.Get("X-Loas-Cache"); h != "hit" {
		t.Fatalf("repeat refined run X-Loas-Cache = %q, want hit", h)
	}
	if r2.Header.Get("X-Loas-Key") != refKey || !bytes.Equal(b1, b2) {
		t.Fatal("refined cache hit is not a byte replay under the same key")
	}

	// The unrefined spelling of the same case is a distinct cache entry.
	r3, b3 := post(t, ts.URL+"/v1/synthesize", `{"case":1}`)
	if r3.StatusCode != http.StatusOK {
		t.Fatalf("unrefined synthesize: status %d: %s", r3.StatusCode, b3)
	}
	if h := r3.Header.Get("X-Loas-Cache"); h != "miss" {
		t.Fatalf("unrefined run X-Loas-Cache = %q, want miss (must not share the refined entry)", h)
	}
	if r3.Header.Get("X-Loas-Key") == refKey {
		t.Fatal("unrefined request produced the refined cache key")
	}
	if bytes.Contains(b3, []byte(`"refine"`)) {
		t.Fatalf("unrefined response leaks a refine report: %s", b3)
	}

	// Refinement without extracted verification is rejected up front.
	rBad, bBad := post(t, ts.URL+"/v1/synthesize", `{"case":1,"refine":true,"skip_verify":true}`)
	if rBad.StatusCode != http.StatusBadRequest {
		t.Fatalf("refine+skip_verify: status %d (%s), want 400", rBad.StatusCode, bBad)
	}

	// The ledger record of the cold refined run: iterations tagged with
	// their outer round, one refine-round span per round, each with a
	// corner-sweep child.
	var rec obs.RunRecord
	getJSON(t, ts.URL+"/v1/runs/run-000001", &rec)
	rounds := map[int]int{}
	for _, it := range rec.Iterations {
		rounds[it.Round]++
	}
	if len(rounds) != 2 || rounds[1] == 0 || rounds[2] == 0 {
		t.Fatalf("ledger iterations not tagged with rounds 1..2: %v", rounds)
	}
	byID := map[int]obs.SpanRecord{}
	for _, sp := range rec.Spans {
		byID[sp.ID] = sp
	}
	refineSpans, sweeps := 0, 0
	for _, sp := range rec.Spans {
		switch sp.Name {
		case "refine-round":
			refineSpans++
		case "corner-sweep":
			sweeps++
			if byID[sp.Parent].Name != "refine-round" {
				t.Fatalf("corner-sweep parented by %q", byID[sp.Parent].Name)
			}
		}
	}
	if refineSpans != 2 || sweeps != 2 {
		t.Fatalf("span tree has %d refine-round / %d corner-sweep spans, want 2/2", refineSpans, sweeps)
	}

	// The SSE feed streamed the outer loop live: at least one iteration
	// event per round of the cold run, then its run-end.
	seenRounds := map[int]bool{}
	for {
		f := nextFrame(t, frames)
		if f.event == "iteration" {
			var it struct {
				RunID string `json:"run_id"`
				Round int    `json:"round"`
			}
			if err := json.Unmarshal([]byte(f.data), &it); err != nil {
				t.Fatalf("iteration payload %q: %v", f.data, err)
			}
			if it.RunID == "run-000001" {
				seenRounds[it.Round] = true
			}
			continue
		}
		if f.event == "run-end" {
			var v struct {
				ID string `json:"id"`
			}
			if err := json.Unmarshal([]byte(f.data), &v); err != nil {
				t.Fatalf("run-end payload %q: %v", f.data, err)
			}
			if v.ID == "run-000001" {
				break
			}
		}
	}
	stopSSE()
	if !seenRounds[1] || !seenRounds[2] {
		t.Fatalf("SSE iteration events missing rounds: %v", seenRounds)
	}
}
