// Scfilter demonstrates the paper's future-work direction: carry the
// layout-aware OTA synthesis result into a switched-capacitor system.
// A 10 MS/s SC integrator and a bandpass biquad are evaluated with the
// synthesized OTA's finite gain, GBW and slew rate; the same blocks are
// also evaluated with the layout-unaware case-1 design to show how layout
// parasitics propagate to system level.
package main

import (
	"fmt"
	"log"
	"math/cmplx"

	"loas/internal/core"
	"loas/internal/scfilter"
	"loas/internal/sizing"
	"loas/internal/techno"
)

func main() {
	tech := techno.Default060()
	spec := sizing.Default65MHz()

	fmt.Println("synthesizing the OTA twice: layout-aware (case 4) and unaware (case 1)…")
	aware, err := core.Synthesize(tech, spec, core.Options{Case: 4})
	if err != nil {
		log.Fatal(err)
	}
	unaware, err := core.Synthesize(tech, spec, core.Options{Case: 1})
	if err != nil {
		log.Fatal(err)
	}

	const fs = 10e6
	build := func(p sizing.Performance) scfilter.Integrator {
		return scfilter.Integrator{
			OTA: scfilter.FromPerformance(p),
			Cs:  1e-12, Cf: 4e-12, Fs: fs,
		}
	}
	// The extracted performance is what the silicon would deliver.
	gA := build(aware.Extracted)
	gU := build(unaware.Extracted)

	fmt.Printf("\nSC integrator, fs = %.0f MS/s, Cs/Cf = %.2f (unity gain at %.0f kHz)\n",
		fs/1e6, gA.Cs/gA.Cf, gA.UnityGainFreq()/1e3)
	fmt.Printf("%-28s %14s %14s\n", "", "layout-aware", "unaware")
	fmt.Printf("%-28s %13.4f%% %13.4f%%\n", "settling error / cycle",
		gA.SettlingError()*100, gU.SettlingError()*100)
	fmt.Printf("%-28s %13.4f%% %13.4f%%\n", "static gain error",
		gA.GainError()*100, gU.GainError()*100)
	fmt.Printf("%-28s %12.1f dB %12.1f dB\n", "|H| at fs/1000",
		db(cmplx.Abs(gA.H(fs/1000))), db(cmplx.Abs(gU.H(fs/1000))))
	fmt.Printf("%-28s %11.1f MHz %11.1f MHz\n", "max clock for 0.1% settling",
		gA.MaxClock(0.001)/1e6, gU.MaxClock(0.001)/1e6)

	bq := scfilter.Biquad{
		OTA: scfilter.FromPerformance(aware.Extracted),
		Fs:  fs, F0: 250e3, Q: 10, GainLP: 1,
	}
	if err := bq.Validate(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSC biquad: f0 = %.0f kHz, Q = %.0f → resonant gain %.2f (ideal ≈ %.0f)\n",
		bq.F0/1e3, bq.Q, bq.ResonantGain(), bq.Q)
}

func db(x float64) float64 { return sizing.DB(x) }
