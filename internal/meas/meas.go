// Package meas measures opamp performance on a netlist by simulation —
// the role Cadence extraction + simulation play in the paper's Table 1
// (the bracketed numbers). Every figure of merit in the table has a
// measurement here: DC gain, GBW, phase margin, slew rate, CMRR,
// systematic offset, output resistance, input-referred noise (integrated,
// thermal plateau, 1/f at 1 Hz) and power.
package meas

import (
	"fmt"
	"math"
	"math/cmplx"

	"loas/internal/circuit"
	"loas/internal/sim"
	"loas/internal/sizing"
)

// Bench describes how to test an OTA netlist builder.
type Bench struct {
	// Build returns a fresh copy of the amplifier netlist. It must
	// contain nodes InP, InN, Out and a supply source named SupplyName;
	// input sources and the load are added by the harness. A fresh copy
	// per measurement keeps testbench edits from leaking between runs.
	Build func() *circuit.Circuit

	InP, InN, Out string
	SupplyName    string  // voltage source name measured for power
	CL            float64 // load capacitance (F)
	VicmDC        float64 // input common-mode voltage (V)
	VoutMid       float64 // target quiescent output voltage (V)
	Temp          float64 // K
	NodeSet       map[string]float64
}

// Report is the measured Performance plus bookkeeping.
type Report struct {
	Perf sizing.Performance
	// OffsetIterations counts DC solves spent nulling the output.
	OffsetIterations int
}

// Measure runs the full suite.
func Measure(b Bench) (*Report, error) {
	rep := &Report{}

	// 1. Systematic offset: differential input voltage that centres the
	// output. Everything small-signal is measured at that bias.
	voff, op, eng, ckt, err := b.findOffset()
	if err != nil {
		return nil, fmt.Errorf("meas: offset search: %w", err)
	}
	rep.Perf.Offset = voff
	rep.Perf.Power = op.SupplyCurrent(b.SupplyName) * supplyVoltage(ckt, b.SupplyName)

	// 2. Differential AC: gain, GBW, phase margin.
	if err := b.acGainSweep(eng, ckt, op, &rep.Perf); err != nil {
		return nil, fmt.Errorf("meas: AC: %w", err)
	}

	// 3. CMRR at low frequency.
	if err := b.cmrr(voff, &rep.Perf); err != nil {
		return nil, fmt.Errorf("meas: CMRR: %w", err)
	}

	// 4. Output resistance.
	if err := b.rout(voff, &rep.Perf); err != nil {
		return nil, fmt.Errorf("meas: Rout: %w", err)
	}

	// 5. Noise.
	if err := b.noise(eng, ckt, op, &rep.Perf); err != nil {
		return nil, fmt.Errorf("meas: noise: %w", err)
	}

	// 6. Slew rate (unity-gain step).
	if err := b.slewRate(&rep.Perf); err != nil {
		return nil, fmt.Errorf("meas: slew rate: %w", err)
	}
	return rep, nil
}

func supplyVoltage(ckt *circuit.Circuit, name string) float64 {
	for _, v := range ckt.VSources() {
		if v.Name == name {
			return math.Abs(v.DC)
		}
	}
	return math.NaN()
}

// bench construction helpers -------------------------------------------

// openLoop builds the open-loop testbench: differential sources around
// the common mode, load at the output.
func (b *Bench) openLoop(vid float64, acDiff, acCM bool) *circuit.Circuit {
	ckt := b.Build()
	vp := &circuit.VSource{Name: "tbip", Pos: b.InP, Neg: circuit.Ground, DC: b.VicmDC + vid/2}
	vn := &circuit.VSource{Name: "tbin", Pos: b.InN, Neg: circuit.Ground, DC: b.VicmDC - vid/2}
	if acDiff {
		vp.ACMag, vp.ACPhase = 0.5, 0
		vn.ACMag, vn.ACPhase = 0.5, 180
	}
	if acCM {
		vp.ACMag, vp.ACPhase = 1, 0
		vn.ACMag, vn.ACPhase = 1, 0
	}
	ckt.Add(vp, vn,
		&circuit.Capacitor{Name: "tbload", A: b.Out, B: circuit.Ground, C: b.CL})
	return ckt
}

func (b *Bench) nodeSet() map[string]float64 {
	ns := map[string]float64{b.InP: b.VicmDC, b.InN: b.VicmDC, b.Out: b.VoutMid}
	for k, v := range b.NodeSet {
		ns[k] = v
	}
	return ns
}

// findOffset bisects the differential input for V(out) = VoutMid.
func (b *Bench) findOffset() (float64, *sim.OPResult, *sim.Engine, *circuit.Circuit, error) {
	solve := func(vid float64) (*sim.OPResult, *sim.Engine, *circuit.Circuit, error) {
		ckt := b.openLoop(vid, true, false)
		eng := sim.NewEngine(ckt, b.Temp)
		op, err := eng.OP(sim.OPOptions{NodeSet: b.nodeSet()})
		return op, eng, ckt, err
	}
	f := func(vid int, op *sim.OPResult, ckt *circuit.Circuit) float64 {
		_ = vid
		return op.Volt(ckt, b.Out) - b.VoutMid
	}
	lo, hi := -20e-3, 20e-3
	opLo, _, cktLo, err := solve(lo)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	opHi, _, cktHi, err := solve(hi)
	if err != nil {
		return 0, nil, nil, nil, err
	}
	fLo, fHi := f(0, opLo, cktLo), f(0, opHi, cktHi)
	if math.Signbit(fLo) == math.Signbit(fHi) {
		// Gain polarity or extreme offset: report the midpoint result
		// rather than failing (the numbers will say what is wrong).
		op, eng, ckt, err := solve(0)
		return 0, op, eng, ckt, err
	}
	// With V(out) monotone in vid (positive gain through InP), bisect.
	var op *sim.OPResult
	var eng *sim.Engine
	var ckt *circuit.Circuit
	vid := 0.0
	iters := 0
	for i := 0; i < 40; i++ {
		vid = 0.5 * (lo + hi)
		var err error
		op, eng, ckt, err = solve(vid)
		if err != nil {
			return 0, nil, nil, nil, err
		}
		iters++
		fm := f(0, op, ckt)
		if math.Abs(fm) < 1e-4 || hi-lo < 1e-9 {
			break
		}
		if math.Signbit(fm) == math.Signbit(fLo) {
			lo = vid
		} else {
			hi = vid
		}
	}
	_ = iters
	return vid, op, eng, ckt, nil
}

// acGainSweep measures DC gain, GBW and phase margin from the
// differential AC response.
func (b *Bench) acGainSweep(eng *sim.Engine, ckt *circuit.Circuit, op *sim.OPResult, p *sizing.Performance) error {
	// One linearization at the bias point serves the DC-gain probe, the
	// bracketing sweep and every bisection step below.
	solver := eng.PrepareAC(op)
	gainAt := func(freq float64) (complex128, error) {
		res, err := solver.Solve([]float64{freq})
		if err != nil {
			return 0, err
		}
		return res[0].Volt(ckt, b.Out), nil
	}
	h0, err := gainAt(1.0)
	if err != nil {
		return err
	}
	p.DCGainDB = sizing.DB(cmplx.Abs(h0))

	// Bracket the unity crossing on a log sweep, then bisect.
	freqs := sim.LogSpace(1e3, 3e9, 130)
	res, err := solver.Solve(freqs)
	if err != nil {
		return err
	}
	if g0 := cmplx.Abs(res[0].Volt(ckt, b.Out)); g0 < 1 {
		return fmt.Errorf("gain already below unity at %g Hz (|H| = %g)", freqs[0], g0)
	}
	var fLo, fHi float64
	for i := 1; i < len(res); i++ {
		if cmplx.Abs(res[i].Volt(ckt, b.Out)) < 1 {
			fLo, fHi = freqs[i-1], freqs[i]
			break
		}
	}
	if fHi == 0 {
		return fmt.Errorf("no unity crossing below 3 GHz (|H(3G)| = %g)",
			cmplx.Abs(res[len(res)-1].Volt(ckt, b.Out)))
	}
	for i := 0; i < 50; i++ {
		mid := math.Sqrt(fLo * fHi)
		h, err := gainAt(mid)
		if err != nil {
			return err
		}
		if cmplx.Abs(h) >= 1 {
			fLo = mid
		} else {
			fHi = mid
		}
	}
	fu := math.Sqrt(fLo * fHi)
	p.GBW = fu
	hU, err := gainAt(fu)
	if err != nil {
		return err
	}
	// Differential drive is +0.5/−0.5 so phase(H) at DC is 0° for the
	// non-inverting path; PM = 180° + phase at unity.
	ph := cmplx.Phase(hU) * 180 / math.Pi
	pm := 180 + ph
	for pm > 180 {
		pm -= 360
	}
	p.PhaseDeg = pm
	return nil
}

// cmrr measures Adm/Acm at 1 kHz.
func (b *Bench) cmrr(voff float64, p *sizing.Performance) error {
	const f = 1e3
	// Differential gain.
	cktD := b.openLoop(voff, true, false)
	engD := sim.NewEngine(cktD, b.Temp)
	opD, err := engD.OP(sim.OPOptions{NodeSet: b.nodeSet()})
	if err != nil {
		return err
	}
	resD, err := engD.AC(opD, []float64{f})
	if err != nil {
		return err
	}
	adm := cmplx.Abs(resD[0].Volt(cktD, b.Out))

	cktC := b.openLoop(voff, false, true)
	engC := sim.NewEngine(cktC, b.Temp)
	opC, err := engC.OP(sim.OPOptions{NodeSet: b.nodeSet()})
	if err != nil {
		return err
	}
	resC, err := engC.AC(opC, []float64{f})
	if err != nil {
		return err
	}
	acm := cmplx.Abs(resC[0].Volt(cktC, b.Out))
	if acm == 0 {
		p.CMRRDB = 200 // perfectly matched ideal — report a ceiling
		return nil
	}
	p.CMRRDB = sizing.DB(adm / acm)
	return nil
}

// rout injects an AC test current at the output with inputs AC-grounded.
func (b *Bench) rout(voff float64, p *sizing.Performance) error {
	ckt := b.openLoop(voff, false, false)
	ckt.Add(&circuit.ISource{Name: "tbrout", Pos: b.Out, Neg: circuit.Ground, ACMag: 1})
	eng := sim.NewEngine(ckt, b.Temp)
	op, err := eng.OP(sim.OPOptions{NodeSet: b.nodeSet()})
	if err != nil {
		return err
	}
	res, err := eng.AC(op, []float64{1.0})
	if err != nil {
		return err
	}
	p.Rout = cmplx.Abs(res[0].Volt(ckt, b.Out))
	return nil
}

// noise computes output noise via the adjoint method, refers it to the
// input with the differential gain, and extracts the three Table-1 noise
// figures.
func (b *Bench) noise(eng *sim.Engine, ckt *circuit.Circuit, op *sim.OPResult, p *sizing.Performance) error {
	if p.GBW <= 0 {
		return fmt.Errorf("noise needs GBW first")
	}
	freqs := sim.LogSpace(1, p.GBW, 200)
	pts, err := eng.Noise(op, b.Out, freqs)
	if err != nil {
		return err
	}
	acs, err := eng.AC(op, freqs)
	if err != nil {
		return err
	}
	// Input-referred PSD.
	svin := make([]float64, len(freqs))
	for i := range freqs {
		g := cmplx.Abs(acs[i].Volt(ckt, b.Out))
		if g < 1e-12 {
			g = 1e-12
		}
		svin[i] = pts[i].OutPSD / (g * g)
	}
	p.NoiseRMS = sim.IntegratePSD(freqs, svin)
	p.NoiseFl1 = math.Sqrt(svin[0])
	// White plateau: sample two decades below the unity frequency, where
	// 1/f has died out but the gain is still flat.
	plateau := p.GBW / 100
	for i, f := range freqs {
		if f >= plateau {
			p.NoiseTh = math.Sqrt(svin[i])
			break
		}
	}
	return nil
}

// slewRate steps a unity-gain buffer and measures the max output slope.
func (b *Bench) slewRate(p *sizing.Performance) error {
	if p.GBW <= 0 {
		return fmt.Errorf("slew rate needs GBW first")
	}
	ckt := b.Build()
	// Unity feedback: inn follows out. A large resistor avoids merging
	// the nodes so the builder's netlist stays untouched.
	step := 0.8
	ckt.Add(
		&circuit.Resistor{Name: "tbfb", A: b.Out, B: b.InN, R: 1.0},
		&circuit.VSource{Name: "tbstep", Pos: b.InP, Neg: circuit.Ground,
			DC: b.VicmDC - step/2,
			Pulse: &circuit.Pulse{
				V1: b.VicmDC - step/2, V2: b.VicmDC + step/2,
				Delay: 4 / p.GBW, Rise: 1e-10,
			}},
		&circuit.Capacitor{Name: "tbload", A: b.Out, B: circuit.Ground, C: b.CL},
	)
	eng := sim.NewEngine(ckt, b.Temp)
	ns := b.nodeSet()
	ns[b.InP] = b.VicmDC - step/2
	ns[b.InN] = b.VicmDC - step/2
	ns[b.Out] = b.VicmDC - step/2
	tstop := 60 / p.GBW
	h := 0.02 / p.GBW
	res, err := eng.Tran(tstop, h, sim.OPOptions{NodeSet: ns})
	if err != nil {
		return err
	}
	slope, _ := res.MaxSlope(ckt, b.Out)
	p.SlewRate = slope
	return nil
}
