package main

import (
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: loas
BenchmarkFig2CapReduction-8   	1000000	      1052 ns/op	        58.90 reduction_pct
BenchmarkFig5Layout-8         	      1	 812345600 ns/op	     10169 area_um2	         6.000 layout_calls
BenchmarkTecheval             	      5	    200000 ns/op
PASS
ok  	loas	2.345s
`

func TestParseBenchOutput(t *testing.T) {
	res, err := parseBenchOutput(sampleOutput)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(res), res)
	}

	fig2 := res["Fig2CapReduction"]
	if fig2.NsPerOp != 1052 {
		t.Fatalf("fig2 ns/op = %v", fig2.NsPerOp)
	}
	m, ok := fig2.Metrics["reduction_pct"]
	if !ok || m.Value != 58.90 {
		t.Fatalf("fig2 metrics = %+v", fig2.Metrics)
	}
	// The hex form must round-trip to the identical float64.
	back, err := strconv.ParseFloat(m.Hex, 64)
	if err != nil || math.Float64bits(back) != math.Float64bits(m.Value) {
		t.Fatalf("hex %q does not round-trip %v: %v", m.Hex, m.Value, err)
	}

	fig5 := res["Fig5Layout"]
	if len(fig5.Metrics) != 2 || fig5.Metrics["area_um2"].Value != 10169 {
		t.Fatalf("fig5 metrics = %+v", fig5.Metrics)
	}
	// The GOMAXPROCS suffix is stripped; a suffix-less line still parses.
	if res["Techeval"].NsPerOp != 200000 || res["Techeval"].Metrics != nil {
		t.Fatalf("techeval = %+v", res["Techeval"])
	}
}

func TestParseBenchOutputBadValue(t *testing.T) {
	if _, err := parseBenchOutput("BenchmarkX-8 1 abc ns/op\n"); err == nil {
		t.Fatal("malformed value should fail, not be skipped silently")
	}
}

// TestSnapshotAgainstFastBench runs the real pipeline end to end on the
// cheapest deterministic benchmark and checks the written JSON.
func TestSnapshotAgainstFastBench(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns go test -bench")
	}
	out := filepath.Join(t.TempDir(), "snap.json")
	err := run([]string{"-bench", "Fig2CapReduction$", "-o", out, "-dir", "../.."})
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"Fig2CapReduction"`, `"ns_op"`, `"F_ext_nf4"`, `"hex"`, `0x`} {
		if !strings.Contains(string(data), want) {
			t.Fatalf("snapshot missing %q:\n%s", want, data)
		}
	}
}
