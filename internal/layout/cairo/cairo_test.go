package cairo

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"loas/internal/device"
	"loas/internal/layout/route"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

const um = techno.Micron

// testDesign: an NMOS mirror stack plus a PMOS load transistor, routed on
// nets "out" and "bias".
func testDesign() *Design {
	return &Design{
		Name: "unit",
		Modules: []Module{
			&Transistor{
				Inst: "MP1", Type: techno.PMOS,
				W: 60 * um, L: 1 * um,
				Style:    device.DrainInternal,
				DrainNet: "out", GateNet: "bias", SourceNet: "vdd", BulkNet: "vdd",
				IDrain: 150e-6, EvenOnly: true,
			},
			&MatchedStack{
				Label: "mirror", Type: techno.NMOS,
				Devices: []stack.Device{
					{Name: "MN1", Units: 2, DrainNet: "bias", GateNet: "bias"},
					{Name: "MN2", Units: 2, DrainNet: "out", GateNet: "bias"},
				},
				SourceNet: "gnd", BulkNet: "gnd",
				WidthPerBaseUnit: 15 * um, L: 1 * um,
				Currents:   map[string]float64{"bias": 150e-6, "out": 150e-6},
				EndDummies: true,
			},
		},
		Tree: &Tree{Vertical: false, GapNM: 8000, Leaves: []string{"MP1", "mirror"}},
		Nets: []route.Net{{Name: "out", Current: 150e-6}, {Name: "bias", Current: 150e-6}},
	}
}

func TestPlanProducesParasitics(t *testing.T) {
	tech := techno.Default060()
	p, err := testDesign().Plan(tech, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	// All three devices must have junction geometry and fold plans.
	for _, inst := range []string{"MP1", "MN1", "MN2"} {
		g, ok := p.Parasitics.DeviceGeom[inst]
		if !ok || g.AD <= 0 || g.AS <= 0 {
			t.Fatalf("device %s geometry missing or empty: %+v", inst, g)
		}
		if _, ok := p.Parasitics.Folds[inst]; !ok {
			t.Fatalf("device %s fold plan missing", inst)
		}
	}
	// Routed nets must carry wiring capacitance.
	for _, net := range []string{"out", "bias"} {
		if p.Parasitics.NetCap[net] <= 0 {
			t.Fatalf("net %s has no wiring cap", net)
		}
	}
	if p.Parasitics.AreaUM2 <= 0 {
		t.Fatal("no area reported")
	}
}

func TestPlanDeterministicFixpoint(t *testing.T) {
	// The synthesis loop's convergence depends on Plan being a pure
	// function of its inputs.
	tech := techno.Default060()
	d := testDesign()
	p1, err := d.Plan(tech, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	p2, err := testDesign().Plan(tech, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p1.Parasitics.NetCap, p2.Parasitics.NetCap) {
		t.Fatal("net caps differ between identical plans")
	}
	if !reflect.DeepEqual(p1.Parasitics.DeviceGeom, p2.Parasitics.DeviceGeom) {
		t.Fatal("device geometry differs between identical plans")
	}
	if !reflect.DeepEqual(p1.ChoiceOf, p2.ChoiceOf) {
		t.Fatal("shape choices differ between identical plans")
	}
}

func TestPlanShapeConstraintChangesChoices(t *testing.T) {
	tech := techno.Default060()
	// Binding height cap: forces wider fold/split choices.
	flat, err := testDesign().Plan(tech, Constraint{MaxH: 45000})
	if err != nil {
		t.Fatal(err)
	}
	if flat.Floorplan.H > 45000 {
		t.Fatalf("height %d nm exceeds 45 µm constraint", flat.Floorplan.H)
	}
	// Binding width cap: forces the narrow/tall choices.
	tall, err := testDesign().Plan(tech, Constraint{MaxW: 25000})
	if err != nil {
		t.Fatal(err)
	}
	if tall.Floorplan.W > 25000 {
		t.Fatalf("width %d exceeds 25 µm constraint", tall.Floorplan.W)
	}
	if flat.Floorplan.W <= tall.Floorplan.W || flat.Floorplan.H >= tall.Floorplan.H {
		t.Fatalf("shape constraint had no effect: flat %dx%d vs tall %dx%d",
			flat.Floorplan.W, flat.Floorplan.H, tall.Floorplan.W, tall.Floorplan.H)
	}
	if reflect.DeepEqual(flat.ChoiceOf, tall.ChoiceOf) {
		t.Fatal("constraints should select different fold choices")
	}
}

func TestTransistorChoicesEvenOnly(t *testing.T) {
	tr := &Transistor{Inst: "m", MaxFolds: 7, EvenOnly: true}
	got := tr.Choices()
	want := []int{1, 2, 4, 6}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("choices = %v, want %v", got, want)
	}
	tr.EvenOnly = false
	if len(tr.Choices()) != 7 {
		t.Fatalf("all folds = %v", tr.Choices())
	}
}

func TestPlanEvenOnlyFoldsHonoured(t *testing.T) {
	tech := techno.Default060()
	p, err := testDesign().Plan(tech, Constraint{MaxH: 40000})
	if err != nil {
		t.Fatal(err)
	}
	nf := p.Parasitics.Folds["MP1"].Folds
	if nf > 1 && nf%2 != 0 {
		t.Fatalf("even-only transistor got %d folds", nf)
	}
}

func TestGenerateSVG(t *testing.T) {
	tech := techno.Default060()
	p, err := testDesign().Generate(tech, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteSVG(&buf, p.Cell); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.HasPrefix(s, "<svg") || !strings.Contains(s, "</svg>") {
		t.Fatal("malformed SVG")
	}
	if strings.Count(s, "<rect") < 20 {
		t.Fatalf("suspiciously few shapes: %d", strings.Count(s, "<rect"))
	}
}

func TestPlanUnknownModuleInTree(t *testing.T) {
	tech := techno.Default060()
	d := testDesign()
	d.Tree.Leaves = append(d.Tree.Leaves, "ghost")
	if _, err := d.Plan(tech, Constraint{}); err == nil {
		t.Fatal("unknown module accepted")
	}
}

func TestPlanWellCapReported(t *testing.T) {
	tech := techno.Default060()
	d := testDesign()
	d.Modules[0].(*Transistor).WellNet = "out" // pretend source-tied well
	p, err := d.Plan(tech, Constraint{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Parasitics.WellCap["out"] <= 0 {
		t.Fatal("well cap not reported on the designated net")
	}
}
