package serve

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseFrame is one parsed Server-Sent Event.
type sseFrame struct {
	event string
	data  string
}

// sseClient connects to /v1/events and feeds parsed frames to a
// channel. Closing the returned stop func tears the connection down.
func sseClient(t *testing.T, url string) (<-chan sseFrame, func()) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("connect SSE: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		resp.Body.Close()
		t.Fatalf("content type %q, want text/event-stream", ct)
	}
	frames := make(chan sseFrame, 64)
	go func() {
		defer close(frames)
		sc := bufio.NewScanner(resp.Body)
		var cur sseFrame
		for sc.Scan() {
			line := sc.Text()
			switch {
			case strings.HasPrefix(line, ":"): // comment / preamble
			case strings.HasPrefix(line, "event: "):
				cur.event = strings.TrimPrefix(line, "event: ")
			case strings.HasPrefix(line, "data: "):
				cur.data = strings.TrimPrefix(line, "data: ")
			case line == "" && cur.event != "":
				frames <- cur
				cur = sseFrame{}
			}
		}
	}()
	return frames, func() { resp.Body.Close() }
}

// nextFrame reads one frame or fails the test after a timeout.
func nextFrame(t *testing.T, frames <-chan sseFrame) sseFrame {
	t.Helper()
	select {
	case f, ok := <-frames:
		if !ok {
			t.Fatal("SSE stream closed early")
		}
		return f
	case <-time.After(10 * time.Second):
		t.Fatal("timed out waiting for SSE frame")
		return sseFrame{}
	}
}

// TestEventsStreamLive: a subscriber connected before a run sees its
// whole lifecycle — run-start, each live iteration, run-end — with
// matching run IDs and the right outcome.
func TestEventsStreamLive(t *testing.T) {
	stub := &tracingStub{}
	_, ts := newStubServer(t, Config{}, stub)

	frames, stop := sseClient(t, ts.URL)
	defer stop()

	post(t, ts.URL+"/v1/synthesize", `{"case":3}`)

	start := nextFrame(t, frames)
	if start.event != "run-start" {
		t.Fatalf("first event %q, want run-start", start.event)
	}
	var sv struct {
		ID   string `json:"id"`
		Kind string `json:"kind"`
	}
	if err := json.Unmarshal([]byte(start.data), &sv); err != nil {
		t.Fatalf("run-start payload %q: %v", start.data, err)
	}
	if sv.Kind != "synthesize" || sv.ID == "" {
		t.Fatalf("run-start = %+v", sv)
	}

	for i := range stubIterations {
		f := nextFrame(t, frames)
		if f.event != "iteration" {
			t.Fatalf("event %d = %q, want iteration", i, f.event)
		}
		var iv struct {
			RunID string `json:"run_id"`
			Call  int    `json:"call"`
		}
		if err := json.Unmarshal([]byte(f.data), &iv); err != nil {
			t.Fatalf("iteration payload %q: %v", f.data, err)
		}
		if iv.RunID != sv.ID || iv.Call != stubIterations[i].Call {
			t.Fatalf("iteration %d = %+v, want run %s call %d", i, iv, sv.ID, stubIterations[i].Call)
		}
	}

	end := nextFrame(t, frames)
	if end.event != "run-end" {
		t.Fatalf("event %q, want run-end", end.event)
	}
	var ev struct {
		ID        string `json:"id"`
		Outcome   string `json:"outcome"`
		Converged bool   `json:"converged"`
	}
	if err := json.Unmarshal([]byte(end.data), &ev); err != nil {
		t.Fatalf("run-end payload %q: %v", end.data, err)
	}
	if ev.ID != sv.ID || ev.Outcome != "ok" || !ev.Converged {
		t.Fatalf("run-end = %+v", ev)
	}

	// A cache hit still narrates its (short) lifecycle.
	post(t, ts.URL+"/v1/synthesize", `{"case":3}`)
	if f := nextFrame(t, frames); f.event != "run-start" {
		t.Fatalf("replay first event %q", f.event)
	}
	f := nextFrame(t, frames)
	if f.event != "run-end" || !strings.Contains(f.data, `"outcome":"cache-hit"`) {
		t.Fatalf("replay end = %+v", f)
	}
}

// TestEventsConcurrentSubscribers: several live subscribers each see
// every frame of a burst published while all of them are draining.
// Run with -race this is also the bus's concurrency gate.
func TestEventsConcurrentSubscribers(t *testing.T) {
	bus := newEventBus()
	const subs, events = 4, 200

	var wg sync.WaitGroup
	counts := make([]int, subs)
	for i := 0; i < subs; i++ {
		sub := bus.subscribe()
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for range sub.ch {
				counts[i]++
				if counts[i] == events {
					bus.unsubscribe(sub)
					// Drain whatever was buffered after the unsubscribe
					// raced a publish; the channel is never closed for a
					// fast client, so stop by count.
					return
				}
			}
		}(i)
	}

	var pubs sync.WaitGroup
	for p := 0; p < 2; p++ {
		pubs.Add(1)
		go func(p int) {
			defer pubs.Done()
			for e := 0; e < events/2; e++ {
				bus.publish("run-start", runStartEvent{ID: fmt.Sprintf("run-%d-%d", p, e), Kind: "mc"})
			}
		}(p)
	}
	pubs.Wait()
	wg.Wait()

	for i, n := range counts {
		if n != events {
			t.Fatalf("subscriber %d saw %d of %d events", i, n, events)
		}
	}
	if d := bus.dropped.Load(); d != 0 {
		t.Fatalf("no subscriber was slow, yet %d were dropped", d)
	}
	if p := bus.published.Load(); p != events {
		t.Fatalf("published = %d, want %d", p, events)
	}
}

// TestEventsSlowClientDropped: a subscriber that stops draining is
// dropped once its buffer fills — its channel closes, the publisher
// never blocks, and fast subscribers are unaffected.
func TestEventsSlowClientDropped(t *testing.T) {
	bus := newEventBus()
	slow := bus.subscribe()
	fast := bus.subscribe()

	// Fill both buffers exactly, then drain only the fast one: the next
	// publish finds the slow buffer full and drops that subscriber while
	// delivering to the fast one.
	for i := 0; i < subBuffer; i++ {
		bus.publish("iteration", iterationEvent{RunID: "run-000001"})
	}
	for i := 0; i < subBuffer; i++ {
		<-fast.ch
	}
	bus.publish("iteration", iterationEvent{RunID: "run-000001"})

	if d := bus.dropped.Load(); d != 1 {
		t.Fatalf("dropped = %d, want 1", d)
	}
	if bus.subscribers() != 1 {
		t.Fatalf("subscribers = %d, want the fast one only", bus.subscribers())
	}
	select {
	case <-fast.ch: // the dropping publish still reached the fast client
	default:
		t.Fatal("fast subscriber missed the frame that dropped the slow one")
	}
	bus.unsubscribe(fast)

	// The slow channel was closed by the bus: it still yields the
	// subBuffer frames it held, then reports closed — it never blocks.
	n := 0
	for range slow.ch {
		n++
	}
	if n != subBuffer {
		t.Fatalf("slow subscriber's buffer held %d frames, want %d", n, subBuffer)
	}
}

// TestEventsSlowHTTPClientStreamEnds: the HTTP view of the drop — a
// /v1/events client that never reads gets its stream terminated by the
// server instead of wedging the publisher.
func TestEventsSlowHTTPClientStreamEnds(t *testing.T) {
	stub := &tracingStub{}
	s, ts := newStubServer(t, Config{}, stub)

	req, err := http.NewRequest(http.MethodGet, ts.URL+"/v1/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	// Wait for the subscription to land, then never read from resp.Body.
	deadline := time.Now().Add(5 * time.Second)
	for s.events.subscribers() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("subscriber never registered")
		}
		time.Sleep(time.Millisecond)
	}

	// Publishing far past the buffer plus the kernel's socket window
	// must never block the server; eventually the handler wedges on the
	// unread socket, the channel fills, and the subscriber is dropped.
	for i := 0; i < 200000 && s.events.dropped.Load() == 0; i++ {
		s.events.publish("iteration", iterationEvent{RunID: "run-000001"})
	}
	if s.events.dropped.Load() == 0 {
		t.Fatal("unread client was never dropped")
	}
	deadline = time.Now().Add(5 * time.Second)
	for s.events.subscribers() != 0 {
		if time.Now().After(deadline) {
			t.Fatal("dropped subscriber still registered")
		}
		time.Sleep(time.Millisecond)
	}
}
