package repro

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"loas/internal/techno"
)

// TestTopologyGoldens diffs a live case-4 run of each non-default
// topology against its committed bit-exact golden (the folded cascode
// is covered by the four-case Table-1 golden). Re-bless after an
// intentional model change with
//
//	go test ./internal/repro -run TestTopologyGoldens -update
func TestTopologyGoldens(t *testing.T) {
	cases := []struct {
		topology string
		path     string
	}{
		{"two-stage", "testdata/twostage_golden.json"},
		{"five-t", "testdata/fivet_golden.json"},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.topology, func(t *testing.T) {
			t.Parallel()
			got, err := TopologyGolden(techno.Default060(), tc.topology)
			if err != nil {
				t.Fatal(err)
			}

			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll(filepath.Dir(tc.path), 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(tc.path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", tc.path)
				return
			}

			data, err := os.ReadFile(tc.path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update to create): %v", err)
			}
			var want GoldenReport
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt golden file: %v", err)
			}
			if diffs := DiffGolden(&want, got); len(diffs) > 0 {
				t.Fatalf("live %s run diverges from %s in %d field(s):\n  %s\n(re-bless with -update if intentional)",
					tc.topology, tc.path, len(diffs), strings.Join(diffs, "\n  "))
			}
		})
	}
}
