package obs

import "runtime/metrics"

// Resource attribution: runtime/metrics counters sampled at phase
// boundaries. Both counters are process-wide and monotone, so a delta
// over a serial region attributes that region's allocation volume and
// GC pressure exactly; over a region with concurrent neighbors the
// delta is an upper bound (everything the process allocated while the
// region ran). The span layer therefore samples only on the serial
// phases of the synthesis loop — sizing, layout-extract, the two
// verification measurements — where the engine runs one phase at a
// time per run.

// resourceKeys are read together in one metrics.Read call: cumulative
// heap allocation and completed GC cycles.
var resourceKeys = [...]string{
	"/gc/heap/allocs:bytes",
	"/gc/cycles/total:gc-cycles",
}

// ResourceSample is one point-in-time reading of the process counters.
type ResourceSample struct {
	// AllocBytes is cumulative bytes allocated on the heap since process
	// start (freed memory is not subtracted — this measures allocation
	// volume, the thing that costs CPU and provokes collection).
	AllocBytes uint64
	// GCCycles counts completed garbage-collection cycles.
	GCCycles uint64
}

// SampleResources reads the counters now. The read is cheap (no
// stop-the-world); sampling at both ends of a phase and subtracting
// yields the phase's delta.
func SampleResources() ResourceSample {
	var samples [len(resourceKeys)]metrics.Sample
	for i, k := range resourceKeys {
		samples[i].Name = k
	}
	metrics.Read(samples[:])
	var out ResourceSample
	if samples[0].Value.Kind() == metrics.KindUint64 {
		out.AllocBytes = samples[0].Value.Uint64()
	}
	if samples[1].Value.Kind() == metrics.KindUint64 {
		out.GCCycles = samples[1].Value.Uint64()
	}
	return out
}
