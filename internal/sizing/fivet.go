package sizing

import (
	"fmt"
	"math"

	"loas/internal/circuit"
	"loas/internal/device"
	"loas/internal/layout/cairo"
	"loas/internal/layout/route"
	"loas/internal/layout/stack"
	"loas/internal/techno"
)

// Five-transistor OTA device and net names (third topology).
const (
	MF1 = "MF1" // input pair, diode side (non-inverting input)
	MF2 = "MF2" // input pair, output side
	MF3 = "MF3" // mirror load, diode
	MF4 = "MF4" // mirror load, output
	MF5 = "MF5" // tail

	NetFX = "fx" // mirror diode node
)

func init() {
	Register(Plan{
		Name:        "five-t",
		Description: "five-transistor OTA: single-stage PMOS pair with NMOS mirror load",
		Size: func(tech *techno.Tech, spec OTASpec, ps ParasiticState) (Design, error) {
			return SizeFiveT(tech, spec, ps)
		},
		DefaultSpec: DefaultFiveTSpec,
	})
}

// DefaultFiveTSpec is a specification the single-stage plan can meet:
// the mirror pole caps the usable GBW well below the paper's 65 MHz.
func DefaultFiveTSpec() OTASpec {
	return OTASpec{
		VDD: 3.3, GBW: 30e6, PM: 60, CL: 2e-12,
		ICMLow: 0.4, ICMHigh: 1.8, OutLow: 0.5, OutHigh: 2.8,
	}
}

// FiveT is the classic single-stage five-transistor OTA — the smallest
// entry in the topology library, useful as an SC-filter buffer or a bias
// amplifier.
type FiveT struct {
	Tech *techno.Tech
	Spec OTASpec
	Par  ParasiticState

	Devices   map[string]DeviceSize
	Bias      map[string]float64
	NodeEst   map[string]float64
	Itail     float64
	Predicted Performance
}

// SizeFiveT runs the single-stage plan: one transconductance, one pole —
// the GBW target fixes gm1, the mirror pole is checked by simulation.
func SizeFiveT(tech *techno.Tech, spec OTASpec, ps ParasiticState) (*FiveT, error) {
	if err := tech.Validate(); err != nil {
		return nil, err
	}
	if spec.GBW <= 0 || spec.CL <= 0 || spec.VDD <= 0 {
		return nil, fmt.Errorf("sizing: incomplete spec %+v", spec)
	}
	l := 1.0 * techno.Micron
	veff1 := clamp(spec.VDD-spec.ICMHigh-0.2-tech.P.VT0-0.05, 0.12, 0.25)
	veff3 := clamp(0.9*spec.OutLow, 0.15, 0.35)
	vtl := 0.20

	wmin := techno.NMToMeters(tech.Rules.ActiveWidth)
	wmax := 20000 * techno.Micron
	boost := 1.0
	var d *FiveT

	build := func() error {
		gm1 := 2 * math.Pi * spec.GBW * spec.CL * boost
		w1, err := ps.Memo.SizeForGm(&tech.P, l, veff1, 0, gm1, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: 5T input pair: %w", err)
		}
		m1 := device.MOS{Card: &tech.P, W: w1, L: l}
		id1 := m1.IDSat(veff1, 0, tech.Temp)
		itail := 2 * id1
		w3, err := ps.Memo.SizeForCurrent(&tech.N, l, veff3, 0, id1, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: MF3: %w", err)
		}
		w5, err := ps.Memo.SizeForCurrent(&tech.P, l, vtl, 0, itail, tech.Temp, wmin, wmax)
		if err != nil {
			return fmt.Errorf("sizing: MF5: %w", err)
		}

		d = &FiveT{
			Tech: tech, Spec: spec, Par: ps,
			Devices: map[string]DeviceSize{},
			Bias:    map[string]float64{},
			NodeEst: map[string]float64{},
			Itail:   itail,
		}
		oneFold := func(w float64) device.DiffGeom { return device.OneFoldGeom(tech, w) }
		add := func(name string, t techno.MOSType, w, veff, id float64) {
			d.Devices[name] = DeviceSize{Type: t, W: w, L: l, Veff: veff, ID: id,
				Geom: ps.deviceGeom(oneFold, name, w)}
		}
		add(MF1, techno.PMOS, w1, veff1, id1)
		add(MF2, techno.PMOS, w1, veff1, id1)
		add(MF3, techno.NMOS, w3, veff3, id1)
		add(MF4, techno.NMOS, w3, veff3, id1)
		add(MF5, techno.PMOS, w5, vtl, itail)

		vcm := clamp(0.5*(spec.ICMLow+spec.ICMHigh), 0.3, spec.VDD)
		mn3 := device.MOS{Card: &tech.N, W: w3, L: l}
		vx, err := ps.Memo.VGSForCurrent(&mn3, id1, 0.9, 0, tech.Temp)
		if err != nil {
			return err
		}
		d.NodeEst[NetVDD] = spec.VDD
		d.NodeEst[NetInP], d.NodeEst[NetInN] = vcm, vcm
		d.NodeEst[NetTail] = vcm + tech.P.VT0 + veff1
		d.NodeEst[NetFX] = vx
		d.NodeEst[NetOut] = vx

		mp5 := device.MOS{Card: &tech.P, W: w5, L: l}
		vgs5, err := ps.Memo.VGSForCurrent(&mp5, itail, spec.VDD-d.NodeEst[NetTail], 0, tech.Temp)
		if err != nil {
			return err
		}
		d.Bias[NetVBP] = spec.VDD - vgs5
		return nil
	}

	var gbw, pm float64
	for iter := 0; iter < 12; iter++ {
		if err := build(); err != nil {
			return nil, err
		}
		// The assumed netlist folds the last layout report's wiring
		// capacitance into the evaluation, closing the routing-awareness
		// feedback under case 4 just like the folded-cascode plan.
		ckt := d.AssumedNetlist("5t-eval")
		vcm := d.NodeEst[NetInP]
		ckt.Add(
			&circuit.VSource{Name: "szp", Pos: NetInP, Neg: circuit.Ground, DC: vcm, ACMag: 0.5},
			&circuit.VSource{Name: "szn", Pos: NetInN, Neg: circuit.Ground, DC: vcm, ACMag: 0.5, ACPhase: 180},
			&circuit.Capacitor{Name: "szload", A: NetOut, B: circuit.Ground, C: spec.CL},
		)
		var err error
		gbw, pm, err = EvalGBWPM(tech, ckt, NetOut, d.NodeSet())
		if err != nil {
			return nil, err
		}
		if gbw > 0.99*spec.GBW && gbw < 1.04*spec.GBW {
			break
		}
		boost = clamp(boost*spec.GBW/gbw, 0.3, 5)
	}
	if gbw < 0.97*spec.GBW {
		return nil, fmt.Errorf("sizing: 5T GBW %.2f MHz unreachable", gbw/1e6)
	}
	if pm < spec.PM {
		return nil, fmt.Errorf("sizing: 5T phase margin %.1f° below target %.1f° "+
			"(the mirror pole is fixed by the topology — relax GBW or PM)", pm, spec.PM)
	}

	d.Predicted.GBW = gbw
	d.Predicted.PhaseDeg = pm
	d.Predicted.Power = spec.VDD * d.Itail
	d.Predicted.SlewRate = d.Itail / spec.CL
	op1 := evalAt(tech, d.Devices[MF1])
	op4 := evalAt(tech, d.Devices[MF4])
	d.Predicted.DCGainDB = DB(op1.Gm / (op1.Gds + op4.Gds))
	sizingPasses.Inc()
	return d, nil
}

// fiveTSignalNets lists the nets whose wiring capacitance matters to the
// small-signal behaviour of the 5T OTA.
func fiveTSignalNets() []string {
	return []string{NetOut, NetFX, NetTail, NetInP, NetInN}
}

// AssumedNetlist is Netlist plus the sizing-time routing assumption:
// when routing awareness is on, the last layout report's wiring/
// coupling/well capacitance is lumped onto each signal net (Design).
func (d *FiveT) AssumedNetlist(name string) *circuit.Circuit {
	ckt := d.Netlist(name)
	if d.Par.Routing && d.Par.Report != nil {
		for _, net := range fiveTSignalNets() {
			if c := d.Par.wiringCap(net); c > 0 {
				ckt.Add(&circuit.Capacitor{Name: "asm_" + net, A: net, B: circuit.Ground, C: c})
			}
		}
	}
	return ckt
}

// PredictedPerf exposes the plan's performance prediction (Design).
func (d *FiveT) PredictedPerf() Performance { return d.Predicted }

// DeviceTable exposes the sized devices (Design).
func (d *FiveT) DeviceTable() map[string]DeviceSize { return d.Devices }

// OperatingPoint snapshots the design point (Design). All channels sit
// at the plan's fixed length, so the mirror's L stands in for the
// "non-input length" slot.
func (d *FiveT) OperatingPoint() OperatingPoint {
	return OperatingPoint{W1: d.Devices[MF1].W, Lc: d.Devices[MF3].L, Itail: d.Itail}
}

// HotNet is the mirror diode node — the only internal high-impedance-ish
// node whose capacitance sets the non-dominant pole (Design).
func (d *FiveT) HotNet() string { return NetFX }

// ACGroundNets lists the AC-ground nets of this topology (Design).
func (d *FiveT) ACGroundNets() []string {
	return []string{NetVDD, "gnd", circuit.Ground, NetVBP}
}

// BiasFor recomputes the tail bias on an alternate technology (a
// process corner) for the same device sizes (Design).
func (d *FiveT) BiasFor(tech *techno.Tech) (map[string]float64, error) {
	t := d.Devices[MF5]
	mp5 := device.MOS{Card: &tech.P, W: t.W, L: t.L}
	vgs, err := mp5.VGSForCurrent(t.ID, d.Spec.VDD-d.NodeEst[NetTail], 0, tech.Temp)
	if err != nil {
		return nil, fmt.Errorf("sizing: 5T corner vbp: %w", err)
	}
	return map[string]float64{NetVBP: d.Spec.VDD - vgs}, nil
}

// BiasSources maps the netlist's bias vsources to bias-net keys (Design).
func (d *FiveT) BiasSources() map[string]string {
	return map[string]string{"bp": NetVBP}
}

// OffsetRefs returns the input pair against the mirror load; the gm
// ratio follows from the fixed overdrives at equal drain currents
// (Design).
func (d *FiveT) OffsetRefs() (pair, load DeviceSize, gmRatio float64) {
	pair, load = d.Devices[MF1], d.Devices[MF3]
	gmRatio = pair.Veff / load.Veff
	return pair, load, gmRatio
}

// Netlist builds the 5T OTA.
func (d *FiveT) Netlist(name string) *circuit.Circuit {
	c := circuit.New(name)
	tech := d.Tech
	mos := func(inst, dn, g, s, b string) *circuit.MOSFET {
		ds := d.Devices[inst]
		card := &tech.N
		if ds.Type == techno.PMOS {
			card = &tech.P
		}
		return &circuit.MOSFET{Name: inst, D: dn, G: g, S: s, B: b,
			Dev: device.MOS{Card: card, W: ds.W, L: ds.L, Geom: ds.Geom}}
	}
	c.Add(
		&circuit.VSource{Name: "dd", Pos: NetVDD, Neg: NetGND, DC: d.Spec.VDD},
		&circuit.VSource{Name: "bp", Pos: NetVBP, Neg: NetGND, DC: d.Bias[NetVBP]},
		mos(MF1, NetFX, NetInP, NetTail, NetVDD),
		mos(MF2, NetOut, NetInN, NetTail, NetVDD),
		mos(MF3, NetFX, NetFX, NetGND, NetGND),
		mos(MF4, NetOut, NetFX, NetGND, NetGND),
		mos(MF5, NetTail, NetVBP, NetVDD, NetVDD),
	)
	return c
}

// NodeSet seeds the simulator.
func (d *FiveT) NodeSet() map[string]float64 {
	ns := map[string]float64{}
	for k, v := range d.NodeEst {
		ns[k] = v
	}
	ns[NetVBP] = d.Bias[NetVBP]
	return ns
}

// Layout builds the two matched stacks plus the tail.
func (d *FiveT) Layout() *cairo.Design {
	chanW := int64(6000)
	pair := &cairo.MatchedStack{
		Label: "fpair", Type: techno.PMOS,
		Devices: []stack.Device{
			{Name: MF1, Units: 2, DrainNet: NetFX, GateNet: NetInP},
			{Name: MF2, Units: 2, DrainNet: NetOut, GateNet: NetInN},
		},
		SourceNet: NetTail, BulkNet: NetVDD,
		WidthPerBaseUnit: d.Devices[MF1].W / 2,
		L:                d.Devices[MF1].L,
		Currents:         map[string]float64{NetFX: d.Devices[MF1].ID, NetOut: d.Devices[MF2].ID},
		EndDummies:       true, Splits: []int{1, 2},
	}
	mir := &cairo.MatchedStack{
		Label: "fmir", Type: techno.NMOS,
		Devices: []stack.Device{
			{Name: MF3, Units: 2, DrainNet: NetFX, GateNet: NetFX},
			{Name: MF4, Units: 2, DrainNet: NetOut, GateNet: NetFX},
		},
		SourceNet: "gnd", BulkNet: "gnd",
		WidthPerBaseUnit: d.Devices[MF3].W / 2,
		L:                d.Devices[MF3].L,
		Currents:         map[string]float64{NetFX: d.Devices[MF3].ID, NetOut: d.Devices[MF4].ID},
		EndDummies:       true, Splits: []int{1, 2},
	}
	tail := &cairo.Transistor{
		Inst: MF5, Type: techno.PMOS,
		W: d.Devices[MF5].W, L: d.Devices[MF5].L,
		Style:    device.DrainInternal,
		DrainNet: NetTail, GateNet: NetVBP, SourceNet: NetVDD, BulkNet: NetVDD,
		IDrain: d.Itail, MaxFolds: 8, EvenOnly: true,
	}
	return &cairo.Design{
		Name:    "five-transistor-ota",
		Modules: []cairo.Module{pair, mir, tail},
		Tree: &cairo.Tree{
			Vertical: false, GapNM: chanW,
			Children: []*cairo.Tree{
				{Vertical: true, GapNM: chanW, Leaves: []string{"fmir"}},
				{Vertical: true, GapNM: chanW, Leaves: []string{"fpair", MF5}},
			},
		},
		Nets: []route.Net{
			{Name: NetFX, Current: d.Devices[MF1].ID},
			{Name: NetOut, Current: d.Devices[MF2].ID},
			{Name: NetTail, Current: d.Itail},
			{Name: NetInP}, {Name: NetInN}, {Name: NetVBP},
			{Name: NetVDD, Current: d.Itail},
			{Name: "gnd", Current: d.Itail},
		},
	}
}
