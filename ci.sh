#!/bin/sh
# CI gate for the repository. The -race run is mandatory: the parallel
# synthesis engine (internal/parallel and its users in mc, core, repro,
# serve) is only shippable while the race detector, the worker-invariance
# tests and the shared-tech concurrency tests all pass.
set -eux

# Formatting gate: gofmt must have nothing to say.
test -z "$(gofmt -l .)"

go vet ./...
go build ./...
go build ./cmd/...

# Differential cold-path cache lane. The four cache layers (device-eval
# memo, incremental extraction, shape-function cache, MC batching) are
# only shippable while they are bit-invisible: the harness reruns every
# topology with caches off vs on and demands hex-exact identity, and the
# golden suites pin the absolute results (a cache that shifted a single
# ULP fails here — never re-bless with -update to make this lane pass).
go test -race -count=1 -run 'TestDifferential' ./internal/core
go test -race -count=1 -run 'TestSessionIncremental' ./internal/layout/cairo
go test -count=1 -run 'Golden' ./internal/repro ./internal/serve

# Race lane doubles as the coverage gate: total statement coverage must
# not sink below the floor (the suite sits near 84% — the floor trips on
# regressions, not noise). -shuffle=on randomizes test (and package init)
# order each run, so order-dependence on the package-level topology
# registry or any other global state surfaces here instead of in the
# field.
COVER_FLOOR=83.0
go test -race -shuffle=on -coverprofile=cover.out ./...
total=$(go tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $3); print $3}')
rm -f cover.out
awk -v t="$total" -v f="$COVER_FLOOR" 'BEGIN {
    if (t + 0 < f + 0) { printf "coverage %.1f%% below floor %.1f%%\n", t, f; exit 1 }
    printf "coverage %.1f%% (floor %.1f%%)\n", t, f
}'

# Brief fuzz run of the canonical-key corpus under the race detector.
go test -race -run '^$' -fuzz 'FuzzCanonicalKey$' -fuzztime 5s ./internal/serve

# Fuzz the batch multiset key: item-order invariance, multiplicity
# sensitivity, and per-item ulp sensitivity.
go test -race -run '^$' -fuzz FuzzBatchCanonicalKey -fuzztime 5s ./internal/serve

# Fuzz the run-ledger decoder: arbitrary bytes must never panic the
# reader, and valid records must round-trip byte-identically.
go test -race -run '^$' -fuzz FuzzLedgerDecode -fuzztime 5s ./internal/obs

# Perf-trajectory lane: the committed benchmark snapshots must agree on
# every hex-exact custom metric — those are reproduced paper quantities,
# and a single-ULP drift between snapshots fails the diff (nonzero
# exit). ns/op differences are machine noise and only reported.
go run ./cmd/benchsnap diff BENCH_8.json BENCH_9.json
