package core

import (
	"runtime"
	"strconv"
	"sync"
	"testing"

	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// Refined runs are expensive (each round is a full synthesis plus a
// five-corner sweep), so each configuration the tests below interrogate
// is synthesized exactly once for the whole package.
var (
	refineMu    sync.Mutex
	refineCache = map[string]*Result{}
	refineErrs  = map[string]error{}
)

// refinedRun synthesizes the given case under refinement with the given
// round budget (0 = default), memoized per (case, budget).
func refinedRun(t *testing.T, caseN, maxRounds int) *Result {
	t.Helper()
	key := strconv.Itoa(caseN) + "/" + strconv.Itoa(maxRounds)
	refineMu.Lock()
	defer refineMu.Unlock()
	if err, ok := refineErrs[key]; ok {
		t.Fatal(err)
	}
	if res, ok := refineCache[key]; ok {
		return res
	}
	res, err := Synthesize(techno.Default060(), sizing.Default65MHz(), Options{
		Case:   caseN,
		Refine: RefineOptions{Enabled: true, MaxRounds: maxRounds},
	})
	if err != nil {
		refineErrs[key] = err
		t.Fatal(err)
	}
	refineCache[key] = res
	return res
}

// TestRefineMeetsSpecAtAllCorners is the acceptance scenario: the
// case-4 one-shot run misses the original spec at at least one process
// corner (round 1 of the report), and the refined run meets it at all
// five.
func TestRefineMeetsSpecAtAllCorners(t *testing.T) {
	res := refinedRun(t, 4, 0)
	rep := res.Refine
	if rep == nil {
		t.Fatal("refined run carries no report")
	}
	if rep.Rounds[0].Met {
		t.Fatal("round 1 (the one-shot flow) already met spec at every corner — nothing to refine")
	}
	missed := 0
	for _, c := range rep.Rounds[0].Corners {
		if !c.Met {
			missed++
		}
	}
	if missed == 0 {
		t.Fatal("round 1 reports no missed corner but Met=false")
	}
	if !rep.Met {
		t.Fatalf("refinement did not close the loop in %d rounds: %+v", len(rep.Rounds), rep)
	}
	accepted := rep.Rounds[rep.BestRound-1]
	if len(accepted.Corners) != len(refineCornerOrder) {
		t.Fatalf("accepted round scored %d corners, want %d", len(accepted.Corners), len(refineCornerOrder))
	}
	for _, c := range accepted.Corners {
		if !c.Met {
			t.Fatalf("accepted round still misses corner %s: %+v", c.Corner, c)
		}
		if c.Perf.GBW < (1-RefineGBWSlack)*sizing.Default65MHz().GBW {
			t.Fatalf("corner %s GBW %.2f MHz below the original spec", c.Corner, c.Perf.GBW/1e6)
		}
	}
	if rep.BestRound != len(rep.Rounds) {
		t.Fatalf("loop kept running after meeting spec: best %d of %d rounds", rep.BestRound, len(rep.Rounds))
	}
}

// TestRefineDeterminismAcrossWorkers pins the bit-determinism contract:
// the corner sweep and the four-case engine fan out over GOMAXPROCS
// workers, so the same spec must refine to the hex-identical design and
// report on one worker as on all of them.
func TestRefineDeterminismAcrossWorkers(t *testing.T) {
	wide := refinedRun(t, 1, 0) // synthesized at the test binary's default GOMAXPROCS
	prev := runtime.GOMAXPROCS(1)
	defer runtime.GOMAXPROCS(prev)
	serial, err := Synthesize(techno.Default060(), sizing.Default65MHz(), Options{
		Case:   1,
		Refine: RefineOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertRefineEqual(t, wide, serial)
}

// TestRefineRerunIdentical: same spec, same options, same process →
// hex-identical refined result (no hidden global state).
func TestRefineRerunIdentical(t *testing.T) {
	first := refinedRun(t, 1, 0)
	again, err := Synthesize(techno.Default060(), sizing.Default65MHz(), Options{
		Case:   1,
		Refine: RefineOptions{Enabled: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	assertRefineEqual(t, first, again)
}

// assertRefineEqual compares two refined results bit-exactly: design
// point, per-round targets and margins, and per-corner performance.
func assertRefineEqual(t *testing.T, a, b *Result) {
	t.Helper()
	hex := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	opA, opB := a.Design.OperatingPoint(), b.Design.OperatingPoint()
	for _, f := range [][3]interface{}{
		{"W1", opA.W1, opB.W1}, {"Lc", opA.Lc, opB.Lc}, {"Itail", opA.Itail, opB.Itail},
	} {
		if hex(f[1].(float64)) != hex(f[2].(float64)) {
			t.Fatalf("design point %s diverged: %v vs %v", f[0], f[1], f[2])
		}
	}
	ra, rb := a.Refine, b.Refine
	if len(ra.Rounds) != len(rb.Rounds) || ra.BestRound != rb.BestRound || ra.Met != rb.Met {
		t.Fatalf("report shape diverged: %d/%d/%v vs %d/%d/%v",
			len(ra.Rounds), ra.BestRound, ra.Met, len(rb.Rounds), rb.BestRound, rb.Met)
	}
	for i := range ra.Rounds {
		x, y := ra.Rounds[i], rb.Rounds[i]
		if hex(x.TargetGBW) != hex(y.TargetGBW) || hex(x.TargetPM) != hex(y.TargetPM) ||
			hex(x.WorstMargin) != hex(y.WorstMargin) {
			t.Fatalf("round %d diverged:\n%+v\nvs\n%+v", i+1, x, y)
		}
		for j := range x.Corners {
			if hex(x.Corners[j].Perf.GBW) != hex(y.Corners[j].Perf.GBW) ||
				hex(x.Corners[j].Perf.PhaseDeg) != hex(y.Corners[j].Perf.PhaseDeg) {
				t.Fatalf("round %d corner %s diverged", i+1, x.Corners[j].Corner)
			}
		}
	}
}

// TestRefineRoundCountMonotone: the executed round count is monotone in
// the MaxRounds budget, truncated budgets report Met=false for a spec
// that needs more rounds, and a budget at least as large as the need
// reproduces the identical refinement prefix.
func TestRefineRoundCountMonotone(t *testing.T) {
	full := refinedRun(t, 1, 0)
	need := len(full.Refine.Rounds)
	if need < 2 {
		t.Fatalf("case 1 should need several rounds, got %d", need)
	}
	prevRounds := 0
	for _, budget := range []int{1, 2, need} {
		res := refinedRun(t, 1, budget)
		got := len(res.Refine.Rounds)
		if got < prevRounds {
			t.Fatalf("rounds not monotone in MaxRounds: budget %d ran %d rounds after %d", budget, got, prevRounds)
		}
		prevRounds = got
		if got > budget {
			t.Fatalf("budget %d exceeded: ran %d rounds", budget, got)
		}
		if budget < need && res.Refine.Met {
			t.Fatalf("budget %d met spec but the full run needed %d rounds", budget, need)
		}
		// The executed prefix is bit-identical to the full run's: the
		// budget only truncates, never alters, the trajectory.
		for i := 0; i < got; i++ {
			w, g := full.Refine.Rounds[i], res.Refine.Rounds[i]
			if w.TargetGBW != g.TargetGBW || w.TargetPM != g.TargetPM || w.WorstMargin != g.WorstMargin {
				t.Fatalf("budget %d round %d diverged from the full run:\n%+v\nvs\n%+v", budget, i+1, w, g)
			}
		}
	}
	if len(refinedRun(t, 1, need).Refine.Rounds) != need {
		t.Fatalf("budget == need should run exactly %d rounds", need)
	}
}

// TestRefineAcceptedNoWorseThanRound1: whatever round is accepted, its
// worst-corner margin is never below round 1's — refinement can only
// improve on (or equal) the one-shot flow.
func TestRefineAcceptedNoWorseThanRound1(t *testing.T) {
	for _, caseN := range []int{1, 4} {
		rep := refinedRun(t, caseN, 0).Refine
		r1 := rep.Rounds[0].WorstMargin
		acc := rep.Rounds[rep.BestRound-1].WorstMargin
		if acc < r1 {
			t.Fatalf("case %d accepted round %d margin %g worse than round 1's %g",
				caseN, rep.BestRound, acc, r1)
		}
		// And every round before the accepted one is strictly worse —
		// otherwise the earlier round should have been accepted.
		for i := 0; i < rep.BestRound-1; i++ {
			if rep.Rounds[i].WorstMargin >= acc {
				t.Fatalf("case %d round %d margin %g not below the accepted %g",
					caseN, i+1, rep.Rounds[i].WorstMargin, acc)
			}
		}
	}
}

// TestRefineConvergenceBudget bounds the outer loop the way the
// original budget test bounds the inner one: rounds within the
// configured budget, every inner loop still within the seed's 4 layout
// calls, per-round traces well-formed (fresh call numbering, -1 delta
// sentinel, monotone shrinking deltas down to the fixpoint).
func TestRefineConvergenceBudget(t *testing.T) {
	const seedLayoutCalls = 4
	res := refinedRun(t, 4, 0)
	rep := res.Refine
	if len(rep.Rounds) > rep.MaxRounds {
		t.Fatalf("ran %d rounds over budget %d", len(rep.Rounds), rep.MaxRounds)
	}
	for _, rr := range rep.Rounds {
		if rr.LayoutCalls > seedLayoutCalls {
			t.Fatalf("round %d inner loop used %d layout calls, seed needs %d",
				rr.Round, rr.LayoutCalls, seedLayoutCalls)
		}
	}
	// The Result trace concatenates every round, tagged and in order.
	byRound := map[int][]obs.Iteration{}
	lastRound := 0
	for _, it := range res.Trace {
		if it.Round < lastRound {
			t.Fatalf("trace rounds out of order: %d after %d", it.Round, lastRound)
		}
		lastRound = it.Round
		byRound[it.Round] = append(byRound[it.Round], it)
	}
	if len(byRound) != len(rep.Rounds) {
		t.Fatalf("trace covers %d rounds, report has %d", len(byRound), len(rep.Rounds))
	}
	for _, rr := range rep.Rounds {
		tr := byRound[rr.Round]
		if len(tr) != rr.LayoutCalls {
			t.Fatalf("round %d: %d trace rows for %d layout calls", rr.Round, len(tr), rr.LayoutCalls)
		}
		for i, it := range tr {
			if it.Call != i+1 {
				t.Fatalf("round %d row %d: call numbered %d (inner numbering must restart)", rr.Round, i, it.Call)
			}
			if i == 0 && it.DeltaF != -1 {
				t.Fatalf("round %d: first call must carry the -1 sentinel, got %g", rr.Round, it.DeltaF)
			}
			if i > 1 && it.DeltaF >= tr[i-1].DeltaF {
				t.Fatalf("round %d: parasitic delta stopped shrinking at call %d", rr.Round, it.Call)
			}
		}
		last := tr[len(tr)-1]
		if len(tr) > 1 && (last.DeltaF < 0 || last.DeltaF >= 1e-15) {
			t.Fatalf("round %d inner loop ended above tolerance: Δ = %g fF", rr.Round, last.DeltaF*1e15)
		}
	}
}

// TestOneShotCarriesNoRefineState: with refinement off nothing changes —
// no report, no round tags — so the pre-refinement goldens and wire
// formats stay byte-identical.
func TestOneShotCarriesNoRefineState(t *testing.T) {
	res := allCases(t)[4]
	if res.Refine != nil {
		t.Fatal("one-shot run carries a refine report")
	}
	for _, it := range res.Trace {
		if it.Round != 0 {
			t.Fatalf("one-shot iteration tagged with round %d", it.Round)
		}
	}
}

// TestSynthesizeRefinedForcesEnabled: the explicit entry point refines
// even when the options left Enabled unset.
func TestSynthesizeRefinedForcesEnabled(t *testing.T) {
	res := refinedRun(t, 1, 0)
	viaExplicit, err := SynthesizeRefined(techno.Default060(), sizing.Default65MHz(), Options{Case: 1})
	if err != nil {
		t.Fatal(err)
	}
	if viaExplicit.Refine == nil {
		t.Fatal("SynthesizeRefined did not refine")
	}
	assertRefineEqual(t, res, viaExplicit)
}
