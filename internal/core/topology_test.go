package core

import (
	"strings"
	"testing"

	"loas/internal/obs"
	"loas/internal/sizing"
	"loas/internal/techno"
)

// TestSynthesizeEveryTopology drives the full case-4 sizing↔layout
// convergence loop — including the extracted-netlist verification — for
// every registered design plan, checking that each run converges, emits
// a labelled convergence trace, and lands near its own spec targets.
// This is the acceptance gate for the topology registry: the loop must
// be genuinely plan-agnostic, not folded-cascode-with-a-rename.
func TestSynthesizeEveryTopology(t *testing.T) {
	for _, name := range sizing.Topologies() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			tech := techno.Default060()
			plan, err := sizing.Lookup(name)
			if err != nil {
				t.Fatal(err)
			}
			spec := plan.DefaultSpec()
			live := &obs.Trace{}
			res, err := Synthesize(tech, spec, Options{
				Topology: name, Case: 4, Trace: live,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Topology != plan.Name {
				t.Fatalf("Result.Topology = %q, want %q", res.Topology, plan.Name)
			}
			if res.Spec != spec {
				t.Fatalf("Result.Spec diverged from the requested spec")
			}
			if len(res.Trace) < 2 {
				t.Fatalf("case-4 run recorded %d trace events, want ≥ 2 (no layout feedback?)", len(res.Trace))
			}
			if !obs.Converged(res.Trace, 1e-15) {
				t.Fatalf("trace does not show parasitic convergence: %+v", res.Trace)
			}
			for i, it := range res.Trace {
				if it.Topology != plan.Name {
					t.Fatalf("trace event %d labelled %q, want %q", i, it.Topology, plan.Name)
				}
				if it.FN1CapF <= 0 {
					t.Fatalf("trace event %d: hot net %q reported no capacitance", i, res.Design.HotNet())
				}
			}
			if got := live.Iterations(); len(got) != len(res.Trace) {
				t.Fatalf("live recorder got %d events, result has %d", len(got), len(res.Trace))
			}
			// The verified design must be in the neighbourhood of its own
			// targets (wide tolerances — this is a smoke gate, the goldens
			// pin exact numbers).
			if res.Extracted.GBW < 0.9*spec.GBW {
				t.Fatalf("extracted GBW %.2f MHz way below target %.2f MHz",
					res.Extracted.GBW/1e6, spec.GBW/1e6)
			}
			if res.Extracted.PhaseDeg < spec.PM-5 {
				t.Fatalf("extracted PM %.1f° way below target %.1f°",
					res.Extracted.PhaseDeg, spec.PM)
			}
		})
	}
}

// TestTopologyRegistry pins the registry contract: the default resolves,
// the empty string aliases it, unknown names fail with the full listing,
// and every registered plan is complete.
func TestTopologyRegistry(t *testing.T) {
	names := sizing.Topologies()
	if len(names) < 3 {
		t.Fatalf("expected ≥ 3 registered topologies, got %v", names)
	}
	def, err := sizing.Lookup("")
	if err != nil {
		t.Fatal(err)
	}
	if def.Name != sizing.DefaultTopology {
		t.Fatalf("empty lookup resolved to %q, want %q", def.Name, sizing.DefaultTopology)
	}
	_, err = sizing.Lookup("no-such-ota")
	if err == nil {
		t.Fatal("unknown topology must error")
	}
	for _, n := range names {
		if !strings.Contains(err.Error(), n) {
			t.Fatalf("unknown-topology error %q does not list %q", err, n)
		}
	}
	if _, err := Synthesize(techno.Default060(), sizing.Default65MHz(),
		Options{Topology: "no-such-ota", Case: 1}); err == nil {
		t.Fatal("Synthesize must reject an unknown topology")
	}
}

// TestCornerSweepTwoStage runs the corner verification on a non-default
// topology — the BiasSources-driven retuning path.
func TestCornerSweepTwoStage(t *testing.T) {
	tech := techno.Default060()
	plan, err := sizing.Lookup("two-stage")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(tech, plan.DefaultSpec(), Options{Topology: "two-stage", Case: 4})
	if err != nil {
		t.Fatal(err)
	}
	corners, err := CornerSweep(tech, res)
	if err != nil {
		t.Fatal(err)
	}
	for c, p := range corners {
		if p.GBW <= 0 || p.PhaseDeg <= 0 {
			t.Fatalf("corner %s produced degenerate performance %+v", c, p)
		}
	}
}
