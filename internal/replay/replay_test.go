package replay

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"loas/internal/obs"
)

// writeLedger appends records through a real obs.Ledger so the test
// exercises the same encode path the daemon uses.
func writeLedger(t *testing.T, path string, maxBytes int64, recs []obs.RunRecord) {
	t.Helper()
	l, err := obs.OpenLedger(path, obs.LedgerOptions{MaxBytes: maxBytes})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := l.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

func sha(body string) string {
	s := sha256.Sum256([]byte(body))
	return hex.EncodeToString(s[:])
}

func TestLoadFiltersAndOrders(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	recs := []obs.RunRecord{
		{ID: "run-000001", Seq: 1, Kind: "synthesize", Outcome: "ok",
			Request: []byte(`{"spec":1}`), BodySHA256: sha("a"), Bytes: 1},
		{ID: "run-000002", Seq: 2, Kind: "synthesize", Outcome: "error",
			Request: []byte(`{"spec":2}`)}, // errored: skipped
		{ID: "run-000003", Seq: 3, Kind: "batch", Outcome: "ok",
			Request: []byte(`{"items":[]}`), BodySHA256: sha("b")},
		{ID: "run-000004", Seq: 4, Kind: "synthesize", Outcome: "ok",
			Parent: "run-000003", Request: []byte(`{"spec":4}`)}, // child: excluded by default
		{ID: "run-000005", Seq: 5, Kind: "synthesize", Outcome: "ok"}, // no request recorded: skipped
		{ID: "run-000006", Seq: 6, Kind: "frobnicate", Outcome: "ok",
			Request: []byte(`{}`)}, // unmapped kind: skipped
		{ID: "run-000007", Seq: 7, Kind: "layout.svg", Outcome: "ok",
			BodySHA256: sha("svg")}, // GET kind: replayable without a body
		{ID: "run-000008", Seq: 8, Kind: "table1", Outcome: "cache-hit",
			Request: []byte(`{"case":1}`), BodySHA256: sha("t")},
	}
	writeLedger(t, path, 0, recs)

	items, err := Load(path, false)
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for _, it := range items {
		ids = append(ids, it.RunID)
	}
	want := "run-000001 run-000003 run-000007 run-000008"
	if got := strings.Join(ids, " "); got != want {
		t.Fatalf("Load kept %q, want %q", got, want)
	}
	if items[2].Method != http.MethodGet || items[2].Path != "/v1/layout.svg" {
		t.Errorf("layout.svg mapped to %s %s", items[2].Method, items[2].Path)
	}
	if items[0].Method != http.MethodPost || items[0].Path != "/v1/synthesize" {
		t.Errorf("synthesize mapped to %s %s", items[0].Method, items[0].Path)
	}

	withKids, err := Load(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if len(withKids) != len(items)+1 {
		t.Fatalf("includeChildren added %d items, want 1", len(withKids)-len(items))
	}
}

func TestLoadAcrossRotationSortsBySeq(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "runs.jsonl")
	var recs []obs.RunRecord
	for i := 1; i <= 30; i++ {
		recs = append(recs, obs.RunRecord{
			ID: fmt.Sprintf("run-%06d", i), Seq: int64(i), Kind: "synthesize",
			Outcome: "ok", Request: []byte(`{"spec":{"gbw_hz":1e6}}`), BodySHA256: sha("x"),
		})
	}
	writeLedger(t, path, 1024, recs) // tiny cap: forces rotation mid-stream
	if _, err := os.Stat(path + ".1"); err != nil {
		t.Fatalf("ledger never rotated: %v", err)
	}
	items, err := Load(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(items); i++ {
		if items[i].Seq != items[i-1].Seq+1 {
			t.Fatalf("replay order has a gap: seq %d then %d", items[i-1].Seq, items[i].Seq)
		}
	}
	if items[len(items)-1].Seq != 30 {
		t.Fatalf("last item seq %d, want 30", items[len(items)-1].Seq)
	}
}

func TestLoadErrors(t *testing.T) {
	dir := t.TempDir()
	if _, err := Load(filepath.Join(dir, "absent.jsonl"), false); err == nil {
		t.Fatal("Load on a missing ledger must error")
	}
	// A ledger with records but no replayable requests names the cause.
	path := filepath.Join(dir, "old.jsonl")
	writeLedger(t, path, 0, []obs.RunRecord{
		{ID: "run-000001", Seq: 1, Kind: "synthesize", Outcome: "ok"},
	})
	_, err := Load(path, false)
	if err == nil || !strings.Contains(err.Error(), "predates request recording") {
		t.Fatalf("want the pre-recording hint, got %v", err)
	}
}

func TestPercentilesNearestRank(t *testing.T) {
	ds := make([]time.Duration, 100)
	for i := range ds {
		ds[i] = time.Duration(i+1) * time.Millisecond // 1..100ms
	}
	p50, p90, p99 := percentiles(ds)
	if p50 != 50*time.Millisecond || p90 != 90*time.Millisecond || p99 != 99*time.Millisecond {
		t.Fatalf("percentiles = %v %v %v", p50, p90, p99)
	}
	if a, b, c := percentiles(nil); a != 0 || b != 0 || c != 0 {
		t.Fatal("empty percentiles must be zero")
	}
	one, _, _ := percentiles([]time.Duration{7 * time.Millisecond})
	if one != 7*time.Millisecond {
		t.Fatalf("single-sample p50 = %v", one)
	}
}

// TestRunClassifiesAndChecksIdentity replays against a stub daemon that
// serves each endpoint deterministically and labels responses with the
// X-Loas-Cache header, verifying outcome counting and byte identity.
func TestRunClassifiesAndChecksIdentity(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		switch r.URL.Path {
		case "/v1/synthesize":
			w.Header().Set("X-Loas-Cache", "hit")
			fmt.Fprint(w, `{"result":"synth"}`)
		case "/v1/table1":
			// No cache header: classified as a miss.
			fmt.Fprint(w, `{"result":"DIFFERENT"}`)
		case "/v1/mc":
			w.Header().Set("X-Loas-Cache", "dedup")
			fmt.Fprint(w, `{"result":"mc"}`)
		case "/v1/batch":
			http.Error(w, "queue full", http.StatusServiceUnavailable)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	items := []Item{
		{Seq: 1, RunID: "run-000001", Kind: "synthesize", Method: "POST", Path: "/v1/synthesize",
			Body: []byte(`{}`), WantSHA: sha(`{"result":"synth"}`)},
		{Seq: 2, RunID: "run-000002", Kind: "table1", Method: "POST", Path: "/v1/table1",
			Body: []byte(`{}`), WantSHA: sha(`{"result":"table1"}`)}, // daemon now answers differently
		{Seq: 3, RunID: "run-000003", Kind: "mc", Method: "POST", Path: "/v1/mc",
			Body: []byte(`{}`), WantSHA: sha(`{"result":"mc"}`)},
		{Seq: 4, RunID: "run-000004", Kind: "batch", Method: "POST", Path: "/v1/batch",
			Body: []byte(`{}`), WantSHA: sha("whatever")},
		{Seq: 5, RunID: "run-000005", Kind: "explore", Method: "POST", Path: "/v1/nosuch",
			Body: []byte(`{}`), WantSHA: sha("x")},
	}
	rep, err := Run(context.Background(), Config{BaseURL: srv.URL, Concurrency: 2}, items)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent != 5 || rep.Items != 5 {
		t.Fatalf("sent %d of %d", rep.Sent, rep.Items)
	}
	// /v1/nosuch returns 404 → error class; the no-header 200 is a miss.
	if rep.Hits != 1 || rep.Misses != 1 || rep.Dedup != 1 || rep.Shed != 1 || rep.Errors != 1 {
		t.Fatalf("outcomes: hit=%d miss=%d dedup=%d shed=%d err=%d",
			rep.Hits, rep.Misses, rep.Dedup, rep.Shed, rep.Errors)
	}
	if rep.Errors+rep.Hits+rep.Misses+rep.Dedup+rep.Shed != 5 {
		t.Fatalf("classes don't sum to sent: %+v", rep)
	}
	if rep.Checked != 3 || rep.Matched != 2 {
		t.Fatalf("identity: checked=%d matched=%d, want 3/2", rep.Checked, rep.Matched)
	}
	if len(rep.Mismatches) != 1 || rep.Mismatches[0].RunID != "run-000002" {
		t.Fatalf("mismatches = %+v", rep.Mismatches)
	}
	if rep.Throughput <= 0 {
		t.Fatalf("throughput %v", rep.Throughput)
	}
	text := rep.Text()
	for _, want := range []string{"replayed 5/5", "1 hit", "1 miss", "1 dedup", "1 shed", "2/3 responses byte-identical", "MISMATCH seq 2"} {
		if !strings.Contains(text, want) {
			t.Errorf("report text missing %q:\n%s", want, text)
		}
	}
}

// A non-200, non-503 status is an error, never a miss, and carries no
// identity check (comparing an error page's hash would be noise).
func TestRunNotFoundIsError(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	defer srv.Close()
	rep, err := Run(context.Background(), Config{BaseURL: srv.URL}, []Item{
		{Seq: 1, Kind: "synthesize", Method: "POST", Path: "/v1/synthesize", Body: []byte(`{}`), WantSHA: sha("x")},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 1 || rep.Checked != 0 {
		t.Fatalf("404 classified as errors=%d checked=%d, want 1/0", rep.Errors, rep.Checked)
	}
}

func TestRunDispatchOrderSerial(t *testing.T) {
	var order []string
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		order = append(order, r.URL.Path)
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	items := []Item{
		{Seq: 1, Kind: "synthesize", Method: "POST", Path: "/v1/synthesize", Body: []byte(`{}`)},
		{Seq: 2, Kind: "table1", Method: "POST", Path: "/v1/table1", Body: []byte(`{}`)},
		{Seq: 3, Kind: "mc", Method: "POST", Path: "/v1/mc", Body: []byte(`{}`)},
	}
	// Concurrency 1: arrival order must be exactly the recorded order.
	if _, err := Run(context.Background(), Config{BaseURL: srv.URL, Concurrency: 1}, items); err != nil {
		t.Fatal(err)
	}
	if got := strings.Join(order, " "); got != "/v1/synthesize /v1/table1 /v1/mc" {
		t.Fatalf("serial dispatch order = %q", got)
	}
}

func TestRunCancellation(t *testing.T) {
	release := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release
		fmt.Fprint(w, "ok")
	}))
	defer srv.Close()
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	items := make([]Item, 50)
	for i := range items {
		items[i] = Item{Seq: int64(i + 1), Kind: "synthesize", Method: "POST",
			Path: "/v1/synthesize", Body: []byte(`{}`)}
	}
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	rep, err := Run(ctx, Config{BaseURL: srv.URL, Concurrency: 2, Timeout: time.Second}, items)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Sent >= len(items) {
		t.Fatalf("cancellation did not stop dispatch: sent %d of %d", rep.Sent, rep.Items)
	}
}

func TestRunRequiresBaseURL(t *testing.T) {
	if _, err := Run(context.Background(), Config{}, nil); err == nil {
		t.Fatal("want error for empty BaseURL")
	}
}
